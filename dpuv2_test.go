package dpuv2

import (
	"math"
	"testing"
)

func TestFacadeQuickstart(t *testing.T) {
	g := NewGraph("demo")
	a := g.AddInput()
	b := g.AddInput()
	s := g.AddOp(OpAdd, a, b)
	c := g.AddConst(3)
	root := g.AddOp(OpMul, s, c)

	prog, err := Compile(g, MinEDP(), CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if prog.BinarySize() <= 0 || len(prog.Binary()) != prog.BinarySize() {
		t.Fatal("binary size inconsistent")
	}
	res, err := Execute(prog, []float64{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Outputs[prog.SinkOf(root)]
	if got != 21 {
		t.Fatalf("result = %v, want 21", got)
	}
	if res.Report.Cycles <= 0 || res.Report.ThroughputGOPS <= 0 {
		t.Fatalf("report not populated: %+v", res.Report)
	}
	if math.IsNaN(res.Report.EnergyPerOpPJ) || res.Report.EnergyPerOpPJ <= 0 {
		t.Fatalf("energy estimate broken: %+v", res.Report)
	}
}

func TestFacadeStats(t *testing.T) {
	g := NewGraph("s")
	x := g.AddInput()
	cur := x
	for i := 0; i < 50; i++ {
		cur = g.AddOp(OpAdd, cur, g.AddConst(float64(i)))
	}
	prog, err := Compile(g, Config{D: 2, B: 8, R: 16}, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st := prog.Stats()
	if st.Execs == 0 || st.Instructions == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
}

func TestFacadeRejectsBadConfig(t *testing.T) {
	g := NewGraph("bad")
	a := g.AddInput()
	g.AddOp(OpAdd, a, a)
	if _, err := Compile(g, Config{D: 9, B: 4, R: 1}, CompileOptions{}); err == nil {
		t.Fatal("expected config validation error")
	}
}
