package dpuv2

import (
	"math"
	"testing"
)

func TestFacadeQuickstart(t *testing.T) {
	g := NewGraph("demo")
	a := g.AddInput()
	b := g.AddInput()
	s := g.AddOp(OpAdd, a, b)
	c := g.AddConst(3)
	root := g.AddOp(OpMul, s, c)

	prog, err := Compile(g, MinEDP(), CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if prog.BinarySize() <= 0 || len(prog.Binary()) != prog.BinarySize() {
		t.Fatal("binary size inconsistent")
	}
	res, err := Execute(prog, []float64{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Outputs[prog.SinkOf(root)]
	if got != 21 {
		t.Fatalf("result = %v, want 21", got)
	}
	if res.Report.Cycles <= 0 || res.Report.ThroughputGOPS <= 0 {
		t.Fatalf("report not populated: %+v", res.Report)
	}
	if math.IsNaN(res.Report.EnergyPerOpPJ) || res.Report.EnergyPerOpPJ <= 0 {
		t.Fatalf("energy estimate broken: %+v", res.Report)
	}
}

func TestFacadeStats(t *testing.T) {
	g := NewGraph("s")
	x := g.AddInput()
	cur := x
	for i := 0; i < 50; i++ {
		cur = g.AddOp(OpAdd, cur, g.AddConst(float64(i)))
	}
	prog, err := Compile(g, Config{D: 2, B: 8, R: 16}, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st := prog.Stats()
	if st.Execs == 0 || st.Instructions == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
}

func TestFacadeRejectsBadConfig(t *testing.T) {
	g := NewGraph("bad")
	a := g.AddInput()
	g.AddOp(OpAdd, a, a)
	if _, err := Compile(g, Config{D: 9, B: 4, R: 1}, CompileOptions{}); err == nil {
		t.Fatal("expected config validation error")
	}
}

// TestFacadeSinkOf exercises the original-id → binarized-sink remapping
// on a graph that actually binarizes (a 3-ary node), where the remap is
// not the identity.
func TestFacadeSinkOf(t *testing.T) {
	g := NewGraph("kary")
	a, b, c := g.AddInput(), g.AddInput(), g.AddInput()
	root := g.AddOp(OpAdd, a, b, c)

	prog, err := Compile(g, Config{D: 2, B: 8, R: 16}, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(prog, []float64{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	sink := prog.SinkOf(root)
	got, ok := res.Outputs[sink]
	if !ok {
		t.Fatalf("SinkOf(%d) = %d, not present in outputs %v", root, sink, res.Sinks)
	}
	if got != 7 {
		t.Fatalf("sum = %v, want 7", got)
	}
	found := false
	for _, s := range res.Sinks {
		if s == sink {
			found = true
		}
	}
	if !found {
		t.Fatalf("sink %d missing from Sinks %v", sink, res.Sinks)
	}
}

// TestFacadeBinaryConsistency pins the packed-binary accessors: the
// stream length matches BinarySize, is deterministic, and both agree
// with the bit-level size.
func TestFacadeBinaryConsistency(t *testing.T) {
	g := NewGraph("bin")
	x := g.AddInput()
	cur := x
	for i := 0; i < 20; i++ {
		cur = g.AddOp(OpMul, cur, g.AddConst(1.5))
	}
	prog, err := Compile(g, Config{D: 2, B: 8, R: 16}, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	bin := prog.Binary()
	if len(bin) != prog.BinarySize() {
		t.Fatalf("len(Binary) = %d, BinarySize = %d", len(bin), prog.BinarySize())
	}
	if prog.BinarySize() == 0 {
		t.Fatal("empty binary for a non-trivial program")
	}
	bin2 := prog.Binary()
	for i := range bin {
		if bin[i] != bin2[i] {
			t.Fatalf("Binary() not deterministic at byte %d", i)
		}
	}
}

func TestFacadeWrongInputCount(t *testing.T) {
	g := NewGraph("arity")
	a, b := g.AddInput(), g.AddInput()
	g.AddOp(OpAdd, a, b)
	prog, err := Compile(g, MinEDP(), CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(prog, []float64{1}); err == nil {
		t.Error("expected error for too few inputs")
	}
	if _, err := Execute(prog, []float64{1, 2, 3}); err == nil {
		t.Error("expected error for too many inputs")
	}
}

// TestFacadeCompileFailureSurfaces covers the failure paths through the
// engine-backed Compile: structural validation and config validation
// both surface, and a failed key is retried (not cached).
func TestFacadeCompileFailureSurfaces(t *testing.T) {
	empty := NewGraph("empty")
	if _, err := Compile(empty, MinEDP(), CompileOptions{}); err == nil {
		t.Error("expected validation error for an empty graph")
	}
	// Same failing call again: must fail identically, not return a stale
	// cached success or panic on a cached error entry.
	if _, err := Compile(empty, MinEDP(), CompileOptions{}); err == nil {
		t.Error("expected validation error on retry")
	}
}

// TestFacadeEngine exercises the serving layer through the public API:
// cache hits for repeat compiles, batched execution with per-item error
// capture, and the stats snapshot.
func TestFacadeEngine(t *testing.T) {
	en := NewEngine(EngineOptions{CacheSize: 4})
	g := NewGraph("serve")
	a, b := g.AddInput(), g.AddInput()
	s := g.AddOp(OpAdd, a, b)
	root := g.AddOp(OpMul, s, g.AddConst(2))

	cfg := Config{D: 2, B: 8, R: 16}
	prog, err := en.Compile(g, cfg, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := en.Compile(g, cfg, CompileOptions{}); err != nil {
		t.Fatal(err)
	}
	st := en.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 1 miss / 1 hit", st)
	}

	batches := [][]float64{{1, 2}, {3}, {4, 5}} // middle has wrong arity
	results, err := en.ExecuteBatch(prog, batches)
	if err == nil {
		t.Fatal("expected joined error for the malformed batch")
	}
	if results[1] != nil {
		t.Error("failed batch has a result")
	}
	for i, want := range map[int]float64{0: 6, 2: 18} {
		if results[i] == nil {
			t.Fatalf("batch %d was not salvaged", i)
		}
		if got := results[i].Outputs[prog.SinkOf(root)]; got != want {
			t.Errorf("batch %d = %v, want %v", i, got, want)
		}
		if results[i].Report.Cycles <= 0 {
			t.Errorf("batch %d report not populated", i)
		}
	}
	if st := en.Stats(); st.Executions != 2 {
		t.Errorf("executions = %d, want 2", st.Executions)
	}
}

// TestFacadeDefaultEngineCaching checks that the package-level
// Compile/Execute really ride the shared default engine: recompiling a
// structurally identical graph is a cache hit.
func TestFacadeDefaultEngineCaching(t *testing.T) {
	build := func() *Graph {
		g := NewGraph("dflt")
		a, b := g.AddInput(), g.AddInput()
		g.AddOp(OpMul, g.AddOp(OpAdd, a, b), g.AddConst(31))
		return g
	}
	before := DefaultEngine().Stats()
	p1, err := Compile(build(), MinEDP(), CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Compile(build(), MinEDP(), CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	after := DefaultEngine().Stats()
	if after.Hits <= before.Hits {
		t.Errorf("no cache hit recorded: before %+v, after %+v", before, after)
	}
	r1, err := Execute(p1, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Execute(p2, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Outputs[r1.Sinks[0]] != 155 || r2.Outputs[r2.Sinks[0]] != 155 {
		t.Errorf("results = %v / %v, want 155", r1.Outputs, r2.Outputs)
	}
}
