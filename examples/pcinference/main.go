// Probabilistic-circuit inference: generate a sum-product network shaped
// like the paper's "mnist" benchmark, compile it for DPU-v2, and run
// repeated inference with different evidence vectors — the static-DAG,
// changing-inputs pattern that amortizes the one-off compilation (§I).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dpuv2"
	"dpuv2/internal/pc"
)

func main() {
	g := pc.Generate(pc.Config{
		Name:        "mnist-like",
		Vars:        64,
		TargetNodes: 4000,
		TargetDepth: 26,
		SumFanin:    3,
		Weighted:    true,
		SkipProb:    0.1,
		Seed:        7,
	})
	fmt.Printf("circuit: %d nodes, %d indicator inputs\n", g.NumNodes(), len(g.Inputs()))

	prog, err := dpuv2.Compile(g, dpuv2.MinEDP(), dpuv2.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	st := prog.Stats()
	fmt.Printf("compiled once: %d blocks, %d instructions, %.2f mean PE utilization\n",
		st.Blocks, st.Instructions, st.MeanUtil)

	root := dpuv2.NodeID(g.NumNodes() - 1)
	rng := rand.New(rand.NewSource(42))
	for query := 0; query < 3; query++ {
		// Random hard evidence: each variable's indicators are (1,0) or
		// (0,1); unobserved variables get (1,1) to marginalize.
		inputs := make([]float64, len(g.Inputs()))
		for v := 0; v < len(inputs)/2; v++ {
			switch rng.Intn(3) {
			case 0:
				inputs[2*v], inputs[2*v+1] = 1, 0
			case 1:
				inputs[2*v], inputs[2*v+1] = 0, 1
			default:
				inputs[2*v], inputs[2*v+1] = 1, 1
			}
		}
		res, err := dpuv2.Execute(prog, inputs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %d: unnormalized probability %.6g  (%d cycles, %.2f GOPS)\n",
			query, res.Outputs[prog.SinkOf(root)], res.Report.Cycles, res.Report.ThroughputGOPS)
	}
}
