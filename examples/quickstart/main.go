// Quickstart: build a tiny irregular DAG by hand, compile it for the
// paper's min-EDP DPU-v2 configuration, execute it on the cycle-accurate
// simulator and print the verified result with performance estimates.
package main

import (
	"fmt"
	"log"

	"dpuv2"
)

func main() {
	// (a + b) * 3, plus a second output sharing the sum: a small taste of
	// the irregular fan-out the architecture is designed around.
	g := dpuv2.NewGraph("quickstart")
	a := g.AddInput()
	b := g.AddInput()
	sum := g.AddOp(dpuv2.OpAdd, a, b)
	three := g.AddConst(3)
	scaled := g.AddOp(dpuv2.OpMul, sum, three)
	squared := g.AddOp(dpuv2.OpMul, sum, sum)
	_ = scaled
	_ = squared

	prog, err := dpuv2.Compile(g, dpuv2.MinEDP(), dpuv2.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %d instructions into %d packed bytes\n",
		prog.Stats().Instructions, prog.BinarySize())

	res, err := dpuv2.Execute(prog, []float64{2, 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("(2+5)*3 = %v\n", res.Outputs[prog.SinkOf(scaled)])
	fmt.Printf("(2+5)^2 = %v\n", res.Outputs[prog.SinkOf(squared)])
	fmt.Printf("cycles=%d, throughput=%.3f GOPS, power=%.1f mW, energy/op=%.1f pJ\n",
		res.Report.Cycles, res.Report.ThroughputGOPS, res.Report.PowerMW, res.Report.EnergyPerOpPJ)
}
