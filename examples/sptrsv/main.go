// Sparse triangular solve: lower a 2-D mesh factor L into a DAG, compile
// it once, then solve L·x = b for several right-hand sides — the
// static-sparsity-pattern, changing-values workload of robotic
// localization and mapping (§I). Solutions are cross-checked against the
// direct forward-substitution solver.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"dpuv2"
	"dpuv2/internal/sptrsv"
)

func main() {
	m := sptrsv.Mesh2D(24, 20, 11) // 480×480 lower factor of a 5-point mesh
	g, xs := sptrsv.LowerAll(m)
	fmt.Printf("matrix: n=%d, nnz=%d -> DAG with %d nodes\n", m.N, m.NNZ(), g.NumNodes())

	prog, err := dpuv2.Compile(g, dpuv2.MinEDP(), dpuv2.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled once: %d instructions, %d packed bytes\n",
		prog.Stats().Instructions, prog.BinarySize())

	rng := rand.New(rand.NewSource(3))
	for solve := 0; solve < 3; solve++ {
		b := make([]float64, m.N)
		for i := range b {
			b[i] = rng.Float64()*2 - 1
		}
		res, err := dpuv2.Execute(prog, b)
		if err != nil {
			log.Fatal(err)
		}
		want, err := m.Solve(b)
		if err != nil {
			log.Fatal(err)
		}
		worst := 0.0
		checked := 0
		for i, x := range xs {
			if got, ok := res.Outputs[prog.SinkOf(x)]; ok {
				if d := math.Abs(got - want[i]); d > worst {
					worst = d
				}
				checked++
			}
		}
		fmt.Printf("solve %d: %d components observable, max |dpu - direct| = %.2e  (%d cycles)\n",
			solve, checked, worst, res.Report.Cycles)
	}
}
