// Cross-platform comparison: run one workload through the DPU-v2
// simulator, the real host-parallel level-synchronous executor (the CPU
// baseline's actual algorithm), and the calibrated analytic platform
// models — the fig. 14(a) experiment in miniature.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"time"

	"dpuv2"
	"dpuv2/internal/baseline"
	"dpuv2/internal/pc"
)

func main() {
	spec := pc.Suite()[2] // nltcs
	g := pc.Build(spec, 0.5)
	fmt.Printf("workload: %s stand-in, %d nodes\n", spec.Name, g.NumNodes())

	prog, err := dpuv2.Compile(g, dpuv2.MinEDP(), dpuv2.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	inputs := make([]float64, len(g.Inputs()))
	for i := range inputs {
		inputs[i] = rng.Float64()
	}
	res, err := dpuv2.Execute(prog, inputs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DPU-v2 (simulated @300MHz): %7.2f GOPS, %.3f W\n",
		res.Report.ThroughputGOPS, res.Report.PowerMW/1e3)

	// Real level-synchronous execution on this machine.
	workers := runtime.GOMAXPROCS(0)
	start := time.Now()
	const reps = 20
	for i := 0; i < reps; i++ {
		if _, err := baseline.RunParallel(g, inputs, workers); err != nil {
			log.Fatal(err)
		}
	}
	elapsed := time.Since(start).Seconds() / reps
	ops := float64(prog.Stats().Nodes)
	fmt.Printf("host CPU (%d workers, measured): %7.2f GOPS\n", workers, ops/elapsed/1e9)

	// Calibrated models of the paper's platforms.
	w := baseline.Workload{Nodes: spec.TargetNodes, LongestPath: spec.TargetDepth}
	for _, p := range []baseline.Platform{baseline.DPU1, baseline.CPU, baseline.GPU} {
		fmt.Printf("%-6s (modeled, paper-sized):  %7.2f GOPS, %.1f W\n",
			p, baseline.Throughput(p, w), baseline.PowerW(p, false))
	}
}
