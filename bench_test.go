package dpuv2

// One benchmark per table and figure of the paper's evaluation (§V), each
// delegating to the shared experiment harness in internal/bench at a
// reduced workload scale so `go test -bench=.` stays tractable. Full-size
// runs: `go run ./cmd/dpu-bench -scale 1.0`. Additional micro-benchmarks
// cover the compiler, simulator, instruction codec and the host-parallel
// CPU baseline.

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"dpuv2/internal/arch"
	"dpuv2/internal/baseline"
	"dpuv2/internal/bench"
	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
	"dpuv2/internal/dse"
	"dpuv2/internal/engine"
	"dpuv2/internal/pc"
	"dpuv2/internal/sched"
	"dpuv2/internal/sim"
	"dpuv2/internal/sptrsv"
	"dpuv2/internal/suite"
	"dpuv2/internal/trace"
)

func benchConfig() bench.Config {
	return bench.Config{Scale: 0.1, LargeScale: 0.01}
}

// slowExperiments are the sweep-backed figures that take >1 s per
// iteration at the reduced benchmark scale; `go test -short -bench` (as
// CI runs it) skips them.
var slowExperiments = map[string]bool{"fig11": true, "fig12": true}

func runExperiment(b *testing.B, name string) {
	b.Helper()
	if testing.Short() && slowExperiments[name] {
		b.Skipf("%s takes >1s per iteration; skipped in -short mode", name)
	}
	for i := 0; i < b.N; i++ {
		r := bench.NewRunner(benchConfig())
		out, err := r.Run(name)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty experiment output")
		}
	}
}

func BenchmarkTable1(b *testing.B)    { runExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B)    { runExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B)    { runExperiment(b, "table3") }
func BenchmarkFig1c(b *testing.B)     { runExperiment(b, "fig1c") }
func BenchmarkFig3c(b *testing.B)     { runExperiment(b, "fig3c") }
func BenchmarkFig6e(b *testing.B)     { runExperiment(b, "fig6e") }
func BenchmarkFig10b(b *testing.B)    { runExperiment(b, "fig10b") }
func BenchmarkFig10cd(b *testing.B)   { runExperiment(b, "fig10cd") }
func BenchmarkFig11(b *testing.B)     { runExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)     { runExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)     { runExperiment(b, "fig13") }
func BenchmarkFig14a(b *testing.B)    { runExperiment(b, "fig14a") }
func BenchmarkFig14b(b *testing.B)    { runExperiment(b, "fig14b") }
func BenchmarkProgSize(b *testing.B)  { runExperiment(b, "progsize") }
func BenchmarkFootprint(b *testing.B) { runExperiment(b, "footprint") }

// BenchmarkCompile measures end-to-end compilation speed on a mid-size PC
// (the paper's Table I reports minutes for its Python compiler; the Go
// reimplementation is measured here per op).
func BenchmarkCompile(b *testing.B) {
	g := pc.Build(pc.Suite()[1], 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := compiler.Compile(g, arch.MinEDP(), compiler.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(g.NumNodes()), "nodes/prog")
}

// BenchmarkSimulate measures simulator speed in simulated cycles per
// second of host time, and allocations per run (the exec hot path is
// allocation-free; what remains is Machine construction and result
// readback).
func BenchmarkSimulate(b *testing.B) {
	g := pc.Build(pc.Suite()[1], 0.5)
	c, err := compiler.Compile(g, arch.MinEDP(), compiler.Options{})
	if err != nil {
		b.Fatal(err)
	}
	inputs := make([]float64, len(c.Graph.Inputs()))
	for i := range inputs {
		inputs[i] = 0.5
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(c, inputs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(c.Stats.Cycles), "cycles/run")
}

// BenchmarkMachineRun isolates Machine.Run allocations from the runner's
// result marshalling: machine construction plus the full instruction
// trace, nothing else.
func BenchmarkMachineRun(b *testing.B) {
	g := pc.Build(pc.Suite()[1], 0.5)
	c, err := compiler.Compile(g, arch.MinEDP(), compiler.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := sim.NewMachine(c.Prog.Cfg, c.Prog.InitMem)
		for j, w := range c.InputWord {
			if w >= 0 {
				if err := m.SetMem(w, float64(j)); err != nil {
					b.Fatal(err)
				}
			}
		}
		if err := m.Run(c.Prog); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(c.Stats.Cycles), "cycles/run")
}

// engineBenchWorkload is the fig.-scale serving workload shared by the
// engine benchmarks: the same mid-size PC the compiler/simulator
// micro-benchmarks use.
func engineBenchWorkload(b *testing.B) (*dag.Graph, []float64) {
	b.Helper()
	g := pc.Build(pc.Suite()[1], 0.5)
	inputs := make([]float64, len(g.Inputs()))
	for i := range inputs {
		inputs[i] = 0.5
	}
	return g, inputs
}

// BenchmarkEngineSteadyState measures the serving engine's cache-hit
// execute path: the program is compiled once, every iteration runs on a
// pooled, reset machine. Steady state is allocation-free (0 allocs/op);
// the naive_x metric reports the throughput multiple over a naive
// per-request Compile+Execute of the same workload (measured once before
// the timed loop).
func BenchmarkEngineSteadyState(b *testing.B) {
	g, inputs := engineBenchWorkload(b)
	eng := engine.New(engine.Options{})
	c, err := eng.Compile(g, arch.MinEDP(), compiler.Options{})
	if err != nil {
		b.Fatal(err)
	}
	out := make([]float64, len(c.Graph.Outputs()))
	// One naive request for the amortization metric: fresh compile plus
	// fresh-machine execution, what the façade did before the engine.
	naiveStart := time.Now()
	nc, err := compiler.Compile(g, arch.MinEDP(), compiler.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sim.Run(nc, inputs); err != nil {
		b.Fatal(err)
	}
	naive := time.Since(naiveStart)
	// Warm the machine pool and lazy caches.
	if _, err := eng.ExecuteInto(c, inputs, out); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.ExecuteInto(c, inputs, out); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	perOp := b.Elapsed() / time.Duration(b.N)
	if perOp > 0 {
		b.ReportMetric(float64(naive)/float64(perOp), "naive_x")
	}
	b.ReportMetric(float64(c.Stats.Cycles), "cycles/run")
}

// BenchmarkEngineNaive is the pre-engine serving path on the same
// workload — compile and a fresh machine for every request — the
// denominator of BenchmarkEngineSteadyState's naive_x.
func BenchmarkEngineNaive(b *testing.B) {
	g, inputs := engineBenchWorkload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := compiler.Compile(g, arch.MinEDP(), compiler.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(c, inputs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineBatch measures batched serving: one compile, B-sized
// input batches fanned over the worker pool onto pooled machines.
func BenchmarkEngineBatch(b *testing.B) {
	g, inputs := engineBenchWorkload(b)
	eng := engine.New(engine.Options{})
	c, err := eng.Compile(g, arch.MinEDP(), compiler.Options{})
	if err != nil {
		b.Fatal(err)
	}
	const batchSize = 32
	batches := make([][]float64, batchSize)
	for i := range batches {
		batches[i] = inputs
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.ExecuteBatch(c, batches); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(batchSize, "execs/op")
}

// BenchmarkExecutorBackends races the two execution backends over the
// Table I suite at reduced scale: the same compiled program, the same
// pooled-engine execute path, functional fast-path versus cycle-accurate
// machine. The functional backend skips the per-cycle machine model (PR
// 6's static verifier already proved the schedule hazard-free), so its
// advantage is the price of cycle-accuracy on the serving path.
func BenchmarkExecutorBackends(b *testing.B) {
	names := suite.Names()
	if testing.Short() {
		names = names[:2]
	}
	for _, name := range names {
		g, err := suite.Build(name, 0.05)
		if err != nil {
			b.Fatal(err)
		}
		for _, backend := range []sim.Backend{sim.BackendFunctional, sim.BackendCycleAccurate} {
			b.Run(fmt.Sprintf("%s/%s", name, backend), func(b *testing.B) {
				eng := engine.New(engine.Options{Backend: backend})
				c, err := eng.Compile(g, arch.MinEDP(), compiler.Options{})
				if err != nil {
					b.Fatal(err)
				}
				inputs := make([]float64, len(c.Graph.Inputs()))
				for i := range inputs {
					inputs[i] = 0.5
				}
				out := make([]float64, len(c.Graph.Outputs()))
				if _, err := eng.ExecuteInto(c, inputs, out); err != nil { // warm the pool
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := eng.ExecuteInto(c, inputs, out); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(c.Stats.Nodes), "ops/run")
			})
		}
	}
}

// TestFunctionalBackendStrictlyFaster is the tentpole's performance
// acceptance gate, cheap enough for tier-1: on a mid-size Table I
// workload, the functional backend must beat the cycle-accurate machine
// through the identical engine path — if it doesn't, the fast path has
// stopped being one. The ratio is logged (and printed by the named CI
// step) for the record.
func TestFunctionalBackendStrictlyFaster(t *testing.T) {
	g, err := suite.Build("tretail", 0.25)
	if err != nil {
		t.Fatal(err)
	}
	const iters = 30
	timeBackend := func(backend sim.Backend) time.Duration {
		eng := engine.New(engine.Options{Backend: backend})
		c, err := eng.Compile(g, arch.MinEDP(), compiler.Options{})
		if err != nil {
			t.Fatal(err)
		}
		inputs := make([]float64, len(c.Graph.Inputs()))
		for i := range inputs {
			inputs[i] = 0.5
		}
		out := make([]float64, len(c.Graph.Outputs()))
		for i := 0; i < 3; i++ { // warm pool, scratch and caches
			if _, err := eng.ExecuteInto(c, inputs, out); err != nil {
				t.Fatal(err)
			}
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := eng.ExecuteInto(c, inputs, out); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}
	functional := timeBackend(sim.BackendFunctional)
	cycle := timeBackend(sim.BackendCycleAccurate)
	ratio := float64(cycle) / float64(functional)
	t.Logf("functional %v vs cycle-accurate %v per %d runs: %.1fx faster", functional, cycle, iters, ratio)
	if functional >= cycle {
		t.Errorf("functional backend (%v) is not strictly faster than cycle-accurate (%v)", functional, cycle)
	}
}

// serveConcurrentWorkload is the serving-path benchmark workload: a
// mid-size random DAG small enough that per-request overhead (cache
// touches, machine churn, result marshalling) is a visible fraction of
// the simulated execution — the regime micro-batching targets.
func serveConcurrentWorkload() (*dag.Graph, []float64, arch.Config) {
	g := dag.RandomGraph(dag.RandomConfig{Inputs: 4, Interior: 18, MaxArgs: 2, MulFrac: 0.3, Seed: 11})
	in := make([]float64, len(g.Inputs()))
	for i := range in {
		in[i] = 0.5 + float64(i)*0.125
	}
	return g, in, arch.Config{D: 2, B: 8, R: 16}
}

// runClients drives op from nc concurrent closed-loop clients, splitting
// b.N iterations among them.
func runClients(b *testing.B, nc int, op func() error) {
	b.Helper()
	var wg sync.WaitGroup
	for c := 0; c < nc; c++ {
		n := b.N / nc
		if c < b.N%nc {
			n++
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if err := op(); err != nil {
					b.Error(err)
					return
				}
			}
		}(n)
	}
	wg.Wait()
}

// BenchmarkServeConcurrent is the PR 3 acceptance benchmark: the same
// serving workload driven by concurrent closed-loop clients through PR
// 2's per-request path (each client does Compile-hit + Execute on its
// own) versus the micro-batching scheduler (clients coalesce into
// ExecuteBatchInto batches). Batched must be strictly faster at ≥8
// clients: it pays one compile-cache touch and a couple of machine
// leases per batch instead of per request, and no per-item result maps
// or stats clones. Short mode runs the 8-client pair only.
func BenchmarkServeConcurrent(b *testing.B) {
	clientCounts := []int{8, 32}
	if testing.Short() {
		clientCounts = []int{8}
	}
	g, in, cfg := serveConcurrentWorkload()
	for _, nc := range clientCounts {
		b.Run(fmt.Sprintf("unbatched/clients=%d", nc), func(b *testing.B) {
			eng := engine.New(engine.Options{})
			if _, err := eng.Execute(g, cfg, compiler.Options{}, in); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			runClients(b, nc, func() error {
				_, err := eng.Execute(g, cfg, compiler.Options{}, in)
				return err
			})
		})
		b.Run(fmt.Sprintf("batched/clients=%d", nc), func(b *testing.B) {
			eng := engine.New(engine.Options{})
			sch := sched.New(eng, sched.Options{MaxBatch: nc, Linger: 200 * time.Microsecond})
			defer sch.Close()
			if _, err := sch.Submit(g, cfg, compiler.Options{}, in); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			runClients(b, nc, func() error {
				_, err := sch.Submit(g, cfg, compiler.Options{}, in)
				return err
			})
			b.StopTimer()
			st := sch.Stats()
			if st.BatchSize.Count > 0 {
				b.ReportMetric(st.BatchSize.Mean, "items/batch")
			}
		})
	}
}

// TestServeBatchHotPathAllocZero is the allocation ceiling on the
// scheduler's execution hot path: a warmed serial ExecuteBatchInto (the
// exact call the scheduler's batch runner makes) must not allocate at
// all, whatever the batch size.
func TestServeBatchHotPathAllocZero(t *testing.T) {
	g, in, cfg := serveConcurrentWorkload()
	eng := engine.New(engine.Options{Workers: 1})
	c, err := eng.Compile(g, cfg, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	batches := make([][]float64, n)
	outs := make([][]float64, n)
	cycles := make([]int, n)
	errs := make([]error, n)
	for i := range batches {
		batches[i] = in
		outs[i] = make([]float64, len(c.Graph.Outputs()))
	}
	eng.ExecuteBatchInto(c, batches, outs, cycles, errs) // warm pool
	allocs := testing.AllocsPerRun(10, func() {
		eng.ExecuteBatchInto(c, batches, outs, cycles, errs)
	})
	if allocs > 0 {
		t.Errorf("scheduler hot path allocates %v objects per %d-item batch, want 0", allocs, n)
	}
}

// TestSchedulerSubmitAllocCeiling bounds the full coalescing round trip
// (admission, batch bookkeeping, dispatch goroutine, delivery): the
// ceiling is deliberately generous — it exists to catch a regression
// that reintroduces per-item result maps or stats clones on the batched
// path, which would blow well past it.
func TestSchedulerSubmitAllocCeiling(t *testing.T) {
	g, in, cfg := serveConcurrentWorkload()
	eng := engine.New(engine.Options{Workers: 1})
	sch := sched.New(eng, sched.Options{Linger: -1}) // dispatch immediately: serial round trip
	defer sch.Close()
	if _, err := sch.Submit(g, cfg, compiler.Options{}, in); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := sch.Submit(g, cfg, compiler.Options{}, in); err != nil {
			t.Fatal(err)
		}
	})
	const ceiling = 40
	if allocs > ceiling {
		t.Errorf("scheduler round trip allocates %v objects per submission, ceiling %d", allocs, ceiling)
	}
}

// TestSchedulerSubmitTracedAllocCeiling pins tracing's hot-path cost:
// a submission carrying a live trace stays under the same generous
// ceiling as an untraced one — span recording appends into the trace's
// preallocated buffer and must not add per-item heap traffic.
func TestSchedulerSubmitTracedAllocCeiling(t *testing.T) {
	g, in, cfg := serveConcurrentWorkload()
	eng := engine.New(engine.Options{Workers: 1})
	sch := sched.New(eng, sched.Options{Linger: -1})
	defer sch.Close()
	tracer := trace.New(trace.Options{SampleEvery: 1, MaxSpans: 4096})
	tr := tracer.Start(trace.ID{}, "bench", time.Time{})
	defer tracer.Finish(tr)
	if _, err := sch.SubmitTraced(g, cfg, compiler.Options{}, in, tr); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := sch.SubmitTraced(g, cfg, compiler.Options{}, in, tr); err != nil {
			t.Fatal(err)
		}
	})
	const ceiling = 40 // identical to the untraced ceiling
	if allocs > ceiling {
		t.Errorf("traced round trip allocates %v objects per submission, ceiling %d", allocs, ceiling)
	}
}

// sweepBenchInputs builds the workload suite and grid shared by the
// serial/parallel sweep benchmarks: a reduced suite (two PCs, one
// SpTRSV) over the full 48-point grid.
func sweepBenchInputs() ([]*dag.Graph, []arch.Config) {
	g1 := pc.Build(pc.Suite()[0], 0.05)
	g2 := pc.Build(pc.Suite()[2], 0.05)
	g3, _ := sptrsv.Build(sptrsv.Suite()[1], 0.05)
	return []*dag.Graph{g1, g2, g3}, dse.Grid()
}

// BenchmarkSweepSerial is the §V design-space exploration on one worker —
// the seed's behavior.
func BenchmarkSweepSerial(b *testing.B) {
	workloads, cfgs := sweepBenchInputs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points := dse.SweepParallel(workloads, cfgs, compiler.Options{}, 1)
		if len(points) != len(cfgs) {
			b.Fatal("short sweep")
		}
	}
}

// BenchmarkSweepParallel is the same sweep on one worker per CPU; the
// speedup over BenchmarkSweepSerial tracks the host's core count.
func BenchmarkSweepParallel(b *testing.B) {
	workloads, cfgs := sweepBenchInputs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points := dse.SweepParallel(workloads, cfgs, compiler.Options{}, runtime.GOMAXPROCS(0))
		if len(points) != len(cfgs) {
			b.Fatal("short sweep")
		}
	}
}

// BenchmarkPackUnpack measures the variable-length instruction codec.
func BenchmarkPackUnpack(b *testing.B) {
	g := pc.Build(pc.Suite()[0], 0.25)
	c, err := compiler.Compile(g, arch.MinEDP(), compiler.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		packed := c.Prog.Pack()
		if _, err := arch.Unpack(packed, c.Prog.Cfg, len(c.Prog.Instrs)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(c.Prog.BitSize())/8, "bytes/prog")
}

// BenchmarkHostParallel measures the real level-synchronous CPU baseline
// on this machine.
func BenchmarkHostParallel(b *testing.B) {
	g := pc.Build(pc.Suite()[3], 0.25)
	rng := rand.New(rand.NewSource(1))
	inputs := make([]float64, len(g.Inputs()))
	for i := range inputs {
		inputs[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.RunParallel(g, inputs, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(g.NumNodes()), "nodes/run")
}

// BenchmarkAblationWindow quantifies the value of the step-3 reorder
// window (DESIGN.md ablation): window=1 degenerates to in-order issue.
func BenchmarkAblationWindow(b *testing.B) {
	g := pc.Build(pc.Suite()[0], 0.25)
	for _, w := range []int{1, 30, 300} {
		b.Run(map[int]string{1: "window1", 30: "window30", 300: "window300"}[w], func(b *testing.B) {
			var cycles int
			for i := 0; i < b.N; i++ {
				c, err := compiler.Compile(g, arch.MinEDP(), compiler.Options{Window: w})
				if err != nil {
					b.Fatal(err)
				}
				cycles = c.Stats.Cycles
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// BenchmarkAblationTopology quantifies the interconnect choice (fig. 6):
// cycles under each output topology.
func BenchmarkAblationTopology(b *testing.B) {
	g := pc.Build(pc.Suite()[0], 0.25)
	for _, tp := range []arch.OutputTopology{arch.OutCrossbar, arch.OutPerLayer, arch.OutPerPE} {
		b.Run(tp.String(), func(b *testing.B) {
			cfg := arch.Config{D: 3, B: 64, R: 32, Output: tp}
			var cycles int
			for i := 0; i < b.N; i++ {
				c, err := compiler.Compile(g, cfg, compiler.Options{})
				if err != nil {
					b.Fatal(err)
				}
				cycles = c.Stats.Cycles
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// BenchmarkAblationDepth quantifies the tree-depth choice at constant
// bank count (the paper's "increasing D improves latency without more
// power" observation).
func BenchmarkAblationDepth(b *testing.B) {
	g := pc.Build(pc.Suite()[0], 0.25)
	for _, d := range []int{1, 2, 3} {
		b.Run([]string{"", "D1", "D2", "D3"}[d], func(b *testing.B) {
			cfg := arch.Config{D: d, B: 64, R: 32, Output: arch.OutPerLayer}
			var cycles int
			for i := 0; i < b.N; i++ {
				c, err := compiler.Compile(g, cfg, compiler.Options{})
				if err != nil {
					b.Fatal(err)
				}
				cycles = c.Stats.Cycles
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}
