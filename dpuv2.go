// Package dpuv2 is the public façade of the DPU-v2 reproduction: build or
// import an irregular computation DAG, compile it for a DPU-v2
// configuration, execute it on the cycle-accurate simulator, and read
// back verified results together with performance and energy estimates.
//
// The heavy lifting lives in the internal packages (see DESIGN.md for the
// map); this package re-exports the types a downstream user needs:
//
//	g := dpuv2.NewGraph("demo")
//	a, b := g.AddInput(), g.AddInput()
//	g.AddOp(dpuv2.OpMul, g.AddOp(dpuv2.OpAdd, a, b), g.AddConst(3))
//
//	prog, _ := dpuv2.Compile(g, dpuv2.MinEDP(), dpuv2.CompileOptions{})
//	res, _ := dpuv2.Execute(prog, []float64{2, 5})
//	fmt.Println(res.Outputs, res.Report.ThroughputGOPS)
package dpuv2

import (
	"fmt"

	"dpuv2/internal/arch"
	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
	"dpuv2/internal/energy"
	"dpuv2/internal/sim"
)

// Re-exported DAG construction API.
type (
	// Graph is an irregular computation DAG under construction.
	Graph = dag.Graph
	// NodeID identifies a node within a Graph.
	NodeID = dag.NodeID
	// Op is a node operation (OpInput, OpConst, OpAdd, OpMul).
	Op = dag.Op
)

// Node operations.
const (
	OpInput = dag.OpInput
	OpConst = dag.OpConst
	OpAdd   = dag.OpAdd
	OpMul   = dag.OpMul
)

// NewGraph returns an empty DAG with a display name.
func NewGraph(name string) *Graph { return dag.New(name) }

// Config is a DPU-v2 hardware configuration (tree depth D, banks B,
// registers per bank R, output interconnect).
type Config = arch.Config

// MinEDP returns the configuration the paper's design-space exploration
// selects (D=3, B=64, R=32).
func MinEDP() Config { return arch.MinEDP() }

// Large returns the DPU-v2 (L) configuration used for multi-million-node
// circuits.
func Large() Config { return arch.Large() }

// CompileOptions tunes the compiler; the zero value matches the paper.
type CompileOptions = compiler.Options

// Program is a compiled, runnable DPU-v2 executable with its metadata.
type Program struct {
	compiled *compiler.Compiled
}

// Compile lowers a DAG onto the given configuration using the four-step
// compiler of the paper (§IV).
func Compile(g *Graph, cfg Config, opts CompileOptions) (*Program, error) {
	c, err := compiler.Compile(g, cfg, opts)
	if err != nil {
		return nil, err
	}
	return &Program{compiled: c}, nil
}

// Stats exposes what compilation did (instruction mix, conflicts
// repaired, spills, utilization).
func (p *Program) Stats() compiler.Stats { return p.compiled.Stats }

// BinarySize returns the densely packed program size in bytes.
func (p *Program) BinarySize() int { return (p.compiled.Prog.BitSize() + 7) / 8 }

// Binary returns the packed instruction stream (fig. 7(b)).
func (p *Program) Binary() []byte { return p.compiled.Prog.Pack() }

// Report summarizes one execution.
type Report struct {
	Cycles         int
	ThroughputGOPS float64
	PowerMW        float64
	EnergyPerOpPJ  float64
	EDP            float64 // pJ·ns per operation
}

// Result is a verified execution outcome. Outputs are keyed by the sink
// node ids of the compiled (binarized) graph; Sinks lists them in order.
type Result struct {
	Outputs map[NodeID]float64
	Sinks   []NodeID
	Report  Report
}

// Execute runs the program on the cycle-accurate simulator with the given
// input values (in graph-input order) and verifies every sink against the
// reference evaluator before returning.
func Execute(p *Program, inputs []float64) (*Result, error) {
	res, err := sim.Verify(p.compiled, inputs, 0)
	if err != nil {
		return nil, fmt.Errorf("dpuv2: %w", err)
	}
	est := energy.EstimateRun(p.compiled.Prog.Cfg, p.compiled.Stats.Nodes, res.Stats, p.compiled.Prog)
	out := &Result{
		Outputs: res.Outputs,
		Sinks:   append([]NodeID(nil), p.compiled.Graph.Outputs()...),
		Report: Report{
			Cycles:         res.Stats.Cycles,
			ThroughputGOPS: est.ThroughputGOP,
			PowerMW:        est.PowerMW,
			EnergyPerOpPJ:  est.EnergyPerOp,
			EDP:            est.EDP,
		},
	}
	return out, nil
}

// SinkOf maps a node id of the original (pre-binarization) graph to the
// corresponding sink id in Result.Outputs.
func (p *Program) SinkOf(original NodeID) NodeID {
	return p.compiled.Remap[original]
}
