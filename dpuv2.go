// Package dpuv2 is the public façade of the DPU-v2 reproduction: build or
// import an irregular computation DAG, compile it for a DPU-v2
// configuration, execute it on the cycle-accurate simulator, and read
// back verified results together with performance and energy estimates.
//
// The heavy lifting lives in the internal packages (see DESIGN.md for the
// map); this package re-exports the types a downstream user needs:
//
//	g := dpuv2.NewGraph("demo")
//	a, b := g.AddInput(), g.AddInput()
//	g.AddOp(dpuv2.OpMul, g.AddOp(dpuv2.OpAdd, a, b), g.AddConst(3))
//
//	prog, _ := dpuv2.Compile(g, dpuv2.MinEDP(), dpuv2.CompileOptions{})
//	res, _ := dpuv2.Execute(prog, []float64{2, 5})
//	fmt.Println(res.Outputs, res.Report.ThroughputGOPS)
package dpuv2

import (
	"errors"
	"fmt"
	"sync"

	"dpuv2/internal/arch"
	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
	"dpuv2/internal/energy"
	"dpuv2/internal/engine"
	"dpuv2/internal/par"
	"dpuv2/internal/sim"
)

// Re-exported DAG construction API.
type (
	// Graph is an irregular computation DAG under construction.
	Graph = dag.Graph
	// NodeID identifies a node within a Graph.
	NodeID = dag.NodeID
	// Op is a node operation (OpInput, OpConst, OpAdd, OpMul).
	Op = dag.Op
)

// Node operations.
const (
	OpInput = dag.OpInput
	OpConst = dag.OpConst
	OpAdd   = dag.OpAdd
	OpMul   = dag.OpMul
)

// NewGraph returns an empty DAG with a display name.
func NewGraph(name string) *Graph { return dag.New(name) }

// Config is a DPU-v2 hardware configuration (tree depth D, banks B,
// registers per bank R, output interconnect).
type Config = arch.Config

// MinEDP returns the configuration the paper's design-space exploration
// selects (D=3, B=64, R=32).
func MinEDP() Config { return arch.MinEDP() }

// Large returns the DPU-v2 (L) configuration used for multi-million-node
// circuits.
func Large() Config { return arch.Large() }

// CompileOptions tunes the compiler; the zero value matches the paper.
type CompileOptions = compiler.Options

// Program is a compiled, runnable DPU-v2 executable with its metadata.
type Program struct {
	compiled *compiler.Compiled
}

// Fingerprint is a stable content hash of a Graph (the compile-cache
// address of the serving engine).
type Fingerprint = dag.Fingerprint

// Compile lowers a DAG onto the given configuration using the four-step
// compiler of the paper (§IV). It is a thin wrapper over the package's
// default serving engine: structurally identical graphs compiled for the
// same configuration and options share one compilation.
func Compile(g *Graph, cfg Config, opts CompileOptions) (*Program, error) {
	return DefaultEngine().Compile(g, cfg, opts)
}

// Stats exposes what compilation did (instruction mix, conflicts
// repaired, spills, utilization).
func (p *Program) Stats() compiler.Stats { return p.compiled.Stats }

// BinarySize returns the densely packed program size in bytes.
func (p *Program) BinarySize() int { return (p.compiled.Prog.BitSize() + 7) / 8 }

// Binary returns the packed instruction stream (fig. 7(b)).
func (p *Program) Binary() []byte { return p.compiled.Prog.Pack() }

// Report summarizes one execution.
type Report struct {
	Cycles         int
	ThroughputGOPS float64
	PowerMW        float64
	EnergyPerOpPJ  float64
	EDP            float64 // pJ·ns per operation
}

// Result is a verified execution outcome. Outputs are keyed by the sink
// node ids of the compiled (binarized) graph; Sinks lists them in order.
type Result struct {
	Outputs map[NodeID]float64
	Sinks   []NodeID
	Report  Report
}

// Execute runs the program on the cycle-accurate simulator with the given
// input values (in graph-input order) and verifies every sink against the
// reference evaluator before returning. It is a thin wrapper over the
// package's default serving engine, so the machine it runs on comes from
// the engine's per-configuration pool.
func Execute(p *Program, inputs []float64) (*Result, error) {
	return DefaultEngine().Execute(p, inputs)
}

// EngineOptions tune a serving Engine; the zero value is a
// production-ready default.
type EngineOptions = engine.Options

// EngineStats is a snapshot of a serving engine's activity: compile-cache
// hits/misses/evictions, cached programs, in-flight and completed
// executions.
type EngineStats = engine.Stats

// Engine is the compile-once/execute-many serving layer: a
// content-addressed compile cache (single-flight, LRU-bounded) in front
// of a per-configuration pool of simulator machines. One Engine serves
// any number of goroutines.
type Engine struct {
	e *engine.Engine
}

// NewEngine returns a serving engine with the given options.
func NewEngine(opts EngineOptions) *Engine {
	return &Engine{e: engine.New(opts)}
}

var defaultEngine = sync.OnceValue(func() *Engine { return NewEngine(EngineOptions{}) })

// DefaultEngine returns the process-wide engine backing the package-level
// Compile and Execute.
func DefaultEngine() *Engine { return defaultEngine() }

// Compile returns the compiled program for (g, cfg, opts), compiling at
// most once per content address: concurrent callers for the same graph,
// configuration and options share a single compilation; later callers
// hit the cache.
func (en *Engine) Compile(g *Graph, cfg Config, opts CompileOptions) (*Program, error) {
	c, err := en.e.Compile(g, cfg, opts)
	if err != nil {
		return nil, err
	}
	return &Program{compiled: c}, nil
}

// Execute runs the program on a pooled machine, verifies every sink
// against the reference evaluator, and returns the verified result with
// its performance and energy report.
func (en *Engine) Execute(p *Program, inputs []float64) (*Result, error) {
	res, err := en.e.ExecuteCompiled(p.compiled, inputs)
	if err != nil {
		return nil, fmt.Errorf("dpuv2: %w", err)
	}
	if err := sim.CheckOutputs(p.compiled, inputs, res, 0); err != nil {
		return nil, fmt.Errorf("dpuv2: %w", err)
	}
	return wrapResult(p, res), nil
}

// ExecuteBatch runs the program over a batch of input vectors on the
// engine's worker pool. Results come back in input order; failed items
// are nil with their errors joined, so callers can salvage the completed
// part of a batch. Successful items are verified against the reference
// evaluator like Execute — in parallel, since a reference evaluation
// costs about as much as the simulation it checks.
func (en *Engine) ExecuteBatch(p *Program, batches [][]float64) ([]*Result, error) {
	raw, errs := en.e.ExecuteBatchItems(p.compiled, batches)
	out := make([]*Result, len(raw))
	par.ForEach(len(raw), en.e.Workers(), func(i int) {
		if errs[i] != nil {
			errs[i] = fmt.Errorf("dpuv2: batch %d: %w", i, errs[i])
			return
		}
		if cerr := sim.CheckOutputs(p.compiled, batches[i], raw[i], 0); cerr != nil {
			errs[i] = fmt.Errorf("dpuv2: batch %d: %w", i, cerr)
			return
		}
		out[i] = wrapResult(p, raw[i])
	})
	return out, errors.Join(errs...)
}

// Stats returns a snapshot of the engine's counters.
func (en *Engine) Stats() EngineStats { return en.e.Stats() }

// wrapResult attaches the energy/performance report to a raw simulator
// result.
func wrapResult(p *Program, res *sim.Result) *Result {
	est := energy.EstimateRun(p.compiled.Prog.Cfg, p.compiled.Stats.Nodes, res.Stats, p.compiled.Prog)
	return &Result{
		Outputs: res.Outputs,
		Sinks:   append([]NodeID(nil), p.compiled.Graph.Outputs()...),
		Report: Report{
			Cycles:         res.Stats.Cycles,
			ThroughputGOPS: est.ThroughputGOP,
			PowerMW:        est.PowerMW,
			EnergyPerOpPJ:  est.EnergyPerOp,
			EDP:            est.EDP,
		},
	}
}

// SinkOf maps a node id of the original (pre-binarization) graph to the
// corresponding sink id in Result.Outputs.
func (p *Program) SinkOf(original NodeID) NodeID {
	return p.compiled.Remap[original]
}
