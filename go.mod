module dpuv2

go 1.24
