// Package tune closes the loop from the paper's design-space exploration
// to the serving path: where the DSE of §V is a reporting tool (which
// config is best for a workload suite, fig. 11–13), the Tuner makes the
// same sweep a per-workload production decision. Given one DAG and a
// candidate configuration grid, it compiles and simulates the candidates
// under a wall-clock/point budget (dse.SweepContext + the internal/energy
// cost model), compares the winner against the configuration requests
// would otherwise be served on, and emits a persisted, checksummed
// artifact.Decision the serving engine switches to.
//
// The decision is conservative by construction:
//
//   - the default config's own score is always measured, and the tuned
//     config must beat it by MinGain (relative) to be selected — ties
//     and noise-level wins pin the default, so autotuning can only help;
//   - an expired budget yields a decision over the points evaluated so
//     far (provenance records how many), never an error;
//   - evaluation is deterministic (fixed simulation inputs, a
//     deterministic compiler per seed, an analytical energy model), so
//     the same workload, grid and budget-permitting machine produce the
//     same decision — the property the energy ranking-stability test
//     pins.
//
// Two search modes share that contract. SearchGrid (the default) sweeps
// the candidate grid exactly as before. SearchAnneal seeds simulated
// annealing (dse.SearchAnneal) from the best grid point and explores the
// enlarged off-grid space — deeper trees, wider bank/register ladders,
// alternate output topologies, data-memory sizing — with a fixed chain
// count and a seeded PCG per chain, so the same (seed, budget-in-points)
// reproduces the identical decision at any worker count. The decision's
// provenance records which search ran and, for anneal, the seed, chain
// shape, temperature schedule and accepted/rejected counts needed to
// replay it.
package tune

import (
	"context"
	"errors"
	"fmt"
	"time"

	"dpuv2/internal/arch"
	"dpuv2/internal/artifact"
	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
	"dpuv2/internal/dse"
)

// Version names the tuning policy in decision provenance; bump when the
// selection logic changes meaningfully (operators use it to decide which
// persisted decisions to re-tune). /2 added the anneal search mode and
// canonical tie-breaking in dse.Best.
const Version = "dpu-tune/2"

// SearchKind selects how the tuner generates candidate configurations.
type SearchKind int

const (
	// SearchGrid sweeps the candidate grid (the paper's 48 points by
	// default) — the only mode before dpu-tune/2.
	SearchGrid SearchKind = iota
	// SearchAnneal seeds simulated annealing from the best grid point
	// and explores the enlarged off-grid design space.
	SearchAnneal
)

// String names the kind as recorded in decision provenance.
func (k SearchKind) String() string {
	switch k {
	case SearchGrid:
		return "grid"
	case SearchAnneal:
		return "anneal"
	}
	return fmt.Sprintf("search(%d)", int(k))
}

// Parse sets k from its provenance/flag spelling.
func (k *SearchKind) Parse(s string) error {
	switch s {
	case "grid":
		*k = SearchGrid
	case "anneal":
		*k = SearchAnneal
	default:
		return fmt.Errorf("tune: unknown search kind %q (want grid or anneal)", s)
	}
	return nil
}

// ErrNoFeasiblePoint reports a workload no candidate configuration (nor
// the default) could compile and run.
var ErrNoFeasiblePoint = errors.New("tune: no feasible configuration")

// Options configure a Tuner; the zero value sweeps the paper's full
// 48-point grid for minimum latency with no budget.
type Options struct {
	// Grid is the candidate configuration list; nil means dse.Grid(),
	// the paper's 48-point sweep.
	Grid []arch.Config
	// Metric is the optimization target. The default (zero value) is
	// MinLatency — "the config the DSE says is fastest" — matching the
	// serving path's goal; offline tuners may prefer MinEDP.
	Metric dse.Metric
	// Budget bounds tuning wall time; when it expires the sweep stops
	// and the decision is made over the points evaluated so far.
	// 0 means no time bound.
	Budget time.Duration
	// MaxPoints bounds how many grid points are evaluated (0: all).
	// Points are taken from the front of the grid, so callers can order
	// candidates most-promising-first.
	MaxPoints int
	// Workers sizes the sweep's worker pool (<= 0: one per CPU).
	Workers int
	// MinGain is the relative improvement over the default config the
	// winner must show to be selected (0.01 = 1%). Default 0.01; the
	// tuned score must satisfy score < default·(1−MinGain), so exact
	// ties always pin the default. Negative values are clamped to 0
	// (require strictly better) — a gain threshold below zero would let
	// the tuner select a config *slower* than the default.
	MinGain float64
	// Now is the decision-timestamp source, injectable for tests; nil
	// means time.Now.
	Now func() time.Time
	// Search selects candidate generation: SearchGrid (default) sweeps
	// Grid, SearchAnneal additionally runs simulated annealing seeded
	// from the best grid point.
	Search SearchKind
	// Anneal parameterizes SearchAnneal (Seed, Chains, Steps, InitTemp,
	// Cool). Metric, Start, Workers and Guard are supplied by the tuner
	// and ignored here.
	Anneal dse.AnnealOptions
}

func (o Options) normalize() Options {
	if o.Grid == nil {
		o.Grid = dse.Grid()
	}
	if o.MinGain == 0 {
		o.MinGain = 0.01
	} else if o.MinGain < 0 {
		o.MinGain = 0
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Tuner runs budgeted per-workload configuration searches. It is
// stateless and safe for concurrent use.
type Tuner struct {
	opts Options
}

// New returns a tuner with the given options.
func New(opts Options) *Tuner {
	return &Tuner{opts: opts.normalize()}
}

// Tune evaluates the candidate grid for g under the tuner's budget and
// returns the decision: serve g on the winning configuration, or on the
// default when nothing beat it by MinGain. def is the configuration
// requests are currently served on (the baseline to beat); copts are the
// compiler options used for every candidate (they are part of the
// decision so the tuned artifact's cache key is reproducible).
//
// Cancellation of ctx stops the sweep at the next point/workload
// boundary; the decision is then made over the partial results, exactly
// like a budget expiry. Tune only errors when not even the default
// config is usable and no candidate was feasible either.
func (t *Tuner) Tune(ctx context.Context, g *dag.Graph, def arch.Config, copts compiler.Options) (*artifact.Decision, error) {
	d, _, err := t.TuneTrace(ctx, g, def, copts)
	return d, err
}

// TuneTrace is Tune plus the search trace: for SearchAnneal it also
// returns the dse.Trace that reproduces the run (nil in grid mode).
// It is the call CLI frontends use to emit reproducibility records the
// CI determinism check can diff.
func (t *Tuner) TuneTrace(ctx context.Context, g *dag.Graph, def arch.Config, copts compiler.Options) (*artifact.Decision, *dse.Trace, error) {
	def = def.Normalize()
	copts = copts.Normalized()
	start := t.opts.Now()

	// The default is evaluated first, outside the budgeted sweep — the
	// budget timer starts only after the baseline is measured, so a
	// budget too small (or a baseline too slow) never produces a
	// decision that switches configs on no evidence, and the sweep
	// always gets the full budget the operator asked for.
	defScore, defErr := t.evaluate(g, def, copts)

	if t.opts.Budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t.opts.Budget)
		defer cancel()
	}

	grid := make([]arch.Config, 0, len(t.opts.Grid))
	for _, c := range t.opts.Grid {
		c = c.Normalize()
		if t.opts.Search == SearchGrid && c == def {
			continue // already measured as the baseline
		}
		grid = append(grid, c)
	}
	// GridSize records the full candidate space (plus the baseline),
	// captured before any MaxPoints truncation: provenance must show
	// when a search was not exhaustive, or nobody re-tunes decisions
	// that deserve it. In anneal mode the space also includes every
	// chain step the schedule could evaluate.
	gridSize := len(grid) + 1
	if t.opts.MaxPoints > 0 && len(grid) > t.opts.MaxPoints {
		grid = grid[:t.opts.MaxPoints]
	}

	var points []dse.Point
	var trace *dse.Trace
	if t.opts.Search == SearchAnneal {
		// The def config stays in the start set here (unlike grid mode):
		// annealing seeds from the best start point, and dropping the
		// baseline could seed the chains from a worse corner.
		aopts := t.opts.Anneal
		aopts.Metric = t.opts.Metric
		aopts.Workers = t.opts.Workers
		aopts.Start = grid
		aopts.StartPoints = nil
		aopts.Guard = nil // engine.CheckMachineBounds
		var tr dse.Trace
		points, tr = dse.SearchAnneal(ctx, []*dag.Graph{g}, copts, aopts)
		trace = &tr
		gridSize += tr.Chains * tr.Steps
	} else {
		points = dse.SweepContext(ctx, []*dag.Graph{g}, grid, copts, t.opts.Workers)
	}
	evaluated := 0
	for _, p := range points {
		if !errors.Is(p.Err, context.Canceled) && !errors.Is(p.Err, context.DeadlineExceeded) {
			evaluated++
		}
	}
	if defErr == nil {
		evaluated++ // the baseline measurement
	}

	d := &artifact.Decision{
		Fingerprint: g.Fingerprint(),
		Config:      def,
		Options:     copts,
		Score:       defScore,
		Provenance: artifact.Provenance{
			Metric:       t.opts.Metric.String(),
			Default:      def,
			DefaultScore: defScore,
			Points:       evaluated,
			GridSize:     gridSize,
			BudgetNS:     int64(t.opts.Budget),
			TunedAtUnix:  start.Unix(),
			Tuner:        Version,
			Search:       t.opts.Search.String(),
		},
	}
	if trace != nil {
		d.Provenance.Seed = trace.Seed
		d.Provenance.Chains = trace.Chains
		d.Provenance.Steps = trace.Steps
		d.Provenance.InitTemp = trace.InitTemp
		d.Provenance.Cool = trace.Cool
		d.Provenance.Accepted = trace.Accepted
		d.Provenance.Rejected = trace.Rejected
	}

	best, ok := dse.Best(points, t.opts.Metric)
	switch {
	case defErr != nil && !ok:
		return nil, nil, fmt.Errorf("%w: default %v failed (%v) and no candidate was feasible", ErrNoFeasiblePoint, def, defErr)
	case defErr != nil:
		// The requested config cannot even run the workload; any feasible
		// candidate is an improvement.
		d.Config, d.Score = best.Cfg, t.opts.Metric.Value(best)
		d.Provenance.DefaultScore = 0 // nothing to compare against
	case ok && t.opts.Metric.Value(best) < defScore*(1-t.opts.MinGain):
		d.Config, d.Score = best.Cfg, t.opts.Metric.Value(best)
	}
	return d, trace, nil
}

// evaluate scores one configuration on the tuner's metric.
func (t *Tuner) evaluate(g *dag.Graph, cfg arch.Config, copts compiler.Options) (float64, error) {
	est, err := dse.Evaluate(g, cfg, copts)
	if err != nil {
		return 0, err
	}
	return t.opts.Metric.ValueOf(est), nil
}
