package tune

import (
	"context"
	"encoding/json"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"dpuv2/internal/arch"
	"dpuv2/internal/artifact"
	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
	"dpuv2/internal/dse"
	"dpuv2/internal/engine"
	"dpuv2/internal/pc"
)

// tuneWorkload is the suite workload the win tests use: tretail at a
// scale where the min-latency grid point strictly beats the min-EDP
// default (~3% fewer cycles), measured once and cached — tuning sweeps
// the full 48-point grid, which is too slow to repeat per test.
var tuneWorkload = sync.OnceValue(func() *dag.Graph {
	return pc.Build(pc.Suite()[0], 0.02)
})

var tunedDecision = sync.OnceValues(func() (*artifact.Decision, error) {
	g := tuneWorkload()
	tuner := New(Options{Metric: dse.MinLatency})
	return tuner.Tune(context.Background(), g, arch.MinEDP(), compiler.Options{})
})

// TestTunerFindsStrictWin is the acceptance path: tuning a suite
// workload for latency must select a non-default configuration whose
// score strictly beats the default's.
func TestTunerFindsStrictWin(t *testing.T) {
	d, err := tunedDecision()
	if err != nil {
		t.Fatal(err)
	}
	def := arch.MinEDP()
	if d.Config == def {
		t.Fatalf("tuner pinned the default %v; expected a strict win on this workload", def)
	}
	if d.Score >= d.Provenance.DefaultScore {
		t.Fatalf("tuned score %.4f not strictly better than default %.4f", d.Score, d.Provenance.DefaultScore)
	}
	if d.Fingerprint != tuneWorkload().Fingerprint() {
		t.Fatal("decision fingerprint does not match the workload")
	}
	if d.Provenance.Metric != "latency" || d.Provenance.Tuner != Version {
		t.Fatalf("provenance incomplete: %+v", d.Provenance)
	}
	if d.Provenance.Points != d.Provenance.GridSize || d.Provenance.GridSize != len(dse.Grid()) {
		t.Fatalf("unbudgeted full-grid tune evaluated %d of %d points (grid %d)",
			d.Provenance.Points, d.Provenance.GridSize, len(dse.Grid()))
	}
}

// TestTunedConfigStrictlyFasterThanDefault re-runs the tuned and default
// configurations through the full compile+simulate pipeline and asserts
// the decision's promise holds in simulated cycles — the non-benchmark
// half of the tuned-vs-default acceptance criterion.
func TestTunedConfigStrictlyFasterThanDefault(t *testing.T) {
	d, err := tunedDecision()
	if err != nil {
		t.Fatal(err)
	}
	g := tuneWorkload()
	defEst, err := dse.Evaluate(g, arch.MinEDP(), compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tunedEst, err := dse.Evaluate(g, d.Config, d.Options)
	if err != nil {
		t.Fatal(err)
	}
	if tunedEst.Cycles >= defEst.Cycles {
		t.Fatalf("tuned %v runs %d cycles, default %v runs %d — not strictly faster",
			d.Config, tunedEst.Cycles, arch.MinEDP(), defEst.Cycles)
	}
	t.Logf("tuned %v: %d cycles vs default %d cycles (%.1f%% faster)",
		d.Config, tunedEst.Cycles, defEst.Cycles,
		100*float64(defEst.Cycles-tunedEst.Cycles)/float64(defEst.Cycles))
}

// TestTunerDeterministic: the same workload and options produce the same
// decision, field for field (timestamps injected) — the property that
// makes persisted decisions trustworthy across re-tunes.
func TestTunerDeterministic(t *testing.T) {
	g := pc.Build(pc.Suite()[1], 0.01)
	now := func() time.Time { return time.Unix(1_700_000_000, 0) }
	// A small grid keeps the repeat affordable.
	grid := []arch.Config{
		{D: 1, B: 8, R: 16, Output: arch.OutPerLayer},
		{D: 2, B: 16, R: 16, Output: arch.OutPerLayer},
		{D: 2, B: 32, R: 16, Output: arch.OutPerLayer},
		{D: 3, B: 64, R: 16, Output: arch.OutPerLayer},
	}
	opts := Options{Grid: grid, Metric: dse.MinEDP, Now: now}
	d1, err := New(opts).Tune(context.Background(), g, arch.MinEDP(), compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := New(opts).Tune(context.Background(), g.Clone(), arch.MinEDP(), compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if *d1 != *d2 {
		t.Fatalf("same inputs, different decisions:\n %+v\n %+v", d1, d2)
	}
}

// TestTunerBudgetPinsDefault: a budget too small to evaluate any
// candidate yields a valid decision that pins the default — partial
// evidence never switches configs — and provenance records the truncated
// sweep.
func TestTunerBudgetPinsDefault(t *testing.T) {
	g := tuneWorkload()
	tuner := New(Options{Metric: dse.MinLatency, Budget: time.Nanosecond})
	d, err := tuner.Tune(context.Background(), g, arch.MinEDP(), compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Config != arch.MinEDP() {
		t.Fatalf("expired budget still switched to %v", d.Config)
	}
	if d.Score != d.Provenance.DefaultScore {
		t.Fatalf("pinned decision's score %.4f != default score %.4f", d.Score, d.Provenance.DefaultScore)
	}
	if d.Provenance.Points >= d.Provenance.GridSize {
		t.Fatalf("1ns budget evaluated %d of %d points", d.Provenance.Points, d.Provenance.GridSize)
	}
	if d.Provenance.BudgetNS != 1 {
		t.Fatalf("budget not recorded: %+v", d.Provenance)
	}
}

// TestTunerCancellation: canceling the caller's context behaves like a
// budget expiry, not an error.
func TestTunerCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d, err := New(Options{Metric: dse.MinLatency}).Tune(ctx, tuneWorkload(), arch.MinEDP(), compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Config != arch.MinEDP() {
		t.Fatalf("canceled tune switched configs: %v", d.Config)
	}
}

// TestTunerMinGainPinsDefault: with an unreachable gain threshold the
// tuner must keep the default even though better points exist.
func TestTunerMinGainPinsDefault(t *testing.T) {
	g := tuneWorkload()
	tuner := New(Options{Metric: dse.MinLatency, MinGain: 0.99})
	d, err := tuner.Tune(context.Background(), g, arch.MinEDP(), compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Config != arch.MinEDP() {
		t.Fatalf("99%%-gain threshold still switched to %v", d.Config)
	}

	// A negative gain threshold (which would accept configs *slower*
	// than the default) is clamped to "strictly better": the decision
	// can never be a regression.
	d, err = New(Options{Metric: dse.MinLatency, MinGain: -0.5}).Tune(context.Background(), g, arch.MinEDP(), compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Config != d.Provenance.Default && d.Score >= d.Provenance.DefaultScore {
		t.Fatalf("negative MinGain selected a slower config: %.4f vs default %.4f", d.Score, d.Provenance.DefaultScore)
	}
}

// TestTunerInfeasibleDefault: when the requested config cannot run the
// workload at all, any feasible candidate wins.
func TestTunerInfeasibleDefault(t *testing.T) {
	g := dag.RandomGraph(dag.RandomConfig{Inputs: 400, Interior: 3000, MaxArgs: 2, MulFrac: 0.5, Seed: 2})
	tiny := arch.Config{D: 3, B: 8, R: 2, Output: arch.OutPerLayer}
	if _, err := dse.Evaluate(g, tiny, compiler.Options{}); err == nil {
		t.Skip("tiny-R config unexpectedly feasible for this graph")
	}
	grid := []arch.Config{tiny, arch.MinEDP()}
	d, err := New(Options{Grid: grid, Metric: dse.MinLatency}).Tune(context.Background(), g, tiny, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Config != arch.MinEDP() {
		t.Fatalf("infeasible default not replaced: %v", d.Config)
	}

	// And when nothing at all is feasible, Tune errors.
	if _, err := New(Options{Grid: []arch.Config{tiny}, Metric: dse.MinLatency}).Tune(context.Background(), g, tiny, compiler.Options{}); !errors.Is(err, ErrNoFeasiblePoint) {
		t.Fatalf("want ErrNoFeasiblePoint, got %v", err)
	}
}

// TestTunedDecisionEncodable: every decision the tuner emits must
// survive the .dputune round trip — the contract between tuning and
// persistence.
func TestTunedDecisionEncodable(t *testing.T) {
	d, err := tunedDecision()
	if err != nil {
		t.Fatal(err)
	}
	b, err := artifact.EncodeDecisionBytes(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := artifact.DecodeDecisionBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *d {
		t.Fatal("decision changed across the .dputune round trip")
	}
}

// BenchmarkTunedVsDefault executes the tuned workload on pooled engine
// machines under both configurations and reports the modeled hardware
// latency per execution (hw_ns/op = simulated cycles × the config's
// clock period) alongside the raw cycle count. That is the quantity the
// DSE optimizes and the serving path's notion of "faster"; the tuned
// config strictly wins it (TestTunedConfigStrictlyFasterThanDefault pins
// the same claim as an assertion). Go's own ns/op here is the *host*
// cost of simulating a cycle, which varies with config shape and is not
// the hardware's speed:
//
//	go test -bench TunedVsDefault -benchtime 2s ./internal/tune
func BenchmarkTunedVsDefault(b *testing.B) {
	d, err := tunedDecision()
	if err != nil {
		b.Fatal(err)
	}
	g := tuneWorkload()
	for _, bc := range []struct {
		name string
		cfg  arch.Config
	}{
		{"default", arch.MinEDP()},
		{"tuned", d.Config},
	} {
		b.Run(bc.name, func(b *testing.B) {
			eng := engine.New(engine.Options{})
			c, err := eng.Compile(g, bc.cfg, d.Options)
			if err != nil {
				b.Fatal(err)
			}
			inputs := make([]float64, len(c.Graph.Inputs()))
			for i := range inputs {
				inputs[i] = 0.5
			}
			out := make([]float64, len(c.Graph.Outputs()))
			cycles := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cyc, err := eng.ExecuteInto(c, inputs, out)
				if err != nil {
					b.Fatal(err)
				}
				cycles = cyc
			}
			b.ReportMetric(float64(cycles), "simcycles/op")
			b.ReportMetric(float64(cycles)*1e3/c.Prog.Cfg.ClockMHz, "hw_ns/op")
		})
	}
}

// annealTuneOptions is a small, fast anneal-search configuration over a
// truncated candidate grid.
func annealTuneOptions(workers int) Options {
	return Options{
		Metric:  dse.MinEDP,
		Workers: workers,
		Grid: []arch.Config{
			{D: 2, B: 16, R: 16, Output: arch.OutPerLayer},
			{D: 2, B: 16, R: 32, Output: arch.OutPerLayer},
			{D: 3, B: 64, R: 32, Output: arch.OutPerLayer},
			{D: 3, B: 64, R: 64, Output: arch.OutPerLayer},
		},
		Search: SearchAnneal,
		Anneal: dse.AnnealOptions{Seed: 11, Chains: 2, Steps: 8},
	}
}

// TestTunerAnnealSearch exercises the anneal search mode end to end:
// the decision must carry complete, encodable anneal provenance and the
// trace must account for every scheduled step.
func TestTunerAnnealSearch(t *testing.T) {
	g := pc.Build(pc.Suite()[0], 0.01)
	tuner := New(annealTuneOptions(0))
	d, tr, err := tuner.TuneTrace(context.Background(), g, arch.MinEDP(), compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr == nil {
		t.Fatal("anneal search returned no trace")
	}
	p := d.Provenance
	if p.Search != "anneal" || p.Tuner != Version {
		t.Fatalf("provenance incomplete: %+v", p)
	}
	if p.Seed != 11 || p.Chains != 2 || p.Steps != 8 {
		t.Fatalf("anneal shape not recorded: %+v", p)
	}
	if p.InitTemp <= 0 || p.Cool <= 0 || p.Cool > 1 {
		t.Fatalf("temperature schedule not recorded: %+v", p)
	}
	if p.Accepted != tr.Accepted || p.Rejected != tr.Rejected {
		t.Fatalf("provenance counts %d/%d disagree with trace %d/%d", p.Accepted, p.Rejected, tr.Accepted, tr.Rejected)
	}
	if got := tr.Accepted + tr.Rejected; got != p.Chains*p.Steps {
		t.Fatalf("accepted+rejected = %d, want chains×steps = %d", got, p.Chains*p.Steps)
	}
	if p.GridSize != len(tuner.opts.Grid)+p.Chains*p.Steps+1 {
		t.Fatalf("grid size %d does not cover start set + schedule + baseline", p.GridSize)
	}
	if p.Points > p.GridSize {
		t.Fatalf("evaluated %d of %d", p.Points, p.GridSize)
	}

	// The bumped decision format must round-trip the new fields.
	b, err := artifact.EncodeDecisionBytes(d)
	if err != nil {
		t.Fatal(err)
	}
	back, err := artifact.DecodeDecisionBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	if *back != *d {
		t.Fatalf("decision did not round-trip:\n got %+v\nwant %+v", back, d)
	}
}

// TestTunerAnnealDeterministic pins the tuner-level determinism
// contract: same seed → identical decision and trace at any worker
// count; different seed → the trace diverges.
func TestTunerAnnealDeterministic(t *testing.T) {
	g := pc.Build(pc.Suite()[0], 0.01)
	now := func() time.Time { return time.Unix(1700000000, 0) }

	run := func(workers int, seed int64) (*artifact.Decision, string) {
		opts := annealTuneOptions(workers)
		opts.Anneal.Seed = seed
		opts.Now = now
		d, tr, err := New(opts).TuneTrace(context.Background(), g, arch.MinEDP(), compiler.Options{})
		if err != nil {
			t.Fatal(err)
		}
		j, err := json.Marshal(tr)
		if err != nil {
			t.Fatal(err)
		}
		return d, string(j)
	}

	refD, refT := run(1, 11)
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		d, tr := run(workers, 11)
		if *d != *refD {
			t.Fatalf("workers=%d: decision diverged:\n got %+v\nwant %+v", workers, d, refD)
		}
		if tr != refT {
			t.Fatalf("workers=%d: trace diverged:\n got %s\nwant %s", workers, tr, refT)
		}
	}
	if _, tr := run(1, 12); tr == refT {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestSearchKindParse(t *testing.T) {
	var k SearchKind
	if err := k.Parse("anneal"); err != nil || k != SearchAnneal {
		t.Fatalf("Parse(anneal) = %v, %v", k, err)
	}
	if err := k.Parse("grid"); err != nil || k != SearchGrid {
		t.Fatalf("Parse(grid) = %v, %v", k, err)
	}
	if err := k.Parse("random"); err == nil {
		t.Fatal("Parse(random) did not fail")
	}
	if SearchGrid.String() != "grid" || SearchAnneal.String() != "anneal" {
		t.Fatal("SearchKind.String mismatch")
	}
}
