package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"dpuv2/internal/arch"
	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
)

// conformanceConfigs spans the template's free axes: depth D, bank count
// B, registers per bank R (including spill-pressure points), and the
// three compilable output topologies of fig. 6.
func conformanceConfigs(short bool) []arch.Config {
	cfgs := []arch.Config{
		{D: 1, B: 2, R: 8},
		{D: 2, B: 8, R: 16},
		{D: 3, B: 16, R: 32},
	}
	if !short {
		cfgs = append(cfgs,
			arch.Config{D: 1, B: 4, R: 4}, // tight R forces spills
			arch.Config{D: 2, B: 16, R: 8, Output: arch.OutCrossbar},
			arch.Config{D: 2, B: 8, R: 16, Output: arch.OutPerPE},
			arch.Config{D: 3, B: 64, R: 32}, // the paper's min-EDP point
		)
	}
	return cfgs
}

// conformanceGraphs varies size, arity (k-ary forces binarization),
// depth-vs-width (Window) and op mix.
func conformanceGraphs(short bool) []*dag.Graph {
	specs := []dag.RandomConfig{
		{Inputs: 3, Interior: 25, MaxArgs: 2, MulFrac: 0.5, Seed: 1},
		{Inputs: 8, Interior: 60, MaxArgs: 4, MulFrac: 0.3, Seed: 2},
		{Inputs: 5, Interior: 80, MaxArgs: 2, MulFrac: 0.4, Window: 8, Seed: 3}, // deep chains
	}
	if !short {
		specs = append(specs,
			dag.RandomConfig{Inputs: 12, Interior: 120, MaxArgs: 3, MulFrac: 0.25, Window: 64, Seed: 4},
			dag.RandomConfig{Inputs: 2, Interior: 40, MaxArgs: 5, MulFrac: 0.6, Seed: 5},
		)
	}
	graphs := make([]*dag.Graph, len(specs))
	for i, s := range specs {
		graphs[i] = dag.RandomGraph(s)
	}
	return graphs
}

// TestConformanceMatrix differentially tests the simulator against the
// dag reference evaluator over the seeded (graph × config) matrix: for
// every pair, the compiled program's sink values must match the
// binarized graph's reference evaluation bit-exactly (the simulator
// performs the same float64 operations in the same association order).
func TestConformanceMatrix(t *testing.T) {
	for gi, g := range conformanceGraphs(testing.Short()) {
		for _, cfg := range conformanceConfigs(testing.Short()) {
			t.Run(fmt.Sprintf("graph%d/%s", gi, cfg), func(t *testing.T) {
				c, err := compiler.Compile(g, cfg, compiler.Options{})
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				rng := rand.New(rand.NewSource(int64(gi) + 42))
				inputs := make([]float64, len(c.Graph.Inputs()))
				for i := range inputs {
					inputs[i] = rng.Float64()*4 - 2
				}
				res, err := Run(c, inputs)
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				want, err := dag.Eval(c.Graph, inputs)
				if err != nil {
					t.Fatalf("reference: %v", err)
				}
				outs := c.Graph.Outputs()
				if len(res.Outputs) != len(outs) {
					t.Fatalf("got %d outputs, graph has %d sinks", len(res.Outputs), len(outs))
				}
				for _, sink := range outs {
					if got := res.Outputs[sink]; got != want[sink] {
						t.Errorf("sink %d = %v, reference %v (must be bit-exact)", sink, got, want[sink])
					}
				}
			})
		}
	}
}

// TestResetBitIdenticalToFreshMachine asserts the pooling contract: a
// machine Reset between runs produces bit-identical outputs AND
// identical execution statistics to a brand-new machine, across programs
// of different configurations and repeated reuse.
func TestResetBitIdenticalToFreshMachine(t *testing.T) {
	graphs := conformanceGraphs(true)
	cfgs := conformanceConfigs(true)
	for gi, g := range graphs {
		cfg := cfgs[gi%len(cfgs)]
		c, err := compiler.Compile(g, cfg, compiler.Options{})
		if err != nil {
			t.Fatalf("graph %d: compile: %v", gi, err)
		}
		reused := NewMachine(c.Prog.Cfg, nil)
		outs := c.Graph.Outputs()
		gotOut := make([]float64, len(outs))
		wantOut := make([]float64, len(outs))
		for trial := 0; trial < 4; trial++ {
			rng := rand.New(rand.NewSource(int64(100*gi + trial)))
			inputs := make([]float64, len(c.Graph.Inputs()))
			for i := range inputs {
				inputs[i] = rng.Float64()*10 - 5
			}
			if err := RunOn(reused, c, inputs, gotOut); err != nil {
				t.Fatalf("graph %d trial %d: reused machine: %v", gi, trial, err)
			}
			fresh := NewMachine(c.Prog.Cfg, nil)
			if err := RunOn(fresh, c, inputs, wantOut); err != nil {
				t.Fatalf("graph %d trial %d: fresh machine: %v", gi, trial, err)
			}
			for i := range gotOut {
				if gotOut[i] != wantOut[i] {
					t.Errorf("graph %d trial %d: sink %d: reused %v, fresh %v", gi, trial, i, gotOut[i], wantOut[i])
				}
			}
			rs, fs := reused.Stats(), fresh.Stats()
			if rs.Cycles != fs.Cycles || rs.PEOpsDone != fs.PEOpsDone ||
				rs.RegReads != fs.RegReads || rs.RegWrites != fs.RegWrites ||
				rs.MemReads != fs.MemReads || rs.MemWrites != fs.MemWrites {
				t.Errorf("graph %d trial %d: stats diverge: reused %+v, fresh %+v", gi, trial, rs, fs)
			}
			for k, v := range fs.Instrs {
				if rs.Instrs[k] != v {
					t.Errorf("graph %d trial %d: instr count %v: reused %d, fresh %d", gi, trial, k, rs.Instrs[k], v)
				}
			}
			for b, v := range fs.PeakActive {
				if rs.PeakActive[b] != v {
					t.Errorf("graph %d trial %d: peak occupancy bank %d: reused %d, fresh %d", gi, trial, b, rs.PeakActive[b], v)
				}
			}
		}
	}
}

// TestResetShrinksGrownMemory covers the one stateful edge of reuse: a
// program that grows data memory past the next program's image must not
// leak the stale words into the next run.
func TestResetShrinksGrownMemory(t *testing.T) {
	cfg := arch.Config{D: 1, B: 2, R: 8}.Normalize()
	m := NewMachine(cfg, []float64{1, 2})
	if err := m.SetMem(7, 99); err != nil { // grow beyond the image
		t.Fatal(err)
	}
	m.Reset([]float64{3, 4})
	if v, _ := m.Mem(7); v != 0 {
		t.Errorf("stale grown memory survived Reset: word 7 = %v, want 0", v)
	}
	if v, _ := m.Mem(1); v != 4 {
		t.Errorf("Reset image not installed: word 1 = %v, want 4", v)
	}
}
