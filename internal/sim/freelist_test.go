package sim

import (
	"testing"

	"dpuv2/internal/arch"
	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
)

// linearScanLowestFree is the seed's O(R) reference allocator: the fig.
// 5(d) priority encoder picks the lowest invalid address of the bank.
func linearScanLowestFree(valid []bool) int {
	for a := range valid {
		if !valid[a] {
			return a
		}
	}
	return -1
}

// checkFreeListInvariant asserts, for every bank, that the free bitmap is
// the exact complement of the valid bits and that the bitmap's allocation
// choice equals the linear scan's.
func checkFreeListInvariant(t *testing.T, m *Machine, cycle int) {
	t.Helper()
	for b := 0; b < m.cfg.B; b++ {
		for a := 0; a < m.cfg.R; a++ {
			bit := m.freeBits[b*m.freeWords+a/64]>>(uint(a%64))&1 == 1
			if bit == m.valid[b][a] {
				t.Fatalf("cycle %d: bank %d addr %d: free bit %v contradicts valid %v", cycle, b, a, bit, m.valid[b][a])
			}
		}
		want := linearScanLowestFree(m.valid[b])
		got := -1
		base := b * m.freeWords
		for w := 0; w < m.freeWords; w++ {
			if word := m.freeBits[base+w]; word != 0 {
				got = w << 6
				for word&1 == 0 {
					word >>= 1
					got++
				}
				break
			}
		}
		if got != want {
			t.Fatalf("cycle %d: bank %d: bitmap would allocate %d, linear scan %d", cycle, b, got, want)
		}
	}
}

// TestFreeListMatchesLinearScanOnTrace replays real compiled program
// traces instruction by instruction and checks after every cycle that the
// bitmap allocator would make exactly the allocation the seed's linear
// scan made — i.e. the priority-encoder semantics are preserved bit for
// bit across the whole trace, including spill-induced churn.
func TestFreeListMatchesLinearScanOnTrace(t *testing.T) {
	cases := []struct {
		name string
		cfg  arch.Config
		gen  dag.RandomConfig
	}{
		{
			// R=65 straddles a bitmap word boundary.
			"wordBoundary",
			arch.Config{D: 2, B: 8, R: 65, Output: arch.OutPerLayer},
			dag.RandomConfig{Inputs: 24, Interior: 400, MaxArgs: 3, MulFrac: 0.5, Seed: 41},
		},
		{
			// Tiny R forces spilling, churning frees and reallocations.
			"spilling",
			arch.Config{D: 2, B: 8, R: 6, Output: arch.OutPerLayer},
			dag.RandomConfig{Inputs: 20, Interior: 300, MaxArgs: 3, MulFrac: 0.5, Seed: 42},
		},
		{
			"minEDP",
			arch.MinEDP(),
			dag.RandomConfig{Inputs: 16, Interior: 500, MaxArgs: 4, MulFrac: 0.4, Seed: 43},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := dag.RandomGraph(tc.gen)
			c, err := compiler.Compile(g, tc.cfg, compiler.Options{Seed: 7})
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			m := NewMachine(c.Prog.Cfg, c.Prog.InitMem)
			for i, w := range c.InputWord {
				if w >= 0 {
					if err := m.SetMem(w, 0.25+float64(i%11)/13); err != nil {
						t.Fatal(err)
					}
				}
			}
			checkFreeListInvariant(t, m, -1)
			for i, in := range c.Prog.Instrs {
				if err := m.step(in); err != nil {
					t.Fatalf("instruction %d: %v", i, err)
				}
				checkFreeListInvariant(t, m, m.cycle)
			}
			for d := 0; d < m.cfg.D+1; d++ {
				if err := m.endCycle(); err != nil {
					t.Fatal(err)
				}
				checkFreeListInvariant(t, m, m.cycle)
			}
		})
	}
}

// TestMachineRunNoAllocsSteadyState asserts the hot path is allocation
// free: once a Machine exists, stepping instructions must not allocate.
func TestMachineRunNoAllocsSteadyState(t *testing.T) {
	g := dag.RandomGraph(dag.RandomConfig{Inputs: 16, Interior: 300, MaxArgs: 3, MulFrac: 0.5, Seed: 44})
	c, err := compiler.Compile(g, arch.MinEDP(), compiler.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	run := func() {
		m := NewMachine(c.Prog.Cfg, c.Prog.InitMem)
		for i, w := range c.InputWord {
			if w >= 0 {
				m.SetMem(w, float64(i))
			}
		}
		if err := m.Run(c.Prog); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm up
	perRun := testing.AllocsPerRun(10, run)
	// Everything left is Machine construction (a fixed count independent
	// of program length); the per-instruction loop itself contributes
	// nothing. The seed allocated 5 slices per exec instruction, putting
	// this in the hundreds.
	limit := float64(30)
	if perRun > limit {
		t.Errorf("Machine construction+run allocates %.0f times, want <= %.0f", perRun, limit)
	}
}
