package sim

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"dpuv2/internal/arch"
	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
)

func TestRunBatchMatchesSequential(t *testing.T) {
	g := dag.RandomGraph(dag.RandomConfig{Inputs: 12, Interior: 200, MaxArgs: 3, MulFrac: 0.5, Seed: 31})
	c, err := compiler.Compile(g, arch.Config{D: 2, B: 16, R: 32, Output: arch.OutPerLayer}, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var batches [][]float64
	for b := 0; b < 8; b++ {
		batches = append(batches, randInputs(c.Graph, int64(b)))
	}
	parallel, err := RunBatch(c, batches, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, inputs := range batches {
		seq, err := Run(c, inputs)
		if err != nil {
			t.Fatal(err)
		}
		for sink, v := range seq.Outputs {
			if parallel[i].Outputs[sink] != v {
				t.Fatalf("batch %d sink %d: %v vs %v", i, sink, parallel[i].Outputs[sink], v)
			}
		}
	}
}

func TestRunBatchPropagatesError(t *testing.T) {
	g := dag.New("g")
	a := g.AddInput()
	b := g.AddInput()
	g.AddOp(dag.OpAdd, a, b)
	c, err := compiler.Compile(g, arch.Config{D: 1, B: 8, R: 8, Output: arch.OutPerLayer}, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunBatch(c, [][]float64{{1, 2}, {1}}, 2); err == nil {
		t.Fatal("short input vector should fail")
	}
}

// TestRunBatchSalvagesPartialResults checks the failure contract: every
// batch that succeeds is returned even when siblings fail, and the joined
// error names each failing batch.
func TestRunBatchSalvagesPartialResults(t *testing.T) {
	g := dag.New("g")
	a := g.AddInput()
	b := g.AddInput()
	g.AddOp(dag.OpAdd, a, b)
	c, err := compiler.Compile(g, arch.Config{D: 1, B: 8, R: 8, Output: arch.OutPerLayer}, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Batches 1 and 3 have the wrong arity and must fail; 0 and 2 succeed.
	batches := [][]float64{{1, 2}, {1}, {3, 4}, {}}
	results, err := RunBatch(c, batches, 2)
	if err == nil {
		t.Fatal("expected a joined error")
	}
	if len(results) != len(batches) {
		t.Fatalf("got %d results, want %d", len(results), len(batches))
	}
	for _, i := range []int{0, 2} {
		if results[i] == nil {
			t.Errorf("batch %d succeeded but its result was discarded", i)
		}
	}
	for _, i := range []int{1, 3} {
		if results[i] != nil {
			t.Errorf("batch %d failed but has a result", i)
		}
		if want := fmt.Sprintf("batch %d", i); !strings.Contains(err.Error(), want) {
			t.Errorf("joined error does not mention %q: %v", want, err)
		}
	}
}

// TestRunBatchBoundedGoroutines pins the satellite bugfix: RunBatch
// spawns exactly `cores` worker goroutines over contiguous chunks, not
// one goroutine per batch item. With 512 items and cores=2 the old
// code launched 512 goroutines (most parked on a semaphore); the
// rewrite must keep the live count within baseline+cores+slack.
func TestRunBatchBoundedGoroutines(t *testing.T) {
	g := dag.RandomGraph(dag.RandomConfig{Inputs: 6, Interior: 120, MaxArgs: 3, MulFrac: 0.5, Seed: 17})
	c, err := compiler.Compile(g, arch.Config{D: 2, B: 16, R: 32, Output: arch.OutPerLayer}, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const items, cores = 512, 2
	batches := make([][]float64, items)
	for i := range batches {
		batches[i] = randInputs(c.Graph, int64(i))
	}
	baseline := runtime.NumGoroutine()
	done := make(chan error, 1)
	go func() {
		_, err := RunBatch(c, batches, cores)
		done <- err
	}()
	peak := baseline
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			// +1 for the launcher goroutine above, +4 slack for runtime
			// noise (GC workers, timer goroutines).
			if limit := baseline + cores + 1 + 4; peak > limit {
				t.Errorf("observed %d live goroutines for a %d-item batch on %d cores (baseline %d, limit %d) — per-item spawning is back",
					peak, items, cores, baseline, limit)
			}
			return
		default:
			if n := runtime.NumGoroutine(); n > peak {
				peak = n
			}
		}
	}
}

// TestRunBatchMoreCoresThanItems: the worker count is clamped to the
// batch size, so asking for more cores than items neither panics nor
// spawns idle workers, and results stay in input order.
func TestRunBatchMoreCoresThanItems(t *testing.T) {
	g := dag.New("g")
	a := g.AddInput()
	b := g.AddInput()
	g.AddOp(dag.OpAdd, a, b)
	c, err := compiler.Compile(g, arch.Config{D: 1, B: 8, R: 8, Output: arch.OutPerLayer}, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sink := c.Graph.Outputs()[0]
	results, err := RunBatch(c, [][]float64{{1, 2}, {10, 20}}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if got := results[0].Outputs[sink]; got != 3 {
		t.Errorf("batch 0 = %v, want 3", got)
	}
	if got := results[1].Outputs[sink]; got != 30 {
		t.Errorf("batch 1 = %v, want 30", got)
	}
	if _, err := RunBatch(c, nil, 8); err != nil {
		t.Errorf("empty batch: %v", err)
	}
}

// Failure injection: corrupting the packed stream must surface as a
// decode or execution error, never as silent wrong answers — the strict
// simulator is the safety net for the whole codec path.
func TestCorruptedBinaryRejectedOrDetected(t *testing.T) {
	g := dag.RandomGraph(dag.RandomConfig{Inputs: 10, Interior: 120, MaxArgs: 3, MulFrac: 0.5, Seed: 41})
	cfg := arch.Config{D: 2, B: 16, R: 32, Output: arch.OutPerLayer}
	c, err := compiler.Compile(g, cfg, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	inputs := randInputs(c.Graph, 99)
	want, err := Run(c, inputs)
	if err != nil {
		t.Fatal(err)
	}
	packed := c.Prog.Pack()
	detected, silent := 0, 0
	for trial := 0; trial < 40; trial++ {
		mut := append([]byte(nil), packed...)
		// Deterministic bit flips spread over the stream.
		bit := (trial*131 + 7) % (len(mut) * 8)
		mut[bit/8] ^= 1 << uint(bit%8)
		instrs, err := arch.Unpack(mut, cfg, len(c.Prog.Instrs))
		if err != nil {
			detected++
			continue
		}
		valid := true
		for _, in := range instrs {
			if in.Validate(cfg.Normalize()) != nil {
				valid = false
				break
			}
		}
		if !valid {
			detected++
			continue
		}
		cc := *c
		prog := *c.Prog
		prog.Instrs = instrs
		cc.Prog = &prog
		res, err := Run(&cc, inputs)
		if err != nil {
			detected++
			continue
		}
		same := true
		for sink, v := range want.Outputs {
			if res.Outputs[sink] != v {
				same = false
				break
			}
		}
		if !same {
			// Changed an operand/op bit: wrong value but structurally
			// legal. Tolerated — the flip changed program semantics, not
			// machine invariants.
			continue
		}
		silent++
	}
	if detected == 0 {
		t.Fatal("no corruption was ever detected; the strict checks are not engaging")
	}
	// Many flips hit don't-care padding or unused fields and are benign;
	// just report the split.
	t.Logf("detected=%d benign-or-semantic=%d of 40 injected faults", detected, 40-detected-silent+silent)
}
