// Package sim is the cycle-accurate functional simulator of the DPU-v2
// architecture template, standing in for the paper's SystemVerilog RTL
// model (see DESIGN.md). It executes the decoded instruction stream under
// the same micro-timing contract the compiler plans against:
//
//   - one instruction issues per cycle (the dense packing and alignment
//     shifter of fig. 7 guarantee stall-free supply);
//   - register reads and valid_rst frees happen at issue;
//   - writes land at the end of issue+1 (load, copy) or issue+D (exec);
//   - within a cycle frees apply before landing writes allocate;
//   - a landing write takes the lowest free address of its bank, as
//     chosen by the valid-bit priority encoder of fig. 5(d).
//
// The simulator is strict: reading an invalid register, overflowing a
// bank, or landing two writes on one bank in the same cycle is reported
// as an error rather than arbitrated, because the compiler must have
// eliminated all such hazards at compile time (§II-A).
package sim

import (
	"fmt"
	"math/bits"

	"dpuv2/internal/arch"
)

// Stats aggregates what the machine did during one execution.
type Stats struct {
	Cycles     int
	Instrs     map[arch.Kind]int
	PEOpsDone  int // arithmetic PE operations (add/mul), including replicas
	RegReads   int
	RegWrites  int
	MemReads   int   // words read from data memory
	MemWrites  int   // words written to data memory
	PeakActive []int // maximum simultaneously valid registers per bank
}

// Clone deep-copies the stats so they stay valid after the machine that
// produced them is reset and reused (the serving engine pools machines).
func (s Stats) Clone() Stats {
	c := s
	if s.Instrs != nil {
		c.Instrs = make(map[arch.Kind]int, len(s.Instrs))
		for k, v := range s.Instrs {
			c.Instrs[k] = v
		}
	}
	c.PeakActive = append([]int(nil), s.PeakActive...)
	return c
}

// Machine is the architectural state of one DPU-v2 core.
type Machine struct {
	cfg   arch.Config
	regs  [][]float64
	valid [][]bool
	mem   []float64

	// freeBits mirrors valid as a bank-major bitmap (bit set = address
	// free), so the fig. 5(d) valid-bit priority encoder — "a landing
	// write takes the lowest free address of its bank" — is a
	// trailing-zeros scan over at most ceil(R/64) words instead of an
	// O(R) linear probe. freeWords is the number of words per bank.
	freeBits  []uint64
	freeWords int

	ring     [][]landing // pending writes by landing cycle % len
	cycle    int
	occupied []int

	// exec scratch, sized once in NewMachine and reused every cycle so
	// the hot path does not allocate. The value slices (port, val) may
	// hold stale data between instructions; every read is gated by the
	// corresponding liveness flag (portUsed, live), which are cleared.
	portUsed  []bool
	port      []float64
	readBanks []bool
	val       []float64
	live      []bool

	stats Stats

	// OccTrace, when non-nil, receives the per-bank occupancy after
	// every cycle; fig. 10(c,d) uses it.
	OccTrace func(cycle int, perBank []int)
}

type landing struct {
	bank int
	val  float64
}

// NewMachine builds a machine for cfg with the given initial data-memory
// image (padded to whole rows; the memory can grow up to cfg.DataMemWords
// through stores).
func NewMachine(cfg arch.Config, initMem []float64) *Machine {
	cfg = cfg.Normalize()
	m := &Machine{
		cfg:       cfg,
		regs:      make([][]float64, cfg.B),
		valid:     make([][]bool, cfg.B),
		mem:       make([]float64, len(initMem)),
		freeWords: (cfg.R + 63) / 64,
		ring:      make([][]landing, cfg.D+2),
		occupied:  make([]int, cfg.B),
		portUsed:  make([]bool, cfg.B),
		port:      make([]float64, cfg.B),
		readBanks: make([]bool, cfg.B),
		val:       make([]float64, cfg.NumPEs()),
		live:      make([]bool, cfg.NumPEs()),
	}
	copy(m.mem, initMem)
	// Single backing arrays for the register file keep NewMachine at a
	// constant allocation count regardless of B.
	regBacking := make([]float64, cfg.B*cfg.R)
	validBacking := make([]bool, cfg.B*cfg.R)
	for b := 0; b < cfg.B; b++ {
		m.regs[b] = regBacking[b*cfg.R : (b+1)*cfg.R : (b+1)*cfg.R]
		m.valid[b] = validBacking[b*cfg.R : (b+1)*cfg.R : (b+1)*cfg.R]
	}
	m.freeBits = make([]uint64, cfg.B*m.freeWords)
	m.fillFreeBits()
	for i := range m.ring {
		m.ring[i] = make([]landing, 0, cfg.B)
	}
	m.stats.Instrs = make(map[arch.Kind]int)
	m.stats.PeakActive = make([]int, cfg.B)
	return m
}

// fillFreeBits marks every register address of every bank free.
func (m *Machine) fillFreeBits() {
	for b := 0; b < m.cfg.B; b++ {
		base := b * m.freeWords
		for a := 0; a < m.cfg.R; a += 64 {
			if m.cfg.R-a >= 64 {
				m.freeBits[base+a/64] = ^uint64(0)
			} else {
				m.freeBits[base+a/64] = 1<<uint(m.cfg.R-a) - 1
			}
		}
	}
}

// Config returns the configuration the machine was built for.
func (m *Machine) Config() arch.Config { return m.cfg }

// Reset returns the machine to the state NewMachine(cfg, initMem) would
// produce, reusing every allocation: register values may stay stale (all
// valid bits are cleared, and every read is gated by them), the landing
// ring keeps its capacity, and the stats map keeps its buckets. A reset
// machine is observationally identical to a fresh one — the conformance
// suite asserts bit-identical outputs and statistics — which is what
// lets the serving engine pool machines across requests. The only case
// that allocates is an initMem larger than any image the machine has
// held before.
func (m *Machine) Reset(initMem []float64) {
	for b := 0; b < m.cfg.B; b++ {
		clear(m.valid[b])
	}
	m.fillFreeBits()
	clear(m.occupied)
	for i := range m.ring {
		m.ring[i] = m.ring[i][:0]
	}
	m.cycle = 0
	if cap(m.mem) < len(initMem) {
		m.mem = make([]float64, len(initMem))
	} else {
		m.mem = m.mem[:len(initMem)]
	}
	copy(m.mem, initMem)
	instrs, peak := m.stats.Instrs, m.stats.PeakActive
	clear(instrs)
	clear(peak)
	m.stats = Stats{Instrs: instrs, PeakActive: peak}
}

// Mem returns the data-memory word at addr (growing view: unwritten words
// read as zero up to the configured capacity).
func (m *Machine) Mem(addr int) (float64, error) {
	if addr < 0 || addr >= m.cfg.DataMemWords {
		return 0, fmt.Errorf("sim: memory address %d out of range", addr)
	}
	if addr >= len(m.mem) {
		return 0, nil
	}
	return m.mem[addr], nil
}

// SetMem writes a data-memory word before execution (the runner uses it
// to install DAG input values).
func (m *Machine) SetMem(addr int, v float64) error {
	if addr < 0 || addr >= m.cfg.DataMemWords {
		return fmt.Errorf("sim: memory address %d out of range", addr)
	}
	for addr >= len(m.mem) {
		m.mem = append(m.mem, 0)
	}
	m.mem[addr] = v
	return nil
}

// Stats returns execution statistics (valid after Run).
func (m *Machine) Stats() Stats { return m.stats }

func (m *Machine) readReg(bank, addr int) (float64, error) {
	if addr < 0 || addr >= m.cfg.R {
		return 0, fmt.Errorf("sim: cycle %d: read addr %d out of range on bank %d", m.cycle, addr, bank)
	}
	if !m.valid[bank][addr] {
		return 0, fmt.Errorf("sim: cycle %d: read of invalid register %d.%d (RAW hazard escaped the compiler)", m.cycle, bank, addr)
	}
	m.stats.RegReads++
	return m.regs[bank][addr], nil
}

func (m *Machine) free(bank, addr int) {
	if m.valid[bank][addr] {
		m.valid[bank][addr] = false
		m.freeBits[bank*m.freeWords+addr/64] |= 1 << uint(addr%64)
		m.occupied[bank]--
	}
}

// allocLowestFree claims and returns the lowest free register address of
// bank — the fig. 5(d) priority-encoder choice — or -1 when the bank is
// full.
func (m *Machine) allocLowestFree(bank int) int {
	base := bank * m.freeWords
	for w := 0; w < m.freeWords; w++ {
		if word := m.freeBits[base+w]; word != 0 {
			t := bits.TrailingZeros64(word)
			m.freeBits[base+w] = word &^ (1 << uint(t))
			return w<<6 | t
		}
	}
	return -1
}

func (m *Machine) scheduleWrite(bank int, v float64, land int) error {
	slot := land % len(m.ring)
	for _, l := range m.ring[slot] {
		if l.bank == bank {
			return fmt.Errorf("sim: cycle %d: two writes land on bank %d at cycle %d", m.cycle, bank, land)
		}
	}
	m.ring[slot] = append(m.ring[slot], landing{bank, v})
	return nil
}

// endCycle applies the writes landing at the current cycle and advances.
func (m *Machine) endCycle() error {
	slot := m.cycle % len(m.ring)
	for _, l := range m.ring[slot] {
		addr := m.allocLowestFree(l.bank)
		if addr < 0 {
			return fmt.Errorf("sim: cycle %d: bank %d overflow", m.cycle, l.bank)
		}
		m.regs[l.bank][addr] = l.val
		m.valid[l.bank][addr] = true
		m.occupied[l.bank]++
		if m.occupied[l.bank] > m.stats.PeakActive[l.bank] {
			m.stats.PeakActive[l.bank] = m.occupied[l.bank]
		}
		m.stats.RegWrites++
	}
	m.ring[slot] = m.ring[slot][:0]
	if m.OccTrace != nil {
		m.OccTrace(m.cycle, m.occupied)
	}
	m.cycle++
	return nil
}

// Run executes the program to completion, including pipeline drain.
func (m *Machine) Run(p *arch.Program) error {
	for i, in := range p.Instrs {
		if err := m.step(in); err != nil {
			return fmt.Errorf("sim: instruction %d (%v): %w", i, in.Kind, err)
		}
	}
	// Drain the pipeline.
	for d := 0; d < m.cfg.D+1; d++ {
		if err := m.endCycle(); err != nil {
			return err
		}
	}
	m.stats.Cycles = m.cycle
	return nil
}

func (m *Machine) step(in *arch.Instr) error {
	m.stats.Instrs[in.Kind]++
	switch in.Kind {
	case arch.KindNop:
		// nothing
	case arch.KindExec:
		if err := m.exec(in); err != nil {
			return err
		}
	case arch.KindLoad:
		row := in.MemAddr * m.cfg.B
		for lane, en := range in.Mask {
			if !en {
				continue
			}
			v, err := m.Mem(row + lane)
			if err != nil {
				return err
			}
			m.stats.MemReads++
			if err := m.scheduleWrite(lane, v, m.cycle+1); err != nil {
				return err
			}
		}
	case arch.KindStore:
		row := in.MemAddr * m.cfg.B
		for b, en := range in.ReadEn {
			if !en {
				continue
			}
			v, err := m.readReg(b, int(in.ReadAddr[b]))
			if err != nil {
				return err
			}
			if in.ValidRst[b] {
				m.free(b, int(in.ReadAddr[b]))
			}
			if err := m.SetMem(row+b, v); err != nil {
				return err
			}
			m.stats.MemWrites++
		}
	case arch.KindStore4:
		row := in.MemAddr * m.cfg.B
		var seen uint64
		for _, mv := range in.Moves {
			if seen&(1<<uint(mv.SrcBank)) != 0 {
				return fmt.Errorf("two reads of bank %d in one store_4", mv.SrcBank)
			}
			seen |= 1 << uint(mv.SrcBank)
			v, err := m.readReg(int(mv.SrcBank), int(mv.SrcAddr))
			if err != nil {
				return err
			}
			if mv.Rst {
				m.free(int(mv.SrcBank), int(mv.SrcAddr))
			}
			if err := m.SetMem(row+int(mv.Dst), v); err != nil {
				return err
			}
			m.stats.MemWrites++
		}
	case arch.KindCopy:
		var seen uint64
		for _, mv := range in.Moves {
			if seen&(1<<uint(mv.SrcBank)) != 0 {
				return fmt.Errorf("two reads of bank %d in one copy", mv.SrcBank)
			}
			seen |= 1 << uint(mv.SrcBank)
			v, err := m.readReg(int(mv.SrcBank), int(mv.SrcAddr))
			if err != nil {
				return err
			}
			if mv.Rst {
				m.free(int(mv.SrcBank), int(mv.SrcAddr))
			}
			if err := m.scheduleWrite(int(mv.Dst), v, m.cycle+1); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown kind %d", in.Kind)
	}
	return m.endCycle()
}

// exec evaluates the PE trees for one datapath cycle.
func (m *Machine) exec(in *arch.Instr) error {
	cfg := m.cfg
	// Reset the reused scratch liveness flags; the value slices keep
	// stale data, which is never observed because every read is gated by
	// these flags.
	portUsed, port, readBanks := m.portUsed, m.port, m.readBanks
	val, live := m.val, m.live
	for i := range portUsed {
		portUsed[i] = false
	}
	for i := range readBanks {
		readBanks[i] = false
	}
	for i := range live {
		live[i] = false
	}
	// Port values through the input crossbar; a port is live only if a
	// leaf PE consumes it, so reads are demand-driven.
	for id, op := range in.PEOps {
		p := cfg.PECoord(id)
		if p.Layer != 1 || op == arch.PEIdle {
			continue
		}
		l, r := cfg.InputPorts(p)
		switch op {
		case arch.PEAdd, arch.PEMul:
			portUsed[l], portUsed[r] = true, true
		case arch.PEBypassL:
			portUsed[l] = true
		case arch.PEBypassR:
			portUsed[r] = true
		}
	}
	for pn := 0; pn < cfg.B; pn++ {
		if !portUsed[pn] {
			continue
		}
		bank := int(in.InputSel[pn])
		if !in.ReadEn[bank] {
			return fmt.Errorf("port %d selects bank %d which has no read enable", pn, bank)
		}
		v, err := m.readReg(bank, int(in.ReadAddr[bank]))
		if err != nil {
			return err
		}
		port[pn] = v
		readBanks[bank] = true
	}
	// valid_rst applies after the cycle's reads: the crossbar broadcasts
	// one bank read to every subscribed port before the slot is released.
	for bank, read := range readBanks {
		if read && in.ValidRst[bank] {
			m.free(bank, int(in.ReadAddr[bank]))
		}
	}
	// Evaluate layer by layer.
	for l := 1; l <= cfg.D; l++ {
		for t := 0; t < cfg.Trees(); t++ {
			for k := 0; k < cfg.LayerWidth(l); k++ {
				p := arch.PE{Tree: t, Layer: l, Index: k}
				id := cfg.PEID(p)
				op := in.PEOps[id]
				if op == arch.PEIdle {
					continue
				}
				var a, b float64
				var la, lb bool
				if l == 1 {
					pl, pr := cfg.InputPorts(p)
					a, b = port[pl], port[pr]
					la, lb = portUsed[pl], portUsed[pr]
				} else {
					c0, c1, _ := cfg.Children(p)
					i0, i1 := cfg.PEID(c0), cfg.PEID(c1)
					a, b = val[i0], val[i1]
					la, lb = live[i0], live[i1]
				}
				switch op {
				case arch.PEAdd:
					if !la || !lb {
						return fmt.Errorf("PE %d adds a dead operand", id)
					}
					val[id] = a + b
					m.stats.PEOpsDone++
				case arch.PEMul:
					if !la || !lb {
						return fmt.Errorf("PE %d multiplies a dead operand", id)
					}
					val[id] = a * b
					m.stats.PEOpsDone++
				case arch.PEBypassL:
					if !la {
						return fmt.Errorf("PE %d bypasses a dead left operand", id)
					}
					val[id] = a
				case arch.PEBypassR:
					if !lb {
						return fmt.Errorf("PE %d bypasses a dead right operand", id)
					}
					val[id] = b
				}
				live[id] = true
			}
		}
	}
	// Write-backs through the output interconnect.
	for bank := 0; bank < cfg.B; bank++ {
		if !in.WriteEn[bank] {
			continue
		}
		p := cfg.SelPE(bank, in.WriteSel[bank])
		id := cfg.PEID(p)
		if !live[id] {
			return fmt.Errorf("bank %d writes output of idle PE %d", bank, id)
		}
		if err := m.scheduleWrite(bank, val[id], m.cycle+cfg.D); err != nil {
			return err
		}
	}
	return nil
}
