package sim

import (
	"errors"
	"fmt"
	"sync"

	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
)

// RunBatch executes the same compiled program over a batch of input
// vectors on `cores` independent DPU-v2 cores in parallel, the execution
// mode of the DPU-v2 (L) large-PC comparison (§V-C2: "the parallel cores
// can either perform batch execution or execute different DAGs"). Each
// core is a full Machine; results are returned in input order. Aggregate
// throughput scales with the core count because the cores share nothing
// but the (read-only) program.
//
// Exactly `cores` worker goroutines are spawned, each owning one machine
// for a contiguous chunk of the batch (mirroring the engine's runChunk) —
// not one goroutine per item, which for a 100k-item batch would launch
// 100k goroutines just to park most of them on a semaphore.
//
// On failure the results slice is still returned, with a nil entry for
// every failed batch and the per-batch errors joined, so callers can
// salvage the completed part of a batch.
func RunBatch(c *compiler.Compiled, batches [][]float64, cores int) ([]*Result, error) {
	n := len(batches)
	if cores < 1 {
		cores = 1
	}
	if cores > n {
		cores = n
	}
	results := make([]*Result, n)
	errs := make([]error, n)
	outs := c.Graph.Outputs()
	runChunk := func(lo, hi int) {
		m := NewMachine(c.Prog.Cfg, c.Prog.InitMem)
		out := make([]float64, len(outs))
		for i := lo; i < hi; i++ {
			if err := RunOn(m, c, batches[i], out); err != nil {
				errs[i] = err
				continue
			}
			res := &Result{Outputs: make(map[dag.NodeID]float64, len(outs)), Stats: m.Stats().Clone()}
			for j, sink := range outs {
				res.Outputs[sink] = out[j]
			}
			results[i] = res
		}
	}
	if cores <= 1 {
		if n > 0 {
			runChunk(0, n)
		}
	} else {
		var wg sync.WaitGroup
		for w := 0; w < cores; w++ {
			lo, hi := n*w/cores, n*(w+1)/cores
			if lo == hi {
				continue
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				runChunk(lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			errs[i] = fmt.Errorf("sim: batch %d: %w", i, err)
		}
	}
	return results, errors.Join(errs...)
}
