package sim

import (
	"errors"
	"fmt"
	"sync"

	"dpuv2/internal/compiler"
)

// RunBatch executes the same compiled program over a batch of input
// vectors on `cores` independent DPU-v2 cores in parallel, the execution
// mode of the DPU-v2 (L) large-PC comparison (§V-C2: "the parallel cores
// can either perform batch execution or execute different DAGs"). Each
// core is a full Machine; results are returned in input order. Aggregate
// throughput scales with the core count because the cores share nothing
// but the (read-only) program.
//
// On failure the results slice is still returned, with a nil entry for
// every failed batch and the per-batch errors joined, so callers can
// salvage the completed part of a batch.
func RunBatch(c *compiler.Compiled, batches [][]float64, cores int) ([]*Result, error) {
	if cores < 1 {
		cores = 1
	}
	results := make([]*Result, len(batches))
	errs := make([]error, len(batches))
	var wg sync.WaitGroup
	sem := make(chan struct{}, cores)
	for i, inputs := range batches {
		wg.Add(1)
		go func(i int, inputs []float64) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = Run(c, inputs)
		}(i, inputs)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			errs[i] = fmt.Errorf("sim: batch %d: %w", i, err)
		}
	}
	return results, errors.Join(errs...)
}
