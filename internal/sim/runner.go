package sim

import (
	"fmt"
	"math"

	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
)

// Result is one end-to-end execution of a compiled DAG.
type Result struct {
	// Outputs maps each sink of the compiled (binarized) graph to the
	// value found in data memory after the run.
	Outputs map[dag.NodeID]float64
	Stats   Stats
}

// RunOn executes a compiled program on a caller-provided machine: the
// machine is Reset to the program's initial memory image, inputs are
// installed (in graph-input order), and the sink values are written into
// out in c.Graph.Outputs() order. Once the machine and the graph's
// derived caches are warm, steady-state reuse allocates nothing — this
// is the serving engine's hot path.
func RunOn(m *Machine, c *compiler.Compiled, inputs []float64, out []float64) error {
	if len(inputs) != len(c.InputWord) {
		return fmt.Errorf("sim: %d inputs provided, graph has %d", len(inputs), len(c.InputWord))
	}
	outs := c.Graph.Outputs()
	if len(out) != len(outs) {
		return fmt.Errorf("sim: output buffer has %d slots, graph has %d sinks", len(out), len(outs))
	}
	m.Reset(c.Prog.InitMem)
	for i, w := range c.InputWord {
		if w < 0 {
			continue // input consumed by nothing
		}
		if err := m.SetMem(w, inputs[i]); err != nil {
			return err
		}
	}
	if err := m.Run(c.Prog); err != nil {
		return err
	}
	for i, sink := range outs {
		v, err := m.Mem(c.OutputWord[sink])
		if err != nil {
			return err
		}
		out[i] = v
	}
	return nil
}

// Run executes a compiled program with the given DAG input values (in
// graph-input order) on a fresh machine and returns the sink values read
// back from data memory.
func Run(c *compiler.Compiled, inputs []float64) (*Result, error) {
	m := NewMachine(c.Prog.Cfg, c.Prog.InitMem)
	outs := c.Graph.Outputs()
	out := make([]float64, len(outs))
	if err := RunOn(m, c, inputs, out); err != nil {
		return nil, err
	}
	res := &Result{Outputs: make(map[dag.NodeID]float64, len(outs)), Stats: m.Stats()}
	for i, sink := range outs {
		res.Outputs[sink] = out[i]
	}
	return res, nil
}

// CheckOutputs compares an execution result against the reference
// evaluator. The simulator performs the same float64 operations in the
// same association order as the binarized graph, so results must match
// bit-exactly; tol exists only for callers that post-process.
//
// The acceptance condition is written in the positive form so NaN
// cannot slip through: the old `got != w && |got-w| > tol*(1+|w|)`
// was false for a NaN output against any finite reference (every
// comparison with NaN is false), silently passing the one value class
// differential checks exist to catch. A NaN output is accepted only
// when the reference is NaN too — legitimate non-finite propagation
// (Inf−Inf, 0×Inf) that both sides must reproduce identically — and
// the tolerance clause applies only when both values are finite: an
// infinite reference would make the relative band tol*(1+|w|) infinite
// and accept anything, so non-finite values must match exactly.
func CheckOutputs(c *compiler.Compiled, inputs []float64, res *Result, tol float64) error {
	want, err := dag.Eval(c.Graph, inputs)
	if err != nil {
		return err
	}
	for sink, got := range res.Outputs {
		w := want[sink]
		ok := got == w || (math.IsNaN(got) && math.IsNaN(w))
		if !ok && !math.IsInf(got, 0) && !math.IsInf(w, 0) {
			ok = math.Abs(got-w) <= tol*(1+math.Abs(w))
		}
		if !ok {
			return fmt.Errorf("sim: sink %d = %v, reference %v", sink, got, w)
		}
	}
	return nil
}

// Verify runs the compiled program and compares every sink against the
// reference evaluator.
func Verify(c *compiler.Compiled, inputs []float64, tol float64) (*Result, error) {
	res, err := Run(c, inputs)
	if err != nil {
		return nil, err
	}
	if err := CheckOutputs(c, inputs, res, tol); err != nil {
		return res, err
	}
	return res, nil
}
