package sim

import (
	"fmt"
	"math"

	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
)

// Result is one end-to-end execution of a compiled DAG.
type Result struct {
	// Outputs maps each sink of the compiled (binarized) graph to the
	// value found in data memory after the run.
	Outputs map[dag.NodeID]float64
	Stats   Stats
}

// Run executes a compiled program with the given DAG input values (in
// graph-input order) and returns the sink values read back from data
// memory.
func Run(c *compiler.Compiled, inputs []float64) (*Result, error) {
	ins := c.Graph.Inputs()
	if len(inputs) != len(ins) {
		return nil, fmt.Errorf("sim: %d inputs provided, graph has %d", len(inputs), len(ins))
	}
	m := NewMachine(c.Prog.Cfg, c.Prog.InitMem)
	for i, w := range c.InputWord {
		if w < 0 {
			continue // input consumed by nothing
		}
		if err := m.SetMem(w, inputs[i]); err != nil {
			return nil, err
		}
	}
	if err := m.Run(c.Prog); err != nil {
		return nil, err
	}
	res := &Result{Outputs: make(map[dag.NodeID]float64, len(c.OutputWord)), Stats: m.Stats()}
	for sink, w := range c.OutputWord {
		v, err := m.Mem(w)
		if err != nil {
			return nil, err
		}
		res.Outputs[sink] = v
	}
	return res, nil
}

// Verify runs the compiled program and compares every sink against the
// reference evaluator. The simulator performs the same float64 operations
// in the same association order as the binarized graph, so results must
// match bit-exactly; tol exists only for callers that post-process.
func Verify(c *compiler.Compiled, inputs []float64, tol float64) (*Result, error) {
	res, err := Run(c, inputs)
	if err != nil {
		return nil, err
	}
	want, err := dag.Eval(c.Graph, inputs)
	if err != nil {
		return nil, err
	}
	for sink, got := range res.Outputs {
		w := want[sink]
		if got != w && math.Abs(got-w) > tol*(1+math.Abs(w)) {
			return res, fmt.Errorf("sim: sink %d = %v, reference %v", sink, got, w)
		}
	}
	return res, nil
}
