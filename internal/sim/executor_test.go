package sim

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"dpuv2/internal/arch"
	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
)

// sameBits is the cross-backend value contract: bitwise identity for
// every representable float64 — signed zeros and infinities included —
// except NaN, where both sides must be NaN but the payload bits are
// unconstrained. IEEE 754 leaves NaN payload propagation to the
// implementation (when two NaNs with different payloads meet, hardware
// keeps the first operand's, and instruction operand order is the
// compiler's choice), so payload equality is not a meaningful claim.
func sameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b) ||
		(math.IsNaN(a) && math.IsNaN(b))
}

func TestBackendStringParse(t *testing.T) {
	cases := []struct {
		in   string
		want Backend
	}{
		{"functional", BackendFunctional},
		{"func", BackendFunctional},
		{"cycle", BackendCycleAccurate},
		{"cycle-accurate", BackendCycleAccurate},
	}
	for _, c := range cases {
		got, err := ParseBackend(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseBackend(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	if _, err := ParseBackend("quantum"); err == nil {
		t.Error("ParseBackend accepted an unknown backend")
	}
	if BackendFunctional.String() != "functional" || BackendCycleAccurate.String() != "cycle" {
		t.Errorf("String(): %q, %q", BackendFunctional, BackendCycleAccurate)
	}
	var zero Backend
	if zero != BackendFunctional {
		t.Error("the zero Backend must be the functional default")
	}
}

// TestExecutorConformanceMatrix is the tentpole's correctness gate: over
// the same (graph × config) matrix that pins the machine against the
// reference evaluator, the functional backend must match the
// cycle-accurate machine bit-for-bit on every sink, and report the same
// cycle count (the schedule is static, so cycles are a compile-time
// constant both backends expose identically).
func TestExecutorConformanceMatrix(t *testing.T) {
	for gi, g := range conformanceGraphs(testing.Short()) {
		for _, cfg := range conformanceConfigs(testing.Short()) {
			t.Run(fmt.Sprintf("graph%d/%s", gi, cfg), func(t *testing.T) {
				c, err := compiler.Compile(g, cfg, compiler.Options{})
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				rng := rand.New(rand.NewSource(int64(gi) + 77))
				outs := c.Graph.Outputs()
				m := NewExecutor(BackendCycleAccurate, cfg)
				f := NewExecutor(BackendFunctional, cfg)
				mOut := make([]float64, len(outs))
				fOut := make([]float64, len(outs))
				for trial := 0; trial < 3; trial++ {
					inputs := make([]float64, len(c.Graph.Inputs()))
					for i := range inputs {
						inputs[i] = rng.Float64()*4 - 2
					}
					if err := m.ExecuteInto(c, inputs, mOut); err != nil {
						t.Fatalf("cycle: %v", err)
					}
					if err := f.ExecuteInto(c, inputs, fOut); err != nil {
						t.Fatalf("functional: %v", err)
					}
					for i := range mOut {
						if !sameBits(mOut[i], fOut[i]) {
							t.Errorf("trial %d sink %d: cycle %v, functional %v (must be bit-exact)",
								trial, outs[i], mOut[i], fOut[i])
						}
					}
					mc, fc := m.Stats().Cycles, f.Stats().Cycles
					if mc != fc || fc != c.Stats.Cycles {
						t.Errorf("trial %d: cycles: cycle-accurate %d, functional %d, compile-time %d — all must agree",
							trial, mc, fc, c.Stats.Cycles)
					}
				}
			})
		}
	}
}

// nonFiniteGraph produces every non-finite class at a sink: an input
// times 1e308 twice overflows to +Inf, negation gives −Inf, and their
// sum is NaN. Extra unit-multiplies expose the intermediate Inf values
// as sinks of their own.
func nonFiniteGraph() *dag.Graph {
	g := dag.New("nonfinite")
	x := g.AddInput()
	big := g.AddConst(1e308)
	p1 := g.AddOp(dag.OpMul, x, big)
	p2 := g.AddOp(dag.OpMul, p1, big) // +Inf for x in (1, 2)
	neg := g.AddOp(dag.OpMul, p2, g.AddConst(-1))
	nan := g.AddOp(dag.OpAdd, p2, neg) // Inf + (−Inf) = NaN
	one := g.AddConst(1)
	g.AddOp(dag.OpMul, p2, one)  // +Inf sink
	g.AddOp(dag.OpMul, neg, one) // −Inf sink
	g.AddOp(dag.OpMul, nan, one) // NaN sink
	return g
}

// TestExecutorNonFiniteConformance drives NaN and ±Inf through both
// backends and the reference evaluator, requiring bitwise-identical
// propagation everywhere — both from overflowing arithmetic and from
// non-finite inputs fed in directly.
func TestExecutorNonFiniteConformance(t *testing.T) {
	inputSets := [][]float64{
		{1.5},
		{math.Inf(1)},
		{math.Inf(-1)},
		{math.NaN()},
	}
	for _, cfg := range conformanceConfigs(true) {
		c, err := compiler.Compile(nonFiniteGraph(), cfg, compiler.Options{})
		if err != nil {
			t.Fatalf("%s: compile: %v", cfg, err)
		}
		outs := c.Graph.Outputs()
		for si, inputs := range inputSets {
			want, err := dag.Eval(c.Graph, inputs)
			if err != nil {
				t.Fatalf("%s: eval: %v", cfg, err)
			}
			sawNaN, sawInf := false, false
			for _, sink := range outs {
				if math.IsNaN(want[sink]) {
					sawNaN = true
				}
				if math.IsInf(want[sink], 0) {
					sawInf = true
				}
			}
			if si == 0 && (!sawNaN || !sawInf) {
				t.Fatalf("fixture broke: finite-input reference must reach NaN and Inf sinks, got %v", want)
			}
			for _, b := range []Backend{BackendFunctional, BackendCycleAccurate} {
				res, err := RunWith(b, c, inputs)
				if err != nil {
					t.Fatalf("%s/%s inputs %v: %v", cfg, b, inputs, err)
				}
				for _, sink := range outs {
					got := res.Outputs[sink]
					if !sameBits(got, want[sink]) {
						t.Errorf("%s/%s inputs %v sink %d: got %v, reference %v (bitwise)",
							cfg, b, inputs, sink, got, want[sink])
					}
				}
				// The fixed CheckOutputs must agree: identical non-finite
				// propagation is a pass, for both backends.
				if err := CheckOutputs(c, inputs, res, 0); err != nil {
					t.Errorf("%s/%s inputs %v: CheckOutputs rejected identical propagation: %v", cfg, b, inputs, err)
				}
			}
		}
	}
}

// TestCheckOutputsNaNRegression pins the satellite bugfix: the old
// negated acceptance condition was false for NaN against any finite
// reference (all NaN comparisons are false), so a simulator that
// produced NaN where the reference was finite sailed through
// differential checking. A planted NaN must now fail.
func TestCheckOutputsNaNRegression(t *testing.T) {
	g := dag.New("tiny")
	a, b := g.AddInput(), g.AddInput()
	g.AddOp(dag.OpAdd, a, b)
	c, err := compiler.Compile(g, arch.Config{D: 1, B: 2, R: 8}, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	inputs := []float64{2, 3}
	res, err := Run(c, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckOutputs(c, inputs, res, 0); err != nil {
		t.Fatalf("honest result rejected: %v", err)
	}
	sink := c.Graph.Outputs()[0]

	// The regression: NaN against a finite reference must be an error.
	res.Outputs[sink] = math.NaN()
	if err := CheckOutputs(c, inputs, res, 0); err == nil {
		t.Error("planted NaN against finite reference passed CheckOutputs")
	}
	if err := CheckOutputs(c, inputs, res, 1e9); err == nil {
		t.Error("planted NaN passed even with a huge tolerance")
	}

	// Inf against a finite reference must fail too (|Inf−w| > any tol).
	res.Outputs[sink] = math.Inf(1)
	if err := CheckOutputs(c, inputs, res, 1e-6); err == nil {
		t.Error("planted +Inf against finite reference passed CheckOutputs")
	}

	// NaN against a NaN reference is legitimate propagation: accepted.
	nanIn := []float64{math.NaN(), 3}
	nanRes, err := Run(c, nanIn)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(nanRes.Outputs[sink]) {
		t.Fatalf("NaN input did not propagate: sink = %v", nanRes.Outputs[sink])
	}
	if err := CheckOutputs(c, nanIn, nanRes, 0); err != nil {
		t.Errorf("NaN-vs-NaN rejected: %v", err)
	}

	// Inf matching an Inf reference is exact equality: accepted at tol 0.
	infIn := []float64{math.Inf(1), 3}
	infRes, err := Run(c, infIn)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckOutputs(c, infIn, infRes, 0); err != nil {
		t.Errorf("Inf-vs-Inf rejected: %v", err)
	}
	// ...but −Inf against a +Inf reference must fail (NaN distance).
	infRes.Outputs[sink] = math.Inf(-1)
	if err := CheckOutputs(c, infIn, infRes, 1e9); err == nil {
		t.Error("−Inf against +Inf reference passed CheckOutputs")
	}
}

// TestFuncEvaluatorErrors pins the executor contract's error cases and
// that messages match the machine path's, so callers can't tell the
// backends apart by failure mode.
func TestFuncEvaluatorErrors(t *testing.T) {
	g := dag.New("tiny")
	a, b := g.AddInput(), g.AddInput()
	g.AddOp(dag.OpAdd, a, b)
	c, err := compiler.Compile(g, arch.Config{D: 1, B: 2, R: 8}, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := NewFuncEvaluator(c.Prog.Cfg)
	out := make([]float64, 1)
	if err := f.ExecuteInto(c, []float64{1}, out); err == nil || !strings.Contains(err.Error(), "inputs provided") {
		t.Errorf("short inputs: %v", err)
	}
	if err := f.ExecuteInto(c, []float64{1, 2}, make([]float64, 3)); err == nil || !strings.Contains(err.Error(), "output buffer") {
		t.Errorf("bad out buffer: %v", err)
	}
	if err := f.ExecuteInto(c, []float64{1, 2}, out); err != nil || out[0] != 3 {
		t.Errorf("ExecuteInto = %v, out %v; want nil, [3]", err, out)
	}
}

// TestFuncEvaluatorSteadyStateAllocs verifies the fast path's reuse
// contract: once the scratch is warm, repeated executions allocate
// nothing.
func TestFuncEvaluatorSteadyStateAllocs(t *testing.T) {
	g := conformanceGraphs(true)[1]
	cfg := arch.Config{D: 2, B: 8, R: 16}
	c, err := compiler.Compile(g, cfg, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := NewFuncEvaluator(cfg)
	inputs := make([]float64, len(c.Graph.Inputs()))
	for i := range inputs {
		inputs[i] = float64(i) + 0.5
	}
	out := make([]float64, len(c.Graph.Outputs()))
	if err := f.ExecuteInto(c, inputs, out); err != nil { // warm the scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := f.ExecuteInto(c, inputs, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state ExecuteInto allocates %v times per run, want 0", allocs)
	}
}

// FuzzFunctionalConformance extends the fuzz layer to the tentpole
// claim: over fuzzer-chosen graph shapes, configurations and inputs —
// non-finite values included — the functional backend must match the
// cycle-accurate machine bitwise on every sink (modulo NaN payloads;
// see sameBits) and agree on the cycle count.
func FuzzFunctionalConformance(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(3), uint8(16), uint8(32), 1.0, 0.5)
	f.Add(int64(7), uint8(4), uint8(1), uint8(4), uint8(4), math.Inf(1), -2.0)
	f.Add(int64(42), uint8(3), uint8(2), uint8(8), uint8(16), math.NaN(), 1e308)
	f.Fuzz(func(t *testing.T, seed int64, maxArgs, d, b, r uint8, in0, in1 float64) {
		g := dag.RandomGraph(dag.RandomConfig{
			Inputs:   2 + int(seed%5),
			Interior: 10 + int(seed%60),
			MaxArgs:  2 + int(maxArgs%4),
			MulFrac:  0.4,
			Seed:     seed,
		})
		cfg := arch.Config{D: 1 + int(d%3), B: 1 + int(b%32), R: 2 + int(r%48)}
		c, err := compiler.Compile(g, cfg, compiler.Options{})
		if err != nil {
			t.Skip() // infeasible configuration for this graph
		}
		rng := rand.New(rand.NewSource(seed))
		inputs := make([]float64, len(c.Graph.Inputs()))
		for i := range inputs {
			inputs[i] = rng.Float64()*6 - 3
		}
		// Splice the fuzzer's raw float64s (often non-finite or extreme)
		// into the input vector so the comparison covers those classes.
		if len(inputs) > 0 {
			inputs[0] = in0
		}
		if len(inputs) > 1 {
			inputs[1] = in1
		}
		mRes, err := RunWith(BackendCycleAccurate, c, inputs)
		if err != nil {
			t.Fatalf("cycle: %v", err)
		}
		fRes, err := RunWith(BackendFunctional, c, inputs)
		if err != nil {
			t.Fatalf("functional: %v", err)
		}
		for _, sink := range c.Graph.Outputs() {
			mv, fv := mRes.Outputs[sink], fRes.Outputs[sink]
			if !sameBits(mv, fv) {
				t.Errorf("sink %d: cycle %v (%#x), functional %v (%#x)",
					sink, mv, math.Float64bits(mv), fv, math.Float64bits(fv))
			}
		}
		if mRes.Stats.Cycles != fRes.Stats.Cycles {
			t.Errorf("cycles: cycle-accurate %d, functional %d", mRes.Stats.Cycles, fRes.Stats.Cycles)
		}
	})
}
