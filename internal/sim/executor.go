package sim

import (
	"fmt"

	"dpuv2/internal/arch"
	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
)

// Backend names an execution backend. The serving engine defaults to
// the functional fast path (the zero value); tools that report timing,
// energy or micro-architectural statistics — dpu-tune, dpu-dse,
// dpu-bench, dpu-sim's power model — select the cycle-accurate machine.
type Backend uint8

const (
	// BackendFunctional evaluates the compiled schedule directly: a
	// straight-line walk over the binarized graph the verified
	// instruction stream implements, with no register allocation, bank
	// or crossbar modeling, and no per-cycle accounting. Bit-exact with
	// the cycle-accurate machine (same float64 operations in the same
	// association order), and the backend a serving path that only needs
	// outputs should use.
	BackendFunctional Backend = iota
	// BackendCycleAccurate runs the full machine model (register files,
	// bank ports, landing ring, per-cycle statistics) — the fidelity
	// tuning and benchmarking need.
	BackendCycleAccurate
)

// String returns the flag-friendly name of the backend.
func (b Backend) String() string {
	switch b {
	case BackendFunctional:
		return "functional"
	case BackendCycleAccurate:
		return "cycle"
	}
	return fmt.Sprintf("backend(%d)", uint8(b))
}

// ParseBackend resolves a -backend flag value.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "functional", "func":
		return BackendFunctional, nil
	case "cycle", "cycle-accurate":
		return BackendCycleAccurate, nil
	}
	return 0, fmt.Errorf("sim: unknown backend %q (want functional or cycle)", s)
}

// Executor runs compiled programs. Implementations are NOT safe for
// concurrent use — callers lease one executor per goroutine (the
// engine's per-config pools) — but an executor is reusable: ExecuteInto
// leaves it ready for the next call, whatever program that is.
//
// The contract both backends satisfy:
//
//   - ExecuteInto writes the sink values of c.Graph (in
//     c.Graph.Outputs() order) into out, reading inputs in graph-input
//     order, and results are bit-exact across backends — the
//     conformance matrix and fuzz layer pin functional ≡ cycle-accurate
//     over random DAG × config × input populations, non-finite values
//     included. The one carve-out is NaN payload bits: IEEE 754 leaves
//     payload propagation implementation-defined (hardware keeps the
//     first operand's payload when two distinct NaNs meet, and
//     instruction operand order is the compiler's choice), so the
//     contract is "both backends produce NaN", not payload identity;
//   - Stats is valid after a successful ExecuteInto. The cycle-accurate
//     machine fills every field; the functional backend fills only
//     Cycles, which is still exact: the datapath is fully static (one
//     instruction issues per cycle, stall-free, plus the D+1-cycle
//     drain), so the cycle count is the compile-time constant
//     c.Stats.Cycles, not a simulation result.
type Executor interface {
	// Backend identifies the implementation.
	Backend() Backend
	// Config returns the configuration the executor was built for.
	Config() arch.Config
	// ExecuteInto executes c with the given inputs, writing sink values
	// into out.
	ExecuteInto(c *compiler.Compiled, inputs, out []float64) error
	// Stats returns statistics for the most recent execution.
	Stats() Stats
}

// NewExecutor builds an executor of the given backend for cfg.
func NewExecutor(b Backend, cfg arch.Config) Executor {
	if b == BackendCycleAccurate {
		return NewMachine(cfg, nil)
	}
	return NewFuncEvaluator(cfg)
}

// Backend identifies the machine as the cycle-accurate backend.
func (m *Machine) Backend() Backend { return BackendCycleAccurate }

// ExecuteInto implements Executor on the cycle-accurate machine: the
// machine is reset against c's memory image and runs the full
// instruction stream (see RunOn).
func (m *Machine) ExecuteInto(c *compiler.Compiled, inputs, out []float64) error {
	return RunOn(m, c, inputs, out)
}

// FuncEvaluator is the functional fast-path executor: it evaluates the
// compiled (binarized) graph directly instead of simulating the
// instruction stream. PR 6's static verifier proves every served
// program hazard-free, so the bookkeeping the machine model pays for on
// every request — register allocation replay, bank-port and crossbar
// checks, the landing ring, per-cycle stats — decides nothing about the
// outputs; the graph walk performs the same float64 operations in the
// same association order (each binarized node is one PE operation) and
// is therefore bit-exact with the machine, at a fraction of the cost.
//
// The value scratch is sized once per graph population and reused, so
// steady-state execution allocates nothing.
type FuncEvaluator struct {
	cfg    arch.Config
	vals   []float64
	cycles int
}

// NewFuncEvaluator returns a functional executor for cfg. The
// configuration does not influence results (that is the point of the
// backend); it is carried so pools can key leased evaluators the same
// way they key machines.
func NewFuncEvaluator(cfg arch.Config) *FuncEvaluator {
	return &FuncEvaluator{cfg: cfg.Normalize()}
}

// Backend identifies the evaluator as the functional backend.
func (f *FuncEvaluator) Backend() Backend { return BackendFunctional }

// Config returns the configuration the evaluator was built for.
func (f *FuncEvaluator) Config() arch.Config { return f.cfg }

// Stats returns the statistics of the last execution: only Cycles is
// filled (exactly — the static schedule fixes it at compile time).
func (f *FuncEvaluator) Stats() Stats { return Stats{Cycles: f.cycles} }

// ExecuteInto evaluates c's binarized graph with the given inputs
// (graph-input order), writing sink values into out in
// c.Graph.Outputs() order. The walk mirrors dag.Eval exactly — the
// reference the cycle-accurate machine is conformance-tested against —
// node by node in topological (id) order, accumulating left-to-right,
// so ternary-and-wider nodes can never appear (the compiled graph is
// binary) and every operation matches the machine's bit for bit.
func (f *FuncEvaluator) ExecuteInto(c *compiler.Compiled, inputs, out []float64) error {
	if len(inputs) != len(c.InputWord) {
		return fmt.Errorf("sim: %d inputs provided, graph has %d", len(inputs), len(c.InputWord))
	}
	g := c.Graph
	outs := g.Outputs()
	if len(out) != len(outs) {
		return fmt.Errorf("sim: output buffer has %d slots, graph has %d sinks", len(out), len(outs))
	}
	n := g.NumNodes()
	if cap(f.vals) < n {
		f.vals = make([]float64, n)
	}
	vals := f.vals[:n]
	next := 0
	for i := 0; i < n; i++ {
		nd := g.Node(dag.NodeID(i))
		switch nd.Op {
		case dag.OpInput:
			vals[i] = inputs[next]
			next++
		case dag.OpConst:
			vals[i] = nd.Val
		case dag.OpAdd:
			acc := vals[nd.Args[0]]
			for _, a := range nd.Args[1:] {
				acc += vals[a]
			}
			vals[i] = acc
		case dag.OpMul:
			acc := vals[nd.Args[0]]
			for _, a := range nd.Args[1:] {
				acc *= vals[a]
			}
			vals[i] = acc
		default:
			return fmt.Errorf("sim: node %d has unknown op %v", i, nd.Op)
		}
	}
	for i, sink := range outs {
		out[i] = vals[sink]
	}
	f.cycles = c.Stats.Cycles
	return nil
}

// RunWith executes a compiled program on a fresh executor of the given
// backend and returns the sink values keyed by node id. Functional
// results carry only the (exact, statically known) cycle count in
// Stats; use Run for the machine's full statistics.
func RunWith(b Backend, c *compiler.Compiled, inputs []float64) (*Result, error) {
	ex := NewExecutor(b, c.Prog.Cfg)
	outs := c.Graph.Outputs()
	out := make([]float64, len(outs))
	if err := ex.ExecuteInto(c, inputs, out); err != nil {
		return nil, err
	}
	res := &Result{Outputs: make(map[dag.NodeID]float64, len(outs)), Stats: ex.Stats().Clone()}
	for i, sink := range outs {
		res.Outputs[sink] = out[i]
	}
	return res, nil
}
