package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dpuv2/internal/arch"
	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
	"dpuv2/internal/pc"
	"dpuv2/internal/sptrsv"
)

func randInputs(g *dag.Graph, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	in := make([]float64, len(g.Inputs()))
	for i := range in {
		in[i] = rng.Float64()*4 - 2
	}
	return in
}

func compileAndVerify(t *testing.T, g *dag.Graph, cfg arch.Config, seed int64) *Result {
	t.Helper()
	c, err := compiler.Compile(g, cfg, compiler.Options{Seed: seed})
	if err != nil {
		t.Fatalf("compile %s on %v: %v", g.Name, cfg, err)
	}
	res, err := Verify(c, randInputs(c.Graph, seed^0xabc), 0)
	if err != nil {
		t.Fatalf("verify %s on %v: %v", g.Name, cfg, err)
	}
	return res
}

func TestTinyChain(t *testing.T) {
	g := dag.New("tiny")
	a := g.AddInput()
	b := g.AddInput()
	c := g.AddConst(3)
	s := g.AddOp(dag.OpAdd, a, b)
	g.AddOp(dag.OpMul, s, c)
	compileAndVerify(t, g, arch.Config{D: 2, B: 8, R: 16, Output: arch.OutPerLayer}, 1)
}

func TestSingleNode(t *testing.T) {
	g := dag.New("one")
	a := g.AddInput()
	b := g.AddInput()
	g.AddOp(dag.OpMul, a, b)
	compileAndVerify(t, g, arch.Config{D: 1, B: 8, R: 16, Output: arch.OutPerLayer}, 2)
}

func TestLeafSink(t *testing.T) {
	// A graph whose sink set includes a bare input and a constant.
	g := dag.New("leafsink")
	a := g.AddInput()
	g.AddConst(7)
	b := g.AddInput()
	g.AddOp(dag.OpAdd, a, b)
	g.AddInput() // dangling input, also a sink
	compileAndVerify(t, g, arch.Config{D: 2, B: 8, R: 16, Output: arch.OutPerLayer}, 3)
}

func TestSharedFanout(t *testing.T) {
	// One value consumed by many blocks exercises broadcast reads and
	// valid_rst timing.
	g := dag.New("fanout")
	a := g.AddInput()
	b := g.AddInput()
	s := g.AddOp(dag.OpAdd, a, b)
	var outs []dag.NodeID
	for i := 0; i < 40; i++ {
		c := g.AddConst(float64(i + 1))
		outs = append(outs, g.AddOp(dag.OpMul, s, c))
	}
	g.AddOp(dag.OpAdd, outs...)
	compileAndVerify(t, g, arch.Config{D: 3, B: 16, R: 32, Output: arch.OutPerLayer}, 4)
}

func TestDeepChain(t *testing.T) {
	// Serial dependency chain: every block depends on the previous one,
	// stressing RAW gap handling (D+1 spacing with nop insertion).
	g := dag.New("chain")
	x := g.AddInput()
	cur := x
	for i := 0; i < 200; i++ {
		c := g.AddConst(1.0 + 1.0/float64(i+1))
		cur = g.AddOp(dag.OpMul, cur, c)
	}
	res := compileAndVerify(t, g, arch.Config{D: 3, B: 16, R: 32, Output: arch.OutPerLayer}, 5)
	if res.Stats.Instrs[arch.KindNop] == 0 {
		t.Log("note: no nops needed (reorderer found independent work)")
	}
}

func TestRandomGraphsAcrossConfigs(t *testing.T) {
	cfgs := []arch.Config{
		{D: 1, B: 8, R: 16, Output: arch.OutPerLayer},
		{D: 2, B: 8, R: 16, Output: arch.OutPerLayer},
		{D: 2, B: 16, R: 32, Output: arch.OutCrossbar},
		{D: 3, B: 16, R: 32, Output: arch.OutPerLayer},
		{D: 3, B: 64, R: 32, Output: arch.OutPerLayer}, // min-EDP point
		{D: 3, B: 32, R: 64, Output: arch.OutPerPE},
	}
	for ci, cfg := range cfgs {
		for s := int64(0); s < 3; s++ {
			g := dag.RandomGraph(dag.RandomConfig{
				Inputs:   10 + int(s)*7,
				Interior: 400,
				MaxArgs:  4,
				MulFrac:  0.4,
				Window:   50,
				Seed:     int64(ci)*100 + s,
			})
			compileAndVerify(t, g, cfg, s)
		}
	}
}

func TestSpillingSmallR(t *testing.T) {
	// R=4 forces heavy spilling; results must still be exact.
	g := dag.RandomGraph(dag.RandomConfig{Inputs: 30, Interior: 300, MaxArgs: 3, MulFrac: 0.5, Seed: 9})
	cfg := arch.Config{D: 2, B: 8, R: 4, Output: arch.OutPerLayer}
	c, err := compiler.Compile(g, cfg, compiler.Options{Seed: 1})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if c.Stats.SpillStores == 0 {
		t.Error("expected spills at R=4")
	}
	if _, err := Verify(c, randInputs(c.Graph, 77), 0); err != nil {
		t.Fatal(err)
	}
}

func TestRandomBankAllocationStillCorrect(t *testing.T) {
	g := dag.RandomGraph(dag.RandomConfig{Inputs: 20, Interior: 300, MaxArgs: 3, MulFrac: 0.5, Seed: 11})
	cfg := arch.Config{D: 3, B: 16, R: 64, Output: arch.OutPerLayer}
	c, err := compiler.Compile(g, cfg, compiler.Options{Seed: 1, RandomBanks: true})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if _, err := Verify(c, randInputs(c.Graph, 5), 0); err != nil {
		t.Fatal(err)
	}
}

func TestPCWorkloadEndToEnd(t *testing.T) {
	g := pc.Build(pc.Suite()[1], 0.08) // ~800-node mnist stand-in
	compileAndVerify(t, g, arch.MinEDP(), 13)
}

func TestSpTRSVWorkloadEndToEnd(t *testing.T) {
	m := sptrsv.Leveled(120, 24, 2, 3)
	g, xs := sptrsv.Lower(m)
	c, err := compiler.Compile(g, arch.MinEDP(), compiler.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b := randInputs(c.Graph, 21)
	res, err := Verify(c, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check a few solution components against the direct solver.
	want, err := m.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for i, x := range xs {
		bx := c.Remap[x]
		if got, ok := res.Outputs[bx]; ok {
			// The lowered DAG multiplies by pre-inverted diagonals and
			// re-associates sums, so agreement with the direct solver is
			// approximate (the DAG-reference comparison above is exact).
			if math.Abs(got-want[i]) > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("x[%d] = %v, solver %v", i, got, want[i])
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no solution components were DAG sinks")
	}
}

func TestPackedProgramRoundTripExecutes(t *testing.T) {
	// Execute from the packed binary (decode path) and compare with the
	// decoded-form execution.
	g := dag.RandomGraph(dag.RandomConfig{Inputs: 12, Interior: 150, MaxArgs: 3, MulFrac: 0.5, Seed: 17})
	cfg := arch.Config{D: 2, B: 16, R: 32, Output: arch.OutPerLayer}
	c, err := compiler.Compile(g, cfg, compiler.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	packed := c.Prog.Pack()
	back, err := arch.Unpack(packed, cfg, len(c.Prog.Instrs))
	if err != nil {
		t.Fatal(err)
	}
	c.Prog.Instrs = back
	if _, err := Verify(c, randInputs(c.Graph, 3), 0); err != nil {
		t.Fatalf("packed round-trip execution diverged: %v", err)
	}
}

func TestOccupancyTraceAndPeak(t *testing.T) {
	g := dag.RandomGraph(dag.RandomConfig{Inputs: 16, Interior: 200, MaxArgs: 3, MulFrac: 0.5, Seed: 23})
	cfg := arch.Config{D: 2, B: 8, R: 32, Output: arch.OutPerLayer}
	c, err := compiler.Compile(g, cfg, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(cfg, c.Prog.InitMem)
	samples := 0
	m.OccTrace = func(cycle int, perBank []int) {
		samples++
		for b, occ := range perBank {
			if occ < 0 || occ > cfg.R {
				t.Fatalf("bank %d occupancy %d out of range", b, occ)
			}
		}
	}
	for i, w := range c.InputWord {
		if w >= 0 {
			m.SetMem(w, float64(i))
		}
	}
	if err := m.Run(c.Prog); err != nil {
		t.Fatal(err)
	}
	if samples != m.Stats().Cycles {
		t.Fatalf("trace saw %d cycles, stats say %d", samples, m.Stats().Cycles)
	}
	for b, p := range m.Stats().PeakActive {
		if p > cfg.R {
			t.Fatalf("bank %d peak %d exceeds R", b, p)
		}
	}
}

func TestMachineRejectsInvalidRead(t *testing.T) {
	cfg := arch.Config{D: 1, B: 8, R: 8, Output: arch.OutPerLayer}.Normalize()
	m := NewMachine(cfg, nil)
	in := arch.NewExec(cfg)
	in.PEOps[0] = arch.PEAdd // leaf PE of tree 0 reads ports 0,1
	in.ReadEn[0] = true
	in.ReadEn[1] = true
	in.InputSel[0] = 0
	in.InputSel[1] = 1
	if err := m.step(in); err == nil {
		t.Fatal("expected invalid-register read error")
	}
}

func TestMachineRejectsDoubleWrite(t *testing.T) {
	cfg := arch.Config{D: 1, B: 8, R: 8, Output: arch.OutPerLayer}.Normalize()
	m := NewMachine(cfg, make([]float64, 16))
	in := arch.NewLoad(cfg, 0)
	in.Mask[3] = true
	if err := m.step(in); err != nil {
		t.Fatal(err)
	}
	// Another load in the next cycle is fine…
	if err := m.step(in); err != nil {
		t.Fatal(err)
	}
	// …but two copies targeting one bank in one instruction are not.
	m2 := NewMachine(cfg, make([]float64, 16))
	ld := arch.NewLoad(cfg, 0)
	ld.Mask[0], ld.Mask[1] = true, true
	if err := m2.step(ld); err != nil {
		t.Fatal(err)
	}
	if err := m2.step(&arch.Instr{Kind: arch.KindNop}); err != nil {
		t.Fatal(err)
	}
	cp := &arch.Instr{Kind: arch.KindCopy, Moves: []arch.Move{
		{SrcBank: 0, SrcAddr: 0, Dst: 5},
		{SrcBank: 1, SrcAddr: 0, Dst: 5},
	}}
	if err := m2.step(cp); err == nil {
		t.Fatal("expected double-write error")
	}
}

func TestMachineRejectsBankOverflow(t *testing.T) {
	cfg := arch.Config{D: 1, B: 8, R: 2, Output: arch.OutPerLayer}.Normalize()
	m := NewMachine(cfg, make([]float64, 8))
	ld := arch.NewLoad(cfg, 0)
	ld.Mask[0] = true
	for i := 0; i < 2; i++ {
		if err := m.step(ld); err != nil {
			t.Fatal(err)
		}
	}
	err := m.step(ld)
	if err == nil {
		err = m.endCycle()
	}
	if err == nil {
		t.Fatal("expected overflow error")
	}
}

// Property: compile+simulate equals reference evaluation for arbitrary
// random graphs on the min-EDP configuration.
func TestCompileSimulateProperty(t *testing.T) {
	f := func(seed int64, nIn8, nOp8 uint8) bool {
		g := dag.RandomGraph(dag.RandomConfig{
			Inputs:   1 + int(nIn8%40),
			Interior: 1 + int(nOp8),
			MaxArgs:  2 + int(uint64(seed)%3),
			MulFrac:  0.5,
			Seed:     seed,
		})
		c, err := compiler.Compile(g, arch.MinEDP(), compiler.Options{Seed: seed})
		if err != nil {
			return false
		}
		_, err = Verify(c, randInputs(c.Graph, seed^1), 0)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
