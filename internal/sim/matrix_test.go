package sim

import (
	"testing"

	"dpuv2/internal/arch"
	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
)

// TestOptionMatrix sweeps compiler options × topologies × shapes and
// verifies functional correctness of every combination end to end — the
// widest co-design safety net in the suite.
func TestOptionMatrix(t *testing.T) {
	shapes := []dag.RandomConfig{
		{Inputs: 6, Interior: 120, MaxArgs: 2, MulFrac: 0.3, Window: 8, Seed: 1},   // deep
		{Inputs: 60, Interior: 240, MaxArgs: 4, MulFrac: 0.6, Seed: 2},             // wide
		{Inputs: 16, Interior: 300, MaxArgs: 3, MulFrac: 0.5, Window: 60, Seed: 3}, // mixed
	}
	cfgs := []arch.Config{
		{D: 1, B: 16, R: 16, Output: arch.OutCrossbar},
		{D: 2, B: 8, R: 24, Output: arch.OutPerPE},
		{D: 3, B: 32, R: 16, Output: arch.OutPerLayer},
	}
	opts := []compiler.Options{
		{},
		{Seed: 99},
		{Window: 1},
		{Window: 50, SeedLookahead: 1, FillLookahead: 1},
		{RandomBanks: true},
		{PartitionSize: 64},
	}
	for si, shape := range shapes {
		g := dag.RandomGraph(shape)
		for ci, cfg := range cfgs {
			for oi, o := range opts {
				c, err := compiler.Compile(g, cfg, o)
				if err != nil {
					t.Fatalf("shape %d cfg %d opts %d: compile: %v", si, ci, oi, err)
				}
				if _, err := Verify(c, randInputs(c.Graph, int64(si*100+ci*10+oi)), 0); err != nil {
					t.Fatalf("shape %d cfg %d opts %d: %v", si, ci, oi, err)
				}
			}
		}
	}
}
