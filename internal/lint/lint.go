// Package lint enforces repo-wide source invariants that the type
// system cannot express, using only the standard library's go/ast
// parser (no go/analysis dependency). It runs as a normal test
// (TestRepoInvariants), so `go test ./...` is the enforcement point.
//
// Two invariants are checked:
//
//   - clockuse: code in internal/sched and internal/serve must not
//     read or arm real time directly (time.Now, time.Sleep, timers…).
//     Those packages are tested with a deterministic FakeClock, and a
//     single stray time.Now turns a reproducible scheduling test into
//     a flaky one. The injectable sched.Clock is the only door; the
//     systemClock implementation behind it carries a
//     `//lint:allow clockuse` doc directive.
//
//   - machinereset: a sim.Machine holds register-bank valid bits and a
//     landing ring from its last program. Reusing one without Reset
//     leaks that state into the next run — exactly the bug class the
//     engine's machine pool makes easy to write. Any function that
//     receives a *sim.Machine (pools hand them back dirty) must Reset
//     before Run, and a machine built outside a loop must be Reset
//     inside the loop that reruns it.
//
// The analysis is purely syntactic: it tracks import aliases but does
// no type inference, trading a little precision for zero dependencies
// and sub-second runtime over the whole tree.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Issue is one invariant violation.
type Issue struct {
	Pos  string // file:line, relative to the linted root
	Rule string // "clockuse" or "machinereset"
	Msg  string
}

func (i Issue) String() string { return i.Pos + ": " + i.Rule + ": " + i.Msg }

// Source lints every non-test .go file under root and returns the
// violations sorted by position. testdata and dot-directories are
// skipped; a file that fails to parse is an error (the build is broken,
// not merely non-conforming).
func Source(root string) ([]Issue, error) {
	var issues []Issue
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, werr error) error {
		if werr != nil {
			return werr
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || (strings.HasPrefix(name, ".") && path != root) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("lint: %w", err)
		}
		rel, rerr := filepath.Rel(root, path)
		if rerr != nil {
			rel = path
		}
		rel = filepath.ToSlash(rel)
		if strings.HasPrefix(rel, "internal/sched/") || strings.HasPrefix(rel, "internal/serve/") {
			issues = append(issues, clockuse(fset, f)...)
		}
		issues = append(issues, machineReset(fset, f)...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(issues, func(i, j int) bool {
		if issues[i].Pos != issues[j].Pos {
			return issues[i].Pos < issues[j].Pos
		}
		return issues[i].Msg < issues[j].Msg
	})
	return issues, nil
}

// importName returns the identifier under which importPath is visible
// in f: its alias if renamed, the path's base name otherwise, "" if not
// imported (or blank-imported, which exposes no identifier).
func importName(f *ast.File, importPath string) string {
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != importPath {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return ""
			}
			return imp.Name.Name
		}
		return filepath.Base(p)
	}
	return ""
}

// allows reports whether a doc comment group carries a
// `lint:allow <rule>` directive.
func allows(doc *ast.CommentGroup, rule string) bool {
	if doc == nil {
		return false
	}
	return strings.Contains(doc.Text(), "lint:allow "+rule) ||
		strings.Contains(allComments(doc), "lint:allow "+rule)
}

// allComments joins the raw comment lines; CommentGroup.Text strips
// `//lint:` directive comments, so the raw form is what directives
// live in.
func allComments(doc *ast.CommentGroup) string {
	var b strings.Builder
	for _, c := range doc.List {
		b.WriteString(c.Text)
		b.WriteByte('\n')
	}
	return b.String()
}

func position(fset *token.FileSet, p token.Pos) string {
	pos := fset.Position(p)
	return fmt.Sprintf("%s:%d", filepath.ToSlash(pos.Filename), pos.Line)
}

// bannedTime are the package-time selectors that read or arm the real
// clock. Types (time.Time, time.Duration) and constants stay legal.
var bannedTime = map[string]bool{
	"Now": true, "Sleep": true, "Since": true, "Until": true,
	"After": true, "AfterFunc": true, "NewTimer": true,
	"NewTicker": true, "Tick": true,
}

// clockuse flags direct real-time access in a file that is required to
// go through the injectable sched.Clock.
func clockuse(fset *token.FileSet, f *ast.File) []Issue {
	timeName := importName(f, "time")
	if timeName == "" {
		return nil
	}
	var issues []Issue
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil || allows(fd.Doc, "clockuse") {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || id.Name != timeName || !bannedTime[sel.Sel.Name] {
				return true
			}
			issues = append(issues, Issue{
				Pos:  position(fset, sel.Pos()),
				Rule: "clockuse",
				Msg: fmt.Sprintf("time.%s bypasses the injectable sched.Clock; thread a Clock through (or annotate the function with lint:allow clockuse)",
					sel.Sel.Name),
			})
			return true
		})
	}
	return issues
}

// machineReset flags sim.Machine reuse paths that skip Reset.
func machineReset(fset *token.FileSet, f *ast.File) []Issue {
	simName := importName(f, "dpuv2/internal/sim")
	inSim := f.Name.Name == "sim"
	if simName == "" && !inSim {
		return nil
	}
	var issues []Issue
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil || allows(fd.Doc, "machinereset") {
			continue
		}

		// Machines handed to the function arrive with unknown (for the
		// engine pool: known-dirty) state.
		dirty := map[string]bool{}
		if fd.Type.Params != nil {
			for _, field := range fd.Type.Params.List {
				if !isMachineType(field.Type, simName, inSim) {
					continue
				}
				for _, name := range field.Names {
					dirty[name.Name] = true
				}
			}
		}
		// Machines built fresh in this function (NewMachine zeroes
		// state, so a straight-line Run is fine) plus pool checkouts
		// (getMachine results are dirty like params).
		fresh := map[string]bool{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range as.Rhs {
				if i >= len(as.Lhs) {
					break
				}
				id, ok := as.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				switch machineOrigin(rhs, simName, inSim) {
				case "fresh":
					fresh[id.Name] = true
				case "pooled":
					dirty[id.Name] = true
				}
			}
			return true
		})
		if len(dirty) == 0 && len(fresh) == 0 {
			continue
		}

		// Dirty machines: Run is only legal after a Reset (positional
		// check — good enough for straight-line reuse code, and false
		// negatives are caught by the differential tests anyway).
		for name := range dirty {
			run := firstMethodCall(fd.Body, name, "Run")
			if !run.IsValid() {
				continue
			}
			reset := firstMethodCall(fd.Body, name, "Reset")
			if !reset.IsValid() || reset > run {
				issues = append(issues, Issue{
					Pos:  position(fset, run),
					Rule: "machinereset",
					Msg:  fmt.Sprintf("machine %q may carry a previous program's state; call %s.Reset before %s.Run", name, name, name),
				})
			}
		}
		// Fresh machines rerun in a loop: the loop body must recreate
		// or Reset them, or iteration 2 starts from iteration 1's
		// register file.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			for name := range fresh {
				run := firstMethodCall(body, name, "Run")
				if !run.IsValid() {
					continue
				}
				if firstMethodCall(body, name, "Reset").IsValid() || createdIn(body, name, simName, inSim) {
					continue
				}
				issues = append(issues, Issue{
					Pos:  position(fset, run),
					Rule: "machinereset",
					Msg:  fmt.Sprintf("machine %q is rerun across loop iterations without Reset; stale register state leaks between runs", name),
				})
			}
			return true
		})
	}
	return issues
}

// isMachineType matches *sim.Machine (and *Machine inside package sim).
func isMachineType(t ast.Expr, simName string, inSim bool) bool {
	star, ok := t.(*ast.StarExpr)
	if !ok {
		return false
	}
	switch x := star.X.(type) {
	case *ast.SelectorExpr:
		id, ok := x.X.(*ast.Ident)
		return ok && simName != "" && id.Name == simName && x.Sel.Name == "Machine"
	case *ast.Ident:
		return inSim && x.Name == "Machine"
	}
	return false
}

// machineOrigin classifies an assignment RHS: "fresh" for
// sim.NewMachine(...), "pooled" for anything named getMachine (the
// engine's pool accessor), "" otherwise.
func machineOrigin(rhs ast.Expr, simName string, inSim bool) string {
	call, ok := rhs.(*ast.CallExpr)
	if !ok {
		return ""
	}
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok && simName != "" && id.Name == simName && fun.Sel.Name == "NewMachine" {
			return "fresh"
		}
		if fun.Sel.Name == "getMachine" {
			return "pooled"
		}
	case *ast.Ident:
		if inSim && fun.Name == "NewMachine" {
			return "fresh"
		}
		if fun.Name == "getMachine" {
			return "pooled"
		}
	}
	return ""
}

// firstMethodCall returns the position of the first `name.method(...)`
// call under n, or token.NoPos.
func firstMethodCall(n ast.Node, name, method string) token.Pos {
	best := token.NoPos
	ast.Inspect(n, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != method {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Name != name {
			return true
		}
		if !best.IsValid() || call.Pos() < best {
			best = call.Pos()
		}
		return true
	})
	return best
}

// createdIn reports whether body (re)assigns name from a machine
// source, which makes in-loop reuse safe.
func createdIn(body *ast.BlockStmt, name, simName string, inSim bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if ok && id.Name == name && machineOrigin(rhs, simName, inSim) != "" {
				found = true
			}
		}
		return true
	})
	return found
}
