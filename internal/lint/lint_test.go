package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoInvariants is the enforcement point: the whole repository
// must lint clean. CI runs this by name; locally it is part of the
// ordinary `go test ./...` sweep.
func TestRepoInvariants(t *testing.T) {
	issues, err := Source("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, is := range issues {
		t.Errorf("%s", is)
	}
}

// write lays out a synthetic source tree for rule tests.
func write(t *testing.T, root, rel, src string) {
	t.Helper()
	path := filepath.Join(root, filepath.FromSlash(rel))
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

func lintTree(t *testing.T, root string) []Issue {
	t.Helper()
	issues, err := Source(root)
	if err != nil {
		t.Fatal(err)
	}
	return issues
}

func wantRules(t *testing.T, issues []Issue, rules ...string) {
	t.Helper()
	if len(issues) != len(rules) {
		t.Fatalf("got %d issues %v, want %d", len(issues), issues, len(rules))
	}
	for i, r := range rules {
		if issues[i].Rule != r {
			t.Errorf("issue %d: rule %q, want %q (%s)", i, issues[i].Rule, r, issues[i])
		}
	}
}

func TestClockuseFlagsDirectTime(t *testing.T) {
	root := t.TempDir()
	write(t, root, "internal/sched/x.go", `package sched

import "time"

func f() time.Time { return time.Now() }
`)
	issues := lintTree(t, root)
	wantRules(t, issues, "clockuse")
	if !strings.Contains(issues[0].Msg, "time.Now") {
		t.Errorf("message does not name the call: %s", issues[0])
	}
}

func TestClockuseSeesThroughImportAlias(t *testing.T) {
	root := t.TempDir()
	write(t, root, "internal/serve/x.go", `package serve

import tm "time"

func f() { tm.Sleep(tm.Second) }
`)
	wantRules(t, lintTree(t, root), "clockuse")
}

func TestClockuseAllowDirective(t *testing.T) {
	root := t.TempDir()
	write(t, root, "internal/sched/x.go", `package sched

import "time"

// f is the sanctioned door to the wall clock.
//
//lint:allow clockuse
func f() time.Time { return time.Now() }
`)
	wantRules(t, lintTree(t, root))
}

func TestClockuseScopedToSchedAndServe(t *testing.T) {
	root := t.TempDir()
	// time.Now outside the scoped packages is legal.
	write(t, root, "internal/bench/x.go", `package bench

import "time"

func f() time.Time { return time.Now() }
`)
	// time.Duration types inside them are legal too.
	write(t, root, "internal/sched/y.go", `package sched

import "time"

const linger = 500 * time.Microsecond

func g(d time.Duration) time.Duration { return d + linger }
`)
	wantRules(t, lintTree(t, root))
}

func TestClockuseSkipsTestFiles(t *testing.T) {
	root := t.TempDir()
	write(t, root, "internal/sched/x_test.go", `package sched

import "time"

func f() time.Time { return time.Now() }
`)
	wantRules(t, lintTree(t, root))
}

func TestMachineResetLoopReuse(t *testing.T) {
	root := t.TempDir()
	write(t, root, "internal/x/x.go", `package x

import (
	"dpuv2/internal/arch"
	"dpuv2/internal/sim"
)

func f(cfg arch.Config, p *arch.Program) {
	m := sim.NewMachine(cfg, nil)
	for i := 0; i < 3; i++ {
		m.Run(p)
	}
}
`)
	issues := lintTree(t, root)
	wantRules(t, issues, "machinereset")
	if !strings.Contains(issues[0].Msg, "loop") {
		t.Errorf("message does not mention the loop: %s", issues[0])
	}
}

func TestMachineResetLoopWithResetIsClean(t *testing.T) {
	root := t.TempDir()
	write(t, root, "internal/x/x.go", `package x

import (
	"dpuv2/internal/arch"
	"dpuv2/internal/sim"
)

func f(cfg arch.Config, p *arch.Program) {
	m := sim.NewMachine(cfg, nil)
	for i := 0; i < 3; i++ {
		m.Reset(nil)
		m.Run(p)
	}
}

func g(cfg arch.Config, ps []*arch.Program) {
	for _, p := range ps {
		m := sim.NewMachine(cfg, nil) // fresh every iteration: fine
		m.Run(p)
	}
}
`)
	wantRules(t, lintTree(t, root))
}

func TestMachineResetDirtyParam(t *testing.T) {
	root := t.TempDir()
	write(t, root, "internal/x/x.go", `package x

import (
	"dpuv2/internal/arch"
	"dpuv2/internal/sim"
)

func bad(m *sim.Machine, p *arch.Program) { m.Run(p) }

func good(m *sim.Machine, p *arch.Program) {
	m.Reset(nil)
	m.Run(p)
}
`)
	issues := lintTree(t, root)
	wantRules(t, issues, "machinereset")
	if !strings.Contains(issues[0].Msg, "Reset before") {
		t.Errorf("unexpected message: %s", issues[0])
	}
}

func TestMachineResetPooledCheckout(t *testing.T) {
	root := t.TempDir()
	write(t, root, "internal/x/x.go", `package x

import (
	"dpuv2/internal/arch"
	"dpuv2/internal/sim"
)

type pool struct{}

func (pool) getMachine(cfg arch.Config) *sim.Machine { return sim.NewMachine(cfg, nil) }

func bad(e pool, cfg arch.Config, p *arch.Program) {
	m := e.getMachine(cfg)
	m.Run(p)
}
`)
	wantRules(t, lintTree(t, root), "machinereset")
}
