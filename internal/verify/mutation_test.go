package verify_test

import (
	"testing"

	"dpuv2/internal/arch"
	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
	"dpuv2/internal/verify"
)

// goodCompiled builds a known-good compiled program for the mutation
// tests. Each subtest compiles its own copy so mutations cannot leak.
func goodCompiled(t *testing.T) *compiler.Compiled {
	t.Helper()
	g := dag.RandomGraph(dag.RandomConfig{Inputs: 8, Interior: 80, MaxArgs: 2, MulFrac: 0.5, Seed: 7})
	cfg := arch.Config{D: 2, B: 8, R: 16, Output: arch.OutCrossbar}
	c, err := compiler.Compile(g, cfg, compiler.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if fs := verify.Compiled(c); verify.HasErrors(fs) {
		t.Fatalf("baseline program is not clean: %s", verify.Summary(fs))
	}
	return c
}

// requireClass asserts that the findings contain at least one
// error-severity finding of the given class — the "exact finding class
// per mutation" acceptance criterion.
func requireClass(t *testing.T, fs []verify.Finding, want verify.Class) {
	t.Helper()
	for _, f := range fs {
		if f.Sev == verify.SevError && f.Class == want {
			return
		}
	}
	for _, f := range fs {
		t.Logf("  %s", f)
	}
	t.Fatalf("no %s error finding (got %d findings)", want, len(fs))
}

// firstExec returns the index of the first exec instruction with at
// least one active leaf PE (so it demonstrably reads registers).
func firstExec(t *testing.T, c *compiler.Compiled) int {
	t.Helper()
	cfg := c.Prog.Cfg
	for i, in := range c.Prog.Instrs {
		if in.Kind != arch.KindExec {
			continue
		}
		for id, op := range in.PEOps {
			if op != arch.PEIdle && cfg.PECoord(id).Layer == 1 {
				return i
			}
		}
	}
	t.Fatal("no exec instruction with an active leaf PE")
	return -1
}

// TestMutationClasses corrupts a known-good program one way at a time
// and asserts the verifier rejects each corruption with the finding
// class that names the actual hazard.
func TestMutationClasses(t *testing.T) {
	t.Run("swap-exec-before-loads", func(t *testing.T) {
		// Reordering the schedule breaks def-before-use: an exec issued at
		// pc 0 reads registers no load has written yet.
		c := goodCompiled(t)
		i := firstExec(t, c)
		c.Prog.Instrs[0], c.Prog.Instrs[i] = c.Prog.Instrs[i], c.Prog.Instrs[0]
		requireClass(t, verify.Compiled(c), verify.ClassUninitRead)
	})

	t.Run("read-addr-past-R", func(t *testing.T) {
		c := goodCompiled(t)
		in := c.Prog.Instrs[firstExec(t, c)]
		for b, en := range in.ReadEn {
			if en {
				in.ReadAddr[b] = uint16(c.Prog.Cfg.R)
				break
			}
		}
		requireClass(t, verify.Compiled(c), verify.ClassResource)
	})

	t.Run("store-row-out-of-bounds", func(t *testing.T) {
		c := goodCompiled(t)
		cfg := c.Prog.Cfg
		found := false
		for _, in := range c.Prog.Instrs {
			if in.Kind == arch.KindStore || in.Kind == arch.KindStore4 {
				in.MemAddr = cfg.DataMemWords / cfg.B
				found = true
				break
			}
		}
		if !found {
			t.Fatal("no store instruction to mutate")
		}
		requireClass(t, verify.Compiled(c), verify.ClassMemBounds)
	})

	t.Run("read-enable-cleared", func(t *testing.T) {
		// Clearing a read enable under an active port starves the PE: the
		// crossbar routes a bank nothing drives this cycle.
		c := goodCompiled(t)
		cfg := c.Prog.Cfg
		in := c.Prog.Instrs[firstExec(t, c)]
		port := -1
		for id, op := range in.PEOps {
			p := cfg.PECoord(id)
			if op == arch.PEIdle || p.Layer != 1 {
				continue
			}
			l, r := cfg.InputPorts(p)
			if op == arch.PEBypassR {
				port = r
			} else {
				port = l
			}
			break
		}
		in.ReadEn[in.InputSel[port]] = false
		requireClass(t, verify.Compiled(c), verify.ClassDeadOperand)
	})

	t.Run("output-word-out-of-range", func(t *testing.T) {
		c := goodCompiled(t)
		sink := c.Graph.Outputs()[0]
		c.OutputWord[sink] = c.Prog.Cfg.DataMemWords
		requireClass(t, verify.Compiled(c), verify.ClassMapping)
	})

	t.Run("output-word-never-written", func(t *testing.T) {
		c := goodCompiled(t)
		sink := c.Graph.Outputs()[0]
		w := c.Prog.Cfg.DataMemWords - 1
		if w < len(c.Prog.InitMem) {
			t.Fatal("picked word is inside the init image")
		}
		c.OutputWord[sink] = w
		requireClass(t, verify.Compiled(c), verify.ClassMapping)
	})

	t.Run("crossbar-write-sel-past-numpes", func(t *testing.T) {
		// A decoded crossbar write select can name any value its bit width
		// admits; one past NumPEs would index the simulator's liveness
		// array out of range. Both Validate and the verifier must reject
		// it.
		cfg := arch.Config{D: 2, B: 4, R: 4, Output: arch.OutCrossbar}.Normalize()
		in := arch.NewExec(cfg)
		in.WriteEn[0] = true
		in.WriteSel[0] = uint16(cfg.NumPEs())
		if err := in.Validate(cfg); err == nil {
			t.Error("Validate accepted a write select past NumPEs")
		}
		p := &arch.Program{Cfg: cfg, Instrs: []*arch.Instr{in}}
		requireClass(t, verify.Program(p, cfg), verify.ClassResource)
	})
}

// TestSyntheticHazards hand-builds programs around the two hazards a
// single-instruction mutation cannot easily reach — landing-write
// conflicts and bank overflow — plus the free-list discipline cases.
func TestSyntheticHazards(t *testing.T) {
	t.Run("write-conflict", func(t *testing.T) {
		// Timeline (D=2, ring latency exec=+2, load=+1):
		//   pc0 load row0, all lanes     → lands end of cycle 1
		//   pc1 nop                        (let the loads land)
		//   pc2 exec, root writes bank 0 → lands cycle 4
		//   pc3 load lane 0              → lands cycle 4: conflict
		cfg := arch.Config{D: 2, B: 4, R: 4, Output: arch.OutCrossbar}.Normalize()
		var p arch.Program
		p.Cfg = cfg

		ld := arch.NewLoad(cfg, 0)
		for i := range ld.Mask {
			ld.Mask[i] = true
		}
		p.MustAppend(ld)
		p.MustAppend(&arch.Instr{Kind: arch.KindNop})

		ex := arch.NewExec(cfg)
		ex.PEOps[0] = arch.PEAdd     // leaf PE 0 reads ports 0,1
		ex.PEOps[2] = arch.PEBypassL // root forwards the leaf's sum
		ex.ReadEn[0], ex.ReadEn[1] = true, true
		ex.InputSel[0], ex.InputSel[1] = 0, 1
		ex.WriteEn[0] = true
		ex.WriteSel[0] = 2 // root PE id
		p.MustAppend(ex)

		ld2 := arch.NewLoad(cfg, 0)
		ld2.Mask[0] = true
		p.MustAppend(ld2)

		requireClass(t, verify.Program(&p, cfg), verify.ClassWriteConflict)
	})

	t.Run("bank-overflow", func(t *testing.T) {
		// R=2 and three full-row loads with no frees: the third landing
		// write finds its bank full.
		cfg := arch.Config{D: 1, B: 2, R: 2, Output: arch.OutCrossbar}.Normalize()
		var p arch.Program
		p.Cfg = cfg
		for i := 0; i < 3; i++ {
			ld := arch.NewLoad(cfg, 0)
			ld.Mask[0], ld.Mask[1] = true, true
			p.MustAppend(ld)
		}
		requireClass(t, verify.Program(&p, cfg), verify.ClassBankOverflow)
	})

	t.Run("use-after-free", func(t *testing.T) {
		// An exec reads bank 0 with valid_rst, freeing the register; a
		// later exec reads the same address again.
		cfg := arch.Config{D: 1, B: 2, R: 2, Output: arch.OutCrossbar}.Normalize()
		var p arch.Program
		p.Cfg = cfg

		ld := arch.NewLoad(cfg, 0)
		ld.Mask[0], ld.Mask[1] = true, true
		p.MustAppend(ld)
		p.MustAppend(&arch.Instr{Kind: arch.KindNop})

		ex := arch.NewExec(cfg)
		ex.PEOps[0] = arch.PEAdd
		ex.ReadEn[0], ex.ReadEn[1] = true, true
		ex.InputSel[0], ex.InputSel[1] = 0, 1
		ex.ValidRst[0] = true
		p.MustAppend(ex)

		ex2 := arch.NewExec(cfg)
		ex2.PEOps[0] = arch.PEBypassL
		ex2.ReadEn[0] = true
		ex2.InputSel[0] = 0
		p.MustAppend(ex2)

		fs := verify.Program(&p, cfg)
		requireClass(t, fs, verify.ClassUninitRead)
		found := false
		for _, f := range fs {
			if f.Class == verify.ClassUninitRead && f.PC == 3 {
				found = true
			}
		}
		if !found {
			t.Errorf("use-after-free not anchored to pc 3: %v", fs)
		}
	})

	t.Run("idle-pe-write", func(t *testing.T) {
		cfg := arch.Config{D: 1, B: 2, R: 2, Output: arch.OutCrossbar}.Normalize()
		ex := arch.NewExec(cfg)
		ex.WriteEn[0] = true
		ex.WriteSel[0] = 0 // the only PE — left idle
		p := &arch.Program{Cfg: cfg, Instrs: []*arch.Instr{ex}}
		requireClass(t, verify.Program(p, cfg), verify.ClassDeadOperand)
	})

	t.Run("dead-reset-is-warning-only", func(t *testing.T) {
		cfg := arch.Config{D: 1, B: 2, R: 2, Output: arch.OutCrossbar}.Normalize()
		ex := arch.NewExec(cfg)
		ex.ValidRst[0] = true // no read anywhere: the bit frees nothing
		p := &arch.Program{Cfg: cfg, Instrs: []*arch.Instr{ex}}
		fs := verify.Program(p, cfg)
		if verify.HasErrors(fs) {
			t.Fatalf("dead reset must not be an error: %s", verify.Summary(fs))
		}
		if len(fs) == 0 || fs[0].Class != verify.ClassDeadReset {
			t.Fatalf("want a dead-reset warning, got %v", fs)
		}
	})
}
