// Package verify statically checks compiled DPU-v2 programs against the
// machine model before anything executes them. It is the trust boundary
// between "the checksum matched" and "this program is legal": a decoded
// artifact from a shared store, a tuned decision's pre-compiled program,
// or the compiler's own output can all be proven free of the hazards the
// simulator treats as fatal — without running a single input.
//
// The key property making exact static verification possible is that the
// hardware's write addresses are deterministic functions of the
// instruction stream alone: a landing write takes the lowest free address
// of its bank (the fig. 5(d) valid-bit priority encoder), and writes land
// at fixed latencies (issue+1 for load/copy, issue+D for exec). The
// verifier therefore replays the simulator's micro-timing contract over
// abstract state — per-bank valid bitmaps and a landing ring, no values —
// and every register address, free, and landing conflict resolves exactly
// as it would at run time. A program that verifies clean cannot read an
// uninitialized or freed register, overflow a bank, land two writes on
// one bank in a cycle, consume a dead PE operand, or touch memory out of
// bounds on the machine it was compiled for.
//
// Findings are structured (severity, class, pc, PE, bank) so gates can
// distinguish classes and CLIs can render them. Warnings mark
// suspicious-but-harmless encodings (e.g. a valid_rst bit that frees
// nothing); only errors reject a program.
package verify

import (
	"bytes"
	"fmt"

	"dpuv2/internal/arch"
	"dpuv2/internal/compiler"
)

// Severity ranks a finding.
type Severity uint8

const (
	// SevWarning marks a suspicious but harmless encoding: the machine
	// executes the program correctly, but the compiler probably did not
	// mean to emit it.
	SevWarning Severity = iota
	// SevError marks a hazard the simulator would fault on (or worse,
	// index out of range on): the program must not reach a machine.
	SevError
)

func (s Severity) String() string {
	if s == SevWarning {
		return "warning"
	}
	return "error"
}

// MarshalJSON renders the severity as its name, for `dpu-vet -json`.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON is the inverse, so -json consumers can round-trip
// findings.
func (s *Severity) UnmarshalJSON(b []byte) error {
	if string(b) == `"warning"` {
		*s = SevWarning
	} else {
		*s = SevError
	}
	return nil
}

// Class is the finding taxonomy — one class per way a program can be
// illegal for the machine model (see DESIGN.md "Static verification").
type Class uint8

const (
	// ClassResource is the resource envelope: malformed slice shapes,
	// register indices ≥ R, crossbar/interconnect selects naming
	// nonexistent PEs, opcodes outside the decoded ISA, and bank read
	// ports used twice in one instruction.
	ClassResource Class = iota
	// ClassUninitRead is a def-before-use violation: a read of a register
	// that was never written, or was already freed by a valid_rst — the
	// RAW hazards the compiler must have scheduled away.
	ClassUninitRead
	// ClassBankOverflow is a landing write finding its bank full — the
	// free-list replay ran out of addresses.
	ClassBankOverflow
	// ClassWriteConflict is two writes landing on one bank in the same
	// cycle, a structural hazard the interconnect cannot forward.
	ClassWriteConflict
	// ClassDeadOperand is dataflow illegality inside an exec: a port
	// selecting a bank with no read enable, a PE consuming an idle
	// child's output, or a bank writing back the output of an idle PE.
	ClassDeadOperand
	// ClassMemBounds is a load/store row outside the configured data
	// memory.
	ClassMemBounds
	// ClassMapping covers the compiled program's metadata: remap targets,
	// input words and output words that point outside the graph or the
	// memory image, or sinks whose output word nothing ever writes.
	ClassMapping
	// ClassDeadReset (warning) is a valid_rst bit that frees nothing
	// because its bank is not read in the same instruction.
	ClassDeadReset
)

func (c Class) String() string {
	switch c {
	case ClassResource:
		return "resource"
	case ClassUninitRead:
		return "uninit-read"
	case ClassBankOverflow:
		return "bank-overflow"
	case ClassWriteConflict:
		return "write-conflict"
	case ClassDeadOperand:
		return "dead-operand"
	case ClassMemBounds:
		return "mem-bounds"
	case ClassMapping:
		return "mapping"
	case ClassDeadReset:
		return "dead-reset"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// MarshalJSON renders the class as its name, for `dpu-vet -json`.
func (c Class) MarshalJSON() ([]byte, error) {
	return []byte(`"` + c.String() + `"`), nil
}

// UnmarshalJSON is the inverse, so -json consumers can round-trip
// findings.
func (c *Class) UnmarshalJSON(b []byte) error {
	name := string(bytes.Trim(b, `"`))
	for x := ClassResource; x <= ClassDeadReset; x++ {
		if x.String() == name {
			*c = x
			return nil
		}
	}
	return fmt.Errorf("verify: unknown finding class %s", name)
}

// Finding is one verifier result.
type Finding struct {
	Sev   Severity `json:"severity"`
	Class Class    `json:"class"`
	// PC is the instruction index the finding anchors to, -1 for
	// program-level findings (metadata, pipeline drain).
	PC int `json:"pc"`
	// PE is the processing element involved, -1 when not applicable.
	PE int `json:"pe"`
	// Bank is the register bank involved, -1 when not applicable.
	Bank int `json:"bank"`
	Msg  string `json:"msg"`
}

func (f Finding) String() string {
	loc := "program"
	if f.PC >= 0 {
		loc = fmt.Sprintf("pc %d", f.PC)
	}
	if f.PE >= 0 {
		loc += fmt.Sprintf(" pe %d", f.PE)
	}
	if f.Bank >= 0 {
		loc += fmt.Sprintf(" bank %d", f.Bank)
	}
	return fmt.Sprintf("%s %s (%s): %s", f.Sev, f.Class, loc, f.Msg)
}

// HasErrors reports whether any finding is error-severity — the gate
// predicate: warnings never reject a program.
func HasErrors(fs []Finding) bool {
	for _, f := range fs {
		if f.Sev == SevError {
			return true
		}
	}
	return false
}

// Summary renders a finding list for one-line error messages.
func Summary(fs []Finding) string {
	if len(fs) == 0 {
		return "clean"
	}
	errs := 0
	first := -1
	for i, f := range fs {
		if f.Sev == SevError {
			errs++
			if first < 0 {
				first = i
			}
		}
	}
	if first < 0 {
		return fmt.Sprintf("%d warning(s); first: %s", len(fs), fs[0])
	}
	return fmt.Sprintf("%d error(s), %d warning(s); first: %s", errs, len(fs)-errs, fs[first])
}

// maxFindings bounds the findings reported per program. One root cause
// (e.g. a skipped instruction) can cascade into many downstream reads of
// never-written registers; past the bound, analysis stops with a
// truncation marker so a garbage program cannot make verification
// quadratic.
const maxFindings = 64

// maxStateCells bounds the abstract register-file state (B×R valid
// bits) the verifier will allocate, matching engine.CheckMachineBounds
// (B ≤ 2^10, R ≤ 2^12): a decoded artifact claiming a larger register
// file is rejected before anything is allocated for it.
const maxStateCells = 1 << 22

// Program statically verifies a program against cfg and returns its
// findings (empty = clean). It never executes the program and never
// panics on malformed input: every illegal encoding becomes a finding.
func Program(p *arch.Program, cfg arch.Config) []Finding {
	fs, _ := run(p, cfg)
	return fs
}

// Compiled verifies a compiled program plus its serving metadata: the
// instruction stream (as Program) and the remap/input/output maps the
// engine trusts to route values — a store-decoded artifact passes
// through exactly this before it may serve traffic.
func Compiled(c *compiler.Compiled) []Finding {
	metaf := func(msg string, args ...any) Finding {
		return Finding{Sev: SevError, Class: ClassMapping, PC: -1, PE: -1, Bank: -1, Msg: fmt.Sprintf(msg, args...)}
	}
	if c == nil || c.Prog == nil {
		return []Finding{metaf("no compiled program")}
	}
	fs, a := run(c.Prog, c.Prog.Cfg)
	if c.Graph == nil {
		return append(fs, metaf("compiled program carries no graph"))
	}
	if a == nil {
		return fs // configuration itself was rejected; maps are meaningless
	}
	cfg := a.cfg
	nn := c.Graph.NumNodes()
	for i, id := range c.Remap {
		if int(id) < 0 || int(id) >= nn {
			fs = append(fs, metaf("remap[%d] = %d outside the %d-node graph", i, id, nn))
			break
		}
	}
	if got, want := len(c.InputWord), len(c.Graph.Inputs()); got != want {
		fs = append(fs, metaf("%d input words for %d graph inputs", got, want))
	} else {
		for i, w := range c.InputWord {
			if w >= cfg.DataMemWords { // negative = input consumed by nothing
				fs = append(fs, metaf("input %d mapped to word %d outside the %d-word data memory", i, w, cfg.DataMemWords))
			}
		}
	}
	for _, sink := range c.Graph.Outputs() {
		w, ok := c.OutputWord[sink]
		switch {
		case !ok:
			fs = append(fs, metaf("sink %d has no output word", sink))
		case w < 0 || w >= cfg.DataMemWords:
			fs = append(fs, metaf("sink %d mapped to word %d outside the %d-word data memory", sink, w, cfg.DataMemWords))
		default:
			if _, st := a.stored[w]; !st && w >= len(c.Prog.InitMem) {
				fs = append(fs, metaf("sink %d reads output word %d, which no store instruction writes", sink, w))
			}
		}
	}
	return fs
}

// analyzer is the abstract machine: the simulator's register-file and
// pipeline bookkeeping with the values removed.
type analyzer struct {
	cfg   arch.Config
	valid []bool // bank-major B×R: address currently holds a live value
	ever  []bool // bank-major: address held a value at least once
	ring  [][]pending
	cycle int
	// stored collects the data-memory words written by store/store_4
	// instructions, for the Compiled output-coverage check.
	stored map[int]struct{}

	fs        []Finding
	truncated bool

	// Topology, precomputed once (the per-instruction loops are the hot
	// path of the <10%-of-decode budget).
	layerIDs [][]int // PE ids by layer (1-based; children precede parents)
	leafL    []int   // per-PE left input port, -1 off the leaf layer
	leafR    []int
	child0   []int // per-PE child ids, -1 on the leaf layer
	child1   []int

	portUsed []bool
	readBank []bool
	live     []bool
}

// pending is one scheduled landing write: which bank, and which
// instruction issued it (for finding anchors).
type pending struct {
	bank, pc int
}

func run(p *arch.Program, cfg arch.Config) ([]Finding, *analyzer) {
	reject := func(class Class, msg string) []Finding {
		return []Finding{{Sev: SevError, Class: class, PC: -1, PE: -1, Bank: -1, Msg: msg}}
	}
	if p == nil {
		return reject(ClassResource, "no program"), nil
	}
	cfg = cfg.Normalize()
	if err := cfg.Validate(); err != nil {
		return reject(ClassResource, err.Error()), nil
	}
	if cfg.B*cfg.R > maxStateCells {
		return reject(ClassResource, fmt.Sprintf("register file %d×%d exceeds the verifiable bound %d cells", cfg.B, cfg.R, maxStateCells)), nil
	}
	a := newAnalyzer(cfg)
	for pc, in := range p.Instrs {
		if a.truncated {
			break
		}
		if a.structural(pc, in) {
			a.issue(pc, in)
		}
		a.endCycle()
	}
	// Pipeline drain, as in sim.Machine.Run: writes in flight land.
	for d := 0; d <= cfg.D && !a.truncated; d++ {
		a.endCycle()
	}
	return a.fs, a
}

func newAnalyzer(cfg arch.Config) *analyzer {
	n := cfg.NumPEs()
	a := &analyzer{
		cfg:      cfg,
		valid:    make([]bool, cfg.B*cfg.R),
		ever:     make([]bool, cfg.B*cfg.R),
		ring:     make([][]pending, cfg.D+2),
		stored:   make(map[int]struct{}),
		layerIDs: make([][]int, cfg.D+1),
		leafL:    make([]int, n),
		leafR:    make([]int, n),
		child0:   make([]int, n),
		child1:   make([]int, n),
		portUsed: make([]bool, cfg.B),
		readBank: make([]bool, cfg.B),
		live:     make([]bool, n),
	}
	for id := 0; id < n; id++ {
		p := cfg.PECoord(id)
		a.layerIDs[p.Layer] = append(a.layerIDs[p.Layer], id)
		a.leafL[id], a.leafR[id] = -1, -1
		a.child0[id], a.child1[id] = -1, -1
		if p.Layer == 1 {
			a.leafL[id], a.leafR[id] = cfg.InputPorts(p)
		} else {
			c0, c1, _ := cfg.Children(p)
			a.child0[id], a.child1[id] = cfg.PEID(c0), cfg.PEID(c1)
		}
	}
	return a
}

func (a *analyzer) report(f Finding) {
	if a.truncated {
		return
	}
	if len(a.fs) >= maxFindings {
		a.fs = append(a.fs, Finding{Sev: SevWarning, Class: f.Class, PC: -1, PE: -1, Bank: -1,
			Msg: fmt.Sprintf("more than %d findings; analysis truncated", maxFindings)})
		a.truncated = true
		return
	}
	a.fs = append(a.fs, f)
}

func (a *analyzer) errorf(class Class, pc, pe, bank int, msg string, args ...any) {
	a.report(Finding{Sev: SevError, Class: class, PC: pc, PE: pe, Bank: bank, Msg: fmt.Sprintf(msg, args...)})
}

func (a *analyzer) warnf(class Class, pc, pe, bank int, msg string, args ...any) {
	a.report(Finding{Sev: SevWarning, Class: class, PC: pc, PE: pe, Bank: bank, Msg: fmt.Sprintf(msg, args...)})
}

// structural is the resource-envelope check — Instr.Validate re-derived
// with per-class findings, plus the bounds Validate misses (a store's
// ReadAddr/ValidRst shape; a crossbar write select past NumPEs, which
// would index the simulator's liveness array out of range). A false
// return means the instruction cannot be interpreted; the caller treats
// it as a nop so the cycle count stays aligned.
func (a *analyzer) structural(pc int, in *arch.Instr) bool {
	cfg := a.cfg
	rows := cfg.DataMemWords / cfg.B
	ok := true
	badRow := func(kind string, row int) {
		a.errorf(ClassMemBounds, pc, -1, -1, "%s row %d outside the %d-row data memory", kind, row, rows)
		ok = false
	}
	switch in.Kind {
	case arch.KindNop:
		return true
	case arch.KindExec:
		if len(in.PEOps) != cfg.NumPEs() || len(in.ReadEn) != cfg.B || len(in.ReadAddr) != cfg.B ||
			len(in.ValidRst) != cfg.B || len(in.InputSel) != cfg.B || len(in.WriteEn) != cfg.B || len(in.WriteSel) != cfg.B {
			a.errorf(ClassResource, pc, -1, -1, "exec slice shapes do not match the configuration")
			return false
		}
		for b := 0; b < cfg.B; b++ {
			if in.ReadEn[b] && int(in.ReadAddr[b]) >= cfg.R {
				a.errorf(ClassResource, pc, -1, b, "read address %d ≥ R=%d", in.ReadAddr[b], cfg.R)
				ok = false
			}
			if int(in.InputSel[b]) >= cfg.B {
				a.errorf(ClassResource, pc, -1, b, "input select %d ≥ B=%d", in.InputSel[b], cfg.B)
				ok = false
			}
			if in.WriteEn[b] {
				if cfg.Output == arch.OutCrossbar && int(in.WriteSel[b]) >= cfg.NumPEs() {
					a.errorf(ClassResource, pc, -1, b, "write select %d names a nonexistent PE (%d PEs)", in.WriteSel[b], cfg.NumPEs())
					ok = false
				} else if p := cfg.SelPE(b, in.WriteSel[b]); !cfg.CanWrite(p, b) {
					a.errorf(ClassResource, pc, -1, b, "write select %d illegal under the %s interconnect", in.WriteSel[b], cfg.Output)
					ok = false
				}
			}
		}
		return ok
	case arch.KindLoad:
		if len(in.Mask) != cfg.B {
			a.errorf(ClassResource, pc, -1, -1, "load mask length %d, want B=%d", len(in.Mask), cfg.B)
			return false
		}
		if in.MemAddr < 0 || in.MemAddr >= rows {
			badRow("load", in.MemAddr)
		}
		return ok
	case arch.KindStore:
		if len(in.ReadEn) != cfg.B || len(in.ReadAddr) != cfg.B || len(in.ValidRst) != cfg.B {
			a.errorf(ClassResource, pc, -1, -1, "store slice shapes do not match the configuration")
			return false
		}
		if in.MemAddr < 0 || in.MemAddr >= rows {
			badRow("store", in.MemAddr)
		}
		for b := 0; b < cfg.B; b++ {
			if in.ReadEn[b] && int(in.ReadAddr[b]) >= cfg.R {
				a.errorf(ClassResource, pc, -1, b, "read address %d ≥ R=%d", in.ReadAddr[b], cfg.R)
				ok = false
			}
		}
		return ok
	case arch.KindCopy, arch.KindStore4:
		if len(in.Moves) == 0 || len(in.Moves) > arch.MaxMoves {
			a.errorf(ClassResource, pc, -1, -1, "%s with %d lanes, want 1..%d", in.Kind, len(in.Moves), arch.MaxMoves)
			return false
		}
		if in.Kind == arch.KindStore4 && (in.MemAddr < 0 || in.MemAddr >= rows) {
			badRow("store_4", in.MemAddr)
		}
		for _, mv := range in.Moves {
			if int(mv.SrcBank) >= cfg.B || int(mv.SrcAddr) >= cfg.R || int(mv.Dst) >= cfg.B {
				a.errorf(ClassResource, pc, -1, int(mv.SrcBank), "%s lane out of range: %+v", in.Kind, mv)
				ok = false
			}
		}
		return ok
	}
	a.errorf(ClassResource, pc, -1, -1, "opcode %d outside the decoded ISA", uint8(in.Kind))
	return false
}

// issue replays one instruction's issue-time effects: reads are
// validated against the valid bitmap, valid_rst frees apply after the
// reads, and writes are scheduled on the landing ring with the
// simulator's latencies. After reporting a hazard the analyzer proceeds
// optimistically (the port stays live, the write still lands) so one
// root cause does not multiply into a finding per downstream consumer.
func (a *analyzer) issue(pc int, in *arch.Instr) {
	cfg := a.cfg
	switch in.Kind {
	case arch.KindExec:
		a.exec(pc, in)
	case arch.KindLoad:
		for lane, en := range in.Mask {
			if en {
				a.scheduleWrite(pc, lane, a.cycle+1)
			}
		}
	case arch.KindStore:
		row := in.MemAddr * cfg.B
		for b, en := range in.ReadEn {
			if !en {
				if in.ValidRst[b] {
					a.warnf(ClassDeadReset, pc, -1, b, "valid_rst frees nothing (bank not read)")
				}
				continue
			}
			addr := int(in.ReadAddr[b])
			a.checkRead(pc, b, addr)
			if in.ValidRst[b] {
				a.free(b, addr)
			}
			a.stored[row+b] = struct{}{}
		}
	case arch.KindCopy, arch.KindStore4:
		row := in.MemAddr * cfg.B
		read := make(map[uint16]struct{}, len(in.Moves))
		for _, mv := range in.Moves {
			if _, dup := read[mv.SrcBank]; dup {
				a.errorf(ClassResource, pc, -1, int(mv.SrcBank), "two reads of bank %d in one %s", mv.SrcBank, in.Kind)
				continue
			}
			read[mv.SrcBank] = struct{}{}
			a.checkRead(pc, int(mv.SrcBank), int(mv.SrcAddr))
			if mv.Rst {
				a.free(int(mv.SrcBank), int(mv.SrcAddr))
			}
			if in.Kind == arch.KindCopy {
				a.scheduleWrite(pc, int(mv.Dst), a.cycle+1)
			} else {
				a.stored[row+int(mv.Dst)] = struct{}{}
			}
		}
	}
}

// exec mirrors sim.Machine.exec without values: demand-driven port
// liveness from the leaf ops, bank-read validation, post-read frees,
// layer-by-layer liveness propagation, and write-back scheduling.
func (a *analyzer) exec(pc int, in *arch.Instr) {
	cfg := a.cfg
	clear(a.portUsed)
	clear(a.readBank)
	clear(a.live)
	for _, id := range a.layerIDs[1] {
		op := in.PEOps[id]
		if op == arch.PEIdle {
			continue
		}
		l, r := a.leafL[id], a.leafR[id]
		switch op {
		case arch.PEAdd, arch.PEMul:
			a.portUsed[l], a.portUsed[r] = true, true
		case arch.PEBypassL:
			a.portUsed[l] = true
		case arch.PEBypassR:
			a.portUsed[r] = true
		}
	}
	for pn := 0; pn < cfg.B; pn++ {
		if !a.portUsed[pn] {
			continue
		}
		bank := int(in.InputSel[pn])
		if !in.ReadEn[bank] {
			a.errorf(ClassDeadOperand, pc, -1, bank, "port %d selects bank %d which has no read enable", pn, bank)
			continue
		}
		a.readBank[bank] = true
	}
	for bank := 0; bank < cfg.B; bank++ {
		if a.readBank[bank] {
			a.checkRead(pc, bank, int(in.ReadAddr[bank]))
		}
	}
	// valid_rst applies after the cycle's reads (the crossbar broadcasts
	// one bank read to every subscribed port before the slot is freed).
	for bank := 0; bank < cfg.B; bank++ {
		if !in.ValidRst[bank] {
			continue
		}
		if a.readBank[bank] {
			a.free(bank, int(in.ReadAddr[bank]))
		} else {
			a.warnf(ClassDeadReset, pc, -1, bank, "valid_rst frees nothing (bank not read)")
		}
	}
	for l := 1; l <= cfg.D; l++ {
		for _, id := range a.layerIDs[l] {
			op := in.PEOps[id]
			if op == arch.PEIdle {
				continue
			}
			if l > 1 {
				la, lb := a.live[a.child0[id]], a.live[a.child1[id]]
				dead := false
				switch op {
				case arch.PEAdd, arch.PEMul:
					dead = !la || !lb
				case arch.PEBypassL:
					dead = !la
				case arch.PEBypassR:
					dead = !lb
				}
				if dead {
					a.errorf(ClassDeadOperand, pc, id, -1, "PE %d (%s) consumes a dead operand", id, op)
				}
			}
			a.live[id] = true // optimistic: one finding per root cause
		}
	}
	for bank := 0; bank < cfg.B; bank++ {
		if !in.WriteEn[bank] {
			continue
		}
		id := cfg.PEID(cfg.SelPE(bank, in.WriteSel[bank]))
		if !a.live[id] {
			a.errorf(ClassDeadOperand, pc, id, bank, "bank %d writes output of idle PE %d", bank, id)
		}
		a.scheduleWrite(pc, bank, a.cycle+cfg.D)
	}
}

// checkRead validates a register read at issue time: the address must
// hold a live value. addr is already bounds-checked by structural.
func (a *analyzer) checkRead(pc, bank, addr int) {
	if a.valid[bank*a.cfg.R+addr] {
		return
	}
	if a.ever[bank*a.cfg.R+addr] {
		a.errorf(ClassUninitRead, pc, -1, bank, "read of freed register %d.%d (use after valid_rst)", bank, addr)
	} else {
		a.errorf(ClassUninitRead, pc, -1, bank, "read of never-written register %d.%d (RAW hazard escaped the compiler)", bank, addr)
	}
}

func (a *analyzer) free(bank, addr int) {
	a.valid[bank*a.cfg.R+addr] = false
}

// scheduleWrite queues a landing write, rejecting a second write to the
// same bank in the same landing cycle — exactly the conflict the
// simulator faults on.
func (a *analyzer) scheduleWrite(pc, bank, land int) {
	slot := land % len(a.ring)
	for _, w := range a.ring[slot] {
		if w.bank == bank {
			a.errorf(ClassWriteConflict, pc, -1, bank, "two writes land on bank %d at cycle %d (also scheduled at pc %d)", bank, land, w.pc)
			return
		}
	}
	a.ring[slot] = append(a.ring[slot], pending{bank: bank, pc: pc})
}

// endCycle lands the current cycle's writes — each taking the lowest
// free address of its bank, the deterministic fig. 5(d) policy — and
// advances the clock. Frees from this cycle's issue have already
// applied, preserving the frees-before-landings ordering.
func (a *analyzer) endCycle() {
	slot := a.cycle % len(a.ring)
	for _, w := range a.ring[slot] {
		if addr := a.allocLowestFree(w.bank); addr < 0 {
			a.errorf(ClassBankOverflow, w.pc, -1, w.bank, "bank %d overflows at cycle %d (all %d registers live)", w.bank, a.cycle, a.cfg.R)
		}
	}
	a.ring[slot] = a.ring[slot][:0]
	a.cycle++
}

func (a *analyzer) allocLowestFree(bank int) int {
	base := bank * a.cfg.R
	for addr := 0; addr < a.cfg.R; addr++ {
		if !a.valid[base+addr] {
			a.valid[base+addr] = true
			a.ever[base+addr] = true
			return addr
		}
	}
	return -1
}
