package verify_test

import (
	"os"
	"path/filepath"
	"testing"

	"dpuv2/internal/artifact"
	"dpuv2/internal/verify"
)

// FuzzVerifyProgram feeds arbitrary bytes through the artifact decoder
// and, for anything that decodes, requires the verifier to terminate
// without panicking — the no-crash half of the verifier contract. (The
// accept-all half is TestGoldenFixturesVerifyClean and the conformance
// matrix.) The seed corpus is the golden .dpuprog fixtures, so the
// fuzzer starts from genuine programs and mutates toward near-valid
// encodings, the interesting region for a decoder-adjacent analyzer.
func FuzzVerifyProgram(f *testing.F) {
	paths, _ := filepath.Glob(filepath.Join("..", "artifact", "testdata", "*.dpuprog"))
	if len(paths) == 0 {
		f.Fatal("no golden fixtures for the seed corpus")
	}
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := artifact.DecodeBytes(data)
		if err != nil {
			return // decoder rejected it; not the verifier's problem
		}
		_ = verify.Compiled(a.Compiled)
		_ = verify.Program(a.Compiled.Prog, a.Compiled.Prog.Cfg)
	})
}
