package verify_test

import (
	"strings"
	"testing"

	"dpuv2/internal/arch"
	"dpuv2/internal/verify"
)

// TestDegenerateInputs: the verifier must turn every malformed input
// into findings, never a panic — it sits on the decode path for
// untrusted store bytes.
func TestDegenerateInputs(t *testing.T) {
	cfg := arch.Config{D: 1, B: 2, R: 2}.Normalize()

	if fs := verify.Program(nil, cfg); !verify.HasErrors(fs) {
		t.Error("nil program must not verify")
	}
	if fs := verify.Compiled(nil); !verify.HasErrors(fs) {
		t.Error("nil compiled must not verify")
	}
	if fs := verify.Program(&arch.Program{}, arch.Config{D: 9, B: 2, R: 2}); !verify.HasErrors(fs) {
		t.Error("invalid config must not verify")
	}
	// A register file past engine.CheckMachineBounds is rejected before
	// any state is allocated for it.
	huge := arch.Config{D: 1, B: 4096, R: 4096}
	if fs := verify.Program(&arch.Program{Cfg: huge}, huge); !verify.HasErrors(fs) {
		t.Error("oversized register file must not verify")
	}
	// Unknown opcode.
	p := &arch.Program{Cfg: cfg, Instrs: []*arch.Instr{{Kind: arch.Kind(250)}}}
	fs := verify.Program(p, cfg)
	if !verify.HasErrors(fs) || fs[0].Class != verify.ClassResource {
		t.Errorf("unknown opcode: want a resource error, got %v", fs)
	}
	// The empty program is legal.
	if fs := verify.Program(&arch.Program{Cfg: cfg}, cfg); len(fs) != 0 {
		t.Errorf("empty program: want clean, got %v", fs)
	}
}

// TestFindingsTruncated: a garbage program cannot make verification
// produce unbounded findings — analysis stops with a truncation marker.
func TestFindingsTruncated(t *testing.T) {
	cfg := arch.Config{D: 1, B: 2, R: 2}.Normalize()
	var p arch.Program
	p.Cfg = cfg
	for i := 0; i < 500; i++ {
		ld := arch.NewLoad(cfg, 0)
		ld.MemAddr = cfg.DataMemWords // every instruction out of bounds
		p.Instrs = append(p.Instrs, ld)
	}
	fs := verify.Program(&p, cfg)
	if len(fs) >= 500 {
		t.Fatalf("findings not truncated: %d", len(fs))
	}
	last := fs[len(fs)-1]
	if !strings.Contains(last.Msg, "truncated") {
		t.Fatalf("missing truncation marker, last finding: %s", last)
	}
}

func TestFindingString(t *testing.T) {
	f := verify.Finding{Sev: verify.SevError, Class: verify.ClassUninitRead, PC: 7, PE: -1, Bank: 3, Msg: "x"}
	s := f.String()
	for _, want := range []string{"error", "uninit-read", "pc 7", "bank 3"} {
		if !strings.Contains(s, want) {
			t.Errorf("finding string %q missing %q", s, want)
		}
	}
	if got := verify.Summary(nil); got != "clean" {
		t.Errorf("empty summary = %q", got)
	}
}
