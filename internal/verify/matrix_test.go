package verify_test

import (
	"os"
	"path/filepath"
	"testing"

	"dpuv2/internal/arch"
	"dpuv2/internal/artifact"
	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
	"dpuv2/internal/verify"
)

// TestConformanceMatrixVerifiesClean mirrors sim.TestOptionMatrix: every
// program the compiler emits across the random DAG × config × options
// matrix must pass static verification with zero error findings. This is
// the differential invariant that justifies using the verifier as a hard
// gate on the serving path — if the compiler can emit it, the verifier
// accepts it.
func TestConformanceMatrixVerifiesClean(t *testing.T) {
	shapes := []dag.RandomConfig{
		{Inputs: 6, Interior: 120, MaxArgs: 2, MulFrac: 0.3, Window: 8, Seed: 1},   // deep
		{Inputs: 60, Interior: 240, MaxArgs: 4, MulFrac: 0.6, Seed: 2},             // wide
		{Inputs: 16, Interior: 300, MaxArgs: 3, MulFrac: 0.5, Window: 60, Seed: 3}, // mixed
	}
	cfgs := []arch.Config{
		{D: 1, B: 16, R: 16, Output: arch.OutCrossbar},
		{D: 2, B: 8, R: 24, Output: arch.OutPerPE},
		{D: 3, B: 32, R: 16, Output: arch.OutPerLayer},
	}
	opts := []compiler.Options{
		{},
		{Seed: 99},
		{Window: 1},
		{Window: 50, SeedLookahead: 1, FillLookahead: 1},
		{RandomBanks: true},
		{PartitionSize: 64},
	}
	warnings := 0
	for si, shape := range shapes {
		g := dag.RandomGraph(shape)
		for ci, cfg := range cfgs {
			for oi, o := range opts {
				c, err := compiler.Compile(g, cfg, o)
				if err != nil {
					t.Fatalf("shape %d cfg %d opts %d: compile: %v", si, ci, oi, err)
				}
				fs := verify.Compiled(c)
				if verify.HasErrors(fs) {
					for _, f := range fs {
						t.Logf("  %s", f)
					}
					t.Fatalf("shape %d cfg %d opts %d: %s", si, ci, oi, verify.Summary(fs))
				}
				warnings += len(fs)
			}
		}
	}
	if warnings > 0 {
		t.Logf("matrix verified clean with %d warning(s)", warnings)
	}
}

// TestGoldenFixturesVerifyClean decodes the golden .dpuprog fixtures —
// the fuzz seed corpus — and requires each to verify clean: the fuzz
// target's "accepts 100% of genuine compiler outputs" half, checked
// deterministically.
func TestGoldenFixturesVerifyClean(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "artifact", "testdata", "*.dpuprog"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no golden fixtures found: %v", err)
	}
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		a, err := artifact.DecodeBytes(b)
		if err != nil {
			t.Fatalf("%s: decode: %v", filepath.Base(p), err)
		}
		if fs := verify.Compiled(a.Compiled); verify.HasErrors(fs) {
			t.Errorf("%s: %s", filepath.Base(p), verify.Summary(fs))
		}
	}
}
