package trace

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// manualClock is a trivial settable Clock (the tracer never arms timers,
// so it needs less than sched.FakeClock).
type manualClock struct {
	mu  sync.Mutex
	now time.Time
}

func newManualClock() *manualClock {
	return &manualClock{now: time.Unix(1_700_000_000, 0)}
}

func (c *manualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *manualClock) advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestTraceparentRoundTrip(t *testing.T) {
	id := NewID()
	parent := NewSpanID()
	h := Traceparent(id, parent)
	if len(h) != 55 {
		t.Fatalf("traceparent length %d, want 55: %q", len(h), h)
	}
	gotID, gotParent, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("ParseTraceparent rejected our own rendering %q", h)
	}
	if gotID != id || gotParent != parent {
		t.Fatalf("round trip: got (%s, %s), want (%s, %s)", gotID, gotParent, id, parent)
	}
}

func TestTraceparentRejects(t *testing.T) {
	valid := Traceparent(NewID(), NewSpanID())
	bad := []string{
		"",
		"00",
		strings.Replace(valid, "-", "_", 1),
		"ff" + valid[2:], // reserved version
		valid[:3] + strings.Repeat("0", 32) + valid[35:],  // zero trace ID
		valid[:36] + strings.Repeat("0", 16) + valid[52:], // zero parent
		strings.ToUpper(valid),                            // hex must be lowercase
		valid[:54],                                        // truncated
	}
	for _, h := range bad {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent accepted %q", h)
		}
	}
	// Longer-than-55 is fine per spec (future versions append fields).
	if _, _, ok := ParseTraceparent(valid + "-extra"); !ok {
		t.Errorf("ParseTraceparent rejected a valid header with trailing fields")
	}
}

func TestIDsNonZeroAndDistinct(t *testing.T) {
	seen := map[ID]bool{}
	for i := 0; i < 1000; i++ {
		id := NewID()
		if id.IsZero() {
			t.Fatal("NewID returned the zero ID")
		}
		if seen[id] {
			t.Fatalf("duplicate ID %s", id)
		}
		seen[id] = true
	}
}

func TestSpanRecording(t *testing.T) {
	clk := newManualClock()
	tr8 := New(Options{Clock: clk, Service: "test"})
	tr := tr8.Start(ID{}, "request", clk.Now())
	if tr == nil {
		t.Fatal("Start returned nil on an enabled tracer")
	}
	sp := tr.Begin("compile", 0)
	clk.advance(5 * time.Millisecond)
	tr.SetAttrs(sp, Str("fingerprint", "abc"), Int("nodes", 7), Bool("hit", true))
	tr.End(sp)
	clk.advance(2 * time.Millisecond)
	rec := tr8.Finish(tr)
	if rec == nil {
		t.Fatal("Finish returned nil")
	}
	if rec.Service != "test" {
		t.Fatalf("service %q", rec.Service)
	}
	if len(rec.Spans) != 2 {
		t.Fatalf("got %d spans, want 2 (root + compile)", len(rec.Spans))
	}
	root, compile := rec.Spans[0], rec.Spans[1]
	if root.Stage != "request" || root.Parent != -1 {
		t.Fatalf("root span %+v", root)
	}
	if rec.DurationNS != int64(7*time.Millisecond) || root.DurationNS != rec.DurationNS {
		t.Fatalf("root duration %d, want 7ms", rec.DurationNS)
	}
	if compile.Stage != "compile" || compile.DurationNS != int64(5*time.Millisecond) || compile.Parent != 0 {
		t.Fatalf("compile span %+v", compile)
	}
	if compile.Attrs["fingerprint"] != "abc" || compile.Attrs["nodes"] != int64(7) || compile.Attrs["hit"] != true {
		t.Fatalf("compile attrs %+v", compile.Attrs)
	}
}

func TestFinishClosesOpenSpans(t *testing.T) {
	clk := newManualClock()
	tr8 := New(Options{Clock: clk})
	tr := tr8.Start(ID{}, "request", clk.Now())
	sp := tr.Begin("hedge", 0) // never Ended: a canceled loser attempt
	clk.advance(3 * time.Millisecond)
	rec := tr8.Finish(tr)
	if got := rec.Spans[sp].DurationNS; got != int64(3*time.Millisecond) {
		t.Fatalf("open span closed at %d, want 3ms", got)
	}
}

func TestMaxSpansBudget(t *testing.T) {
	clk := newManualClock()
	tr8 := New(Options{Clock: clk, MaxSpans: 4})
	tr := tr8.Start(ID{}, "request", clk.Now())
	for i := 0; i < 10; i++ {
		tr.Span(fmt.Sprintf("s%d", i), clk.Now(), time.Millisecond, 0)
	}
	rec := tr8.Finish(tr)
	if len(rec.Spans) != 4 {
		t.Fatalf("got %d spans, want the 4-span budget", len(rec.Spans))
	}
	if rec.DroppedSpans != 7 { // 10 attempted + root = 11, 4 kept
		t.Fatalf("dropped %d, want 7", rec.DroppedSpans)
	}
}

func TestRingEviction(t *testing.T) {
	clk := newManualClock()
	tr8 := New(Options{Clock: clk, RingSize: 4, SlowThreshold: time.Hour})
	var ids []string
	for i := 0; i < 10; i++ {
		tr := tr8.Start(ID{}, "r", clk.Now())
		ids = append(ids, tr.ID().String())
		tr8.Finish(tr)
	}
	got := map[string]bool{}
	for _, r := range tr8.Traces(0, "") {
		got[r.TraceID] = true
	}
	if len(got) != 4 {
		t.Fatalf("ring retained %d traces, want 4", len(got))
	}
	for _, id := range ids[6:] {
		if !got[id] {
			t.Fatalf("ring lost recent trace %s", id)
		}
	}
}

func TestReservoirKeepsSlowest(t *testing.T) {
	clk := newManualClock()
	// Ring of 1 so only the reservoir retains history.
	tr8 := New(Options{Clock: clk, RingSize: 1, ReservoirSize: 3, SlowThreshold: 10 * time.Millisecond})
	durs := []time.Duration{
		5 * time.Millisecond, // under threshold: never admitted
		20 * time.Millisecond,
		50 * time.Millisecond,
		15 * time.Millisecond,
		40 * time.Millisecond, // displaces 15ms
		30 * time.Millisecond, // displaces 20ms
		12 * time.Millisecond, // too fast to displace anything
	}
	for _, d := range durs {
		tr := tr8.Start(ID{}, "r", clk.Now())
		clk.advance(d)
		tr8.Finish(tr)
	}
	recs := tr8.Traces(10*time.Millisecond, "")
	// The ring's single slot holds the last finish (12ms ≥ min, counts);
	// the reservoir must hold exactly {50, 40, 30}ms.
	want := map[int64]bool{
		int64(50 * time.Millisecond): false,
		int64(40 * time.Millisecond): false,
		int64(30 * time.Millisecond): false,
	}
	for _, r := range recs {
		if _, ok := want[r.DurationNS]; ok {
			want[r.DurationNS] = true
		}
	}
	for d, found := range want {
		if !found {
			t.Fatalf("reservoir lost a %v trace (got %d records)", time.Duration(d), len(recs))
		}
	}
	// Slowest first.
	for i := 1; i < len(recs); i++ {
		if recs[i].DurationNS > recs[i-1].DurationNS {
			t.Fatalf("Traces not sorted slowest-first at %d", i)
		}
	}
}

func TestTracesFilters(t *testing.T) {
	clk := newManualClock()
	tr8 := New(Options{Clock: clk})
	fast := tr8.Start(ID{}, "r", clk.Now())
	fast.Span("decode", clk.Now(), time.Millisecond, 0)
	clk.advance(time.Millisecond)
	tr8.Finish(fast)
	slow := tr8.Start(ID{}, "r", clk.Now())
	slow.Span("execute", clk.Now(), 20*time.Millisecond, 0)
	clk.advance(25 * time.Millisecond)
	tr8.Finish(slow)

	if got := tr8.Traces(10*time.Millisecond, ""); len(got) != 1 || got[0].DurationNS != int64(25*time.Millisecond) {
		t.Fatalf("min filter: %+v", got)
	}
	if got := tr8.Traces(0, "decode"); len(got) != 1 || got[0].DurationNS != int64(time.Millisecond) {
		t.Fatalf("stage filter: %+v", got)
	}
	if got := tr8.Traces(0, "nonexistent"); len(got) != 0 {
		t.Fatalf("bogus stage matched %d traces", len(got))
	}
}

func TestDisabledTracerZeroAlloc(t *testing.T) {
	tr8 := New(Options{Disabled: true})
	clk := newManualClock()
	allocs := testing.AllocsPerRun(100, func() {
		if tr8.Sample() {
			t.Fatal("disabled tracer sampled")
		}
		tr := tr8.Start(NewID(), "r", clk.Now())
		if tr != nil {
			t.Fatal("disabled tracer started a trace")
		}
		sp := tr.Begin("s", 0)
		tr.SetAttrs(sp, Int("k", 1))
		tr.End(sp)
		tr.Span("t", clk.Now(), time.Millisecond, 0)
		tr8.Finish(tr)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocated %.1f per request, want 0", allocs)
	}
}

func TestSampledTraceAmortizedAllocFree(t *testing.T) {
	clk := newManualClock()
	tr8 := New(Options{Clock: clk, SampleEvery: 1})
	// Warm the pool and the ring (Record allocation in Finish is off the
	// recording path; this test pins the RECORDING side: Start from pool,
	// Begin/Span/SetAttrs into preallocated storage).
	tr := tr8.Start(ID{}, "r", clk.Now())
	allocs := testing.AllocsPerRun(100, func() {
		sp := tr.Begin("s", 0)
		tr.SetAttrs(sp, Int("k", 1), Str("s", "v"))
		tr.End(sp)
		tr.mu.Lock()
		tr.spans = tr.spans[:1] // rewind to keep the budget from saturating
		tr.mu.Unlock()
	})
	tr8.Finish(tr)
	if allocs != 0 {
		t.Fatalf("span recording allocated %.1f per span, want 0", allocs)
	}
}

func TestSampleEvery(t *testing.T) {
	tr8 := New(Options{SampleEvery: 4})
	if !tr8.Sample() {
		t.Fatal("first request must be sampled")
	}
	hits := 1
	for i := 1; i < 16; i++ {
		if tr8.Sample() {
			hits++
		}
	}
	if hits != 4 {
		t.Fatalf("sampled %d of 16 at 1-in-4", hits)
	}
	never := New(Options{SampleEvery: -1})
	for i := 0; i < 10; i++ {
		if never.Sample() {
			t.Fatal("SampleEvery<0 must never sample")
		}
	}
}

func TestConcurrentSpanWrites(t *testing.T) {
	clk := newManualClock()
	tr8 := New(Options{Clock: clk, MaxSpans: 256})
	tr := tr8.Start(ID{}, "r", clk.Now())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sp := tr.Begin("worker", 0)
				tr.SetAttrs(sp, Int("w", int64(w)))
				tr.End(sp)
			}
		}(w)
	}
	wg.Wait()
	rec := tr8.Finish(tr)
	if want := 1 + 8*50; len(rec.Spans)+rec.DroppedSpans != want {
		t.Fatalf("spans %d + dropped %d != %d", len(rec.Spans), rec.DroppedSpans, want)
	}
}

func TestUseAfterFinishIsDropped(t *testing.T) {
	clk := newManualClock()
	tr8 := New(Options{Clock: clk})
	tr := tr8.Start(ID{}, "r", clk.Now())
	sp := tr.Begin("s", 0)
	rec := tr8.Finish(tr)
	// The trace is back in the pool; late writes must be silently
	// dropped, never corrupt the published Record.
	tr.End(sp)
	tr.Span("late", clk.Now(), time.Second, 0)
	if len(rec.Spans) != 2 {
		t.Fatalf("record mutated after Finish: %d spans", len(rec.Spans))
	}
}

func TestTracesHandler(t *testing.T) {
	clk := newManualClock()
	tr8 := New(Options{Clock: clk})
	for i, d := range []time.Duration{time.Millisecond, 30 * time.Millisecond} {
		tr := tr8.Start(ID{}, "request", clk.Now())
		tr.Span("decode", clk.Now(), time.Duration(i+1)*time.Millisecond, 0)
		clk.advance(d)
		tr8.Finish(tr)
	}
	h := tr8.Handler()

	get := func(url string) TracesResponse {
		t.Helper()
		rr := httptest.NewRecorder()
		h(rr, httptest.NewRequest("GET", url, nil))
		if rr.Code != 200 {
			t.Fatalf("GET %s: %d %s", url, rr.Code, rr.Body)
		}
		var resp TracesResponse
		if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		return resp
	}

	if resp := get("/traces"); resp.Count != 2 {
		t.Fatalf("unfiltered count %d", resp.Count)
	}
	if resp := get("/traces?min=10ms"); resp.Count != 1 || resp.Traces[0].DurationNS != int64(30*time.Millisecond) {
		t.Fatalf("min filter: %+v", resp)
	}
	if resp := get("/traces?min=" + fmt.Sprint(int64(10*time.Millisecond))); resp.Count != 1 {
		t.Fatalf("raw-ns min filter failed")
	}
	if resp := get("/traces?stage=decode&limit=1"); resp.Count != 1 {
		t.Fatalf("stage+limit: %+v", resp)
	}
	rr := httptest.NewRecorder()
	h(rr, httptest.NewRequest("GET", "/traces?min=bogus", nil))
	if rr.Code != 400 {
		t.Fatalf("bad min answered %d", rr.Code)
	}
	rr = httptest.NewRecorder()
	h(rr, httptest.NewRequest("POST", "/traces", nil))
	if rr.Code != 405 {
		t.Fatalf("POST answered %d", rr.Code)
	}
	// Empty result must be [], not null.
	rr = httptest.NewRecorder()
	h(rr, httptest.NewRequest("GET", "/traces?min=1h", nil))
	if !strings.Contains(rr.Body.String(), `"traces":[]`) {
		t.Fatalf("empty result not []: %s", rr.Body)
	}
}
