package trace

// GET /traces: the query surface over the tracer's retained records,
// mounted by both serve and gateway. Filters:
//
//	?min=10ms      only traces at least this slow (Go duration or ns)
//	?stage=execute only traces carrying a span with this stage name
//	?limit=50      cap the response (default 100), slowest first

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// TracesResponse is the GET /traces body.
type TracesResponse struct {
	Count  int       `json:"count"`
	Traces []*Record `json:"traces"`
}

// parseMin accepts a Go duration ("10ms") or a raw nanosecond count.
func parseMin(s string) (time.Duration, bool) {
	if s == "" {
		return 0, true
	}
	if d, err := time.ParseDuration(s); err == nil && d >= 0 {
		return d, true
	}
	if ns, err := strconv.ParseInt(s, 10, 64); err == nil && ns >= 0 {
		return time.Duration(ns), true
	}
	return 0, false
}

// Handler returns the GET /traces handler.
func (t *Tracer) Handler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		q := r.URL.Query()
		min, ok := parseMin(q.Get("min"))
		if !ok {
			http.Error(w, "bad min: want a duration like 10ms or a nanosecond count", http.StatusBadRequest)
			return
		}
		limit := 100
		if ls := q.Get("limit"); ls != "" {
			n, err := strconv.Atoi(ls)
			if err != nil || n < 0 {
				http.Error(w, "bad limit", http.StatusBadRequest)
				return
			}
			limit = n
		}
		recs := t.Traces(min, q.Get("stage"))
		if len(recs) > limit {
			recs = recs[:limit]
		}
		resp := TracesResponse{Count: len(recs), Traces: recs}
		if resp.Traces == nil {
			resp.Traces = []*Record{}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
	}
}
