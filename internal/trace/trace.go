// Package trace is the request-scoped tracing substrate of the serving
// stack: every layer on the request path (gateway routing, HTTP
// decode/encode, scheduler queue/linger/execute, engine
// resolve/compile/store-decode) records a named span against the one
// Trace that follows the request, and completed traces land in a
// bounded in-process ring plus a slow-trace reservoir queryable over
// GET /traces. Context propagates W3C-traceparent-style across the
// gateway hop, so one trace ID names the request on both sides.
//
// The recorder is built for the serving hot path:
//
//   - a disabled tracer (or an unsampled request) costs zero
//     allocations — every method is nil-safe on a nil *Trace;
//   - a sampled request amortizes to zero: Traces are pooled
//     (sync.Pool) and spans append into a preallocated fixed-capacity
//     slice; only Finish, off the latency-critical section, builds the
//     immutable Record that the ring retains;
//   - time comes from an injectable Clock (structurally compatible with
//     sched.Clock), so the packages under the repo's clock-use lint rule
//     can trace on the same fake timeline their policies run on.
package trace

import (
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// Clock is the tracer's time source. It is a structural subset of
// sched.Clock, so the scheduler's injectable clocks (SystemClock,
// FakeClock) satisfy it directly; defining it here keeps trace free of
// a sched import (sched imports trace, not the reverse).
type Clock interface {
	Now() time.Time
}

// sysClock is the default Clock.
type sysClock struct{}

func (sysClock) Now() time.Time { return time.Now() }

// ID is a 16-byte trace identifier (the W3C trace-id).
type ID [16]byte

// IsZero reports whether id is the invalid all-zero ID.
func (id ID) IsZero() bool { return id == ID{} }

// String renders the 32-hex-digit form.
func (id ID) String() string {
	var b [32]byte
	hex.Encode(b[:], id[:])
	return string(b[:])
}

// ParseID parses a 32-hex-digit trace ID.
func ParseID(s string) (ID, bool) {
	var id ID
	if len(s) != 32 {
		return ID{}, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return ID{}, false
	}
	return id, !id.IsZero()
}

// SpanID is an 8-byte span identifier (the W3C parent-id): the caller's
// handle on a request as it crosses a process boundary.
type SpanID [8]byte

// String renders the 16-hex-digit form.
func (s SpanID) String() string {
	var b [16]byte
	hex.Encode(b[:], s[:])
	return string(b[:])
}

// ID generation: an 8-byte random process prefix (crypto/rand, once)
// plus a scrambled per-process counter. Unique within the process by
// the counter, unique across processes by the prefix, and — unlike
// calling crypto/rand per request — allocation-free on the request
// path.
var (
	idPrefix [8]byte
	idSeq    atomic.Uint64
)

func init() {
	if _, err := crand.Read(idPrefix[:]); err != nil {
		// No entropy source: fall back to a fixed prefix; in-process
		// uniqueness (the counter) still holds.
		copy(idPrefix[:], "dputrace")
	}
}

// splitmix64 scrambles the counter so IDs don't look sequential and a
// zero counter never yields a zero ID half.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewID mints a fresh non-zero trace ID.
func NewID() ID {
	var id ID
	copy(id[:8], idPrefix[:])
	binary.BigEndian.PutUint64(id[8:], splitmix64(idSeq.Add(1)))
	if id.IsZero() {
		id[15] = 1
	}
	return id
}

// NewSpanID mints a fresh non-zero span ID.
func NewSpanID() SpanID {
	var s SpanID
	binary.BigEndian.PutUint64(s[:], splitmix64(idSeq.Add(1)))
	if s == (SpanID{}) {
		s[7] = 1
	}
	return s
}

// Header is the canonical trace-context header name.
const Header = "traceparent"

// Traceparent renders the W3C traceparent header value
// (version 00, sampled flag set): 00-<trace-id>-<parent-id>-01.
func Traceparent(id ID, parent SpanID) string {
	var b [55]byte
	b[0], b[1], b[2] = '0', '0', '-'
	hex.Encode(b[3:35], id[:])
	b[35] = '-'
	hex.Encode(b[36:52], parent[:])
	b[52], b[53], b[54] = '-', '0', '1'
	return string(b[:])
}

// ParseTraceparent parses a W3C traceparent header value. It accepts
// any version except the reserved ff, requires the fixed 00-version
// layout, and rejects all-zero trace and parent IDs, per the spec.
func ParseTraceparent(h string) (ID, SpanID, bool) {
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return ID{}, SpanID{}, false
	}
	if h[0] == 'f' && h[1] == 'f' {
		return ID{}, SpanID{}, false
	}
	// The spec requires lowercase hex throughout (hex.Decode alone would
	// also admit uppercase).
	if !isHex(h[:2]) || !isHex(h[3:35]) || !isHex(h[36:52]) || !isHex(h[53:55]) {
		return ID{}, SpanID{}, false
	}
	id, ok := ParseID(h[3:35])
	if !ok {
		return ID{}, SpanID{}, false
	}
	var parent SpanID
	if _, err := hex.Decode(parent[:], []byte(h[36:52])); err != nil || parent == (SpanID{}) {
		return ID{}, SpanID{}, false
	}
	return id, parent, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Attr is one small typed span attribute (fingerprint, batch size,
// cache hit/miss, backend address...). Construct with Str, Int or Bool.
type Attr struct {
	Key  string
	str  string
	num  int64
	kind uint8 // 0 string, 1 int, 2 bool
}

// Str builds a string attribute.
func Str(k, v string) Attr { return Attr{Key: k, str: v} }

// Int builds an integer attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, num: v, kind: 1} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr {
	var n int64
	if v {
		n = 1
	}
	return Attr{Key: k, num: n, kind: 2}
}

// value renders the attribute for a Record (JSON-native types).
func (a Attr) value() any {
	switch a.kind {
	case 1:
		return a.num
	case 2:
		return a.num != 0
	default:
		return a.str
	}
}

// maxSpanAttrs bounds the attrs carried per span; extras are dropped.
const maxSpanAttrs = 4

// span is one recorded stage. dur < 0 marks a still-open span (closed
// by End or, as a backstop, by Finish).
type span struct {
	stage  string
	start  time.Time
	dur    time.Duration
	parent int32
	nattrs uint8
	attrs  [maxSpanAttrs]Attr
}

// Trace accumulates one request's spans. All methods are safe on a nil
// receiver (the not-sampled case) and safe for concurrent use — the
// gateway's hedged attempts record against one trace from the handler
// loop while batch leaders record scheduler spans from theirs.
// Span index 0 is the root (the whole request); Begin/Span return span
// indices usable as parents, with -1 meaning "dropped, parent to root".
type Trace struct {
	tracer *Tracer
	id     ID
	start  time.Time

	mu       sync.Mutex
	spans    []span
	dropped  int32
	finished bool
}

// ID returns the trace identifier (zero for a nil trace).
func (t *Trace) ID() ID {
	if t == nil {
		return ID{}
	}
	return t.id
}

// Now reads the tracer's clock — the timeline every span of this trace
// is recorded on. Zero for a nil trace (or one already finished).
func (t *Trace) Now() time.Time {
	if t == nil || t.tracer == nil {
		return time.Time{}
	}
	return t.tracer.clock.Now()
}

// Begin opens a live span under parent (-1 or 0 for the root) and
// returns its index, to be closed with End. Returns -1 (a no-op
// handle) on a nil trace or when the span budget is exhausted.
func (t *Trace) Begin(stage string, parent int) int {
	if t == nil || t.tracer == nil {
		return -1
	}
	start := t.tracer.clock.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.addLocked(stage, start, -1, parent)
}

// End closes a live span at the clock's current time. No-op for idx<0.
func (t *Trace) End(idx int) {
	if t == nil || idx < 0 || t.tracer == nil {
		return
	}
	now := t.tracer.clock.Now()
	t.mu.Lock()
	if !t.finished && idx < len(t.spans) && t.spans[idx].dur < 0 {
		d := now.Sub(t.spans[idx].start)
		if d < 0 {
			d = 0
		}
		t.spans[idx].dur = d
	}
	t.mu.Unlock()
}

// Span records a completed stage from timestamps the caller already
// holds (the scheduler decomposes enqueue/detach/execute windows this
// way). Returns the span index, -1 when dropped.
func (t *Trace) Span(stage string, start time.Time, dur time.Duration, parent int, attrs ...Attr) int {
	if t == nil || t.tracer == nil {
		return -1
	}
	if dur < 0 {
		dur = 0
	}
	t.mu.Lock()
	idx := t.addLocked(stage, start, dur, parent)
	if idx >= 0 {
		t.setAttrsLocked(idx, attrs)
	}
	t.mu.Unlock()
	return idx
}

// SetAttrs attaches attributes to a recorded span (up to 4 per span;
// extras are dropped). No-op for idx<0.
func (t *Trace) SetAttrs(idx int, attrs ...Attr) {
	if t == nil || idx < 0 {
		return
	}
	t.mu.Lock()
	if !t.finished && idx < len(t.spans) {
		t.setAttrsLocked(idx, attrs)
	}
	t.mu.Unlock()
}

// addLocked appends a span, enforcing the budget. Caller holds t.mu.
func (t *Trace) addLocked(stage string, start time.Time, dur time.Duration, parent int) int {
	if t.finished {
		return -1
	}
	if len(t.spans) >= cap(t.spans) {
		t.dropped++
		return -1
	}
	if parent < 0 || parent >= len(t.spans) {
		parent = 0
	}
	t.spans = append(t.spans, span{stage: stage, start: start, dur: dur, parent: int32(parent)})
	return len(t.spans) - 1
}

func (t *Trace) setAttrsLocked(idx int, attrs []Attr) {
	sp := &t.spans[idx]
	for _, a := range attrs {
		if int(sp.nattrs) >= maxSpanAttrs {
			break
		}
		sp.attrs[sp.nattrs] = a
		sp.nattrs++
	}
}

// Record is one finished trace, immutable, as retained by the ring and
// served by /traces.
type Record struct {
	TraceID string `json:"trace_id"`
	// Service names the recording process's tier ("serve", "gateway").
	Service     string `json:"service,omitempty"`
	StartUnixNS int64  `json:"start_unix_ns"`
	DurationNS  int64  `json:"duration_ns"`
	// DroppedSpans counts spans lost to the per-trace budget.
	DroppedSpans int          `json:"dropped_spans,omitempty"`
	Spans        []SpanRecord `json:"spans"`
}

// SpanRecord is one span of a Record. Parent indexes Spans; the root is
// index 0 with Parent -1.
type SpanRecord struct {
	Stage      string         `json:"stage"`
	OffsetNS   int64          `json:"offset_ns"`
	DurationNS int64          `json:"duration_ns"`
	Parent     int            `json:"parent"`
	Attrs      map[string]any `json:"attrs,omitempty"`
}

// stageIn reports whether any span carries the given stage name.
func (r *Record) stageIn(stage string) bool {
	for i := range r.Spans {
		if r.Spans[i].Stage == stage {
			return true
		}
	}
	return false
}

// Default retention and sampling parameters (see Options).
const (
	DefaultRingSize      = 256
	DefaultReservoirSize = 32
	DefaultSlowThreshold = 10 * time.Millisecond
	DefaultSampleEvery   = 64
	DefaultMaxSpans      = 64
)

// Options configure a Tracer; the zero value is a production-ready
// default with sampling at 1-in-DefaultSampleEvery.
type Options struct {
	// Clock is the time source; nil means the system clock. Inject the
	// scheduler's clock so spans and batching policy share a timeline.
	Clock Clock
	// Service tags every Record with the recording tier.
	Service string
	// RingSize bounds the most-recent-traces ring. Default 256.
	RingSize int
	// ReservoirSize bounds the kept-slowest reservoir. Default 32.
	ReservoirSize int
	// SlowThreshold is the minimum duration for reservoir admission —
	// the ring holds the recent, the reservoir holds the slow even
	// after the ring has wrapped past them. Default 10ms.
	SlowThreshold time.Duration
	// SampleEvery traces 1 in N requests that arrive WITHOUT a
	// traceparent header (requests carrying one are always traced —
	// the caller asked). 0 means DefaultSampleEvery; negative disables
	// unsolicited sampling entirely.
	SampleEvery int
	// MaxSpans bounds spans per trace; extras are counted in
	// Record.DroppedSpans. Default 64.
	MaxSpans int
	// Disabled turns the tracer off: Start always returns nil and the
	// request path pays nothing.
	Disabled bool
}

func (o Options) normalize() Options {
	if o.Clock == nil {
		o.Clock = sysClock{}
	}
	if o.RingSize <= 0 {
		o.RingSize = DefaultRingSize
	}
	if o.ReservoirSize <= 0 {
		o.ReservoirSize = DefaultReservoirSize
	}
	if o.SlowThreshold <= 0 {
		o.SlowThreshold = DefaultSlowThreshold
	}
	if o.SampleEvery == 0 {
		o.SampleEvery = DefaultSampleEvery
	}
	if o.MaxSpans <= 0 {
		o.MaxSpans = DefaultMaxSpans
	}
	return o
}

// Tracer mints, recycles and retains traces for one process tier.
// Safe for concurrent use.
type Tracer struct {
	opts  Options
	clock Clock

	seq  atomic.Uint64 // unsolicited-sampling counter
	pool sync.Pool     // *Trace

	// ring holds the most recent finished traces, lock-free: writers
	// claim a slot with one atomic add and publish with one atomic
	// pointer store.
	ring    []atomic.Pointer[Record]
	ringPos atomic.Uint64

	// reservoir keeps the ReservoirSize slowest traces over
	// SlowThreshold (min-heap by duration), mutex-guarded — admission
	// is rare by construction.
	resMu     sync.Mutex
	reservoir []*Record

	started  atomic.Int64
	finished atomic.Int64
}

// New builds a Tracer.
func New(opts Options) *Tracer {
	opts = opts.normalize()
	t := &Tracer{
		opts:  opts,
		clock: opts.Clock,
		ring:  make([]atomic.Pointer[Record], opts.RingSize),
	}
	t.pool.New = func() any {
		return &Trace{spans: make([]span, 0, opts.MaxSpans)}
	}
	return t
}

// Enabled reports whether the tracer records at all.
func (t *Tracer) Enabled() bool { return t != nil && !t.opts.Disabled }

// Sample decides whether to trace a request that arrived without a
// traceparent header: 1 in SampleEvery, deterministic from a counter
// (the first request is always sampled, so a fresh server has
// exemplars immediately).
func (t *Tracer) Sample() bool {
	if !t.Enabled() || t.opts.SampleEvery < 0 {
		return false
	}
	if t.opts.SampleEvery <= 1 {
		return true
	}
	return (t.seq.Add(1)-1)%uint64(t.opts.SampleEvery) == 0
}

// Start opens a trace whose root span is named root. A zero id mints a
// fresh one; a zero start reads the clock. Returns nil (and records
// nothing, at zero cost downstream) when the tracer is disabled.
func (t *Tracer) Start(id ID, root string, start time.Time) *Trace {
	if !t.Enabled() {
		return nil
	}
	if id.IsZero() {
		id = NewID()
	}
	if start.IsZero() {
		start = t.clock.Now()
	}
	tr := t.pool.Get().(*Trace)
	tr.tracer = t
	tr.id = id
	tr.start = start
	tr.dropped = 0
	tr.finished = false
	tr.spans = tr.spans[:0]
	tr.spans = append(tr.spans, span{stage: root, start: start, dur: -1, parent: -1})
	t.started.Add(1)
	return tr
}

// Finish seals the trace: open spans (the root included) close at the
// current clock reading, the immutable Record is built, retained in the
// ring (and the slow reservoir when it qualifies), and the Trace
// returns to the pool. Returns the Record (nil for a nil trace).
// The trace must not be used after Finish.
func (t *Tracer) Finish(tr *Trace) *Record {
	if t == nil || tr == nil {
		return nil
	}
	now := t.clock.Now()
	tr.mu.Lock()
	tr.finished = true
	rec := &Record{
		TraceID:      tr.id.String(),
		Service:      t.opts.Service,
		StartUnixNS:  tr.start.UnixNano(),
		DroppedSpans: int(tr.dropped),
		Spans:        make([]SpanRecord, len(tr.spans)),
	}
	for i := range tr.spans {
		sp := &tr.spans[i]
		d := sp.dur
		if d < 0 {
			if d = now.Sub(sp.start); d < 0 {
				d = 0
			}
		}
		sr := SpanRecord{
			Stage:      sp.stage,
			OffsetNS:   int64(sp.start.Sub(tr.start)),
			DurationNS: int64(d),
			Parent:     int(sp.parent),
		}
		if i == 0 {
			sr.Parent = -1
		}
		if sp.nattrs > 0 {
			sr.Attrs = make(map[string]any, sp.nattrs)
			for _, a := range sp.attrs[:sp.nattrs] {
				sr.Attrs[a.Key] = a.value()
			}
		}
		rec.Spans[i] = sr
	}
	tr.spans = tr.spans[:0]
	tr.mu.Unlock()
	rec.DurationNS = rec.Spans[0].DurationNS
	t.keep(rec)
	t.finished.Add(1)
	tr.tracer = nil
	t.pool.Put(tr)
	return rec
}

// keep retains a finished record: always in the ring, and in the
// slow-trace reservoir when it clears the threshold.
func (t *Tracer) keep(rec *Record) {
	slot := (t.ringPos.Add(1) - 1) % uint64(len(t.ring))
	t.ring[slot].Store(rec)
	if rec.DurationNS < int64(t.opts.SlowThreshold) {
		return
	}
	t.resMu.Lock()
	if len(t.reservoir) < t.opts.ReservoirSize {
		t.reservoir = append(t.reservoir, rec)
		t.siftUp(len(t.reservoir) - 1)
	} else if len(t.reservoir) > 0 && rec.DurationNS > t.reservoir[0].DurationNS {
		t.reservoir[0] = rec
		t.siftDown(0)
	}
	t.resMu.Unlock()
}

// siftUp/siftDown maintain the reservoir min-heap (slowest survive:
// the fastest resident is at the root and is the one displaced).
// Caller holds t.resMu.
func (t *Tracer) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if t.reservoir[p].DurationNS <= t.reservoir[i].DurationNS {
			return
		}
		t.reservoir[p], t.reservoir[i] = t.reservoir[i], t.reservoir[p]
		i = p
	}
}

func (t *Tracer) siftDown(i int) {
	n := len(t.reservoir)
	for {
		l, r, min := 2*i+1, 2*i+2, i
		if l < n && t.reservoir[l].DurationNS < t.reservoir[min].DurationNS {
			min = l
		}
		if r < n && t.reservoir[r].DurationNS < t.reservoir[min].DurationNS {
			min = r
		}
		if min == i {
			return
		}
		t.reservoir[i], t.reservoir[min] = t.reservoir[min], t.reservoir[i]
		i = min
	}
}

// Traces returns retained traces (ring ∪ reservoir, deduplicated)
// whose duration is ≥ min and — when stage is non-empty — that carry a
// span with that stage name, slowest first.
func (t *Tracer) Traces(min time.Duration, stage string) []*Record {
	if t == nil {
		return nil
	}
	seen := make(map[*Record]struct{}, len(t.ring))
	var out []*Record
	add := func(r *Record) {
		if r == nil || r.DurationNS < int64(min) {
			return
		}
		if _, dup := seen[r]; dup {
			return
		}
		if stage != "" && !r.stageIn(stage) {
			return
		}
		seen[r] = struct{}{}
		out = append(out, r)
	}
	for i := range t.ring {
		add(t.ring[i].Load())
	}
	t.resMu.Lock()
	for _, r := range t.reservoir {
		add(r)
	}
	t.resMu.Unlock()
	// Slowest first: the reader is debugging a tail.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].DurationNS > out[j-1].DurationNS; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
