// Package suite resolves Table I workload names to generated graphs —
// the one lookup shared by the dpu-compile, dpu-sim and dpu-tune CLIs,
// so the three binaries accept exactly the same workload names (small
// and large PC suites plus the SpTRSV suite) and a new benchmark is
// added in one place.
package suite

import (
	"fmt"
	"strings"

	"dpuv2/internal/dag"
	"dpuv2/internal/pc"
	"dpuv2/internal/sptrsv"
)

// Build generates the named Table I workload at the given scale.
func Build(name string, scale float64) (*dag.Graph, error) {
	for _, s := range pc.Suite() {
		if s.Name == name {
			return pc.Build(s, scale), nil
		}
	}
	for _, s := range pc.LargeSuite() {
		if s.Name == name {
			return pc.Build(s, scale), nil
		}
	}
	for _, s := range sptrsv.Suite() {
		if s.Name == name {
			g, _ := sptrsv.Build(s, scale)
			return g, nil
		}
	}
	return nil, fmt.Errorf("unknown workload %q (Table I names: %s)", name, strings.Join(Names(), ", "))
}

// Names lists every workload Build accepts, in suite order.
func Names() []string {
	var names []string
	for _, s := range pc.Suite() {
		names = append(names, s.Name)
	}
	for _, s := range pc.LargeSuite() {
		names = append(names, s.Name)
	}
	for _, s := range sptrsv.Suite() {
		names = append(names, s.Name)
	}
	return names
}
