package suite

import (
	"strings"
	"testing"
)

func TestBuildEveryListedName(t *testing.T) {
	names := Names()
	if len(names) != 16 { // 6 PC + 4 large PC + 6 SpTRSV
		t.Fatalf("got %d workload names: %v", len(names), names)
	}
	seen := map[string]bool{}
	for _, name := range names {
		if seen[name] {
			t.Fatalf("duplicate workload name %q", name)
		}
		seen[name] = true
		// The large PCs are multi-million nodes at scale 1; a tiny scale
		// keeps this a lookup test, not a generation benchmark.
		g, err := Build(name, 0.001)
		if err != nil {
			t.Fatalf("Build(%q): %v", name, err)
		}
		if g.NumNodes() == 0 {
			t.Fatalf("Build(%q) returned an empty graph", name)
		}
	}
}

func TestBuildUnknownNameListsSuite(t *testing.T) {
	_, err := Build("nope", 1)
	if err == nil {
		t.Fatal("unknown workload accepted")
	}
	if !strings.Contains(err.Error(), "tretail") || !strings.Contains(err.Error(), "dw2048") {
		t.Fatalf("error does not list the valid names: %v", err)
	}
}
