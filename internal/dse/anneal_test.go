package dse

import (
	"context"
	"encoding/json"
	"math/rand/v2"
	"runtime"
	"testing"

	"dpuv2/internal/arch"
	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
	"dpuv2/internal/engine"
	"dpuv2/internal/pc"
)

// diffFields counts the config fields in which a and b differ, so the
// one-knob-per-step contract is checkable directly.
func diffFields(a, b arch.Config) int {
	n := 0
	if a.D != b.D {
		n++
	}
	if a.B != b.B {
		n++
	}
	if a.R != b.R {
		n++
	}
	if a.Output != b.Output {
		n++
	}
	if a.DataMemWords != b.DataMemWords {
		n++
	}
	if a.ClockMHz != b.ClockMHz {
		n++
	}
	return n
}

// TestMutatePropertyInvariants random-walks the mutation operator for
// thousands of steps from several feasible seeds and checks the hard
// invariants: every emitted candidate validates, passes
// engine.CheckMachineBounds, is already in normalized form, differs
// from its parent in exactly the knob the operator names — and over
// the walk every knob actually mutates.
func TestMutatePropertyInvariants(t *testing.T) {
	seeds := []arch.Config{
		arch.MinEDP().Normalize(),
		{D: 1, B: 8, R: 16, Output: arch.OutPerLayer},
		{D: 6, B: 128, R: 256, Output: arch.OutPerPE},
	}
	for si, seed := range seeds {
		seed = seed.Normalize()
		if err := seed.Validate(); err != nil {
			t.Fatalf("seed %d invalid: %v", si, err)
		}
		if err := engine.CheckMachineBounds(seed); err != nil {
			t.Fatalf("seed %d out of bounds: %v", si, err)
		}
		rng := rand.New(rand.NewPCG(42, uint64(si)))
		knobs := map[string]int{}
		cur := seed
		for step := 0; step < 3000; step++ {
			cand, knob := mutateConfig(cur, engine.CheckMachineBounds, rng)
			if knob == "" {
				t.Fatalf("seed %d step %d: no valid neighbor from %v", si, step, cur)
			}
			if err := cand.Validate(); err != nil {
				t.Fatalf("seed %d step %d: invalid candidate %v: %v", si, step, cand, err)
			}
			if err := engine.CheckMachineBounds(cand); err != nil {
				t.Fatalf("seed %d step %d: candidate %v out of machine bounds: %v", si, step, cand, err)
			}
			if cand != cand.Normalize() {
				t.Fatalf("seed %d step %d: candidate %v not normalized", si, step, cand)
			}
			if n := diffFields(cur, cand); n != 1 {
				t.Fatalf("seed %d step %d: %d knobs changed (%v -> %v), want exactly 1 (%s)", si, step, n, cur, cand, knob)
			}
			knobs[knob]++
			cur = cand
		}
		for _, k := range []string{"D", "B", "R", "Output", "DataMemWords"} {
			if knobs[k] == 0 {
				t.Errorf("seed %d: knob %s never mutated over the walk (%v)", si, k, knobs)
			}
		}
	}
}

func TestLadderStep(t *testing.T) {
	ladder := []int{8, 16, 32, 64}
	cases := []struct {
		v    int
		up   bool
		want int
	}{
		{16, true, 32},
		{16, false, 8},
		{8, false, 8},   // bottom edge: unchanged
		{64, true, 64},  // top edge: unchanged
		{24, true, 32},  // off-ladder snaps to the next rung up
		{24, false, 16}, // … and down
		{100, false, 64},
		{4, true, 8},
	}
	for _, c := range cases {
		if got := ladderStep(ladder, c.v, c.up); got != c.want {
			t.Errorf("ladderStep(%v, up=%v) = %d, want %d", c.v, c.up, got, c.want)
		}
	}
}

// annealFixture is the small deterministic workload the determinism
// matrix runs on: one graph, a six-config start set, a short schedule.
func annealFixture() ([]*dag.Graph, AnnealOptions) {
	g := pc.Build(pc.Suite()[0], 0.01)
	start := []arch.Config{
		{D: 1, B: 8, R: 16, Output: arch.OutPerLayer},
		{D: 2, B: 16, R: 16, Output: arch.OutPerLayer},
		{D: 2, B: 16, R: 32, Output: arch.OutPerLayer},
		{D: 3, B: 32, R: 32, Output: arch.OutPerLayer},
		{D: 3, B: 64, R: 32, Output: arch.OutPerLayer},
		{D: 3, B: 64, R: 64, Output: arch.OutPerLayer},
	}
	return []*dag.Graph{g}, AnnealOptions{
		Seed:   7,
		Chains: 3,
		Steps:  10,
		Metric: MinEDP,
		Start:  start,
	}
}

// TestAnnealDeterminismMatrix pins the hard contract: the same seed
// reproduces a bitwise-identical trace (JSON-encoded accepted-move
// record) and winner across repeated runs and across workers ∈
// {1, 4, GOMAXPROCS}; a different seed diverges.
func TestAnnealDeterminismMatrix(t *testing.T) {
	suite, aopts := annealFixture()
	ctx := context.Background()

	type outcome struct {
		trace  []byte
		winner arch.Config
		value  float64
		points int
	}
	runOnce := func(workers int, seed int64) outcome {
		o := aopts
		o.Workers = workers
		o.Seed = seed
		points, tr := SearchAnneal(ctx, suite, compiler.Options{}, o)
		b, ok := Best(points, o.Metric)
		if !ok {
			t.Fatalf("workers=%d seed=%d: no feasible point", workers, seed)
		}
		j, err := json.Marshal(tr)
		if err != nil {
			t.Fatal(err)
		}
		return outcome{trace: j, winner: b.Cfg, value: o.Metric.Value(b), points: len(points)}
	}

	ref := runOnce(1, aopts.Seed)
	if ref.points <= len(aopts.Start) {
		t.Fatalf("no chain evaluations happened (%d points)", ref.points)
	}
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		for rep := 0; rep < 2; rep++ {
			got := runOnce(workers, aopts.Seed)
			if string(got.trace) != string(ref.trace) {
				t.Fatalf("workers=%d rep=%d: trace diverged\nref: %s\ngot: %s", workers, rep, ref.trace, got.trace)
			}
			if got.winner != ref.winner || got.value != ref.value {
				t.Fatalf("workers=%d rep=%d: winner %v (%v), ref %v (%v)", workers, rep, got.winner, got.value, ref.winner, ref.value)
			}
			if got.points != ref.points {
				t.Fatalf("workers=%d rep=%d: %d points, ref %d", workers, rep, got.points, ref.points)
			}
		}
	}

	other := runOnce(1, aopts.Seed+1)
	if string(other.trace) == string(ref.trace) {
		t.Fatalf("seeds %d and %d produced identical traces", aopts.Seed, aopts.Seed+1)
	}
}

// TestAnnealBeatsGrid is the acceptance criterion: on a Table I suite
// workload, SearchAnneal finds a feasible config strictly better on the
// metric than the best point of the paper's 48-point grid, and the same
// seed reproduces that winner bit-identically at workers=1 and
// workers=GOMAXPROCS.
func TestAnnealBeatsGrid(t *testing.T) {
	g := pc.Build(pc.Suite()[0], 0.02) // tretail
	suite := []*dag.Graph{g}
	ctx := context.Background()
	const metric = MinEDP

	gridPoints := SweepContext(ctx, suite, Grid(), compiler.Options{}, 0)
	gridBest, ok := Best(gridPoints, metric)
	if !ok {
		t.Fatal("no feasible grid point")
	}

	runOnce := func(workers int) (Point, Trace) {
		points, tr := SearchAnneal(ctx, suite, compiler.Options{}, AnnealOptions{
			Seed:        3,
			Metric:      metric,
			StartPoints: gridPoints,
			Workers:     workers,
		})
		best, ok := Best(points, metric)
		if !ok {
			t.Fatalf("workers=%d: no feasible point", workers)
		}
		return best, tr
	}

	b1, tr1 := runOnce(1)
	if got, grid := metric.Value(b1), metric.Value(gridBest); got >= grid {
		t.Fatalf("anneal best %v (%v) does not strictly beat grid best %v (%v)", b1.Cfg, got, gridBest.Cfg, grid)
	}
	for _, c := range Grid() {
		if b1.Cfg == c.Normalize() {
			t.Fatalf("anneal winner %v is a grid point — no off-grid exploration happened", b1.Cfg)
		}
	}

	bN, trN := runOnce(runtime.GOMAXPROCS(0))
	if b1.Cfg != bN.Cfg || metric.Value(b1) != metric.Value(bN) {
		t.Fatalf("winner differs across worker counts: %v (%v) vs %v (%v)", b1.Cfg, metric.Value(b1), bN.Cfg, metric.Value(bN))
	}
	j1, _ := json.Marshal(tr1)
	jN, _ := json.Marshal(trN)
	if string(j1) != string(jN) {
		t.Fatalf("trace differs across worker counts:\n%s\n%s", j1, jN)
	}
	if tr1.Accepted != len(tr1.Moves) {
		t.Fatalf("trace accounting: %d accepted but %d moves", tr1.Accepted, len(tr1.Moves))
	}
}

// TestAnnealCancellation pins the budget contract: a canceled context
// returns promptly with the points evaluated so far and the best of
// them — never an empty result, never a lost best-so-far.
func TestAnnealCancellation(t *testing.T) {
	suite, aopts := annealFixture()

	// Pre-evaluated start set + already-expired context: the chains must
	// not run, but the start winner must come back.
	startPoints := SweepContext(context.Background(), suite, aopts.Start, compiler.Options{}, 0)
	wantBest, ok := Best(startPoints, aopts.Metric)
	if !ok {
		t.Fatal("no feasible start point")
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	o := aopts
	o.StartPoints = startPoints
	points, tr := SearchAnneal(canceled, suite, compiler.Options{}, o)
	if len(points) < len(startPoints) {
		t.Fatalf("canceled run returned %d points, want at least the %d start points", len(points), len(startPoints))
	}
	if !tr.Canceled {
		t.Error("trace does not report cancellation")
	}
	if got, ok := Best(points, o.Metric); !ok || got.Cfg != wantBest.Cfg {
		t.Fatalf("canceled run lost the best-so-far: got %v ok=%v, want %v", got.Cfg, ok, wantBest.Cfg)
	}
	if len(tr.Moves) != 0 || tr.Evaluated != 0 {
		t.Fatalf("canceled-before-start run still recorded work: %d moves, %d evaluated", len(tr.Moves), tr.Evaluated)
	}

	// Cancellation before the start sweep: the points still come back
	// (labeled with the context error), just nothing is feasible.
	o = aopts
	points, tr = SearchAnneal(canceled, suite, compiler.Options{}, o)
	if len(points) != len(aopts.Start) {
		t.Fatalf("canceled start sweep returned %d points, want %d", len(points), len(aopts.Start))
	}
	if tr.StartFound || !tr.Canceled {
		t.Fatalf("canceled start sweep: StartFound=%v Canceled=%v", tr.StartFound, tr.Canceled)
	}
}
