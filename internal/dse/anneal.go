// Annealing-based design-space search — the escape hatch from the
// paper's fixed 48-point grid. Where Sweep can only score the D/B/R
// combinations of §V, SearchAnneal explores an enlarged combinatorial
// space (deeper trees, off-grid bank/register ladders, every supported
// output topology, data-memory sizing) with parallel simulated
// annealing: a fixed number of independent chains, each seeded from the
// best start-set point, each mutating exactly one knob per step and
// accepting worse candidates with a geometrically cooled probability.
//
// Determinism is a hard contract, not an aspiration:
//
//   - every chain owns a rand/v2 PCG seeded from (Seed, chain index),
//     so the accepted-move trace is a pure function of the options;
//   - the chain count is fixed by AnnealOptions.Chains, never derived
//     from Workers — parallelism changes wall time, not results;
//   - winners are chosen by Best, whose metric ties break on the
//     canonical config order, so equal-scoring candidates cannot make
//     the outcome depend on evaluation order.
//
// Same (Seed, Chains, Steps) therefore reproduces the identical trace
// and winner at any worker count. Cancellation truncates, it never
// corrupts: an expired budget returns the points evaluated so far with
// the best of them, never an empty result.
package dse

import (
	"context"
	"errors"
	"math"
	randv2 "math/rand/v2"

	"dpuv2/internal/arch"
	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
	"dpuv2/internal/engine"
	"dpuv2/internal/par"
)

// The enlarged mutation space. The grid stops at B=64/R=128 with the
// per-layer interconnect; the ladders below extend one power-of-two
// rung past it on both ends and admit the other two supported
// topologies. Every rung passes engine.CheckMachineBounds — candidates
// beyond what the *compiler* supports (e.g. B=128 exceeds its bank
// allocator) are emitted, scored infeasible and rejected as moves,
// which is exactly how the search learns the boundary.
var (
	annealBLadder   = []int{4, 8, 16, 32, 64, 128}
	annealRLadder   = []int{8, 16, 32, 64, 128, 256}
	annealMemLadder = []int{1 << 16, 1 << 17, 1 << 18, 1 << 19, 1 << 20}
	// OutOneToOne is modeled but rejected by the compiler up front, so
	// mutating onto it would only burn budget.
	annealTopologies = []arch.OutputTopology{arch.OutCrossbar, arch.OutPerLayer, arch.OutPerPE}
)

// maxAnnealD matches arch.Config.Validate's supported depth range.
const maxAnnealD = 6

// mutateAttempts bounds the rejection-sampling loop of one mutation
// step: a draw that lands on an invalid neighbor (D step breaking the
// B%2^D constraint, a ladder edge, a guard rejection) retries with
// fresh randomness instead of failing the step.
const mutateAttempts = 32

// AnnealOptions parameterize SearchAnneal. The zero value is usable:
// it seeds from the paper's grid and runs the default chain shape.
type AnnealOptions struct {
	// Seed is the search's RNG seed. Together with Chains and Steps it
	// fully determines the accepted-move trace and the winner.
	Seed int64
	// Chains is the number of independent annealing chains (default 4).
	// It is part of the search's identity, deliberately decoupled from
	// Workers: results are identical at any parallelism.
	Chains int
	// Steps is the per-chain mutation budget in candidate points
	// (default 48 — a second grid's worth per chain).
	Steps int
	// InitTemp is the initial temperature as a relative metric
	// distance: a candidate InitTemp·100% worse than the current point
	// is accepted with probability 1/e at step 0 (default 0.08).
	InitTemp float64
	// Cool is the geometric per-step temperature decay in (0, 1]
	// (default 0.92).
	Cool float64
	// Metric is the optimization target (default MinLatency, matching
	// the tuner).
	Metric Metric
	// Start is the seed candidate set, swept first so the chains start
	// from its best feasible point; nil means Grid(), the paper's 48
	// configurations.
	Start []arch.Config
	// StartPoints, when non-nil, supplies the start set pre-evaluated
	// (e.g. a sweep the caller already ran) and suppresses the Start
	// sweep entirely.
	StartPoints []Point
	// Workers sizes the worker pool for the start sweep and the chain
	// fan-out (<= 0: one per CPU). It never affects results.
	Workers int
	// Guard pre-screens every mutated candidate before it is compiled;
	// nil means engine.CheckMachineBounds, so the search can never
	// propose a configuration the serving layer would refuse to build.
	Guard func(arch.Config) error
}

// Normalized fills defaulted fields, the shape recorded in traces and
// decision provenance.
func (o AnnealOptions) Normalized() AnnealOptions {
	if o.Chains <= 0 {
		o.Chains = 4
	}
	if o.Steps <= 0 {
		o.Steps = 48
	}
	if o.InitTemp <= 0 {
		o.InitTemp = 0.08
	}
	if o.Cool <= 0 || o.Cool > 1 {
		o.Cool = 0.92
	}
	if o.Metric < MinLatency || o.Metric > MinEDP {
		o.Metric = MinLatency
	}
	if o.Start == nil {
		o.Start = Grid()
	}
	if o.Guard == nil {
		o.Guard = engine.CheckMachineBounds
	}
	return o
}

// Scored is the JSON-friendly projection of an evaluated configuration
// the trace records.
type Scored struct {
	Config arch.Config `json:"config"`
	Value  float64     `json:"value"`
}

// Move is one accepted annealing move: chain and step identify its
// position in the schedule, Knob names the mutated parameter.
type Move struct {
	Chain  int         `json:"chain"`
	Step   int         `json:"step"`
	Knob   string      `json:"knob"`
	Config arch.Config `json:"config"`
	Value  float64     `json:"value"`
}

// Trace is the reproducibility record of one SearchAnneal run: the
// exact options that determine it, the accepted-move sequence, and the
// outcome. Two runs with equal options must produce byte-identical
// JSON encodings of their traces — the property the determinism tests
// and the CI anneal step diff for.
type Trace struct {
	Seed     int64   `json:"seed"`
	Chains   int     `json:"chains"`
	Steps    int     `json:"steps"`
	InitTemp float64 `json:"init_temp"`
	Cool     float64 `json:"cool"`
	Metric   string  `json:"metric"`
	// StartFound/Start is the best feasible start-set point the chains
	// seeded from; StartFound false means nothing was feasible (or the
	// start sweep was canceled) and no chains ran.
	StartFound bool   `json:"start_found"`
	Start      Scored `json:"start"`
	// Evaluated counts candidate evaluations across all chains
	// (excluding the start sweep); Accepted + Rejected account every
	// chain step that ran (rejected includes infeasible candidates and
	// exhausted mutation draws).
	Evaluated int    `json:"evaluated"`
	Accepted  int    `json:"accepted"`
	Rejected  int    `json:"rejected"`
	Moves     []Move `json:"moves"`
	// BestFound/Best is the winner over start set and chains combined,
	// ties broken canonically.
	BestFound bool   `json:"best_found"`
	Best      Scored `json:"best"`
	// Canceled reports that the context expired before the schedule
	// completed; the trace then covers the truncated run.
	Canceled bool `json:"canceled,omitempty"`
}

// SearchAnneal runs parallel simulated annealing over the enlarged
// config space: sweep the start set, seed every chain from its best
// feasible point, then mutate one knob per step under the geometric
// temperature schedule. It returns every evaluated point — the start
// set first (in order), then each chain's candidates in (chain, step)
// order — and the trace; pick the winner with Best over the returned
// points. Cancellation of ctx returns promptly with the points
// evaluated so far (never an empty slice when the start set is
// non-empty, never missing a best-so-far that was already found).
func SearchAnneal(ctx context.Context, workloads []*dag.Graph, opts compiler.Options, aopts AnnealOptions) ([]Point, Trace) {
	a := aopts.Normalized()
	tr := Trace{
		Seed:     a.Seed,
		Chains:   a.Chains,
		Steps:    a.Steps,
		InitTemp: a.InitTemp,
		Cool:     a.Cool,
		Metric:   a.Metric.String(),
		Moves:    []Move{},
	}
	points := a.StartPoints
	if points == nil {
		points = SweepContext(ctx, workloads, a.Start, opts, a.Workers)
	}
	// The returned slice must not alias caller-owned StartPoints once
	// chain results are appended.
	points = points[:len(points):len(points)]

	start, ok := Best(points, a.Metric)
	if !ok {
		tr.Canceled = ctx.Err() != nil
		return points, tr
	}
	tr.StartFound = true
	tr.Start = Scored{Config: start.Cfg, Value: a.Metric.Value(start)}

	results := make([]chainResult, a.Chains)
	par.ForEach(a.Chains, a.Workers, func(i int) {
		results[i] = a.runChain(ctx, i, workloads, opts, start)
	})
	for _, r := range results {
		points = append(points, r.points...)
		tr.Moves = append(tr.Moves, r.moves...)
		tr.Accepted += len(r.moves)
		tr.Rejected += r.rejected
		tr.Evaluated += len(r.points)
		tr.Canceled = tr.Canceled || r.canceled
	}
	if best, ok := Best(points, a.Metric); ok {
		tr.BestFound = true
		tr.Best = Scored{Config: best.Cfg, Value: a.Metric.Value(best)}
	}
	return points, tr
}

// chainResult is one chain's contribution, assembled in chain order so
// the combined output is independent of worker interleaving.
type chainResult struct {
	points   []Point
	moves    []Move
	rejected int
	canceled bool
}

// runChain walks one annealing chain. All randomness comes from the
// chain's own PCG, all candidate scoring from evaluatePoint — nothing
// shared, nothing ordering-dependent.
func (a AnnealOptions) runChain(ctx context.Context, chain int, workloads []*dag.Graph, opts compiler.Options, start Point) chainResult {
	var res chainResult
	rng := randv2.New(randv2.NewPCG(uint64(a.Seed), uint64(chain)+1))
	cur := start.Cfg
	curV := a.Metric.Value(start)
	temp := a.InitTemp
	for step := 0; step < a.Steps; step, temp = step+1, temp*a.Cool {
		if ctx.Err() != nil {
			res.canceled = true
			break
		}
		cand, knob := mutateConfig(cur, a.Guard, rng)
		if knob == "" {
			// No valid neighbor found in mutateAttempts draws; burn the
			// step, not an evaluation.
			res.rejected++
			continue
		}
		p := evaluatePoint(ctx, workloads, cand, opts)
		if errors.Is(p.Err, context.Canceled) || errors.Is(p.Err, context.DeadlineExceeded) {
			res.canceled = true
			break
		}
		res.points = append(res.points, p)
		if p.Feasible {
			v := a.Metric.Value(p)
			// Classic Metropolis acceptance on the relative regression:
			// improvements (and plateau moves, exp(0)=1) always accepted,
			// regressions with probability exp(-rel/T).
			accept := v <= curV
			if !accept && curV > 0 {
				rel := (v - curV) / curV
				accept = rng.Float64() < math.Exp(-rel/temp)
			}
			if accept {
				cur, curV = p.Cfg, v
				res.moves = append(res.moves, Move{Chain: chain, Step: step, Knob: knob, Config: p.Cfg, Value: v})
				continue
			}
		}
		res.rejected++
	}
	return res
}

// mutateConfig returns a neighbor of cfg differing in exactly one knob
// — D, B, R, Output or DataMemWords — that validates, passes the guard
// and is already in normalized form (cfg must be normalized, and the
// single-field edits preserve that). The second return names the
// mutated knob; "" means no valid neighbor was found within the
// attempt budget and cfg is returned unchanged.
func mutateConfig(cfg arch.Config, guard func(arch.Config) error, rng *randv2.Rand) (arch.Config, string) {
	for try := 0; try < mutateAttempts; try++ {
		cand := cfg
		knob := ""
		up := rng.IntN(2) == 1
		switch rng.IntN(5) {
		case 0:
			knob = "D"
			if up {
				cand.D++
			} else {
				cand.D--
			}
		case 1:
			knob = "B"
			cand.B = ladderStep(annealBLadder, cfg.B, up)
		case 2:
			knob = "R"
			cand.R = ladderStep(annealRLadder, cfg.R, up)
		case 3:
			knob = "Output"
			others := make([]arch.OutputTopology, 0, len(annealTopologies))
			for _, t := range annealTopologies {
				if t != cfg.Output {
					others = append(others, t)
				}
			}
			cand.Output = others[rng.IntN(len(others))]
		case 4:
			knob = "DataMemWords"
			cand.DataMemWords = ladderStep(annealMemLadder, cfg.DataMemWords, up)
		}
		if cand == cfg || cand.D < 1 || cand.D > maxAnnealD {
			continue
		}
		if cand.Validate() != nil || guard(cand) != nil {
			continue
		}
		return cand, knob
	}
	return cfg, ""
}

// ladderStep moves v one rung up or down a sorted ladder; off-ladder
// values move to the nearest rung in the requested direction. Returns
// v unchanged when no rung exists that way (the caller's no-op check
// rejects the draw).
func ladderStep(ladder []int, v int, up bool) int {
	if up {
		for _, l := range ladder {
			if l > v {
				return l
			}
		}
		return v
	}
	for i := len(ladder) - 1; i >= 0; i-- {
		if ladder[i] < v {
			return ladder[i]
		}
	}
	return v
}
