package dse

import (
	"testing"

	"dpuv2/internal/arch"
	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
	"dpuv2/internal/pc"
	"dpuv2/internal/sptrsv"
)

func smallSuite() []*dag.Graph {
	g1 := pc.Build(pc.Suite()[0], 0.05)
	g2, _ := sptrsv.Build(sptrsv.Suite()[0], 0.05)
	return []*dag.Graph{g1, g2}
}

func TestGridHas48Points(t *testing.T) {
	cfgs := Grid()
	if len(cfgs) != 48 {
		t.Fatalf("grid has %d points, want 48", len(cfgs))
	}
	for _, c := range cfgs {
		if err := c.Validate(); err != nil {
			t.Errorf("%v: %v", c, err)
		}
	}
}

func TestEvaluateProducesSaneMetrics(t *testing.T) {
	g := pc.Build(pc.Suite()[0], 0.05)
	est, err := Evaluate(g, arch.MinEDP(), compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if est.LatencyPerOp <= 0 || est.EnergyPerOp <= 0 || est.EDP <= 0 {
		t.Fatalf("non-positive metrics: %+v", est)
	}
	if est.LatencyPerOp > 100 {
		t.Fatalf("latency/op %.1f ns implausible (paper range 0.2–3.5)", est.LatencyPerOp)
	}
}

func TestSweepAndBest(t *testing.T) {
	suite := smallSuite()
	cfgs := []arch.Config{
		{D: 1, B: 8, R: 32, Output: arch.OutPerLayer},
		{D: 2, B: 16, R: 32, Output: arch.OutPerLayer},
		{D: 3, B: 64, R: 32, Output: arch.OutPerLayer},
	}
	points := Sweep(suite, cfgs, compiler.Options{})
	if len(points) != len(cfgs) {
		t.Fatalf("got %d points", len(points))
	}
	feasible := 0
	for _, p := range points {
		if p.Feasible {
			feasible++
		}
	}
	if feasible == 0 {
		t.Fatal("no feasible points")
	}
	bestLat, ok := Best(points, MinLatency)
	if !ok {
		t.Fatal("no best point")
	}
	bestEDP, _ := Best(points, MinEDP)
	bestE, _ := Best(points, MinEnergy)
	// The deepest/widest datapath should win latency on parallel DAGs.
	if bestLat.Cfg.D != 3 {
		t.Errorf("min-latency config %v, expected the D=3 point", bestLat.Cfg)
	}
	for _, p := range points {
		if p.Feasible && p.EDP < bestEDP.EDP {
			t.Errorf("Best(MinEDP) missed %v", p.Cfg)
		}
		if p.Feasible && p.EnergyPerOp < bestE.EnergyPerOp {
			t.Errorf("Best(MinEnergy) missed %v", p.Cfg)
		}
	}
}

func TestInfeasiblePointReported(t *testing.T) {
	// A graph with a huge working set cannot compile at tiny R.
	g := dag.RandomGraph(dag.RandomConfig{Inputs: 400, Interior: 3000, MaxArgs: 2, MulFrac: 0.5, Seed: 2})
	points := Sweep([]*dag.Graph{g}, []arch.Config{{D: 3, B: 8, R: 2, Output: arch.OutPerLayer}}, compiler.Options{})
	if len(points) != 1 {
		t.Fatal("want one point")
	}
	if points[0].Feasible {
		t.Skip("tiny-R point unexpectedly feasible for this graph")
	}
	if points[0].Err == nil {
		t.Fatal("infeasible point must carry its error")
	}
}
