package dse

import (
	"context"
	"errors"
	"testing"
	"time"

	"dpuv2/internal/arch"
	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
	"dpuv2/internal/pc"
	"dpuv2/internal/sptrsv"
)

func smallSuite() []*dag.Graph {
	g1 := pc.Build(pc.Suite()[0], 0.05)
	g2, _ := sptrsv.Build(sptrsv.Suite()[0], 0.05)
	return []*dag.Graph{g1, g2}
}

func TestGridHas48Points(t *testing.T) {
	cfgs := Grid()
	if len(cfgs) != 48 {
		t.Fatalf("grid has %d points, want 48", len(cfgs))
	}
	for _, c := range cfgs {
		if err := c.Validate(); err != nil {
			t.Errorf("%v: %v", c, err)
		}
	}
}

func TestEvaluateProducesSaneMetrics(t *testing.T) {
	g := pc.Build(pc.Suite()[0], 0.05)
	est, err := Evaluate(g, arch.MinEDP(), compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if est.LatencyPerOp <= 0 || est.EnergyPerOp <= 0 || est.EDP <= 0 {
		t.Fatalf("non-positive metrics: %+v", est)
	}
	if est.LatencyPerOp > 100 {
		t.Fatalf("latency/op %.1f ns implausible (paper range 0.2–3.5)", est.LatencyPerOp)
	}
}

func TestSweepAndBest(t *testing.T) {
	suite := smallSuite()
	cfgs := []arch.Config{
		{D: 1, B: 8, R: 32, Output: arch.OutPerLayer},
		{D: 2, B: 16, R: 32, Output: arch.OutPerLayer},
		{D: 3, B: 64, R: 32, Output: arch.OutPerLayer},
	}
	points := Sweep(suite, cfgs, compiler.Options{})
	if len(points) != len(cfgs) {
		t.Fatalf("got %d points", len(points))
	}
	feasible := 0
	for _, p := range points {
		if p.Feasible {
			feasible++
		}
	}
	if feasible == 0 {
		t.Fatal("no feasible points")
	}
	bestLat, ok := Best(points, MinLatency)
	if !ok {
		t.Fatal("no best point")
	}
	bestEDP, _ := Best(points, MinEDP)
	bestE, _ := Best(points, MinEnergy)
	// The deepest/widest datapath should win latency on parallel DAGs.
	if bestLat.Cfg.D != 3 {
		t.Errorf("min-latency config %v, expected the D=3 point", bestLat.Cfg)
	}
	for _, p := range points {
		if p.Feasible && p.EDP < bestEDP.EDP {
			t.Errorf("Best(MinEDP) missed %v", p.Cfg)
		}
		if p.Feasible && p.EnergyPerOp < bestE.EnergyPerOp {
			t.Errorf("Best(MinEnergy) missed %v", p.Cfg)
		}
	}
}

// TestSweepParallelMatchesSerial asserts the worker pool changes nothing
// observable: every point of a parallel sweep must be identical,
// field for field, to the serial sweep — including captured errors on
// infeasible points.
func TestSweepParallelMatchesSerial(t *testing.T) {
	suite := smallSuite()
	// A slice of the real grid plus a deliberately infeasible point so
	// the comparison covers the error-capture path.
	cfgs := []arch.Config{
		{D: 1, B: 8, R: 32, Output: arch.OutPerLayer},
		{D: 2, B: 16, R: 32, Output: arch.OutPerLayer},
		{D: 2, B: 16, R: 64, Output: arch.OutCrossbar},
		{D: 3, B: 32, R: 16, Output: arch.OutPerLayer},
		{D: 3, B: 64, R: 32, Output: arch.OutPerLayer},
		{D: 3, B: 8, R: 2, Output: arch.OutPerLayer}, // likely infeasible: tiny R
	}
	serial := SweepParallel(suite, cfgs, compiler.Options{}, 1)
	for _, workers := range []int{2, 4, len(cfgs) + 3} {
		parallel := SweepParallel(suite, cfgs, compiler.Options{}, workers)
		if len(parallel) != len(serial) {
			t.Fatalf("workers=%d: %d points, serial has %d", workers, len(parallel), len(serial))
		}
		for i := range serial {
			s, p := serial[i], parallel[i]
			if s.Cfg != p.Cfg || s.LatencyPerOp != p.LatencyPerOp ||
				s.EnergyPerOp != p.EnergyPerOp || s.EDP != p.EDP ||
				s.AreaMM2 != p.AreaMM2 || s.Feasible != p.Feasible {
				t.Errorf("workers=%d point %d: parallel %+v != serial %+v", workers, i, p, s)
			}
			switch {
			case (s.Err == nil) != (p.Err == nil):
				t.Errorf("workers=%d point %d: error presence differs: %v vs %v", workers, i, p.Err, s.Err)
			case s.Err != nil && s.Err.Error() != p.Err.Error():
				t.Errorf("workers=%d point %d: error text differs:\n  parallel: %v\n  serial:   %v", workers, i, p.Err, s.Err)
			}
		}
	}
}

// TestSweepContextCanceledUpFront: with a context canceled before the
// sweep starts, every point comes back infeasible with the context's
// error — same length, same order, no evaluation, and the sweep returns
// promptly instead of burning the full grid.
func TestSweepContextCanceledUpFront(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	suite := []*dag.Graph{pc.Build(pc.Suite()[0], 0.2)}
	start := time.Now()
	points := SweepContext(ctx, suite, Grid(), compiler.Options{}, 0)
	elapsed := time.Since(start)
	if len(points) != len(Grid()) {
		t.Fatalf("got %d points, want one per config", len(points))
	}
	for i, p := range points {
		if p.Feasible {
			t.Fatalf("point %d evaluated despite canceled context: %+v", i, p)
		}
		if !errors.Is(p.Err, context.Canceled) {
			t.Fatalf("point %d error = %v, want context.Canceled", i, p.Err)
		}
		if p.Cfg != Grid()[i].Normalize() {
			t.Fatalf("point %d config %v out of order (want %v)", i, p.Cfg, Grid()[i].Normalize())
		}
	}
	// No compilation happened, so even a generous bound proves promptness
	// (the full 48-point sweep of this workload takes seconds).
	if elapsed > 2*time.Second {
		t.Fatalf("canceled sweep took %v", elapsed)
	}
}

// TestSweepContextCancelMidSweep cancels a running sweep and asserts it
// returns promptly with partial results: points not yet started carry the
// cancellation error, anything already evaluated is a normal point, and
// the two together cover the whole grid.
func TestSweepContextCancelMidSweep(t *testing.T) {
	// Big enough that a full 48-point sweep takes many seconds — the
	// prompt return below is then meaningful — while a single in-flight
	// point finishes quickly.
	suite := []*dag.Graph{pc.Build(pc.Suite()[0], 0.2)}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	points := SweepContext(ctx, suite, Grid(), compiler.Options{}, 2)
	elapsed := time.Since(start)
	if len(points) != len(Grid()) {
		t.Fatalf("got %d points, want one per config", len(points))
	}
	canceled, evaluated := 0, 0
	for _, p := range points {
		switch {
		case errors.Is(p.Err, context.Canceled):
			canceled++
		case p.Feasible:
			evaluated++
			if p.LatencyPerOp <= 0 {
				t.Fatalf("evaluated point has bogus metrics: %+v", p)
			}
		case p.Err == nil:
			t.Fatalf("infeasible point with no error: %+v", p)
		}
	}
	if canceled == 0 {
		t.Fatal("cancellation landed after the whole sweep finished; grid too small or machine too fast for this test")
	}
	if canceled+evaluated < len(Grid())-2 { // allow a couple of genuinely infeasible points
		t.Fatalf("canceled %d + evaluated %d does not cover the %d-point grid", canceled, evaluated, len(Grid()))
	}
	// Prompt return: at most the in-flight points drain. A full sweep of
	// this workload takes well over 10s; 5s of headroom keeps slow CI
	// machines from flaking while still catching a sweep that ignores
	// cancellation.
	if elapsed > 5*time.Second {
		t.Fatalf("canceled sweep took %v, cancellation not honored", elapsed)
	}
}

func TestMetricStringParseRoundTrip(t *testing.T) {
	for _, m := range []Metric{MinLatency, MinEnergy, MinEDP} {
		var got Metric
		if err := got.ParseMetric(m.String()); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if got != m {
			t.Fatalf("round trip %v -> %q -> %v", m, m.String(), got)
		}
	}
	var m Metric
	if err := m.ParseMetric("throughput"); err == nil {
		t.Fatal("unknown metric accepted")
	}
	p := Point{LatencyPerOp: 1, EnergyPerOp: 2, EDP: 3}
	if MinLatency.Value(p) != 1 || MinEnergy.Value(p) != 2 || MinEDP.Value(p) != 3 {
		t.Fatalf("Value reads the wrong fields: %v %v %v",
			MinLatency.Value(p), MinEnergy.Value(p), MinEDP.Value(p))
	}
}

func TestInfeasiblePointReported(t *testing.T) {
	// A graph with a huge working set cannot compile at tiny R.
	g := dag.RandomGraph(dag.RandomConfig{Inputs: 400, Interior: 3000, MaxArgs: 2, MulFrac: 0.5, Seed: 2})
	points := Sweep([]*dag.Graph{g}, []arch.Config{{D: 3, B: 8, R: 2, Output: arch.OutPerLayer}}, compiler.Options{})
	if len(points) != 1 {
		t.Fatal("want one point")
	}
	if points[0].Feasible {
		t.Skip("tiny-R point unexpectedly feasible for this graph")
	}
	if points[0].Err == nil {
		t.Fatal("infeasible point must carry its error")
	}
}

// TestBestTieBreakIsCanonical pins the tie-breaking contract: among
// points with deliberately duplicated metric values, Best picks the one
// first in canonical config order (D, then B, then R, then Output, then
// DataMemWords) no matter how the slice is ordered — search-generated
// candidate lists depend on this for order-independent winners.
func TestBestTieBreakIsCanonical(t *testing.T) {
	mk := func(d, b, r int, out arch.OutputTopology, mem int, edp float64) Point {
		cfg := arch.Config{D: d, B: b, R: r, Output: out, DataMemWords: mem}.Normalize()
		return Point{Cfg: cfg, EDP: edp, Feasible: true}
	}
	tied := []Point{
		mk(3, 64, 32, arch.OutPerLayer, 0, 5),
		mk(2, 16, 8, arch.OutPerPE, 0, 5),
		mk(2, 16, 8, arch.OutPerLayer, 1<<20, 5),
		mk(2, 16, 8, arch.OutPerLayer, 0, 5), // canonical winner
		mk(2, 64, 8, arch.OutPerLayer, 0, 5),
		mk(1, 8, 16, arch.OutPerLayer, 0, 7), // worse score, better order: must lose
	}
	want := tied[3].Cfg

	// Every rotation of the slice must elect the same winner.
	for shift := range tied {
		rotated := append(append([]Point{}, tied[shift:]...), tied[:shift]...)
		best, ok := Best(rotated, MinEDP)
		if !ok {
			t.Fatal("no feasible point")
		}
		if best.Cfg != want {
			t.Fatalf("rotation %d: winner %v, want %v", shift, best.Cfg, want)
		}
	}

	// A strictly better score still beats a canonically smaller config.
	withWin := append([]Point{mk(6, 128, 256, arch.OutPerPE, 0, 4)}, tied...)
	if best, _ := Best(withWin, MinEDP); best.EDP != 4 {
		t.Fatalf("tie-break overrode a strictly better score: %+v", best)
	}
}
