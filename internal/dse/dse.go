// Package dse runs the design-space exploration of §V: the 48-point grid
// over tree depth D ∈ {1,2,3}, bank count B ∈ {8,16,32,64} and registers
// per bank R ∈ {16,32,64,128}, evaluating mean latency, energy and
// energy-delay product per operation across a workload suite (fig. 11 and
// fig. 12).
package dse

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"dpuv2/internal/arch"
	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
	"dpuv2/internal/energy"
	"dpuv2/internal/par"
	"dpuv2/internal/sim"
)

// Grid returns the paper's 48 sweep configurations with the per-layer
// output interconnect DPU-v2 selects.
func Grid() []arch.Config {
	var cfgs []arch.Config
	for _, d := range []int{1, 2, 3} {
		for _, b := range []int{8, 16, 32, 64} {
			for _, r := range []int{16, 32, 64, 128} {
				cfgs = append(cfgs, arch.Config{D: d, B: b, R: r, Output: arch.OutPerLayer})
			}
		}
	}
	return cfgs
}

// Point is the evaluated outcome of one configuration.
type Point struct {
	Cfg arch.Config
	// Per-operation means over the workload suite.
	LatencyPerOp float64 // ns
	EnergyPerOp  float64 // pJ
	EDP          float64 // pJ·ns
	AreaMM2      float64
	// Feasible is false when any workload failed to compile (e.g. the
	// register file cannot hold a block's working set).
	Feasible bool
	Err      error
}

// Evaluate compiles, simulates and models one workload on one config.
func Evaluate(g *dag.Graph, cfg arch.Config, opts compiler.Options) (energy.Estimate, error) {
	c, err := compiler.Compile(g, cfg, opts)
	if err != nil {
		return energy.Estimate{}, err
	}
	rng := rand.New(rand.NewSource(0x05E))
	inputs := make([]float64, len(c.Graph.Inputs()))
	for i := range inputs {
		inputs[i] = 0.25 + 0.75*rng.Float64()
	}
	res, err := sim.Run(c, inputs)
	if err != nil {
		return energy.Estimate{}, fmt.Errorf("dse: %s on %v: %w", g.Name, cfg, err)
	}
	return energy.EstimateRun(cfg, c.Stats.Nodes, res.Stats, c.Prog), nil
}

// evaluatePoint evaluates one configuration over the workload suite. An
// error on any workload marks the point infeasible and carries that
// error; evaluation of the remaining configurations is unaffected (no
// sweep-wide bail). Cancellation of ctx is checked between workloads, so
// a canceled point stops after the workload it is on rather than
// finishing the suite.
func evaluatePoint(ctx context.Context, workloads []*dag.Graph, cfg arch.Config, opts compiler.Options) Point {
	p := Point{Cfg: cfg.Normalize(), Feasible: true}
	var lat, en float64
	for _, g := range workloads {
		if err := ctx.Err(); err != nil {
			p.Feasible = false
			p.Err = err
			break
		}
		est, err := Evaluate(g, cfg, opts)
		if err != nil {
			p.Feasible = false
			p.Err = err
			break
		}
		lat += est.LatencyPerOp
		en += est.EnergyPerOp
		p.AreaMM2 = est.AreaMM2
	}
	if p.Feasible && len(workloads) > 0 {
		p.LatencyPerOp = lat / float64(len(workloads))
		p.EnergyPerOp = en / float64(len(workloads))
		p.EDP = p.LatencyPerOp * p.EnergyPerOp
	}
	return p
}

// Sweep evaluates every configuration over every workload and returns one
// Point per configuration with per-op metrics averaged over workloads,
// like the paper's fig. 11. It uses every available CPU; see
// SweepParallel for an explicit worker count.
func Sweep(workloads []*dag.Graph, cfgs []arch.Config, opts compiler.Options) []Point {
	return SweepParallel(workloads, cfgs, opts, 0)
}

// SweepParallel is Sweep with an explicit worker count (workers <= 0
// means GOMAXPROCS). Configurations are distributed over a worker pool;
// every point is evaluated independently, failures are captured per
// point, and the returned slice is in cfgs order regardless of worker
// interleaving — the output is point-for-point identical to a serial
// sweep because each evaluation is deterministic and shares nothing
// mutable.
func SweepParallel(workloads []*dag.Graph, cfgs []arch.Config, opts compiler.Options, workers int) []Point {
	return SweepContext(context.Background(), workloads, cfgs, opts, workers)
}

// SweepContext is SweepParallel with cancellation: when ctx is canceled
// (or its deadline expires) mid-sweep, configurations not yet evaluated
// are returned promptly as infeasible points carrying ctx's error, and a
// point mid-evaluation stops at its next workload boundary. The sweep
// never returns early — the slice always has one point per configuration,
// in cfgs order — so callers working under a budget (the autotuner) get
// whatever partial results the budget bought, each point labeled either
// with its metrics or with the cancellation error.
func SweepContext(ctx context.Context, workloads []*dag.Graph, cfgs []arch.Config, opts compiler.Options, workers int) []Point {
	// Force the lazily memoized graph adjacency into existence before
	// fanning out, so the workers strictly read the shared graphs.
	for _, g := range workloads {
		if g.NumNodes() > 0 {
			g.Outputs()
		}
	}
	points := make([]Point, len(cfgs))
	par.ForEach(len(cfgs), workers, func(i int) {
		if err := ctx.Err(); err != nil {
			points[i] = Point{Cfg: cfgs[i].Normalize(), Err: err}
			return
		}
		points[i] = evaluatePoint(ctx, workloads, cfgs[i], opts)
	})
	return points
}

// Metric selects the optimization target of Best.
type Metric int

const (
	MinLatency Metric = iota
	MinEnergy
	MinEDP
)

// String names the metric the way the CLIs spell it.
func (m Metric) String() string {
	switch m {
	case MinLatency:
		return "latency"
	case MinEnergy:
		return "energy"
	case MinEDP:
		return "edp"
	}
	return fmt.Sprintf("metric(%d)", int(m))
}

// ParseMetric is the inverse of String, for flag values.
func (m *Metric) ParseMetric(s string) error {
	switch s {
	case "latency":
		*m = MinLatency
	case "energy":
		*m = MinEnergy
	case "edp":
		*m = MinEDP
	default:
		return fmt.Errorf("dse: unknown metric %q (latency, energy or edp)", s)
	}
	return nil
}

// Value extracts the metric's per-op score from a point; lower is better.
func (m Metric) Value(p Point) float64 {
	switch m {
	case MinLatency:
		return p.LatencyPerOp
	case MinEnergy:
		return p.EnergyPerOp
	default:
		return p.EDP
	}
}

// ValueOf extracts the metric's per-op score from a single-workload
// estimate, the same quantity Value reads from a sweep point.
func (m Metric) ValueOf(est energy.Estimate) float64 {
	switch m {
	case MinLatency:
		return est.LatencyPerOp
	case MinEnergy:
		return est.EnergyPerOp
	default:
		return est.EDP
	}
}

// Best returns the feasible point minimizing the metric. Equal metric
// values break ties by the canonical config order (configLess), so the
// winner is a pure function of the candidate *set*, never of slice
// order — search-generated candidate lists (SearchAnneal) depend on
// this for reproducible winners at any worker count.
func Best(points []Point, m Metric) (Point, bool) {
	best := Point{}
	bestV := math.Inf(1)
	found := false
	for _, p := range points {
		if !p.Feasible {
			continue
		}
		v := m.Value(p)
		if !found || v < bestV || (v == bestV && configLess(p.Cfg, best.Cfg)) {
			bestV, best, found = v, p, true
		}
	}
	return best, found
}

// configLess is the canonical strict order on configurations used for
// tie-breaking: D, then B, then R, then Output, then DataMemWords
// (ClockMHz last for completeness).
func configLess(a, b arch.Config) bool {
	if a.D != b.D {
		return a.D < b.D
	}
	if a.B != b.B {
		return a.B < b.B
	}
	if a.R != b.R {
		return a.R < b.R
	}
	if a.Output != b.Output {
		return a.Output < b.Output
	}
	if a.DataMemWords != b.DataMemWords {
		return a.DataMemWords < b.DataMemWords
	}
	return a.ClockMHz < b.ClockMHz
}
