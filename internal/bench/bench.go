// Package bench is the experiment harness: one generator per table and
// figure of the paper's evaluation (§V), shared by cmd/dpu-bench and the
// repository's top-level Go benchmarks. Each generator returns the rows
// as formatted text; EXPERIMENTS.md records how the regenerated numbers
// compare with the paper's.
package bench

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"

	"dpuv2/internal/arch"
	"dpuv2/internal/baseline"
	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
	"dpuv2/internal/dse"
	"dpuv2/internal/energy"
	"dpuv2/internal/par"
	"dpuv2/internal/pc"
	"dpuv2/internal/sim"
	"dpuv2/internal/sptrsv"
)

// Config scales the harness. Scale multiplies the Table I node counts of
// the PC and SpTRSV suites; LargeScale does the same for the large-PC
// suite (full scale means 3.3M-node circuits — correct but slow).
// Workers bounds the evaluation parallelism of the sweep-heavy
// experiments (fig. 11/12/13); <= 0 means one worker per CPU.
type Config struct {
	Scale      float64
	LargeScale float64
	Seed       int64
	Workers    int
}

// DefaultConfig keeps every experiment under a few seconds.
func DefaultConfig() Config { return Config{Scale: 0.15, LargeScale: 0.01} }

// Runner caches compiled/simulated workloads across experiments. The
// cache is guarded so experiment generators may evaluate workloads from
// a worker pool; each key is computed exactly once even when workers
// request it concurrently.
type Runner struct {
	cfg   Config
	mu    sync.Mutex
	cache map[string]*evalEntry

	// The full 48-point DSE sweep is shared by fig. 11 and fig. 12;
	// computing it once saves the second-most expensive experiment.
	sweepOnce   sync.Once
	sweepPoints []dse.Point
}

// NewRunner creates a harness with the given scaling.
func NewRunner(cfg Config) *Runner {
	if cfg.Scale <= 0 {
		cfg.Scale = DefaultConfig().Scale
	}
	if cfg.LargeScale <= 0 {
		cfg.LargeScale = DefaultConfig().LargeScale
	}
	return &Runner{cfg: cfg, cache: map[string]*evalEntry{}}
}

type workload struct {
	name  string
	graph *dag.Graph
	kind  string // "PC", "SpTRSV", "LargePC"
	csr   *sptrsv.CSR
	// full is the full-scale (Table I) workload shape; the analytic
	// baseline models consume it so that scaled-down DPU-v2 stand-ins
	// are still compared against paper-sized CPU/GPU/DPU runs.
	full baseline.Workload
}

// suite builds the PC (a) and SpTRSV (b) workloads at the small scale.
func (r *Runner) suite() []workload {
	var ws []workload
	for _, s := range pc.Suite() {
		full := baseline.Workload{Nodes: s.TargetNodes, LongestPath: s.TargetDepth}
		ws = append(ws, workload{s.Name, pc.Build(s, r.cfg.Scale), "PC", nil, full})
	}
	for _, s := range sptrsv.Suite() {
		g, m := sptrsv.Build(s, r.cfg.Scale)
		full := baseline.Workload{Nodes: s.TargetNodes, LongestPath: s.TargetDepth}
		ws = append(ws, workload{s.Name, g, "SpTRSV", m, full})
	}
	return ws
}

func (r *Runner) largeSuite() []workload {
	var ws []workload
	for _, s := range pc.LargeSuite() {
		full := baseline.Workload{Nodes: s.TargetNodes, LongestPath: s.TargetDepth}
		ws = append(ws, workload{s.Name, pc.Build(s, r.cfg.LargeScale), "LargePC", nil, full})
	}
	return ws
}

type evalResult struct {
	compiled *compiler.Compiled
	simStats sim.Stats
	est      energy.Estimate
}

// evalEntry is one cache slot; once makes concurrent requests for the
// same key compute it a single time (errors are cached too — every
// evaluation is deterministic, so retrying cannot help).
type evalEntry struct {
	once sync.Once
	res  *evalResult
	err  error
}

// eval compiles and simulates one workload on one configuration, cached.
func (r *Runner) eval(w workload, cfg arch.Config, opts compiler.Options) (*evalResult, error) {
	key := fmt.Sprintf("%s|%v|%d|%v|%d", w.name, cfg, opts.Seed, opts.RandomBanks, opts.PartitionSize)
	r.mu.Lock()
	e, ok := r.cache[key]
	if !ok {
		e = &evalEntry{}
		r.cache[key] = e
	}
	r.mu.Unlock()
	e.once.Do(func() {
		e.res, e.err = r.evalUncached(w, cfg, opts)
	})
	return e.res, e.err
}

func (r *Runner) evalUncached(w workload, cfg arch.Config, opts compiler.Options) (*evalResult, error) {
	c, err := compiler.Compile(w.graph, cfg, opts)
	if err != nil {
		return nil, fmt.Errorf("%s on %v: %w", w.name, cfg, err)
	}
	rng := rand.New(rand.NewSource(r.cfg.Seed ^ int64(len(w.name))))
	inputs := make([]float64, len(c.Graph.Inputs()))
	for i := range inputs {
		inputs[i] = 0.25 + 0.75*rng.Float64()
	}
	sres, err := sim.Run(c, inputs)
	if err != nil {
		return nil, fmt.Errorf("%s on %v: %w", w.name, cfg, err)
	}
	return &evalResult{
		compiled: c,
		simStats: sres.Stats,
		est:      energy.EstimateRun(cfg, c.Stats.Nodes, sres.Stats, c.Prog),
	}, nil
}

// forEach runs fn(0..n-1) on a pool of r.cfg.Workers workers (<= 0: one
// per CPU) and joins the per-index errors. Output written by fn at its
// own index stays deterministically ordered.
func (r *Runner) forEach(n int, fn func(i int) error) error {
	errs := make([]error, n)
	par.ForEach(n, r.cfg.Workers, func(i int) {
		errs[i] = fn(i)
	})
	return errors.Join(errs...)
}

// Experiments lists the available experiment names in paper order.
func Experiments() []string {
	return []string{
		"table1", "table2", "table3",
		"fig1c", "fig3c", "fig6e", "fig10b", "fig10cd",
		"fig11", "fig12", "fig13", "fig14a", "fig14b",
		"progsize", "footprint",
	}
}

// Run dispatches an experiment by name.
func (r *Runner) Run(name string) (string, error) {
	switch strings.ToLower(name) {
	case "table1":
		return r.Table1()
	case "table2":
		return r.Table2()
	case "table3":
		return r.Table3()
	case "fig1c":
		return r.Fig1c()
	case "fig3c":
		return r.Fig3c()
	case "fig6e":
		return r.Fig6e()
	case "fig10b":
		return r.Fig10b()
	case "fig10cd":
		return r.Fig10cd()
	case "fig11":
		return r.Fig11()
	case "fig12":
		return r.Fig12()
	case "fig13":
		return r.Fig13()
	case "fig14a":
		return r.Fig14a()
	case "fig14b":
		return r.Fig14b()
	case "progsize":
		return r.ProgSize()
	case "footprint":
		return r.Footprint()
	}
	return "", fmt.Errorf("bench: unknown experiment %q (have %s)", name, strings.Join(Experiments(), ", "))
}

// geoMean of positive values.
func geoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// mean of values.
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
