package bench

import (
	"fmt"
	"strings"

	"dpuv2/internal/arch"
	"dpuv2/internal/baseline"
	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
	"dpuv2/internal/dse"
	"dpuv2/internal/pc"
	"dpuv2/internal/sim"
	"dpuv2/internal/spatial"
	"dpuv2/internal/sptrsv"
)

// Fig1c reproduces the motivation plot: CPU and GPU throughput versus DAG
// size, far below peak, with the GPU losing to the CPU under ~100k nodes.
func (r *Runner) Fig1c() (string, error) {
	var sb strings.Builder
	sb.WriteString("Fig 1(c) — CPU/GPU throughput vs DAG size (modeled GOPS)\n")
	fmt.Fprintf(&sb, "%10s %8s %8s %8s\n", "nodes", "n/l", "CPU", "GPU")
	for _, n := range []int{3_000, 10_000, 30_000, 100_000, 300_000, 1_000_000, 3_000_000} {
		w := baseline.Workload{Nodes: n, LongestPath: 40 + n/1500}
		fmt.Fprintf(&sb, "%10d %8.0f %8.2f %8.2f\n",
			n, float64(w.Nodes)/float64(w.LongestPath),
			baseline.Throughput(baseline.CPU, w),
			baseline.Throughput(baseline.GPU, w))
	}
	sb.WriteString("(CPU peak would be ~3400 GOPS: both platforms sit orders of magnitude below)\n")
	return sb.String(), nil
}

// Fig3c reproduces the datapath-shape study: peak utilization of a
// systolic array versus a PE tree as the input count grows.
func (r *Runner) Fig3c() (string, error) {
	g := pc.Build(pc.Suite()[0], r.cfg.Scale)
	bg, _ := dag.Binarize(g)
	var sb strings.Builder
	sb.WriteString("Fig 3(c) — peak datapath utilization vs inputs (tretail stand-in)\n")
	fmt.Fprintf(&sb, "%8s %10s %8s\n", "inputs", "systolic", "tree")
	for _, n := range []int{2, 4, 8, 16} {
		sys := spatial.SystolicPeakUtil(bg, n, 300, r.cfg.Seed+1)
		tree, err := spatial.TreePeakUtil(bg, n)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "%8d %9.0f%% %7.0f%%\n", n, 100*sys, 100*tree)
	}
	return sb.String(), nil
}

// Fig6e reproduces the interconnect study: bank conflicts per topology,
// normalized to the double-crossbar design (a).
func (r *Runner) Fig6e() (string, error) {
	topologies := []struct {
		name string
		t    arch.OutputTopology
	}{
		{"(a) crossbar/crossbar", arch.OutCrossbar},
		{"(b) crossbar/one-PE-per-layer", arch.OutPerLayer},
		{"(c) crossbar/one-PE", arch.OutPerPE},
	}
	totals := make([]float64, len(topologies))
	for ti, tp := range topologies {
		for _, w := range r.suite() {
			cfg := arch.Config{D: 3, B: 64, R: 32, Output: tp.t}
			ev, err := r.eval(w, cfg, compiler.Options{Seed: r.cfg.Seed})
			if err != nil {
				return "", err
			}
			totals[ti] += float64(ev.compiled.Stats.CopiedWords)
		}
	}
	// Normalize to the first topology with any conflicts: the conflict-
	// aware allocator can drive design (a) all the way to zero, in which
	// case (b) becomes the 1× reference.
	base := 0.0
	for _, t := range totals {
		if t > 0 {
			base = t
			break
		}
	}
	if base == 0 {
		base = 1
	}
	var sb strings.Builder
	sb.WriteString("Fig 6(e) — bank conflicts by interconnect topology (normalized)\n")
	for ti, tp := range topologies {
		fmt.Fprintf(&sb, "%-32s %10.0f conflicts %8.2fx\n", tp.name, totals[ti], totals[ti]/base)
	}
	sb.WriteString("(paper: 1x, 1.4x, 2.4x…19x — design (b) chosen for its latency/power trade-off)\n")
	return sb.String(), nil
}

// Fig10b reproduces the allocator study: conflicts under conflict-aware
// versus random bank allocation.
func (r *Runner) Fig10b() (string, error) {
	w := r.suite()[0] // tretail stand-in
	ours, err := r.eval(w, arch.MinEDP(), compiler.Options{Seed: r.cfg.Seed})
	if err != nil {
		return "", err
	}
	random, err := r.eval(w, arch.MinEDP(), compiler.Options{Seed: r.cfg.Seed, RandomBanks: true})
	if err != nil {
		return "", err
	}
	o := float64(ours.compiled.Stats.CopiedWords)
	rc := float64(random.compiled.Stats.CopiedWords)
	if o == 0 {
		o = 0.5 // avoid infinite ratio when the allocator is perfect
	}
	var sb strings.Builder
	sb.WriteString("Fig 10(b) — bank conflicts: conflict-aware vs random allocation\n")
	fmt.Fprintf(&sb, "random: %6.0f conflicts\nours:   %6.0f conflicts\nreduction: %.0fx (paper: 292x)\n",
		rc, float64(ours.compiled.Stats.CopiedWords), rc/o)
	return sb.String(), nil
}

// Fig10cd reproduces the register-occupancy traces: active registers per
// bank over time, without spilling (R large) and with spilling (R=64).
func (r *Runner) Fig10cd() (string, error) {
	w := r.suite()[3] // msnbc: a wide PC whose live set exceeds R=32
	var sb strings.Builder
	sb.WriteString("Fig 10(c,d) — active registers per bank over time\n")
	for _, variant := range []struct {
		name string
		r    int
	}{{"without spilling (R=256)", 256}, {"with spilling (R=32)", 32}} {
		cfg := arch.Config{D: 3, B: 64, R: variant.r, Output: arch.OutPerLayer}
		c, err := compiler.Compile(w.graph, cfg, compiler.Options{Seed: r.cfg.Seed})
		if err != nil {
			return "", err
		}
		m := sim.NewMachine(cfg.Normalize(), c.Prog.InitMem)
		type snap struct{ cyc, min, max, avg int }
		var snaps []snap
		m.OccTrace = func(cycle int, perBank []int) {
			if cycle%200 != 0 {
				return
			}
			mn, mx, sum := perBank[0], perBank[0], 0
			for _, o := range perBank {
				if o < mn {
					mn = o
				}
				if o > mx {
					mx = o
				}
				sum += o
			}
			snaps = append(snaps, snap{cycle, mn, mx, sum / len(perBank)})
		}
		for i, word := range c.InputWord {
			if word >= 0 {
				if err := m.SetMem(word, 0.5+float64(i%7)/10); err != nil {
					return "", err
				}
			}
		}
		if err := m.Run(c.Prog); err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "\n%s (spills=%d):\n%8s %6s %6s %6s\n", variant.name, c.Stats.SpillStores, "cycle", "min", "avg", "max")
		step := 1
		if len(snaps) > 12 {
			step = len(snaps) / 12
		}
		peak := 0
		for _, s := range snaps {
			if s.max > peak {
				peak = s.max
			}
		}
		for i := 0; i < len(snaps); i += step {
			s := snaps[i]
			fmt.Fprintf(&sb, "%8d %6d %6d %6d\n", s.cyc, s.min, s.avg, s.max)
		}
		fmt.Fprintf(&sb, "peak per-bank occupancy: %d (cap R=%d); balance max-min stays small per paper obj. J\n", peak, variant.r)
	}
	return sb.String(), nil
}

// dseWorkloads is the (scaled) suite used by the design-space sweep.
func (r *Runner) dseWorkloads() []*dag.Graph {
	// A representative subset keeps the 48-point sweep tractable; the
	// full suite can be swept with cmd/dpu-dse.
	g1 := pc.Build(pc.Suite()[0], r.cfg.Scale)
	g2 := pc.Build(pc.Suite()[2], r.cfg.Scale)
	g3, _ := sptrsv.Build(sptrsv.Suite()[1], r.cfg.Scale)
	g4, _ := sptrsv.Build(sptrsv.Suite()[3], r.cfg.Scale)
	return []*dag.Graph{g1, g2, g3, g4}
}

// dsePoints runs the 48-point sweep once per Runner and shares the
// result between the experiments that consume it (fig. 11 and fig. 12).
func (r *Runner) dsePoints() []dse.Point {
	r.sweepOnce.Do(func() {
		r.sweepPoints = dse.SweepParallel(r.dseWorkloads(), dse.Grid(), compiler.Options{Seed: r.cfg.Seed}, r.cfg.Workers)
	})
	return r.sweepPoints
}

// Fig11 reproduces the design-space exploration: latency, energy and EDP
// per operation across the 48 (D,B,R) points, and the three optima.
func (r *Runner) Fig11() (string, error) {
	points := r.dsePoints()
	var sb strings.Builder
	sb.WriteString("Fig 11 — design space exploration (per-op means over workloads)\n")
	fmt.Fprintf(&sb, "%-22s %10s %10s %12s\n", "config", "lat(ns)", "E(pJ)", "EDP(pJ*ns)")
	for _, p := range points {
		if !p.Feasible {
			fmt.Fprintf(&sb, "%-22s %10s %10s %12s (%v)\n", p.Cfg.String(), "-", "-", "-", "infeasible")
			continue
		}
		fmt.Fprintf(&sb, "%-22s %10.3f %10.2f %12.2f\n", p.Cfg.String(), p.LatencyPerOp, p.EnergyPerOp, p.EDP)
	}
	if p, ok := dse.Best(points, dse.MinLatency); ok {
		fmt.Fprintf(&sb, "min latency: %v (paper: D=3,B=64,R=128)\n", p.Cfg)
	}
	if p, ok := dse.Best(points, dse.MinEnergy); ok {
		fmt.Fprintf(&sb, "min energy:  %v (paper: D=3,B=16,R=64)\n", p.Cfg)
	}
	if p, ok := dse.Best(points, dse.MinEDP); ok {
		fmt.Fprintf(&sb, "min EDP:     %v (paper: D=3,B=64,R=32)\n", p.Cfg)
	}
	return sb.String(), nil
}

// Fig12 reproduces the latency-energy scatter with the iso-EDP curve
// through the min-EDP point.
func (r *Runner) Fig12() (string, error) {
	points := r.dsePoints()
	best, ok := dse.Best(points, dse.MinEDP)
	if !ok {
		return "", fmt.Errorf("bench: no feasible DSE point")
	}
	var sb strings.Builder
	sb.WriteString("Fig 12 — latency vs energy scatter (vs iso-EDP through min-EDP point)\n")
	fmt.Fprintf(&sb, "%-22s %10s %10s %14s\n", "config", "lat(ns)", "E(pJ)", "EDP/minEDP")
	for _, p := range points {
		if !p.Feasible {
			continue
		}
		fmt.Fprintf(&sb, "%-22s %10.3f %10.2f %14.2f\n", p.Cfg.String(), p.LatencyPerOp, p.EnergyPerOp, p.EDP/best.EDP)
	}
	fmt.Fprintf(&sb, "min-EDP point: %v, EDP=%.2f pJ*ns (paper: 6.0 at D=3,B=64,R=32)\n", best.Cfg, best.EDP)
	return sb.String(), nil
}

// Fig13 reproduces the instruction-category breakdown per workload.
func (r *Runner) Fig13() (string, error) {
	var sb strings.Builder
	sb.WriteString("Fig 13 — instruction breakdown (% of instructions)\n")
	fmt.Fprintf(&sb, "%-10s %7s %7s %7s %7s %7s %7s\n", "workload", "exec", "load", "store", "copy", "nop", "total")
	suite := r.suite()
	// Evaluate the suite on the worker pool, then format in suite order.
	evs := make([]*evalResult, len(suite))
	err := r.forEach(len(suite), func(i int) error {
		ev, err := r.eval(suite[i], arch.MinEDP(), compiler.Options{Seed: r.cfg.Seed})
		evs[i] = ev
		return err
	})
	if err != nil {
		return "", err
	}
	for i, w := range suite {
		counts := evs[i].compiled.Prog.Counts()
		total := float64(len(evs[i].compiled.Prog.Instrs))
		pct := func(k arch.Kind) float64 { return 100 * float64(counts[k]) / total }
		fmt.Fprintf(&sb, "%-10s %6.1f%% %6.1f%% %6.1f%% %6.1f%% %6.1f%% %7d\n",
			w.name, pct(arch.KindExec), pct(arch.KindLoad),
			pct(arch.KindStore)+pct(arch.KindStore4), pct(arch.KindCopy), pct(arch.KindNop), int(total))
	}
	return sb.String(), nil
}

// Fig14a reproduces the per-workload throughput comparison on the small
// suites: DPU-v2 (simulated) vs DPU/CPU/GPU (modeled).
func (r *Runner) Fig14a() (string, error) {
	var sb strings.Builder
	sb.WriteString("Fig 14(a) — throughput per workload (GOPS)\n")
	fmt.Fprintf(&sb, "%-10s %8s %8s %8s %8s\n", "workload", "DPU-v2", "DPU", "CPU", "GPU")
	var v2s, v1s, cpus, gpus []float64
	for _, w := range r.suite() {
		ev, err := r.eval(w, arch.MinEDP(), compiler.Options{Seed: r.cfg.Seed})
		if err != nil {
			return "", err
		}
		v2 := ev.est.ThroughputGOP
		v1 := baseline.Throughput(baseline.DPU1, w.full)
		cg := baseline.Throughput(baseline.CPU, w.full)
		gg := baseline.Throughput(baseline.GPU, w.full)
		v2s, v1s, cpus, gpus = append(v2s, v2), append(v1s, v1), append(cpus, cg), append(gpus, gg)
		fmt.Fprintf(&sb, "%-10s %8.2f %8.2f %8.2f %8.2f\n", w.name, v2, v1, cg, gg)
	}
	fmt.Fprintf(&sb, "%-10s %8.2f %8.2f %8.2f %8.2f   (paper avg: 4.2 / 3.1 / 1.2 / 0.4)\n",
		"mean", mean(v2s), mean(v1s), mean(cpus), mean(gpus))
	return sb.String(), nil
}

// Fig14b reproduces the large-PC throughput comparison: DPU-v2 (L) with 4
// batch cores vs SPU/CPU_SPU/CPU/GPU.
func (r *Runner) Fig14b() (string, error) {
	const batchCores = 4
	var sb strings.Builder
	sb.WriteString("Fig 14(b) — large-PC throughput (GOPS)\n")
	fmt.Fprintf(&sb, "%-10s %10s %8s %8s %8s %8s\n", "workload", "DPU-v2(L)", "SPU", "CPU_SPU", "CPU", "GPU")
	for _, w := range r.largeSuite() {
		ev, err := r.eval(w, arch.Large(), compiler.Options{Seed: r.cfg.Seed, PartitionSize: 20000})
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "%-10s %10.2f %8.2f %8.2f %8.2f %8.2f\n",
			w.name, batchCores*ev.est.ThroughputGOP,
			baseline.Throughput(baseline.SPU, w.full),
			baseline.Throughput(baseline.CPUSPU, w.full),
			baseline.Throughput(baseline.CPU, w.full),
			baseline.Throughput(baseline.GPU, w.full))
	}
	sb.WriteString("(paper avg: 34.6 / 22.2 / 1.7 / 1.8 / 4.6 — workloads here are scaled stand-ins)\n")
	return sb.String(), nil
}
