package bench

import (
	"fmt"
	"strings"

	"dpuv2/internal/arch"
	"dpuv2/internal/baseline"
	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
	"dpuv2/internal/energy"
)

// Table1 reproduces the workload-statistics table: nodes, longest path,
// average parallelism n/l, and compile time for the min-EDP design. Large
// PCs are compiled with 20k-node coarse partitions, as in the paper.
func (r *Runner) Table1() (string, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table I — workload statistics (scale=%.2f, large=%.2f)\n", r.cfg.Scale, r.cfg.LargeScale)
	fmt.Fprintf(&sb, "%-8s %-10s %9s %6s %8s %12s\n", "type", "workload", "nodes(n)", "l", "n/l", "compile(s)")
	emit := func(kind string, ws []workload, opts compiler.Options) error {
		for _, w := range ws {
			st := dag.ComputeStats(w.graph)
			ev, err := r.eval(w, arch.MinEDP(), opts)
			if err != nil {
				return err
			}
			fmt.Fprintf(&sb, "%-8s %-10s %9d %6d %8.0f %12.3f\n",
				kind, w.name, st.Nodes, st.LongestPath, st.AvgParallel, ev.compiled.Stats.CompileSeconds)
		}
		return nil
	}
	ws := r.suite()
	if err := emit("PC", ws[:6], compiler.Options{Seed: r.cfg.Seed}); err != nil {
		return "", err
	}
	if err := emit("SpTRSV", ws[6:], compiler.Options{Seed: r.cfg.Seed}); err != nil {
		return "", err
	}
	if err := emit("LargePC", r.largeSuite(), compiler.Options{Seed: r.cfg.Seed, PartitionSize: 20000}); err != nil {
		return "", err
	}
	return sb.String(), nil
}

// Table2 reproduces the area/power breakdown of the min-EDP design.
func (r *Runner) Table2() (string, error) {
	b := energy.Model(arch.MinEDP())
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table II — area and power breakdown (%v)\n", b.Cfg)
	fmt.Fprintf(&sb, "%-28s %9s %5s %9s %5s\n", "component", "mm^2", "%", "mW", "%")
	ta, tp := b.TotalArea(), b.TotalPower()
	for c := energy.Component(0); int(c) < energy.Components(); c++ {
		fmt.Fprintf(&sb, "%-28s %9.2f %5.0f %9.1f %5.0f\n",
			c.Name(), b.AreaMM2[c], 100*b.AreaMM2[c]/ta, b.PowerMW[c], 100*b.PowerMW[c]/tp)
	}
	fmt.Fprintf(&sb, "%-28s %9.2f %5s %9.1f\n", "total", ta, "", tp)
	return sb.String(), nil
}

// Table3 reproduces the cross-platform comparison: throughput, speedup
// over CPU, power and EDP, for the small suites on the min-EDP design and
// the large-PC suite on DPU-v2 (L) with 4 batch cores.
func (r *Runner) Table3() (string, error) {
	var sb strings.Builder
	sb.WriteString("Table III — performance comparison\n")

	// Small suites on the min-EDP configuration.
	var gops, powers []float64
	var lats, energies []float64
	var cpuG, gpuG, dpu1G []float64
	for _, w := range r.suite() {
		ev, err := r.eval(w, arch.MinEDP(), compiler.Options{Seed: r.cfg.Seed})
		if err != nil {
			return "", err
		}
		gops = append(gops, ev.est.ThroughputGOP)
		powers = append(powers, ev.est.PowerMW)
		lats = append(lats, ev.est.LatencyPerOp)
		energies = append(energies, ev.est.EnergyPerOp)
		cpuG = append(cpuG, baseline.Throughput(baseline.CPU, w.full))
		gpuG = append(gpuG, baseline.Throughput(baseline.GPU, w.full))
		dpu1G = append(dpu1G, baseline.Throughput(baseline.DPU1, w.full))
	}
	cpu := mean(cpuG)
	row := func(name string, g float64, powerW float64) {
		latNS := 1 / g
		epj := powerW * 1e3 * latNS
		fmt.Fprintf(&sb, "%-10s %8.2f GOPS %8.2fx %10.3f W %12.1f pJ*ns\n",
			name, g, g/cpu, powerW, epj*latNS)
	}
	fmt.Fprintf(&sb, "\nPC + SpTRSV suites (min-EDP config %v):\n", arch.MinEDP())
	fmt.Fprintf(&sb, "%-10s %13s %9s %12s %18s\n", "platform", "throughput", "speedup", "power", "EDP")
	dpu2 := mean(gops)
	fmt.Fprintf(&sb, "%-10s %8.2f GOPS %8.2fx %10.3f W %12.1f pJ*ns\n",
		"DPU-v2", dpu2, dpu2/cpu, mean(powers)/1e3, mean(energies)*mean(lats))
	row("DPU", mean(dpu1G), baseline.PowerW(baseline.DPU1, false))
	row("CPU", cpu, baseline.PowerW(baseline.CPU, false))
	row("GPU", mean(gpuG), baseline.PowerW(baseline.GPU, false))

	// Large suite on DPU-v2 (L): 4 cores running batch execution.
	const batchCores = 4
	var lgops, lpow []float64
	var lcpu, lcpuSPU, lgpu, lspu []float64
	for _, w := range r.largeSuite() {
		ev, err := r.eval(w, arch.Large(), compiler.Options{Seed: r.cfg.Seed, PartitionSize: 20000})
		if err != nil {
			return "", err
		}
		lgops = append(lgops, batchCores*ev.est.ThroughputGOP)
		lpow = append(lpow, batchCores*ev.est.PowerMW)
		lcpu = append(lcpu, baseline.Throughput(baseline.CPU, w.full))
		lcpuSPU = append(lcpuSPU, baseline.Throughput(baseline.CPUSPU, w.full))
		lgpu = append(lgpu, baseline.Throughput(baseline.GPU, w.full))
		lspu = append(lspu, baseline.Throughput(baseline.SPU, w.full))
	}
	cpuL := mean(lcpuSPU)
	fmt.Fprintf(&sb, "\nLarge PCs (DPU-v2 (L) = %v, %d batch cores):\n", arch.Large(), batchCores)
	fmt.Fprintf(&sb, "%-10s %13s %9s %12s\n", "platform", "throughput", "speedup", "power")
	dpu2L := mean(lgops)
	fmt.Fprintf(&sb, "%-10s %8.2f GOPS %8.2fx %10.3f W\n", "DPU-v2(L)", dpu2L, dpu2L/cpuL, mean(lpow)/1e3)
	for _, p := range []struct {
		name string
		g    float64
		pw   float64
	}{
		{"SPU", mean(lspu), baseline.PowerW(baseline.SPU, true)},
		{"CPU_SPU", cpuL, baseline.PowerW(baseline.CPUSPU, true)},
		{"CPU", mean(lcpu), baseline.PowerW(baseline.CPU, true)},
		{"GPU", mean(lgpu), baseline.PowerW(baseline.GPU, true)},
	} {
		fmt.Fprintf(&sb, "%-10s %8.2f GOPS %8.2fx %10.3f W\n", p.name, p.g, p.g/cpuL, p.pw)
	}
	return sb.String(), nil
}

// ProgSize reproduces the §III-B claim: the automatic write-address
// policy shrinks programs by ≈30% versus explicit write addresses.
func (r *Runner) ProgSize() (string, error) {
	var sb strings.Builder
	sb.WriteString("Program-size reduction from automatic write addressing (§III-B)\n")
	fmt.Fprintf(&sb, "%-10s %12s %12s %8s\n", "workload", "auto(bits)", "fixed(bits)", "saving")
	var savings []float64
	for _, w := range r.suite() {
		ev, err := r.eval(w, arch.MinEDP(), compiler.Options{Seed: r.cfg.Seed})
		if err != nil {
			return "", err
		}
		auto := ev.compiled.Prog.BitSize()
		fixed := ev.compiled.Prog.FixedWriteAddrBits()
		s := 1 - float64(auto)/float64(fixed)
		savings = append(savings, s)
		fmt.Fprintf(&sb, "%-10s %12d %12d %7.1f%%\n", w.name, auto, fixed, 100*s)
	}
	fmt.Fprintf(&sb, "mean saving: %.1f%% (paper: ~30%%)\n", 100*mean(savings))
	return sb.String(), nil
}

// Footprint reproduces the §IV-E claim: total instruction+data footprint
// is ≈48% smaller than a CSR-style representation of the DAG.
func (r *Runner) Footprint() (string, error) {
	var sb strings.Builder
	sb.WriteString("Memory footprint: DPU-v2 program vs CSR-style DAG encoding (§IV-E)\n")
	fmt.Fprintf(&sb, "%-10s %12s %12s %8s\n", "workload", "prog+data(B)", "CSR(B)", "saving")
	var savings []float64
	for _, w := range r.suite() {
		ev, err := r.eval(w, arch.MinEDP(), compiler.Options{Seed: r.cfg.Seed})
		if err != nil {
			return "", err
		}
		ours := ev.compiled.Prog.FootprintBytes()
		csr := csrFootprint(ev.compiled.Graph)
		s := 1 - float64(ours)/float64(csr)
		savings = append(savings, s)
		fmt.Fprintf(&sb, "%-10s %12d %12d %7.1f%%\n", w.name, ours, csr, 100*s)
	}
	fmt.Fprintf(&sb, "mean saving: %.1f%% (paper: ~48%%)\n", 100*mean(savings))
	return sb.String(), nil
}

// csrFootprint sizes the conventional representation the paper compares
// against: a CSR-like adjacency (row pointers + 32-bit edge indices), a
// per-node opcode byte, and 32-bit value storage per node.
func csrFootprint(g *dag.Graph) int {
	return 4*(g.NumNodes()+1) + 4*g.NumEdges() + g.NumNodes() + 4*g.NumNodes()
}
