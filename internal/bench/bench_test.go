package bench

import (
	"fmt"
	"strings"
	"testing"
)

func tinyRunner() *Runner {
	return NewRunner(Config{Scale: 0.04, LargeScale: 0.004})
}

func TestEveryExperimentRuns(t *testing.T) {
	r := tinyRunner()
	for _, name := range Experiments() {
		out, err := r.Run(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(out) < 20 {
			t.Errorf("%s: suspiciously short output %q", name, out)
		}
	}
}

func TestUnknownExperimentRejected(t *testing.T) {
	if _, err := tinyRunner().Run("fig99"); err == nil {
		t.Fatal("expected unknown-experiment error")
	}
}

func TestCacheReuse(t *testing.T) {
	r := tinyRunner()
	if _, err := r.Run("table1"); err != nil {
		t.Fatal(err)
	}
	n := len(r.cache)
	if n == 0 {
		t.Fatal("cache empty after table1")
	}
	// fig13 uses the same min-EDP evaluations; no new small-suite entries
	// should appear.
	if _, err := r.Run("fig13"); err != nil {
		t.Fatal(err)
	}
	if len(r.cache) != n {
		t.Errorf("cache grew from %d to %d; fig13 should fully reuse table1 evals", n, len(r.cache))
	}
}

func TestTable1ListsAllWorkloads(t *testing.T) {
	out, err := tinyRunner().Run("table1")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"tretail", "mnist", "nltcs", "msnbc", "msweb", "bnetflix",
		"bp_200", "west2021", "sieber", "jagmesh4", "rdb968", "dw2048",
		"pigs", "andes", "munin", "mildew"} {
		if !strings.Contains(out, name) {
			t.Errorf("table1 missing %s", name)
		}
	}
}

func TestFig6eOrdering(t *testing.T) {
	// The qualitative fig. 6(e) result: conflicts grow from topology (a)
	// through (c).
	r := NewRunner(Config{Scale: 0.08, LargeScale: 0.004})
	out, err := r.Run("fig6e")
	if err != nil {
		t.Fatal(err)
	}
	conflictsOf := func(prefix string) float64 {
		for _, line := range strings.Split(out, "\n") {
			if !strings.HasPrefix(line, prefix) {
				continue
			}
			fields := strings.Fields(line)
			for i, f := range fields {
				if f == "conflicts" && i > 0 {
					var v float64
					if _, err := fmt.Sscanf(fields[i-1], "%f", &v); err == nil {
						return v
					}
				}
			}
		}
		t.Fatalf("fig6e output missing row %q:\n%s", prefix, out)
		return 0
	}
	a := conflictsOf("(a)")
	bc := conflictsOf("(b)")
	c := conflictsOf("(c)")
	if !(a <= bc && bc < c) {
		t.Errorf("conflict ordering violated: a=%v b=%v c=%v", a, bc, c)
	}
}

func TestGeoMeanAndMean(t *testing.T) {
	if g := geoMean([]float64{1, 4}); g != 2 {
		t.Errorf("geoMean = %v, want 2", g)
	}
	if geoMean(nil) != 0 || geoMean([]float64{0, 1}) != 0 {
		t.Error("geoMean degenerate cases")
	}
	if m := mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("mean = %v", m)
	}
}
