package engine

import (
	"testing"

	"dpuv2/internal/arch"
	"dpuv2/internal/artifact"
	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
	"dpuv2/internal/sim"
)

// plantIllegalArtifact compiles g for (cfg, opts), semantically corrupts
// the program — the first exec swapped to pc 0, so it reads registers
// no load has written — and persists it at the key's content address.
// The mutation survives the round trip: every instruction still passes
// structural validation and the re-encoded stream is canonical, so only
// the static verifier can tell the artifact is illegal.
func plantIllegalArtifact(t *testing.T, st *artifact.Store, g *dag.Graph, cfg arch.Config, opts compiler.Options) {
	t.Helper()
	c, err := compiler.Compile(g, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	i := -1
	for j, in := range c.Prog.Instrs {
		if in.Kind == arch.KindExec {
			i = j
			break
		}
	}
	if i <= 0 {
		t.Fatal("no exec instruction to displace")
	}
	c.Prog.Instrs[0], c.Prog.Instrs[i] = c.Prog.Instrs[i], c.Prog.Instrs[0]
	a := &artifact.Artifact{Fingerprint: g.Fingerprint(), Options: opts.Normalized(), Compiled: c}
	if err := st.Put(a); err != nil {
		t.Fatal(err)
	}
}

// TestVerifyRejectsStorePlantedIllegalArtifact is the acceptance
// criterion end to end: a CRC-clean but semantically illegal artifact
// planted in the store is rejected at decode (VerifyRejects ≥ 1), the
// file is purged, and the request is still answered correctly via the
// fallback compile.
func TestVerifyRejectsStorePlantedIllegalArtifact(t *testing.T) {
	st := openStore(t)
	g := testGraph(41)
	opts := compiler.Options{}
	plantIllegalArtifact(t, st, g, testCfg, opts)

	e := New(Options{Store: st})
	inputs := testInputs(g, 0.5)
	res, err := e.Execute(g, testCfg, opts, inputs)
	if err != nil {
		t.Fatalf("request must survive a poisoned store: %v", err)
	}
	c, err := e.Compile(g, testCfg, opts) // cache hit on the recompiled program
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.CheckOutputs(c, inputs, res, 0); err != nil {
		t.Errorf("fallback compile served wrong values: %v", err)
	}
	s := e.Stats()
	if s.VerifyRejects != 1 {
		t.Errorf("VerifyRejects = %d, want 1", s.VerifyRejects)
	}
	if s.StoreHits != 0 {
		t.Errorf("StoreHits = %d, want 0 (the poisoned artifact must not count as a hit)", s.StoreHits)
	}
	if s.StoreErrors == 0 {
		t.Error("StoreErrors = 0, want the rejection surfaced to operators")
	}

	// The purge and the fallback's async persist leave a clean artifact
	// behind: a second engine decodes and verifies it.
	e.Flush()
	e2 := New(Options{Store: st})
	if _, err := e2.Compile(g, testCfg, opts); err != nil {
		t.Fatal(err)
	}
	if s2 := e2.Stats(); s2.StoreHits != 1 || s2.VerifyRejects != 0 || s2.Verified != 1 {
		t.Errorf("after heal: StoreHits=%d VerifyRejects=%d Verified=%d, want 1/0/1",
			s2.StoreHits, s2.VerifyRejects, s2.Verified)
	}
}

// TestPreloadSkipsIllegalArtifact: the warm-start walk applies the same
// gate — an illegal artifact is not cached and is purged from disk.
func TestPreloadSkipsIllegalArtifact(t *testing.T) {
	st := openStore(t)
	plantIllegalArtifact(t, st, testGraph(42), testCfg, compiler.Options{})

	e := New(Options{Store: st})
	n, err := e.Preload()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("preloaded %d artifacts, want 0", n)
	}
	s := e.Stats()
	if s.VerifyRejects != 1 || s.Preloaded != 0 || s.StoreErrors == 0 {
		t.Errorf("stats after poisoned preload: %+v", s)
	}
	if n, err := st.Len(); err != nil || n != 0 {
		t.Errorf("store holds %d artifacts (%v), want 0 — poisoned file must be purged", n, err)
	}
}

// TestDecisionInstallRejectsIllegalArtifact: a tuned decision whose
// pre-compiled program fails verification must not switch traffic —
// Resolve keeps the default config and the artifact is purged.
func TestDecisionInstallRejectsIllegalArtifact(t *testing.T) {
	st := openStore(t)
	g := testGraph(43)
	def := testCfg.Normalize()
	tuned := arch.Config{D: 1, B: 16, R: 16, Output: arch.OutCrossbar}.Normalize()
	opts := compiler.Options{}.Normalized()
	plantIllegalArtifact(t, st, g, tuned, opts)
	d := &artifact.Decision{
		Fingerprint: g.Fingerprint(),
		Config:      tuned,
		Options:     opts,
		Score:       1,
		Provenance:  artifact.Provenance{Metric: "edp", Default: def, DefaultScore: 2, Tuner: "test"},
	}
	if err := st.PutDecision(d); err != nil {
		t.Fatal(err)
	}

	e := New(Options{Store: st, AutoTune: true})
	gotCfg, _ := e.Resolve(g, def, opts)
	if gotCfg != def {
		t.Errorf("Resolve switched to %v despite an illegal tuned artifact, want default %v", gotCfg, def)
	}
	s := e.Stats()
	if s.VerifyRejects != 1 || s.StoreTuned != 0 {
		t.Errorf("VerifyRejects=%d StoreTuned=%d, want 1/0", s.VerifyRejects, s.StoreTuned)
	}
	if n, err := st.Len(); err != nil || n != 0 {
		t.Errorf("store holds %d artifacts (%v), want 0 — poisoned tuned program must be purged", n, err)
	}
}

// TestVerifyMemoizedPerStoreKey: verification cost is once per content
// address, not once per decode — an LRU-thrashed engine re-decodes the
// same artifacts repeatedly but Verified stays at the key count.
func TestVerifyMemoizedPerStoreKey(t *testing.T) {
	st := openStore(t)
	g1, g2 := testGraph(44), testGraph(45)
	seed := New(Options{Store: st})
	for _, g := range []*dag.Graph{g1, g2} {
		if _, err := seed.Compile(g, testCfg, compiler.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	seed.Flush()

	e := New(Options{Store: st, CacheSize: 1})
	for round := 0; round < 2; round++ {
		for _, g := range []*dag.Graph{g1, g2} {
			if _, err := e.Compile(g, testCfg, compiler.Options{}); err != nil {
				t.Fatal(err)
			}
		}
	}
	s := e.Stats()
	if s.StoreHits != 4 {
		t.Fatalf("StoreHits = %d, want 4 (every round re-decodes under CacheSize=1)", s.StoreHits)
	}
	if s.Verified != 2 {
		t.Errorf("Verified = %d, want 2 — one verification per store key, memoized across decodes", s.Verified)
	}
	if s.VerifyRejects != 0 {
		t.Errorf("VerifyRejects = %d, want 0", s.VerifyRejects)
	}
}

// TestVerifyCompilesAssertion: the differential debug option accepts
// genuine compiler output (rejection would mean a compiler bug, which
// the conformance matrix in internal/verify guards against).
func TestVerifyCompilesAssertion(t *testing.T) {
	e := New(Options{VerifyCompiles: true})
	g := testGraph(46)
	c, err := e.Compile(g, testCfg, compiler.Options{})
	if err != nil {
		t.Fatalf("verified compile: %v", err)
	}
	inputs := testInputs(g, 1)
	res, err := e.ExecuteCompiled(c, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.CheckOutputs(c, inputs, res, 0); err != nil {
		t.Error(err)
	}
}
