package engine

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dpuv2/internal/arch"
	"dpuv2/internal/artifact"
	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
)

// fakeTuner returns a canned decision (or error) after an optional gate,
// counting invocations — enough to drive the engine's autotune state
// machine without real sweeps.
type fakeTuner struct {
	decide func(g *dag.Graph, def arch.Config, opts compiler.Options) (*artifact.Decision, error)
	gate   chan struct{} // when non-nil, Tune blocks until it closes
	calls  atomic.Int64
}

func (f *fakeTuner) Tune(ctx context.Context, g *dag.Graph, def arch.Config, opts compiler.Options) (*artifact.Decision, error) {
	f.calls.Add(1)
	if f.gate != nil {
		<-f.gate
	}
	return f.decide(g, def, opts)
}

// tunedFor builds the canned decision: serve fp on cfg instead of def.
func tunedFor(fp dag.Fingerprint, cfg, def arch.Config, opts compiler.Options) *artifact.Decision {
	return &artifact.Decision{
		Fingerprint: fp,
		Config:      cfg.Normalize(),
		Options:     opts.Normalized(),
		Score:       1,
		Provenance: artifact.Provenance{
			Metric:       "latency",
			Default:      def.Normalize(),
			DefaultScore: 2,
			Points:       2,
			GridSize:     2,
			TunedAtUnix:  1_700_000_000,
			Tuner:        "test/1",
		},
	}
}

func tuneTestGraph() *dag.Graph {
	g := dag.New("tune-test")
	a := g.AddInput()
	b := g.AddInput()
	s := g.AddOp(dag.OpAdd, a, b)
	g.AddOp(dag.OpMul, s, a)
	return g
}

// TestResolveIdentityWithoutAutoTune: an engine without AutoTune must
// pass configs through untouched (normalization aside) and count nothing.
func TestResolveIdentityWithoutAutoTune(t *testing.T) {
	e := New(Options{})
	g := tuneTestGraph()
	def := arch.MinEDP()
	cfg, opts := e.Resolve(g, def, compiler.Options{})
	if cfg != def || opts != (compiler.Options{}).Normalized() {
		t.Fatalf("Resolve changed the request: %v %+v", cfg, opts)
	}
	if s := e.Stats(); s.TunedHits != 0 || s.Decisions != 0 {
		t.Fatalf("autotune counters moved without AutoTune: %+v", s)
	}
}

// TestAutoTuneBackgroundSwitch is the core serving contract: first sight
// serves the default while tuning in the background, and once the
// decision lands every subsequent request resolves to the tuned config.
func TestAutoTuneBackgroundSwitch(t *testing.T) {
	g := tuneTestGraph()
	def := arch.MinEDP()
	tuned := arch.MinEnergy()
	ft := &fakeTuner{
		gate: make(chan struct{}),
		decide: func(tg *dag.Graph, d arch.Config, o compiler.Options) (*artifact.Decision, error) {
			if tg.Fingerprint() != g.Fingerprint() {
				t.Error("tuner got a different graph")
			}
			if d != def {
				t.Errorf("tuner default = %v, want %v", d, def)
			}
			return tunedFor(tg.Fingerprint(), tuned, d, o), nil
		},
	}
	e := New(Options{Tuner: ft})

	// While the tune is gated, requests keep the default config.
	for i := 0; i < 3; i++ {
		cfg, _ := e.Resolve(g, def, compiler.Options{})
		if cfg != def {
			t.Fatalf("request %d resolved to %v before the tune finished", i, cfg)
		}
	}
	if s := e.Stats(); s.TuneInFlight != 1 || s.Tunes != 0 || s.TunedHits != 0 {
		t.Fatalf("mid-tune stats: %+v", s)
	}

	close(ft.gate)
	e.WaitTunes()
	if got := ft.calls.Load(); got != 1 {
		t.Fatalf("tuner invoked %d times for one fingerprint", got)
	}

	cfg, opts := e.Resolve(g, def, compiler.Options{})
	if cfg != tuned {
		t.Fatalf("post-tune request resolved to %v, want tuned %v", cfg, tuned)
	}
	if opts != (compiler.Options{}).Normalized() {
		t.Fatalf("post-tune options %+v", opts)
	}
	s := e.Stats()
	if s.TuneInFlight != 0 || s.Tunes != 1 || s.TunedHits != 1 || s.TuneErrors != 0 {
		t.Fatalf("post-tune stats: %+v", s)
	}
	// The background tune pre-compiled the tuned program: executing on
	// the resolved config must be a cache hit, not a miss.
	misses := s.Misses
	if _, err := e.Execute(g, cfg, opts, []float64{2, 3}); err != nil {
		t.Fatal(err)
	}
	if s2 := e.Stats(); s2.Misses != misses {
		t.Fatalf("first post-switch execute compiled (misses %d -> %d)", misses, s2.Misses)
	}
	if d, ok := e.Decision(g.Fingerprint()); !ok || d.Config != tuned {
		t.Fatalf("Decision() = %v, %v", d, ok)
	}
}

// TestAutoTuneSingleFlight: N concurrent first sights start exactly one
// background tune.
func TestAutoTuneSingleFlight(t *testing.T) {
	g := tuneTestGraph()
	def := arch.MinEDP()
	ft := &fakeTuner{
		gate: make(chan struct{}),
		decide: func(tg *dag.Graph, d arch.Config, o compiler.Options) (*artifact.Decision, error) {
			return tunedFor(tg.Fingerprint(), arch.MinEnergy(), d, o), nil
		},
	}
	e := New(Options{Tuner: ft})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cfg, _ := e.Resolve(g.Clone(), def, compiler.Options{})
			if cfg != def {
				t.Error("pre-decision resolve did not serve the default")
			}
		}()
	}
	wg.Wait()
	close(ft.gate)
	e.WaitTunes()
	if got := ft.calls.Load(); got != 1 {
		t.Fatalf("%d tuner invocations for one fingerprint", got)
	}
	if cfg, _ := e.Resolve(g, def, compiler.Options{}); cfg != arch.MinEnergy() {
		t.Fatalf("post-tune config %v", cfg)
	}
}

// TestAutoTuneFailurePinsDefault: a failing tuner must not be retried
// per request, and requests keep their config.
func TestAutoTuneFailurePinsDefault(t *testing.T) {
	g := tuneTestGraph()
	ft := &fakeTuner{
		decide: func(*dag.Graph, arch.Config, compiler.Options) (*artifact.Decision, error) {
			return nil, errors.New("synthetic tuner failure")
		},
	}
	e := New(Options{Tuner: ft})
	def := arch.MinEDP()
	for i := 0; i < 5; i++ {
		cfg, _ := e.Resolve(g, def, compiler.Options{})
		if cfg != def {
			t.Fatalf("failed tune changed the config to %v", cfg)
		}
		e.WaitTunes()
	}
	if got := ft.calls.Load(); got != 1 {
		t.Fatalf("failing tuner retried %d times", got)
	}
	s := e.Stats()
	if s.TuneErrors != 1 || s.Tunes != 0 || s.TunedHits != 0 {
		t.Fatalf("stats after failed tune: %+v", s)
	}
	if s.Decisions != 1 {
		t.Fatalf("failed tune not pinned: %+v", s)
	}
}

// TestAutoTuneMismatchedFingerprintRejected: a buggy tuner returning a
// decision for some other workload must not poison the table.
func TestAutoTuneMismatchedFingerprintRejected(t *testing.T) {
	g := tuneTestGraph()
	ft := &fakeTuner{
		decide: func(tg *dag.Graph, d arch.Config, o compiler.Options) (*artifact.Decision, error) {
			var wrong dag.Fingerprint
			wrong[0] = 0xEE
			return tunedFor(wrong, arch.MinEnergy(), d, o), nil
		},
	}
	e := New(Options{Tuner: ft})
	def := arch.MinEDP()
	e.Resolve(g, def, compiler.Options{})
	e.WaitTunes()
	if cfg, _ := e.Resolve(g, def, compiler.Options{}); cfg != def {
		t.Fatalf("mismatched decision applied: %v", cfg)
	}
	if s := e.Stats(); s.TuneErrors != 1 {
		t.Fatalf("mismatch not counted as error: %+v", s)
	}
}

// TestAutoTunePersistAndWarmRestart is the engine half of the restart
// acceptance criterion: a second engine over the same store serves the
// tuned config on its very first request, with zero in-process tunes.
func TestAutoTunePersistAndWarmRestart(t *testing.T) {
	dir := t.TempDir()
	st, err := artifact.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	g := tuneTestGraph()
	def := arch.MinEDP()
	tuned := arch.MinEnergy()
	ft := &fakeTuner{
		decide: func(tg *dag.Graph, d arch.Config, o compiler.Options) (*artifact.Decision, error) {
			return tunedFor(tg.Fingerprint(), tuned, d, o), nil
		},
	}
	e1 := New(Options{Tuner: ft, Store: st})
	e1.Resolve(g, def, compiler.Options{})
	e1.WaitTunes()
	e1.Flush()
	if cfg, _ := e1.Resolve(g, def, compiler.Options{}); cfg != tuned {
		t.Fatalf("first engine did not switch: %v", cfg)
	}

	// The decision and the tuned program are both on disk now.
	if _, err := st.GetDecision(g.Fingerprint()); err != nil {
		t.Fatalf("decision not persisted: %v", err)
	}

	// "Restart": a fresh engine, same store, no tuner. Preload pulls the
	// decision; the first request resolves tuned and executes without
	// compiling.
	st2, err := artifact.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e2 := New(Options{AutoTune: true, Store: st2})
	if _, err := e2.Preload(); err != nil {
		t.Fatal(err)
	}
	s := e2.Stats()
	if s.StoreTuned != 1 || s.Decisions != 1 {
		t.Fatalf("preload did not load the decision: %+v", s)
	}
	cfg, opts := e2.Resolve(g, def, compiler.Options{})
	if cfg != tuned {
		t.Fatalf("restarted engine resolved %v, want %v", cfg, tuned)
	}
	if _, err := e2.Execute(g, cfg, opts, []float64{2, 3}); err != nil {
		t.Fatal(err)
	}
	s = e2.Stats()
	if s.Tunes != 0 || s.TuneInFlight != 0 {
		t.Fatalf("restart re-tuned: %+v", s)
	}
	if s.Misses != 0 {
		t.Fatalf("restart compiled despite preloaded tuned artifact: %+v", s)
	}
	if s.TunedHits != 1 {
		t.Fatalf("tuned hit not counted: %+v", s)
	}
}

// TestAutoTuneStoreProbeWithoutPreload: even without Preload, the first
// request for a stored fingerprint finds the decision by probing the
// store once (and only once — the negative path pins).
func TestAutoTuneStoreProbeWithoutPreload(t *testing.T) {
	dir := t.TempDir()
	st, err := artifact.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	g := tuneTestGraph()
	def := arch.MinEDP()
	tuned := arch.MinEnergy()
	d := tunedFor(g.Fingerprint(), tuned, def, compiler.Options{})
	if err := st.PutDecision(d); err != nil {
		t.Fatal(err)
	}
	e := New(Options{AutoTune: true, Store: st})
	if cfg, _ := e.Resolve(g, def, compiler.Options{}); cfg != tuned {
		t.Fatalf("store probe missed the decision: %v", cfg)
	}
	if s := e.Stats(); s.StoreTuned != 1 || s.TunedHits != 1 {
		t.Fatalf("probe stats: %+v", s)
	}

	// An unknown fingerprint with no tuner: probed once, then pinned.
	g2 := dag.New("other")
	a := g2.AddInput()
	g2.AddOp(dag.OpAdd, a, a)
	for i := 0; i < 3; i++ {
		if cfg, _ := e.Resolve(g2, def, compiler.Options{}); cfg != def {
			t.Fatalf("undecided workload changed config: %v", cfg)
		}
	}
	if s := e.Stats(); s.Decisions != 2 {
		t.Fatalf("negative probe not pinned: %+v", s)
	}
}

// TestAutoTuneInFlightCap: first sights beyond the tuning-concurrency
// bound are deferred (served on the default, no tune started, nothing
// pinned) and retried once a slot frees.
func TestAutoTuneInFlightCap(t *testing.T) {
	graphs := make([]*dag.Graph, 3)
	for i := range graphs {
		g := dag.New("capped")
		a := g.AddInput()
		b := g.AddInput()
		s := g.AddOp(dag.OpAdd, a, b)
		for j := 0; j <= i; j++ { // distinct structure per graph
			s = g.AddOp(dag.OpMul, s, a)
		}
		graphs[i] = g
	}
	def := arch.MinEDP()
	ft := &fakeTuner{
		gate: make(chan struct{}),
		decide: func(tg *dag.Graph, d arch.Config, o compiler.Options) (*artifact.Decision, error) {
			return tunedFor(tg.Fingerprint(), arch.MinEnergy(), d, o), nil
		},
	}
	e := New(Options{Tuner: ft})

	// The first maxTunesInFlight fingerprints start tunes; the next is
	// deferred, not pinned.
	for _, g := range graphs {
		if cfg, _ := e.Resolve(g, def, compiler.Options{}); cfg != def {
			t.Fatalf("pre-decision resolve served %v", cfg)
		}
	}
	if s := e.Stats(); s.TuneInFlight != int64(maxTunesInFlight) {
		t.Fatalf("in-flight tunes = %d, want the cap %d", s.TuneInFlight, maxTunesInFlight)
	}
	close(ft.gate)
	e.WaitTunes()
	if got := ft.calls.Load(); got != int64(maxTunesInFlight) {
		t.Fatalf("%d tunes ran, cap is %d", got, maxTunesInFlight)
	}

	// The deferred fingerprint retries now that slots are free.
	if cfg, _ := e.Resolve(graphs[2], def, compiler.Options{}); cfg != def {
		t.Fatalf("deferred fingerprint's retry request served %v", cfg)
	}
	e.WaitTunes()
	if cfg, _ := e.Resolve(graphs[2], def, compiler.Options{}); cfg != arch.MinEnergy() {
		t.Fatalf("deferred fingerprint never tuned: %v", cfg)
	}
	if got := ft.calls.Load(); got != 3 {
		t.Fatalf("%d total tunes, want 3", got)
	}
}

// TestAutoTuneDecisionTableBound: a full decision table stops growing —
// new fingerprints serve their defaults with no probe, tune or pin.
func TestAutoTuneDecisionTableBound(t *testing.T) {
	old := maxDecisions
	maxDecisions = 2
	defer func() { maxDecisions = old }()

	ft := &fakeTuner{
		decide: func(tg *dag.Graph, d arch.Config, o compiler.Options) (*artifact.Decision, error) {
			return tunedFor(tg.Fingerprint(), arch.MinEnergy(), d, o), nil
		},
	}
	e := New(Options{Tuner: ft})
	def := arch.MinEDP()
	for i := 0; i < 5; i++ {
		g := dag.New("bounded")
		a := g.AddInput()
		s := g.AddOp(dag.OpAdd, a, a)
		for j := 0; j <= i; j++ {
			s = g.AddOp(dag.OpMul, s, a)
		}
		e.Resolve(g, def, compiler.Options{})
		e.WaitTunes()
	}
	s := e.Stats()
	if s.Decisions > 2 {
		t.Fatalf("decision table grew past its bound: %+v", s)
	}
	if s.Tunes > 2 {
		t.Fatalf("tunes ran for fingerprints beyond the table bound: %+v", s)
	}
}

// TestAutoTuneStoreErrorDefers: a store read failure is not a miss — it
// must not launch a re-tune (whose last-wins persist would clobber the
// offline decision the IO error hid) and must not pin the default; the
// fingerprint stays unknown and retries later.
func TestAutoTuneStoreErrorDefers(t *testing.T) {
	dir := t.TempDir()
	st, err := artifact.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	g := tuneTestGraph()
	// A directory where the decision file should be makes os.ReadFile
	// fail with a non-NotFound error — the transient-IO stand-in.
	if err := os.Mkdir(filepath.Join(dir, g.Fingerprint().String()+artifact.DecisionExt), 0o755); err != nil {
		t.Fatal(err)
	}
	ft := &fakeTuner{
		decide: func(tg *dag.Graph, d arch.Config, o compiler.Options) (*artifact.Decision, error) {
			return tunedFor(tg.Fingerprint(), arch.MinEnergy(), d, o), nil
		},
	}
	e := New(Options{Tuner: ft, Store: st})
	def := arch.MinEDP()
	for i := 0; i < 3; i++ {
		if cfg, _ := e.Resolve(g, def, compiler.Options{}); cfg != def {
			t.Fatalf("request %d served %v during store outage", i, cfg)
		}
		e.WaitTunes()
	}
	if got := ft.calls.Load(); got != 0 {
		t.Fatalf("store outage launched %d re-tunes", got)
	}
	s := e.Stats()
	if s.Decisions != 0 {
		t.Fatalf("store outage pinned the fingerprint: %+v", s)
	}
	if s.StoreErrors == 0 {
		t.Fatalf("store outage not surfaced: %+v", s)
	}

	// Outage over (the obstruction is gone, a real decision is there):
	// the next request finds it.
	if err := os.Remove(filepath.Join(dir, g.Fingerprint().String()+artifact.DecisionExt)); err != nil {
		t.Fatal(err)
	}
	if err := st.PutDecision(tunedFor(g.Fingerprint(), arch.MinEnergy(), def, compiler.Options{})); err != nil {
		t.Fatal(err)
	}
	if cfg, _ := e.Resolve(g, def, compiler.Options{}); cfg != arch.MinEnergy() {
		t.Fatalf("post-outage request served %v, want the stored decision", cfg)
	}
}

// TestPreloadSkipsMisaddressedDecision: Preload must apply the same
// identity check as GetDecision — a .dputune filed under the wrong
// fingerprint (stale copy, hand-rename) must not shadow the correctly
// addressed decision for the fingerprint it embeds, whatever the walk
// order.
func TestPreloadSkipsMisaddressedDecision(t *testing.T) {
	dir := t.TempDir()
	st, err := artifact.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	g := tuneTestGraph()
	def := arch.MinEDP()
	current := tunedFor(g.Fingerprint(), arch.MinEnergy(), def, compiler.Options{})
	if err := st.PutDecision(current); err != nil {
		t.Fatal(err)
	}
	// A stale decision for the same fingerprint (different config),
	// filed under an address that sorts before the real one.
	stale := tunedFor(g.Fingerprint(), arch.MinLatency(), def, compiler.Options{})
	b, err := artifact.EncodeDecisionBytes(stale)
	if err != nil {
		t.Fatal(err)
	}
	var first dag.Fingerprint // all-zero hex sorts first
	if err := os.WriteFile(filepath.Join(dir, first.String()+artifact.DecisionExt), b, 0o644); err != nil {
		t.Fatal(err)
	}

	e := New(Options{AutoTune: true, Store: st})
	if _, err := e.Preload(); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.Decisions != 1 || s.StoreTuned != 1 {
		t.Fatalf("misaddressed decision installed: %+v", s)
	}
	if s.StoreErrors == 0 {
		t.Fatalf("misaddressed decision not surfaced: %+v", s)
	}
	if cfg, _ := e.Resolve(g, def, compiler.Options{}); cfg != arch.MinEnergy() {
		t.Fatalf("stale misaddressed decision shadowed the current one: %v", cfg)
	}
}

// TestPreloadHonorsDecisionTableBound: Preload must stop installing
// decisions at the table cap instead of bypassing it.
func TestPreloadHonorsDecisionTableBound(t *testing.T) {
	old := maxDecisions
	maxDecisions = 2
	defer func() { maxDecisions = old }()

	st, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	def := arch.MinEDP()
	for i := 0; i < 4; i++ {
		g := dag.New("preload-bound")
		a := g.AddInput()
		s := g.AddOp(dag.OpAdd, a, a)
		for j := 0; j <= i; j++ {
			s = g.AddOp(dag.OpMul, s, a)
		}
		if err := st.PutDecision(tunedFor(g.Fingerprint(), arch.MinEnergy(), def, compiler.Options{})); err != nil {
			t.Fatal(err)
		}
	}
	e := New(Options{AutoTune: true, Store: st})
	if _, err := e.Preload(); err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.Decisions > 2 || s.StoreTuned > 2 {
		t.Fatalf("preload bypassed the decision-table bound: %+v", s)
	}
}

// TestTuneStatsSnapshot covers the /stats-facing view.
func TestTuneStatsSnapshot(t *testing.T) {
	g := tuneTestGraph()
	def := arch.MinEDP()
	tuned := arch.MinEnergy()
	ft := &fakeTuner{
		decide: func(tg *dag.Graph, d arch.Config, o compiler.Options) (*artifact.Decision, error) {
			return tunedFor(tg.Fingerprint(), tuned, d, o), nil
		},
	}
	e := New(Options{Tuner: ft})
	e.Resolve(g, def, compiler.Options{})
	e.WaitTunes()
	e.Resolve(g, def, compiler.Options{})

	ts := e.TuneStats()
	if !ts.Enabled || ts.Decisions != 1 || ts.Tunes != 1 || ts.TunedHits != 1 {
		t.Fatalf("tune stats: %+v", ts)
	}
	if len(ts.Workloads) != 1 {
		t.Fatalf("workloads: %+v", ts.Workloads)
	}
	w := ts.Workloads[0]
	if w.Fingerprint != g.Fingerprint().String() || w.Config != tuned.String() ||
		w.Default != def.String() || w.Source != "tuned" || w.Pinned {
		t.Fatalf("workload row: %+v", w)
	}

	// Disabled engine reports Enabled=false.
	if ts := New(Options{}).TuneStats(); ts.Enabled {
		t.Fatal("autotune reported enabled on a plain engine")
	}
}

// TestStatsPoolsPerConfig: executing on two configs must surface two
// pool entries, so operators can watch a tuned config's pool grow.
func TestStatsPoolsPerConfig(t *testing.T) {
	e := New(Options{})
	g := tuneTestGraph()
	for _, cfg := range []arch.Config{arch.MinEDP(), arch.MinEnergy()} {
		if _, err := e.Execute(g, cfg, compiler.Options{}, []float64{1, 2}); err != nil {
			t.Fatal(err)
		}
	}
	s := e.Stats()
	for _, cfg := range []arch.Config{arch.MinEDP(), arch.MinEnergy()} {
		if s.Pools[cfg.String()] < 1 {
			t.Fatalf("pool for %v not visible in stats: %+v", cfg, s.Pools)
		}
	}
}

// TestAutoTuneConcurrentResolveRace exercises the decision table under
// the race detector: concurrent first sights, tuning completion and
// readers must not tear.
func TestAutoTuneConcurrentResolveRace(t *testing.T) {
	g := tuneTestGraph()
	def := arch.MinEDP()
	ft := &fakeTuner{
		decide: func(tg *dag.Graph, d arch.Config, o compiler.Options) (*artifact.Decision, error) {
			time.Sleep(time.Millisecond)
			return tunedFor(tg.Fingerprint(), arch.MinEnergy(), d, o), nil
		},
	}
	e := New(Options{Tuner: ft})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				cfg, _ := e.Resolve(g, def, compiler.Options{})
				if cfg != def && cfg != arch.MinEnergy() {
					t.Errorf("impossible config %v", cfg)
					return
				}
				e.Stats()
				e.TuneStats()
			}
		}()
	}
	wg.Wait()
	e.WaitTunes()
	if got := ft.calls.Load(); got != 1 {
		t.Fatalf("%d tunes under concurrency", got)
	}
}
