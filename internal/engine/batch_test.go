package engine

import (
	"testing"

	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
)

// TestExecuteBatchIntoMatchesReference checks the chunked batch path
// against the reference evaluator for every item, including a malformed
// item in the middle of the batch (its error must stay in its own slot
// and not disturb neighbours executed on the same leased machine).
func TestExecuteBatchIntoMatchesReference(t *testing.T) {
	for _, workers := range []int{1, 4} {
		e := New(Options{Workers: workers})
		g := testGraph(42)
		c, err := e.Compile(g, testCfg, compiler.Options{})
		if err != nil {
			t.Fatal(err)
		}
		nSinks := len(c.Graph.Outputs())
		const n = 9
		batches := make([][]float64, n)
		outs := make([][]float64, n)
		cycles := make([]int, n)
		errs := make([]error, n)
		for i := range batches {
			batches[i] = testInputs(g, float64(i+1))
			outs[i] = make([]float64, nSinks)
		}
		batches[4] = batches[4][:1] // wrong arity → per-item error
		e.ExecuteBatchInto(c, batches, outs, cycles, errs)
		for i := 0; i < n; i++ {
			if i == 4 {
				if errs[4] == nil {
					t.Errorf("workers=%d: malformed item 4 did not error", workers)
				}
				continue
			}
			if errs[i] != nil {
				t.Fatalf("workers=%d item %d: %v", workers, i, errs[i])
			}
			if cycles[i] <= 0 {
				t.Errorf("workers=%d item %d: missing cycles", workers, i)
			}
			want, err := dag.Eval(c.Graph, batches[i])
			if err != nil {
				t.Fatal(err)
			}
			for j, sink := range c.Graph.Outputs() {
				if outs[i][j] != want[sink] {
					t.Errorf("workers=%d item %d sink %d = %v, want %v", workers, i, sink, outs[i][j], want[sink])
				}
			}
		}
	}
}

// TestExecuteBatchIntoSerialAllocFree pins the scheduler hot path's
// allocation contract: once the pool and caches are warm, a
// single-worker batch execution allocates nothing per item.
func TestExecuteBatchIntoSerialAllocFree(t *testing.T) {
	e := New(Options{Workers: 1})
	g := testGraph(7)
	c, err := e.Compile(g, testCfg, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	batches := make([][]float64, n)
	outs := make([][]float64, n)
	cycles := make([]int, n)
	errs := make([]error, n)
	for i := range batches {
		batches[i] = testInputs(g, 1)
		outs[i] = make([]float64, len(c.Graph.Outputs()))
	}
	e.ExecuteBatchInto(c, batches, outs, cycles, errs) // warm pool + caches
	allocs := testing.AllocsPerRun(20, func() {
		e.ExecuteBatchInto(c, batches, outs, cycles, errs)
	})
	if allocs > 0 {
		t.Errorf("serial ExecuteBatchInto allocates %v objects per batch, want 0", allocs)
	}
}

func TestExecuteAsync(t *testing.T) {
	e := New(Options{})
	g := testGraph(3)
	in := testInputs(g, 2)
	res := <-e.ExecuteAsync(g, testCfg, compiler.Options{}, in)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	c, err := e.Compile(g, testCfg, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := dag.Eval(c.Graph, in)
	if err != nil {
		t.Fatal(err)
	}
	for sink, got := range res.Result.Outputs {
		if got != want[sink] {
			t.Errorf("sink %d = %v, want %v", sink, got, want[sink])
		}
	}
	// Error path: wrong arity surfaces on the channel.
	if res := <-e.ExecuteAsync(g, testCfg, compiler.Options{}, in[:1]); res.Err == nil {
		t.Error("wrong-arity ExecuteAsync did not error")
	}
}
