package engine

import (
	"sync"
	"testing"

	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
)

// TestConcurrentSingleFlightAndIsolation is the engine's load test, in
// the spirit of a k6-style client hammering a service: N goroutines
// repeatedly submit M distinct graphs against one engine and verify
// every response. Run under -race (CI does) it checks three contracts at
// once:
//
//   - single-flight: exactly one compilation per (graph, config) even
//     though all goroutines request every graph concurrently;
//   - no cross-request bleed: each goroutine uses its own input scale,
//     and every output must match the reference for those inputs even
//     though machines are pooled and reset between requests;
//   - the LRU and stats stay coherent under contention.
func TestConcurrentSingleFlightAndIsolation(t *testing.T) {
	const (
		workers = 8
		iters   = 20
		nGraphs = 6
	)
	graphs := make([]*dag.Graph, nGraphs)
	for i := range graphs {
		graphs[i] = testGraph(int64(100 + i))
	}
	// Cache comfortably holds every graph, so each compiles exactly once.
	e := New(Options{CacheSize: nGraphs})

	// Reference outputs are computed against the binarized graph each
	// compiled program carries, per (graph, scale) pair.
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			scale := float64(w + 1)
			out := make([]float64, 0, 8)
			for it := 0; it < iters; it++ {
				for gi, g := range graphs {
					c, err := e.Compile(g, testCfg, compiler.Options{})
					if err != nil {
						errc <- err
						return
					}
					in := testInputs(g, scale)
					outs := c.Graph.Outputs()
					out = out[:0]
					for range outs {
						out = append(out, 0)
					}
					if _, err := e.ExecuteInto(c, in, out); err != nil {
						errc <- err
						return
					}
					want, err := dag.Eval(c.Graph, in)
					if err != nil {
						errc <- err
						return
					}
					for i, sink := range outs {
						if out[i] != want[sink] {
							t.Errorf("worker %d graph %d iter %d: sink %d = %v, want %v (cross-request bleed?)",
								w, gi, it, sink, out[i], want[sink])
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	st := e.Stats()
	if st.Misses != nGraphs {
		t.Errorf("misses = %d, want exactly %d (one compile per graph)", st.Misses, nGraphs)
	}
	wantCalls := int64(workers * iters * nGraphs)
	if st.Hits+st.Misses != wantCalls {
		t.Errorf("hits+misses = %d, want %d", st.Hits+st.Misses, wantCalls)
	}
	if st.Executions != wantCalls {
		t.Errorf("executions = %d, want %d", st.Executions, wantCalls)
	}
	if st.InFlight != 0 {
		t.Errorf("in-flight = %d after quiescence, want 0", st.InFlight)
	}
}

// TestConcurrentChurnAgainstSmallLRU drives more distinct graphs than
// the cache holds from many goroutines: recompiles are expected (misses
// > graphs), but every response must still verify and the cache must
// never exceed its bound by more than the in-flight compilations.
func TestConcurrentChurnAgainstSmallLRU(t *testing.T) {
	const (
		workers = 6
		iters   = 8
		nGraphs = 5
		cache   = 2
	)
	graphs := make([]*dag.Graph, nGraphs)
	for i := range graphs {
		graphs[i] = testGraph(int64(200 + i))
	}
	e := New(Options{CacheSize: cache})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			scale := 0.5 + float64(w)
			for it := 0; it < iters; it++ {
				// Walk the graphs in a worker-dependent order to maximize
				// cache churn.
				for k := 0; k < nGraphs; k++ {
					g := graphs[(k*(w+1)+it)%nGraphs]
					in := testInputs(g, scale)
					res, err := e.Execute(g, testCfg, compiler.Options{}, in)
					if err != nil {
						t.Errorf("worker %d: %v", w, err)
						return
					}
					c, err := e.Compile(g, testCfg, compiler.Options{})
					if err != nil {
						t.Errorf("worker %d: %v", w, err)
						return
					}
					want, _ := dag.Eval(c.Graph, in)
					for sink, got := range res.Outputs {
						if got != want[sink] {
							t.Errorf("worker %d: sink %d = %v, want %v", w, sink, got, want[sink])
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	st := e.Stats()
	if st.Evictions == 0 {
		t.Error("expected evictions against a cache smaller than the working set")
	}
	if st.Cached > cache {
		t.Errorf("cached = %d exceeds the bound %d at quiescence", st.Cached, cache)
	}
}
