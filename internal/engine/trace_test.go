package engine

// Tests for the traced engine entry points: CompileTraced's resolve
// span reports the cache outcome and nests where a miss actually went
// (compile, or store_decode on a store hit), and
// ExecuteBatchIntoTraced brackets the batch window with its attrs.

import (
	"testing"
	"time"

	"dpuv2/internal/compiler"
	"dpuv2/internal/trace"
)

func spanIndex(rec *trace.Record, stage string) int {
	for i := range rec.Spans {
		if rec.Spans[i].Stage == stage {
			return i
		}
	}
	return -1
}

func TestCompileTracedSpans(t *testing.T) {
	e := New(Options{})
	tracer := trace.New(trace.Options{SampleEvery: 1, Service: "test"})
	g := testGraph(21)

	tr := tracer.Start(trace.ID{}, "request", time.Time{})
	if _, err := e.CompileTraced(g, testCfg, compiler.Options{}, tr); err != nil {
		t.Fatal(err)
	}
	miss := tracer.Finish(tr)

	ri := spanIndex(miss, "resolve")
	ci := spanIndex(miss, "compile")
	if ri < 0 || ci < 0 {
		t.Fatalf("miss trace lacks resolve/compile spans: %+v", miss.Spans)
	}
	rsp, csp := miss.Spans[ri], miss.Spans[ci]
	if rsp.Attrs["cache_hit"] != false {
		t.Fatalf("resolve attrs %+v, want cache_hit=false on a cold cache", rsp.Attrs)
	}
	if rsp.Attrs["fingerprint"] != g.Fingerprint().Short() {
		t.Fatalf("resolve attrs %+v, want the graph fingerprint", rsp.Attrs)
	}
	if csp.Parent != ri {
		t.Fatalf("compile span parent %d, want nested under resolve %d", csp.Parent, ri)
	}
	if csp.Attrs["nodes"] == nil {
		t.Fatalf("compile attrs %+v, want a nodes count", csp.Attrs)
	}
	if spanIndex(miss, "store_decode") >= 0 {
		t.Fatal("store_decode span recorded with no store configured")
	}

	// Same key again: a hit resolves without compiling.
	tr = tracer.Start(trace.ID{}, "request", time.Time{})
	if _, err := e.CompileTraced(g, testCfg, compiler.Options{}, tr); err != nil {
		t.Fatal(err)
	}
	hit := tracer.Finish(tr)
	hi := spanIndex(hit, "resolve")
	if hi < 0 || hit.Spans[hi].Attrs["cache_hit"] != true {
		t.Fatalf("hit trace resolve %+v, want cache_hit=true", hit.Spans)
	}
	if spanIndex(hit, "compile") >= 0 {
		t.Fatal("cache hit still recorded a compile span")
	}
}

func TestCompileTracedStoreDecodeSpan(t *testing.T) {
	st := openStore(t)
	g := testGraph(22)

	// First engine persists the artifact.
	e1 := New(Options{Store: st})
	if _, err := e1.Compile(g, testCfg, compiler.Options{}); err != nil {
		t.Fatal(err)
	}
	e1.Flush()

	// Second engine's in-memory miss is answered by the store: the
	// resolve span nests a store_decode hit instead of a compile.
	e2 := New(Options{Store: st})
	tracer := trace.New(trace.Options{SampleEvery: 1})
	tr := tracer.Start(trace.ID{}, "request", time.Time{})
	if _, err := e2.CompileTraced(g, testCfg, compiler.Options{}, tr); err != nil {
		t.Fatal(err)
	}
	rec := tracer.Finish(tr)

	ri := spanIndex(rec, "resolve")
	si := spanIndex(rec, "store_decode")
	if ri < 0 || si < 0 {
		t.Fatalf("trace lacks resolve/store_decode spans: %+v", rec.Spans)
	}
	ssp := rec.Spans[si]
	if ssp.Parent != ri || ssp.Attrs["hit"] != true {
		t.Fatalf("store_decode span %+v, want a hit nested under resolve %d", ssp, ri)
	}
	if spanIndex(rec, "compile") >= 0 {
		t.Fatal("store hit still recorded a compile span")
	}
}

func TestExecuteBatchIntoTracedSpan(t *testing.T) {
	e := New(Options{})
	g := testGraph(23)
	c, err := e.Compile(g, testCfg, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	in := testInputs(g, 1)
	batches := [][]float64{in, in, in}
	outs := make([][]float64, len(batches))
	for i := range outs {
		outs[i] = make([]float64, len(g.Outputs()))
	}
	cycles := make([]int, len(batches))
	errs := make([]error, len(batches))

	tracer := trace.New(trace.Options{SampleEvery: 1})
	tr := tracer.Start(trace.ID{}, "request", time.Time{})
	e.ExecuteBatchIntoTraced(c, batches, outs, cycles, errs, tr)
	rec := tracer.Finish(tr)

	ei := spanIndex(rec, "execute")
	if ei < 0 {
		t.Fatalf("no execute span: %+v", rec.Spans)
	}
	esp := rec.Spans[ei]
	if esp.Attrs["batch_size"] != int64(len(batches)) || esp.Attrs["backend"] == nil {
		t.Fatalf("execute attrs %+v, want batch_size=%d and a backend", esp.Attrs, len(batches))
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("item %d failed: %v", i, err)
		}
	}
}
