// Package engine is the compile-once/execute-many serving layer of the
// DPU-v2 reproduction. The paper's premise is that a DAG workload is
// compiled once for a fixed hardware configuration and then executed
// many times with different inputs; the engine amortizes exactly that:
//
//   - a content-addressed compile cache keyed by the graph's stable
//     Fingerprint plus the (normalized) hardware configuration and
//     compiler options, LRU-bounded, with single-flight admission so
//     concurrent requests for the same graph compile it exactly once;
//
//   - a per-configuration pool of sim.Executor instances — functional
//     fast-path evaluators by default, cycle-accurate machines via
//     Options.Backend (Machine.Reset makes a pooled machine
//     observationally identical to a fresh one) — so steady-state
//     execution allocates nothing whichever backend serves;
//
//   - batched execution fanning input sets out over the internal/par
//     worker pool with per-item error capture;
//
//   - an optional persistent backing store of compiled-program
//     artifacts (internal/artifact): a compile miss consults the store
//     before compiling, a fresh compilation is persisted asynchronously,
//     and Preload warm-starts the cache from the store at boot so a
//     restarted server never compiles its resident population again;
//
//   - an atomically maintained Stats snapshot for observability.
package engine

import (
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"dpuv2/internal/arch"
	"dpuv2/internal/artifact"
	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
	"dpuv2/internal/par"
	"dpuv2/internal/sim"
	"dpuv2/internal/trace"
	"dpuv2/internal/verify"
)

// Options configure an Engine; the zero value is a production-ready
// default.
type Options struct {
	// CacheSize bounds the number of cached compiled programs (LRU
	// eviction beyond it). Default 128.
	CacheSize int
	// PoolSize bounds the idle machines retained per configuration;
	// machines beyond it are dropped to the GC. Default 2×GOMAXPROCS.
	PoolSize int
	// Workers sizes the ExecuteBatch worker pool. Default GOMAXPROCS.
	Workers int
	// Store, when non-nil, backs the compile cache with persisted
	// artifacts: misses consult it before compiling, successful
	// compilations are persisted to it asynchronously (Flush waits for
	// them), and Preload fills the cache from it. With AutoTune it also
	// carries the .dputune decision records.
	Store *artifact.Store
	// AutoTune routes requests through the per-fingerprint decision
	// table (see Resolve): a workload with a tuned decision — resident,
	// in the Store, or produced by the Tuner — is served on the tuned
	// configuration instead of the caller's.
	AutoTune bool
	// Tuner, when non-nil, tunes undecided fingerprints in the
	// background on first sight (implies AutoTune). *tune.Tuner is the
	// production implementation.
	Tuner Tuner
	// VerifyCompiles statically verifies every fresh compilation before
	// it is served or persisted — the differential debug assertion
	// "everything we emit must verify". The compiler is already proven
	// against the verifier by the conformance matrix, so production
	// leaves this off; test and tuning rigs turn it on to catch a
	// compiler regression at its source instead of at the next decode.
	VerifyCompiles bool
	// DecisionGuard vets a decision's configuration before it is
	// applied: a decision whose config fails the guard is pinned to the
	// default instead of served (and surfaced in StoreErrors or
	// TuneErrors, by source), so a hand-staged store file can never
	// switch traffic onto a config the request path would have rejected
	// — and never shows up as a tuned hit it didn't earn. Nil defaults
	// to CheckMachineBounds; install a custom policy (or a func
	// returning nil) to widen it.
	DecisionGuard func(arch.Config) error
	// Backend selects the execution backend the engine leases from its
	// per-config pools. The default, sim.BackendFunctional, evaluates
	// the compiled schedule directly — bit-exact with the cycle-accurate
	// machine (the conformance matrix and fuzz layer pin it) and much
	// faster, which is right for serving: clients need outputs, not
	// micro-architectural statistics. Select sim.BackendCycleAccurate
	// for callers that need the machine's full Stats (reg/mem traffic,
	// peak occupancy); cycle *counts* are exact under both backends —
	// the schedule is static, so Cycles is a compile-time constant.
	Backend sim.Backend
}

// CheckMachineBounds rejects configurations whose machine state would
// be unreasonably large before anything is allocated.
// arch.Config.Validate checks constructibility, not size: B·R float64
// registers (plus valid bits) and DataMemWords words are allocated per
// pooled machine, so an unbounded config would OOM a server. The caps
// comfortably cover every configuration of the paper (DPU-v2 (L) is
// B=64, R=256, 4M-word memory). The serving layer applies the same
// bounds to client-requested configs, and it is the default
// DecisionGuard, so autotuning decisions cannot bypass them. The
// annealing search (dse.SearchAnneal) reuses this check as its default
// mutation guard, so the search never proposes a configuration the
// serving layer would refuse to instantiate.
func CheckMachineBounds(cfg arch.Config) error {
	cfg = cfg.Normalize()
	const (
		maxB        = 1 << 10
		maxR        = 1 << 12
		maxMemWords = 1 << 24 // 128 MB of float64
	)
	if cfg.B > maxB || cfg.R > maxR {
		return fmt.Errorf("register file %dx%d exceeds the serving limit %dx%d", cfg.B, cfg.R, maxB, maxR)
	}
	if cfg.DataMemWords > maxMemWords {
		return fmt.Errorf("data memory %d words exceeds the serving limit %d", cfg.DataMemWords, maxMemWords)
	}
	return nil
}

func (o Options) normalize() Options {
	if o.CacheSize <= 0 {
		o.CacheSize = 128
	}
	if o.PoolSize <= 0 {
		o.PoolSize = 2 * runtime.GOMAXPROCS(0)
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Tuner != nil {
		o.AutoTune = true
	}
	if o.DecisionGuard == nil {
		o.DecisionGuard = CheckMachineBounds
	}
	return o
}

// Stats is a point-in-time snapshot of engine activity.
type Stats struct {
	// Backend is the active execution backend ("functional" or
	// "cycle"), surfaced so /stats shows which path answers traffic.
	Backend string
	// Hits counts Compile calls answered from the cache (including
	// waits on a compilation already in flight).
	Hits int64
	// Misses counts Compile calls that started a compilation.
	Misses int64
	// Evictions counts cached programs discarded by the LRU bound.
	Evictions int64
	// Cached is the number of programs currently cached.
	Cached int
	// InFlight is the number of executions currently running.
	InFlight int64
	// Executions counts completed successful executions.
	Executions int64
	// StoreHits counts compile misses answered by decoding a persisted
	// artifact instead of compiling.
	StoreHits int64
	// StoreMisses counts compile misses the backing store could not
	// answer (no artifact for the key).
	StoreMisses int64
	// StoreErrors counts failed store interactions: artifacts that would
	// not decode and persists that failed. The engine degrades to
	// compiling; the counter is how operators notice a damaged store.
	StoreErrors int64
	// Preloaded counts artifacts loaded into the cache by Preload.
	Preloaded int64
	// Verified counts decoded artifacts that passed static verification
	// at an engine trust boundary (store decode, preload, decision
	// install). Re-admissions of an already-verified content address are
	// memoized and not re-counted, so this tracks distinct verified keys.
	Verified int64
	// VerifyRejects counts artifacts rejected by the static verifier —
	// treated exactly like checksum failures: the engine purges the file
	// and falls back to compiling. A nonzero value means something wrote
	// illegal programs into the store.
	VerifyRejects int64
	// TunedHits counts requests Resolve served on a tuned decision's
	// configuration; StoreTuned counts decisions loaded from the store;
	// Tunes/TuneErrors/TuneInFlight track background tuning (see
	// TuneStats for the full autotuning picture).
	TunedHits    int64
	StoreTuned   int64
	Tunes        int64
	TuneErrors   int64
	TuneInFlight int64
	// Decisions is the number of resident autotuning decisions.
	Decisions int
	// Pools reports the idle (free) executors retained per
	// configuration, keyed by the config's String() — the observable
	// footprint of the executor pool, and how operators watch a tuned
	// config's pool grow as traffic switches onto it.
	Pools map[string]int
}

// cacheKey is the content address of a compiled program. All fields are
// comparable values: the graph's structural hash, the normalized
// configuration and the compiler options (which change generated code).
type cacheKey struct {
	fp   dag.Fingerprint
	cfg  arch.Config
	opts compiler.Options
}

// entry is one cache slot. done is closed when the single-flight
// compilation finishes; waiters then read c/err.
type entry struct {
	key  cacheKey
	done chan struct{}
	c    *compiler.Compiled
	err  error

	prev, next *entry // LRU list, most-recent first
}

func (e *entry) completed() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// executorPool is the free list of leased-out-and-returned executors
// for one configuration — cycle-accurate machines or functional
// evaluators, per Options.Backend. Executors come back dirty; every
// lease re-initializes against the next program (RunOn resets machines,
// the functional walk overwrites its whole scratch).
type executorPool struct {
	mu   sync.Mutex
	free []sim.Executor
}

// Engine is a compile-once/execute-many server. It is safe for
// concurrent use by any number of goroutines.
type Engine struct {
	opts Options

	mu         sync.Mutex // guards the cache and its counters
	entries    map[cacheKey]*entry
	head, tail *entry
	hits       int64
	misses     int64
	evictions  int64

	poolMu sync.Mutex
	pools  map[arch.Config]*executorPool

	inFlight   atomic.Int64
	executions atomic.Int64

	storeHits   atomic.Int64
	storeMisses atomic.Int64
	storeErrors atomic.Int64
	preloaded   atomic.Int64

	// Static-verification gate state: every decoded artifact passes
	// through verifyDecoded before the engine trusts it; the memo makes
	// that once per content address, not once per decode.
	verified      atomic.Int64
	verifyRejects atomic.Int64
	verifyMu      sync.Mutex
	verifiedKeys  map[cacheKey]struct{}
	// persists tracks in-flight async artifact writes; Flush waits on it.
	persists sync.WaitGroup

	// Autotuning state (tune.go).
	tuneMu       sync.Mutex // guards tune
	tune         tuneState
	tunedHits    atomic.Int64
	storeTuned   atomic.Int64
	tunes        atomic.Int64
	tuneErrors   atomic.Int64
	tuneInFlight atomic.Int64
	// tuneWG tracks background tunes; WaitTunes waits on it.
	tuneWG sync.WaitGroup
}

// New returns an engine with the given options.
func New(opts Options) *Engine {
	return &Engine{
		opts:         opts.normalize(),
		entries:      make(map[cacheKey]*entry),
		pools:        make(map[arch.Config]*executorPool),
		verifiedKeys: make(map[cacheKey]struct{}),
		tune: tuneState{
			decisions: make(map[dag.Fingerprint]residentDecision),
			tuning:    make(map[dag.Fingerprint]struct{}),
			probing:   make(map[dag.Fingerprint]struct{}),
		},
	}
}

// Compile returns the compiled program for (g, cfg, opts), compiling at
// most once per content address: concurrent callers for the same key
// share one compilation, and later callers hit the cache. Compilation
// failures surface to every waiting caller and are not cached, so a
// transient failure does not poison the key.
func (e *Engine) Compile(g *dag.Graph, cfg arch.Config, opts compiler.Options) (*compiler.Compiled, error) {
	c, err, _ := e.compile(g, cfg, opts, nil, -1)
	return c, err
}

// compile is Compile with an optional trace threaded through (see
// CompileTraced in trace.go): resolveMiss records store_decode/compile
// spans under parent, and hit reports whether the cache answered.
func (e *Engine) compile(g *dag.Graph, cfg arch.Config, opts compiler.Options, tr *trace.Trace, parent int) (_ *compiler.Compiled, _ error, hit bool) {
	k := cacheKey{fp: g.Fingerprint(), cfg: cfg.Normalize(), opts: opts.Normalized()}

	e.mu.Lock()
	if ent, ok := e.entries[k]; ok {
		e.hits++
		e.moveToFront(ent)
		e.mu.Unlock()
		<-ent.done
		// A program the engine compiled always satisfies this, but a
		// preloaded artifact is only validated against its own content —
		// a crafted remap shorter than the graph it claims to serve
		// would index out of range on the serving hot path. Evict it
		// (cache and store) so the next request recompiles cleanly.
		if ent.err == nil && len(ent.c.Remap) != g.NumNodes() {
			// Only the waiter that actually evicts the entry purges the
			// store file: a late waiter running after a retry has already
			// recompiled and re-persisted the key must not delete the
			// fresh artifact (nothing would re-persist it until the good
			// entry leaves the cache).
			if e.dropEntry(k, ent) {
				e.storeErrors.Add(1)
				if st := e.opts.Store; st != nil {
					st.Remove(artifact.Key{Fingerprint: k.fp, Config: k.cfg, Options: k.opts})
				}
			}
			return nil, fmt.Errorf("engine: cached program for %s maps %d nodes, graph has %d (poisoned artifact evicted; retry recompiles)",
				k.fp.Short(), len(ent.c.Remap), g.NumNodes()), true
		}
		return ent.c, ent.err, true
	}
	e.misses++
	ent := &entry{key: k, done: make(chan struct{})}
	e.entries[k] = ent
	e.pushFront(ent)
	e.evictLocked()
	e.mu.Unlock()

	c, err := e.resolveMiss(g, k, tr, parent)
	e.mu.Lock()
	ent.c, ent.err = c, err
	if err != nil && e.entries[k] == ent {
		delete(e.entries, k)
		e.unlink(ent)
	}
	close(ent.done) // before evictLocked, which skips unfinished entries
	// Re-apply the bound: inserts that happened while every resident
	// entry was still compiling could not evict anything.
	e.evictLocked()
	e.mu.Unlock()
	return c, err, false
}

// maxVerifiedKeys bounds the verification memo; past it the memo is
// cleared (re-verifying is correct, just slower) rather than grown.
const maxVerifiedKeys = 4096

// verifyDecoded statically verifies a decoded artifact before the
// engine trusts it, memoized per content address so the serving path
// pays the verifier once per store key, not once per decode. A false
// return (counted in Stats.VerifyRejects) means the program carries
// error-severity findings and must be treated like a checksum failure.
func (e *Engine) verifyDecoded(k cacheKey, c *compiler.Compiled) bool {
	e.verifyMu.Lock()
	_, done := e.verifiedKeys[k]
	e.verifyMu.Unlock()
	if done {
		return true
	}
	if fs := verify.Compiled(c); verify.HasErrors(fs) {
		e.verifyRejects.Add(1)
		return false
	}
	e.verified.Add(1)
	e.verifyMu.Lock()
	if len(e.verifiedKeys) >= maxVerifiedKeys {
		clear(e.verifiedKeys)
	}
	e.verifiedKeys[k] = struct{}{}
	e.verifyMu.Unlock()
	return true
}

// resolveMiss produces the compiled program for a cache miss: a backing
// store is consulted first (a decoded artifact is bit-identical to a
// fresh compilation and much cheaper); otherwise the graph is compiled
// and, on success, persisted to the store off the request path. The
// store consult and the compilation record spans under parent when a
// trace rides the miss (tr and every span handle are nil-safe).
func (e *Engine) resolveMiss(g *dag.Graph, k cacheKey, tr *trace.Trace, parent int) (*compiler.Compiled, error) {
	if st := e.opts.Store; st != nil {
		sd := tr.Begin("store_decode", parent)
		key := artifact.Key{Fingerprint: k.fp, Config: k.cfg, Options: k.opts}
		switch a, err := st.Get(key); {
		case err == nil && len(a.Compiled.Remap) == g.NumNodes():
			if e.verifyDecoded(k, a.Compiled) {
				e.storeHits.Add(1)
				tr.SetAttrs(sd, trace.Bool("hit", true))
				tr.End(sd)
				return a.Compiled, nil
			}
			// The CRC matched but the program is illegal for the machine
			// model — semantically corrupt. Same treatment as a checksum
			// failure: purge the file and fall back to compiling.
			e.storeErrors.Add(1)
			st.Remove(key)
		case err == nil:
			// Internally consistent artifact, but its remap does not fit
			// the graph being served — crafted or foreign content at this
			// key. Purge it and compile; the persist below replaces it.
			e.storeErrors.Add(1)
			st.Remove(key)
		case errors.Is(err, artifact.ErrNotFound):
			e.storeMisses.Add(1)
		default:
			// A damaged artifact is not fatal — recompile. StoreErrors
			// alone tracks it (StoreMisses means "no artifact for the
			// key", and the store evicts the corpse so the recompile's
			// persist can land).
			e.storeErrors.Add(1)
		}
		tr.SetAttrs(sd, trace.Bool("hit", false))
		tr.End(sd)
	}
	// A binary graph would be carried by the Compiled as-is (non-binary
	// graphs are binarized into a fresh one), aliasing the caller's
	// mutable object into the cache; compile a private clone so a caller
	// mutating its graph afterwards cannot corrupt cached programs other
	// requests share. O(n) on a miss only, amortized by the cache.
	cg := g
	if g.IsBinary() {
		cg = g.Clone()
	}
	cs := tr.Begin("compile", parent)
	tr.SetAttrs(cs, trace.Int("nodes", int64(g.NumNodes())))
	c, err := compiler.Compile(cg, k.cfg, k.opts)
	tr.End(cs)
	if err == nil && e.opts.VerifyCompiles {
		if fs := verify.Compiled(c); verify.HasErrors(fs) {
			return nil, fmt.Errorf("engine: compiler emitted a program that fails verification (%s)", verify.Summary(fs))
		}
	}
	if err == nil && e.opts.Store != nil {
		a := &artifact.Artifact{Fingerprint: k.fp, Options: k.opts, Compiled: c}
		e.persists.Add(1)
		go func() {
			defer e.persists.Done()
			if perr := e.opts.Store.Put(a); perr != nil {
				e.storeErrors.Add(1)
			}
		}()
	}
	return c, err
}

// Preload decodes artifacts from the backing store into the compile
// cache — the warm-start step a server runs at boot so its first
// requests are cache hits, not compilations. It stops once the cache
// is full: decoding a 10,000-artifact store into a 256-entry cache
// would pay the whole decode bill only to evict immediately, and the
// reported count would lie about what is resident. Artifacts that fail
// to decode are skipped (and counted in Stats.StoreErrors); n reports
// how many programs were actually cached. Without a store, Preload is
// a no-op.
func (e *Engine) Preload() (n int, err error) {
	st := e.opts.Store
	if st == nil {
		return 0, nil
	}
	werr := st.Walk(func(path string, a *artifact.Artifact, derr error) bool {
		if derr != nil {
			// Another binary's format version is a legitimate neighbor in
			// a shared store (mixed-version fleet), not damage; only real
			// corruption feeds the operator-facing error counter.
			if !errors.Is(derr, artifact.ErrVersion) {
				e.storeErrors.Add(1)
			}
			return true
		}
		k := cacheKey{fp: a.Fingerprint, cfg: a.Compiled.Prog.Cfg, opts: a.Options}
		if !e.verifyDecoded(k, a.Compiled) {
			// Same gate as the decode path: an illegal program must not
			// warm-start into the serving cache. Purge it so the next
			// compile of the key persists a clean replacement.
			e.storeErrors.Add(1)
			st.Remove(a.Key())
			return true
		}
		e.mu.Lock()
		full := len(e.entries) >= e.opts.CacheSize
		if _, ok := e.entries[k]; !ok && !full {
			ent := &entry{key: k, done: make(chan struct{}), c: a.Compiled}
			close(ent.done)
			e.entries[k] = ent
			e.pushFront(ent)
			n++
			e.preloaded.Add(1)
			full = len(e.entries) >= e.opts.CacheSize
		}
		e.mu.Unlock()
		return !full
	})
	if werr == nil && e.opts.AutoTune {
		// Decisions ride along: a warm-started autotuning server serves
		// every stored fingerprint on its tuned config from the first
		// request, with zero in-process tuning. The permanent decision
		// table keeps its bound here too — a store accumulating more
		// decisions than the cap stops loading once full, like the
		// program walk stops at the cache bound.
		werr = st.WalkDecisions(func(path string, d *artifact.Decision, derr error) bool {
			if derr != nil {
				if !errors.Is(derr, artifact.ErrVersion) {
					e.storeErrors.Add(1)
				}
				return true
			}
			// Same identity check GetDecision enforces: a decision is
			// served only from its own address. A misaddressed file
			// (stale copy, hand-renamed) must not shadow the current
			// decision for the fingerprint it embeds — walk order would
			// otherwise decide which one wins.
			if base := strings.TrimSuffix(filepath.Base(path), artifact.DecisionExt); base != d.Fingerprint.String() {
				e.storeErrors.Add(1)
				return true
			}
			r := e.admitDecision(d, "store")
			e.tuneMu.Lock()
			full := len(e.tune.decisions) >= maxDecisions
			if _, known := e.tune.decisions[d.Fingerprint]; !known && !full {
				e.tune.decisions[d.Fingerprint] = r
				if r.d != nil {
					e.storeTuned.Add(1)
				} else {
					e.storeErrors.Add(1) // guard-rejected store content
				}
				full = len(e.tune.decisions) >= maxDecisions
			}
			e.tuneMu.Unlock()
			return !full
		})
	}
	return n, werr
}

// Flush waits for every asynchronous artifact persist started so far.
// Servers call it on shutdown so a drained process leaves a complete
// store behind; tests call it before asserting store contents.
func (e *Engine) Flush() { e.persists.Wait() }

// dropEntry removes a completed entry from the cache if it is still the
// resident one for k, reporting whether this caller won the removal
// (concurrent droppers of the same entry get false).
func (e *Engine) dropEntry(k cacheKey, ent *entry) bool {
	e.mu.Lock()
	won := e.entries[k] == ent
	if won {
		delete(e.entries, k)
		e.unlink(ent)
	}
	e.mu.Unlock()
	return won
}

// moveToFront marks ent most recently used. Caller holds e.mu.
func (e *Engine) moveToFront(ent *entry) {
	if e.head == ent {
		return
	}
	e.unlink(ent)
	e.pushFront(ent)
}

// pushFront links ent at the head. Caller holds e.mu.
func (e *Engine) pushFront(ent *entry) {
	ent.prev, ent.next = nil, e.head
	if e.head != nil {
		e.head.prev = ent
	}
	e.head = ent
	if e.tail == nil {
		e.tail = ent
	}
}

// unlink removes ent from the LRU list. Caller holds e.mu.
func (e *Engine) unlink(ent *entry) {
	if ent.prev != nil {
		ent.prev.next = ent.next
	} else if e.head == ent {
		e.head = ent.next
	}
	if ent.next != nil {
		ent.next.prev = ent.prev
	} else if e.tail == ent {
		e.tail = ent.prev
	}
	ent.prev, ent.next = nil, nil
}

// evictLocked drops least-recently-used completed entries until the
// cache fits its bound. In-flight compilations are never evicted (their
// waiters hold the entry), so the cache may transiently exceed the bound
// while many distinct graphs compile at once. Caller holds e.mu.
func (e *Engine) evictLocked() {
	for ent := e.tail; ent != nil && len(e.entries) > e.opts.CacheSize; {
		victim := ent
		ent = ent.prev
		if !victim.completed() {
			continue
		}
		delete(e.entries, victim.key)
		e.unlink(victim)
		e.evictions++
	}
}

// maxConfigPools bounds the number of distinct configurations that
// retain idle machines. A server facing arbitrary client configs would
// otherwise grow pool memory monotonically (each pool holds up to
// PoolSize machines, and a machine keeps the largest memory image it
// ever ran); configs beyond the bound simply run unpooled.
const maxConfigPools = 64

// getExecutor leases a pooled executor for cfg or builds a new one of
// the engine's configured backend. cfg must already be normalized
// (compiled programs carry a normalized config).
func (e *Engine) getExecutor(cfg arch.Config) sim.Executor {
	e.poolMu.Lock()
	p := e.pools[cfg]
	if p == nil && len(e.pools) < maxConfigPools {
		p = &executorPool{}
		e.pools[cfg] = p
	}
	e.poolMu.Unlock()
	if p == nil {
		return sim.NewExecutor(e.opts.Backend, cfg)
	}
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		m := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return m
	}
	p.mu.Unlock()
	return sim.NewExecutor(e.opts.Backend, cfg)
}

// putExecutor returns an executor to its configuration's pool, dropping
// it when the pool is full. The executor is handed back dirty; the next
// lease re-initializes it against its program (RunOn resets machines)
// before any use.
func (e *Engine) putExecutor(m sim.Executor) {
	e.poolMu.Lock()
	p := e.pools[m.Config()]
	e.poolMu.Unlock()
	if p == nil {
		return
	}
	p.mu.Lock()
	if len(p.free) < e.opts.PoolSize {
		p.free = append(p.free, m)
	}
	p.mu.Unlock()
}

// ExecuteInto runs a compiled program on a pooled executor, writing the
// sink values (in c.Graph.Outputs() order) into out and returning the
// cycle count — exact under either backend, because the schedule is
// static. Steady state allocates nothing: the executor, its scratch,
// and (for machines) the stats buckets are all reused.
func (e *Engine) ExecuteInto(c *compiler.Compiled, inputs, out []float64) (cycles int, err error) {
	e.inFlight.Add(1)
	defer e.inFlight.Add(-1)
	m := e.getExecutor(c.Prog.Cfg)
	err = m.ExecuteInto(c, inputs, out)
	cycles = m.Stats().Cycles
	e.putExecutor(m)
	if err != nil {
		return 0, err
	}
	e.executions.Add(1)
	return cycles, nil
}

// ExecuteCompiled runs a compiled program on a pooled executor and
// returns a self-contained result (outputs keyed by sink id, deep-copied
// stats safe to hold after the executor is reused). Under the functional
// backend only Stats.Cycles is meaningful; select the cycle-accurate
// backend for the machine's full statistics.
func (e *Engine) ExecuteCompiled(c *compiler.Compiled, inputs []float64) (*sim.Result, error) {
	e.inFlight.Add(1)
	defer e.inFlight.Add(-1)
	outs := c.Graph.Outputs()
	out := make([]float64, len(outs))
	m := e.getExecutor(c.Prog.Cfg)
	err := m.ExecuteInto(c, inputs, out)
	st := m.Stats().Clone()
	e.putExecutor(m)
	if err != nil {
		return nil, err
	}
	res := &sim.Result{Outputs: make(map[dag.NodeID]float64, len(outs)), Stats: st}
	for i, sink := range outs {
		res.Outputs[sink] = out[i]
	}
	e.executions.Add(1)
	return res, nil
}

// Execute compiles (or cache-hits) and runs in one call — the
// one-request serving path.
func (e *Engine) Execute(g *dag.Graph, cfg arch.Config, opts compiler.Options, inputs []float64) (*sim.Result, error) {
	c, err := e.Compile(g, cfg, opts)
	if err != nil {
		return nil, err
	}
	return e.ExecuteCompiled(c, inputs)
}

// ExecuteBatchItems runs the same compiled program over a batch of
// input vectors on the engine's worker pool, each on its own pooled
// machine. Results and errors come back in input order, one slot per
// item (both nil-padded), so servers can itemize failures without
// re-executing anything.
func (e *Engine) ExecuteBatchItems(c *compiler.Compiled, batches [][]float64) ([]*sim.Result, []error) {
	results := make([]*sim.Result, len(batches))
	errs := make([]error, len(batches))
	par.ForEach(len(batches), e.opts.Workers, func(i int) {
		results[i], errs[i] = e.ExecuteCompiled(c, batches[i])
	})
	return results, errs
}

// ExecuteBatchInto is the scheduler's hot path: it runs one compiled
// program over a batch of input vectors, writing the sink values of item
// i (in c.Graph.Outputs() order) into outs[i] and its error into
// errs[i]; cycles, when non-nil, receives each item's cycle count. The
// batch is split into contiguous chunks, one per worker, and each worker
// leases a single pooled machine for its whole chunk — pool traffic and
// compile-cache traffic are per-batch, not per-item, which is what makes
// coalesced serving cheaper than per-request Execute calls. With one
// worker (or a one-item batch) the whole call runs inline on the
// caller's goroutine and allocates nothing in steady state.
func (e *Engine) ExecuteBatchInto(c *compiler.Compiled, batches, outs [][]float64, cycles []int, errs []error) {
	n := len(batches)
	if n == 0 {
		return
	}
	workers := e.opts.Workers
	if workers > n {
		workers = n
	}
	e.inFlight.Add(int64(n))
	if workers <= 1 {
		// Closure-free serial path: the steady state allocates nothing.
		e.runChunk(c, batches, outs, cycles, errs, 0, n)
	} else {
		par.ForEach(workers, workers, func(w int) {
			e.runChunk(c, batches, outs, cycles, errs, n*w/workers, n*(w+1)/workers)
		})
	}
	e.inFlight.Add(int64(-n))
}

// runChunk executes items [lo,hi) of a batch on one leased executor.
func (e *Engine) runChunk(c *compiler.Compiled, batches, outs [][]float64, cycles []int, errs []error, lo, hi int) {
	m := e.getExecutor(c.Prog.Cfg)
	for i := lo; i < hi; i++ {
		err := m.ExecuteInto(c, batches[i], outs[i])
		errs[i] = err
		if cycles != nil {
			cycles[i] = m.Stats().Cycles
		}
		if err == nil {
			e.executions.Add(1)
		}
	}
	e.putExecutor(m)
}

// AsyncResult carries one ExecuteAsync completion.
type AsyncResult struct {
	Result *sim.Result
	Err    error
}

// ExecuteAsync is Execute without the wait: it fires the
// compile-or-hit/execute pipeline on its own goroutine and returns a
// 1-buffered channel that receives the completion exactly once, so
// callers interleaving submission with other work (load generators,
// fan-out clients) never block and never leak the goroutine by
// abandoning the channel.
func (e *Engine) ExecuteAsync(g *dag.Graph, cfg arch.Config, opts compiler.Options, inputs []float64) <-chan AsyncResult {
	ch := make(chan AsyncResult, 1)
	go func() {
		res, err := e.Execute(g, cfg, opts, inputs)
		ch <- AsyncResult{Result: res, Err: err}
	}()
	return ch
}

// ExecuteBatch is ExecuteBatchItems with the per-item errors indexed and
// joined: failed items are nil results, completed items are salvaged.
func (e *Engine) ExecuteBatch(c *compiler.Compiled, batches [][]float64) ([]*sim.Result, error) {
	results, errs := e.ExecuteBatchItems(c, batches)
	for i, err := range errs {
		if err != nil {
			errs[i] = fmt.Errorf("engine: batch %d: %w", i, err)
		}
	}
	return results, errors.Join(errs...)
}

// Workers returns the configured worker-pool size, so wrappers layering
// extra per-item work (e.g. verification) can match the batch fan-out.
func (e *Engine) Workers() int { return e.opts.Workers }

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	s := Stats{
		Backend:   e.opts.Backend.String(),
		Hits:      e.hits,
		Misses:    e.misses,
		Evictions: e.evictions,
		Cached:    len(e.entries),
	}
	e.mu.Unlock()
	s.InFlight = e.inFlight.Load()
	s.Executions = e.executions.Load()
	s.StoreHits = e.storeHits.Load()
	s.StoreMisses = e.storeMisses.Load()
	s.StoreErrors = e.storeErrors.Load()
	s.Preloaded = e.preloaded.Load()
	s.Verified = e.verified.Load()
	s.VerifyRejects = e.verifyRejects.Load()
	s.TunedHits = e.tunedHits.Load()
	s.StoreTuned = e.storeTuned.Load()
	s.Tunes = e.tunes.Load()
	s.TuneErrors = e.tuneErrors.Load()
	s.TuneInFlight = e.tuneInFlight.Load()
	e.tuneMu.Lock()
	s.Decisions = len(e.tune.decisions)
	e.tuneMu.Unlock()
	s.Pools = make(map[string]int)
	e.poolMu.Lock()
	for cfg, p := range e.pools {
		p.mu.Lock()
		free := len(p.free)
		p.mu.Unlock()
		if free > 0 {
			s.Pools[cfg.String()] = free
		}
	}
	e.poolMu.Unlock()
	return s
}
