package engine

// Tracing entry points: the scheduler (sched.TracedBackend) calls these
// instead of Compile/ExecuteBatchInto when a batch carries a trace, so
// the engine's share of a request's latency decomposes into named spans
// — resolve (the whole cache interaction), store_decode and compile
// (where a miss actually went), execute (the leased-executor batch
// window). With a nil trace both are exactly their untraced twins:
// tracing is an overlay, never a second code path.

import (
	"dpuv2/internal/arch"
	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
	"dpuv2/internal/trace"
)

// CompileTraced is Compile recording a "resolve" span (with the graph
// fingerprint and cache-hit outcome) against tr; on a miss the span
// nests "store_decode" and/or "compile" children.
func (e *Engine) CompileTraced(g *dag.Graph, cfg arch.Config, opts compiler.Options, tr *trace.Trace) (*compiler.Compiled, error) {
	if tr == nil {
		return e.Compile(g, cfg, opts)
	}
	sp := tr.Begin("resolve", 0)
	c, err, hit := e.compile(g, cfg, opts, tr, sp)
	tr.SetAttrs(sp,
		trace.Str("fingerprint", g.Fingerprint().Short()),
		trace.Bool("cache_hit", hit))
	tr.End(sp)
	return c, err
}

// ExecuteBatchIntoTraced is ExecuteBatchInto recording an "execute"
// span (batch size, backend) against tr.
func (e *Engine) ExecuteBatchIntoTraced(c *compiler.Compiled, batches, outs [][]float64, cycles []int, errs []error, tr *trace.Trace) {
	if tr == nil {
		e.ExecuteBatchInto(c, batches, outs, cycles, errs)
		return
	}
	sp := tr.Begin("execute", 0)
	tr.SetAttrs(sp,
		trace.Int("batch_size", int64(len(batches))),
		trace.Str("backend", e.opts.Backend.String()))
	e.ExecuteBatchInto(c, batches, outs, cycles, errs)
	tr.End(sp)
}
