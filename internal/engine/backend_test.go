package engine

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"dpuv2/internal/arch"
	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
	"dpuv2/internal/sim"
)

// sameBits mirrors internal/sim's cross-backend value contract:
// bitwise identity except NaN, where both sides must be NaN (payload
// propagation is implementation-defined).
func sameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b) ||
		(math.IsNaN(a) && math.IsNaN(b))
}

// TestBackendDifferential runs the same population of graphs and inputs
// through a functional-backend engine and a cycle-accurate engine, over
// both the single-item and batched execute paths, and requires
// bit-identical outputs and identical cycle counts everywhere. This is
// the engine-level leg of the tentpole's bit-exactness claim — it
// exercises the executor pools, not bare executors.
func TestBackendDifferential(t *testing.T) {
	fn := New(Options{CacheSize: 8, Workers: 2, PoolSize: 2, Backend: sim.BackendFunctional})
	cy := New(Options{CacheSize: 8, Workers: 2, PoolSize: 2, Backend: sim.BackendCycleAccurate})
	cfgs := []arch.Config{
		{D: 1, B: 4, R: 8},
		{D: 2, B: 8, R: 16},
		{D: 3, B: 16, R: 32},
	}
	for gi := 0; gi < 4; gi++ {
		g := dag.RandomGraph(dag.RandomConfig{
			Inputs: 4 + gi, Interior: 40 + 20*gi, MaxArgs: 2 + gi%3, MulFrac: 0.4, Seed: int64(gi) + 900,
		})
		cfg := cfgs[gi%len(cfgs)]
		c, err := compiler.Compile(g, cfg, compiler.Options{})
		if err != nil {
			t.Fatalf("graph %d: %v", gi, err)
		}
		nIn, nOut := len(c.Graph.Inputs()), len(c.Graph.Outputs())
		rng := rand.New(rand.NewSource(int64(gi)))

		// Single-item path.
		fOut, cOut := make([]float64, nOut), make([]float64, nOut)
		for trial := 0; trial < 3; trial++ {
			inputs := make([]float64, nIn)
			for i := range inputs {
				inputs[i] = rng.Float64()*8 - 4
			}
			if trial == 2 && nIn > 0 {
				inputs[0] = math.Inf(1) // non-finite through the pooled path too
			}
			fc, err := fn.ExecuteInto(c, inputs, fOut)
			if err != nil {
				t.Fatalf("graph %d functional: %v", gi, err)
			}
			cc, err := cy.ExecuteInto(c, inputs, cOut)
			if err != nil {
				t.Fatalf("graph %d cycle: %v", gi, err)
			}
			if fc != cc {
				t.Errorf("graph %d trial %d: cycles %d (functional) vs %d (cycle)", gi, trial, fc, cc)
			}
			for i := range fOut {
				if !sameBits(fOut[i], cOut[i]) {
					t.Errorf("graph %d trial %d sink %d: functional %v, cycle %v", gi, trial, i, fOut[i], cOut[i])
				}
			}
		}

		// Batched path.
		const items = 12
		batches := make([][]float64, items)
		for b := range batches {
			batches[b] = make([]float64, nIn)
			for i := range batches[b] {
				batches[b][i] = rng.Float64()*8 - 4
			}
		}
		fOuts, cOuts := makeOuts(items, nOut), makeOuts(items, nOut)
		fCycles, cCycles := make([]int, items), make([]int, items)
		fErrs, cErrs := make([]error, items), make([]error, items)
		fn.ExecuteBatchInto(c, batches, fOuts, fCycles, fErrs)
		cy.ExecuteBatchInto(c, batches, cOuts, cCycles, cErrs)
		for b := 0; b < items; b++ {
			if fErrs[b] != nil || cErrs[b] != nil {
				t.Fatalf("graph %d batch %d: functional err %v, cycle err %v", gi, b, fErrs[b], cErrs[b])
			}
			if fCycles[b] != cCycles[b] {
				t.Errorf("graph %d batch %d: cycles %d vs %d", gi, b, fCycles[b], cCycles[b])
			}
			for i := range fOuts[b] {
				if !sameBits(fOuts[b][i], cOuts[b][i]) {
					t.Errorf("graph %d batch %d sink %d: functional %v, cycle %v", gi, b, i, fOuts[b][i], cOuts[b][i])
				}
			}
		}
	}
}

func makeOuts(items, width int) [][]float64 {
	outs := make([][]float64, items)
	for i := range outs {
		outs[i] = make([]float64, width)
	}
	return outs
}

// TestStatsReportBackend: /stats consumers see which backend an engine
// is running, and the default is the functional fast path.
func TestStatsReportBackend(t *testing.T) {
	if got := New(Options{CacheSize: 4}).Stats().Backend; got != "functional" {
		t.Errorf("default backend reported as %q, want functional", got)
	}
	if got := New(Options{CacheSize: 4, Backend: sim.BackendCycleAccurate}).Stats().Backend; got != "cycle" {
		t.Errorf("cycle-accurate engine reported as %q, want cycle", got)
	}
}

// TestStressMixedBackends runs two engines with different backends
// under concurrent load against the same compiled programs, checking
// bit-equality between backends on every item. Run under -race in CI:
// it exercises concurrent leases of both pool flavors (machines and
// functional evaluators) plus the shared compile cache inside each
// engine.
func TestStressMixedBackends(t *testing.T) {
	fn := New(Options{CacheSize: 8, Workers: 4, PoolSize: 4, Backend: sim.BackendFunctional})
	cy := New(Options{CacheSize: 8, Workers: 4, PoolSize: 4, Backend: sim.BackendCycleAccurate})
	var compiled []*compiler.Compiled
	for gi := 0; gi < 3; gi++ {
		g := dag.RandomGraph(dag.RandomConfig{
			Inputs: 5, Interior: 50, MaxArgs: 3, MulFrac: 0.5, Seed: int64(gi) + 500,
		})
		c, err := compiler.Compile(g, arch.Config{D: 2, B: 8, R: 16}, compiler.Options{})
		if err != nil {
			t.Fatal(err)
		}
		compiled = append(compiled, c)
	}
	const goroutines, iters = 8, 40
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for it := 0; it < iters; it++ {
				c := compiled[(w+it)%len(compiled)]
				inputs := make([]float64, len(c.Graph.Inputs()))
				for i := range inputs {
					inputs[i] = rng.Float64()*6 - 3
				}
				nOut := len(c.Graph.Outputs())
				fOut, cOut := make([]float64, nOut), make([]float64, nOut)
				fc, err := fn.ExecuteInto(c, inputs, fOut)
				if err != nil {
					errc <- fmt.Errorf("worker %d functional: %w", w, err)
					return
				}
				cc, err := cy.ExecuteInto(c, inputs, cOut)
				if err != nil {
					errc <- fmt.Errorf("worker %d cycle: %w", w, err)
					return
				}
				if fc != cc {
					errc <- fmt.Errorf("worker %d iter %d: cycles %d vs %d", w, it, fc, cc)
					return
				}
				for i := range fOut {
					if !sameBits(fOut[i], cOut[i]) {
						errc <- fmt.Errorf("worker %d iter %d sink %d: %v vs %v", w, it, i, fOut[i], cOut[i])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
