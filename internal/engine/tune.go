package engine

// Autotuning integration — the serving half of the tune→serve loop.
//
// With Options.AutoTune set, the engine maintains a per-fingerprint map
// of artifact.Decision records and Resolve consults it on every request:
// a decided fingerprint is served on its tuned configuration (and the
// compile cache, machine pool and scheduler batch key all follow,
// because they key on the config Resolve returns); an undecided one is
// served on the caller's default. With Options.Tuner also set, first
// sight of an undecided fingerprint kicks off exactly one background
// tune; requests keep flowing on the default config until the decision
// lands, then atomically switch. Decisions are persisted to the backing
// store (last-wins) and reloaded by Preload, so a restarted server
// serves tuned configs from its first request without re-tuning.
//
// State machine per fingerprint:
//
//	unknown ──Resolve──▶ probing the store
//	   │ decision found         │ not found, Tuner set
//	   ▼                        ▼
//	decided ◀──tune done── tuning (single-flight, background)
//	   │                        │ tune failed / tuner nil
//	   ▼                        ▼
//	serve tuned config      absent (pinned: serve default, never retry)
//
// Two bounds keep arbitrary fingerprint churn from exhausting the
// process: at most maxTunesInFlight background sweeps run at once
// (first sights beyond it stay unknown and retry later), and the
// decision table is capped at maxDecisions entries (fingerprints beyond
// it serve their defaults without probing or tuning).

import (
	"context"
	"errors"
	"sort"

	"dpuv2/internal/arch"
	"dpuv2/internal/artifact"
	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
)

// Tuner is what AutoTune needs from the autotuning subsystem;
// *tune.Tuner satisfies it. Tune must be safe for concurrent use and
// honor ctx (the engine supplies its own budget only through the tuner's
// configuration, so a tuner without an internal budget tunes until done).
type Tuner interface {
	Tune(ctx context.Context, g *dag.Graph, def arch.Config, opts compiler.Options) (*artifact.Decision, error)
}

// maxTunesInFlight bounds concurrent background tunes. A tune is a full
// compile+simulate sweep of the candidate grid that already parallelizes
// internally; without a cap, a stream of distinct fingerprints (e.g. a
// load generator's random-graph population) would spawn one sweep per
// graph and starve the serving path of CPU. A first sight arriving at
// the cap is simply deferred: the request serves its default and a later
// request re-probes once a slot frees. (A var, not a const, so tests can
// tighten it.)
var maxTunesInFlight = 2

// maxDecisions bounds the decision table. Decisions are small, but the
// table is permanent per fingerprint — unlike the LRU compile cache —
// so arbitrary client graph churn must not grow it without bound.
// Fingerprints beyond the cap are served on their defaults without
// probing or tuning; 64k decisions is far beyond any real workload
// population.
var maxDecisions = 1 << 16

// residentDecision is one row of the engine's decision table. A nil d
// is a pinned negative: the fingerprint was probed (store miss and
// either no tuner or a failed tune) and will be served on the default
// config without further store traffic.
type residentDecision struct {
	d      *artifact.Decision
	source string // "store" or "tuned"
}

// tuneState is the engine's per-fingerprint autotuning table. probing
// single-flights the store lookup: concurrent first sights of one
// fingerprint cost one disk read, not N — the laggards serve their
// defaults and retry on a later request.
type tuneState struct {
	decisions map[dag.Fingerprint]residentDecision
	tuning    map[dag.Fingerprint]struct{}
	probing   map[dag.Fingerprint]struct{}
}

// Resolve maps a request to the configuration it should be served on:
// the tuned decision's config+options when one exists for g's
// fingerprint, the caller's own (normalized) otherwise. When the engine
// has a Tuner and sees an undecided fingerprint, Resolve starts one
// background tune for it and returns the default — callers never block
// on tuning. Without AutoTune, Resolve is the identity (plus
// normalization), so serving layers can call it unconditionally.
//
// A decision is per fingerprint, not per (fingerprint, config): once
// one exists, it overrides whatever config a request submits. The
// no-regression guarantee (MinGain) therefore holds relative to the
// config the tune was run against — the one in use at first sight —
// not against every config a later client might name; per-workload
// override is the point (serve each graph on the config the DSE says
// is best), and clients needing an exact config should serve without
// AutoTune.
func (e *Engine) Resolve(g *dag.Graph, cfg arch.Config, opts compiler.Options) (arch.Config, compiler.Options) {
	cfg = cfg.Normalize()
	opts = opts.Normalized()
	if !e.opts.AutoTune {
		return cfg, opts
	}
	fp := g.Fingerprint()

	e.tuneMu.Lock()
	r, known := e.tune.decisions[fp]
	_, inFlight := e.tune.tuning[fp]
	e.tuneMu.Unlock()

	if !known && !inFlight {
		r, known = e.probeDecision(g, fp, cfg, opts)
	}
	if known && r.d != nil {
		e.tunedHits.Add(1)
		return r.d.Config, r.d.Options
	}
	return cfg, opts
}

// admitDecision vets a decision before it is installed: the configured
// guard must accept its configuration, and when the store holds a
// pre-compiled program at the decision's exact content address, that
// program must pass static verification — a tuned decision may not
// switch traffic onto an illegal artifact. An admitted decision is
// installed with its source, a rejected one becomes a pinned default
// (the caller accounts the rejection by source). Performs store IO:
// callers must not hold tuneMu.
func (e *Engine) admitDecision(d *artifact.Decision, source string) residentDecision {
	if g := e.opts.DecisionGuard; g != nil && g(d.Config) != nil {
		return residentDecision{}
	}
	if st := e.opts.Store; st != nil {
		key := artifact.Key{Fingerprint: d.Fingerprint, Config: d.Config.Normalize(), Options: d.Options.Normalized()}
		k := cacheKey{fp: key.Fingerprint, cfg: key.Config, opts: key.Options}
		if a, err := st.Get(key); err == nil && !e.verifyDecoded(k, a.Compiled) {
			// The decision's pre-compiled program is semantically corrupt:
			// purge it and keep serving the default config. (A missing or
			// undecodable artifact is not a rejection — the config switch
			// would just compile on first use, and Get already evicts
			// decode failures.)
			st.Remove(key)
			return residentDecision{}
		}
	}
	return residentDecision{d: d, source: source}
}

// probeDecision is the slow path of Resolve for a fingerprint the engine
// has no verdict on: consult the store once, and failing that start a
// background tune (when a tuner is configured) or pin the default. The
// double-check under tuneMu makes concurrent first sights race-free:
// exactly one caller probes the store / starts the tune.
func (e *Engine) probeDecision(g *dag.Graph, fp dag.Fingerprint, cfg arch.Config, opts compiler.Options) (residentDecision, bool) {
	// A full table stops all new probing and tuning up front (before any
	// store IO): the fingerprints already decided keep their decisions,
	// everything else serves its default. The probing set single-flights
	// the store read for each fingerprint — a concurrent prober means
	// this request serves its default without touching the disk.
	e.tuneMu.Lock()
	_, inProbe := e.tune.probing[fp]
	full := len(e.tune.decisions) >= maxDecisions
	if !inProbe && !full {
		e.tune.probing[fp] = struct{}{}
	}
	e.tuneMu.Unlock()
	if inProbe || full {
		return residentDecision{}, false
	}

	var stored *artifact.Decision
	var storeErr bool
	if st := e.opts.Store; st != nil {
		switch d, err := st.GetDecision(fp); {
		case err == nil:
			stored = d
		case errors.Is(err, artifact.ErrNotFound):
		default:
			storeErr = true
		}
	}

	// Admission does store IO (guard check plus artifact verification),
	// so it runs before tuneMu is re-taken.
	var admitted residentDecision
	if stored != nil {
		admitted = e.admitDecision(stored, "store")
	}

	e.tuneMu.Lock()
	defer e.tuneMu.Unlock()
	delete(e.tune.probing, fp)
	if r, known := e.tune.decisions[fp]; known {
		return r, true // another caller resolved it while we probed
	}
	if _, inFlight := e.tune.tuning[fp]; inFlight {
		return residentDecision{}, false
	}
	if len(e.tune.decisions) >= maxDecisions {
		return residentDecision{}, false // racing probes filled the table
	}
	if storeErr {
		// A store read failure is not a miss: tuning now would clobber
		// the (possibly far better-budgeted) offline decision the IO
		// blip hid — PutDecision is last-wins — and pinning would
		// freeze the default until restart. Defer: serve the default,
		// count the error, retry on a later request.
		e.storeErrors.Add(1)
		return residentDecision{}, false
	}
	if stored != nil {
		e.tune.decisions[fp] = admitted
		if admitted.d != nil {
			e.storeTuned.Add(1)
		} else {
			e.storeErrors.Add(1) // guard- or verifier-rejected store content
		}
		return admitted, true
	}
	if e.opts.Tuner == nil {
		// No way to decide: pin the default so this fingerprint never
		// hits the store again.
		e.tune.decisions[fp] = residentDecision{}
		return residentDecision{}, true
	}
	if len(e.tune.tuning) >= maxTunesInFlight {
		// Tuning capacity is saturated: defer, don't pin — the
		// fingerprint stays unknown, so a later request retries once a
		// slot frees.
		return residentDecision{}, false
	}
	e.tune.tuning[fp] = struct{}{}
	e.tuneInFlight.Add(1)
	e.tuneWG.Add(1)
	// The background goroutine outlives the request; give it a private
	// graph so a caller mutating its graph afterwards cannot corrupt the
	// tune (same aliasing hazard resolveMiss guards the cache against).
	go e.backgroundTune(g.Clone(), fp, cfg, opts)
	return residentDecision{}, false
}

// backgroundTune runs one tuner invocation off the serving path and
// publishes its outcome: a decision (applied to subsequent Resolves,
// persisted to the store, and its program pre-compiled so the config
// switch lands cache-warm), or a pinned default on failure.
func (e *Engine) backgroundTune(g *dag.Graph, fp dag.Fingerprint, cfg arch.Config, opts compiler.Options) {
	defer func() {
		e.tuneInFlight.Add(-1)
		e.tuneWG.Done()
	}()
	d, err := e.opts.Tuner.Tune(context.Background(), g, cfg, opts)
	if err == nil && d.Fingerprint != fp {
		err = errors.New("engine: tuner returned a decision for a different fingerprint")
	}
	var r residentDecision
	if err == nil {
		if r = e.admitDecision(d, "tuned"); r.d == nil {
			err = errors.New("engine: tuned config rejected by the decision guard")
		}
	}

	e.tuneMu.Lock()
	delete(e.tune.tuning, fp)
	// A failed (or guard-rejected) tune pins the default: requests keep
	// their config and the engine does not retry a tuner that just
	// demonstrated it cannot handle this workload. (A restart retries.)
	e.tune.decisions[fp] = r
	e.tuneMu.Unlock()
	if err != nil {
		e.tuneErrors.Add(1)
		return
	}
	e.tunes.Add(1)

	if st := e.opts.Store; st != nil {
		if perr := st.PutDecision(d); perr != nil {
			e.storeErrors.Add(1)
		}
	}
	// Pre-compile the tuned program (and persist its artifact) off the
	// request path, so the first request after the switch is a cache hit
	// on the tuned config, not a compile. The tune itself already
	// succeeded and its decision is published, so a failure here is not
	// a TuneError — it only costs the first post-switch request an
	// on-demand compile (and cannot be deterministic: the tuner just
	// compiled this config successfully to score it).
	e.Compile(g, d.Config, d.Options)
}

// WaitTunes blocks until every background tune started so far has
// published its outcome. Servers call it while draining (alongside
// Flush) so a shutdown does not discard tuning work in flight; tests
// call it to observe the post-tune state deterministically.
func (e *Engine) WaitTunes() { e.tuneWG.Wait() }

// TunedWorkload is one row of TuneStats: a fingerprint the engine has a
// decision for, rendered for the /stats endpoint.
type TunedWorkload struct {
	Fingerprint  string  `json:"fingerprint"`
	Config       string  `json:"config"`
	Default      string  `json:"default"`
	Metric       string  `json:"metric"`
	Score        float64 `json:"score"`
	DefaultScore float64 `json:"default_score"`
	Source       string  `json:"source"` // "store" (preloaded/probed) or "tuned" (this process)
	Pinned       bool    `json:"pinned"` // true when the decision keeps the default config
}

// TuneStats is the autotuning section of the serving stats.
type TuneStats struct {
	// Enabled reports whether the engine resolves requests through the
	// decision table at all.
	Enabled bool `json:"enabled"`
	// Decisions is the number of resident decisions (including pinned
	// defaults from failed or store-less probes).
	Decisions int `json:"decisions"`
	// TunedHits counts requests served on a decision's configuration.
	TunedHits int64 `json:"tuned_hits"`
	// Tunes counts background tunes completed in this process;
	// TuneErrors counts tuner failures (which pin the default).
	Tunes      int64 `json:"tunes"`
	TuneErrors int64 `json:"tune_errors"`
	// InFlight is the number of background tunes currently running.
	InFlight int64 `json:"tune_in_flight"`
	// StoreTuned counts decisions loaded from the persistent store
	// (preload and on-demand probes).
	StoreTuned int64 `json:"store_tuned"`
	// Workloads lists the resident non-pinned decisions.
	Workloads []TunedWorkload `json:"workloads,omitempty"`
}

// TuneStats snapshots the autotuning state.
func (e *Engine) TuneStats() TuneStats {
	s := TuneStats{
		Enabled:    e.opts.AutoTune,
		TunedHits:  e.tunedHits.Load(),
		Tunes:      e.tunes.Load(),
		TuneErrors: e.tuneErrors.Load(),
		InFlight:   e.tuneInFlight.Load(),
		StoreTuned: e.storeTuned.Load(),
	}
	e.tuneMu.Lock()
	s.Decisions = len(e.tune.decisions)
	for fp, r := range e.tune.decisions {
		if r.d == nil {
			continue
		}
		d := r.d
		s.Workloads = append(s.Workloads, TunedWorkload{
			Fingerprint:  fp.String(),
			Config:       d.Config.String(),
			Default:      d.Provenance.Default.String(),
			Metric:       d.Provenance.Metric,
			Score:        d.Score,
			DefaultScore: d.Provenance.DefaultScore,
			Source:       r.source,
			Pinned:       d.Config == d.Provenance.Default,
		})
	}
	e.tuneMu.Unlock()
	sort.Slice(s.Workloads, func(i, j int) bool {
		return s.Workloads[i].Fingerprint < s.Workloads[j].Fingerprint
	})
	return s
}

// Decision returns the resident decision for a fingerprint, if any
// (nil, false for unknown or pinned-default fingerprints). Tests and
// CLIs use it; the serving path goes through Resolve.
func (e *Engine) Decision(fp dag.Fingerprint) (*artifact.Decision, bool) {
	e.tuneMu.Lock()
	r, known := e.tune.decisions[fp]
	e.tuneMu.Unlock()
	if !known || r.d == nil {
		return nil, false
	}
	return r.d, true
}
