package engine

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"dpuv2/internal/artifact"
	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
	"dpuv2/internal/sim"
)

func openStore(t *testing.T) *artifact.Store {
	t.Helper()
	st, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestStoreBackedCompilePersistsAndRehydrates: a compile miss persists
// an artifact; a second engine sharing the store answers the same miss
// by decoding instead of compiling, bit-exactly.
func TestStoreBackedCompilePersistsAndRehydrates(t *testing.T) {
	st := openStore(t)
	g := testGraph(1)
	opts := compiler.Options{Seed: 3}

	e1 := New(Options{Store: st})
	c1, err := e1.Compile(g, testCfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	e1.Flush()
	s1 := e1.Stats()
	if s1.StoreMisses != 1 || s1.StoreHits != 0 {
		t.Fatalf("first engine: store hits/misses = %d/%d, want 0/1", s1.StoreHits, s1.StoreMisses)
	}
	if n, err := st.Len(); err != nil || n != 1 {
		t.Fatalf("store holds %d artifacts (%v), want 1", n, err)
	}

	e2 := New(Options{Store: st})
	c2, err := e2.Compile(g, testCfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	s2 := e2.Stats()
	if s2.StoreHits != 1 || s2.StoreMisses != 0 {
		t.Fatalf("second engine: store hits/misses = %d/%d, want 1/0", s2.StoreHits, s2.StoreMisses)
	}
	if s2.StoreErrors != 0 {
		t.Fatalf("store errors: %d", s2.StoreErrors)
	}
	// The rehydrated program is the same program: identical packed
	// stream, identical memory image, identical execution.
	if got, want := fmt.Sprintf("%x", c2.Prog.Pack()), fmt.Sprintf("%x", c1.Prog.Pack()); got != want {
		t.Error("decoded program's packed stream differs from the compiled one")
	}
	inputs := testInputs(g, 1.25)
	r1, err := e1.ExecuteCompiled(c1, inputs)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e2.ExecuteCompiled(c2, inputs)
	if err != nil {
		t.Fatal(err)
	}
	for sink, v := range r1.Outputs {
		if r2.Outputs[sink] != v {
			t.Errorf("sink %d: decoded %v, compiled %v", sink, r2.Outputs[sink], v)
		}
	}
	if err := sim.CheckOutputs(c2, inputs, r2, 0); err != nil {
		t.Errorf("decoded program vs reference evaluator: %v", err)
	}
}

// TestPreloadWarmStart: Preload fills the cache from the store, so a
// restarted engine's first Compile is a pure cache hit — zero compile
// misses, which is the warm-start acceptance criterion.
func TestPreloadWarmStart(t *testing.T) {
	st := openStore(t)
	const graphs = 5
	e1 := New(Options{Store: st})
	for i := 0; i < graphs; i++ {
		if _, err := e1.Compile(testGraph(int64(i)), testCfg, compiler.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	e1.Flush()

	// "Restart": a fresh engine over the same directory.
	e2 := New(Options{Store: st})
	n, err := e2.Preload()
	if err != nil {
		t.Fatal(err)
	}
	if n != graphs {
		t.Fatalf("preloaded %d artifacts, want %d", n, graphs)
	}
	if s := e2.Stats(); s.Preloaded != graphs || s.Cached != graphs {
		t.Fatalf("stats after preload: %+v", s)
	}
	// Preloading again is idempotent.
	if n, err := e2.Preload(); err != nil || n != 0 {
		t.Fatalf("second preload loaded %d (%v), want 0", n, err)
	}
	for i := 0; i < graphs; i++ {
		g := testGraph(int64(i))
		c, err := e2.Compile(g, testCfg, compiler.Options{})
		if err != nil {
			t.Fatal(err)
		}
		inputs := testInputs(g, 0.75)
		res, err := e2.ExecuteCompiled(c, inputs)
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.CheckOutputs(c, inputs, res, 0); err != nil {
			t.Errorf("graph %d after warm start: %v", i, err)
		}
	}
	s := e2.Stats()
	if s.Misses != 0 {
		t.Errorf("warm-started engine compiled %d times, want 0", s.Misses)
	}
	if s.Hits != graphs {
		t.Errorf("hits = %d, want %d", s.Hits, graphs)
	}
}

// TestPreloadRespectsCacheBound: preloading from a store larger than
// the cache stops at the bound — no wasted decodes, and the reported
// count matches what is actually resident.
func TestPreloadRespectsCacheBound(t *testing.T) {
	st := openStore(t)
	e1 := New(Options{Store: st})
	for i := 0; i < 6; i++ {
		if _, err := e1.Compile(testGraph(int64(i)), testCfg, compiler.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	e1.Flush()
	e2 := New(Options{Store: st, CacheSize: 3})
	n, err := e2.Preload()
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("Preload returned %d, want the CacheSize bound 3", n)
	}
	s := e2.Stats()
	if s.Cached != 3 {
		t.Errorf("cached = %d, want the CacheSize bound 3", s.Cached)
	}
	if s.Preloaded != 3 {
		t.Errorf("preloaded = %d, want 3 (walk stops at the bound)", s.Preloaded)
	}
}

// TestPreloadToleratesOtherFormatVersions: a shared store may hold
// artifacts written by binaries with a newer format; a warm-starting
// engine skips them without raising the damage counter (they are valid,
// just not ours) and still loads everything it can read.
func TestPreloadToleratesOtherFormatVersions(t *testing.T) {
	st := openStore(t)
	e1 := New(Options{Store: st})
	if _, err := e1.Compile(testGraph(1), testCfg, compiler.Options{}); err != nil {
		t.Fatal(err)
	}
	e1.Flush()
	// Re-stamp a copy of the artifact as format v2 under another name.
	var src string
	st.Walk(func(p string, a *artifact.Artifact, err error) bool { src = p; return false })
	b, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	b = append([]byte(nil), b...)
	b[8], b[9] = 2, 0
	if err := os.WriteFile(filepath.Join(st.Dir(), "future"+artifact.Ext), b, 0o644); err != nil {
		t.Fatal(err)
	}
	e2 := New(Options{Store: st})
	n, err := e2.Preload()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("preloaded %d, want 1 (the readable artifact)", n)
	}
	if s := e2.Stats(); s.StoreErrors != 0 {
		t.Errorf("a future-version neighbor raised the damage counter: %+v", s)
	}
	if _, err := os.Stat(filepath.Join(st.Dir(), "future"+artifact.Ext)); err != nil {
		t.Error("preload removed the future-version artifact")
	}
}

// TestCorruptArtifactFallsBackToCompile: a damaged store never breaks
// serving — the engine recompiles and counts the error.
func TestCorruptArtifactFallsBackToCompile(t *testing.T) {
	st := openStore(t)
	g := testGraph(9)
	key := artifact.KeyFor(g.Fingerprint(), testCfg, compiler.Options{})
	// Plant garbage at exactly the address the engine will probe.
	if err := os.WriteFile(filepath.Join(st.Dir(), key.ID()+artifact.Ext), []byte("rotten bits"), 0o644); err != nil {
		t.Fatal(err)
	}
	e := New(Options{Store: st})
	c, err := e.Compile(g, testCfg, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.StoreErrors != 1 {
		t.Errorf("store errors = %d, want 1", s.StoreErrors)
	}
	inputs := testInputs(g, 1.5)
	res, err := e.ExecuteCompiled(c, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.CheckOutputs(c, inputs, res, 0); err != nil {
		t.Errorf("fallback compile: %v", err)
	}
	// The store self-heals: the bad file was evicted on read and the
	// fallback compilation's persist replaced it, so the *next* restart
	// decodes instead of compiling again.
	e.Flush()
	if a, err := st.Get(key); err != nil {
		t.Errorf("store did not heal after the fallback compile: %v", err)
	} else if a.Fingerprint != g.Fingerprint() {
		t.Error("healed artifact carries the wrong fingerprint")
	}
}

// poisonedArtifact builds an internally consistent artifact whose remap
// is one entry short of the graph it claims to serve — the shape that
// would index out of range on the serving hot path if trusted.
func poisonedArtifact(t *testing.T, g *dag.Graph) *artifact.Artifact {
	t.Helper()
	c, err := compiler.Compile(g, testCfg, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c.Remap = c.Remap[:len(c.Remap)-1]
	return &artifact.Artifact{Fingerprint: g.Fingerprint(), Options: compiler.Options{}.Normalized(), Compiled: c}
}

// TestPoisonedRemapRejectedOnStoreHit: an artifact whose remap does not
// fit the request graph is purged and transparently recompiled on the
// miss path — never served, never a panic.
func TestPoisonedRemapRejectedOnStoreHit(t *testing.T) {
	st := openStore(t)
	g := testGraph(21)
	if err := st.Put(poisonedArtifact(t, g)); err != nil {
		t.Fatal(err)
	}
	e := New(Options{Store: st})
	c, err := e.Compile(g, testCfg, compiler.Options{})
	if err != nil {
		t.Fatalf("poisoned store broke compilation: %v", err)
	}
	if len(c.Remap) != g.NumNodes() {
		t.Fatalf("served remap has %d entries for a %d-node graph", len(c.Remap), g.NumNodes())
	}
	if s := e.Stats(); s.StoreErrors != 1 || s.StoreHits != 0 {
		t.Errorf("stats: %+v, want 1 store error and no store hit", s)
	}
	// The recompile's persist healed the key.
	e.Flush()
	key := artifact.KeyFor(g.Fingerprint(), testCfg, compiler.Options{})
	if a, err := st.Get(key); err != nil {
		t.Errorf("store did not heal: %v", err)
	} else if len(a.Compiled.Remap) != g.NumNodes() {
		t.Error("healed artifact still carries the short remap")
	}
}

// TestPoisonedRemapRejectedAfterPreload: Preload cannot check a remap
// (it has no request graph), so the cache-hit path must — a typed
// error, eviction from cache and store, and a clean recompile on retry
// instead of an index-out-of-range panic mid-request.
func TestPoisonedRemapRejectedAfterPreload(t *testing.T) {
	st := openStore(t)
	g := testGraph(22)
	if err := st.Put(poisonedArtifact(t, g)); err != nil {
		t.Fatal(err)
	}
	e := New(Options{Store: st})
	if n, err := e.Preload(); err != nil || n != 1 {
		t.Fatalf("preload: %d, %v", n, err)
	}
	if _, err := e.Compile(g, testCfg, compiler.Options{}); err == nil {
		t.Fatal("poisoned preloaded artifact was served")
	}
	if s := e.Stats(); s.StoreErrors != 1 {
		t.Errorf("store errors = %d, want 1", s.StoreErrors)
	}
	// Retry: the entry and file are gone, so this is a clean compile.
	c, err := e.Compile(g, testCfg, compiler.Options{})
	if err != nil {
		t.Fatalf("retry after eviction: %v", err)
	}
	if len(c.Remap) != g.NumNodes() {
		t.Errorf("retry served remap of %d entries for %d nodes", len(c.Remap), g.NumNodes())
	}
	inputs := testInputs(g, 2)
	res, err := e.ExecuteCompiled(c, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.CheckOutputs(c, inputs, res, 0); err != nil {
		t.Errorf("recovered program vs reference: %v", err)
	}
}

// TestPoisonedRemapConcurrentWaitersHealOnce: many goroutines hitting
// the same poisoned preloaded entry must leave the store healed — only
// the waiter that evicts the entry purges the file, so a late waiter
// cannot delete the artifact a retry has already re-persisted.
func TestPoisonedRemapConcurrentWaitersHealOnce(t *testing.T) {
	st := openStore(t)
	g := testGraph(23)
	if err := st.Put(poisonedArtifact(t, g)); err != nil {
		t.Fatal(err)
	}
	e := New(Options{Store: st})
	if n, err := e.Preload(); err != nil || n != 1 {
		t.Fatalf("preload: %d, %v", n, err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// First call may fail on the poisoned entry; retry must
			// succeed with a correct remap.
			for attempt := 0; attempt < 2; attempt++ {
				c, err := e.Compile(g, testCfg, compiler.Options{})
				if err != nil {
					continue
				}
				if len(c.Remap) != g.NumNodes() {
					t.Errorf("served remap of %d entries for %d nodes", len(c.Remap), g.NumNodes())
				}
				return
			}
			t.Error("compile did not recover after the poisoned entry was evicted")
		}()
	}
	wg.Wait()
	e.Flush()
	key := artifact.KeyFor(g.Fingerprint(), testCfg, compiler.Options{})
	if a, err := st.Get(key); err != nil {
		t.Errorf("store not healed after concurrent waiters: %v", err)
	} else if len(a.Compiled.Remap) != g.NumNodes() {
		t.Error("healed artifact still short")
	}
}

// TestStoreRaceOneArtifactPerKey is the -race satellite: many
// goroutines across several engines miss on the same population of
// graphs against one shared store; when the dust settles the store
// holds exactly one artifact per key and every artifact decodes.
func TestStoreRaceOneArtifactPerKey(t *testing.T) {
	st := openStore(t)
	const (
		engines    = 3
		goroutines = 8
		graphs     = 6
	)
	engs := make([]*Engine, engines)
	for i := range engs {
		engs[i] = New(Options{Store: st})
	}
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < graphs; i++ {
				g := testGraph(int64(i))
				e := engs[(w+i)%engines]
				c, err := e.Compile(g, testCfg, compiler.Options{})
				if err != nil {
					t.Errorf("compile: %v", err)
					return
				}
				inputs := testInputs(g, float64(w+1))
				res, err := e.ExecuteCompiled(c, inputs)
				if err != nil {
					t.Errorf("execute: %v", err)
					return
				}
				if err := sim.CheckOutputs(c, inputs, res, 0); err != nil {
					t.Errorf("goroutine %d graph %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, e := range engs {
		e.Flush()
	}
	if n, err := st.Len(); err != nil || n != graphs {
		t.Fatalf("store holds %d artifacts (%v), want exactly %d — one per key", n, err, graphs)
	}
	bad := 0
	st.Walk(func(path string, a *artifact.Artifact, err error) bool {
		if err != nil {
			t.Errorf("%s: %v", path, err)
			bad++
		}
		return true
	})
	if bad != 0 {
		t.Fatalf("%d artifacts do not decode", bad)
	}
}

// TestStoreRacePreloadDuringPersist is the torn-read half of the -race
// satellite: warm-start preloads run concurrently with engines still
// persisting fresh compilations. Atomic rename-on-write means a
// preloader must only ever see complete artifacts — zero decode errors
// — and everything it loads must execute.
func TestStoreRacePreloadDuringPersist(t *testing.T) {
	st := openStore(t)
	writer := New(Options{Store: st})
	const graphs = 10
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < graphs; i++ {
			if _, err := writer.Compile(testGraph(int64(100+i)), testCfg, compiler.Options{}); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
		}
	}()
	var loaded int
	for round := 0; round < 20; round++ {
		reader := New(Options{Store: st})
		n, err := reader.Preload()
		if err != nil {
			t.Fatalf("preload round %d: %v", round, err)
		}
		if s := reader.Stats(); s.StoreErrors != 0 {
			t.Fatalf("preload round %d observed %d torn/corrupt artifacts", round, s.StoreErrors)
		}
		loaded = n
	}
	wg.Wait()
	writer.Flush()
	final := New(Options{Store: st})
	n, err := final.Preload()
	if err != nil {
		t.Fatal(err)
	}
	if n != graphs {
		t.Errorf("final preload loaded %d, want %d (last mid-flight round saw %d)", n, graphs, loaded)
	}
}
