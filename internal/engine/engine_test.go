package engine

import (
	"strings"
	"testing"

	"dpuv2/internal/arch"
	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
)

// testGraph builds a small deterministic DAG whose structure varies with
// seed: a chain of adds/muls over a few inputs.
func testGraph(seed int64) *dag.Graph {
	return dag.RandomGraph(dag.RandomConfig{
		Inputs:   4,
		Interior: 30,
		MaxArgs:  2,
		MulFrac:  0.3,
		Seed:     seed,
	})
}

func testInputs(g *dag.Graph, scale float64) []float64 {
	in := make([]float64, len(g.Inputs()))
	for i := range in {
		in[i] = scale * (0.25 + float64(i)*0.125)
	}
	return in
}

var testCfg = arch.Config{D: 2, B: 8, R: 16}

func TestCompileCacheHitsAndSharing(t *testing.T) {
	e := New(Options{})
	g := testGraph(1)
	c1, err := e.Compile(g, testCfg, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := e.Compile(g, testCfg, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("second Compile of the same graph did not return the cached program")
	}
	// A structurally identical but distinct graph object must hit too —
	// the cache is content-addressed, not pointer-addressed.
	c3, err := e.Compile(testGraph(1), testCfg, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c3 != c1 {
		t.Error("structurally identical graph missed the content-addressed cache")
	}
	st := e.Stats()
	if st.Misses != 1 || st.Hits != 2 {
		t.Errorf("stats = %+v, want 1 miss / 2 hits", st)
	}

	// Different config and different options are different addresses.
	if _, err := e.Compile(g, arch.Config{D: 2, B: 4, R: 16}, compiler.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Compile(g, testCfg, compiler.Options{Seed: 7}); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Misses != 3 {
		t.Errorf("misses = %d after config/options variants, want 3", st.Misses)
	}
}

func TestCompileCacheLRUEviction(t *testing.T) {
	e := New(Options{CacheSize: 2})
	graphs := []*dag.Graph{testGraph(1), testGraph(2), testGraph(3)}
	for _, g := range graphs {
		if _, err := e.Compile(g, testCfg, compiler.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.Cached != 2 {
		t.Errorf("cached = %d, want 2", st.Cached)
	}
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	// graphs[0] was the LRU victim: recompiling it is a miss; graphs[2]
	// is still resident: a hit.
	if _, err := e.Compile(graphs[0], testCfg, compiler.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Compile(graphs[2], testCfg, compiler.Options{}); err != nil {
		t.Fatal(err)
	}
	st = e.Stats()
	if st.Misses != 4 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 4 misses / 1 hit after eviction round-trip", st)
	}
}

func TestCompileFailureSurfacesAndIsNotCached(t *testing.T) {
	e := New(Options{})
	g := testGraph(1)
	bad := arch.Config{D: 2, B: 8, R: 16, Output: arch.OutOneToOne}
	if _, err := e.Compile(g, bad, compiler.Options{}); err == nil {
		t.Fatal("expected compile failure for the one-to-one topology")
	}
	if _, err := e.Compile(g, bad, compiler.Options{}); err == nil {
		t.Fatal("expected compile failure on retry")
	}
	st := e.Stats()
	if st.Misses != 2 {
		t.Errorf("misses = %d, want 2 (failures must not be cached)", st.Misses)
	}
	if st.Cached != 0 {
		t.Errorf("cached = %d, want 0 after failures", st.Cached)
	}
}

func TestExecuteMatchesReference(t *testing.T) {
	e := New(Options{})
	for seed := int64(1); seed <= 3; seed++ {
		g := testGraph(seed)
		in := testInputs(g, 1)
		res, err := e.Execute(g, testCfg, compiler.Options{}, in)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		c, err := e.Compile(g, testCfg, compiler.Options{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := dag.Eval(c.Graph, in)
		if err != nil {
			t.Fatal(err)
		}
		for sink, got := range res.Outputs {
			if got != want[sink] {
				t.Errorf("seed %d: sink %d = %v, reference %v", seed, sink, got, want[sink])
			}
		}
	}
}

func TestExecuteIntoSteadyStateIsAllocationFree(t *testing.T) {
	e := New(Options{})
	g := testGraph(2)
	c, err := e.Compile(g, testCfg, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	in := testInputs(g, 1)
	out := make([]float64, len(c.Graph.Outputs()))
	// Warm the machine pool and every lazily built cache.
	if _, err := e.ExecuteInto(c, in, out); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := e.ExecuteInto(c, in, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state ExecuteInto allocates %v objects/op, want 0", allocs)
	}
}

func TestExecuteBatchSalvagesPartialFailure(t *testing.T) {
	e := New(Options{})
	g := testGraph(3)
	c, err := e.Compile(g, testCfg, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	good := testInputs(g, 1)
	batches := [][]float64{good, {1}, testInputs(g, 2)} // middle one has the wrong arity
	results, err := e.ExecuteBatch(c, batches)
	if err == nil {
		t.Fatal("expected a joined error for the malformed batch")
	}
	if !strings.Contains(err.Error(), "batch 1") {
		t.Errorf("error %q does not name the failing batch", err)
	}
	if results[0] == nil || results[2] == nil {
		t.Error("good batches were not salvaged")
	}
	if results[1] != nil {
		t.Error("failed batch has a non-nil result")
	}
	want, _ := dag.Eval(c.Graph, testInputs(g, 2))
	for sink, got := range results[2].Outputs {
		if got != want[sink] {
			t.Errorf("salvaged batch: sink %d = %v, want %v", sink, got, want[sink])
		}
	}
	if st := e.Stats(); st.Executions != 2 {
		t.Errorf("executions = %d, want 2", st.Executions)
	}
}

func TestCachedProgramImmuneToCallerMutation(t *testing.T) {
	e := New(Options{})
	// Built by hand so the graph is binary: the compiler then carries the
	// caller's graph itself (no binarization copy), the aliasing-prone
	// case.
	g := dag.New("mutate-after-compile")
	a, b := g.AddInput(), g.AddInput()
	s := g.AddOp(dag.OpAdd, a, b)
	g.AddOp(dag.OpMul, s, g.AddConst(3))
	if !g.IsBinary() {
		t.Fatal("test premise: graph should be binary")
	}
	c, err := e.Compile(g, testCfg, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	in := testInputs(g, 1)
	want, err := dag.Eval(c.Graph, in)
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the caller's graph after compiling must not corrupt the
	// cached program another request may share.
	g.AddOp(dag.OpAdd, 0, 1)
	res, err := e.ExecuteCompiled(c, in)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != len(c.Graph.Outputs()) {
		t.Fatalf("output count changed after caller mutation")
	}
	for sink, got := range res.Outputs {
		if got != want[sink] {
			t.Errorf("sink %d = %v, want %v after caller mutation", sink, got, want[sink])
		}
	}
	// The mutated graph now has a new fingerprint: compiling it is a miss,
	// not a stale hit.
	if _, err := e.Compile(g, testCfg, compiler.Options{}); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Misses != 2 {
		t.Errorf("misses = %d, want 2 (mutated graph is a new address)", st.Misses)
	}
}

func TestPooledResultStatsDoNotAliasTheMachine(t *testing.T) {
	e := New(Options{})
	g := testGraph(1)
	c, err := e.Compile(g, testCfg, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := e.ExecuteCompiled(c, testInputs(g, 1))
	if err != nil {
		t.Fatal(err)
	}
	instrs := res1.Stats.Instrs[arch.KindExec]
	// Reuse the pooled machine; res1's stats must not change underneath.
	if _, err := e.ExecuteCompiled(c, testInputs(g, 2)); err != nil {
		t.Fatal(err)
	}
	if res1.Stats.Instrs[arch.KindExec] != instrs {
		t.Error("result stats alias the pooled machine's counters")
	}
}
