// Package spatial reproduces the datapath-shape study of §II-B
// (fig. 3(c)): what fraction of a candidate spatial datapath can the best
// subgraph of an irregular DAG keep busy? The paper used a
// constrained-optimization mapper [34]; this package uses greedy mappers
// that find large (not provably maximal) mappable subgraphs, which is
// sufficient to reproduce the qualitative result — tree utilization stays
// high while systolic-array utilization collapses with size.
package spatial

import (
	"math/rand"

	"dpuv2/internal/arch"
	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
)

// TreePeakUtil returns the peak utilization (busy arithmetic PEs / total
// PEs) of a single PE tree with the given number of inputs (a power of
// two ≥ 2), using the block decomposer to find the best-filled exec.
func TreePeakUtil(g *dag.Graph, inputs int) (float64, error) {
	d := 0
	for 1<<uint(d+1) <= inputs {
		d++
	}
	cfg := arch.Config{D: d, B: 1 << uint(d), R: 128, Output: arch.OutCrossbar}
	c, err := compiler.Compile(g, cfg, compiler.Options{})
	if err != nil {
		return 0, err
	}
	return c.Stats.PeakUtil, nil
}

// SystolicPeakUtil estimates the peak utilization of an n-input systolic
// array (k×k with k = n/2, as in fig. 3(a)) by greedily growing grid
// mappings from many random seeds. A node may sit at position (i,j) only
// if its arguments are exactly the outputs of positions (i−1,j) and
// (i,j−1) (or array-edge external inputs), the systolic dataflow
// constraint.
func SystolicPeakUtil(g *dag.Graph, inputs int, trials int, seed int64) float64 {
	k := inputs / 2
	if k < 1 {
		k = 1
	}
	rng := rand.New(rand.NewSource(seed))
	bestNodes := 0
	interior := make([]dag.NodeID, 0, g.NumNodes())
	for i := 0; i < g.NumNodes(); i++ {
		if !g.Op(dag.NodeID(i)).IsLeaf() {
			interior = append(interior, dag.NodeID(i))
		}
	}
	if len(interior) == 0 {
		return 0
	}
	for t := 0; t < trials; t++ {
		seedNode := interior[rng.Intn(len(interior))]
		placed := growGrid(g, seedNode, k)
		if placed > bestNodes {
			bestNodes = placed
		}
	}
	return float64(bestNodes) / float64(k*k)
}

// growGrid places seed at (0,0) and fills the k×k grid in wavefront order.
func growGrid(g *dag.Graph, seed dag.NodeID, k int) int {
	grid := make([]dag.NodeID, k*k)
	for i := range grid {
		grid[i] = dag.InvalidNode
	}
	used := map[dag.NodeID]bool{seed: true}
	grid[0] = seed
	placed := 1
	at := func(i, j int) dag.NodeID {
		if i < 0 || j < 0 || i >= k || j >= k {
			return dag.InvalidNode
		}
		return grid[i*k+j]
	}
	// consumes reports whether node n takes u's output as an argument.
	consumes := func(n, u dag.NodeID) bool {
		for _, a := range g.Args(n) {
			if a == u {
				return true
			}
		}
		return false
	}
	for wf := 1; wf < 2*k-1; wf++ {
		for i := 0; i <= wf && i < k; i++ {
			j := wf - i
			if j < 0 || j >= k {
				continue
			}
			up, left := at(i-1, j), at(i, j-1)
			// Systolic dataflow: external operands enter only at the
			// array edges, so an interior position needs both neighbours
			// placed and consumed; edge positions need their one
			// interior neighbour.
			if i > 0 && up == dag.InvalidNode {
				continue
			}
			if j > 0 && left == dag.InvalidNode {
				continue
			}
			var cand []dag.NodeID
			if up != dag.InvalidNode {
				cand = g.Succs(up)
			} else {
				cand = g.Succs(left)
			}
			for _, n := range cand {
				if used[n] || g.Op(n).IsLeaf() {
					continue
				}
				if up != dag.InvalidNode && !consumes(n, up) {
					continue
				}
				if left != dag.InvalidNode && !consumes(n, left) {
					continue
				}
				grid[i*k+j] = n
				used[n] = true
				placed++
				break
			}
		}
	}
	return placed
}
