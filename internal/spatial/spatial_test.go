package spatial

import (
	"testing"

	"dpuv2/internal/dag"
	"dpuv2/internal/pc"
)

func irregular() *dag.Graph {
	g := pc.Build(pc.Suite()[0], 0.1)
	bg, _ := dag.Binarize(g)
	return bg
}

func TestTreeUtilizationStaysHigh(t *testing.T) {
	g := irregular()
	for _, n := range []int{2, 4, 8} {
		u, err := TreePeakUtil(g, n)
		if err != nil {
			t.Fatalf("inputs=%d: %v", n, err)
		}
		if u < 0.6 {
			t.Errorf("tree peak utilization %.2f at %d inputs, fig. 3(c) expects near-full", u, n)
		}
		if u > 1.0 {
			t.Errorf("utilization %v > 1", u)
		}
	}
}

func TestSystolicUtilizationCollapses(t *testing.T) {
	g := irregular()
	u4 := SystolicPeakUtil(g, 4, 200, 1)
	u16 := SystolicPeakUtil(g, 16, 200, 1)
	if u4 <= 0 {
		t.Fatal("systolic mapper found nothing at 4 inputs")
	}
	if u16 >= u4 {
		t.Errorf("systolic utilization should fall with size: u4=%.2f u16=%.2f", u4, u16)
	}
	if u16 > 0.5 {
		t.Errorf("16-input systolic utilization %.2f, fig. 3(c) expects collapse", u16)
	}
}

func TestSystolicHandlesTinyGraphs(t *testing.T) {
	g := dag.New("tiny")
	a := g.AddInput()
	b := g.AddInput()
	g.AddOp(dag.OpAdd, a, b)
	if u := SystolicPeakUtil(g, 8, 10, 1); u < 0 || u > 1 {
		t.Fatalf("utilization %v out of range", u)
	}
	leafOnly := dag.New("leaves")
	leafOnly.AddInput()
	if u := SystolicPeakUtil(leafOnly, 4, 10, 1); u != 0 {
		t.Fatalf("leaf-only graph should map nothing, got %v", u)
	}
}
