package energy

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"dpuv2/internal/arch"
	"dpuv2/internal/sim"
)

func TestModelMatchesTableII(t *testing.T) {
	// At the anchor point the model must reproduce Table II exactly.
	b := Model(arch.MinEDP())
	if math.Abs(b.TotalArea()-3.2) > 0.05 {
		t.Errorf("total area %.2f mm², Table II says 3.2", b.TotalArea())
	}
	if math.Abs(b.TotalPower()-108.9) > 0.5 {
		t.Errorf("total power %.1f mW, Table II says 108.9", b.TotalPower())
	}
	if b.AreaMM2[InstrMem] != 1.20 || b.PowerMW[RFBanks] != 24.0 {
		t.Errorf("component anchors off: %+v", b)
	}
}

func TestScalingDirections(t *testing.T) {
	small := Model(arch.Config{D: 3, B: 16, R: 32, Output: arch.OutPerLayer})
	big := Model(arch.MinEDP()) // B=64
	if small.PowerMW[PEs] >= big.PowerMW[PEs] {
		t.Error("PE power should grow with B (more trees)")
	}
	if small.AreaMM2[InputXbar] >= big.AreaMM2[InputXbar] {
		t.Error("crossbar area should grow superlinearly with B")
	}
	moreR := Model(arch.Config{D: 3, B: 64, R: 128, Output: arch.OutPerLayer})
	if moreR.PowerMW[RFBanks] <= big.PowerMW[RFBanks] {
		t.Error("bank power should grow with R")
	}
	deeper := Model(arch.Config{D: 2, B: 64, R: 32, Output: arch.OutPerLayer})
	if deeper.AreaMM2[PEs] <= 0 {
		t.Error("degenerate PE area")
	}
}

func TestComponentNames(t *testing.T) {
	if PEs.Name() != "PEs" || DataMem.Name() != "Data memory" {
		t.Error("component names broken")
	}
	if Components() != int(numComponents) {
		t.Error("Components() mismatch")
	}
}

func fakeStats(cycles, peOps, regRW, mem int) sim.Stats {
	return sim.Stats{
		Cycles:    cycles,
		PEOpsDone: peOps,
		RegReads:  regRW / 2,
		RegWrites: regRW - regRW/2,
		MemReads:  mem / 2,
		MemWrites: mem - mem/2,
	}
}

func TestEstimateRunUnits(t *testing.T) {
	cfg := arch.MinEDP()
	st := fakeStats(3000, 30000, 40000, 2000)
	e := EstimateRun(cfg, 10000, st, nil)
	// 3000 cycles at 300 MHz = 10 µs for 10k ops → 1 ns/op → 1 GOPS.
	if math.Abs(e.LatencyPerOp-1.0) > 1e-9 {
		t.Errorf("latency/op = %v ns, want 1.0", e.LatencyPerOp)
	}
	if math.Abs(e.ThroughputGOP-1.0) > 1e-9 {
		t.Errorf("throughput = %v GOPS, want 1.0", e.ThroughputGOP)
	}
	if e.EnergyPerOp <= 0 || e.EDP != e.EnergyPerOp*e.LatencyPerOp {
		t.Errorf("energy accounting inconsistent: %+v", e)
	}
	// Power must sit in the physical ballpark of the design (tens of mW).
	if e.PowerMW < 20 || e.PowerMW > 300 {
		t.Errorf("power %v mW implausible", e.PowerMW)
	}
}

func TestActivityScalesEnergy(t *testing.T) {
	cfg := arch.MinEDP()
	busy := EstimateRun(cfg, 10000, fakeStats(1000, 50000, 60000, 5000), nil)
	idle := EstimateRun(cfg, 10000, fakeStats(1000, 1000, 2000, 100), nil)
	if busy.PowerMW <= idle.PowerMW {
		t.Errorf("activity should raise power: busy=%v idle=%v", busy.PowerMW, idle.PowerMW)
	}
	if idle.PowerMW < leakFrac*Model(cfg).TotalPower()*0.9 {
		t.Errorf("idle power below leakage floor: %v", idle.PowerMW)
	}
}

func TestZeroOpsSafe(t *testing.T) {
	e := EstimateRun(arch.MinEDP(), 0, sim.Stats{Cycles: 10}, nil)
	if e.LatencyPerOp != 0 || e.EnergyPerOp != 0 {
		t.Errorf("zero-op estimate should zero the per-op metrics: %+v", e)
	}
}

// syntheticStats derives a deterministic activity profile for a config
// from a fixed workload shape (ops arithmetic nodes): the quantities a
// simulation of the same program would report, as pure functions of the
// config, so the ranking tests below need no compiler in the loop
// (energy cannot import dse without a cycle).
func syntheticStats(cfg arch.Config, ops int) sim.Stats {
	cfg = cfg.Normalize()
	// Fewer PEs → more cycles; a mild penalty for shallow trees stands in
	// for the copy/load overhead of narrow datapaths.
	cycles := ops/cfg.NumPEs() + 4*cfg.D + 20
	return sim.Stats{
		Cycles:    cycles,
		PEOpsDone: ops,
		RegReads:  2 * ops,
		RegWrites: ops,
		MemReads:  ops / 4,
		MemWrites: ops / 8,
	}
}

// rankByEDP scores every config with EstimateRun and returns the config
// strings best-first, ties broken by the config's own string — the
// deterministic order an autotuner relies on.
func rankByEDP(cfgs []arch.Config, ops int) []string {
	type scored struct {
		name string
		edp  float64
	}
	rows := make([]scored, 0, len(cfgs))
	for _, cfg := range cfgs {
		est := EstimateRun(cfg, ops, syntheticStats(cfg, ops), nil)
		rows = append(rows, scored{cfg.Normalize().String(), est.EDP})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].edp != rows[j].edp {
			return rows[i].edp < rows[j].edp
		}
		return rows[i].name < rows[j].name
	})
	names := make([]string, len(rows))
	for i, r := range rows {
		names[i] = r.name
	}
	return names
}

// TestRankingStability pins the property autotuning decisions depend on:
// scoring the same candidates always yields the same order — across
// repeated runs, across candidate-iteration order (the model is a pure
// function, so shuffling the input must only permute, never rescore) —
// and the top of the ranking matches a golden expectation, so a model
// change that silently reshuffles tuned configs fails loudly here.
func TestRankingStability(t *testing.T) {
	grid := make([]arch.Config, 0, 48)
	for _, d := range []int{1, 2, 3} {
		for _, b := range []int{8, 16, 32, 64} {
			for _, r := range []int{16, 32, 64, 128} {
				grid = append(grid, arch.Config{D: d, B: b, R: r, Output: arch.OutPerLayer})
			}
		}
	}
	const ops = 10_000
	base := rankByEDP(grid, ops)
	if len(base) != len(grid) {
		t.Fatalf("ranking dropped candidates: %d of %d", len(base), len(grid))
	}

	// Same candidates, many runs and seeds of shuffling ⇒ same order.
	for seed := int64(1); seed <= 5; seed++ {
		shuffled := append([]arch.Config(nil), grid...)
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		got := rankByEDP(shuffled, ops)
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("seed %d: rank %d is %s, was %s — ranking depends on evaluation order", seed, i, got[i], base[i])
			}
		}
	}

	// Golden head of the ranking for this workload shape. If a model
	// change legitimately reorders the design space, update these (and
	// expect persisted tuning decisions to be re-derived).
	golden := []string{
		"D=3,B=64,R=16,per-layer",
		"D=2,B=64,R=16,per-layer",
		"D=3,B=64,R=32,per-layer",
	}
	for i, want := range golden {
		if base[i] != want {
			t.Fatalf("golden rank %d: got %s, want %s (full head: %v)", i, base[i], want, base[:5])
		}
	}

	// Scores themselves are bitwise-reproducible run to run.
	for _, cfg := range grid[:8] {
		a := EstimateRun(cfg, ops, syntheticStats(cfg, ops), nil)
		b := EstimateRun(cfg, ops, syntheticStats(cfg, ops), nil)
		if a != b {
			t.Fatalf("EstimateRun not reproducible for %v:\n %+v\n %+v", cfg, a, b)
		}
	}
}

// offGridCandidates are configurations from the annealing search's
// enlarged space — deeper trees, B/R rungs past the grid edges,
// alternate output topologies — all valid and within machine bounds.
func offGridCandidates() []arch.Config {
	return []arch.Config{
		{D: 4, B: 32, R: 8, Output: arch.OutPerLayer},
		{D: 4, B: 64, R: 16, Output: arch.OutPerLayer},
		{D: 4, B: 128, R: 32, Output: arch.OutPerLayer},
		{D: 5, B: 32, R: 64, Output: arch.OutPerLayer},
		{D: 5, B: 64, R: 16, Output: arch.OutPerLayer},
		{D: 6, B: 64, R: 8, Output: arch.OutPerLayer},
		{D: 6, B: 128, R: 256, Output: arch.OutPerLayer},
		{D: 1, B: 4, R: 8, Output: arch.OutPerLayer},
		{D: 2, B: 4, R: 256, Output: arch.OutPerLayer},
		{D: 3, B: 64, R: 32, Output: arch.OutPerPE},
		{D: 2, B: 16, R: 16, Output: arch.OutCrossbar},
	}
}

// TestRankingStabilityOffGrid extends the golden ranking to the
// annealing search's enlarged candidate space: off-grid candidates must
// rank reproducibly alongside the 48 grid points — same order under
// shuffling, and a pinned golden head — so annealed decisions are as
// stable as grid ones.
func TestRankingStabilityOffGrid(t *testing.T) {
	cfgs := make([]arch.Config, 0, 64)
	for _, d := range []int{1, 2, 3} {
		for _, b := range []int{8, 16, 32, 64} {
			for _, r := range []int{16, 32, 64, 128} {
				cfgs = append(cfgs, arch.Config{D: d, B: b, R: r, Output: arch.OutPerLayer})
			}
		}
	}
	cfgs = append(cfgs, offGridCandidates()...)
	for _, c := range cfgs {
		if err := c.Normalize().Validate(); err != nil {
			t.Fatalf("candidate %v invalid: %v", c, err)
		}
	}
	const ops = 10_000
	base := rankByEDP(cfgs, ops)
	if len(base) != len(cfgs) {
		t.Fatalf("ranking dropped candidates: %d of %d", len(base), len(cfgs))
	}

	for seed := int64(1); seed <= 5; seed++ {
		shuffled := append([]arch.Config(nil), cfgs...)
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		got := rankByEDP(shuffled, ops)
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("seed %d: rank %d is %s, was %s — ranking depends on evaluation order", seed, i, got[i], base[i])
			}
		}
	}

	// Golden head over the enlarged space. If a model change legitimately
	// reorders it, update these and re-derive persisted anneal decisions.
	golden := []string{
		"D=6,B=64,R=8,per-layer",
		"D=4,B=128,R=32,per-layer",
		"D=4,B=64,R=16,per-layer",
		"D=5,B=64,R=16,per-layer",
	}
	for i, want := range golden {
		if base[i] != want {
			t.Fatalf("golden rank %d: got %s, want %s (full head: %v)", i, base[i], want, base[:6])
		}
	}
}
