package energy

import (
	"math"
	"testing"

	"dpuv2/internal/arch"
	"dpuv2/internal/sim"
)

func TestModelMatchesTableII(t *testing.T) {
	// At the anchor point the model must reproduce Table II exactly.
	b := Model(arch.MinEDP())
	if math.Abs(b.TotalArea()-3.2) > 0.05 {
		t.Errorf("total area %.2f mm², Table II says 3.2", b.TotalArea())
	}
	if math.Abs(b.TotalPower()-108.9) > 0.5 {
		t.Errorf("total power %.1f mW, Table II says 108.9", b.TotalPower())
	}
	if b.AreaMM2[InstrMem] != 1.20 || b.PowerMW[RFBanks] != 24.0 {
		t.Errorf("component anchors off: %+v", b)
	}
}

func TestScalingDirections(t *testing.T) {
	small := Model(arch.Config{D: 3, B: 16, R: 32, Output: arch.OutPerLayer})
	big := Model(arch.MinEDP()) // B=64
	if small.PowerMW[PEs] >= big.PowerMW[PEs] {
		t.Error("PE power should grow with B (more trees)")
	}
	if small.AreaMM2[InputXbar] >= big.AreaMM2[InputXbar] {
		t.Error("crossbar area should grow superlinearly with B")
	}
	moreR := Model(arch.Config{D: 3, B: 64, R: 128, Output: arch.OutPerLayer})
	if moreR.PowerMW[RFBanks] <= big.PowerMW[RFBanks] {
		t.Error("bank power should grow with R")
	}
	deeper := Model(arch.Config{D: 2, B: 64, R: 32, Output: arch.OutPerLayer})
	if deeper.AreaMM2[PEs] <= 0 {
		t.Error("degenerate PE area")
	}
}

func TestComponentNames(t *testing.T) {
	if PEs.Name() != "PEs" || DataMem.Name() != "Data memory" {
		t.Error("component names broken")
	}
	if Components() != int(numComponents) {
		t.Error("Components() mismatch")
	}
}

func fakeStats(cycles, peOps, regRW, mem int) sim.Stats {
	return sim.Stats{
		Cycles:    cycles,
		PEOpsDone: peOps,
		RegReads:  regRW / 2,
		RegWrites: regRW - regRW/2,
		MemReads:  mem / 2,
		MemWrites: mem - mem/2,
	}
}

func TestEstimateRunUnits(t *testing.T) {
	cfg := arch.MinEDP()
	st := fakeStats(3000, 30000, 40000, 2000)
	e := EstimateRun(cfg, 10000, st, nil)
	// 3000 cycles at 300 MHz = 10 µs for 10k ops → 1 ns/op → 1 GOPS.
	if math.Abs(e.LatencyPerOp-1.0) > 1e-9 {
		t.Errorf("latency/op = %v ns, want 1.0", e.LatencyPerOp)
	}
	if math.Abs(e.ThroughputGOP-1.0) > 1e-9 {
		t.Errorf("throughput = %v GOPS, want 1.0", e.ThroughputGOP)
	}
	if e.EnergyPerOp <= 0 || e.EDP != e.EnergyPerOp*e.LatencyPerOp {
		t.Errorf("energy accounting inconsistent: %+v", e)
	}
	// Power must sit in the physical ballpark of the design (tens of mW).
	if e.PowerMW < 20 || e.PowerMW > 300 {
		t.Errorf("power %v mW implausible", e.PowerMW)
	}
}

func TestActivityScalesEnergy(t *testing.T) {
	cfg := arch.MinEDP()
	busy := EstimateRun(cfg, 10000, fakeStats(1000, 50000, 60000, 5000), nil)
	idle := EstimateRun(cfg, 10000, fakeStats(1000, 1000, 2000, 100), nil)
	if busy.PowerMW <= idle.PowerMW {
		t.Errorf("activity should raise power: busy=%v idle=%v", busy.PowerMW, idle.PowerMW)
	}
	if idle.PowerMW < leakFrac*Model(cfg).TotalPower()*0.9 {
		t.Errorf("idle power below leakage floor: %v", idle.PowerMW)
	}
}

func TestZeroOpsSafe(t *testing.T) {
	e := EstimateRun(arch.MinEDP(), 0, sim.Stats{Cycles: 10}, nil)
	if e.LatencyPerOp != 0 || e.EnergyPerOp != 0 {
		t.Errorf("zero-op estimate should zero the per-op metrics: %+v", e)
	}
}
