// Package energy models area, power, energy and energy-delay product of
// DPU-v2 configurations. It stands in for the paper's 28nm gate-level
// synthesis with switching-activity annotation (see DESIGN.md): every
// component is anchored to the published Table II breakdown at the
// min-EDP point (D=3, B=64, R=32, 300 MHz) and scaled with first-order
// structural laws, with dynamic power additionally modulated by the
// activity factors the simulator measures (PE utilization, register and
// memory traffic per cycle).
package energy

import (
	"dpuv2/internal/arch"
	"dpuv2/internal/sim"
)

// Component identifies one row of Table II.
type Component int

const (
	PEs Component = iota
	PipeRegs
	InputXbar
	OutputXbar
	RFBanks
	WrAddrGen
	InstrFetch
	Decode
	CtrlPipeRegs
	InstrMem
	DataMem
	numComponents
)

var componentNames = [numComponents]string{
	"PEs", "Pipelining registers", "Input interconnect", "Output interconnect",
	"Register file banks", "Wr addr generator", "Instr fetch", "Decode",
	"Ctrl pipelining registers", "Instruction memory", "Data memory",
}

// Name returns the Table II row label.
func (c Component) Name() string { return componentNames[c] }

// Table II reference values at the min-EDP design (28nm, 300 MHz).
var (
	refAreaMM2 = [numComponents]float64{0.13, 0.04, 0.14, 0.01, 0.35, 0.03, 0.06, 0.04, 0.01, 1.20, 1.20}
	refPowerMW = [numComponents]float64{11.9, 8.0, 10.0, 0.5, 24.0, 7.8, 7.0, 2.6, 2.7, 27.7, 6.7}
)

// refCfg is the anchor configuration for the scaling laws.
var refCfg = arch.MinEDP()

// leakFrac is the assumed static fraction of each component's reference
// power; the rest scales with activity.
const leakFrac = 0.35

// Breakdown is the modeled area and power of one configuration, by
// component, at the reference activity (used for Table II) — plus totals.
type Breakdown struct {
	Cfg     arch.Config
	AreaMM2 [numComponents]float64
	PowerMW [numComponents]float64
}

// TotalArea sums the component areas (mm²).
func (b *Breakdown) TotalArea() float64 {
	t := 0.0
	for _, a := range b.AreaMM2 {
		t += a
	}
	return t
}

// TotalPower sums the component powers (mW).
func (b *Breakdown) TotalPower() float64 {
	t := 0.0
	for _, p := range b.PowerMW {
		t += p
	}
	return t
}

// Components returns the number of modeled components.
func Components() int { return int(numComponents) }

// scale returns the structural area scale factor of component c when
// moving from the reference configuration to cfg.
func scale(c Component, cfg arch.Config) float64 {
	w := arch.WidthsOf(cfg)
	w0 := arch.WidthsOf(refCfg)
	fb := float64(cfg.B) / float64(refCfg.B)
	switch c {
	case PEs, PipeRegs:
		return float64(cfg.NumPEs()) / float64(refCfg.NumPEs())
	case InputXbar:
		return fb * fb // B×B crossbar wiring
	case OutputXbar:
		return fb * float64(cfg.D) / float64(refCfg.D)
	case RFBanks, WrAddrGen:
		return float64(cfg.B*cfg.R) / float64(refCfg.B*refCfg.R)
	case InstrFetch, Decode:
		return float64(w.IL) / float64(w0.IL)
	case CtrlPipeRegs:
		return float64(w.IL*cfg.D) / float64(w0.IL*refCfg.D)
	case InstrMem:
		// Capacity held constant across the sweep; the read datapath
		// widens with IL.
		return 0.5 + 0.5*float64(w.IL)/float64(w0.IL)
	case DataMem:
		// Capacity constant; the row width (B words) scales the banking.
		return 0.5 + 0.5*fb
	}
	return 1
}

// Model computes the static breakdown for cfg (reference activity), the
// Table II reproduction when cfg is the min-EDP point.
func Model(cfg arch.Config) *Breakdown {
	cfg = cfg.Normalize()
	b := &Breakdown{Cfg: cfg}
	for c := Component(0); c < numComponents; c++ {
		s := scale(c, cfg)
		b.AreaMM2[c] = refAreaMM2[c] * s
		b.PowerMW[c] = refPowerMW[c] * s
	}
	return b
}

// Activity captures how busy each structure was during a run; derived
// from simulator statistics.
type Activity struct {
	// PEUtil is arithmetic PE ops per PE per cycle.
	PEUtil float64
	// RegTraffic is register reads+writes per bank per cycle.
	RegTraffic float64
	// MemTraffic is data-memory words moved per cycle, normalized to B.
	MemTraffic float64
	// FetchRate is instruction bits consumed per cycle relative to IL
	// (dense packing makes short instructions cheaper).
	FetchRate float64
}

// refActivity is the activity the Table II power numbers correspond to:
// measured on the benchmark suites at the min-EDP design.
var refActivity = Activity{PEUtil: 0.55, RegTraffic: 0.45, MemTraffic: 0.08, FetchRate: 0.75}

// ActivityOf derives activity factors from a simulation.
func ActivityOf(cfg arch.Config, st sim.Stats, prog *arch.Program) Activity {
	cfg = cfg.Normalize()
	cyc := float64(st.Cycles)
	if cyc == 0 {
		cyc = 1
	}
	a := Activity{
		PEUtil:     float64(st.PEOpsDone) / (cyc * float64(cfg.NumPEs())),
		RegTraffic: float64(st.RegReads+st.RegWrites) / (cyc * float64(cfg.B)),
		MemTraffic: float64(st.MemReads+st.MemWrites) / (cyc * float64(cfg.B)),
	}
	if prog != nil {
		w := arch.WidthsOf(cfg)
		a.FetchRate = float64(prog.BitSize()) / (cyc * float64(w.IL))
	} else {
		a.FetchRate = refActivity.FetchRate
	}
	return a
}

// activityFactor returns the dynamic-power multiplier of component c for
// the given activity relative to the reference activity.
func activityFactor(c Component, a Activity) float64 {
	ratio := func(x, ref float64) float64 {
		if ref <= 0 {
			return 1
		}
		r := x / ref
		if r < 0 {
			return 0
		}
		return r
	}
	switch c {
	case PEs, PipeRegs:
		return ratio(a.PEUtil, refActivity.PEUtil)
	case InputXbar, OutputXbar, RFBanks, WrAddrGen:
		return ratio(a.RegTraffic, refActivity.RegTraffic)
	case DataMem:
		return ratio(a.MemTraffic, refActivity.MemTraffic)
	case InstrFetch, Decode, CtrlPipeRegs, InstrMem:
		return ratio(a.FetchRate, refActivity.FetchRate)
	}
	return 1
}

// Estimate is the modeled outcome of one workload execution on one
// configuration.
type Estimate struct {
	Cfg           arch.Config
	Ops           int // DAG arithmetic nodes executed
	Cycles        int
	LatencyPerOp  float64 // ns
	PowerMW       float64
	EnergyPerOp   float64 // pJ
	EDP           float64 // pJ·ns per op
	AreaMM2       float64
	ThroughputGOP float64 // operations per second / 1e9
}

// Estimate combines simulator statistics with the component model.
// ops is the number of DAG arithmetic operations (the paper's "OPS").
func EstimateRun(cfg arch.Config, ops int, st sim.Stats, prog *arch.Program) Estimate {
	cfg = cfg.Normalize()
	b := Model(cfg)
	act := ActivityOf(cfg, st, prog)
	power := 0.0
	for c := Component(0); c < numComponents; c++ {
		p := b.PowerMW[c]
		power += p*leakFrac + p*(1-leakFrac)*activityFactor(c, act)
	}
	tclkNS := 1e3 / cfg.ClockMHz
	lat := float64(st.Cycles) * tclkNS
	e := Estimate{
		Cfg:     cfg,
		Ops:     ops,
		Cycles:  st.Cycles,
		PowerMW: power,
		AreaMM2: b.TotalArea(),
	}
	if ops > 0 {
		e.LatencyPerOp = lat / float64(ops)
		// 1 mW × 1 ns = 10⁻³ J/s × 10⁻⁹ s = 10⁻¹² J = 1 pJ exactly.
		e.EnergyPerOp = power * e.LatencyPerOp
		e.EDP = e.EnergyPerOp * e.LatencyPerOp
		e.ThroughputGOP = float64(ops) / lat
	}
	return e
}
