// Package baseline provides the comparison platforms of the paper's
// evaluation (§V-C): a real multicore level-synchronous executor (the
// GRAPHOPT-style CPU baseline, actually runnable on the host), and
// calibrated analytic throughput models for the platforms that cannot be
// run here — Intel Xeon CPU, RTX GPU, the DPU (v1) ASIP, and SPU. Each
// analytic model is anchored to the GOPS the paper reports and driven by
// the structural workload parameters (node count n, longest path l) that
// the paper identifies as the performance determinants, so cross-platform
// *orderings and ratios* are preserved (see DESIGN.md, substitutions).
package baseline

import (
	"runtime"
	"sync"

	"dpuv2/internal/dag"
)

// Platform identifies a modeled comparison platform.
type Platform int

const (
	// CPU is the 18-core Xeon Gold 6154 running GRAPHOPT-parallelized
	// DAGs [44].
	CPU Platform = iota
	// GPU is the RTX 2080 Ti running cuSPARSE-style level-scheduled
	// kernels [30].
	GPU
	// DPU1 is the first-generation DAG processing unit [46]: 64 parallel
	// units around a shared 64-bank scratchpad with 43% load-request
	// bank-conflict rate.
	DPU1
	// SPU is the sparse processing unit [11]; like the paper, its
	// throughput is estimated from its published speedup over its own
	// CPU baseline.
	SPU
	// CPUSPU is the CPU baseline used in the SPU paper.
	CPUSPU
)

func (p Platform) String() string {
	switch p {
	case CPU:
		return "CPU"
	case GPU:
		return "GPU"
	case DPU1:
		return "DPU"
	case SPU:
		return "SPU"
	case CPUSPU:
		return "CPU_SPU"
	}
	return "?"
}

// Workload is the structural summary the analytic models consume.
type Workload struct {
	Nodes       int // arithmetic operations n
	LongestPath int // critical path l in nodes
}

// WorkloadOf summarizes a DAG.
func WorkloadOf(g *dag.Graph) Workload {
	st := dag.ComputeStats(g)
	return Workload{Nodes: st.Interior, LongestPath: st.LongestPath}
}

// Model parameters calibrated against Table III and fig. 1(c)/fig. 14 of
// the paper. All times in nanoseconds.
const (
	// CPU: memory-bound scalar op cost per core and per-level sync cost;
	// GRAPHOPT coarsens levels into super-layers of ≥minLayerOps ops, so
	// sync count is bounded.
	cpuCores   = 18
	cpuOpNS    = 9.0   // effective per-op latency (irregular 4B gathers)
	cpuSyncNS  = 600.0 // barrier across 18 cores
	cpuCoarsen = 8.0   // GRAPHOPT merges ≈8 levels per super-layer
	cpuStartNS = 1000.0

	// GPU: per-kernel-launch overhead dominates small irregular DAGs.
	gpuLaunchNS = 2000.0
	gpuOpNS     = 0.12 // per-op cost at full occupancy (≈8.3 GOPS ceiling)
	gpuMinOcc   = 0.05 // fraction of peak reached by tiny levels

	// DPU v1: 64 units at 300 MHz; a unit completes one op per
	// ~5.5 cycles (fetch, two operand loads with 43% conflict stalls,
	// compute, store), further limited by available parallelism.
	dpu1Units       = 64
	dpu1CyclesPerOp = 5.5
	dpu1ClockGHz    = 0.3

	// SPU estimation: the paper's Table III footnote derives SPU GOPS as
	// 13.3× its CPU baseline; CPU_SPU itself tracks the CPU model with a
	// slightly different constant (1.7 vs 1.2 GOPS on the large suite).
	spuSpeedup  = 13.3
	cpuSPUScale = 0.95
)

// Throughput returns the modeled throughput in GOPS for the platform.
func Throughput(p Platform, w Workload) float64 {
	n := float64(w.Nodes)
	l := float64(w.LongestPath)
	if n <= 0 {
		return 0
	}
	if l < 1 {
		l = 1
	}
	switch p {
	case CPU:
		return n / cpuTimeNS(n, l)
	case CPUSPU:
		return cpuSPUScale * n / cpuTimeNS(n, l)
	case GPU:
		// Level-wise kernels: each of ~l levels costs a launch plus its
		// share of compute; small levels run far below occupancy.
		perLevel := n / l
		occ := perLevel / (perLevel + 4096)
		if occ < gpuMinOcc {
			occ = gpuMinOcc
		}
		t := l*gpuLaunchNS + n*gpuOpNS/occ
		return n / t
	case DPU1:
		// Parallelism-limited units with conflict-stalled scratchpad.
		par := n / l
		active := par
		if active > dpu1Units {
			active = dpu1Units
		}
		opsPerCycle := active / dpu1CyclesPerOp
		cycles := n / opsPerCycle
		return n / (cycles / dpu1ClockGHz)
	case SPU:
		return spuSpeedup * Throughput(CPUSPU, w)
	}
	return 0
}

func cpuTimeNS(n, l float64) float64 {
	// GRAPHOPT coarsens consecutive levels into super-layers, bounding
	// the number of barriers to ≈l/cpuCoarsen.
	layers := l / cpuCoarsen
	if layers < 1 {
		layers = 1
	}
	return cpuStartNS + n*cpuOpNS/cpuCores + layers*cpuSyncNS
}

// PowerW returns the platform power draw used for the EDP rows of
// Table III (paper-reported wall powers).
func PowerW(p Platform, large bool) float64 {
	switch p {
	case CPU:
		if large {
			return 65
		}
		return 55
	case CPUSPU:
		return 61
	case GPU:
		if large {
			return 155
		}
		return 98
	case DPU1:
		return 0.07
	case SPU:
		return 16
	}
	return 0
}

// RunParallel executes the DAG on the host with one goroutine per core
// using level-synchronous scheduling — the real counterpart of the CPU
// model, used by the benchmark harness to report measured host GOPS.
func RunParallel(g *dag.Graph, inputs []float64, workers int) ([]float64, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	vals := make([]float64, g.NumNodes())
	next := 0
	for i := 0; i < g.NumNodes(); i++ {
		if g.Op(dag.NodeID(i)) == dag.OpInput {
			vals[i] = inputs[next]
			next++
		} else if g.Op(dag.NodeID(i)) == dag.OpConst {
			vals[i] = g.Node(dag.NodeID(i)).Val
		}
	}
	levels := dag.Levels(g)
	var wg sync.WaitGroup
	for _, level := range levels {
		chunk := (len(level) + workers - 1) / workers
		if chunk == 0 {
			continue
		}
		for lo := 0; lo < len(level); lo += chunk {
			hi := lo + chunk
			if hi > len(level) {
				hi = len(level)
			}
			wg.Add(1)
			go func(part []dag.NodeID) {
				defer wg.Done()
				for _, id := range part {
					n := g.Node(id)
					switch n.Op {
					case dag.OpAdd:
						acc := vals[n.Args[0]]
						for _, a := range n.Args[1:] {
							acc += vals[a]
						}
						vals[id] = acc
					case dag.OpMul:
						acc := vals[n.Args[0]]
						for _, a := range n.Args[1:] {
							acc *= vals[a]
						}
						vals[id] = acc
					}
				}
			}(level[lo:hi])
		}
		wg.Wait()
	}
	return vals, nil
}
