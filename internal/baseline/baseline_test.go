package baseline

import (
	"math/rand"
	"testing"

	"dpuv2/internal/dag"
	"dpuv2/internal/pc"
)

func TestRunParallelMatchesEval(t *testing.T) {
	g := dag.RandomGraph(dag.RandomConfig{Inputs: 40, Interior: 5000, MaxArgs: 4, MulFrac: 0.4, Seed: 3})
	rng := rand.New(rand.NewSource(9))
	in := make([]float64, len(g.Inputs()))
	for i := range in {
		in[i] = rng.Float64()*2 - 1
	}
	want, err := dag.Eval(g, in)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, 16} {
		got, err := RunParallel(g, in, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: node %d = %v, want %v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestCPUModelCalibration(t *testing.T) {
	// Table III: CPU ≈ 1.2 GOPS averaged over the PC+SpTRSV suites.
	var sum float64
	n := 0
	for _, spec := range pc.Suite() {
		w := Workload{Nodes: spec.TargetNodes, LongestPath: spec.TargetDepth}
		sum += Throughput(CPU, w)
		n++
	}
	avg := sum / float64(n)
	if avg < 0.5 || avg > 2.5 {
		t.Errorf("CPU model average %.2f GOPS, Table III says ≈1.2", avg)
	}
}

func TestGPUSlowerThanCPUOnSmallDAGs(t *testing.T) {
	// Fig. 1(c): the GPU underperforms the CPU below ~100k nodes and
	// catches up beyond.
	small := Workload{Nodes: 10_000, LongestPath: 50}
	large := Workload{Nodes: 3_000_000, LongestPath: 200}
	if Throughput(GPU, small) >= Throughput(CPU, small) {
		t.Errorf("GPU should lose on small DAGs: gpu=%.2f cpu=%.2f",
			Throughput(GPU, small), Throughput(CPU, small))
	}
	if Throughput(GPU, large) <= Throughput(CPU, large) {
		t.Errorf("GPU should win on large DAGs: gpu=%.2f cpu=%.2f",
			Throughput(GPU, large), Throughput(CPU, large))
	}
}

func TestDPU1Calibration(t *testing.T) {
	// Table III: DPU (v1) ≈ 3.1 GOPS on the small suites.
	var sum float64
	n := 0
	for _, spec := range pc.Suite() {
		sum += Throughput(DPU1, Workload{Nodes: spec.TargetNodes, LongestPath: spec.TargetDepth})
		n++
	}
	avg := sum / float64(n)
	if avg < 1.5 || avg > 5.0 {
		t.Errorf("DPU1 model average %.2f GOPS, Table III says ≈3.1", avg)
	}
}

func TestSPUDerivedFromCPUSPU(t *testing.T) {
	w := Workload{Nodes: 1_000_000, LongestPath: 100}
	if Throughput(SPU, w) <= Throughput(CPUSPU, w)*10 {
		t.Errorf("SPU should be ≈13.3× CPU_SPU")
	}
}

func TestThroughputMonotoneInParallelism(t *testing.T) {
	// More average parallelism (same n, shorter critical path) must not
	// hurt any platform.
	for _, p := range []Platform{CPU, GPU, DPU1, SPU, CPUSPU} {
		narrow := Throughput(p, Workload{Nodes: 100_000, LongestPath: 2000})
		wide := Throughput(p, Workload{Nodes: 100_000, LongestPath: 50})
		if wide < narrow {
			t.Errorf("%v: parallelism hurt throughput (%.3f < %.3f)", p, wide, narrow)
		}
	}
}

func TestPowerTable(t *testing.T) {
	if PowerW(CPU, false) != 55 || PowerW(GPU, true) != 155 || PowerW(SPU, true) != 16 {
		t.Error("power table drifted from Table III")
	}
	if PowerW(DPU1, false) >= 1 {
		t.Error("DPU1 is a sub-watt ASIP")
	}
}

func TestWorkloadOf(t *testing.T) {
	g := dag.New("w")
	a := g.AddInput()
	b := g.AddInput()
	s := g.AddOp(dag.OpAdd, a, b)
	g.AddOp(dag.OpMul, s, a)
	w := WorkloadOf(g)
	if w.Nodes != 2 || w.LongestPath != 3 {
		t.Errorf("WorkloadOf = %+v", w)
	}
}

func TestPlatformStrings(t *testing.T) {
	if CPU.String() != "CPU" || DPU1.String() != "DPU" || SPU.String() != "SPU" {
		t.Error("platform names broken")
	}
}
