package gateway

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"

	"dpuv2/internal/dag"
)

// ring is a consistent-hash ring over backend addresses. Each backend
// owns vnodes points on a uint64 circle; a key is owned by the backend
// of the first point at or clockwise-after it. Consistent hashing is
// what makes the sharded tier worth building: every per-backend cache in
// the stack — the compile cache, the .dputune decision table, the
// executor pools — keys on the graph fingerprint, so routing a
// fingerprint to a stable backend keeps all three hot for its shard,
// and removing one backend remaps ONLY the ranges that backend owned
// (its keys fail over to their clockwise successors) instead of
// reshuffling the whole fleet's working set.
//
// Point placement is a pure function of the backend address and the
// vnode index (sha256, like the fingerprint itself), so every gateway
// replica — and every test — agrees on the mapping with no coordination.
type ring struct {
	points []ringPoint // sorted by hash
	addrs  []string    // distinct members, original order
}

type ringPoint struct {
	hash uint64
	addr string
}

// vnodePoint hashes one virtual node of a backend onto the circle.
func vnodePoint(addr string, i int) uint64 {
	sum := sha256.Sum256([]byte(addr + "#" + strconv.Itoa(i)))
	return binary.BigEndian.Uint64(sum[:8])
}

// newRing builds a ring over addrs with vnodes points per backend.
// An empty addrs yields an empty ring (Owner returns "").
func newRing(addrs []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &ring{addrs: append([]string(nil), addrs...)}
	r.points = make([]ringPoint, 0, len(addrs)*vnodes)
	for _, a := range addrs {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: vnodePoint(a, i), addr: a})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash collisions (vanishingly rare) break ties by address so the
		// ring is deterministic whatever the insertion order.
		return r.points[i].addr < r.points[j].addr
	})
	return r
}

// Key maps a graph fingerprint onto the circle. The fingerprint is
// already a uniform 256-bit content hash; its first eight bytes are the
// ring coordinate.
func ringKey(fp dag.Fingerprint) uint64 {
	return binary.BigEndian.Uint64(fp[:8])
}

// Owner returns the backend owning key, "" on an empty ring.
func (r *ring) Owner(key uint64) string {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Owners returns up to n DISTINCT backends in clockwise order starting
// at key's owner: the shard owner first, then the failover/hedge
// successors in the order the consistent hash fails the shard over.
func (r *ring) Owners(key uint64, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.addrs) {
		n = len(r.addrs)
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	owners := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(owners) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.addr] {
			seen[p.addr] = true
			owners = append(owners, p.addr)
		}
	}
	return owners
}
