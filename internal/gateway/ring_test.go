package gateway

import (
	"fmt"
	"math/rand"
	"testing"
)

func ringAddrs(n int) []string {
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return addrs
}

// TestRingDeterministicAffinity pins the routing invariant the whole
// tier rests on: the same key maps to the same backend on every ring
// built over the same membership, whatever the construction order — so
// every gateway replica (and every rebuild after a health flap that
// reverts) agrees on shard ownership with no coordination.
func TestRingDeterministicAffinity(t *testing.T) {
	addrs := ringAddrs(5)
	r1 := newRing(addrs, 64)
	shuffled := append([]string(nil), addrs...)
	rand.New(rand.NewSource(1)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	r2 := newRing(shuffled, 64)
	rng := rand.New(rand.NewSource(7))
	counts := map[string]int{}
	for i := 0; i < 10000; i++ {
		key := rng.Uint64()
		o1, o2 := r1.Owner(key), r2.Owner(key)
		if o1 != o2 {
			t.Fatalf("key %x owned by %s on one ring, %s on a shuffled-membership ring", key, o1, o2)
		}
		counts[o1]++
	}
	// Load spread sanity: every backend owns a non-trivial share. With 64
	// vnodes × 5 backends the max/min imbalance stays well under 3x.
	for _, a := range addrs {
		if counts[a] < 10000/(3*len(addrs)) {
			t.Errorf("backend %s owns only %d/10000 keys — vnode spread is broken: %v", a, counts[a], counts)
		}
	}
}

// TestRingRemovalStability is the consistent-hash stability test:
// removing one backend remaps ONLY the keys that backend owned; every
// other key keeps its owner. This is what preserves the surviving
// backends' compile caches through a membership change — a modulo hash
// would reshuffle nearly everything.
func TestRingRemovalStability(t *testing.T) {
	addrs := ringAddrs(4)
	full := newRing(addrs, 64)
	removed := addrs[2]
	var survivors []string
	for _, a := range addrs {
		if a != removed {
			survivors = append(survivors, a)
		}
	}
	partial := newRing(survivors, 64)
	rng := rand.New(rand.NewSource(99))
	var remapped, kept int
	for i := 0; i < 10000; i++ {
		key := rng.Uint64()
		before, after := full.Owner(key), partial.Owner(key)
		if before != removed {
			kept++
			if after != before {
				t.Fatalf("key %x moved %s→%s though %s was the backend removed", key, before, after, removed)
			}
		} else {
			remapped++
			if after == removed {
				t.Fatalf("key %x still owned by removed backend", key)
			}
			// The failover target is exactly the next distinct owner on the
			// full ring: hedging and failover agree with ring removal.
			if want := full.Owners(key, 2); len(want) > 1 && after != want[1] {
				t.Fatalf("key %x failed over to %s, ring successor is %s", key, after, want[1])
			}
		}
	}
	if remapped == 0 || kept == 0 {
		t.Fatalf("degenerate sample: remapped=%d kept=%d", remapped, kept)
	}
}

// TestRingOwners pins the failover ordering contract: Owners returns
// distinct backends, the first is the owner, and asking for more than
// the membership returns all of it.
func TestRingOwners(t *testing.T) {
	addrs := ringAddrs(3)
	r := newRing(addrs, 32)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		key := rng.Uint64()
		owners := r.Owners(key, 10)
		if len(owners) != len(addrs) {
			t.Fatalf("Owners(%x) = %v, want all %d backends", key, owners, len(addrs))
		}
		if owners[0] != r.Owner(key) {
			t.Fatalf("Owners[0] %s != Owner %s", owners[0], r.Owner(key))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("Owners(%x) repeats %s: %v", key, o, owners)
			}
			seen[o] = true
		}
	}
	if got := newRing(nil, 32).Owner(42); got != "" {
		t.Errorf("empty ring owner = %q, want \"\"", got)
	}
	if got := r.Owners(42, 0); got != nil {
		t.Errorf("Owners(n=0) = %v, want nil", got)
	}
}
