// Package gateway is the sharded multi-node serving tier: an HTTP front
// that consistent-hashes graph fingerprints across N dpu-serve backends,
// so each backend's compile cache, tuned-decision table and executor
// pools stay hot for its shard — the compile-once/execute-many premise,
// preserved at fleet scale. One process with machine pools cannot carry
// millions of users; N processes WITHOUT shard affinity would each
// re-compile (and re-tune) the full fingerprint population, shredding
// every cache PRs 2–7 built. The gateway is what makes horizontal scale
// cache-coherent.
//
// Mechanics:
//
//   - POST /execute is routed by the request graph's dag.Fingerprint on
//     a consistent-hash ring (ring.go) over the live backends.
//   - Every backend is polled at /healthz; a 503 ("draining", the signal
//     serve.Server raises during graceful shutdown) or an unreachable
//     backend leaves the ring, and its shard ranges fail over to their
//     clockwise successors — only those ranges remap.
//   - A request whose shard owner is slow is hedged: after a delay
//     derived from the gateway's observed p99, the SAME request is sent
//     to the next ring owner; the first response wins and the loser's
//     context is canceled. Execution is a pure function of the request,
//     so duplicating it is safe; at worst the loser backend warms its
//     cache for a range it may inherit later.
//   - An owner that fails outright (connect error, 503) fails over
//     immediately to the next distinct owner.
//   - GET /stats merges every backend's engine/sched/http sections into
//     one fleet view (stats.go), with the per-backend breakdown beside
//     it.
//
// Backends should share one -artifact-dir: any backend then warm-starts
// from the same store, so a failover target decodes the shard's programs
// instead of recompiling them, and a rebalanced fleet converges without
// cold compiles.
package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dpuv2/internal/dag"
	"dpuv2/internal/metrics"
	"dpuv2/internal/serve"
	"dpuv2/internal/trace"
)

// DefaultVNodes is the virtual-node count per backend: enough that two
// backends split the key space within a few percent, cheap enough that
// ring rebuilds are microseconds.
const DefaultVNodes = 128

// Options configure a Gateway; zero values take the documented defaults.
type Options struct {
	// Backends are the dpu-serve base URLs (e.g. http://10.0.0.1:8080).
	Backends []string
	// VNodes is the virtual-node count per backend on the hash ring.
	// Default 128.
	VNodes int
	// HealthInterval is the /healthz polling period. Default 1s.
	HealthInterval time.Duration
	// HealthTimeout bounds one health probe. Default HealthInterval
	// (capped at 2s).
	HealthTimeout time.Duration
	// RequestTimeout bounds one proxied attempt to one backend.
	// Default 30s.
	RequestTimeout time.Duration
	// HedgeMin/HedgeMax clamp the p99-derived hedge delay. Until the
	// gateway has latency samples the delay is HedgeMax. Defaults
	// 2ms / 500ms.
	HedgeMin, HedgeMax time.Duration
	// DisableHedge turns hedging off (failover on hard errors remains).
	DisableHedge bool
	// Logf receives membership transitions and proxy errors.
	// Default log.Printf.
	Logf func(format string, args ...any)
	// Trace configures request tracing (see trace.Options). A request
	// carrying a traceparent header is always traced; others are sampled.
	// The gateway re-stamps the header with its own span ID before
	// forwarding, so the backend's trace shares the gateway's trace ID —
	// one ID names the request on both sides of the hop.
	Trace trace.Options
}

func (o Options) normalize() Options {
	if o.VNodes <= 0 {
		o.VNodes = DefaultVNodes
	}
	if o.HealthInterval <= 0 {
		o.HealthInterval = time.Second
	}
	if o.HealthTimeout <= 0 {
		o.HealthTimeout = o.HealthInterval
		if o.HealthTimeout > 2*time.Second {
			o.HealthTimeout = 2 * time.Second
		}
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.HedgeMin <= 0 {
		o.HedgeMin = 2 * time.Millisecond
	}
	if o.HedgeMax <= 0 {
		o.HedgeMax = 500 * time.Millisecond
	}
	if o.HedgeMax < o.HedgeMin {
		o.HedgeMax = o.HedgeMin
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	return o
}

// backendState is a backend's health as last probed.
type backendState int32

const (
	stateUnknown  backendState = iota // not probed yet: out of the ring
	stateHealthy                      // 200 /healthz: in the ring
	stateDraining                     // 503 /healthz: draining, out of the ring
	stateDown                         // unreachable / unexpected status
)

func (s backendState) String() string {
	switch s {
	case stateHealthy:
		return "healthy"
	case stateDraining:
		return "draining"
	case stateDown:
		return "down"
	default:
		return "unknown"
	}
}

// backend is one dpu-serve the gateway fronts: its address, its pooled
// HTTP client, and its last probed health state.
type backend struct {
	addr    string
	client  *http.Client
	state   atomic.Int32 // backendState
	lastErr atomic.Value // string; last probe failure, "" when fine
}

func (b *backend) setState(s backendState) (changed bool) {
	return b.state.Swap(int32(s)) != int32(s)
}

func (b *backend) getState() backendState { return backendState(b.state.Load()) }

// Gateway is the sharded serving front. Create with New, mount
// Handler on a listener (serve.NewHTTPServer), stop with Close.
type Gateway struct {
	opts     Options
	backends []*backend
	byAddr   map[string]*backend
	ring     atomic.Pointer[ring] // live members only; rebuilt on transitions

	proxied   atomic.Int64
	hedges    atomic.Int64
	hedgeWins atomic.Int64
	failovers atomic.Int64
	rejected  atomic.Int64 // no live backend / all attempts failed
	latency   metrics.Histogram
	tracer    *trace.Tracer

	draining atomic.Bool
	mux      *http.ServeMux
	stop     chan struct{}
	stopped  sync.WaitGroup
}

// New builds a Gateway over opts.Backends, probes every backend once
// synchronously (so a gateway in front of a live fleet routes from its
// first request), and starts the periodic health checker.
func New(opts Options) (*Gateway, error) {
	opts = opts.normalize()
	if len(opts.Backends) == 0 {
		return nil, fmt.Errorf("gateway: no backends configured")
	}
	gw := &Gateway{
		opts:   opts,
		byAddr: make(map[string]*backend, len(opts.Backends)),
		stop:   make(chan struct{}),
	}
	for _, addr := range opts.Backends {
		addr = strings.TrimSuffix(addr, "/")
		if addr == "" || gw.byAddr[addr] != nil {
			return nil, fmt.Errorf("gateway: empty or duplicate backend %q", addr)
		}
		b := &backend{
			addr: addr,
			// One pooled client per backend: connections are reused per
			// shard owner, and one slow backend cannot exhaust another's
			// pool. The per-attempt context enforces RequestTimeout; the
			// client timeout is the safety net behind it.
			client: &http.Client{
				Timeout: opts.RequestTimeout + opts.HealthTimeout,
				Transport: &http.Transport{
					MaxIdleConns:        64,
					MaxIdleConnsPerHost: 64,
					IdleConnTimeout:     90 * time.Second,
				},
			},
		}
		b.lastErr.Store("")
		gw.backends = append(gw.backends, b)
		gw.byAddr[addr] = b
	}
	gw.ring.Store(newRing(nil, opts.VNodes))
	gw.checkHealth() // synchronous first pass
	gw.stopped.Add(1)
	go gw.healthLoop()

	topts := opts.Trace
	if topts.Service == "" {
		topts.Service = "gateway"
	}
	gw.tracer = trace.New(topts)

	gw.mux = http.NewServeMux()
	gw.mux.HandleFunc("/execute", gw.handleExecute)
	gw.mux.HandleFunc("/stats", gw.handleStats)
	gw.mux.HandleFunc("/metrics", gw.handleMetrics)
	gw.mux.HandleFunc("/traces", gw.tracer.Handler())
	gw.mux.HandleFunc("/healthz", gw.handleHealthz)
	return gw, nil
}

// Handler returns the HTTP handler tree.
func (g *Gateway) Handler() http.Handler { return g.mux }

// Tracer exposes the request tracer (tests and diagnostics).
func (g *Gateway) Tracer() *trace.Tracer { return g.tracer }

// Drain flips /healthz to 503 and rejects new /execute requests, so a
// front balancer (or a gateway-of-gateways) can take this instance out.
func (g *Gateway) Drain() { g.draining.Store(true) }

// Close stops the health checker. Safe to call once.
func (g *Gateway) Close() {
	close(g.stop)
	g.stopped.Wait()
}

func (g *Gateway) healthLoop() {
	defer g.stopped.Done()
	t := time.NewTicker(g.opts.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-t.C:
			g.checkHealth()
		}
	}
}

// checkHealth probes every backend concurrently and rebuilds the ring if
// any membership changed. Draining and down backends are equally out of
// the ring; the distinction is kept for /stats and logs.
func (g *Gateway) checkHealth() {
	var wg sync.WaitGroup
	changed := make([]bool, len(g.backends))
	for i, b := range g.backends {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			changed[i] = g.probe(b)
		}(i, b)
	}
	wg.Wait()
	for _, c := range changed {
		if c {
			g.rebuildRing()
			return
		}
	}
}

// probe classifies one backend: 200 → healthy, 503 → draining (the
// serve.Server readiness signal), anything else → down. Reports whether
// the state changed.
func (g *Gateway) probe(b *backend) bool {
	ctx, cancel := context.WithTimeout(context.Background(), g.opts.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.addr+"/healthz", nil)
	if err != nil {
		b.lastErr.Store(err.Error())
		return b.setState(stateDown)
	}
	resp, err := b.client.Do(req)
	if err != nil {
		b.lastErr.Store(err.Error())
		return b.setState(stateDown)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	var next backendState
	switch {
	case resp.StatusCode == http.StatusOK:
		next = stateHealthy
		b.lastErr.Store("")
	case resp.StatusCode == http.StatusServiceUnavailable:
		next = stateDraining
		b.lastErr.Store("draining")
	default:
		next = stateDown
		b.lastErr.Store(fmt.Sprintf("healthz status %d", resp.StatusCode))
	}
	return b.setState(next)
}

// rebuildRing recomputes ring membership from current states.
func (g *Gateway) rebuildRing() {
	var live []string
	for _, b := range g.backends {
		if b.getState() == stateHealthy {
			live = append(live, b.addr)
		}
	}
	g.ring.Store(newRing(live, g.opts.VNodes))
	states := make([]string, len(g.backends))
	for i, b := range g.backends {
		states[i] = b.addr + "=" + b.getState().String()
	}
	g.opts.Logf("gateway: ring membership %d/%d live (%s)", len(live), len(g.backends), strings.Join(states, " "))
}

// hedgeDelay derives the hedging trigger from the gateway's own
// end-to-end latency: a request slower than the fleet's p99 is worth a
// second copy on the next owner. With too few samples to trust a p99,
// be conservative (HedgeMax) rather than duplicate eagerly.
func (g *Gateway) hedgeDelay() time.Duration {
	const minSamples = 16
	s := g.latency.Summary()
	if s.Count < minSamples {
		return g.opts.HedgeMax
	}
	d := time.Duration(s.P99)
	if d < g.opts.HedgeMin {
		d = g.opts.HedgeMin
	}
	if d > g.opts.HedgeMax {
		d = g.opts.HedgeMax
	}
	return d
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if g.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if len(g.ring.Load().addrs) == 0 {
		http.Error(w, "no live backends", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// attemptResult is one backend's answer to a proxied request.
type attemptResult struct {
	addr        string
	hedge       bool // launched by the hedge timer, not failover
	span        int  // trace span index of this attempt (-1 untraced)
	status      int
	contentType string
	body        []byte
	err         error
}

// usable reports whether the attempt is an authoritative answer the
// client should see. A 503 is the backend draining mid-flight (the ring
// just hasn't caught up): fail over instead of relaying it.
func (a attemptResult) usable() bool {
	return a.err == nil && a.status != http.StatusServiceUnavailable
}

func (g *Gateway) handleExecute(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if g.draining.Load() {
		g.rejected.Add(1)
		http.Error(w, "gateway draining", http.StatusServiceUnavailable)
		return
	}
	// A request carrying trace context is always traced; bare requests
	// are sampled. When the gateway traces, it re-stamps the forwarded
	// traceparent with its own span ID (same trace ID, so the backend's
	// trace joins this one); when it doesn't, a client-supplied header
	// passes through untouched.
	var tr *trace.Trace
	tp := r.Header.Get(trace.Header)
	if id, _, ok := trace.ParseTraceparent(tp); ok {
		tr = g.tracer.Start(id, "gateway", start)
	} else {
		tp = ""
		if g.tracer.Sample() {
			tr = g.tracer.Start(trace.ID{}, "gateway", start)
		}
	}
	if tr != nil {
		tp = trace.Traceparent(tr.ID(), trace.NewSpanID())
	}
	defer g.tracer.Finish(tr)

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, serve.MaxRequestBytes))
	if err != nil {
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return
	}
	// The shard key: only the graph text matters here. Config/options
	// stay opaque bytes the backend will parse — the gateway must not
	// need a new release to pass new fields through.
	var shard struct {
		Graph string `json:"graph"`
	}
	if err := json.Unmarshal(body, &shard); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	gr, err := dag.Read(strings.NewReader(shard.Graph), "request")
	if err != nil {
		http.Error(w, "bad graph: "+err.Error(), http.StatusBadRequest)
		return
	}
	candidates := g.ring.Load().Owners(ringKey(gr.Fingerprint()), len(g.backends))
	if len(candidates) == 0 {
		g.rejected.Add(1)
		http.Error(w, "no live backends", http.StatusServiceUnavailable)
		return
	}
	tr.Span("route", start, tr.Now().Sub(start), 0,
		trace.Str("fingerprint", gr.Fingerprint().Short()),
		trace.Str("owner", candidates[0]))
	res, ok := g.forward(r.Context(), candidates, body, tp, tr)
	if !ok {
		g.rejected.Add(1)
		msg := "all shard owners failed"
		if res.err != nil {
			msg += ": " + res.err.Error()
		} else if res.status != 0 {
			msg += fmt.Sprintf(": last status %d", res.status)
		}
		http.Error(w, msg, http.StatusBadGateway)
		return
	}
	g.proxied.Add(1)
	g.latency.ObserveDuration(time.Since(start))
	if res.contentType != "" {
		w.Header().Set("Content-Type", res.contentType)
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
}

// forward races the request across candidates: the first is sent
// immediately, a hedge copy goes to the next distinct owner once the
// p99-derived delay elapses without an answer, and hard failures
// (connect error, 503-draining) fail over to the remaining owners at
// once. The first usable response wins; every other in-flight attempt is
// canceled. Reports ok=false with the last failure when no candidate
// answered.
func (g *Gateway) forward(ctx context.Context, candidates []string, body []byte, tp string, tr *trace.Trace) (attemptResult, bool) {
	ctx, cancelAll := context.WithCancel(ctx)
	defer cancelAll() // cancels every losing attempt
	results := make(chan attemptResult, len(candidates))
	next := 0
	inflight := 0
	launch := func(hedge bool) {
		b := g.byAddr[candidates[next]]
		// Attempt spans are recorded only from this loop goroutine —
		// Begin here, SetAttrs/End when the result arrives — so span
		// writes never race the deferred Finish in handleExecute. A
		// canceled loser's span stays open; Finish closes it, and its
		// duration reads as "until the request was answered".
		stage := "forward"
		switch {
		case hedge:
			stage = "hedge"
		case next > 0:
			stage = "failover"
		}
		sp := tr.Begin(stage, 0)
		tr.SetAttrs(sp, trace.Str("backend", b.addr))
		next++
		inflight++
		go func() {
			res := g.attempt(ctx, b, body, tp)
			res.hedge = hedge
			res.span = sp
			results <- res
		}()
	}
	launch(false)

	var hedgeC <-chan time.Time
	var hedged bool
	if !g.opts.DisableHedge && len(candidates) > 1 {
		t := time.NewTimer(g.hedgeDelay())
		defer t.Stop()
		hedgeC = t.C
	}
	var last attemptResult
	for {
		select {
		case res := <-results:
			inflight--
			if res.err != nil {
				tr.SetAttrs(res.span, trace.Str("error", res.err.Error()))
			} else {
				tr.SetAttrs(res.span, trace.Int("status", int64(res.status)))
			}
			tr.End(res.span)
			if res.usable() {
				if res.hedge {
					g.hedgeWins.Add(1)
				}
				return res, true
			}
			last = res
			// Hard failure: this owner is gone or draining; fail its
			// range over to the next distinct owner right away.
			if next < len(candidates) {
				g.failovers.Add(1)
				launch(false)
			} else if inflight == 0 {
				return last, false
			}
		case <-hedgeC:
			hedgeC = nil
			if !hedged && next < len(candidates) {
				hedged = true
				g.hedges.Add(1)
				launch(true)
			}
		case <-ctx.Done():
			// Client went away (or its deadline passed): stop racing.
			return attemptResult{err: ctx.Err()}, false
		}
	}
}

// attempt sends one copy of the request to one backend, propagating the
// traceparent header tp when non-empty.
func (g *Gateway) attempt(ctx context.Context, b *backend, body []byte, tp string) attemptResult {
	res := attemptResult{addr: b.addr, span: -1}
	ctx, cancel := context.WithTimeout(ctx, g.opts.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.addr+"/execute", bytes.NewReader(body))
	if err != nil {
		res.err = err
		return res
	}
	req.Header.Set("Content-Type", "application/json")
	if tp != "" {
		req.Header.Set(trace.Header, tp)
	}
	resp, err := b.client.Do(req)
	if err != nil {
		res.err = err
		return res
	}
	defer resp.Body.Close()
	res.status = resp.StatusCode
	res.contentType = resp.Header.Get("Content-Type")
	if res.body, err = io.ReadAll(io.LimitReader(resp.Body, serve.MaxRequestBytes)); err != nil {
		res.err = err
	}
	return res
}
