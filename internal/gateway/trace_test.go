package gateway

// End-to-end trace propagation: one traceparent-carrying request
// through gateway → backend leaves a trace on BOTH tiers under the same
// trace ID — the gateway's with route/forward spans, the backend's with
// the scheduler's stage decomposition.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"dpuv2/internal/serve"
	"dpuv2/internal/trace"
)

func findTrace(recs []*trace.Record, id string) *trace.Record {
	for _, r := range recs {
		if r.TraceID == id {
			return r
		}
	}
	return nil
}

func findStage(rec *trace.Record, stage string) *trace.SpanRecord {
	for i := range rec.Spans {
		if rec.Spans[i].Stage == stage {
			return &rec.Spans[i]
		}
	}
	return nil
}

func TestGatewayTraceEndToEnd(t *testing.T) {
	b := newTestBackend(t)
	gw := newTestGateway(t, Options{
		Backends: []string{b.ts.URL},
		Trace:    trace.Options{SampleEvery: -1}, // only header-carrying requests
	})
	front := httptest.NewServer(gw.Handler())
	defer front.Close()

	id := trace.NewID()
	body, err := json.Marshal(serve.ExecuteRequest{
		Graph:  "input\ninput\nadd 0 1\nconst 3\nmul 2 3\n",
		Inputs: [][]float64{{2, 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, front.URL+"/execute", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(trace.Header, trace.Traceparent(id, trace.NewSpanID()))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("execute status = %d", resp.StatusCode)
	}

	// Gateway side: route + forward under the pinned ID.
	grec := findTrace(gw.Tracer().Traces(0, ""), id.String())
	if grec == nil {
		t.Fatalf("gateway retained no trace for %s", id)
	}
	if grec.Service != "gateway" {
		t.Fatalf("gateway trace service %q", grec.Service)
	}
	if rsp := findStage(grec, "route"); rsp == nil || rsp.Attrs["owner"] != b.ts.URL {
		t.Fatalf("route span %+v, want owner %s", rsp, b.ts.URL)
	}
	fsp := findStage(grec, "forward")
	if fsp == nil {
		t.Fatalf("no forward span: %+v", grec.Spans)
	}
	if fsp.Attrs["backend"] != b.ts.URL || fsp.Attrs["status"] != int64(http.StatusOK) {
		t.Fatalf("forward attrs %+v, want backend %s status 200", fsp.Attrs, b.ts.URL)
	}

	// Backend side: the SAME trace ID (the gateway re-stamps the header
	// with its own parent span but never a new trace), decomposed into
	// the scheduler's stage windows.
	brec := findTrace(b.srv.Tracer().Traces(0, ""), id.String())
	if brec == nil {
		t.Fatalf("backend retained no trace for %s", id)
	}
	if brec.Service != "serve" {
		t.Fatalf("backend trace service %q", brec.Service)
	}
	var sum int64
	for _, stage := range []string{"queue_wait", "linger", "execute"} {
		sp := findStage(brec, stage)
		if sp == nil {
			t.Fatalf("backend trace missing %s span: %+v", stage, brec.Spans)
		}
		sum += sp.DurationNS
	}
	if sum > brec.DurationNS {
		t.Fatalf("stage sum %d exceeds backend request duration %d", sum, brec.DurationNS)
	}
	// The hop nests: the backend's whole request fits inside the
	// gateway's forward window (same wall clock, same trace).
	if brec.DurationNS > grec.DurationNS {
		t.Fatalf("backend trace %dns longer than gateway's %dns", brec.DurationNS, grec.DurationNS)
	}
}

// TestGatewayStripsInvalidTraceparent: a malformed client header is not
// forwarded and (with sampling off) starts no trace.
func TestGatewayStripsInvalidTraceparent(t *testing.T) {
	var gotHeader string
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/execute" {
			gotHeader = r.Header.Get(trace.Header)
		}
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"results":[]}`))
	}))
	defer backend.Close()
	gw := newTestGateway(t, Options{
		Backends: []string{backend.URL},
		Trace:    trace.Options{SampleEvery: -1},
	})
	front := httptest.NewServer(gw.Handler())
	defer front.Close()

	body, _ := json.Marshal(serve.ExecuteRequest{
		Graph:  "input\ninput\nadd 0 1\n",
		Inputs: [][]float64{{1, 2}},
	})
	req, _ := http.NewRequest(http.MethodPost, front.URL+"/execute", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(trace.Header, "00-NOTHEX-beef-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	if gotHeader != "" {
		t.Fatalf("malformed traceparent forwarded as %q", gotHeader)
	}
	if recs := gw.Tracer().Traces(0, ""); len(recs) != 0 {
		t.Fatalf("malformed header started %d traces", len(recs))
	}
}
