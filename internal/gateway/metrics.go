package gateway

// GET /metrics: the gateway's OWN state in Prometheus text form —
// routing counters, hedge/failover activity, end-to-end latency buckets
// and per-backend health gauges. Deliberately not the fleet merge: a
// scraper should scrape every dpu-serve's /metrics directly and let the
// metrics backend aggregate; GET /stats remains the endpoint that merges
// for humans.

import (
	"bytes"
	"net/http"

	"dpuv2/internal/metrics"
)

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	var buf bytes.Buffer
	p := metrics.NewPromWriter(&buf)
	p.Counter("dpu_gateway_proxied_total", g.proxied.Load())
	p.Counter("dpu_gateway_rejected_total", g.rejected.Load())
	p.Counter("dpu_gateway_hedges_total", g.hedges.Load())
	p.Counter("dpu_gateway_hedge_wins_total", g.hedgeWins.Load())
	p.Counter("dpu_gateway_failovers_total", g.failovers.Load())
	p.Gauge("dpu_gateway_hedge_delay_ns", int64(g.hedgeDelay()))
	p.Histogram("dpu_gateway_request_latency_ns", "", g.latency.Snapshot())
	for _, b := range g.backends {
		up := int64(0)
		if b.getState() == stateHealthy {
			up = 1
		}
		p.GaugeLabeled("dpu_gateway_backend_up", `backend="`+b.addr+`"`, up)
	}
	if err := p.Err(); err != nil {
		http.Error(w, "metrics: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", metrics.PromContentType)
	w.Write(buf.Bytes())
}
