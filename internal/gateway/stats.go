package gateway

// Fleet /stats aggregation: the gateway fetches every backend's /stats
// concurrently and merges the engine/sched/http sections into one view,
// so operators read the fleet the way they read one dpu-serve. Counters
// sum; latency and batch-size quantiles are NOT averaged — each backend
// ships its full histogram snapshot (metrics.Snapshot) and the gateway
// merges buckets (Snapshot.Merge), which is exact because every
// histogram shares the same fixed bucket boundaries.

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"

	"dpuv2/internal/engine"
	"dpuv2/internal/metrics"
	"dpuv2/internal/serve"
)

// GatewayStats is the gateway's own section of GET /stats.
type GatewayStats struct {
	// Backends/Healthy/Draining/Down count configured backends by their
	// last probed state (unknown backends count as down).
	Backends int `json:"backends"`
	Healthy  int `json:"healthy"`
	Draining int `json:"draining"`
	Down     int `json:"down"`
	// Proxied counts /execute requests answered from a backend; Rejected
	// counts those the gateway answered 502/503 itself.
	Proxied  int64 `json:"proxied"`
	Rejected int64 `json:"rejected"`
	// Hedges counts hedge copies launched, HedgeWins those that answered
	// first; Failovers counts immediate re-routes after a hard failure.
	Hedges    int64 `json:"hedges"`
	HedgeWins int64 `json:"hedge_wins"`
	Failovers int64 `json:"failovers"`
	// HedgeDelayNS is the current p99-derived hedge trigger.
	HedgeDelayNS int64 `json:"hedge_delay_ns"`
	// Latency is gateway-side end-to-end request time (ns).
	Latency metrics.Summary `json:"latency_ns"`
}

// BackendStatus is one backend's row in GET /stats.
type BackendStatus struct {
	Addr  string `json:"addr"`
	State string `json:"state"`
	// Error is the last probe failure ("" when healthy).
	Error string `json:"error,omitempty"`
	// Stats is the backend's own /stats, absent when unreachable.
	Stats *serve.StatsResponse `json:"stats,omitempty"`
}

// FleetStatsResponse is the gateway's GET /stats body.
type FleetStatsResponse struct {
	Gateway GatewayStats `json:"gateway"`
	// Fleet is the merged view over every backend that answered /stats,
	// shaped exactly like one dpu-serve's response. Absent when none did.
	Fleet *serve.StatsResponse `json:"fleet,omitempty"`
	// Backends is the per-backend breakdown behind Fleet.
	Backends []BackendStatus `json:"backends"`
}

// Stats builds the aggregated fleet view, fetching every backend's
// /stats concurrently (bounded by the health timeout — a stats poll must
// not hang on a wedged backend).
func (g *Gateway) Stats(ctx context.Context) FleetStatsResponse {
	out := FleetStatsResponse{
		Gateway: GatewayStats{
			Backends:     len(g.backends),
			Proxied:      g.proxied.Load(),
			Rejected:     g.rejected.Load(),
			Hedges:       g.hedges.Load(),
			HedgeWins:    g.hedgeWins.Load(),
			Failovers:    g.failovers.Load(),
			HedgeDelayNS: int64(g.hedgeDelay()),
			Latency:      g.latency.Summary(),
		},
		Backends: make([]BackendStatus, len(g.backends)),
	}
	var wg sync.WaitGroup
	for i, b := range g.backends {
		st := b.getState()
		switch st {
		case stateHealthy:
			out.Gateway.Healthy++
		case stateDraining:
			out.Gateway.Draining++
		default:
			out.Gateway.Down++
		}
		row := &out.Backends[i]
		row.Addr = b.addr
		row.State = st.String()
		if e, _ := b.lastErr.Load().(string); e != "" && st != stateHealthy {
			row.Error = e
		}
		if st == stateDown || st == stateUnknown {
			continue // don't block the poll on a dead backend
		}
		wg.Add(1)
		go func(b *backend, row *BackendStatus) {
			defer wg.Done()
			st, err := g.fetchStats(ctx, b)
			if err != nil {
				row.Error = err.Error()
				return
			}
			row.Stats = st
		}(b, row)
	}
	wg.Wait()
	for _, row := range out.Backends {
		if row.Stats == nil {
			continue
		}
		if out.Fleet == nil {
			merged := *row.Stats
			out.Fleet = &merged
			continue
		}
		mergeStats(out.Fleet, row.Stats)
	}
	return out
}

// fetchStats pulls one backend's /stats.
func (g *Gateway) fetchStats(ctx context.Context, b *backend) (*serve.StatsResponse, error) {
	ctx, cancel := context.WithTimeout(ctx, g.opts.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.addr+"/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := b.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st serve.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// mergeStats folds src into dst: counters sum, pools merge, histogram
// snapshots merge exactly, and the merged summaries are recomputed from
// the merged snapshots (never by combining quantiles).
func mergeStats(dst *serve.StatsResponse, src *serve.StatsResponse) {
	mergeEngine(&dst.Engine, &src.Engine)

	d, s := &dst.Sched, &src.Sched
	d.Submitted += s.Submitted
	d.Rejected += s.Rejected
	d.Completed += s.Completed
	d.Failed += s.Failed
	d.Batches += s.Batches
	d.SizeFlushes += s.SizeFlushes
	d.LingerFlushes += s.LingerFlushes
	d.CloseFlushes += s.CloseFlushes
	d.QueueDepth += s.QueueDepth
	d.QueueLimit += s.QueueLimit
	d.BatchSizeHist = d.BatchSizeHist.Merge(s.BatchSizeHist)
	d.LatencyHist = d.LatencyHist.Merge(s.LatencyHist)
	d.QueueWaitHist = d.QueueWaitHist.Merge(s.QueueWaitHist)
	d.LingerHist = d.LingerHist.Merge(s.LingerHist)
	d.ExecuteHist = d.ExecuteHist.Merge(s.ExecuteHist)
	d.BatchSize = d.BatchSizeHist.Summary()
	d.Latency = d.LatencyHist.Summary()
	d.QueueWait = d.QueueWaitHist.Summary()
	d.Linger = d.LingerHist.Summary()
	d.Execute = d.ExecuteHist.Summary()

	dst.HTTP.Requests += src.HTTP.Requests
	dst.HTTP.Errors += src.HTTP.Errors
	dst.HTTP.LatencyHist = dst.HTTP.LatencyHist.Merge(src.HTTP.LatencyHist)
	dst.HTTP.Latency = dst.HTTP.LatencyHist.Summary()

	t, u := &dst.Tune, &src.Tune
	t.Enabled = t.Enabled || u.Enabled
	t.Decisions += u.Decisions
	t.TunedHits += u.TunedHits
	t.Tunes += u.Tunes
	t.TuneErrors += u.TuneErrors
	t.InFlight += u.InFlight
	t.StoreTuned += u.StoreTuned
	// Workloads are per-fingerprint rows; with shard affinity they are
	// disjoint across backends, so the fleet view is the concatenation.
	t.Workloads = append(t.Workloads, u.Workloads...)
}

// mergeEngine sums the engine counters and merges the pool map. The
// backend name merges to "mixed" if the fleet disagrees — a deployment
// smell worth surfacing, not hiding.
func mergeEngine(d *engine.Stats, s *engine.Stats) {
	if d.Backend != s.Backend {
		d.Backend = "mixed"
	}
	d.Hits += s.Hits
	d.Misses += s.Misses
	d.Evictions += s.Evictions
	d.Cached += s.Cached
	d.InFlight += s.InFlight
	d.Executions += s.Executions
	d.StoreHits += s.StoreHits
	d.StoreMisses += s.StoreMisses
	d.StoreErrors += s.StoreErrors
	d.Preloaded += s.Preloaded
	d.Verified += s.Verified
	d.VerifyRejects += s.VerifyRejects
	d.TunedHits += s.TunedHits
	d.StoreTuned += s.StoreTuned
	d.Tunes += s.Tunes
	d.TuneErrors += s.TuneErrors
	d.TuneInFlight += s.TuneInFlight
	d.Decisions += s.Decisions
	if len(s.Pools) > 0 {
		merged := make(map[string]int, len(d.Pools)+len(s.Pools))
		for k, v := range d.Pools {
			merged[k] = v
		}
		for k, v := range s.Pools {
			merged[k] += v
		}
		d.Pools = merged
	}
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(g.Stats(r.Context()))
}
