package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dpuv2/internal/dag"
	"dpuv2/internal/engine"
	"dpuv2/internal/serve"
)

// testBackend is one real dpu-serve stack behind an httptest listener,
// with an /execute hit counter so routing tests can see where traffic
// landed.
type testBackend struct {
	eng      *engine.Engine
	srv      *serve.Server
	ts       *httptest.Server
	executes atomic.Int64
}

func newTestBackend(t *testing.T) *testBackend {
	t.Helper()
	b := &testBackend{}
	b.eng = engine.New(engine.Options{})
	b.srv = serve.New(b.eng, serve.Options{})
	inner := b.srv.Handler()
	b.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/execute" {
			b.executes.Add(1)
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(b.ts.Close)
	t.Cleanup(b.srv.Drain)
	return b
}

// testGraphs renders n distinct random graphs (2 inputs each) with their
// fingerprints.
type testGraph struct {
	text string
	fp   dag.Fingerprint
}

func testGraphs(t *testing.T, n int) []testGraph {
	t.Helper()
	out := make([]testGraph, n)
	for i := range out {
		g := dag.RandomGraph(dag.RandomConfig{Inputs: 2, Interior: 8, MaxArgs: 2, MulFrac: 0.3, Seed: int64(100 + i)})
		var sb strings.Builder
		if err := dag.Write(&sb, g); err != nil {
			t.Fatal(err)
		}
		out[i] = testGraph{text: sb.String(), fp: g.Fingerprint()}
	}
	return out
}

func executeVia(t *testing.T, url string, graph string) (*serve.ExecuteResponse, int) {
	t.Helper()
	body, _ := json.Marshal(serve.ExecuteRequest{Graph: graph, Inputs: [][]float64{{1, 2}}})
	resp, err := http.Post(url+"/execute", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("execute via %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, resp.StatusCode
	}
	var out serve.ExecuteResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out, resp.StatusCode
}

func newTestGateway(t *testing.T, opts Options) *Gateway {
	t.Helper()
	if opts.HealthInterval == 0 {
		opts.HealthInterval = 20 * time.Millisecond
	}
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	gw, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	return gw
}

// TestGatewayShardAffinity is the tier's core invariant end to end: the
// same fingerprint always routes to the same live backend, so repeated
// traffic for a graph compiles exactly once fleet-wide — per-backend
// engine misses equal the number of distinct fingerprints in that
// backend's shard, never the full population.
func TestGatewayShardAffinity(t *testing.T) {
	b1, b2 := newTestBackend(t), newTestBackend(t)
	gw := newTestGateway(t, Options{Backends: []string{b1.ts.URL, b2.ts.URL}})
	front := httptest.NewServer(gw.Handler())
	defer front.Close()

	graphs := testGraphs(t, 12)
	const rounds = 4
	for round := 0; round < rounds; round++ {
		for _, g := range graphs {
			if out, status := executeVia(t, front.URL, g.text); status != http.StatusOK {
				t.Fatalf("status %d", status)
			} else if out.Fingerprint != g.fp.String() {
				t.Fatalf("fingerprint mismatch: %s != %s", out.Fingerprint, g.fp)
			}
		}
	}
	s1, s2 := b1.eng.Stats(), b2.eng.Stats()
	// Shard affinity: each fingerprint compiled on exactly one backend.
	if s1.Misses+s2.Misses != int64(len(graphs)) {
		t.Errorf("fleet-wide misses %d+%d, want %d (one compile per fingerprint)", s1.Misses, s2.Misses, len(graphs))
	}
	if b1.executes.Load() == 0 || b2.executes.Load() == 0 {
		t.Errorf("traffic not spread: backend hits %d / %d", b1.executes.Load(), b2.executes.Load())
	}
	// The ring's static assignment matches where traffic actually went.
	r := gw.ring.Load()
	for _, g := range graphs {
		owner := r.Owner(ringKey(g.fp))
		if owner != b1.ts.URL && owner != b2.ts.URL {
			t.Fatalf("owner %q not a backend", owner)
		}
	}
}

// TestGatewayDrainingBackendGetsNoNewRequests: when a backend starts
// draining (healthz 503), the health checker removes it from the ring
// and every request — including those for fingerprints it owned — is
// served by the survivor with no client-visible error.
func TestGatewayDrainingBackendGetsNoNewRequests(t *testing.T) {
	b1, b2 := newTestBackend(t), newTestBackend(t)
	gw := newTestGateway(t, Options{Backends: []string{b1.ts.URL, b2.ts.URL}})
	front := httptest.NewServer(gw.Handler())
	defer front.Close()

	graphs := testGraphs(t, 8)
	for _, g := range graphs {
		if _, status := executeVia(t, front.URL, g.text); status != http.StatusOK {
			t.Fatalf("warmup status %d", status)
		}
	}

	b1.srv.Drain() // healthz flips to 503 "draining"
	deadline := time.Now().Add(5 * time.Second)
	for len(gw.ring.Load().addrs) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("health checker never removed the draining backend from the ring")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := gw.ring.Load().addrs[0]; got != b2.ts.URL {
		t.Fatalf("ring kept %s, want survivor %s", got, b2.ts.URL)
	}

	before := b1.executes.Load()
	for round := 0; round < 3; round++ {
		for _, g := range graphs {
			if _, status := executeVia(t, front.URL, g.text); status != http.StatusOK {
				t.Fatalf("post-drain request failed with %d — shard did not fail over", status)
			}
		}
	}
	if got := b1.executes.Load(); got != before {
		t.Errorf("draining backend received %d new /execute requests", got-before)
	}
	// Failed-over fingerprints now live on the survivor: the fleet total
	// grows only by b1's former shard, and every request succeeded.
	if s2 := b2.eng.Stats(); s2.Misses != int64(len(graphs)) {
		t.Errorf("survivor misses = %d, want the full population %d after failover", s2.Misses, len(graphs))
	}
}

// TestGatewayHedgeCancelsLoser: a slow shard owner gets hedged to the
// next ring owner after the hedge delay; the fast copy's response is
// relayed and the slow copy's request context is canceled — the loser
// must not keep burning a backend slot.
func TestGatewayHedgeCancelsLoser(t *testing.T) {
	slowCanceled := make(chan struct{}, 1)
	fastBody := []byte(`{"fingerprint":"hedge-fast","results":[]}`)
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/execute" {
			fmt.Fprintln(w, "ok")
			return
		}
		// Drain the body as a real backend does (it decodes the JSON
		// before executing) — Go's http server only watches for client
		// disconnect, and thus cancels r.Context(), once the body is
		// consumed.
		io.Copy(io.Discard, r.Body)
		select {
		case <-r.Context().Done():
			slowCanceled <- struct{}{}
		case <-time.After(10 * time.Second):
		}
	}))
	defer slow.Close()
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/execute" {
			fmt.Fprintln(w, "ok")
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(fastBody)
	}))
	defer fast.Close()

	gw := newTestGateway(t, Options{
		Backends:       []string{slow.URL, fast.URL},
		HealthInterval: time.Hour, // membership frozen after the initial probe
		HedgeMin:       10 * time.Millisecond,
		HedgeMax:       10 * time.Millisecond,
	})
	front := httptest.NewServer(gw.Handler())
	defer front.Close()

	// A graph whose shard owner is the SLOW backend, so the hedge is what
	// answers.
	r := gw.ring.Load()
	var victim testGraph
	for i, g := range testGraphs(t, 64) {
		if r.Owner(ringKey(g.fp)) == slow.URL {
			victim = g
			break
		}
		if i == 63 {
			t.Fatal("no graph hashed to the slow backend in 64 tries")
		}
	}

	start := time.Now()
	out, status := executeVia(t, front.URL, victim.text)
	if status != http.StatusOK || out == nil {
		t.Fatalf("hedged request failed: status %d", status)
	}
	if out.Fingerprint != "hedge-fast" {
		t.Fatalf("response came from %q, want the hedge target", out.Fingerprint)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hedged request took %v — hedge never fired", elapsed)
	}
	select {
	case <-slowCanceled:
	case <-time.After(5 * time.Second):
		t.Fatal("losing attempt was never canceled")
	}
	st := gw.Stats(context.Background())
	if st.Gateway.Hedges != 1 || st.Gateway.HedgeWins != 1 {
		t.Errorf("hedges=%d hedge_wins=%d, want 1/1", st.Gateway.Hedges, st.Gateway.HedgeWins)
	}
}

// TestGatewayFailoverOnDeadBackend: a backend that dies between health
// probes (still on the ring) hard-fails the first attempt; the gateway
// immediately retries the next ring owner and the client sees a 200,
// never a 5xx.
func TestGatewayFailoverOnDeadBackend(t *testing.T) {
	dying, live := newTestBackend(t), newTestBackend(t)
	gw := newTestGateway(t, Options{
		Backends:       []string{dying.ts.URL, live.ts.URL},
		HealthInterval: time.Hour, // the checker must NOT save us
		DisableHedge:   true,      // isolate the hard-failure path
	})
	front := httptest.NewServer(gw.Handler())
	defer front.Close()

	r := gw.ring.Load()
	var victim testGraph
	for i, g := range testGraphs(t, 64) {
		if r.Owner(ringKey(g.fp)) == dying.ts.URL {
			victim = g
			break
		}
		if i == 63 {
			t.Fatal("no graph hashed to the dying backend in 64 tries")
		}
	}
	dying.ts.CloseClientConnections()
	dying.ts.Close()

	out, status := executeVia(t, front.URL, victim.text)
	if status != http.StatusOK || out == nil {
		t.Fatalf("failover request failed: status %d", status)
	}
	if out.Fingerprint != victim.fp.String() {
		t.Fatalf("wrong response fingerprint %s", out.Fingerprint)
	}
	if st := gw.Stats(context.Background()); st.Gateway.Failovers == 0 {
		t.Error("no failover counted")
	}
	if live.executes.Load() == 0 {
		t.Error("surviving backend never saw the request")
	}
}

// TestGatewayStatsAggregation: the fleet /stats section is the exact
// counter sum and histogram merge of the per-backend sections, with the
// per-backend breakdown beside it.
func TestGatewayStatsAggregation(t *testing.T) {
	b1, b2 := newTestBackend(t), newTestBackend(t)
	gw := newTestGateway(t, Options{Backends: []string{b1.ts.URL, b2.ts.URL}})
	front := httptest.NewServer(gw.Handler())
	defer front.Close()

	for _, g := range testGraphs(t, 10) {
		if _, status := executeVia(t, front.URL, g.text); status != http.StatusOK {
			t.Fatalf("status %d", status)
		}
	}
	// Fetch through the HTTP handler, as an operator would.
	resp, err := http.Get(front.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st FleetStatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Gateway.Healthy != 2 || st.Gateway.Proxied != 10 {
		t.Fatalf("gateway section %+v, want healthy=2 proxied=10", st.Gateway)
	}
	if len(st.Backends) != 2 || st.Fleet == nil {
		t.Fatalf("breakdown %d backends, fleet=%v", len(st.Backends), st.Fleet)
	}
	var reqSum, missSum int64
	var latCount uint64
	for _, row := range st.Backends {
		if row.State != "healthy" || row.Stats == nil {
			t.Fatalf("backend row %+v", row)
		}
		reqSum += row.Stats.HTTP.Requests
		missSum += row.Stats.Engine.Misses
		latCount += row.Stats.HTTP.LatencyHist.Count
	}
	if st.Fleet.HTTP.Requests != reqSum || reqSum != 10 {
		t.Errorf("fleet requests %d, backend sum %d, want 10", st.Fleet.HTTP.Requests, reqSum)
	}
	if st.Fleet.Engine.Misses != missSum || missSum != 10 {
		t.Errorf("fleet misses %d, backend sum %d, want 10 (one compile per fingerprint)", st.Fleet.Engine.Misses, missSum)
	}
	if st.Fleet.HTTP.LatencyHist.Count != latCount || st.Fleet.HTTP.Latency.Count != latCount {
		t.Errorf("fleet latency count %d (summary %d), backend sum %d — histograms not merged",
			st.Fleet.HTTP.LatencyHist.Count, st.Fleet.HTTP.Latency.Count, latCount)
	}
	if st.Fleet.Engine.Backend != "functional" {
		t.Errorf("fleet backend %q, want the fleet-wide consensus \"functional\"", st.Fleet.Engine.Backend)
	}
}

// TestGatewayRejectsBadRequests: requests the gateway can answer itself
// never reach a backend.
func TestGatewayRejectsBadRequests(t *testing.T) {
	b := newTestBackend(t)
	gw := newTestGateway(t, Options{Backends: []string{b.ts.URL}})
	front := httptest.NewServer(gw.Handler())
	defer front.Close()

	for _, tc := range []struct {
		body string
		want int
	}{
		{`{not json`, http.StatusBadRequest},
		{`{"graph":"add 0 1\n"}`, http.StatusBadRequest}, // arg before any node
	} {
		resp, err := http.Post(front.URL+"/execute", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("body %q: status %d, want %d", tc.body, resp.StatusCode, tc.want)
		}
	}
	if got := b.executes.Load(); got != 0 {
		t.Errorf("backend saw %d requests the gateway should have rejected", got)
	}
	resp, err := http.Get(front.URL + "/execute")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /execute = %d, want 405", resp.StatusCode)
	}
}
