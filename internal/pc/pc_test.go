package pc

import (
	"math"
	"testing"

	"dpuv2/internal/dag"
)

func TestGenerateValid(t *testing.T) {
	g := Generate(Config{Name: "x", Vars: 16, TargetNodes: 2000, TargetDepth: 30, SumFanin: 3, Weighted: true, SkipProb: 0.2, Seed: 1})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if n := len(g.Outputs()); n != 1 {
		t.Fatalf("outputs = %d, want 1 (rooted circuit)", n)
	}
	for i := 0; i < g.NumNodes(); i++ {
		op := g.Op(dag.NodeID(i))
		if op != dag.OpInput && op != dag.OpConst && op != dag.OpAdd && op != dag.OpMul {
			t.Fatalf("node %d has non-PC op %v", i, op)
		}
	}
}

func TestGenerateHitsTargets(t *testing.T) {
	for _, spec := range Suite() {
		g := Build(spec, 1.0)
		st := dag.ComputeStats(g)
		lo, hi := int(0.5*float64(spec.TargetNodes)), int(1.8*float64(spec.TargetNodes))
		if st.Nodes < lo || st.Nodes > hi {
			t.Errorf("%s: nodes = %d, want within [%d,%d]", spec.Name, st.Nodes, lo, hi)
		}
		if st.LongestPath < spec.TargetDepth/2 || st.LongestPath > spec.TargetDepth*3 {
			t.Errorf("%s: depth = %d, target %d", spec.Name, st.LongestPath, spec.TargetDepth)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Build(Suite()[0], 0.2)
	b := Build(Suite()[0], 0.2)
	if a.NumNodes() != b.NumNodes() {
		t.Fatalf("not deterministic: %d vs %d nodes", a.NumNodes(), b.NumNodes())
	}
	for i := 0; i < a.NumNodes(); i++ {
		na, nb := a.Node(dag.NodeID(i)), b.Node(dag.NodeID(i))
		if na.Op != nb.Op || len(na.Args) != len(nb.Args) || na.Val != nb.Val {
			t.Fatalf("node %d differs between runs", i)
		}
	}
}

func TestInferenceIsPositive(t *testing.T) {
	// With nonnegative indicator inputs and positive weights, a
	// sum-product circuit must produce a nonnegative root value.
	g := Generate(Config{Vars: 8, TargetNodes: 500, TargetDepth: 12, SumFanin: 3, Weighted: true, SkipProb: 0.1, Seed: 9})
	vals, err := dag.Eval(g, UniformInputs(g, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	root := vals[len(vals)-1]
	if root < 0 || math.IsNaN(root) || math.IsInf(root, 0) {
		t.Fatalf("root = %v, want finite nonnegative", root)
	}
}

func TestScaleShrinks(t *testing.T) {
	full := Build(Suite()[2], 1.0)
	small := Build(Suite()[2], 0.1)
	if small.NumNodes() >= full.NumNodes() {
		t.Fatalf("scale 0.1 not smaller: %d vs %d", small.NumNodes(), full.NumNodes())
	}
}

func TestLargeSuiteSpecs(t *testing.T) {
	specs := LargeSuite()
	if len(specs) != 4 {
		t.Fatalf("LargeSuite has %d entries, want 4", len(specs))
	}
	// Only generate a small scale to keep the test fast; full scale is
	// exercised by the fig. 14(b) bench.
	g := Build(specs[0], 0.02)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}
