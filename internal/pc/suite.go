package pc

import "dpuv2/internal/dag"

// WorkloadSpec names a benchmark circuit and its Table I statistics that
// the synthetic generator targets.
type WorkloadSpec struct {
	Name        string
	TargetNodes int
	TargetDepth int
}

// Suite lists the six PC workloads of Table I(a).
func Suite() []WorkloadSpec {
	return []WorkloadSpec{
		{"tretail", 9_000, 49},
		{"mnist", 10_000, 26},
		{"nltcs", 14_000, 27},
		{"msnbc", 48_000, 28},
		{"msweb", 51_000, 73},
		{"bnetflix", 55_000, 53},
	}
}

// LargeSuite lists the four large PCs of Table I(c). Callers typically
// scale these down with the scale parameter of Build to keep test runtimes
// reasonable; the experiment harness documents the scale it uses.
func LargeSuite() []WorkloadSpec {
	return []WorkloadSpec{
		{"pigs", 600_000, 90},
		{"andes", 700_000, 84},
		{"munin", 3_100_000, 337},
		{"mildew", 3_300_000, 176},
	}
}

// Build generates the named spec at the given scale (1.0 = full Table I
// size). Each workload uses a distinct deterministic seed derived from its
// name so results are reproducible run to run.
func Build(spec WorkloadSpec, scale float64) *dag.Graph {
	if scale <= 0 {
		scale = 1
	}
	seed := int64(0)
	for _, c := range spec.Name {
		seed = seed*131 + int64(c)
	}
	n := int(float64(spec.TargetNodes) * scale)
	if n < 64 {
		n = 64
	}
	vars := n / 200
	if vars < 8 {
		vars = 8
	}
	return Generate(Config{
		Name:        spec.Name,
		Vars:        vars,
		TargetNodes: n,
		TargetDepth: spec.TargetDepth,
		SumFanin:    3,
		Weighted:    true,
		SkipProb:    0.15,
		Seed:        seed,
	})
}
