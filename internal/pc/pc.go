// Package pc generates probabilistic-circuit (sum-product network)
// workloads. The paper benchmarks PCs from the UCLA StarAI model zoo
// (tretail … bnetflix, and the large pigs … mildew circuits); those files
// are not redistributable here, so this package synthesizes circuits with
// matching structural statistics — node count, longest path, and n/l
// average parallelism from Table I — which is what the DPU-v2 compiler and
// architecture actually respond to (see DESIGN.md, substitutions).
//
// A generated circuit is an alternating stack of product and weighted-sum
// layers over pairs of indicator-variable leaves, with irregular skip
// connections so that the edge structure is as unstructured as the learned
// circuits in the paper.
package pc

import (
	"math/rand"

	"dpuv2/internal/dag"
)

// Config parameterizes Generate.
type Config struct {
	Name string
	// Vars is the number of Boolean variables; each contributes two
	// indicator-leaf inputs.
	Vars int
	// TargetNodes is the approximate total node count of the circuit.
	TargetNodes int
	// TargetDepth is the approximate longest path (in nodes).
	TargetDepth int
	// SumFanin is the fan-in of sum nodes before binarization (≥2).
	SumFanin int
	// Weighted adds a constant-weight multiplication under every sum
	// argument, like an arithmetic circuit with edge weights.
	Weighted bool
	// SkipProb is the probability that an argument is drawn from any
	// earlier layer rather than the immediately preceding one, producing
	// the long irregular edges characteristic of learned PCs.
	SkipProb float64
	Seed     int64
}

// Generate synthesizes a circuit per cfg. The result is a valid DAG whose
// every interior node is OpAdd or OpMul and whose single sink is the
// circuit root.
func Generate(cfg Config) *dag.Graph {
	if cfg.Vars < 1 {
		cfg.Vars = 8
	}
	if cfg.SumFanin < 2 {
		cfg.SumFanin = 2
	}
	if cfg.TargetNodes < 16 {
		cfg.TargetNodes = 16
	}
	if cfg.TargetDepth < 4 {
		cfg.TargetDepth = 4
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := dag.New(cfg.Name)

	// Indicator leaves: λ_{v=0}, λ_{v=1} for each variable.
	prev := make([]dag.NodeID, 0, 2*cfg.Vars)
	for i := 0; i < 2*cfg.Vars; i++ {
		prev = append(prev, g.AddInput())
	}
	all := append([]dag.NodeID(nil), prev...)

	// Layer count: each product layer adds 1 to depth, each weighted sum
	// layer adds 2 (weight-mul + add); plan the width schedule so the
	// total lands near TargetNodes and depth near TargetDepth.
	depthPerPair := 2
	if cfg.Weighted {
		depthPerPair = 3
	}
	pairs := cfg.TargetDepth / depthPerPair
	if pairs < 1 {
		pairs = 1
	}
	layers := 2 * pairs
	// Estimate per-node cost: product nodes cost 1, sum nodes cost
	// 1 + SumFanin (weight muls) when weighted.
	sumCost := 1.0
	if cfg.Weighted {
		sumCost = 1 + float64(cfg.SumFanin)
	}
	avgCost := (1 + sumCost) / 2
	budget := float64(cfg.TargetNodes) - float64(len(prev))
	width := int(budget / (avgCost * float64(layers)))
	if width < 2 {
		width = 2
	}

	pick := func(rng *rand.Rand) dag.NodeID {
		if rng.Float64() < cfg.SkipProb && len(all) > len(prev) {
			// Skip connections reach earlier layers but stay local, like
			// the learned circuits' region structure: draw from a recent
			// window rather than uniformly over the whole circuit.
			win := 6 * len(prev)
			if win > len(all) {
				win = len(all)
			}
			return all[len(all)-1-rng.Intn(win)]
		}
		return prev[rng.Intn(len(prev))]
	}

	for l := 0; l < layers && g.NumNodes() < cfg.TargetNodes; l++ {
		w := width
		// Taper the final layers down toward the root.
		if rem := layers - l; rem <= 4 && w > rem*2 {
			w = rem * 2
		}
		cur := make([]dag.NodeID, 0, w)
		if l%2 == 0 {
			// Product layer: pairwise products.
			for i := 0; i < w; i++ {
				cur = append(cur, g.AddOp(dag.OpMul, pick(rng), pick(rng)))
			}
		} else {
			// Sum layer: weighted mixtures.
			for i := 0; i < w; i++ {
				args := make([]dag.NodeID, 0, cfg.SumFanin)
				for k := 0; k < cfg.SumFanin; k++ {
					a := pick(rng)
					if cfg.Weighted {
						wt := g.AddConst(0.1 + 0.9*rng.Float64())
						a = g.AddOp(dag.OpMul, wt, a)
					}
					args = append(args, a)
				}
				cur = append(cur, g.AddOp(dag.OpAdd, args...))
			}
		}
		all = append(all, cur...)
		prev = cur
	}

	// Root: sum every remaining sink so the circuit has one output.
	if outs := g.Outputs(); len(outs) > 1 {
		g.AddOp(dag.OpAdd, outs...)
	}
	return g
}

// UniformInputs returns an input vector that sets every indicator to p,
// handy for smoke-testing inference (p=1 marginalizes all variables).
func UniformInputs(g *dag.Graph, p float64) []float64 {
	in := make([]float64, len(g.Inputs()))
	for i := range in {
		in[i] = p
	}
	return in
}
