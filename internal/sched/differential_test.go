package sched

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
	"dpuv2/internal/engine"
)

// diffPopulation builds a mixed random-DAG population spanning the
// structural axes that matter to the batched path: binary and k-ary
// (renumbered by binarization), deep chains and wide shallow graphs.
func diffPopulation(n int) []*dag.Graph {
	shapes := []dag.RandomConfig{
		{Inputs: 3, Interior: 20, MaxArgs: 2, MulFrac: 0.3},
		{Inputs: 5, Interior: 35, MaxArgs: 4, MulFrac: 0.5},            // k-ary: sink permutation path
		{Inputs: 2, Interior: 40, MaxArgs: 2, MulFrac: 0.2, Window: 3}, // deep chain
		{Inputs: 8, Interior: 25, MaxArgs: 3, MulFrac: 0.4, Window: 50},
	}
	graphs := make([]*dag.Graph, n)
	for i := range graphs {
		cfg := shapes[i%len(shapes)]
		cfg.Seed = int64(1000 + i)
		graphs[i] = dag.RandomGraph(cfg)
	}
	return graphs
}

// directOutputs runs g through the engine's unbatched serving path and
// reports the sink values in g.Outputs() order (translating from the
// binarized graph via Remap), i.e. the same contract as sched.Submit.
func directOutputs(t *testing.T, e *engine.Engine, g *dag.Graph, in []float64) []float64 {
	t.Helper()
	res, err := e.Execute(g, testCfg, compiler.Options{}, in)
	if err != nil {
		t.Fatal(err)
	}
	c, err := e.Compile(g, testCfg, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	outs := g.Outputs()
	vals := make([]float64, len(outs))
	for j, s := range outs {
		vals[j] = res.Outputs[c.Remap[s]]
	}
	return vals
}

// TestDifferentialBatchedVsDirect proves the tentpole's correctness
// claim: for a random DAG population, results served through the
// batching scheduler are bit-exact with direct Engine.Execute calls —
// first serially per graph, then under concurrent mixed-graph load where
// requests from different callers coalesce into shared batches.
func TestDifferentialBatchedVsDirect(t *testing.T) {
	nGraphs := 16
	itersPerGraph := 4
	if testing.Short() {
		nGraphs, itersPerGraph = 6, 2
	}
	graphs := diffPopulation(nGraphs)
	eng := engine.New(engine.Options{})
	s := New(eng, Options{MaxBatch: 8, Linger: 200 * time.Microsecond})
	defer s.Close()

	// Precompute direct-path references per (graph, iteration).
	rng := rand.New(rand.NewSource(9))
	inputs := make([][][]float64, nGraphs)
	want := make([][][]float64, nGraphs)
	for gi, g := range graphs {
		inputs[gi] = make([][]float64, itersPerGraph)
		want[gi] = make([][]float64, itersPerGraph)
		for it := 0; it < itersPerGraph; it++ {
			in := make([]float64, len(g.Inputs()))
			for k := range in {
				in[k] = rng.NormFloat64()
			}
			inputs[gi][it] = in
			want[gi][it] = directOutputs(t, eng, g, in)
		}
	}

	// Phase 1: serial — every graph/input through the scheduler alone.
	for gi, g := range graphs {
		for it := 0; it < itersPerGraph; it++ {
			res, err := s.Submit(g, testCfg, compiler.Options{}, inputs[gi][it])
			if err != nil {
				t.Fatal(err)
			}
			for j, w := range want[gi][it] {
				if res.Outputs[j] != w {
					t.Fatalf("serial: graph %d iter %d output %d = %x, direct %x (not bit-exact)",
						gi, it, j, res.Outputs[j], w)
				}
			}
		}
	}

	// Phase 2: concurrent mixed-graph load — one goroutine per graph
	// walking the population in a different order, so batches routinely
	// mix iterations and goroutines.
	var wg sync.WaitGroup
	for w := 0; w < nGraphs; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for step := 0; step < nGraphs*itersPerGraph; step++ {
				gi := (w + step) % nGraphs
				it := step % itersPerGraph
				res, err := s.Submit(graphs[gi], testCfg, compiler.Options{}, inputs[gi][it])
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				for j, wv := range want[gi][it] {
					if res.Outputs[j] != wv {
						t.Errorf("concurrent: worker %d graph %d iter %d output %d = %x, direct %x",
							w, gi, it, j, res.Outputs[j], wv)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	st := s.Stats()
	if st.Failed != 0 || st.Rejected != 0 {
		t.Errorf("failed/rejected = %d/%d, want 0/0", st.Failed, st.Rejected)
	}
}
