package sched

// Stage-decomposition tests: the scheduler splits per-item latency into
// linger / queue_wait / execute on the injected clock, feeds the three
// per-stage histograms (conserving counts), and records the same windows
// as spans on a traced request.

import (
	"sync"
	"testing"
	"time"

	"dpuv2/internal/arch"
	"dpuv2/internal/compiler"
	"dpuv2/internal/engine"
	"dpuv2/internal/trace"
)

// findSpan returns the first span with the given stage, or nil.
func findSpan(rec *trace.Record, stage string) *trace.SpanRecord {
	for i := range rec.Spans {
		if rec.Spans[i].Stage == stage {
			return &rec.Spans[i]
		}
	}
	return nil
}

// TestStageDecomposition drives one traced request through a linger
// flush on a fake clock and checks both readouts of the decomposition:
// the Stats histograms and the trace's stage spans. On a fake clock the
// windows are exact — the item lingers exactly the linger duration, and
// queue_wait/execute are zero-width (nothing advances the clock inside
// the dispatch path).
func TestStageDecomposition(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	s := New(engine.New(engine.Options{}), Options{MaxBatch: 100, Linger: 5 * time.Millisecond, Clock: clk})
	defer s.Close()
	tracer := trace.New(trace.Options{Clock: clk, SampleEvery: 1, Service: "test"})
	tr := tracer.Start(trace.ID{}, "request", clk.Now())

	g := testGraph(11)
	in := testInputs(g, 1)
	done := make(chan error, 1)
	go func() {
		_, err := s.SubmitTraced(g, testCfg, compiler.Options{}, in, tr)
		done <- err
	}()
	waitStats(t, s, func(st Stats) bool { return st.QueueDepth == 1 })
	clk.Advance(5 * time.Millisecond) // linger fires; batch runs to completion
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	rec := tracer.Finish(tr)

	st := s.Stats()
	if st.LingerHist.Count != 1 || st.QueueWaitHist.Count != 1 || st.ExecuteHist.Count != 1 {
		t.Fatalf("stage histogram counts %d/%d/%d, want 1/1/1",
			st.LingerHist.Count, st.QueueWaitHist.Count, st.ExecuteHist.Count)
	}
	if st.Linger.Max != int64(5*time.Millisecond) {
		t.Fatalf("linger max %d, want exactly 5ms on the fake clock", st.Linger.Max)
	}
	if st.QueueWait.Max != 0 || st.Execute.Max != 0 {
		t.Fatalf("queue_wait/execute max %d/%d, want 0 on the fake clock", st.QueueWait.Max, st.Execute.Max)
	}

	lsp := findSpan(rec, StageLinger)
	qsp := findSpan(rec, StageQueueWait)
	esp := findSpan(rec, StageExecute)
	if lsp == nil || qsp == nil || esp == nil {
		t.Fatalf("missing stage spans in %+v", rec.Spans)
	}
	if lsp.DurationNS != int64(5*time.Millisecond) || lsp.OffsetNS != 0 {
		t.Fatalf("linger span %+v, want 5ms at offset 0", lsp)
	}
	if qsp.OffsetNS != int64(5*time.Millisecond) || qsp.DurationNS != 0 {
		t.Fatalf("queue_wait span %+v, want empty at offset 5ms", qsp)
	}
	// The batch leader's trace gets the engine's execute span (with the
	// backend attr), not the scheduler's per-item one.
	if esp.Attrs["backend"] == nil || esp.Attrs["batch_size"] != int64(1) {
		t.Fatalf("execute span attrs %+v, want the engine's (backend, batch_size)", esp.Attrs)
	}
	// The engine's cache resolution rode the same trace.
	rsp := findSpan(rec, "resolve")
	if rsp == nil || rsp.Attrs["cache_hit"] != false {
		t.Fatalf("resolve span %+v, want a cache miss recorded", rsp)
	}
	if findSpan(rec, "compile") == nil {
		t.Fatalf("no compile span on a cache miss: %+v", rec.Spans)
	}
	// Stage windows are contiguous and sum to at most the trace total.
	sum := lsp.DurationNS + qsp.DurationNS + esp.DurationNS
	if sum > rec.DurationNS {
		t.Fatalf("stage sum %d exceeds trace duration %d", sum, rec.DurationNS)
	}
}

// TestStageCountConservation: every delivered item — coalesced,
// straggler or failed — observes all three stage histograms, so their
// counts stay equal to each other (and to delivered items) no matter
// how batches formed.
func TestStageCountConservation(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	s := New(engine.New(engine.Options{}), Options{MaxBatch: 2, Linger: time.Hour, Clock: clk})
	defer s.Close()
	g := testGraph(12)
	in := testInputs(g, 1)
	// 2 items fill a batch (size flush); a 3rd waits for Close's flush.
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Submit(g, testCfg, compiler.Options{}, in); err != nil {
				t.Error(err)
			}
		}()
	}
	waitStats(t, s, func(st Stats) bool { return st.Completed >= 2 && st.QueueDepth == 1 })
	// A failed batch must conserve too: an uncompilable config, parked in
	// its own open batch until Close's flush delivers the failure.
	bad := arch.Config{D: 5, B: 2, R: 8} // B < 2^D: rejected by the compiler
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.Submit(g, bad, compiler.Options{}, in); err == nil {
			t.Error("compile failure did not surface")
		}
	}()
	waitStats(t, s, func(st Stats) bool { return st.QueueDepth == 2 })
	s.Close() // flushes the straggler and the failing batch
	wg.Wait()

	st := s.Stats()
	delivered := uint64(st.Completed + st.Failed)
	if delivered != 4 {
		t.Fatalf("delivered %d, want 4", delivered)
	}
	if st.QueueWaitHist.Count != delivered || st.LingerHist.Count != delivered || st.ExecuteHist.Count != delivered {
		t.Fatalf("stage counts %d/%d/%d, want all == delivered %d",
			st.QueueWaitHist.Count, st.LingerHist.Count, st.ExecuteHist.Count, delivered)
	}
	if st.LatencyHist.Count != delivered {
		t.Fatalf("latency count %d, want %d", st.LatencyHist.Count, delivered)
	}
}

// TestCoalescedItemsShareStageSpans: two traced requests coalescing into
// one batch each get their own linger/queue_wait/execute spans — the
// non-leader's execute span comes from the scheduler (per-item window),
// the leader's from the engine.
func TestCoalescedItemsShareStageSpans(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	s := New(engine.New(engine.Options{}), Options{MaxBatch: 2, Linger: time.Hour, Clock: clk})
	defer s.Close()
	tracer := trace.New(trace.Options{Clock: clk, SampleEvery: 1})
	g := testGraph(13)
	in := testInputs(g, 1)

	tr1 := tracer.Start(trace.ID{}, "r1", clk.Now())
	tr2 := tracer.Start(trace.ID{}, "r2", clk.Now())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.SubmitTraced(g, testCfg, compiler.Options{}, in, tr1); err != nil {
			t.Error(err)
		}
	}()
	waitStats(t, s, func(st Stats) bool { return st.QueueDepth == 1 })
	// Second submit fills the batch and dispatches it on this goroutine.
	if _, err := s.SubmitTraced(g, testCfg, compiler.Options{}, in, tr2); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	rec1, rec2 := tracer.Finish(tr1), tracer.Finish(tr2)

	for _, rec := range []*trace.Record{rec1, rec2} {
		for _, stage := range []string{StageLinger, StageQueueWait, StageExecute} {
			if findSpan(rec, stage) == nil {
				t.Fatalf("trace %s missing %s span: %+v", rec.TraceID, stage, rec.Spans)
			}
		}
	}
	// Exactly one of the two traces carries the engine-level resolve span.
	n := 0
	for _, rec := range []*trace.Record{rec1, rec2} {
		if findSpan(rec, "resolve") != nil {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("%d traces carry the batch-level resolve span, want exactly 1", n)
	}
}
