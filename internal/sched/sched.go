// Package sched is the dynamic micro-batching layer between concurrent
// callers and the serving engine. N callers submitting the same graph
// (same content address: fingerprint + normalized config + compiler
// options) within a linger window are coalesced into one batched engine
// invocation, which compiles once and executes every item on a small
// number of leased machines — the engine's fastest path — instead of N
// independent compile-cache and machine-pool round trips.
//
// Policy, in order of precedence:
//
//   - a batch is dispatched the moment it reaches MaxBatch items;
//   - otherwise a timer dispatches it Linger after its first item
//     arrived (bounded latency cost for coalescing);
//   - admission control bounds memory: a Submit that would exceed
//     QueueDepth admitted-but-unfinished items is rejected immediately
//     with ErrQueueFull — callers shed load instead of the server
//     growing an unbounded queue;
//   - Close drains gracefully: open batches are dispatched at once,
//     in-flight work completes, new submissions fail with ErrClosed.
package sched

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"dpuv2/internal/arch"
	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
	"dpuv2/internal/metrics"
	"dpuv2/internal/trace"
)

// ErrQueueFull rejects a submission that would exceed QueueDepth
// admitted-but-unfinished requests. Servers map it to 429.
var ErrQueueFull = errors.New("sched: queue full")

// ErrClosed rejects submissions after Close. Servers map it to 503.
var ErrClosed = errors.New("sched: scheduler closed")

// CompileError marks a batch failure caused by compilation (as opposed
// to a per-item execution error), so servers can answer 422 instead of
// itemizing. It wraps the compiler's error.
type CompileError struct{ Err error }

func (e *CompileError) Error() string { return e.Err.Error() }
func (e *CompileError) Unwrap() error { return e.Err }

// Backend is what the scheduler needs from the serving engine.
// *engine.Engine satisfies it; tests substitute fakes to probe policy
// without real compilation.
type Backend interface {
	Compile(g *dag.Graph, cfg arch.Config, opts compiler.Options) (*compiler.Compiled, error)
	ExecuteBatchInto(c *compiler.Compiled, batches, outs [][]float64, cycles []int, errs []error)
}

// TracedBackend is the optional tracing extension of Backend: a backend
// that records its own spans (compile-cache resolution, store decode,
// batch execution) against the batch's trace. *engine.Engine implements
// it; plain Backends — including every test fake — keep working, they
// just contribute no engine-side spans.
type TracedBackend interface {
	Backend
	CompileTraced(g *dag.Graph, cfg arch.Config, opts compiler.Options, tr *trace.Trace) (*compiler.Compiled, error)
	ExecuteBatchIntoTraced(c *compiler.Compiled, batches, outs [][]float64, cycles []int, errs []error, tr *trace.Trace)
}

// Stage names of the scheduler's latency decomposition, as they appear
// in trace spans and the per-stage histogram labels: Linger is
// enqueue→batch detach (waiting for company), QueueWait is
// detach→execution start (dispatch overhead and the batch compile),
// Execute is the backend's batch window. The three are contiguous and
// non-overlapping, so per item linger+queue_wait+execute ≤ the
// end-to-end latency.
const (
	StageLinger    = "linger"
	StageQueueWait = "queue_wait"
	StageExecute   = "execute"
)

// Options configure a Scheduler; the zero value is a production-ready
// default.
type Options struct {
	// MaxBatch dispatches a batch when it reaches this many items.
	// Default 32.
	MaxBatch int
	// Linger bounds how long the first item of a batch waits for
	// company. 0 means the 500µs default; negative disables coalescing
	// (every submission dispatches immediately).
	Linger time.Duration
	// QueueDepth bounds admitted-but-unfinished items; submissions
	// beyond it are rejected with ErrQueueFull. Default 4096.
	QueueDepth int
	// Clock is the time source; nil means SystemClock. Tests inject a
	// FakeClock to drive the linger policy deterministically.
	Clock Clock
	// NoCycles skips per-item cycle collection: Result.Cycles is 0 for
	// every item and the per-batch cycles slice is never allocated. The
	// batch key is unchanged — cycles are response decoration, not
	// coalescing state. For callers that only need outputs; note that
	// even the functional backend reports exact cycle counts (the
	// schedule is static), so the default keeps them.
	NoCycles bool
}

func (o Options) normalize() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 32
	}
	if o.Linger == 0 {
		o.Linger = 500 * time.Microsecond
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4096
	}
	if o.Clock == nil {
		o.Clock = SystemClock
	}
	return o
}

// Result is one completed submission: the sink values in the order of
// the submitted graph's Outputs() (the scheduler translates from the
// compiled, binarized graph's numbering), the simulated cycle count, and
// the cached compiled program the batch ran (shared across the batch),
// so callers needing compile metadata don't re-touch the engine's cache.
type Result struct {
	Outputs  []float64
	Cycles   int
	Compiled *compiler.Compiled
}

// Stats is a point-in-time snapshot of scheduler activity.
type Stats struct {
	// Submitted counts admitted requests; Rejected counts requests
	// turned away by admission control or ErrClosed.
	Submitted int64 `json:"submitted"`
	Rejected  int64 `json:"rejected"`
	// Completed counts requests finished successfully, Failed those
	// finished with a per-item or compile error.
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	// Batches counts dispatched batches, split by trigger.
	Batches       int64 `json:"batches"`
	SizeFlushes   int64 `json:"size_flushes"`
	LingerFlushes int64 `json:"linger_flushes"`
	CloseFlushes  int64 `json:"close_flushes"`
	// QueueDepth is the current number of admitted-but-unfinished
	// items; QueueLimit is the admission bound.
	QueueDepth int `json:"queue_depth"`
	QueueLimit int `json:"queue_limit"`
	// BatchSize summarizes dispatched batch sizes (items).
	BatchSize metrics.Summary `json:"batch_size"`
	// Latency summarizes per-request submit→completion time (ns).
	Latency metrics.Summary `json:"latency_ns"`
	// QueueWait/Linger/Execute decompose Latency per item into the
	// three contiguous stages (see StageLinger et al.): where a p99
	// regression actually spends its time — waiting for batch company,
	// waiting to start (including the batch compile), or executing.
	QueueWait metrics.Summary `json:"queue_wait_ns"`
	Linger    metrics.Summary `json:"linger_wait_ns"`
	Execute   metrics.Summary `json:"execute_ns"`
	// BatchSizeHist/LatencyHist are the full bucket snapshots behind the
	// two summaries. Quantiles of different processes cannot be averaged;
	// bucket snapshots merge exactly (metrics.Snapshot.Merge), which is
	// how the gateway aggregates per-backend stats into a fleet view.
	BatchSizeHist metrics.Snapshot `json:"batch_size_hist"`
	LatencyHist   metrics.Snapshot `json:"latency_hist"`
	// Per-stage bucket snapshots behind the stage summaries. Every
	// delivered item observes all three, so the stage counts conserve:
	// queue_wait.count == linger.count == execute.count.
	QueueWaitHist metrics.Snapshot `json:"queue_wait_hist"`
	LingerHist    metrics.Snapshot `json:"linger_hist"`
	ExecuteHist   metrics.Snapshot `json:"execute_hist"`
}

// key is the coalescing address: requests batch together iff their
// compiled program would be the same cache entry in the engine. The
// serving layer resolves autotuned configurations *before* submitting
// (engine.Resolve), so once a workload's tuning decision lands, its
// traffic coalesces under the tuned config's key — the batch key follows
// the config switch with no scheduler involvement.
type key struct {
	fp   dag.Fingerprint
	cfg  arch.Config
	opts compiler.Options
}

// request is one submission's slot in a batch. tr, when non-nil, is the
// submitting HTTP request's trace; the batch leader records the item's
// stage spans against it before waking the waiter.
type request struct {
	inputs []float64
	enq    time.Time
	tr     *trace.Trace
}

// batch accumulates requests for one key until dispatch; after run it
// carries every item's outcome, and done (closed once) broadcasts
// completion to all waiters at the cost of a single wakeup operation.
type batch struct {
	key   key
	g     *dag.Graph // representative graph (content-equal for all items)
	reqs  []request
	timer Timer

	done     chan struct{}
	c        *compiler.Compiled
	outs     [][]float64
	cycles   []int // nil under Options.NoCycles
	errs     []error
	batchErr error // compile failure (*CompileError): fails every item

	// Stage boundaries of the latency decomposition, stamped by the
	// leader: detached when the batch stopped accepting items,
	// execStart/execEnd bracketing the backend's batch execution
	// (equal on a compile failure, so stage counts still conserve).
	detached  time.Time
	execStart time.Time
	execEnd   time.Time
	// btr is the trace the engine's batch-level spans are recorded
	// against (the first traced item's), chosen by run; deliver skips
	// the per-item execute span for it when the backend already
	// recorded a richer one.
	btr *trace.Trace
}

// cyclesAt returns item i's cycle count, 0 when collection is off.
func (b *batch) cyclesAt(i int) int {
	if b.cycles == nil {
		return 0
	}
	return b.cycles[i]
}

// Scheduler coalesces submissions into batched backend executions. It is
// safe for concurrent use by any number of goroutines.
type Scheduler struct {
	backend Backend
	// traced is backend's tracing extension, nil when the backend does
	// not implement TracedBackend (test fakes). Asserted once at New,
	// not per batch.
	traced TracedBackend
	opts   Options
	clock  Clock

	mu     sync.Mutex
	open   map[key]*batch // batches still accepting items
	queued int            // admitted, not yet completed
	closed bool
	drain  sync.WaitGroup // dispatched batches not yet delivered

	submitted, rejected  atomic.Int64
	completed, failed    atomic.Int64
	batches, sizeFlushes atomic.Int64
	lingerFlushes        atomic.Int64
	closeFlushes         atomic.Int64
	batchSize            metrics.Histogram
	latency              metrics.Histogram
	queueWait            metrics.Histogram
	lingerWait           metrics.Histogram
	execute              metrics.Histogram
}

// New returns a scheduler dispatching onto backend.
func New(backend Backend, opts Options) *Scheduler {
	opts = opts.normalize()
	traced, _ := backend.(TracedBackend)
	return &Scheduler{
		backend: backend,
		traced:  traced,
		opts:    opts,
		clock:   opts.Clock,
		open:    make(map[key]*batch),
	}
}

// Submit queues one execution of g (content-addressed, so structurally
// identical graphs coalesce) and blocks until its batch completes. The
// returned outputs are in g.Outputs() order and owned by the caller.
//
// The submission that fills a batch becomes its leader and executes the
// whole batch on its own goroutine (no runner-goroutine handoff);
// everyone else parks on the batch's broadcast channel.
func (s *Scheduler) Submit(g *dag.Graph, cfg arch.Config, copts compiler.Options, inputs []float64) (Result, error) {
	return s.SubmitTraced(g, cfg, copts, inputs, nil)
}

// SubmitTraced is Submit with the request's trace attached: the batch
// leader records the item's linger/queue_wait/execute spans against tr
// before the waiter wakes. A nil tr is exactly Submit.
func (s *Scheduler) SubmitTraced(g *dag.Graph, cfg arch.Config, copts compiler.Options, inputs []float64, tr *trace.Trace) (Result, error) {
	k := key{fp: g.Fingerprint(), cfg: cfg.Normalize(), opts: copts.Normalized()}
	s.mu.Lock()
	b, idx, lead, err := s.enqueueLocked(g, k, inputs, tr)
	s.mu.Unlock()
	if err != nil {
		return Result{}, err
	}
	if lead {
		s.run(b)
	} else {
		<-b.done
	}
	if b.batchErr != nil {
		return Result{}, b.batchErr
	}
	if b.errs[idx] != nil {
		return Result{}, b.errs[idx]
	}
	return Result{Outputs: b.outs[idx], Cycles: b.cyclesAt(idx), Compiled: b.c}, nil
}

// SubmitMany queues a whole request's input vectors in one admission
// pass (so they coalesce with each other as well as with concurrent
// callers) and waits for all of them. Results and errors are per item,
// in input order; items past an admission failure are still attempted,
// each slot reporting its own outcome.
func (s *Scheduler) SubmitMany(g *dag.Graph, cfg arch.Config, copts compiler.Options, batches [][]float64) ([]Result, []error) {
	return s.SubmitManyTraced(g, cfg, copts, batches, nil)
}

// SubmitManyTraced is SubmitMany with the request's trace attached to
// every admitted item (one HTTP request = one trace, however many
// vectors it carries). A nil tr is exactly SubmitMany.
func (s *Scheduler) SubmitManyTraced(g *dag.Graph, cfg arch.Config, copts compiler.Options, batches [][]float64, tr *trace.Trace) ([]Result, []error) {
	k := key{fp: g.Fingerprint(), cfg: cfg.Normalize(), opts: copts.Normalized()}
	type slot struct {
		b   *batch
		idx int
	}
	slots := make([]slot, len(batches))
	errs := make([]error, len(batches))
	var lead []*batch
	s.mu.Lock()
	for i, in := range batches {
		b, idx, isLead, err := s.enqueueLocked(g, k, in, tr)
		if err != nil {
			errs[i] = err
			continue
		}
		slots[i] = slot{b, idx}
		if isLead {
			lead = append(lead, b)
		}
	}
	s.mu.Unlock()
	// Run the batches this call dispatched, then wait for the rest.
	for _, b := range lead {
		s.run(b)
	}
	results := make([]Result, len(batches))
	for i, sl := range slots {
		if sl.b == nil {
			continue
		}
		<-sl.b.done
		switch {
		case sl.b.batchErr != nil:
			errs[i] = sl.b.batchErr
		case sl.b.errs[sl.idx] != nil:
			errs[i] = sl.b.errs[sl.idx]
		default:
			results[i] = Result{Outputs: sl.b.outs[sl.idx], Cycles: sl.b.cyclesAt(sl.idx), Compiled: sl.b.c}
		}
	}
	return results, errs
}

// enqueueLocked admits one input vector into the open batch for k,
// creating the batch (and arming its linger timer) if none is open. It
// returns the batch, the caller's item index, and whether the caller
// became the batch's leader (dispatch was triggered by size or by the
// no-linger policy, and the caller must run the batch after releasing
// s.mu). Caller holds s.mu.
func (s *Scheduler) enqueueLocked(g *dag.Graph, k key, inputs []float64, tr *trace.Trace) (*batch, int, bool, error) {
	if s.closed {
		s.rejected.Add(1)
		return nil, 0, false, ErrClosed
	}
	if s.queued >= s.opts.QueueDepth {
		s.rejected.Add(1)
		return nil, 0, false, ErrQueueFull
	}
	s.queued++
	s.submitted.Add(1)
	b := s.open[k]
	if b == nil {
		b = &batch{key: k, g: g, done: make(chan struct{})}
		s.open[k] = b
		if s.opts.Linger > 0 && s.opts.MaxBatch > 1 {
			b.timer = s.clock.AfterFunc(s.opts.Linger, func() { s.lingerFire(b) })
		}
	}
	idx := len(b.reqs)
	b.reqs = append(b.reqs, request{inputs: inputs, enq: s.clock.Now(), tr: tr})
	if len(b.reqs) >= s.opts.MaxBatch || s.opts.Linger < 0 {
		s.detachLocked(b, &s.sizeFlushes)
		return b, idx, true, nil
	}
	return b, idx, false, nil
}

// lingerFire is the timer callback: dispatch b if it is still open (a
// size flush or Close may have beaten the timer). The timer goroutine
// runs the batch itself.
func (s *Scheduler) lingerFire(b *batch) {
	s.mu.Lock()
	fire := s.open[b.key] == b
	if fire {
		s.detachLocked(b, &s.lingerFlushes)
	}
	s.mu.Unlock()
	if fire {
		s.run(b)
	}
}

// detachLocked closes b to new items and accounts the dispatch; the
// caller must invoke s.run(b) after releasing s.mu. Caller holds s.mu.
func (s *Scheduler) detachLocked(b *batch, trigger *atomic.Int64) {
	if s.open[b.key] == b {
		delete(s.open, b.key)
	}
	if b.timer != nil {
		b.timer.Stop()
	}
	b.detached = s.clock.Now()
	trigger.Add(1)
	s.batches.Add(1)
	s.drain.Add(1)
}

// run executes one detached batch — on the leader submitter's goroutine
// for size flushes, on the timer or Close goroutine otherwise: compile
// once (almost always a cache hit), fan the items over the backend's
// leased-machine batch path, then publish every item's outcome and wake
// all waiters with one channel close.
func (s *Scheduler) run(b *batch) {
	defer s.drain.Done()
	n := len(b.reqs)
	// The engine's batch-level spans (resolve, store_decode, compile,
	// execute) go to one trace: the first traced item's. The other
	// traced items still get their per-item stage spans in deliver.
	if s.traced != nil {
		for i := range b.reqs {
			if b.reqs[i].tr != nil {
				b.btr = b.reqs[i].tr
				break
			}
		}
	}
	var c *compiler.Compiled
	var cerr error
	if b.btr != nil {
		c, cerr = s.traced.CompileTraced(b.g, b.key.cfg, b.key.opts, b.btr)
	} else {
		c, cerr = s.backend.Compile(b.g, b.key.cfg, b.key.opts)
	}
	if cerr != nil {
		// Stage accounting must conserve counts even on a failed batch:
		// an empty execute window, starting now.
		b.execStart = s.clock.Now()
		b.execEnd = b.execStart
		b.batchErr = &CompileError{Err: cerr}
		s.deliver(b)
		return
	}
	b.c = c
	sinks := c.Graph.Outputs()
	ins := make([][]float64, n)
	b.outs = make([][]float64, n)
	flat := make([]float64, n*len(sinks))
	if !s.opts.NoCycles {
		b.cycles = make([]int, n)
	}
	b.errs = make([]error, n)
	for i := range b.reqs {
		ins[i] = b.reqs[i].inputs
		b.outs[i] = flat[i*len(sinks) : (i+1)*len(sinks) : (i+1)*len(sinks)]
	}
	b.execStart = s.clock.Now()
	if b.btr != nil {
		s.traced.ExecuteBatchIntoTraced(c, ins, b.outs, b.cycles, b.errs, b.btr)
	} else {
		s.backend.ExecuteBatchInto(c, ins, b.outs, b.cycles, b.errs)
	}
	b.execEnd = s.clock.Now()
	// The engine writes outputs in the compiled (binarized) graph's sink
	// order; requests are answered in the submitted graph's order. The
	// permutation is identity for already-binary graphs (Remap is the
	// identity), checked without allocating.
	orig := b.g.Outputs()
	identity := len(orig) == len(sinks)
	if identity {
		for j, o := range orig {
			if c.Remap[o] != sinks[j] {
				identity = false
				break
			}
		}
	}
	if !identity {
		perm := make([]int, len(orig))
		pos := make(map[dag.NodeID]int, len(sinks))
		for i, sk := range sinks {
			pos[sk] = i
		}
		for j, o := range orig {
			perm[j] = pos[c.Remap[o]]
		}
		for i := range b.outs {
			if b.errs[i] != nil {
				continue
			}
			po := make([]float64, len(orig))
			for j, p := range perm {
				po[j] = b.outs[i][p]
			}
			b.outs[i] = po
		}
	}
	s.deliver(b)
}

// deliver accounts the finished batch, releases its queue slots and
// wakes every waiter. Publication is safe without per-item signalling:
// all writes to b happen before close(b.done), and waiters only read b
// after receiving from it.
func (s *Scheduler) deliver(b *batch) {
	now := s.clock.Now()
	for i := range b.reqs {
		r := &b.reqs[i]
		if b.batchErr != nil || b.errs[i] != nil {
			s.failed.Add(1)
		} else {
			s.completed.Add(1)
		}
		s.latency.Observe(int64(now.Sub(r.enq)))
		// Per-item stage decomposition. Every delivered item observes
		// all three histograms, so stage counts conserve (the CI smoke
		// asserts queue_wait.count == execute.count).
		linger := b.detached.Sub(r.enq)
		qwait := b.execStart.Sub(b.detached)
		exec := b.execEnd.Sub(b.execStart)
		s.lingerWait.Observe(int64(linger))
		s.queueWait.Observe(int64(qwait))
		s.execute.Observe(int64(exec))
		if r.tr != nil {
			r.tr.Span(StageLinger, r.enq, linger, 0)
			r.tr.Span(StageQueueWait, b.detached, qwait, 0)
			// The engine already recorded a richer execute span (backend,
			// batch size) on b.btr; only the other traced items need the
			// per-item window here.
			if r.tr != b.btr {
				r.tr.Span(StageExecute, b.execStart, exec, 0,
					trace.Int("batch_size", int64(len(b.reqs))))
			}
		}
	}
	s.batchSize.Observe(int64(len(b.reqs)))
	s.mu.Lock()
	s.queued -= len(b.reqs)
	s.mu.Unlock()
	close(b.done)
}

// Close stops admission (new submissions fail with ErrClosed),
// dispatches every open batch immediately, and blocks until all
// dispatched work has been delivered — the graceful-drain contract.
// Close is idempotent.
func (s *Scheduler) Close() {
	s.mu.Lock()
	var flush []*batch
	if !s.closed {
		s.closed = true
		for _, b := range s.open {
			s.detachLocked(b, &s.closeFlushes)
			flush = append(flush, b)
		}
	}
	s.mu.Unlock()
	for _, b := range flush {
		s.run(b)
	}
	s.drain.Wait()
}

// Stats returns a snapshot of the scheduler's counters and histograms.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	depth := s.queued
	s.mu.Unlock()
	return Stats{
		Submitted:     s.submitted.Load(),
		Rejected:      s.rejected.Load(),
		Completed:     s.completed.Load(),
		Failed:        s.failed.Load(),
		Batches:       s.batches.Load(),
		SizeFlushes:   s.sizeFlushes.Load(),
		LingerFlushes: s.lingerFlushes.Load(),
		CloseFlushes:  s.closeFlushes.Load(),
		QueueDepth:    depth,
		QueueLimit:    s.opts.QueueDepth,
		BatchSize:     s.batchSize.Summary(),
		Latency:       s.latency.Summary(),
		QueueWait:     s.queueWait.Summary(),
		Linger:        s.lingerWait.Summary(),
		Execute:       s.execute.Summary(),
		BatchSizeHist: s.batchSize.Snapshot(),
		LatencyHist:   s.latency.Snapshot(),
		QueueWaitHist: s.queueWait.Snapshot(),
		LingerHist:    s.lingerWait.Snapshot(),
		ExecuteHist:   s.execute.Snapshot(),
	}
}
