package sched

import (
	"errors"
	"sync"
	"testing"
	"time"

	"dpuv2/internal/arch"
	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
	"dpuv2/internal/engine"
)

var testCfg = arch.Config{D: 2, B: 8, R: 16}

func testGraph(seed int64) *dag.Graph {
	return dag.RandomGraph(dag.RandomConfig{
		Inputs:   4,
		Interior: 25,
		MaxArgs:  2,
		MulFrac:  0.3,
		Seed:     seed,
	})
}

func testInputs(g *dag.Graph, scale float64) []float64 {
	in := make([]float64, len(g.Inputs()))
	for i := range in {
		in[i] = scale * (0.25 + float64(i)*0.125)
	}
	return in
}

// wantEval computes the reference outputs for g in g.Outputs() order —
// the exact contract of Scheduler results.
func wantEval(t *testing.T, g *dag.Graph, in []float64) []float64 {
	t.Helper()
	vals, err := dag.Eval(g, in)
	if err != nil {
		t.Fatal(err)
	}
	outs := g.Outputs()
	want := make([]float64, len(outs))
	for j, s := range outs {
		want[j] = vals[s]
	}
	return want
}

// waitStats polls until cond on the scheduler's stats holds; the policy
// tests use it only to wait for concurrent Submit goroutines to reach
// their blocking point, never to time-race the linger policy itself.
func waitStats(t *testing.T, s *Scheduler, cond func(Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond(s.Stats()) {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for scheduler state; stats = %+v", s.Stats())
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// TestCoalescingPolicyTable drives the batching policy deterministically
// with a fake clock: batches fill before the linger expires, the linger
// fires first, admission control rejects beyond the queue bound, and
// negative linger degenerates to immediate dispatch.
func TestCoalescingPolicyTable(t *testing.T) {
	cases := []struct {
		name       string
		maxBatch   int
		queueDepth int
		linger     time.Duration
		submits    int
		advance    time.Duration
		wantSize   int64
		wantLinger int64
		wantRej    int64
		// wantSizes maps batch size → how many batches of that size
		// were dispatched (read back from the batch-size histogram).
		wantSizes map[int64]uint64
	}{
		{
			name:     "batch fills before linger",
			maxBatch: 4, linger: time.Hour,
			submits:   4,
			wantSize:  1,
			wantSizes: map[int64]uint64{4: 1},
		},
		{
			name:     "linger fires first",
			maxBatch: 100, linger: 10 * time.Millisecond,
			submits: 3, advance: 10 * time.Millisecond,
			wantLinger: 1,
			wantSizes:  map[int64]uint64{3: 1},
		},
		{
			name:     "queue-full rejection",
			maxBatch: 100, queueDepth: 2, linger: 10 * time.Millisecond,
			submits: 5, advance: 10 * time.Millisecond,
			wantLinger: 1, wantRej: 3,
			wantSizes: map[int64]uint64{2: 1},
		},
		{
			name:     "negative linger dispatches immediately",
			maxBatch: 100, linger: -1,
			submits:   3,
			wantSize:  3,
			wantSizes: map[int64]uint64{1: 3},
		},
		{
			name:     "max-batch splits, linger flushes the tail",
			maxBatch: 2, linger: 10 * time.Millisecond,
			submits: 5, advance: 10 * time.Millisecond,
			wantSize: 2, wantLinger: 1,
			wantSizes: map[int64]uint64{2: 2, 1: 1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := NewFakeClock(time.Unix(0, 0))
			s := New(engine.New(engine.Options{}), Options{
				MaxBatch:   tc.maxBatch,
				Linger:     tc.linger,
				QueueDepth: tc.queueDepth,
				Clock:      clk,
			})
			defer s.Close()
			g := testGraph(1)
			in := testInputs(g, 1)
			want := wantEval(t, g, in)

			type outcome struct {
				res Result
				err error
			}
			results := make(chan outcome, tc.submits)
			for i := 0; i < tc.submits; i++ {
				go func() {
					res, err := s.Submit(g, testCfg, compiler.Options{}, in)
					results <- outcome{res, err}
				}()
			}
			// Every goroutine has either been admitted (blocked on its
			// batch) or rejected before the clock moves.
			waitStats(t, s, func(st Stats) bool {
				return st.Submitted+st.Rejected == int64(tc.submits)
			})
			if tc.advance > 0 {
				clk.Advance(tc.advance)
			}
			var rejected int64
			for i := 0; i < tc.submits; i++ {
				o := <-results
				if o.err != nil {
					if !errors.Is(o.err, ErrQueueFull) {
						t.Fatalf("unexpected error: %v", o.err)
					}
					rejected++
					continue
				}
				for j := range want {
					if o.res.Outputs[j] != want[j] {
						t.Errorf("output %d = %v, want %v", j, o.res.Outputs[j], want[j])
					}
				}
				if o.res.Cycles <= 0 {
					t.Error("missing cycle count")
				}
			}
			st := s.Stats()
			if rejected != tc.wantRej || st.Rejected != tc.wantRej {
				t.Errorf("rejected = %d (stats %d), want %d", rejected, st.Rejected, tc.wantRej)
			}
			if st.SizeFlushes != tc.wantSize {
				t.Errorf("size flushes = %d, want %d", st.SizeFlushes, tc.wantSize)
			}
			if st.LingerFlushes != tc.wantLinger {
				t.Errorf("linger flushes = %d, want %d", st.LingerFlushes, tc.wantLinger)
			}
			if st.Completed != int64(tc.submits)-tc.wantRej {
				t.Errorf("completed = %d, want %d", st.Completed, int64(tc.submits)-tc.wantRej)
			}
			if st.QueueDepth != 0 {
				t.Errorf("queue depth = %d after quiescence, want 0", st.QueueDepth)
			}
			gotSizes := map[int64]uint64{}
			var nBatches int64
			for _, b := range s.batchSize.Snapshot().Buckets {
				gotSizes[b.Upper] = b.Count
				nBatches += int64(b.Count)
			}
			for size, count := range tc.wantSizes {
				if gotSizes[size] != count {
					t.Errorf("batch sizes = %v, want %v", gotSizes, tc.wantSizes)
					break
				}
			}
			if st.Batches != nBatches {
				t.Errorf("batches = %d, histogram holds %d", st.Batches, nBatches)
			}
		})
	}
}

// TestCloseDrainsAndRejects pins the graceful-drain contract: Close
// dispatches open batches immediately (no waiting out the linger),
// blocks until they deliver, and later submissions fail with ErrClosed.
func TestCloseDrainsAndRejects(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	s := New(engine.New(engine.Options{}), Options{MaxBatch: 100, Linger: time.Hour, Clock: clk})
	g := testGraph(2)
	in := testInputs(g, 1)
	want := wantEval(t, g, in)

	const n = 3
	results := make(chan Result, n)
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			res, err := s.Submit(g, testCfg, compiler.Options{}, in)
			results <- res
			errs <- err
		}()
	}
	waitStats(t, s, func(st Stats) bool { return st.Submitted == n })
	s.Close() // returns only after the in-flight batch delivered
	st := s.Stats()
	if st.CloseFlushes != 1 || st.Completed != n {
		t.Errorf("after close: %+v, want 1 close flush and %d completed", st, n)
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
		res := <-results
		for j := range want {
			if res.Outputs[j] != want[j] {
				t.Errorf("drained output %d = %v, want %v", j, res.Outputs[j], want[j])
			}
		}
	}
	if _, err := s.Submit(g, testCfg, compiler.Options{}, in); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}
	s.Close() // idempotent
}

// TestSubmitManyCoalescesAndReportsPerItem checks that one caller's
// vectors coalesce into shared batches, per-item errors stay in their
// slots, and admission failures past the queue bound are itemized.
func TestSubmitManyCoalescesAndReportsPerItem(t *testing.T) {
	s := New(engine.New(engine.Options{}), Options{MaxBatch: 8, Linger: -1})
	defer s.Close()
	g := testGraph(3)
	in := testInputs(g, 1)
	want := wantEval(t, g, in)

	batches := [][]float64{in, in[:1], in} // middle item has wrong arity
	results, errs := s.SubmitMany(g, testCfg, compiler.Options{}, batches)
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("good items errored: %v / %v", errs[0], errs[2])
	}
	if errs[1] == nil {
		t.Error("wrong-arity item did not error")
	}
	for _, i := range []int{0, 2} {
		for j := range want {
			if results[i].Outputs[j] != want[j] {
				t.Errorf("item %d output %d = %v, want %v", i, j, results[i].Outputs[j], want[j])
			}
		}
	}
	if st := s.Stats(); st.Failed != 1 || st.Completed != 2 {
		t.Errorf("stats = %+v, want 2 completed / 1 failed", st)
	}

	// Admission: a queue bound smaller than the request itemizes
	// ErrQueueFull on the overflow, still running what was admitted.
	clk := NewFakeClock(time.Unix(0, 0))
	s2 := New(engine.New(engine.Options{}), Options{MaxBatch: 100, Linger: time.Hour, QueueDepth: 2, Clock: clk})
	done := make(chan struct{})
	var r2 []Result
	var e2 []error
	go func() {
		r2, e2 = s2.SubmitMany(g, testCfg, compiler.Options{}, [][]float64{in, in, in, in})
		close(done)
	}()
	waitStats(t, s2, func(st Stats) bool { return st.Submitted == 2 && st.Rejected == 2 })
	clk.Advance(time.Hour)
	<-done
	for i := 0; i < 2; i++ {
		if e2[i] != nil {
			t.Errorf("admitted item %d errored: %v", i, e2[i])
		}
		if len(r2[i].Outputs) != len(want) {
			t.Errorf("admitted item %d missing outputs", i)
		}
	}
	for i := 2; i < 4; i++ {
		if !errors.Is(e2[i], ErrQueueFull) {
			t.Errorf("overflow item %d = %v, want ErrQueueFull", i, e2[i])
		}
	}
	s2.Close()
}

// TestKAryGraphOutputsPermuted exercises the non-identity sink
// permutation: a k-ary multi-sink graph is renumbered by binarization,
// yet Submit must answer in the submitted graph's sink order.
func TestKAryGraphOutputsPermuted(t *testing.T) {
	s := New(engine.New(engine.Options{}), Options{Linger: -1})
	defer s.Close()
	// Two sinks, one of them a 3-ary op: binarization renumbers.
	g := dag.New("kary")
	a := g.AddInput()
	bb := g.AddInput()
	c := g.AddInput()
	sum := g.AddOp(dag.OpAdd, a, bb, c) // sink 3 (renumbered)
	g.AddOp(dag.OpMul, sum, a)          // sink 4
	in := []float64{2, 3, 4}
	want := wantEval(t, g, in)
	res, err := s.Submit(g, testCfg, compiler.Options{}, in)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != len(want) {
		t.Fatalf("got %d outputs, want %d", len(res.Outputs), len(want))
	}
	for j := range want {
		if res.Outputs[j] != want[j] {
			t.Errorf("output %d = %v, want %v (sink order not preserved?)", j, res.Outputs[j], want[j])
		}
	}
}

// TestCompileErrorFailsWholeBatch: an uncompilable configuration must
// surface to every coalesced caller and count as failures, not hang.
func TestCompileErrorFailsWholeBatch(t *testing.T) {
	s := New(engine.New(engine.Options{}), Options{MaxBatch: 2, Linger: time.Hour, Clock: NewFakeClock(time.Unix(0, 0))})
	defer s.Close()
	g := testGraph(4)
	bad := arch.Config{D: 5, B: 2, R: 8} // B < 2^D: rejected by the compiler
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Submit(g, bad, compiler.Options{}, testInputs(g, 1)); err == nil {
				t.Error("compile failure did not surface")
			}
		}()
	}
	wg.Wait()
	if st := s.Stats(); st.Failed != 2 || st.Completed != 0 {
		t.Errorf("stats = %+v, want 2 failed", st)
	}
}

// TestDistinctKeysDoNotCoalesce: different graphs (and different
// configs of the same graph) must land in different batches.
func TestDistinctKeysDoNotCoalesce(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	s := New(engine.New(engine.Options{}), Options{MaxBatch: 100, Linger: time.Millisecond, Clock: clk})
	defer s.Close()
	g1, g2 := testGraph(5), testGraph(6)
	var wg sync.WaitGroup
	submit := func(g *dag.Graph, cfg arch.Config) {
		defer wg.Done()
		in := testInputs(g, 1)
		want := wantEval(t, g, in)
		res, err := s.Submit(g, cfg, compiler.Options{}, in)
		if err != nil {
			t.Error(err)
			return
		}
		for j := range want {
			if res.Outputs[j] != want[j] {
				t.Errorf("graph %s output %d = %v, want %v", g.Name, j, res.Outputs[j], want[j])
			}
		}
	}
	wg.Add(3)
	go submit(g1, testCfg)
	go submit(g2, testCfg)
	go submit(g1, arch.Config{D: 2, B: 8, R: 32})
	waitStats(t, s, func(st Stats) bool { return st.Submitted == 3 })
	clk.Advance(time.Millisecond)
	wg.Wait()
	if st := s.Stats(); st.Batches != 3 {
		t.Errorf("batches = %d, want 3 (distinct keys must not coalesce)", st.Batches)
	}
}

// TestNoCyclesSkipsCycleCollection: Options.NoCycles drops the per-item
// cycle slice (serving paths that only need outputs shouldn't pay for
// it); outputs are unaffected and Result.Cycles reads as zero. The
// batch key ignores the option, so NoCycles and default schedulers see
// identical coalescing.
func TestNoCyclesSkipsCycleCollection(t *testing.T) {
	g := testGraph(11)
	in := testInputs(g, 1)
	want := wantEval(t, g, in)

	s := New(engine.New(engine.Options{}), Options{MaxBatch: 8, Linger: -1, NoCycles: true})
	defer s.Close()
	res, err := s.Submit(g, testCfg, compiler.Options{}, in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 0 {
		t.Errorf("NoCycles result reports %d cycles, want 0", res.Cycles)
	}
	for j := range want {
		if res.Outputs[j] != want[j] {
			t.Errorf("output %d = %v, want %v", j, res.Outputs[j], want[j])
		}
	}
	results, errs := s.SubmitMany(g, testCfg, compiler.Options{}, [][]float64{in, in})
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("item %d: %v", i, errs[i])
		}
		if results[i].Cycles != 0 {
			t.Errorf("item %d reports %d cycles, want 0", i, results[i].Cycles)
		}
	}

	// Default scheduler on the same graph still reports real cycles.
	sc := New(engine.New(engine.Options{}), Options{MaxBatch: 8, Linger: -1})
	defer sc.Close()
	res2, err := sc.Submit(g, testCfg, compiler.Options{}, in)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cycles <= 0 {
		t.Errorf("default scheduler reports %d cycles, want > 0", res2.Cycles)
	}
}
