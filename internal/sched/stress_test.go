package sched

import (
	"sync"
	"testing"
	"time"

	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
	"dpuv2/internal/engine"
)

// TestStressNoResultCrossWiring is the scheduler's -race load test:
// many goroutines hammer one scheduler with a mixed graph population and
// per-goroutine input scales, so every (graph, scale) pair has a unique
// expected output vector. Any cross-wiring between coalesced requests —
// a caller receiving a batch-mate's outputs, or two requests sharing a
// result buffer — shows up as a value mismatch; the race detector covers
// the memory-ordering side. CI runs this under -race.
func TestStressNoResultCrossWiring(t *testing.T) {
	const (
		workers = 8
		iters   = 25
		nGraphs = 4
	)
	graphs := make([]*dag.Graph, nGraphs)
	wants := make([]map[float64][]float64, nGraphs) // per graph: scale → expected
	for i := range graphs {
		graphs[i] = testGraph(int64(300 + i))
		wants[i] = make(map[float64][]float64)
		for w := 0; w < workers; w++ {
			scale := 1 + float64(w)*0.5
			wants[i][scale] = wantEval(t, graphs[i], testInputs(graphs[i], scale))
		}
	}
	s := New(engine.New(engine.Options{}), Options{
		MaxBatch: 8,
		Linger:   200 * time.Microsecond,
	})
	defer s.Close()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			scale := 1 + float64(w)*0.5
			for it := 0; it < iters; it++ {
				for gi, g := range graphs {
					res, err := s.Submit(g, testCfg, compiler.Options{}, testInputs(g, scale))
					if err != nil {
						t.Errorf("worker %d: %v", w, err)
						return
					}
					want := wants[gi][scale]
					for j := range want {
						if res.Outputs[j] != want[j] {
							t.Errorf("worker %d graph %d iter %d: output %d = %v, want %v (cross-wired result?)",
								w, gi, it, j, res.Outputs[j], want[j])
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()

	st := s.Stats()
	total := int64(workers * iters * nGraphs)
	if st.Submitted != total {
		t.Errorf("submitted = %d, want %d", st.Submitted, total)
	}
	if st.Completed != total || st.Failed != 0 || st.Rejected != 0 {
		t.Errorf("completed/failed/rejected = %d/%d/%d, want %d/0/0",
			st.Completed, st.Failed, st.Rejected, total)
	}
	if st.QueueDepth != 0 {
		t.Errorf("queue depth = %d after quiescence, want 0", st.QueueDepth)
	}
	if st.Batches <= 0 || st.Batches > total {
		t.Errorf("batches = %d out of range (0, %d]", st.Batches, total)
	}
	if st.Batches == total {
		t.Logf("note: no coalescing happened this run (%d batches for %d submissions)", st.Batches, total)
	}
	if st.Latency.Count != uint64(total) {
		t.Errorf("latency observations = %d, want %d", st.Latency.Count, total)
	}
}

// TestStressAdmissionUnderOverload keeps the queue bound far below the
// offered load: some submissions must be rejected, every admitted one
// must complete correctly, and the conservation law submitted ==
// completed + failed must hold at quiescence.
func TestStressAdmissionUnderOverload(t *testing.T) {
	const (
		workers = 8
		iters   = 40
	)
	g := testGraph(77)
	in := testInputs(g, 1)
	want := wantEval(t, g, in)
	s := New(engine.New(engine.Options{}), Options{
		MaxBatch:   4,
		Linger:     100 * time.Microsecond,
		QueueDepth: 3,
	})
	defer s.Close()

	var wg sync.WaitGroup
	var mu sync.Mutex
	var ok, rejected int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				res, err := s.Submit(g, testCfg, compiler.Options{}, in)
				if err != nil {
					if err != ErrQueueFull {
						t.Errorf("unexpected error: %v", err)
					}
					mu.Lock()
					rejected++
					mu.Unlock()
					continue
				}
				for j := range want {
					if res.Outputs[j] != want[j] {
						t.Errorf("output %d = %v, want %v", j, res.Outputs[j], want[j])
					}
				}
				mu.Lock()
				ok++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	st := s.Stats()
	if st.Completed != ok || st.Rejected != rejected {
		t.Errorf("stats %d completed / %d rejected, callers saw %d / %d", st.Completed, st.Rejected, ok, rejected)
	}
	if st.Submitted != st.Completed+st.Failed {
		t.Errorf("conservation violated: submitted %d != completed %d + failed %d", st.Submitted, st.Completed, st.Failed)
	}
	if st.QueueDepth != 0 {
		t.Errorf("queue depth = %d after quiescence", st.QueueDepth)
	}
	if st.BatchSize.Max > 4 {
		t.Errorf("batch size max = %d exceeds MaxBatch 4", st.BatchSize.Max)
	}
}
