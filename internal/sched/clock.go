package sched

import (
	"sort"
	"sync"
	"time"
)

// Clock abstracts the scheduler's two uses of time — reading the current
// instant and arming the linger timer — so tests can drive the batching
// policy deterministically with a FakeClock while production uses the
// system clock.
type Clock interface {
	Now() time.Time
	AfterFunc(d time.Duration, f func()) Timer
}

// Timer is an armed AfterFunc callback. Stop reports whether it
// prevented the callback from running.
type Timer interface {
	Stop() bool
}

// SystemClock is the production Clock backed by package time.
var SystemClock Clock = systemClock{}

type systemClock struct{}

// Now reads the wall clock. This is the one sanctioned call site:
// everything else in sched/serve must go through a Clock so tests stay
// deterministic (enforced by internal/lint).
//
//lint:allow clockuse
func (systemClock) Now() time.Time { return time.Now() }

// AfterFunc arms a real timer; see Now for why this is the only place
// allowed to touch package time directly.
//
//lint:allow clockuse
func (systemClock) AfterFunc(d time.Duration, f func()) Timer { return time.AfterFunc(d, f) }

// FakeClock is a manually advanced Clock for deterministic tests: time
// moves only on Advance, which fires every timer whose deadline has been
// reached, in deadline order, synchronously on the caller's goroutine.
// Callbacks run outside the clock's lock, so they may re-enter the clock
// (or take the scheduler's lock) freely.
type FakeClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []*fakeTimer
}

// NewFakeClock returns a FakeClock reading start.
func NewFakeClock(start time.Time) *FakeClock { return &FakeClock{now: start} }

func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *FakeClock) AfterFunc(d time.Duration, f func()) Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &fakeTimer{clock: c, when: c.now.Add(d), f: f}
	c.timers = append(c.timers, t)
	return t
}

// Advance moves the clock forward by d and fires every due timer.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	var due []*fakeTimer
	keep := c.timers[:0]
	for _, t := range c.timers {
		if !t.when.After(c.now) {
			t.fired = true
			due = append(due, t)
		} else {
			keep = append(keep, t)
		}
	}
	for i := len(keep); i < len(c.timers); i++ {
		c.timers[i] = nil
	}
	c.timers = keep
	c.mu.Unlock()
	sort.Slice(due, func(i, j int) bool { return due[i].when.Before(due[j].when) })
	for _, t := range due {
		t.f()
	}
}

type fakeTimer struct {
	clock *FakeClock
	when  time.Time
	f     func()
	fired bool
}

func (t *fakeTimer) Stop() bool {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	if t.fired {
		return false
	}
	t.fired = true
	for i, other := range t.clock.timers {
		if other == t {
			last := len(t.clock.timers) - 1
			t.clock.timers[i] = t.clock.timers[last]
			t.clock.timers[last] = nil
			t.clock.timers = t.clock.timers[:last]
			break
		}
	}
	return true
}
