package dag

import "math/rand"

// RandomConfig controls RandomGraph. The generator is used throughout the
// test suite as a source of adversarial irregular structure, and by the
// fig. 1(c) size sweep.
type RandomConfig struct {
	Inputs   int     // number of OpInput leaves (≥1)
	Interior int     // number of arithmetic nodes (≥1)
	MaxArgs  int     // maximum arity before binarization (≥2)
	MulFrac  float64 // fraction of interior nodes that multiply
	// Window bounds how far back (in ids) arguments are drawn from,
	// which controls depth vs. width: small windows make deep chains,
	// large windows make shallow wide DAGs. 0 means unbounded.
	Window int
	Seed   int64
}

// RandomGraph generates a pseudo-random DAG. Every non-final interior node
// is guaranteed at least one consumer by the trailing reduction, so the
// graph has a single sink unless earlier nodes happen to stay unused
// (which the generator prevents by wiring them into the final reduce).
func RandomGraph(cfg RandomConfig) *Graph {
	if cfg.Inputs < 1 {
		cfg.Inputs = 1
	}
	if cfg.Interior < 1 {
		cfg.Interior = 1
	}
	if cfg.MaxArgs < 2 {
		cfg.MaxArgs = 2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := New("random")
	for i := 0; i < cfg.Inputs; i++ {
		g.AddInput()
	}
	for i := 0; i < cfg.Interior; i++ {
		op := OpAdd
		if rng.Float64() < cfg.MulFrac {
			op = OpMul
		}
		n := g.NumNodes()
		lo := 0
		if cfg.Window > 0 && n > cfg.Window {
			lo = n - cfg.Window
		}
		k := 2
		if cfg.MaxArgs > 2 {
			k = 2 + rng.Intn(cfg.MaxArgs-1)
		}
		args := make([]NodeID, k)
		for j := range args {
			args[j] = NodeID(lo + rng.Intn(n-lo))
		}
		g.AddOp(op, args...)
	}
	// Wire all remaining sinks except the last into one final sum so the
	// graph has a deterministic set of observable outputs.
	outs := g.Outputs()
	if len(outs) > 1 {
		g.AddOp(OpAdd, outs...)
	}
	return g
}
