package dag

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
)

// Fingerprint is a stable 256-bit content hash of a graph's structure:
// two graphs with the same nodes (ops, argument wiring, constant bit
// patterns) in the same order have the same fingerprint regardless of
// their display Name, and any structural difference changes it. It is
// the cache key of the serving engine's compile cache, so it must be
// stable across processes and hosts (no map iteration, no pointers).
type Fingerprint [32]byte

// String renders the fingerprint as lowercase hex.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// Short returns the first 12 hex digits, enough to label a graph in logs.
func (f Fingerprint) Short() string { return hex.EncodeToString(f[:6]) }

// fingerprintDomain versions the hash layout; bump it if the encoding
// below ever changes so stale persisted keys cannot alias.
const fingerprintDomain = "dpuv2/dag/fingerprint/v1"

// Fingerprint returns the content hash of the graph. The result is
// memoized behind an atomic pointer (like the adjacency cache) and
// invalidated by mutation, so a built graph served many times is hashed
// once; concurrent readers are safe.
func (g *Graph) Fingerprint() Fingerprint {
	if p := g.fp.Load(); p != nil {
		return *p
	}
	h := sha256.New()
	var scratch [8]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		h.Write(scratch[:4])
	}
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		h.Write(scratch[:])
	}
	h.Write([]byte(fingerprintDomain))
	put32(uint32(len(g.nodes)))
	for i := range g.nodes {
		n := &g.nodes[i]
		scratch[0] = byte(n.Op)
		h.Write(scratch[:1])
		switch n.Op {
		case OpConst:
			put64(math.Float64bits(n.Val))
		case OpInput:
			// position alone identifies an input
		default:
			put32(uint32(len(n.Args)))
			for _, a := range n.Args {
				put32(uint32(a))
			}
		}
	}
	var f Fingerprint
	h.Sum(f[:0])
	// Concurrent first callers may hash twice; the results are identical.
	// Return the local value: a racing mutation may have already cleared
	// the memo again, so the pointer must not be re-read.
	g.fp.CompareAndSwap(nil, &f)
	return f
}
