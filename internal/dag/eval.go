package dag

import "fmt"

// Eval computes the value of every node given values for the OpInput
// leaves, in input-id order. It is the functional reference against which
// the cycle-accurate simulator is verified: the simulator executes the
// same float64 operations, so matching results must be bit-exact for an
// identical operation tree (associativity differences introduced by
// binarization are exercised separately in tests).
func Eval(g *Graph, inputs []float64) ([]float64, error) {
	vals := make([]float64, g.NumNodes())
	next := 0
	for i := 0; i < g.NumNodes(); i++ {
		n := g.Node(NodeID(i))
		switch n.Op {
		case OpInput:
			if next >= len(inputs) {
				return nil, fmt.Errorf("dag: %d input values provided, need more", len(inputs))
			}
			vals[i] = inputs[next]
			next++
		case OpConst:
			vals[i] = n.Val
		case OpAdd:
			acc := vals[n.Args[0]]
			for _, a := range n.Args[1:] {
				acc += vals[a]
			}
			vals[i] = acc
		case OpMul:
			acc := vals[n.Args[0]]
			for _, a := range n.Args[1:] {
				acc *= vals[a]
			}
			vals[i] = acc
		default:
			return nil, fmt.Errorf("dag: node %d has unknown op %v", i, n.Op)
		}
	}
	if next != len(inputs) {
		return nil, fmt.Errorf("dag: %d input values provided, graph has %d inputs", len(inputs), next)
	}
	return vals, nil
}

// EvalOutputs is a convenience wrapper returning only the sink values.
func EvalOutputs(g *Graph, inputs []float64) ([]float64, error) {
	vals, err := Eval(g, inputs)
	if err != nil {
		return nil, err
	}
	outs := g.Outputs()
	res := make([]float64, len(outs))
	for i, o := range outs {
		res[i] = vals[o]
	}
	return res, nil
}
