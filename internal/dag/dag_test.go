package dag

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddAndValidate(t *testing.T) {
	g := New("t")
	a := g.AddInput()
	b := g.AddInput()
	c := g.AddConst(2.5)
	s := g.AddOp(OpAdd, a, b)
	p := g.AddOp(OpMul, s, c)
	if g.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d, want 5", g.NumNodes())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := g.Op(p); got != OpMul {
		t.Errorf("Op(p) = %v, want mul", got)
	}
	if got := g.Args(p); len(got) != 2 || got[0] != s || got[1] != c {
		t.Errorf("Args(p) = %v", got)
	}
}

func TestValidateEmpty(t *testing.T) {
	if err := New("e").Validate(); err == nil {
		t.Fatal("Validate on empty graph should fail")
	}
}

func TestAddOpPanicsOnForwardRef(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on forward reference")
		}
	}()
	g := New("t")
	g.AddInput()
	g.AddOp(OpAdd, 0, 5)
}

func TestAddOpPanicsOnLeafOp(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on AddOp(OpInput)")
		}
	}()
	g := New("t")
	g.AddInput()
	g.AddOp(OpInput, 0)
}

func TestSuccsAndFanout(t *testing.T) {
	g := New("t")
	a := g.AddInput()
	b := g.AddInput()
	s := g.AddOp(OpAdd, a, b)
	g.AddOp(OpMul, s, a)
	g.AddOp(OpMul, s, b)
	if f := g.Fanout(s); f != 2 {
		t.Errorf("Fanout(s) = %d, want 2", f)
	}
	if f := g.Fanout(a); f != 2 {
		t.Errorf("Fanout(a) = %d, want 2", f)
	}
	if got := len(g.Outputs()); got != 2 {
		t.Errorf("Outputs = %d, want 2", got)
	}
}

func TestSuccsInvalidatedOnMutation(t *testing.T) {
	g := New("t")
	a := g.AddInput()
	b := g.AddInput()
	s := g.AddOp(OpAdd, a, b)
	if g.Fanout(s) != 0 {
		t.Fatal("fresh node should have fanout 0")
	}
	g.AddOp(OpMul, s, s)
	if g.Fanout(s) != 2 {
		t.Fatal("fanout should reflect the new consumer twice")
	}
}

func TestEvalSimple(t *testing.T) {
	g := New("t")
	a := g.AddInput()
	b := g.AddInput()
	c := g.AddConst(3)
	s := g.AddOp(OpAdd, a, b)
	g.AddOp(OpMul, s, c)
	vals, err := Eval(g, []float64{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if vals[len(vals)-1] != 21 {
		t.Fatalf("eval = %v, want 21", vals[len(vals)-1])
	}
	if _, err := Eval(g, []float64{1}); err == nil {
		t.Error("expected error on too few inputs")
	}
	if _, err := Eval(g, []float64{1, 2, 3}); err == nil {
		t.Error("expected error on too many inputs")
	}
}

func TestEvalOutputs(t *testing.T) {
	g := New("t")
	a := g.AddInput()
	b := g.AddInput()
	g.AddOp(OpAdd, a, b)
	g.AddOp(OpMul, a, b)
	outs, err := EvalOutputs(g, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 || outs[0] != 7 || outs[1] != 12 {
		t.Fatalf("outputs = %v, want [7 12]", outs)
	}
}

func TestBinarizeExpandsWideNodes(t *testing.T) {
	g := New("t")
	var ins []NodeID
	for i := 0; i < 7; i++ {
		ins = append(ins, g.AddInput())
	}
	g.AddOp(OpAdd, ins...)
	bg, remap := Binarize(g)
	if !bg.IsBinary() {
		t.Fatal("binarized graph is not binary")
	}
	if err := bg.Validate(); err != nil {
		t.Fatal(err)
	}
	in := []float64{1, 2, 3, 4, 5, 6, 7}
	want, _ := Eval(g, in)
	got, _ := Eval(bg, in)
	if got[remap[len(want)-1]] != want[len(want)-1] {
		t.Fatalf("binarize changed value: got %v want %v", got[remap[len(want)-1]], want[len(want)-1])
	}
}

func TestBinarizeUnaryNode(t *testing.T) {
	g := New("t")
	a := g.AddInput()
	g.AddOp(OpAdd, a)
	g.AddOp(OpMul, 1)
	bg, remap := Binarize(g)
	if !bg.IsBinary() {
		t.Fatal("not binary")
	}
	got, err := Eval(bg, []float64{5})
	if err != nil {
		t.Fatal(err)
	}
	if got[remap[2]] != 5 {
		t.Fatalf("unary widen changed value: %v", got[remap[2]])
	}
}

func TestBinarizePreservesLeafValues(t *testing.T) {
	g := New("t")
	c := g.AddConst(4.25)
	a := g.AddInput()
	g.AddOp(OpMul, c, a)
	bg, remap := Binarize(g)
	if bg.Node(remap[c]).Val != 4.25 {
		t.Fatal("const value lost")
	}
	got, _ := Eval(bg, []float64{2})
	if got[remap[2]] != 8.5 {
		t.Fatalf("got %v want 8.5", got[remap[2]])
	}
}

func TestComputeStats(t *testing.T) {
	g := New("t")
	a := g.AddInput()
	b := g.AddInput()
	s := g.AddOp(OpAdd, a, b) // depth 2
	m := g.AddOp(OpMul, s, a) // depth 3
	g.AddOp(OpAdd, m, s)      // depth 4
	st := ComputeStats(g)
	if st.Nodes != 5 || st.Interior != 3 || st.Inputs != 2 {
		t.Fatalf("stats counts wrong: %+v", st)
	}
	if st.LongestPath != 4 {
		t.Fatalf("LongestPath = %d, want 4", st.LongestPath)
	}
	if math.Abs(st.AvgParallel-5.0/4.0) > 1e-12 {
		t.Fatalf("AvgParallel = %v", st.AvgParallel)
	}
	if st.MaxFanout != 2 {
		t.Fatalf("MaxFanout = %d, want 2", st.MaxFanout)
	}
}

func TestLevelsPartition(t *testing.T) {
	g := RandomGraph(RandomConfig{Inputs: 20, Interior: 200, MaxArgs: 4, MulFrac: 0.5, Seed: 7})
	levels := Levels(g)
	seen := make(map[NodeID]bool)
	depth := Depths(g)
	for li, lvl := range levels {
		for _, n := range lvl {
			if seen[n] {
				t.Fatalf("node %d appears twice", n)
			}
			seen[n] = true
			if int(depth[n]) != li+1 {
				t.Fatalf("node %d depth %d in level %d", n, depth[n], li+1)
			}
			// No node may depend on a node in the same or later level.
			for _, a := range g.Args(n) {
				if depth[a] >= depth[n] {
					t.Fatalf("node %d arg %d violates level order", n, a)
				}
			}
		}
	}
	if len(seen) != g.NumNodes() {
		t.Fatalf("levels cover %d of %d nodes", len(seen), g.NumNodes())
	}
}

func TestDFSOrderIsPermutation(t *testing.T) {
	g := RandomGraph(RandomConfig{Inputs: 10, Interior: 100, MaxArgs: 3, Seed: 3})
	order := DFSOrder(g)
	seen := make([]bool, len(order))
	for _, o := range order {
		if o < 0 || int(o) >= len(order) || seen[o] {
			t.Fatalf("DFSOrder not a permutation: %v", order)
		}
		seen[o] = true
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	g := RandomGraph(RandomConfig{Inputs: 5, Interior: 50, MaxArgs: 4, Seed: 11})
	pos := make([]int, g.NumNodes())
	for i, n := range TopoOrder(g) {
		pos[n] = i
	}
	for i := 0; i < g.NumNodes(); i++ {
		for _, a := range g.Args(NodeID(i)) {
			if pos[a] >= pos[NodeID(i)] {
				t.Fatalf("topo order violates edge %d->%d", a, i)
			}
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := New("orig")
	a := g.AddInput()
	b := g.AddInput()
	g.AddOp(OpAdd, a, b)
	c := g.Clone()
	c.AddOp(OpMul, 2, 2)
	if g.NumNodes() != 3 || c.NumNodes() != 4 {
		t.Fatalf("clone not independent: %d vs %d", g.NumNodes(), c.NumNodes())
	}
	c.Node(2).Args[0] = b
	if g.Node(2).Args[0] != a {
		t.Fatal("clone shares arg slices with original")
	}
}

// Property: every randomly generated graph validates, is acyclic by id
// order, and binarization preserves the sink value.
func TestRandomGraphProperties(t *testing.T) {
	f := func(seed int64, nIn8, nOp8 uint8, mulFrac float64) bool {
		cfg := RandomConfig{
			Inputs:   1 + int(nIn8%32),
			Interior: 1 + int(nOp8),
			MaxArgs:  2 + int(seed%4+3)%4,
			MulFrac:  math.Mod(math.Abs(mulFrac), 1),
			Seed:     seed,
		}
		g := RandomGraph(cfg)
		if g.Validate() != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		in := make([]float64, len(g.Inputs()))
		for i := range in {
			in[i] = rng.Float64()*2 - 1
		}
		want, err := Eval(g, in)
		if err != nil {
			return false
		}
		bg, remap := Binarize(g)
		if !bg.IsBinary() || bg.Validate() != nil {
			return false
		}
		got, err := Eval(bg, in)
		if err != nil {
			return false
		}
		sink := NodeID(g.NumNodes() - 1)
		diff := math.Abs(got[remap[sink]] - want[sink])
		tol := 1e-9 * (1 + math.Abs(want[sink]))
		return diff <= tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomGraphWindowControlsDepth(t *testing.T) {
	deep := RandomGraph(RandomConfig{Inputs: 4, Interior: 3000, MaxArgs: 2, Window: 4, Seed: 1})
	wide := RandomGraph(RandomConfig{Inputs: 512, Interior: 3000, MaxArgs: 2, Window: 0, Seed: 1})
	sd, sw := ComputeStats(deep), ComputeStats(wide)
	if sd.LongestPath <= sw.LongestPath {
		t.Fatalf("window should deepen graph: deep=%d wide=%d", sd.LongestPath, sw.LongestPath)
	}
}

func TestOpString(t *testing.T) {
	cases := map[Op]string{OpInput: "input", OpConst: "const", OpAdd: "add", OpMul: "mul", Op(9): "op(9)"}
	for op, want := range cases {
		if op.String() != want {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), want)
		}
	}
}
