package dag

// Binarize returns a graph in which every interior node has exactly two
// arguments, by expanding k-ary nodes (k>2) into balanced trees of 2-input
// nodes of the same op, and widening 1-ary nodes into a 2-input op with a
// neutral constant (0 for add, 1 for mul). The compiler requires a binary
// DAG so that nodes map one-to-one onto the 2-input PEs (§IV-A).
//
// The second return value maps each original node id to the id of the node
// computing its value in the binarized graph.
func Binarize(g *Graph) (*Graph, []NodeID) {
	out := New(g.Name)
	remap := make([]NodeID, g.NumNodes())
	// Neutral-element constants are created lazily and shared.
	var zeroID, oneID NodeID = InvalidNode, InvalidNode
	neutral := func(op Op) NodeID {
		if op == OpAdd {
			if zeroID == InvalidNode {
				zeroID = out.AddConst(0)
			}
			return zeroID
		}
		if oneID == InvalidNode {
			oneID = out.AddConst(1)
		}
		return oneID
	}

	var reduce func(op Op, args []NodeID) NodeID
	reduce = func(op Op, args []NodeID) NodeID {
		switch len(args) {
		case 1:
			return args[0]
		case 2:
			return out.AddOp(op, args[0], args[1])
		default:
			mid := len(args) / 2
			l := reduce(op, args[:mid])
			r := reduce(op, args[mid:])
			return out.AddOp(op, l, r)
		}
	}

	scratch := make([]NodeID, 0, 16)
	for i := 0; i < g.NumNodes(); i++ {
		n := g.Node(NodeID(i))
		switch {
		case n.Op == OpInput:
			remap[i] = out.AddInput()
		case n.Op == OpConst:
			remap[i] = out.AddConst(n.Val)
		case len(n.Args) == 1:
			remap[i] = out.AddOp(n.Op, remap[n.Args[0]], neutral(n.Op))
		default:
			scratch = scratch[:0]
			for _, a := range n.Args {
				scratch = append(scratch, remap[a])
			}
			remap[i] = reduce(n.Op, scratch)
		}
	}
	return out, remap
}
