package dag

// Stats summarizes the structural properties the paper reports in Table I
// plus a few extras used by the experiment harness.
type Stats struct {
	Nodes       int     // total node count (n)
	Interior    int     // arithmetic nodes (what the paper counts as operations)
	Edges       int     // argument references
	LongestPath int     // nodes on the longest leaf-to-sink path (l)
	AvgParallel float64 // n/l, the paper's average-parallelism proxy
	MaxFanout   int     // maximum outdegree Δ(G)
	Inputs      int
	Consts      int
	Outputs     int
}

// ComputeStats walks the graph once and returns its Stats.
func ComputeStats(g *Graph) Stats {
	s := Stats{Nodes: g.NumNodes(), Edges: g.NumEdges()}
	depth := make([]int32, g.NumNodes())
	var maxDepth int32
	for i := 0; i < g.NumNodes(); i++ {
		n := g.Node(NodeID(i))
		switch n.Op {
		case OpInput:
			s.Inputs++
		case OpConst:
			s.Consts++
		default:
			s.Interior++
		}
		d := int32(1)
		for _, a := range n.Args {
			if depth[a]+1 > d {
				d = depth[a] + 1
			}
		}
		depth[i] = d
		if d > maxDepth {
			maxDepth = d
		}
		if f := g.Fanout(NodeID(i)); f > s.MaxFanout {
			s.MaxFanout = f
		}
	}
	s.Outputs = len(g.Outputs())
	s.LongestPath = int(maxDepth)
	if s.LongestPath > 0 {
		s.AvgParallel = float64(s.Nodes) / float64(s.LongestPath)
	}
	return s
}

// Depths returns, for every node, the number of nodes on the longest path
// from any leaf to that node (leaves have depth 1). This is the "level" of
// the node used by level-synchronous baselines.
func Depths(g *Graph) []int32 {
	depth := make([]int32, g.NumNodes())
	for i := 0; i < g.NumNodes(); i++ {
		d := int32(1)
		for _, a := range g.Node(NodeID(i)).Args {
			if depth[a]+1 > d {
				d = depth[a] + 1
			}
		}
		depth[i] = d
	}
	return depth
}

// Levels partitions node ids by their Depths value, returning one slice
// per level starting at depth 1. All nodes within a level are mutually
// independent and may execute in parallel.
func Levels(g *Graph) [][]NodeID {
	depth := Depths(g)
	var maxD int32
	for _, d := range depth {
		if d > maxD {
			maxD = d
		}
	}
	levels := make([][]NodeID, maxD)
	for i, d := range depth {
		levels[d-1] = append(levels[d-1], NodeID(i))
	}
	return levels
}

// TopoOrder returns a topological order of the graph. Because graphs are
// constructed append-only with backward references, ascending id order is
// already topological; this function exists so that callers that receive
// externally permuted graphs in the future keep working, and to make the
// invariant checkable in tests.
func TopoOrder(g *Graph) []NodeID {
	order := make([]NodeID, g.NumNodes())
	for i := range order {
		order[i] = NodeID(i)
	}
	return order
}

// DFSOrder returns the order in which nodes are first visited by an
// iterative depth-first traversal that starts from every sink and walks
// arguments. The compiler uses occurrence distance in this order as the
// locality penalty when combining subgraphs into blocks (§IV-A, obj. D).
func DFSOrder(g *Graph) []int32 {
	order := make([]int32, g.NumNodes())
	for i := range order {
		order[i] = -1
	}
	var stack []NodeID
	next := int32(0)
	for _, out := range g.Outputs() {
		stack = append(stack[:0], out)
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if order[n] >= 0 {
				continue
			}
			order[n] = next
			next++
			args := g.Args(n)
			// Push in reverse so the first argument is visited first.
			for i := len(args) - 1; i >= 0; i-- {
				if order[args[i]] < 0 {
					stack = append(stack, args[i])
				}
			}
		}
	}
	// Unreachable nodes (possible only in degenerate graphs) get trailing
	// positions so the order is total.
	for i := range order {
		if order[i] < 0 {
			order[i] = next
			next++
		}
	}
	return order
}
