package dag

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The paper's compiler accepts DAGs "in any of the popular graph formats"
// (§IV). This file provides the repository's interchange format — a
// line-oriented node list that is trivial to produce from NetworkX or any
// adjacency dump — plus Graphviz DOT export for visualization.
//
// Format, one node per line, ids implicit and consecutive from 0:
//
//	# comment
//	input
//	const 2.5
//	add 0 1
//	mul 2 0 1        (k-ary nodes allowed; Binarize before compiling)

// Write serializes g in the text node-list format.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# dag %q nodes=%d\n", g.Name, g.NumNodes())
	for i := 0; i < g.NumNodes(); i++ {
		n := g.Node(NodeID(i))
		switch n.Op {
		case OpInput:
			fmt.Fprintln(bw, "input")
		case OpConst:
			fmt.Fprintf(bw, "const %s\n", strconv.FormatFloat(n.Val, 'g', -1, 64))
		case OpAdd, OpMul:
			bw.WriteString(n.Op.String())
			for _, a := range n.Args {
				fmt.Fprintf(bw, " %d", a)
			}
			bw.WriteByte('\n')
		default:
			return fmt.Errorf("dag: cannot serialize op %v", n.Op)
		}
	}
	return bw.Flush()
}

// Read parses the text node-list format produced by Write.
func Read(r io.Reader, name string) (*Graph, error) {
	g := New(name)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "input":
			g.AddInput()
		case "const":
			if len(fields) != 2 {
				return nil, fmt.Errorf("dag: line %d: const needs one value", line)
			}
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return nil, fmt.Errorf("dag: line %d: %v", line, err)
			}
			g.AddConst(v)
		case "add", "mul":
			op := OpAdd
			if fields[0] == "mul" {
				op = OpMul
			}
			if len(fields) < 2 {
				return nil, fmt.Errorf("dag: line %d: %s needs arguments", line, fields[0])
			}
			args := make([]NodeID, 0, len(fields)-1)
			for _, f := range fields[1:] {
				a, err := strconv.Atoi(f)
				if err != nil {
					return nil, fmt.Errorf("dag: line %d: %v", line, err)
				}
				if a < 0 || a >= g.NumNodes() {
					return nil, fmt.Errorf("dag: line %d: argument %d out of range", line, a)
				}
				args = append(args, NodeID(a))
			}
			g.AddOp(op, args...)
		default:
			return nil, fmt.Errorf("dag: line %d: unknown op %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("dag: empty graph")
	}
	return g, nil
}

// WriteDOT emits a Graphviz rendering of g (arguments point at
// consumers, matching the paper's dataflow arrows).
func WriteDOT(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n  rankdir=BT;\n", g.Name)
	for i := 0; i < g.NumNodes(); i++ {
		n := g.Node(NodeID(i))
		label := n.Op.String()
		shape := "ellipse"
		switch n.Op {
		case OpInput:
			shape = "box"
			label = fmt.Sprintf("x%d", i)
		case OpConst:
			shape = "box"
			label = strconv.FormatFloat(n.Val, 'g', 3, 64)
		case OpAdd:
			label = "+"
		case OpMul:
			label = "×"
		}
		fmt.Fprintf(bw, "  n%d [label=%q shape=%s];\n", i, label, shape)
		for _, a := range n.Args {
			fmt.Fprintf(bw, "  n%d -> n%d;\n", a, i)
		}
	}
	bw.WriteString("}\n")
	return bw.Flush()
}
