package dag

import "testing"

func fingerprintDemoGraph() *Graph {
	g := New("demo")
	a, b := g.AddInput(), g.AddInput()
	c := g.AddConst(2.5)
	s := g.AddOp(OpAdd, a, b)
	g.AddOp(OpMul, s, c)
	return g
}

func TestFingerprintDeterministicAndNameBlind(t *testing.T) {
	g1 := fingerprintDemoGraph()
	g2 := fingerprintDemoGraph()
	g2.Name = "something else"
	if g1.Fingerprint() != g2.Fingerprint() {
		t.Error("structurally equal graphs hash differently")
	}
	if g1.Fingerprint() != g1.Fingerprint() {
		t.Error("fingerprint not stable across calls")
	}
	if g1.Fingerprint().String() == "" || g1.Fingerprint().Short() == "" {
		t.Error("empty rendering")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := fingerprintDemoGraph().Fingerprint()

	// Different op.
	g := New("")
	a, b := g.AddInput(), g.AddInput()
	c := g.AddConst(2.5)
	s := g.AddOp(OpMul, a, b) // was OpAdd
	g.AddOp(OpMul, s, c)
	if g.Fingerprint() == base {
		t.Error("op change did not change the hash")
	}

	// Different constant (even by one ulp-scale bit pattern).
	g = New("")
	a, b = g.AddInput(), g.AddInput()
	c = g.AddConst(2.5000000000000004)
	s = g.AddOp(OpAdd, a, b)
	g.AddOp(OpMul, s, c)
	if g.Fingerprint() == base {
		t.Error("const change did not change the hash")
	}

	// Different wiring (argument order is structural).
	g = New("")
	a, b = g.AddInput(), g.AddInput()
	c = g.AddConst(2.5)
	s = g.AddOp(OpAdd, b, a)
	g.AddOp(OpMul, s, c)
	if g.Fingerprint() == base {
		t.Error("argument-order change did not change the hash")
	}

	// Extra node.
	g = fingerprintDemoGraph()
	g.AddInput()
	if g.Fingerprint() == base {
		t.Error("appended node did not change the hash")
	}
}

func TestFingerprintInvalidatedByMutation(t *testing.T) {
	g := fingerprintDemoGraph()
	before := g.Fingerprint()
	g.AddOp(OpAdd, 0, 1)
	if g.Fingerprint() == before {
		t.Error("mutation after hashing returned the stale memo")
	}
}

// fuzzGraph deterministically builds a graph from a byte string; the
// same bytes always produce the same structure.
func fuzzGraph(data []byte) *Graph {
	g := New("fuzz")
	g.AddInput()
	for i, b := range data {
		n := g.NumNodes()
		switch b % 4 {
		case 0:
			g.AddInput()
		case 1:
			g.AddConst(float64(b) * 0.75)
		default:
			x := NodeID(int(b>>2) % n)
			y := NodeID((i + int(b>>4)) % n)
			op := OpAdd
			if b%4 == 3 {
				op = OpMul
			}
			g.AddOp(op, x, y)
		}
	}
	return g
}

func FuzzFingerprint(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte("serving engines hash graphs"))
	f.Add([]byte{255, 254, 7, 7, 7, 13, 200, 3, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := fuzzGraph(data)
		h := g.Fingerprint()

		// Equal construction → equal hash, independent of Name.
		g2 := fuzzGraph(data)
		g2.Name = "renamed"
		if g2.Fingerprint() != h {
			t.Fatalf("equal graphs hash unequal: %s vs %s", g2.Fingerprint(), h)
		}

		// Any structural mutation must change the hash.
		m := fuzzGraph(data)
		m.AddInput()
		if m.Fingerprint() == h {
			t.Error("appending a node kept the hash")
		}

		m = fuzzGraph(data)
		for i := 0; i < m.NumNodes(); i++ {
			n := m.Node(NodeID(i))
			switch n.Op {
			case OpAdd:
				n.Op = OpMul
			case OpMul:
				n.Op = OpAdd
			case OpConst:
				n.Val++
			case OpInput:
				continue
			}
			if m.Fingerprint() == h {
				t.Errorf("mutating node %d (%v) kept the hash", i, n.Op)
			}
			break
		}
	})
}
