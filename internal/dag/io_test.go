package dag

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	g := RandomGraph(RandomConfig{Inputs: 9, Interior: 120, MaxArgs: 4, MulFrac: 0.4, Seed: 5})
	g.Node(3).Val = 0 // ensure at least one interesting const path below
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf, g.Name)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != g.NumNodes() {
		t.Fatalf("round trip changed node count: %d vs %d", back.NumNodes(), g.NumNodes())
	}
	for i := 0; i < g.NumNodes(); i++ {
		a, b := g.Node(NodeID(i)), back.Node(NodeID(i))
		if a.Op != b.Op || a.Val != b.Val || len(a.Args) != len(b.Args) {
			t.Fatalf("node %d differs after round trip", i)
		}
		for j := range a.Args {
			if a.Args[j] != b.Args[j] {
				t.Fatalf("node %d arg %d differs", i, j)
			}
		}
	}
}

func TestReadWithCommentsAndBlanks(t *testing.T) {
	src := `# a tiny dag
input

const 2.5
add 0 1
mul 2 2 0
`
	g, err := Read(strings.NewReader(src), "tiny")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 4 {
		t.Fatalf("got %d nodes", g.NumNodes())
	}
	vals, err := Eval(g, []float64{1.5})
	if err != nil {
		t.Fatal(err)
	}
	if vals[3] != 4*4*1.5 {
		t.Fatalf("eval = %v, want 24", vals[3])
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	bad := []string{
		"",                     // empty
		"frobnicate 1 2",       // unknown op
		"const",                // missing value
		"const two",            // bad float
		"add",                  // no args
		"input\nadd 0 7",       // forward/out-of-range reference
		"input\nadd zero zero", // non-numeric args
	}
	for _, src := range bad {
		if _, err := Read(strings.NewReader(src), "bad"); err == nil {
			t.Errorf("Read(%q) should fail", src)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	g := New("dot")
	a := g.AddInput()
	c := g.AddConst(2)
	g.AddOp(OpMul, a, c)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "n0 -> n2", "n1 -> n2", "shape=box"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}
