// Package dag provides the directed-acyclic-graph intermediate
// representation shared by every subsystem of the DPU-v2 reproduction:
// workload generators lower into it, the compiler consumes it, and the
// simulator's results are verified against its reference evaluator.
//
// A Graph is an append-only arena of nodes. Nodes may only reference
// already-existing nodes as arguments, so every Graph is acyclic by
// construction and node IDs form a valid topological order.
package dag

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Op is the operation performed by a node. The DPU-v2 datapath supports
// addition, multiplication and operand bypass; workloads with other
// arithmetic (e.g. SpTRSV's subtract/divide) are normalized to {+,×} by
// pre-negating and pre-inverting constants at lowering time (§II of the
// paper restricts DAGs to arithmetic nodes).
type Op uint8

const (
	// OpInput is an external input of the DAG (a leaf). Its value is
	// provided at execution time.
	OpInput Op = iota
	// OpConst is a compile-time constant leaf (e.g. a pre-inverted
	// diagonal element of a triangular matrix).
	OpConst
	// OpAdd sums its two arguments.
	OpAdd
	// OpMul multiplies its two arguments.
	OpMul
)

// String returns the conventional lowercase mnemonic for the op.
func (op Op) String() string {
	switch op {
	case OpInput:
		return "input"
	case OpConst:
		return "const"
	case OpAdd:
		return "add"
	case OpMul:
		return "mul"
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// IsLeaf reports whether the op takes no arguments.
func (op Op) IsLeaf() bool { return op == OpInput || op == OpConst }

// NodeID identifies a node within one Graph. IDs are dense, start at 0,
// and are assigned in insertion (hence topological) order.
type NodeID int32

// InvalidNode is the zero-information NodeID.
const InvalidNode NodeID = -1

// Node is a single operation in the DAG. Leaf nodes (Input, Const) have no
// arguments; interior nodes have between one and two. The representation
// intentionally allows >2 arguments before binarization (see Binarize).
type Node struct {
	Op   Op
	Args []NodeID
	// Val holds the constant value for OpConst nodes and is ignored
	// otherwise.
	Val float64
}

// Graph is an arena of nodes plus optional bookkeeping. The zero value is
// an empty usable graph.
//
// A fully built graph is safe for concurrent readers (Succs, Fanout,
// Outputs, …): the derived adjacency is memoized behind an atomic pointer,
// so parallel compilations may share one workload graph. Mutation (Add*)
// is not safe concurrently with anything else.
type Graph struct {
	// Name labels the workload for reports (e.g. "mnist", "jagmesh4").
	Name  string
	nodes []Node

	// memoized derived state, invalidated on mutation
	derived atomic.Pointer[derived]
	// memoized content hash (see Fingerprint), invalidated on mutation
	fp atomic.Pointer[Fingerprint]
}

// derived is the adjacency bookkeeping computed once per graph revision.
type derived struct {
	succs   [][]NodeID
	outputs []NodeID
}

// New returns an empty graph with the given display name.
func New(name string) *Graph { return &Graph{Name: name} }

// NumNodes returns the number of nodes in the graph.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// Grow reserves arena capacity for n additional nodes, so bulk loaders
// (deserializers, generators) avoid repeated reallocation of a
// multi-million-node arena.
func (g *Graph) Grow(n int) {
	if n <= 0 {
		return
	}
	if free := cap(g.nodes) - len(g.nodes); free < n {
		nodes := make([]Node, len(g.nodes), len(g.nodes)+n)
		copy(nodes, g.nodes)
		g.nodes = nodes
	}
}

// Node returns the node with the given id. The returned pointer stays
// valid until the next Add* call.
func (g *Graph) Node(id NodeID) *Node { return &g.nodes[id] }

// Op returns the op of node id.
func (g *Graph) Op(id NodeID) Op { return g.nodes[id].Op }

// Args returns the argument list of node id. Callers must not mutate it.
func (g *Graph) Args(id NodeID) []NodeID { return g.nodes[id].Args }

// AddInput appends an external-input leaf and returns its id.
func (g *Graph) AddInput() NodeID {
	return g.append(Node{Op: OpInput})
}

// AddConst appends a constant leaf with value v and returns its id.
func (g *Graph) AddConst(v float64) NodeID {
	return g.append(Node{Op: OpConst, Val: v})
}

// AddOp appends an interior node computing op over args and returns its
// id. It panics if op is a leaf op, args is empty, or any argument does
// not yet exist (which preserves acyclicity by construction).
func (g *Graph) AddOp(op Op, args ...NodeID) NodeID {
	if op.IsLeaf() {
		panic("dag: AddOp with leaf op " + op.String())
	}
	if len(args) == 0 {
		panic("dag: AddOp with no arguments")
	}
	n := NodeID(len(g.nodes))
	for _, a := range args {
		if a < 0 || a >= n {
			panic(fmt.Sprintf("dag: argument %d out of range [0,%d)", a, n))
		}
	}
	return g.append(Node{Op: op, Args: append([]NodeID(nil), args...)})
}

func (g *Graph) append(n Node) NodeID {
	g.invalidate()
	g.nodes = append(g.nodes, n)
	return NodeID(len(g.nodes) - 1)
}

func (g *Graph) invalidate() {
	g.derived.Store(nil)
	g.fp.Store(nil)
}

// Succs returns the successor (consumer) list of node id. The underlying
// adjacency is computed once and cached; callers must not mutate the
// returned slice.
func (g *Graph) Succs(id NodeID) []NodeID {
	return g.ensureDerived().succs[id]
}

// Fanout returns the number of consumers of node id.
func (g *Graph) Fanout(id NodeID) int {
	return len(g.ensureDerived().succs[id])
}

func (g *Graph) ensureDerived() *derived {
	if d := g.derived.Load(); d != nil {
		return d
	}
	counts := make([]int32, len(g.nodes))
	for i := range g.nodes {
		for _, a := range g.nodes[i].Args {
			counts[a]++
		}
	}
	// One backing array for all adjacency lists keeps the memory layout
	// compact for multi-million-node graphs.
	total := 0
	for _, c := range counts {
		total += int(c)
	}
	backing := make([]NodeID, total)
	d := &derived{succs: make([][]NodeID, len(g.nodes))}
	off := 0
	for i, c := range counts {
		d.succs[i] = backing[off : off : off+int(c)]
		off += int(c)
	}
	for i := range g.nodes {
		for _, a := range g.nodes[i].Args {
			d.succs[a] = append(d.succs[a], NodeID(i))
		}
	}
	for i := range g.nodes {
		if len(d.succs[i]) == 0 {
			d.outputs = append(d.outputs, NodeID(i))
		}
	}
	// Concurrent first readers may compute d twice; the results are
	// identical, and the CAS keeps every reader on one winner.
	g.derived.CompareAndSwap(nil, d)
	return g.derived.Load()
}

// Outputs returns the sink nodes (fanout zero) of the graph, in id order.
// These are the externally observable results of executing the DAG.
func (g *Graph) Outputs() []NodeID {
	return g.ensureDerived().outputs
}

// Inputs returns the ids of all OpInput leaves in id order.
func (g *Graph) Inputs() []NodeID {
	var in []NodeID
	for i := range g.nodes {
		if g.nodes[i].Op == OpInput {
			in = append(in, NodeID(i))
		}
	}
	return in
}

// NumEdges returns the total number of argument references.
func (g *Graph) NumEdges() int {
	e := 0
	for i := range g.nodes {
		e += len(g.nodes[i].Args)
	}
	return e
}

// Validate checks structural invariants: argument ids in range and
// strictly less than the node's own id (topological construction order),
// correct arity per op class, and at least one node. It returns the first
// violation found.
func (g *Graph) Validate() error {
	if len(g.nodes) == 0 {
		return errors.New("dag: empty graph")
	}
	for i := range g.nodes {
		n := &g.nodes[i]
		switch {
		case n.Op.IsLeaf():
			if len(n.Args) != 0 {
				return fmt.Errorf("dag: leaf node %d has %d args", i, len(n.Args))
			}
		default:
			if len(n.Args) == 0 {
				return fmt.Errorf("dag: interior node %d has no args", i)
			}
		}
		for _, a := range n.Args {
			if a < 0 || int(a) >= i {
				return fmt.Errorf("dag: node %d references %d (not topologically earlier)", i, a)
			}
		}
	}
	return nil
}

// IsBinary reports whether every interior node has at most two arguments,
// i.e. the graph is directly mappable to the 2-input PEs.
func (g *Graph) IsBinary() bool {
	for i := range g.nodes {
		if len(g.nodes[i].Args) > 2 {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the graph (derived caches excluded).
func (g *Graph) Clone() *Graph {
	c := &Graph{Name: g.Name, nodes: make([]Node, len(g.nodes))}
	copy(c.nodes, g.nodes)
	for i := range c.nodes {
		if a := c.nodes[i].Args; a != nil {
			c.nodes[i].Args = append([]NodeID(nil), a...)
		}
	}
	return c
}
