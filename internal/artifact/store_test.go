package artifact

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"dpuv2/internal/arch"
	"dpuv2/internal/compiler"
)

func TestStorePutGetRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a := testArtifact(t, 1)
	k := a.Key()

	if _, err := st.Get(k); !errors.Is(err, ErrNotFound) {
		t.Fatalf("empty store Get: %v, want ErrNotFound", err)
	}
	if err := st.Put(a); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint != a.Fingerprint || got.Options != a.Options {
		t.Error("store round trip changed the artifact identity")
	}
	execute(t, got)
	if n, err := st.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v; want 1", n, err)
	}
}

// TestStoreKeyAddressing: distinct (graph, config, options) triples get
// distinct addresses; the same triple always maps to the same one.
func TestStoreKeyAddressing(t *testing.T) {
	a := testArtifact(t, 1)
	k := a.Key()
	if k2 := KeyFor(a.Fingerprint, a.Compiled.Prog.Cfg, a.Options); k2.ID() != k.ID() {
		t.Error("identical key hashed to a different address")
	}
	// Config normalization folds into the address: a zero DataMemWords
	// addresses the same artifact as the explicit default.
	implicit := KeyFor(a.Fingerprint, arch.Config{D: 2, B: 8, R: 16, Output: arch.OutPerLayer}, a.Options)
	if implicit.ID() != k.ID() {
		t.Error("normalized and unnormalized configs address different artifacts")
	}
	variants := []Key{
		KeyFor(testArtifact(t, 2).Fingerprint, a.Compiled.Prog.Cfg, a.Options),
		KeyFor(a.Fingerprint, arch.Config{D: 2, B: 8, R: 32, Output: arch.OutPerLayer}, a.Options),
		KeyFor(a.Fingerprint, a.Compiled.Prog.Cfg, compiler.Options{Seed: 99}),
	}
	seen := map[string]bool{k.ID(): true}
	for i, v := range variants {
		if seen[v.ID()] {
			t.Errorf("variant %d collides with a different key", i)
		}
		seen[v.ID()] = true
	}
}

// TestStorePutFirstWins: re-putting an existing key is a no-op, so a
// key's artifact is written exactly once even when many compilations
// race.
func TestStorePutFirstWins(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a := testArtifact(t, 1)
	if err := st.Put(a); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(st.Dir(), a.Key().ID()+Ext)
	first, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	// A second artifact for the same key with different volatile content
	// (CompileSeconds differs run to run) must not replace the first.
	b := testArtifact(t, 1)
	b.Compiled.Stats.CompileSeconds = a.Compiled.Stats.CompileSeconds + 1
	if err := st.Put(b); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Error("second Put replaced the first artifact")
	}
}

// TestStoreGetRejectsMisfiledArtifact: a valid artifact parked under
// the wrong address (renamed file) must not be served for that key.
func TestStoreGetRejectsMisfiledArtifact(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a, b := testArtifact(t, 1), testArtifact(t, 2)
	if err := st.Put(a); err != nil {
		t.Fatal(err)
	}
	// File b's content under a's address.
	eb, err := EncodeBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(st.Dir(), a.Key().ID()+Ext), eb, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get(a.Key()); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("misfiled artifact served: err = %v, want ErrCorrupt", err)
	}
}

// TestStoreSelfHealsAfterCorruption: a damaged file must not shadow its
// key forever — Get removes it, so the caller's recompile can persist a
// fresh artifact (Put is first-wins and would otherwise skip).
func TestStoreSelfHealsAfterCorruption(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a := testArtifact(t, 1)
	if err := st.Put(a); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(st.Dir(), a.Key().ID()+Ext)
	good, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), good...)
	bad[len(bad)/2] ^= 0x01
	if err := os.WriteFile(p, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get(a.Key()); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupted Get: %v, want ErrChecksum", err)
	}
	if _, err := os.Stat(p); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("Get did not remove the damaged file")
	}
	// The recompile's persist now lands instead of being skipped.
	if err := st.Put(a); err != nil {
		t.Fatal(err)
	}
	if got, err := st.Get(a.Key()); err != nil || got.Fingerprint != a.Fingerprint {
		t.Fatalf("store did not heal: %v", err)
	}
}

// TestStoreGetPreservesFutureVersions: an ErrVersion file is another
// binary's valid artifact (mixed-version fleet), not damage — Get must
// not delete it the way it deletes corruption.
func TestStoreGetPreservesFutureVersions(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a := testArtifact(t, 1)
	if err := st.Put(a); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(st.Dir(), a.Key().ID()+Ext)
	b, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	b[8], b[9] = 2, 0 // format v2, as a newer binary would write
	if err := os.WriteFile(p, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get(a.Key()); !errors.Is(err, ErrVersion) {
		t.Fatalf("Get: %v, want ErrVersion", err)
	}
	if _, err := os.Stat(p); err != nil {
		t.Error("Get removed a future-version artifact; a rolling deploy would erase the newer fleet's work")
	}
}

// TestStoreWalkSkipsForeignFiles: temp files, directories and
// non-artifact files in the store directory do not reach the callback;
// corrupt .dpuprog files surface their error rather than an artifact.
func TestStoreWalkSkipsForeignFiles(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(testArtifact(t, 1)); err != nil {
		t.Fatal(err)
	}
	os.WriteFile(filepath.Join(dir, tmpPrefix+"abandoned"), []byte("partial"), 0o644)
	os.WriteFile(filepath.Join(dir, "README.txt"), []byte("not an artifact"), 0o644)
	os.WriteFile(filepath.Join(dir, "broken.dpuprog"), []byte("garbage"), 0o644)
	os.Mkdir(filepath.Join(dir, "subdir.dpuprog"), 0o755)

	var goodPaths, badPaths []string
	if err := st.Walk(func(p string, a *Artifact, err error) bool {
		if err != nil {
			badPaths = append(badPaths, filepath.Base(p))
		} else {
			goodPaths = append(goodPaths, filepath.Base(p))
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(goodPaths) != 1 {
		t.Errorf("walked %v, want exactly the one stored artifact", goodPaths)
	}
	if len(badPaths) != 1 || badPaths[0] != "broken.dpuprog" {
		t.Errorf("bad files %v, want [broken.dpuprog]", badPaths)
	}
	for _, p := range append(goodPaths, badPaths...) {
		if strings.HasPrefix(p, tmpPrefix) {
			t.Errorf("walk visited temp file %s", p)
		}
	}
}

// TestStoreOpenSweepsTempFiles: leftovers from a crashed writer are
// removed by Open, artifacts are kept.
func TestStoreOpenSweepsTempFiles(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(testArtifact(t, 1)); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, tmpPrefix+"123456")
	os.WriteFile(stale, []byte("half-written"), 0o644)
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Error("reopening the store did not sweep the stale temp file")
	}
	if n, _ := st.Len(); n != 1 {
		t.Errorf("sweep removed a real artifact: Len = %d", n)
	}
}

// TestStoreConcurrentPutGet runs Put and Get for the same keys from
// many goroutines under -race: every Get sees either ErrNotFound or a
// complete artifact, never a torn write.
func TestStoreConcurrentPutGet(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	arts := make([]*Artifact, 4)
	for i := range arts {
		arts[i] = testArtifact(t, int64(i+1))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				a := arts[(w+i)%len(arts)]
				if w%2 == 0 {
					if err := st.Put(a); err != nil {
						t.Errorf("put: %v", err)
						return
					}
				}
				got, err := st.Get(a.Key())
				if errors.Is(err, ErrNotFound) {
					continue
				}
				if err != nil {
					t.Errorf("get: %v", err)
					return
				}
				if got.Fingerprint != a.Fingerprint {
					t.Error("get returned the wrong artifact")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if n, err := st.Len(); err != nil || n != len(arts) {
		t.Errorf("store holds %d artifacts (%v), want %d", n, err, len(arts))
	}
}
