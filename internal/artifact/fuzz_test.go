package artifact

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// FuzzArtifactDecode hammers the decoder with corrupted, truncated and
// bit-flipped artifacts. The contract under fuzz:
//
//   - Decode never panics, whatever the input;
//   - every failure is one of the typed errors (ErrBadMagic,
//     ErrVersion, ErrTruncated, ErrChecksum, ErrCorrupt);
//   - any input that decodes re-encodes byte-identically — the
//     encoding is canonical, so Encode∘Decode is the identity on the
//     set of valid artifacts.
//
// The checksum rejects most random payload mutations before the
// semantic decoder runs, so the target also feeds the raw input to
// decodePayload directly, exercising every structural guard without
// the fuzzer having to forge CRC-32C.
func FuzzArtifactDecode(f *testing.F) {
	for seed := int64(1); seed <= 3; seed++ {
		b, err := EncodeBytes(testArtifact(f, seed))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		// A deliberately damaged variant seeds the corrupt-path corpus.
		bad := append([]byte(nil), b...)
		bad[len(bad)/2] ^= 0x40
		f.Add(bad)
		f.Add(b[:len(b)*2/3])
	}
	for _, name := range []string{"pc_small.dpuprog", "sptrsv_small.dpuprog"} {
		if b, err := os.ReadFile(filepath.Join("testdata", name)); err == nil {
			f.Add(b)
		}
	}
	f.Add([]byte{})
	f.Add(magic[:])

	typed := func(err error) bool {
		return errors.Is(err, ErrBadMagic) || errors.Is(err, ErrVersion) ||
			errors.Is(err, ErrTruncated) || errors.Is(err, ErrChecksum) ||
			errors.Is(err, ErrCorrupt)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := DecodeBytes(data)
		if err != nil {
			if !typed(err) {
				t.Fatalf("untyped decode error: %v", err)
			}
		} else {
			reencoded, err := EncodeBytes(a)
			if err != nil {
				t.Fatalf("decoded artifact does not re-encode: %v", err)
			}
			if !bytes.Equal(reencoded, data) {
				t.Fatalf("Encode(Decode(x)) differs from x (%d vs %d bytes)", len(reencoded), len(data))
			}
		}

		// Same contract for the payload decoder on the raw bytes: only
		// ErrCorrupt failures, and canonical on success.
		pa, perr := decodePayload(data)
		if perr != nil {
			if !errors.Is(perr, ErrCorrupt) {
				t.Fatalf("decodePayload: untyped error: %v", perr)
			}
			return
		}
		pp, err := encodePayload(pa)
		if err != nil {
			t.Fatalf("decoded payload does not re-encode: %v", err)
		}
		if !bytes.Equal(pp, data) {
			t.Fatalf("encodePayload(decodePayload(x)) differs from x")
		}
	})
}

// FuzzStoreGetAfterCorruption flips bytes of a stored artifact on disk
// and checks Get never hands damaged content to the engine: every
// outcome is either a clean typed error or the intact artifact.
func FuzzStoreGetAfterCorruption(f *testing.F) {
	dir := f.TempDir()
	st, err := Open(dir)
	if err != nil {
		f.Fatal(err)
	}
	a := testArtifact(f, 11)
	if err := st.Put(a); err != nil {
		f.Fatal(err)
	}
	k := a.Key()
	path := filepath.Join(dir, k.ID()+Ext)
	orig, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(uint16(0), uint8(1))
	f.Add(uint16(len(orig)-1), uint8(0x80))
	f.Add(uint16(headerSize+2), uint8(0xff))

	f.Fuzz(func(t *testing.T, off uint16, mask uint8) {
		b := append([]byte(nil), orig...)
		b[int(off)%len(b)] ^= mask
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := st.Get(k)
		if mask == 0 || bytes.Equal(b, orig) {
			if err != nil {
				t.Fatalf("pristine artifact failed to load: %v", err)
			}
			if got.Fingerprint != a.Fingerprint {
				t.Fatal("pristine artifact decoded to a different fingerprint")
			}
			return
		}
		if err == nil {
			// The flip landed somewhere that still decodes to the same
			// identity — only acceptable if the bytes genuinely decode
			// and re-encode canonically (DecodeBytes enforces this), and
			// the program still round-trips. Spot-check the checksum
			// actually held.
			sum := binary.LittleEndian.Uint32(b[10:])
			if crc32.Checksum(b[headerSize:], castagnoli) != sum {
				t.Fatal("store returned an artifact whose checksum does not hold")
			}
			return
		}
		if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrVersion) &&
			!errors.Is(err, ErrTruncated) && !errors.Is(err, ErrChecksum) &&
			!errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrNotFound) {
			t.Fatalf("untyped store error: %v", err)
		}
	})
}
