package artifact

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"dpuv2/internal/arch"
	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
)

func sampleDecision() *Decision {
	g := dag.New("w")
	a := g.AddInput()
	b := g.AddInput()
	g.AddOp(dag.OpAdd, a, b)
	return &Decision{
		Fingerprint: g.Fingerprint(),
		Config:      arch.Config{D: 2, B: 16, R: 16, Output: arch.OutPerLayer}.Normalize(),
		Options:     compiler.Options{Seed: 7}.Normalized(),
		Score:       1.25,
		Provenance: Provenance{
			Metric:       "latency",
			Default:      arch.MinEDP(),
			DefaultScore: 2.5,
			Points:       48,
			GridSize:     48,
			BudgetNS:     int64(30e9),
			TunedAtUnix:  1_700_000_000,
			Tuner:        "dpu-tune/1",
			Search:       "grid",
		},
	}
}

// annealSampleDecision carries the full v2 search provenance.
func annealSampleDecision() *Decision {
	d := sampleDecision()
	d.Provenance.Tuner = "dpu-tune/2"
	d.Provenance.Search = "anneal"
	d.Provenance.Seed = -9
	d.Provenance.Chains = 4
	d.Provenance.Steps = 48
	d.Provenance.InitTemp = 0.08
	d.Provenance.Cool = 0.92
	d.Provenance.Accepted = 17
	d.Provenance.Rejected = 175
	d.Provenance.GridSize = 48 + 4*48 + 1
	return d
}

// encodeDecisionV1ForTest writes d in the retired v1 layout (no search
// provenance) so compatibility tests have authentic old-format images
// without keeping binary fixtures around.
func encodeDecisionV1ForTest(t testing.TB, d *Decision) []byte {
	t.Helper()
	var e enc
	e.raw(d.Fingerprint[:])
	e.config(d.Config.Normalize())
	e.options(d.Options.Normalized())
	e.f64(d.Score)
	e.str(d.Provenance.Metric)
	e.config(d.Provenance.Default.Normalize())
	e.f64(d.Provenance.DefaultScore)
	e.uvarint(uint64(d.Provenance.Points))
	e.uvarint(uint64(d.Provenance.GridSize))
	e.varint(d.Provenance.BudgetNS)
	e.varint(d.Provenance.TunedAtUnix)
	e.str(d.Provenance.Tuner)
	buf := make([]byte, headerSize, headerSize+len(e.buf))
	copy(buf, decisionMagic[:])
	binary.LittleEndian.PutUint16(buf[8:], 1)
	binary.LittleEndian.PutUint32(buf[10:], crc32.Checksum(e.buf, castagnoli))
	binary.LittleEndian.PutUint64(buf[14:], uint64(len(e.buf)))
	return append(buf, e.buf...)
}

// TestDecisionV1Decodes pins backward compatibility: `.dputune` records
// written before the anneal fields existed still decode, with the
// search provenance zero, and upgrade cleanly — re-encoding writes the
// current version and round-trips.
func TestDecisionV1Decodes(t *testing.T) {
	want := sampleDecision()
	want.Provenance.Search = "" // v1 predates the field
	b := encodeDecisionV1ForTest(t, want)
	got, err := DecodeDecisionBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *want {
		t.Fatalf("v1 decode mismatch:\n got %+v\nwant %+v", got, want)
	}
	if p := got.Provenance; p.Search != "" || p.Seed != 0 || p.Chains != 0 || p.Steps != 0 ||
		p.InitTemp != 0 || p.Cool != 0 || p.Accepted != 0 || p.Rejected != 0 {
		t.Fatalf("v1 decode invented search provenance: %+v", p)
	}

	// Upgrading: the re-encoded image is v2 and round-trips.
	up, err := EncodeDecisionBytes(got)
	if err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint16(up[8:]); v != DecisionVersion {
		t.Fatalf("re-encode wrote v%d, want v%d", v, DecisionVersion)
	}
	got2, err := DecodeDecisionBytes(up)
	if err != nil {
		t.Fatal(err)
	}
	if *got2 != *got {
		t.Fatalf("v1→v2 upgrade changed the decision:\n got %+v\nwant %+v", got2, got)
	}

	// A truncated v1 payload still fails typed, not silently.
	short := encodeDecisionV1ForTest(t, want)
	binary.LittleEndian.PutUint64(short[14:], uint64(len(short)-headerSize-2))
	if _, err := DecodeDecisionBytes(short[:len(short)-2]); err == nil {
		t.Fatal("truncated v1 payload decoded")
	}
}

// TestDecisionAnnealRoundTrip covers the new v2 fields end to end.
func TestDecisionAnnealRoundTrip(t *testing.T) {
	d := annealSampleDecision()
	b, err := EncodeDecisionBytes(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDecisionBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *d {
		t.Fatalf("anneal round trip changed the decision:\n got %+v\nwant %+v", got, d)
	}
	b2, err := EncodeDecisionBytes(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatal("re-encode not byte-identical")
	}
}

func TestDecisionRoundTrip(t *testing.T) {
	d := sampleDecision()
	b, err := EncodeDecisionBytes(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDecisionBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *d {
		t.Fatalf("round trip changed the decision:\n got %+v\nwant %+v", got, d)
	}
	// Canonical: re-encoding a decoded decision is byte-identical.
	b2, err := EncodeDecisionBytes(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatal("re-encode not byte-identical")
	}
}

func TestDecisionEncodeNormalizes(t *testing.T) {
	d := sampleDecision()
	d.Config = arch.Config{D: 2, B: 16, R: 16, Output: arch.OutPerLayer} // un-normalized: zero mem/clock
	d.Options = compiler.Options{Seed: 7}                                // un-normalized: zero window
	b, err := EncodeDecisionBytes(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDecisionBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Config != d.Config.Normalize() || got.Options != d.Options.Normalized() {
		t.Fatalf("decoded config/options not normalized: %+v", got)
	}
}

func TestDecisionEncodeRejectsGarbage(t *testing.T) {
	for name, mutate := range map[string]func(*Decision){
		"invalid config":      func(d *Decision) { d.Config = arch.Config{D: 9, B: 1, R: 1} },
		"nan score":           func(d *Decision) { d.Score = nan() },
		"negative score":      func(d *Decision) { d.Score = -1 },
		"nan default score":   func(d *Decision) { d.Provenance.DefaultScore = nan() },
		"invalid default":     func(d *Decision) { d.Provenance.Default = arch.Config{D: 9, B: 1, R: 1} },
		"points beyond grid":  func(d *Decision) { d.Provenance.Points = d.Provenance.GridSize + 1 },
		"negative budget":     func(d *Decision) { d.Provenance.BudgetNS = -1 },
		"oversized metric":    func(d *Decision) { d.Provenance.Metric = string(make([]byte, maxDecisionStr+1)) },
		"negative gridsize":   func(d *Decision) { d.Provenance.GridSize = -1; d.Provenance.Points = -1 },
		"huge compile window": func(d *Decision) { d.Options.Window = maxTuning + 1 },
		"unknown search kind": func(d *Decision) { d.Provenance.Search = "genetic" },
		"negative chains":     func(d *Decision) { d.Provenance.Chains = -1 },
		"huge steps":          func(d *Decision) { d.Provenance.Steps = 1 << 40 },
		"nan init temp":       func(d *Decision) { d.Provenance.InitTemp = nan() },
		"cool above one":      func(d *Decision) { d.Provenance.Cool = 1.5 },
		"negative accepted":   func(d *Decision) { d.Provenance.Accepted = -1 },
	} {
		d := sampleDecision()
		mutate(d)
		if _, err := EncodeDecisionBytes(d); err == nil {
			t.Errorf("%s: encode accepted", name)
		}
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}

func TestDecisionDecodeTypedErrors(t *testing.T) {
	valid, err := EncodeDecisionBytes(sampleDecision())
	if err != nil {
		t.Fatal(err)
	}

	bad := append([]byte(nil), valid...)
	bad[0] = 'X'
	if _, err := DecodeDecisionBytes(bad); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("magic: %v", err)
	}

	bad = append([]byte(nil), valid...)
	bad[8] = 0xFF
	if _, err := DecodeDecisionBytes(bad); !errors.Is(err, ErrVersion) {
		t.Fatalf("version: %v", err)
	}

	if _, err := DecodeDecisionBytes(valid[:len(valid)-3]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated: %v", err)
	}
	if _, err := DecodeDecisionBytes(valid[:5]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("tiny: %v", err)
	}

	bad = append([]byte(nil), valid...)
	bad[len(bad)-1] ^= 0x40
	if _, err := DecodeDecisionBytes(bad); !errors.Is(err, ErrChecksum) {
		t.Fatalf("checksum: %v", err)
	}

	// A .dpuprog artifact is not a decision.
	if _, err := DecodeDecisionBytes(append(magic[:], valid[8:]...)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("artifact magic: %v", err)
	}

	// Trailing data after the declared payload.
	bad = append(append([]byte(nil), valid...), 0)
	if _, err := DecodeDecisionBytes(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing: %v", err)
	}
}

func TestDecisionStoreRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d := sampleDecision()
	if _, err := st.GetDecision(d.Fingerprint); !errors.Is(err, ErrNotFound) {
		t.Fatalf("empty store: %v", err)
	}
	if err := st.PutDecision(d); err != nil {
		t.Fatal(err)
	}
	got, err := st.GetDecision(d.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *d {
		t.Fatalf("store round trip changed the decision: %+v", got)
	}

	// Last-wins: a re-tune replaces the stored decision.
	d2 := sampleDecision()
	d2.Config = arch.MinLatency()
	d2.Score = 0.5
	if err := st.PutDecision(d2); err != nil {
		t.Fatal(err)
	}
	got, err = st.GetDecision(d.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	if got.Config != arch.MinLatency() || got.Score != 0.5 {
		t.Fatalf("PutDecision did not replace: %+v", got)
	}

	// Decisions and programs share the directory without colliding:
	// Walk must not see the decision, WalkDecisions must not see programs.
	progs := 0
	st.Walk(func(path string, a *Artifact, err error) bool { progs++; return true })
	if progs != 0 {
		t.Fatalf("Walk saw %d entries in a decision-only store", progs)
	}
	decs := 0
	if err := st.WalkDecisions(func(path string, d *Decision, err error) bool {
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		decs++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if decs != 1 {
		t.Fatalf("WalkDecisions saw %d decisions, want 1", decs)
	}

	if err := st.RemoveDecision(d.Fingerprint); err != nil {
		t.Fatal(err)
	}
	if _, err := st.GetDecision(d.Fingerprint); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after remove: %v", err)
	}
	if err := st.RemoveDecision(d.Fingerprint); err != nil {
		t.Fatalf("double remove must be a no-op: %v", err)
	}
}

func TestDecisionStoreSelfHeals(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d := sampleDecision()
	if err := st.PutDecision(d); err != nil {
		t.Fatal(err)
	}
	p := st.decisionPath(d.Fingerprint)

	// Corrupt the payload on disk: Get reports the typed error and
	// removes the corpse so a re-tune can land.
	b, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0x01
	if err := os.WriteFile(p, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.GetDecision(d.Fingerprint); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupt decision: %v", err)
	}
	if _, err := os.Stat(p); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("corrupt decision not removed")
	}

	// A valid decision filed under the wrong fingerprint is foreign
	// content: rejected as corrupt and removed.
	if err := st.PutDecision(d); err != nil {
		t.Fatal(err)
	}
	var other dag.Fingerprint
	other[0] = 0xAB
	wrong := filepath.Join(st.Dir(), other.String()+DecisionExt)
	if err := os.Rename(p, wrong); err != nil {
		t.Fatal(err)
	}
	if _, err := st.GetDecision(other); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mismatched decision: %v", err)
	}
	if _, err := os.Stat(wrong); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("mismatched decision not removed")
	}
}

// FuzzDecisionDecode mirrors FuzzArtifactDecode for the .dputune format:
// arbitrary bytes never panic, always yield a typed error, and accepted
// inputs re-encode byte-identically.
func FuzzDecisionDecode(f *testing.F) {
	valid, err := EncodeDecisionBytes(sampleDecision())
	if err != nil {
		f.Fatal(err)
	}
	annealed, err := EncodeDecisionBytes(annealSampleDecision())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(annealed)
	f.Add(encodeDecisionV1ForTest(f, sampleDecision()))
	f.Add(valid[:headerSize])
	f.Add([]byte{})
	trunc := append([]byte(nil), valid[:len(valid)-4]...)
	f.Add(trunc)
	flip := append([]byte(nil), valid...)
	flip[headerSize+3] ^= 0x10
	f.Add(flip)
	f.Fuzz(func(t *testing.T, b []byte) {
		d, err := DecodeDecisionBytes(b)
		if err != nil {
			if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrVersion) &&
				!errors.Is(err, ErrTruncated) && !errors.Is(err, ErrChecksum) &&
				!errors.Is(err, ErrCorrupt) {
				t.Fatalf("untyped error: %v", err)
			}
			return
		}
		re, err := EncodeDecisionBytes(d)
		if err != nil {
			t.Fatalf("decoded decision does not re-encode: %v", err)
		}
		if binary.LittleEndian.Uint16(b[8:]) == DecisionVersion {
			// Current-version images are canonical: re-encode is
			// byte-identical.
			if !bytes.Equal(re, b) {
				t.Fatalf("re-encode not byte-identical:\n in  %x\n out %x", b, re)
			}
			return
		}
		// Accepted older versions upgrade: the re-encode is the current
		// version and preserves the decision exactly.
		d2, err := DecodeDecisionBytes(re)
		if err != nil {
			t.Fatalf("upgraded image does not decode: %v", err)
		}
		if *d2 != *d {
			t.Fatalf("upgrade changed the decision:\n got %+v\nwant %+v", d2, d)
		}
	})
}
