package artifact

import (
	"bytes"
	"encoding/binary"
	"errors"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"dpuv2/internal/arch"
	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
	"dpuv2/internal/pc"
	"dpuv2/internal/sim"
	"dpuv2/internal/sptrsv"
)

// update regenerates the golden fixtures under testdata/:
//
//	go test ./internal/artifact -run TestGolden -update
//
// Regenerating is a conscious format change — see the versioning policy
// in the package comment.
var update = flag.Bool("update", false, "rewrite golden .dpuprog fixtures")

var testCfg = arch.Config{D: 2, B: 8, R: 16, Output: arch.OutPerLayer}

// testArtifact compiles a small deterministic DAG (structure varies
// with seed) into an artifact.
func testArtifact(t testing.TB, seed int64) *Artifact {
	t.Helper()
	g := testGraph(seed)
	return compileArtifact(t, g, testCfg, compiler.Options{Seed: seed})
}

func testGraph(seed int64) *dag.Graph {
	g := dag.New("artifact-test")
	rng := rand.New(rand.NewSource(seed))
	ids := []dag.NodeID{g.AddInput(), g.AddInput(), g.AddConst(1.5 + rng.Float64())}
	for i := 0; i < 24; i++ {
		a, b := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
		op := dag.OpAdd
		if rng.Intn(2) == 0 {
			op = dag.OpMul
		}
		ids = append(ids, g.AddOp(op, a, b))
	}
	return g
}

func compileArtifact(t testing.TB, g *dag.Graph, cfg arch.Config, opts compiler.Options) *Artifact {
	t.Helper()
	c, err := compiler.Compile(g, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	return &Artifact{Fingerprint: g.Fingerprint(), Options: opts.Normalized(), Compiled: c}
}

// execute runs an artifact's program with deterministic inputs and
// checks every sink bit-exactly against the reference evaluator.
func execute(t *testing.T, a *Artifact) {
	t.Helper()
	inputs := make([]float64, len(a.Compiled.Graph.Inputs()))
	rng := rand.New(rand.NewSource(7))
	for i := range inputs {
		inputs[i] = 0.25 + 0.75*rng.Float64()
	}
	if _, err := sim.Verify(a.Compiled, inputs, 0); err != nil {
		t.Fatalf("decoded program does not match the reference evaluator: %v", err)
	}
}

// TestRoundTrip: Decode(Encode(a)) preserves every field and
// Encode(Decode(x)) is byte-identical for valid x.
func TestRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		a := testArtifact(t, seed)
		b1, err := EncodeBytes(a)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeBytes(b1)
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		if got.Fingerprint != a.Fingerprint {
			t.Errorf("seed %d: fingerprint changed", seed)
		}
		if got.Options != a.Options {
			t.Errorf("seed %d: options %+v != %+v", seed, got.Options, a.Options)
		}
		if got.Compiled.Prog.Cfg != a.Compiled.Prog.Cfg {
			t.Errorf("seed %d: config changed", seed)
		}
		if got.Compiled.Stats != a.Compiled.Stats {
			t.Errorf("seed %d: stats %+v != %+v", seed, got.Compiled.Stats, a.Compiled.Stats)
		}
		if !reflect.DeepEqual(got.Compiled.Remap, a.Compiled.Remap) {
			t.Errorf("seed %d: remap changed", seed)
		}
		if !reflect.DeepEqual(got.Compiled.InputWord, a.Compiled.InputWord) {
			t.Errorf("seed %d: input words changed", seed)
		}
		if !reflect.DeepEqual(got.Compiled.OutputWord, a.Compiled.OutputWord) {
			t.Errorf("seed %d: output words changed", seed)
		}
		if !reflect.DeepEqual(got.Compiled.Prog.InitMem, a.Compiled.Prog.InitMem) {
			t.Errorf("seed %d: memory image changed", seed)
		}
		if !bytes.Equal(got.Compiled.Prog.Pack(), a.Compiled.Prog.Pack()) {
			t.Errorf("seed %d: packed instruction stream changed", seed)
		}
		execute(t, got)

		b2, err := EncodeBytes(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Errorf("seed %d: Encode(Decode(x)) != x", seed)
		}
	}
}

// TestRoundTripKAry: an artifact compiled from a k-ary source graph
// carries the source fingerprint and the binarization remap.
func TestRoundTripKAry(t *testing.T) {
	g := dag.New("kary")
	in := []dag.NodeID{g.AddInput(), g.AddInput(), g.AddInput(), g.AddConst(2)}
	g.AddOp(dag.OpMul, in...)
	a := compileArtifact(t, g, testCfg, compiler.Options{})
	b, err := EncodeBytes(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint != g.Fingerprint() {
		t.Error("artifact lost the source-graph fingerprint")
	}
	if len(got.Compiled.Remap) != g.NumNodes() {
		t.Errorf("remap has %d entries, source graph %d nodes", len(got.Compiled.Remap), g.NumNodes())
	}
	if got.Compiled.Graph.NumNodes() <= g.NumNodes() {
		t.Errorf("binarized graph (%d nodes) not larger than 4-ary source (%d)", got.Compiled.Graph.NumNodes(), g.NumNodes())
	}
	execute(t, got)
}

// TestDecodeTypedErrors drives every malformed-input class through
// Decode and asserts the documented typed error comes back.
func TestDecodeTypedErrors(t *testing.T) {
	valid, err := EncodeBytes(testArtifact(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	mut := func(f func(b []byte) []byte) []byte {
		return f(append([]byte(nil), valid...))
	}
	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short header", valid[:10], ErrTruncated},
		{"bad magic", mut(func(b []byte) []byte { b[0] ^= 0xff; return b }), ErrBadMagic},
		{"text file", []byte("definitely not a dpuprog artifact........"), ErrBadMagic},
		{"future version", mut(func(b []byte) []byte { b[8] = 0xfe; b[9] = 0xca; return b }), ErrVersion},
		{"version zero", mut(func(b []byte) []byte { b[8], b[9] = 0, 0; return b }), ErrVersion},
		{"truncated payload", valid[:len(valid)-5], ErrTruncated},
		{"trailing data", append(append([]byte(nil), valid...), 0), ErrCorrupt},
		{"flipped payload bit", mut(func(b []byte) []byte { b[headerSize+3] ^= 0x10; return b }), ErrChecksum},
		{"flipped checksum", mut(func(b []byte) []byte { b[10] ^= 1; return b }), ErrChecksum},
		{"payload length lies", mut(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[14:], 1<<40)
			return b
		}), ErrTruncated},
	}
	for _, tc := range cases {
		if _, err := DecodeBytes(tc.in); !errors.Is(err, tc.want) {
			t.Errorf("%s: error %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestDecodeCorruptPayloads re-checksums structurally invalid payloads
// so they reach the semantic decoder, which must reject each one as
// ErrCorrupt (and never panic).
func TestDecodeCorruptPayloads(t *testing.T) {
	a := testArtifact(t, 2)
	base, err := encodePayload(a)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		f    func(p []byte) []byte
	}{
		{"empty payload", func(p []byte) []byte { return nil }},
		{"invalid config D", func(p []byte) []byte { p[0] = 0x3f; return p }},
		{"unknown topology", func(p []byte) []byte { p[3] = 99; return p }},
		{"payload cut mid-graph", func(p []byte) []byte { return p[:len(p)/2] }},
		{"garbage tail", func(p []byte) []byte { return append(p, 1, 2, 3) }},
	}
	for _, tc := range cases {
		p := tc.f(append([]byte(nil), base...))
		if _, err := decodePayload(p); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: error %v, want ErrCorrupt", tc.name, err)
		}
	}
}

// TestDecodeCountAmplificationBounded: a garbage payload declaring a
// huge node count must fail at its first invalid byte without first
// preallocating ~50 bytes of arena per claimed 1-byte node — the
// rejection of a crafted multi-megabyte file stays proportional to the
// file, not to the lie it tells.
func TestDecodeCountAmplificationBounded(t *testing.T) {
	a := testArtifact(t, 1)
	var e enc
	e.config(a.Compiled.Prog.Cfg)
	e.options(a.Options)
	e.raw(a.Fingerprint[:])
	e.str("amplified")
	const claimed = 4 << 20
	e.uvarint(claimed)                         // 4M nodes claimed...
	e.raw(bytes.Repeat([]byte{0xff}, claimed)) // ...backed by invalid op bytes
	payload := e.buf

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if _, err := decodePayload(payload); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("error %v, want ErrCorrupt", err)
	}
	runtime.ReadMemStats(&after)
	// Unbounded preallocation would be ~200 MB (4M nodes × ~50 B); the
	// capped decoder stays within a few MB plus noise.
	if alloc := after.TotalAlloc - before.TotalAlloc; alloc > 64<<20 {
		t.Errorf("rejecting the payload allocated %d MB", alloc>>20)
	}
}

// goldenSpecs pins the two fixture workloads: a small probabilistic
// circuit and a small sparse triangular solve, the paper's two workload
// families.
func goldenSpecs(t testing.TB) map[string]*Artifact {
	t.Helper()
	pcG := pc.Build(pc.Suite()[0], 0.01) // tretail at minimum size (64 nodes)
	spG, _ := sptrsv.Build(sptrsv.Suite()[0], 0.02)
	return map[string]*Artifact{
		"pc_small.dpuprog":     compileArtifact(t, pcG, testCfg, compiler.Options{Seed: 7}),
		"sptrsv_small.dpuprog": compileArtifact(t, spG, testCfg, compiler.Options{Seed: 7}),
	}
}

// TestGoldenFixtures decodes the checked-in .dpuprog files and executes
// them bit-exactly against the reference evaluator. If the payload
// layout changes, this test fails until Version is bumped and the
// fixtures are consciously regenerated with -update — the format cannot
// drift silently.
func TestGoldenFixtures(t *testing.T) {
	specs := goldenSpecs(t)
	if *update {
		for name, a := range specs {
			b, err := EncodeBytes(a)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join("testdata", name), b, 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("wrote testdata/%s (%d bytes)", name, len(b))
		}
	}
	for name := range specs {
		b, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatalf("%s: %v (regenerate with -update after a conscious format change)", name, err)
		}
		a, err := DecodeBytes(b)
		if err != nil {
			t.Fatalf("%s no longer decodes: %v — a layout change must bump artifact.Version", name, err)
		}
		execute(t, a)
		// The fixture must also re-encode byte-identically: byte-level
		// stability is what lets replicas share artifacts across builds.
		b2, err := EncodeBytes(a)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b, b2) {
			t.Errorf("%s: re-encoding the fixture changed its bytes", name)
		}
	}
}

// TestEncodeRejectsInvalid covers the encoder's own guards.
func TestEncodeRejectsInvalid(t *testing.T) {
	if _, err := EncodeBytes(&Artifact{}); err == nil {
		t.Error("encoded an artifact with no compiled program")
	}
	a := testArtifact(t, 3)
	broken := *a.Compiled
	broken.InputWord = broken.InputWord[:0]
	if len(a.Compiled.Graph.Inputs()) > 0 {
		if _, err := EncodeBytes(&Artifact{Compiled: &broken}); err == nil {
			t.Error("encoded an artifact with missing input words")
		}
	}
}

// TestEncodeDecodeBoundsAgree: Encode must refuse exactly what Decode
// would reject — otherwise the engine persists an artifact that can
// never be read back and its key recompiles forever.
func TestEncodeDecodeBoundsAgree(t *testing.T) {
	base := testArtifact(t, 3)
	for _, tc := range []struct {
		name string
		opts compiler.Options
	}{
		{"oversized window", compiler.Options{Window: 2 * maxTuning}},
		{"oversized lookahead", compiler.Options{SeedLookahead: maxTuning + 1}},
		{"negative partition", compiler.Options{PartitionSize: -1}},
	} {
		bad := &Artifact{Fingerprint: base.Fingerprint, Options: tc.opts, Compiled: base.Compiled}
		if _, err := EncodeBytes(bad); err == nil {
			t.Errorf("%s: encoded options Decode would reject: %+v", tc.name, tc.opts)
		}
	}
	// And the largest values Encode accepts must decode.
	edge := &Artifact{
		Fingerprint: base.Fingerprint,
		Options: compiler.Options{
			Window: maxTuning, SeedLookahead: maxTuning, FillLookahead: maxTuning,
			PartitionSize: 1<<31 - 1,
		},
		Compiled: base.Compiled,
	}
	b, err := EncodeBytes(edge)
	if err != nil {
		t.Fatalf("edge options did not encode: %v", err)
	}
	if _, err := DecodeBytes(b); err != nil {
		t.Fatalf("edge options did not decode: %v", err)
	}
	// Config bounds agree too: an over-limit register file must fail at
	// encode, not produce a file every reader rejects.
	huge := *base.Compiled
	prog := *huge.Prog
	prog.Cfg.B = maxFormatB * 2
	huge.Prog = &prog
	if _, err := EncodeBytes(&Artifact{Fingerprint: base.Fingerprint, Compiled: &huge}); err == nil {
		t.Error("encoded a config beyond the format's register-file limit")
	}
}

// TestDecodeRejectsAbsurdConfigBeforeAllocating: a tiny crafted payload
// claiming a terabyte-scale register file must fail with a typed error
// at the config check — instruction decode allocates per-instruction
// slices proportional to B, so reaching it would abort the process, not
// return an error.
func TestDecodeRejectsAbsurdConfigBeforeAllocating(t *testing.T) {
	for _, cfg := range []arch.Config{
		{D: 1, B: 1 << 40, R: 2, Output: arch.OutPerLayer, DataMemWords: 1 << 18, ClockMHz: 300},
		{D: 1, B: 2, R: 1 << 40, Output: arch.OutPerLayer, DataMemWords: 1 << 18, ClockMHz: 300},
		{D: 1, B: 2, R: 2, Output: arch.OutPerLayer, DataMemWords: 1 << 40, ClockMHz: 300},
	} {
		var e enc
		e.config(cfg)
		if _, err := decodePayload(e.buf); !errors.Is(err, ErrCorrupt) {
			t.Errorf("config %v: error %v, want ErrCorrupt", cfg, err)
		}
	}
}
