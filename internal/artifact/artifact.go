// Package artifact defines the versioned on-disk form of a compiled
// DPU-v2 program — the `.dpuprog` file — and a content-addressed store
// of them (store.go). Together they turn compilation into a true
// offline step: `dpu-compile` emits an artifact once, any number of
// `dpu-serve` processes warm-start from the store and never compile the
// graph again.
//
// An artifact is self-describing: it carries the hardware configuration
// and (normalized) compiler options it was built for, the source
// graph's content fingerprint — exactly the serving engine's cache key
// — and everything needed to execute: the binarized graph, the node
// remapping, the input/output data-memory map, the compile statistics
// and the densely packed instruction stream plus initial memory image.
//
// File layout (all multi-byte header fields little-endian):
//
//	offset  size  field
//	0       8     magic "\x7fDPUPROG"
//	8       2     format version (currently 1)
//	10      4     CRC-32C (Castagnoli) of the payload
//	14      8     payload length in bytes
//	22      …     payload
//
// The payload is a canonical varint encoding (see encodePayload): every
// integer is a minimal-length varint, map-like sections are emitted in
// a fixed order, and the packed instruction stream must repack
// byte-identically. Decode therefore accepts exactly the image Encode
// produces — Encode(Decode(x)) == x whenever Decode(x) succeeds — so a
// byte-level difference between two artifacts always reflects a real
// difference in content.
//
// Malformed input never panics; it yields a typed error: ErrBadMagic,
// ErrVersion, ErrTruncated, ErrChecksum, or ErrCorrupt for content that
// passes the checksum but violates a structural invariant. Any change
// to the payload layout must bump Version (and teach Decode the old
// layouts, or consciously abandon them); the golden fixtures under
// testdata/ pin the current layout.
package artifact

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"math/bits"

	"dpuv2/internal/arch"
	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
)

// Version is the current format version. Bump it on any payload layout
// change so stale artifacts fail with ErrVersion instead of decoding
// into garbage.
const Version = 1

// magic opens every artifact; the non-ASCII first byte keeps text tools
// from mangling the file.
var magic = [8]byte{0x7f, 'D', 'P', 'U', 'P', 'R', 'O', 'G'}

// headerSize is magic + version (u16) + checksum (u32) + payload length
// (u64).
const headerSize = 8 + 2 + 4 + 8

// Typed decode errors. Decode wraps them with positional detail; match
// with errors.Is.
var (
	// ErrBadMagic means the input does not start with an artifact header.
	ErrBadMagic = errors.New("artifact: bad magic")
	// ErrVersion means the format version is not supported by this build.
	ErrVersion = errors.New("artifact: unsupported format version")
	// ErrTruncated means the input ends before the declared payload does.
	ErrTruncated = errors.New("artifact: truncated")
	// ErrChecksum means the payload bytes do not match their checksum.
	ErrChecksum = errors.New("artifact: checksum mismatch")
	// ErrCorrupt means the payload passed the checksum but violates a
	// structural invariant (also reported for non-canonical encodings).
	ErrCorrupt = errors.New("artifact: corrupt payload")
)

// castagnoli is the CRC-32C table used for the payload checksum.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Artifact is one compiled program with its content address: the
// serving engine keys its cache on (Fingerprint, Compiled.Prog.Cfg,
// Options), and the artifact carries all three so a store can be
// rebuilt from the files alone.
type Artifact struct {
	// Fingerprint is the content hash of the *source* graph — the graph
	// the client submits — which may differ from Compiled.Graph's own
	// fingerprint when binarization rewrote it.
	Fingerprint dag.Fingerprint
	// Options are the compiler options the program was built with,
	// normalized (Encode normalizes them, so Decode always returns the
	// cache-key form).
	Options compiler.Options
	// Compiled is the runnable program: instructions, memory image,
	// binarized graph and data-memory maps.
	Compiled *compiler.Compiled
}

// EncodeBytes serializes a into the .dpuprog format.
func EncodeBytes(a *Artifact) ([]byte, error) {
	payload, err := encodePayload(a)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, headerSize, headerSize+len(payload))
	copy(buf, magic[:])
	binary.LittleEndian.PutUint16(buf[8:], Version)
	binary.LittleEndian.PutUint32(buf[10:], crc32.Checksum(payload, castagnoli))
	binary.LittleEndian.PutUint64(buf[14:], uint64(len(payload)))
	return append(buf, payload...), nil
}

// Encode writes a to w in the .dpuprog format.
func Encode(w io.Writer, a *Artifact) error {
	b, err := EncodeBytes(a)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// DecodeBytes parses a .dpuprog image. Every failure is typed (see the
// Err* values); success returns a fully validated artifact whose
// program is executable as-is.
func DecodeBytes(b []byte) (*Artifact, error) {
	if len(b) < headerSize {
		if len(b) >= len(magic) && !bytes.Equal(b[:len(magic)], magic[:]) {
			return nil, ErrBadMagic
		}
		return nil, fmt.Errorf("%w: %d-byte input shorter than the %d-byte header", ErrTruncated, len(b), headerSize)
	}
	if !bytes.Equal(b[:len(magic)], magic[:]) {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint16(b[8:]); v != Version {
		return nil, fmt.Errorf("%w: file is v%d, this build reads v%d", ErrVersion, v, Version)
	}
	sum := binary.LittleEndian.Uint32(b[10:])
	plen := binary.LittleEndian.Uint64(b[14:])
	rest := b[headerSize:]
	if uint64(len(rest)) < plen {
		return nil, fmt.Errorf("%w: payload declares %d bytes, %d present", ErrTruncated, plen, len(rest))
	}
	if uint64(len(rest)) > plen {
		return nil, fmt.Errorf("%w: %d bytes of trailing data", ErrCorrupt, uint64(len(rest))-plen)
	}
	if got := crc32.Checksum(rest, castagnoli); got != sum {
		return nil, fmt.Errorf("%w: stored %08x, computed %08x", ErrChecksum, sum, got)
	}
	return decodePayload(rest)
}

// Decode reads one artifact from r (consuming it to EOF).
func Decode(r io.Reader) (*Artifact, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return DecodeBytes(b)
}

// ---------------------------------------------------------------------
// Payload encoding. Canonical by construction: minimal varints, fixed
// section order, sinks in graph-output order, packed instructions in
// their canonical bit packing.

// enc accumulates the payload.
type enc struct{ buf []byte }

func (e *enc) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *enc) varint(v int64)   { e.buf = binary.AppendVarint(e.buf, v) }
func (e *enc) u8(v uint8)       { e.buf = append(e.buf, v) }
func (e *enc) f64(v float64)    { e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v)) }
func (e *enc) raw(b []byte)     { e.buf = append(e.buf, b...) }
func (e *enc) bytes(b []byte)   { e.uvarint(uint64(len(b))); e.raw(b) }
func (e *enc) str(s string)     { e.uvarint(uint64(len(s))); e.buf = append(e.buf, s...) }
func (e *enc) boolean(b bool) {
	if b {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

func (e *enc) config(cfg arch.Config) {
	e.uvarint(uint64(cfg.D))
	e.uvarint(uint64(cfg.B))
	e.uvarint(uint64(cfg.R))
	e.u8(uint8(cfg.Output))
	e.uvarint(uint64(cfg.DataMemWords))
	e.f64(cfg.ClockMHz)
}

func (e *enc) options(o compiler.Options) {
	e.varint(o.Seed)
	e.boolean(o.RandomBanks)
	e.varint(int64(o.Window))
	e.varint(int64(o.SeedLookahead))
	e.varint(int64(o.FillLookahead))
	e.varint(int64(o.PartitionSize))
}

// maxTuning bounds the compiler tuning knobs an artifact may carry —
// shared by encoder and decoder, so Encode can never produce a payload
// Decode rejects (a persisted-but-undecodable artifact would put its
// key in an endless recompile/re-persist cycle).
const maxTuning = 1 << 20

// Format limits on the register file, aligned with the serving layer's
// machine-size caps: instruction decode allocates per-instruction
// slices proportional to B *before* reading any bits, and execution
// allocates B·R registers, so a config beyond any supported design is
// corruption to reject up front, not a large allocation to attempt.
// (The paper's largest design is B=64, R=256.)
const (
	maxFormatB = 1 << 10
	maxFormatR = 1 << 12
)

// checkConfig enforces the format's config bounds, shared by encoder
// and decoder.
func checkConfig(cfg arch.Config) error {
	if cfg.B > maxFormatB || cfg.R > maxFormatR {
		return fmt.Errorf("register file %dx%d exceeds the format limit %dx%d", cfg.B, cfg.R, maxFormatB, maxFormatR)
	}
	const maxMemWords = 1 << 26
	if cfg.DataMemWords > maxMemWords {
		return fmt.Errorf("data memory %d words exceeds the format limit %d", cfg.DataMemWords, maxMemWords)
	}
	return nil
}

// checkOptions enforces the decoder's option bounds at encode time.
func checkOptions(o compiler.Options) error {
	for _, f := range []struct {
		name string
		v    int
		max  int
	}{
		{"window", o.Window, maxTuning},
		{"seed lookahead", o.SeedLookahead, maxTuning},
		{"fill lookahead", o.FillLookahead, maxTuning},
		{"partition size", o.PartitionSize, math.MaxInt32},
	} {
		if f.v < 0 || f.v > f.max {
			return fmt.Errorf("artifact: compiler option %s %d outside the encodable range [0,%d]", f.name, f.v, f.max)
		}
	}
	return nil
}

func encodePayload(a *Artifact) ([]byte, error) {
	c := a.Compiled
	if c == nil || c.Prog == nil || c.Graph == nil {
		return nil, errors.New("artifact: nil compiled program")
	}
	g := c.Graph
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	if !g.IsBinary() {
		return nil, errors.New("artifact: compiled graph is not binary")
	}
	opts := a.Options.Normalized()
	if err := checkOptions(opts); err != nil {
		return nil, err
	}
	cfg := c.Prog.Cfg
	if err := checkConfig(cfg); err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	var e enc
	e.config(cfg)
	e.options(opts)
	e.raw(a.Fingerprint[:])

	// Graph: name, then nodes in id (topological) order.
	e.str(g.Name)
	e.uvarint(uint64(g.NumNodes()))
	for i := 0; i < g.NumNodes(); i++ {
		n := g.Node(dag.NodeID(i))
		e.u8(uint8(n.Op))
		switch n.Op {
		case dag.OpInput:
		case dag.OpConst:
			e.f64(n.Val)
		case dag.OpAdd, dag.OpMul:
			e.uvarint(uint64(len(n.Args)))
			for _, arg := range n.Args {
				e.uvarint(uint64(arg))
			}
		default:
			return nil, fmt.Errorf("artifact: cannot serialize op %v", n.Op)
		}
	}

	e.uvarint(uint64(len(c.Remap)))
	for _, id := range c.Remap {
		e.uvarint(uint64(id))
	}

	inputs := g.Inputs()
	if len(c.InputWord) != len(inputs) {
		return nil, fmt.Errorf("artifact: %d input words for %d graph inputs", len(c.InputWord), len(inputs))
	}
	for _, w := range c.InputWord {
		e.varint(int64(w))
	}

	// Output words in graph-output order (ascending sink id), the only
	// order Decode accepts — maps never leak iteration order here.
	outs := g.Outputs()
	for _, sink := range outs {
		w, ok := c.OutputWord[sink]
		if !ok {
			return nil, fmt.Errorf("artifact: sink %d has no output word", sink)
		}
		e.varint(int64(w))
	}

	e.stats(c.Stats)

	// Program: instruction count + canonical dense packing + memory image.
	e.uvarint(uint64(len(c.Prog.Instrs)))
	e.bytes(c.Prog.Pack())
	e.uvarint(uint64(len(c.Prog.InitMem)))
	for _, v := range c.Prog.InitMem {
		e.f64(v)
	}
	return e.buf, nil
}

func (e *enc) stats(s compiler.Stats) {
	for _, v := range []int{
		s.Nodes, s.Blocks, s.Execs, s.Copies, s.CopiedWords, s.InputConflicts,
		s.OutputMoves, s.Loads, s.Stores, s.SpillStores, s.Reloads, s.Nops,
		s.Instructions, s.Cycles,
	} {
		e.varint(int64(v))
	}
	e.f64(s.PeakUtil)
	e.f64(s.MeanUtil)
	e.f64(s.CompileSeconds)
}

// ---------------------------------------------------------------------
// Payload decoding. The decoder is error-latching (the first failure
// sticks and later reads return zero values) and canonical: redundant
// varint encodings, out-of-order sections and non-minimal instruction
// packings are all rejected, never silently normalized.

type dec struct {
	buf []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: byte %d: %s", ErrCorrupt, d.off, fmt.Sprintf(format, args...))
	}
}

func (d *dec) remaining() int { return len(d.buf) - d.off }

// uvarintLen is the minimal encoded size of v, the only size the
// canonical decoder accepts (redundant continuation bytes would make
// two byte streams decode to one artifact).
func uvarintLen(v uint64) int { return (bits.Len64(v|1) + 6) / 7 }

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	if n != uvarintLen(v) {
		d.fail("non-minimal uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *dec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	// Varint is the zigzag transform fed through uvarint.
	zz := uint64(v) << 1
	if v < 0 {
		zz = ^zz
	}
	if n != uvarintLen(zz) {
		d.fail("non-minimal varint")
		return 0
	}
	d.off += n
	return v
}

// count reads a collection length and bounds it by what the remaining
// payload could possibly hold (perItem is a lower bound on one item's
// encoded size), so a corrupted length can never drive a huge
// allocation.
func (d *dec) count(what string, perItem int) int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if v > uint64(d.remaining()/perItem) {
		d.fail("%s count %d exceeds remaining payload", what, v)
		return 0
	}
	return int(v)
}

func (d *dec) u8() uint8 {
	if d.err != nil {
		return 0
	}
	if d.remaining() < 1 {
		d.fail("unexpected end of payload")
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *dec) f64() float64 {
	if d.err != nil {
		return 0
	}
	if d.remaining() < 8 {
		d.fail("unexpected end of payload")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v
}

func (d *dec) raw(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.remaining() < n {
		d.fail("unexpected end of payload")
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *dec) boolean() bool {
	switch d.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("bool out of range")
		return false
	}
}

func (d *dec) intNonNeg(what string, limit int) int {
	v := d.varint()
	if d.err != nil {
		return 0
	}
	if v < 0 || v > int64(limit) {
		d.fail("%s %d out of range [0,%d]", what, v, limit)
		return 0
	}
	return int(v)
}

func decodePayload(b []byte) (*Artifact, error) {
	d := &dec{buf: b}
	a := &Artifact{}

	// Hardware configuration.
	cfg := d.decodeConfig("config")
	if d.err != nil {
		return nil, d.err
	}

	// Compiler options.
	a.Options = d.decodeOptions()

	copy(a.Fingerprint[:], d.raw(len(a.Fingerprint)))

	// Graph.
	name := string(d.raw(d.count("graph name", 1)))
	numNodes := d.count("node", 1)
	if d.err != nil {
		return nil, d.err
	}
	if numNodes == 0 {
		return nil, fmt.Errorf("%w: empty graph", ErrCorrupt)
	}
	g := dag.New(name)
	// count() bounds numNodes by the bytes present, but a node costs ~50x
	// its 1-byte minimum encoding in arena memory — preallocating on the
	// claimed count alone would let a garbage file drive an allocation
	// ~50x its size before the first invalid byte is examined. Cap the
	// hint; a genuinely large graph grows geometrically as its real bytes
	// are consumed.
	g.Grow(min(numNodes, 1<<16))
	for i := 0; i < numNodes && d.err == nil; i++ {
		op := dag.Op(d.u8())
		switch op {
		case dag.OpInput:
			g.AddInput()
		case dag.OpConst:
			g.AddConst(d.f64())
		case dag.OpAdd, dag.OpMul:
			nargs := int(d.uvarint())
			if nargs < 1 || nargs > 2 {
				d.fail("node %d has %d args, want 1..2 (binary graph)", i, nargs)
				break
			}
			args := make([]dag.NodeID, nargs)
			for j := range args {
				arg := d.uvarint()
				if d.err != nil {
					break
				}
				if arg >= uint64(i) {
					d.fail("node %d references %d (not topologically earlier)", i, arg)
					break
				}
				args[j] = dag.NodeID(arg)
			}
			if d.err == nil {
				g.AddOp(op, args...)
			}
		default:
			d.fail("unknown op %d", uint8(op))
		}
	}
	if d.err != nil {
		return nil, d.err
	}

	// Remap (source-graph ids → binarized ids). Same amplification guard
	// as the node arena: append against the consumed bytes, not the
	// claimed count.
	numRemap := d.count("remap", 1)
	remap := make([]dag.NodeID, 0, min(numRemap, 1<<16))
	for i := 0; i < numRemap; i++ {
		id := d.uvarint()
		if d.err != nil {
			break
		}
		if id >= uint64(numNodes) {
			d.fail("remap[%d] = %d out of range", i, id)
			break
		}
		remap = append(remap, dag.NodeID(id))
	}

	// Input words: one per OpInput leaf, -1 for unconsumed inputs.
	inputWord := make([]int, len(g.Inputs()))
	for i := range inputWord {
		w := d.varint()
		if d.err != nil {
			break
		}
		if w < -1 || w >= int64(cfg.DataMemWords) {
			d.fail("input word %d out of range", w)
			break
		}
		inputWord[i] = int(w)
	}

	// Output words, exactly one per sink in graph-output order.
	outs := g.Outputs()
	outputWord := make(map[dag.NodeID]int, len(outs))
	for _, sink := range outs {
		w := d.varint()
		if d.err != nil {
			break
		}
		if w < 0 || w >= int64(cfg.DataMemWords) {
			d.fail("output word %d out of range", w)
			break
		}
		outputWord[sink] = int(w)
	}

	var stats compiler.Stats
	d.decodeStats(&stats)

	// Program.
	numInstrs := d.count("instruction", 1)
	packed := d.raw(d.count("packed byte", 1))
	initMem := make([]float64, d.count("memory word", 8))
	if d.err != nil {
		return nil, d.err
	}
	if len(initMem) > cfg.DataMemWords {
		return nil, fmt.Errorf("%w: memory image %d words exceeds data memory %d", ErrCorrupt, len(initMem), cfg.DataMemWords)
	}
	memBytes := d.raw(8 * len(initMem))
	if d.err != nil {
		return nil, d.err
	}
	for i := range initMem {
		initMem[i] = math.Float64frombits(binary.LittleEndian.Uint64(memBytes[8*i:]))
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d unread payload bytes", ErrCorrupt, d.remaining())
	}
	// A corrupted count would make Unpack walk the packed stream far out
	// of proportion; bound it by the payload that actually carries it
	// (every instruction is at least an opcode, i.e. >0 bits).
	if numInstrs > 8*len(packed) {
		return nil, fmt.Errorf("%w: %d instructions cannot fit %d packed bytes", ErrCorrupt, numInstrs, len(packed))
	}
	instrs, err := arch.Unpack(packed, cfg, numInstrs)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	prog := arch.NewProgram(cfg)
	for i, in := range instrs {
		if err := prog.Append(in); err != nil {
			return nil, fmt.Errorf("%w: instruction %d: %v", ErrCorrupt, i, err)
		}
	}
	// Canonical packing: don't-care padding bits must be zero and the
	// stream must end exactly where instruction numInstrs-1 does, so
	// re-encoding an accepted artifact is byte-identical.
	if !bytes.Equal(prog.Pack(), packed) {
		return nil, fmt.Errorf("%w: instruction stream not canonically packed", ErrCorrupt)
	}
	prog.InitMem = initMem

	a.Compiled = &compiler.Compiled{
		Prog:       prog,
		Graph:      g,
		Remap:      remap,
		InputWord:  inputWord,
		OutputWord: outputWord,
		Stats:      stats,
	}
	return a, nil
}

func (d *dec) decodeStats(s *compiler.Stats) {
	for _, p := range []*int{
		&s.Nodes, &s.Blocks, &s.Execs, &s.Copies, &s.CopiedWords, &s.InputConflicts,
		&s.OutputMoves, &s.Loads, &s.Stores, &s.SpillStores, &s.Reloads, &s.Nops,
		&s.Instructions, &s.Cycles,
	} {
		*p = int(d.varint())
	}
	s.PeakUtil = d.f64()
	s.MeanUtil = d.f64()
	s.CompileSeconds = d.f64()
}
