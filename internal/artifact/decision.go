// The `.dputune` record — the persisted form of an autotuning decision.
//
// A Decision maps one workload fingerprint to the hardware configuration
// (and compiler options) the design-space exploration found best for it,
// together with enough provenance to audit and re-derive the choice. It
// is the durable half of the tune→serve loop: `dpu-tune` (or the
// engine's background tuner) writes a decision next to the compiled
// programs, and a restarted `dpu-serve -autotune` reads it back and
// serves the workload on the tuned configuration without re-tuning.
//
// File layout mirrors the .dpuprog artifact (all header fields
// little-endian):
//
//	offset  size  field
//	0       8     magic "\x7fDPUTUNE"
//	8       2     decision format version (currently 2)
//	10      4     CRC-32C (Castagnoli) of the payload
//	14      8     payload length in bytes
//	22      …     payload
//
// The payload is the same canonical varint encoding the artifact uses:
// minimal varints, fixed field order, normalized config/options —
// EncodeDecisionBytes(DecodeDecisionBytes(x)) == x whenever decoding a
// current-version image succeeds. Malformed input yields the package's
// typed errors (ErrBadMagic, ErrVersion, ErrTruncated, ErrChecksum,
// ErrCorrupt), never a panic. Any payload layout change must bump
// DecisionVersion.
//
// Version history: v2 appended the search-provenance fields (search
// kind, anneal seed, chains, steps, temperature schedule,
// accepted/rejected counts). v1 records — grid-sweep decisions written
// before annealing existed — still decode, with those fields zero;
// encoding always writes the current version.
package artifact

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"dpuv2/internal/arch"
	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
)

// DecisionVersion is the current .dputune format version. Records at
// decisionMinVersion..DecisionVersion decode; encoding always writes
// DecisionVersion.
const DecisionVersion = 2

// decisionMinVersion is the oldest format the decoder still reads.
const decisionMinVersion = 1

// decisionMagic opens every decision record.
var decisionMagic = [8]byte{0x7f, 'D', 'P', 'U', 'T', 'U', 'N', 'E'}

// Provenance records how a Decision was reached, so an operator (or a
// later re-tune) can judge whether it is still trustworthy.
type Provenance struct {
	// Metric is the optimization target ("latency", "energy" or "edp").
	Metric string
	// Default is the configuration the tuned one was compared against —
	// the config requests would have been served on without tuning.
	Default arch.Config
	// DefaultScore is the metric value of the default config, the
	// baseline the winning Score beat (or tied, when the decision pins
	// the default because nothing beat it).
	DefaultScore float64
	// Points is how many candidate configurations were actually
	// evaluated before the budget ran out; GridSize is how many the
	// candidate grid held in total.
	Points   int
	GridSize int
	// BudgetNS is the wall-clock tuning budget in nanoseconds (0: none).
	BudgetNS int64
	// TunedAtUnix is when the decision was made (Unix seconds).
	TunedAtUnix int64
	// Tuner identifies the producing tool and its policy version,
	// e.g. "dpu-tune/2".
	Tuner string
	// Search names the candidate-generation strategy: "grid" (the fixed
	// sweep), "anneal" (simulated annealing over the enlarged space), or
	// "" in records written before v2.
	Search string
	// The remaining fields reproduce an anneal search exactly (zero for
	// grid decisions): the RNG seed, the chain/step shape, the
	// temperature schedule (InitTemp, geometric Cool factor), and the
	// accepted/rejected move counts of the run that produced Config.
	Seed     int64
	Chains   int
	Steps    int
	InitTemp float64
	Cool     float64
	Accepted int
	Rejected int
}

// Decision is one per-workload autotuning outcome: serve the graph with
// fingerprint Fingerprint on Config with Options. Score is the metric
// value of that choice (lower is better, same units as the dse sweep).
type Decision struct {
	Fingerprint dag.Fingerprint
	Config      arch.Config
	Options     compiler.Options
	Score       float64
	Provenance  Provenance
}

// maxDecisionStr bounds the free-form provenance strings so a corrupted
// length cannot drive a huge allocation.
const maxDecisionStr = 1 << 10

// EncodeDecisionBytes serializes d into the .dputune format.
func EncodeDecisionBytes(d *Decision) ([]byte, error) {
	cfg := d.Config.Normalize()
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("artifact: decision: %w", err)
	}
	if err := checkConfig(cfg); err != nil {
		return nil, fmt.Errorf("artifact: decision: %w", err)
	}
	opts := d.Options.Normalized()
	if err := checkOptions(opts); err != nil {
		return nil, err
	}
	defCfg := d.Provenance.Default.Normalize()
	if err := defCfg.Validate(); err != nil {
		return nil, fmt.Errorf("artifact: decision default: %w", err)
	}
	if err := checkConfig(defCfg); err != nil {
		return nil, fmt.Errorf("artifact: decision default: %w", err)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{{"score", d.Score}, {"default score", d.Provenance.DefaultScore}} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) || f.v < 0 {
			return nil, fmt.Errorf("artifact: decision %s %v not a finite non-negative number", f.name, f.v)
		}
	}
	for _, s := range []struct {
		name, v string
	}{{"metric", d.Provenance.Metric}, {"tuner", d.Provenance.Tuner}} {
		if len(s.v) > maxDecisionStr {
			return nil, fmt.Errorf("artifact: decision %s string %d bytes long (limit %d)", s.name, len(s.v), maxDecisionStr)
		}
	}
	if d.Provenance.Points < 0 || d.Provenance.GridSize < 0 ||
		d.Provenance.Points > d.Provenance.GridSize {
		return nil, fmt.Errorf("artifact: decision evaluated %d of %d grid points", d.Provenance.Points, d.Provenance.GridSize)
	}
	if d.Provenance.BudgetNS < 0 {
		return nil, fmt.Errorf("artifact: decision budget %d negative", d.Provenance.BudgetNS)
	}
	if err := checkSearch(d.Provenance.Search); err != nil {
		return nil, fmt.Errorf("artifact: decision %w", err)
	}
	for _, c := range []struct {
		name string
		v    int
	}{{"chains", d.Provenance.Chains}, {"steps", d.Provenance.Steps},
		{"accepted", d.Provenance.Accepted}, {"rejected", d.Provenance.Rejected}} {
		if c.v < 0 || c.v > math.MaxInt32 {
			return nil, fmt.Errorf("artifact: decision %s %d out of range", c.name, c.v)
		}
	}
	if t := d.Provenance.InitTemp; math.IsNaN(t) || math.IsInf(t, 0) || t < 0 {
		return nil, fmt.Errorf("artifact: decision init temp %v not a finite non-negative number", t)
	}
	if c := d.Provenance.Cool; math.IsNaN(c) || c < 0 || c > 1 {
		return nil, fmt.Errorf("artifact: decision cool factor %v outside [0, 1]", c)
	}

	var e enc
	e.raw(d.Fingerprint[:])
	e.config(cfg)
	e.options(opts)
	e.f64(d.Score)
	e.str(d.Provenance.Metric)
	e.config(defCfg)
	e.f64(d.Provenance.DefaultScore)
	e.uvarint(uint64(d.Provenance.Points))
	e.uvarint(uint64(d.Provenance.GridSize))
	e.varint(d.Provenance.BudgetNS)
	e.varint(d.Provenance.TunedAtUnix)
	e.str(d.Provenance.Tuner)
	// v2 search-provenance fields, always written on encode.
	e.str(d.Provenance.Search)
	e.varint(d.Provenance.Seed)
	e.uvarint(uint64(d.Provenance.Chains))
	e.uvarint(uint64(d.Provenance.Steps))
	e.f64(d.Provenance.InitTemp)
	e.f64(d.Provenance.Cool)
	e.uvarint(uint64(d.Provenance.Accepted))
	e.uvarint(uint64(d.Provenance.Rejected))

	buf := make([]byte, headerSize, headerSize+len(e.buf))
	copy(buf, decisionMagic[:])
	binary.LittleEndian.PutUint16(buf[8:], DecisionVersion)
	binary.LittleEndian.PutUint32(buf[10:], crc32.Checksum(e.buf, castagnoli))
	binary.LittleEndian.PutUint64(buf[14:], uint64(len(e.buf)))
	return append(buf, e.buf...), nil
}

// DecodeDecisionBytes parses a .dputune image. Every failure is typed;
// success returns a decision whose config and options are validated and
// in normalized (cache-key) form.
func DecodeDecisionBytes(b []byte) (*Decision, error) {
	if len(b) < headerSize {
		if len(b) >= len(decisionMagic) && !bytes.Equal(b[:len(decisionMagic)], decisionMagic[:]) {
			return nil, ErrBadMagic
		}
		return nil, fmt.Errorf("%w: %d-byte input shorter than the %d-byte header", ErrTruncated, len(b), headerSize)
	}
	if !bytes.Equal(b[:len(decisionMagic)], decisionMagic[:]) {
		return nil, ErrBadMagic
	}
	version := int(binary.LittleEndian.Uint16(b[8:]))
	if version < decisionMinVersion || version > DecisionVersion {
		return nil, fmt.Errorf("%w: decision is v%d, this build reads v%d through v%d", ErrVersion, version, decisionMinVersion, DecisionVersion)
	}
	sum := binary.LittleEndian.Uint32(b[10:])
	plen := binary.LittleEndian.Uint64(b[14:])
	rest := b[headerSize:]
	if uint64(len(rest)) < plen {
		return nil, fmt.Errorf("%w: payload declares %d bytes, %d present", ErrTruncated, plen, len(rest))
	}
	if uint64(len(rest)) > plen {
		return nil, fmt.Errorf("%w: %d bytes of trailing data", ErrCorrupt, uint64(len(rest))-plen)
	}
	if got := crc32.Checksum(rest, castagnoli); got != sum {
		return nil, fmt.Errorf("%w: stored %08x, computed %08x", ErrChecksum, sum, got)
	}
	return decodeDecisionPayload(rest, version)
}

// checkSearch bounds the search-kind provenance string to the known
// vocabulary, shared by encode and decode so no other value can round-
// trip through the format.
func checkSearch(s string) error {
	switch s {
	case "", "grid", "anneal":
		return nil
	}
	return fmt.Errorf("unknown search kind %q", s)
}

// decodeOptions reads one compiler-options section and validates it
// into normalized (cache-key) form. Shared by the .dpuprog and .dputune
// decoders, so the two formats can never diverge in what options they
// admit.
func (d *dec) decodeOptions() compiler.Options {
	var opts compiler.Options
	opts.Seed = d.varint()
	opts.RandomBanks = d.boolean()
	opts.Window = d.intNonNeg("window", maxTuning)
	opts.SeedLookahead = d.intNonNeg("seed lookahead", maxTuning)
	opts.FillLookahead = d.intNonNeg("fill lookahead", maxTuning)
	opts.PartitionSize = d.intNonNeg("partition size", math.MaxInt32)
	if d.err == nil && opts != opts.Normalized() {
		d.fail("options %+v not in normalized form", opts)
	}
	return opts
}

// decodeConfig reads one config section and validates it into
// normalized, format-bounded form.
func (d *dec) decodeConfig(what string) arch.Config {
	var cfg arch.Config
	cfg.D = int(d.uvarint())
	cfg.B = int(d.uvarint())
	cfg.R = int(d.uvarint())
	cfg.Output = arch.OutputTopology(d.u8())
	cfg.DataMemWords = int(d.uvarint())
	cfg.ClockMHz = d.f64()
	if d.err != nil {
		return cfg
	}
	if err := cfg.Validate(); err != nil {
		d.fail("%s: %v", what, err)
		return cfg
	}
	if cfg != cfg.Normalize() {
		d.fail("%s %v not in normalized form", what, cfg)
		return cfg
	}
	if err := checkConfig(cfg); err != nil {
		d.fail("%s: %v", what, err)
	}
	return cfg
}

// score reads one metric value, rejecting anything a valid tuner cannot
// have produced (NaN/Inf would poison every later comparison).
func (d *dec) score(what string) float64 {
	v := d.f64()
	if d.err == nil && (math.IsNaN(v) || math.IsInf(v, 0) || v < 0) {
		d.fail("%s %v not a finite non-negative number", what, v)
	}
	return v
}

// decisionStr reads one bounded provenance string.
func (d *dec) decisionStr(what string) string {
	n := d.count(what, 1)
	if d.err == nil && n > maxDecisionStr {
		d.fail("%s string %d bytes long (limit %d)", what, n, maxDecisionStr)
		return ""
	}
	return string(d.raw(n))
}

func decodeDecisionPayload(b []byte, version int) (*Decision, error) {
	d := &dec{buf: b}
	dd := &Decision{}
	copy(dd.Fingerprint[:], d.raw(len(dd.Fingerprint)))
	dd.Config = d.decodeConfig("config")
	dd.Options = d.decodeOptions()
	dd.Score = d.score("score")
	dd.Provenance.Metric = d.decisionStr("metric")
	dd.Provenance.Default = d.decodeConfig("default config")
	dd.Provenance.DefaultScore = d.score("default score")
	points := d.uvarint()
	grid := d.uvarint()
	if d.err == nil && (points > grid || grid > math.MaxInt32) {
		d.fail("evaluated %d of %d grid points", points, grid)
	}
	dd.Provenance.Points = int(points)
	dd.Provenance.GridSize = int(grid)
	budget := d.varint()
	if d.err == nil && budget < 0 {
		d.fail("budget %d negative", budget)
	}
	dd.Provenance.BudgetNS = budget
	dd.Provenance.TunedAtUnix = d.varint()
	dd.Provenance.Tuner = d.decisionStr("tuner")
	if version >= 2 {
		// Search-provenance fields appended in v2; a v1 payload ends at
		// the tuner string and leaves them zero.
		dd.Provenance.Search = d.decisionStr("search kind")
		if d.err == nil {
			if err := checkSearch(dd.Provenance.Search); err != nil {
				d.fail("%v", err)
			}
		}
		dd.Provenance.Seed = d.varint()
		count := func(name string) int {
			v := d.uvarint()
			if d.err == nil && v > math.MaxInt32 {
				d.fail("%s %d out of range", name, v)
			}
			return int(v)
		}
		dd.Provenance.Chains = count("chains")
		dd.Provenance.Steps = count("steps")
		dd.Provenance.InitTemp = d.score("init temp")
		dd.Provenance.Cool = d.score("cool factor")
		if d.err == nil && dd.Provenance.Cool > 1 {
			d.fail("cool factor %v outside [0, 1]", dd.Provenance.Cool)
		}
		dd.Provenance.Accepted = count("accepted moves")
		dd.Provenance.Rejected = count("rejected moves")
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d unread payload bytes", ErrCorrupt, d.remaining())
	}
	return dd, nil
}
