package artifact

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"strings"

	"dpuv2/internal/arch"
	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
)

// ErrNotFound reports a store lookup for a key with no artifact.
var ErrNotFound = errors.New("artifact: not in store")

// Key is the content address of a compiled program — the same triple
// the serving engine keys its in-memory cache on. Construct with
// KeyFor, which normalizes; two keys are equal iff they address the
// same compilation.
type Key struct {
	Fingerprint dag.Fingerprint
	Config      arch.Config
	Options     compiler.Options
}

// KeyFor builds the normalized key for (fp, cfg, opts).
func KeyFor(fp dag.Fingerprint, cfg arch.Config, opts compiler.Options) Key {
	return Key{Fingerprint: fp, Config: cfg.Normalize(), Options: opts.Normalized()}
}

// keyDomain versions the key hash; bump alongside any change to the
// canonical key encoding below so old store files cannot alias.
const keyDomain = "dpuv2/artifact/key/v1"

// ID returns the key's stable hex content address, the store filename
// stem. It hashes the same canonical binary encoding the artifact
// payload uses, so it is identical across processes and hosts.
func (k Key) ID() string {
	var e enc
	e.config(k.Config)
	e.options(k.Options)
	h := sha256.New()
	h.Write([]byte(keyDomain))
	h.Write(k.Fingerprint[:])
	h.Write(e.buf)
	return hex.EncodeToString(h.Sum(nil))
}

// Ext is the artifact file extension. Store.Walk considers every *.dpuprog
// file in the directory, whatever its name stem, so hand-placed
// `dpu-compile -o` output participates in warm-start alongside
// store-addressed files.
const Ext = ".dpuprog"

// tmpPrefix marks in-progress writes; Walk skips them and Open sweeps
// leftovers from a crashed writer.
const tmpPrefix = ".tmp-"

// Store is a content-addressed directory of artifacts. Writes are
// atomic (temp file + rename), so readers — including concurrent
// warm-starting processes — never observe a torn artifact; reads
// verify the checksum and the embedded key before returning anything.
// A Store is safe for concurrent use by any number of goroutines and
// processes sharing the directory.
type Store struct {
	dir string
}

// Open returns a store rooted at dir, creating the directory if needed
// and sweeping temp files abandoned by crashed writers.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: open store: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("artifact: open store: %w", err)
	}
	swept := 0
	for _, ent := range entries {
		if !ent.IsDir() && strings.HasPrefix(ent.Name(), tmpPrefix) {
			if os.Remove(filepath.Join(dir, ent.Name())) == nil {
				swept++
			}
		}
	}
	if swept > 0 {
		// Worth an operator's attention: it means a previous writer
		// died mid-Put (or the directory is shared with something
		// creating .tmp-* files of its own).
		log.Printf("artifact: store %s: swept %d temp file(s) left by a crashed writer", dir, swept)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(k Key) string {
	return filepath.Join(s.dir, k.ID()+Ext)
}

// Get loads and decodes the artifact stored under k. A missing file is
// ErrNotFound; a file that fails to decode, or whose embedded identity
// does not match k, surfaces its typed decode error so callers can
// distinguish "compile it" from "the store is damaged". A *corrupt*
// file is also removed, so the store self-heals: the caller's recompile
// will persist a fresh artifact instead of being shadowed by the corpse
// forever (Put is first-wins). An ErrVersion file is left alone — in a
// mixed-version fleet it is another binary's valid artifact, not
// damage. The removal can in principle race a concurrent writer's
// just-renamed replacement; the loss is one persist, repaired by the
// next miss.
func (s *Store) Get(k Key) (*Artifact, error) {
	p := s.path(k)
	b, err := os.ReadFile(p)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, k.ID())
		}
		return nil, fmt.Errorf("artifact: %w", err)
	}
	a, err := DecodeBytes(b)
	if err != nil {
		if !errors.Is(err, ErrVersion) {
			os.Remove(p)
		}
		return nil, fmt.Errorf("%s: %w", p, err)
	}
	if got := a.Key(); got != k {
		os.Remove(p)
		return nil, fmt.Errorf("%s: %w: artifact identity %s does not match its address", p, ErrCorrupt, got.ID())
	}
	return a, nil
}

// Key returns the artifact's own content address, derived from its
// embedded fingerprint, configuration and options.
func (a *Artifact) Key() Key {
	return KeyFor(a.Fingerprint, a.Compiled.Prog.Cfg, a.Options)
}

// Remove deletes the artifact stored under k; a missing file is not an
// error. The engine uses it to purge an artifact whose content turned
// out to be poisoned in a way only the caller can detect (e.g. a remap
// that does not fit the graph being served).
func (s *Store) Remove(k Key) error {
	if err := os.Remove(s.path(k)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("artifact: remove: %w", err)
	}
	return nil
}

// Put persists a under its content address. The write is
// first-wins-idempotent: if the key already has an artifact the call is
// a no-op, so concurrent compilations of the same graph produce exactly
// one persisted artifact. New content lands via a same-directory temp
// file and an atomic rename; a reader can never observe a partial
// write.
func (s *Store) Put(a *Artifact) error {
	p := s.path(a.Key())
	if _, err := os.Stat(p); err == nil {
		return nil
	}
	b, err := EncodeBytes(a)
	if err != nil {
		return err
	}
	if err := s.writeAtomic(p, b); err != nil {
		return fmt.Errorf("artifact: put: %w", err)
	}
	return nil
}

// writeAtomic lands b at dest via a same-directory temp file and an
// atomic rename — the write discipline both record types (programs and
// decisions) rely on so a reader can never observe a torn file.
func (s *Store) writeAtomic(dest string, b []byte) error {
	f, err := os.CreateTemp(s.dir, tmpPrefix+"*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(b); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, dest); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// DecisionExt is the autotuning-decision file extension. Decisions live
// in the same directory as the compiled programs they select, so one
// `-artifact-dir` carries the whole tuned deployment.
const DecisionExt = ".dputune"

// decisionPath addresses a decision by the workload fingerprint alone:
// a decision is per workload, not per (workload, config) — it exists to
// *pick* the config.
func (s *Store) decisionPath(fp dag.Fingerprint) string {
	return filepath.Join(s.dir, fp.String()+DecisionExt)
}

// PutDecision persists d under its workload fingerprint. Unlike Put,
// which is first-wins (a compiled program is deterministic for its key),
// PutDecision is last-wins: a re-tune with a bigger budget or fresher
// cost model legitimately replaces the old choice. The write is atomic
// (same-directory temp file + rename), so concurrent readers see either
// the old complete decision or the new one, never a torn file.
func (s *Store) PutDecision(d *Decision) error {
	b, err := EncodeDecisionBytes(d)
	if err != nil {
		return err
	}
	if err := s.writeAtomic(s.decisionPath(d.Fingerprint), b); err != nil {
		return fmt.Errorf("artifact: put decision: %w", err)
	}
	return nil
}

// GetDecision loads the decision for fp. A missing file is ErrNotFound;
// a corrupt file surfaces its typed error and is removed (self-healing,
// like Get), except ErrVersion files, which another binary may own. A
// decision whose embedded fingerprint does not match its address is
// treated as corrupt.
func (s *Store) GetDecision(fp dag.Fingerprint) (*Decision, error) {
	p := s.decisionPath(fp)
	b, err := os.ReadFile(p)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("%w: decision %s", ErrNotFound, fp.Short())
		}
		return nil, fmt.Errorf("artifact: %w", err)
	}
	d, err := DecodeDecisionBytes(b)
	if err != nil {
		if !errors.Is(err, ErrVersion) {
			os.Remove(p)
		}
		return nil, fmt.Errorf("%s: %w", p, err)
	}
	if d.Fingerprint != fp {
		os.Remove(p)
		return nil, fmt.Errorf("%s: %w: decision is for %s, not its address %s", p, ErrCorrupt, d.Fingerprint.Short(), fp.Short())
	}
	return d, nil
}

// RemoveDecision deletes the decision for fp; a missing file is not an
// error.
func (s *Store) RemoveDecision(fp dag.Fingerprint) error {
	if err := os.Remove(s.decisionPath(fp)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("artifact: remove decision: %w", err)
	}
	return nil
}

// WalkDecisions decodes every *.dputune file in the store and calls fn
// with the path and either the decision or its decode error. fn
// returning false stops the walk. Like Walk, concurrent mutation is
// tolerated.
func (s *Store) WalkDecisions(fn func(path string, d *Decision, err error) bool) error {
	err := s.walkExt(DecisionExt, func(p string, b []byte, rerr error) bool {
		if rerr != nil {
			return fn(p, nil, rerr)
		}
		d, derr := DecodeDecisionBytes(b)
		return fn(p, d, derr)
	})
	if err != nil {
		return fmt.Errorf("artifact: walk decisions: %w", err)
	}
	return nil
}

// walkExt iterates the complete files carrying one extension, handing
// fn each file's raw bytes (or its read error); fn returning false
// stops the walk. Temp files are skipped and files vanishing mid-walk
// (a raced removal) are tolerated — the shared discipline of both
// record walks.
func (s *Store) walkExt(ext string, fn func(path string, b []byte, err error) bool) error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || strings.HasPrefix(name, tmpPrefix) || !strings.HasSuffix(name, ext) {
			continue
		}
		p := filepath.Join(s.dir, name)
		b, err := os.ReadFile(p)
		if err != nil && errors.Is(err, fs.ErrNotExist) {
			continue // raced a concurrent removal
		}
		if !fn(p, b, err) {
			return nil
		}
	}
	return nil
}

// Walk decodes every artifact file in the store (any *.dpuprog, not
// just content-addressed names) and calls fn with the path and either
// the artifact or its decode error. fn returning false stops the walk.
// Files appearing or vanishing mid-walk are tolerated — concurrent
// Puts only ever add complete files.
func (s *Store) Walk(fn func(path string, a *Artifact, err error) bool) error {
	err := s.walkExt(Ext, func(p string, b []byte, rerr error) bool {
		if rerr != nil {
			return fn(p, nil, rerr)
		}
		a, derr := DecodeBytes(b)
		return fn(p, a, derr)
	})
	if err != nil {
		return fmt.Errorf("artifact: walk: %w", err)
	}
	return nil
}

// Len counts the artifact files currently in the store.
func (s *Store) Len() (int, error) {
	n := 0
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, fmt.Errorf("artifact: %w", err)
	}
	for _, ent := range entries {
		if !ent.IsDir() && !strings.HasPrefix(ent.Name(), tmpPrefix) && strings.HasSuffix(ent.Name(), Ext) {
			n++
		}
	}
	return n, nil
}
