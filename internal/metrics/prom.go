// Prometheus text exposition (format version 0.0.4) over the package's
// histograms, plus a minimal parser for it. The log-linear buckets are
// fixed global boundaries shared by every Histogram, so a Snapshot maps
// directly onto a Prometheus histogram: each bucket's inclusive upper
// bound becomes a cumulative `le` boundary (both are "≤ upper"
// semantics), `_sum`/`_count` come from the exact tracked sum and
// count, and a rider `<name>_max` gauge preserves the exact max so a
// scraper can re-derive the same conservative, max-clamped quantiles
// /stats reports. The parser exists so tests and CI can assert a
// /metrics body is well-formed without a Prometheus dependency.
package metrics

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromWriter emits one /metrics body. Each family's `# TYPE` line is
// written once, on the family's first sample; re-registering a family
// under a different kind is an error surfaced by Err.
type PromWriter struct {
	w     io.Writer
	types map[string]string
	err   error
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w, types: make(map[string]string)}
}

// Err returns the first error encountered (I/O or a family re-typed).
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) typeLine(name, kind string) {
	if p.err != nil {
		return
	}
	if have, ok := p.types[name]; ok {
		if have != kind {
			p.err = fmt.Errorf("metrics: family %s emitted as both %s and %s", name, have, kind)
		}
		return
	}
	p.types[name] = kind
	_, err := fmt.Fprintf(p.w, "# TYPE %s %s\n", name, kind)
	if err != nil {
		p.err = err
	}
}

func (p *PromWriter) sample(name, labels string, format string, args ...any) {
	if p.err != nil {
		return
	}
	if labels != "" {
		name = name + "{" + labels + "}"
	}
	if _, err := fmt.Fprintf(p.w, "%s "+format+"\n", append([]any{name}, args...)...); err != nil {
		p.err = err
	}
}

// Counter emits a monotonically increasing counter family with one
// unlabeled sample.
func (p *PromWriter) Counter(name string, v int64) {
	p.typeLine(name, "counter")
	p.sample(name, "", "%d", v)
}

// Gauge emits a gauge family with one unlabeled sample.
func (p *PromWriter) Gauge(name string, v int64) {
	p.typeLine(name, "gauge")
	p.sample(name, "", "%d", v)
}

// GaugeLabeled emits one labeled sample of a gauge family (the TYPE
// line is shared across calls with the same name).
func (p *PromWriter) GaugeLabeled(name, labels string, v int64) {
	p.typeLine(name, "gauge")
	p.sample(name, labels, "%d", v)
}

// Histogram emits one labeled series of a histogram family from a
// Snapshot: cumulative `_bucket{le=...}` samples over the non-empty
// buckets (sparse `le` values are valid — the boundaries are a pure
// function of the value, identical across every histogram), the `+Inf`
// bucket, `_sum` and `_count`, plus the exact-max rider gauge
// `<name>_max`. labels may be "" or a rendered list like
// `stage="queue_wait"`.
func (p *PromWriter) Histogram(name, labels string, s Snapshot) {
	p.typeLine(name, "histogram")
	le := func(bound string) string {
		if labels == "" {
			return `le="` + bound + `"`
		}
		return labels + `,le="` + bound + `"`
	}
	// The bucket array is read after count under concurrent writers, so
	// its total can exceed s.Count; the exposition must be internally
	// coherent (+Inf == _count), so the bucket total is authoritative.
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.Count
		p.sample(name+"_bucket", le(strconv.FormatInt(b.Upper, 10)), "%d", cum)
	}
	p.sample(name+"_bucket", le("+Inf"), "%d", cum)
	p.sample(name+"_sum", labels, "%d", s.Sum)
	p.sample(name+"_count", labels, "%d", cum)
	p.typeLine(name+"_max", "gauge")
	p.sample(name+"_max", labels, "%d", s.Max)
}

// PromSample is one parsed sample line.
type PromSample struct {
	// Name is the full sample name, including any _bucket/_sum/_count
	// suffix.
	Name   string
	Labels map[string]string
	Value  float64
}

// PromFamily is one parsed metric family.
type PromFamily struct {
	Name    string
	Kind    string // counter, gauge, histogram, ...
	Samples []PromSample
}

// ParseProm parses a text-exposition body and validates its structure:
// every sample must belong to a family declared by a preceding `# TYPE`
// line, names must be legal, and histogram families must be coherent
// (per label set: cumulative bucket counts non-decreasing in `le`, a
// `+Inf` bucket present and equal to `_count`, `_sum` present).
// Families are returned in declaration order.
func ParseProm(r io.Reader) ([]*PromFamily, error) {
	var fams []*PromFamily
	byName := make(map[string]*PromFamily)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("prom: line %d: malformed TYPE line", lineNo)
				}
				name, kind := fields[2], fields[3]
				if !promNameOK(name) {
					return nil, fmt.Errorf("prom: line %d: bad family name %q", lineNo, name)
				}
				if byName[name] != nil {
					return nil, fmt.Errorf("prom: line %d: duplicate TYPE for %s", lineNo, name)
				}
				f := &PromFamily{Name: name, Kind: kind}
				byName[name] = f
				fams = append(fams, f)
			}
			continue // HELP and other comments
		}
		s, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("prom: line %d: %w", lineNo, err)
		}
		f := byName[s.Name]
		if f == nil {
			// Histogram samples carry suffixed names.
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				base := strings.TrimSuffix(s.Name, suffix)
				if base != s.Name && byName[base] != nil && byName[base].Kind == "histogram" {
					f = byName[base]
					break
				}
			}
		}
		if f == nil {
			return nil, fmt.Errorf("prom: line %d: sample %s has no preceding TYPE", lineNo, s.Name)
		}
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, f := range fams {
		if f.Kind == "histogram" {
			if err := checkPromHistogram(f); err != nil {
				return nil, err
			}
		}
	}
	return fams, nil
}

func promNameOK(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// parsePromSample parses `name{label="v",...} value`.
func parsePromSample(line string) (PromSample, error) {
	s := PromSample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ \t"); i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if !promNameOK(s.Name) {
		return s, fmt.Errorf("bad sample name %q", s.Name)
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parsePromLabels(rest[1:end], s.Labels); err != nil {
			return s, err
		}
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	// A timestamp may trail the value; the value is the first field.
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %v", line, err)
	}
	s.Value = v
	return s, nil
}

func parsePromLabels(body string, into map[string]string) error {
	for len(body) > 0 {
		eq := strings.Index(body, "=")
		if eq < 0 {
			return fmt.Errorf("malformed labels %q", body)
		}
		key := strings.TrimSpace(body[:eq])
		if !promNameOK(key) || strings.Contains(key, ":") {
			return fmt.Errorf("bad label name %q", key)
		}
		rest := strings.TrimSpace(body[eq+1:])
		if !strings.HasPrefix(rest, `"`) {
			return fmt.Errorf("unquoted label value in %q", body)
		}
		rest = rest[1:]
		var val strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i >= len(rest) {
			return fmt.Errorf("unterminated label value in %q", body)
		}
		into[key] = val.String()
		body = strings.TrimPrefix(strings.TrimSpace(rest[i+1:]), ",")
	}
	return nil
}

// labelFingerprint renders a label set minus `le`, canonically ordered,
// to group one histogram series' samples.
func labelFingerprint(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%q,", k, labels[k])
	}
	return b.String()
}

// checkPromHistogram validates one histogram family's coherence.
func checkPromHistogram(f *PromFamily) error {
	type series struct {
		bounds []float64
		counts []float64
		inf    *float64
		count  *float64
		sum    bool
	}
	byLabels := map[string]*series{}
	get := func(ls map[string]string) *series {
		fp := labelFingerprint(ls)
		s := byLabels[fp]
		if s == nil {
			s = &series{}
			byLabels[fp] = s
		}
		return s
	}
	for i := range f.Samples {
		smp := &f.Samples[i]
		s := get(smp.Labels)
		switch smp.Name {
		case f.Name + "_bucket":
			le, ok := smp.Labels["le"]
			if !ok {
				return fmt.Errorf("prom: %s: bucket sample without le", f.Name)
			}
			if le == "+Inf" {
				v := smp.Value
				s.inf = &v
				continue
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("prom: %s: bad le %q", f.Name, le)
			}
			s.bounds = append(s.bounds, bound)
			s.counts = append(s.counts, smp.Value)
		case f.Name + "_count":
			v := smp.Value
			s.count = &v
		case f.Name + "_sum":
			s.sum = true
		default:
			return fmt.Errorf("prom: %s: unexpected histogram sample %s", f.Name, smp.Name)
		}
	}
	for fp, s := range byLabels {
		if s.inf == nil {
			return fmt.Errorf("prom: %s{%s}: no +Inf bucket", f.Name, fp)
		}
		if s.count == nil || !s.sum {
			return fmt.Errorf("prom: %s{%s}: missing _count or _sum", f.Name, fp)
		}
		if *s.count != *s.inf {
			return fmt.Errorf("prom: %s{%s}: _count %v != +Inf bucket %v", f.Name, fp, *s.count, *s.inf)
		}
		for i := 1; i < len(s.bounds); i++ {
			if s.bounds[i] <= s.bounds[i-1] {
				return fmt.Errorf("prom: %s{%s}: le bounds not increasing", f.Name, fp)
			}
			if s.counts[i] < s.counts[i-1] {
				return fmt.Errorf("prom: %s{%s}: cumulative counts decrease at le=%v", f.Name, fp, s.bounds[i])
			}
		}
		if n := len(s.counts); n > 0 && s.counts[n-1] > *s.inf {
			return fmt.Errorf("prom: %s{%s}: last bucket exceeds +Inf", f.Name, fp)
		}
	}
	return nil
}
