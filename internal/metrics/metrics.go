// Package metrics provides the lock-cheap observability primitives of
// the serving path: a fixed-memory log-linear histogram whose Observe is
// a handful of atomic adds (no mutex, no allocation), suitable for the
// scheduler's per-request latency and batch-size accounting under heavy
// concurrency.
//
// The bucketing is the HDR scheme at 3 sub-bucket bits: values below 16
// land in exact unit buckets; every octave [2^k, 2^(k+1)) above that is
// split into 8 linear sub-buckets, so any recorded value is off by at
// most 12.5% of itself. Quantiles report a bucket's upper bound, never
// underestimating a latency.
package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// subBits is the log2 of the sub-buckets per octave. 3 gives ≤12.5%
// relative error in 512 buckets (4 KiB of counters per histogram).
const subBits = 3

// nBuckets covers every non-negative int64: 2^(subBits+1) exact unit
// buckets plus 8 sub-buckets for each of the remaining octaves up to 2^62.
const nBuckets = (1 << (subBits + 1)) + (62-subBits)*(1<<subBits)

// Histogram is a fixed-size concurrent histogram of non-negative int64
// values (durations in nanoseconds, batch sizes, queue depths...).
// The zero value is ready to use. Observe never blocks and never
// allocates; Snapshot is wait-free but not atomic across buckets — under
// concurrent writers it sees some prefix of each writer's observations,
// which is exactly what a monitoring endpoint wants.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [nBuckets]atomic.Uint64
}

// bucketIndex maps v to its bucket. Monotone in v.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < 1<<(subBits+1) {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // MSB position, ≥ subBits+1
	sub := int(uint64(v)>>(exp-subBits)) & (1<<subBits - 1)
	return 1<<(subBits+1) + (exp-subBits-1)*(1<<subBits) + sub
}

// bucketUpper is the largest value mapping to bucket i (the inverse of
// bucketIndex, used to report conservative quantiles).
func bucketUpper(i int) int64 {
	if i < 1<<(subBits+1) {
		return int64(i)
	}
	i -= 1 << (subBits + 1)
	exp := i/(1<<subBits) + subBits + 1
	sub := int64(i % (1 << subBits))
	lower := int64(1)<<exp + sub<<(exp-subBits)
	return lower + int64(1)<<(exp-subBits) - 1
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Bucket is one non-empty histogram bucket in a Snapshot.
type Bucket struct {
	// Upper is the largest value the bucket covers (inclusive).
	Upper int64  `json:"upper"`
	Count uint64 `json:"count"`
}

// Snapshot is a point-in-time copy of a histogram, safe to query and
// serialize after the histogram moves on.
type Snapshot struct {
	Count   uint64   `json:"count"`
	Sum     int64    `json:"sum"`
	Max     int64    `json:"max"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot copies the current state, keeping only non-empty buckets
// (ordered by value).
func (h *Histogram) Snapshot() Snapshot {
	s := Snapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	for i := range h.buckets {
		if c := h.buckets[i].Load(); c > 0 {
			s.Buckets = append(s.Buckets, Bucket{Upper: bucketUpper(i), Count: c})
		}
	}
	return s
}

// Merge returns the union of s and o, as if every observation recorded
// into either histogram had been recorded into one. Every Histogram in
// the process (and, because the bucketing is a pure function of the
// value, in every process of a fleet) shares the same fixed bucket
// boundaries, so bucket lists merge losslessly by upper bound: the
// merged quantiles are exactly what one histogram over the combined
// observations would report. This is what lets a gateway aggregate
// per-backend /stats histograms into a fleet-wide view instead of
// averaging quantiles (which is meaningless).
func (s Snapshot) Merge(o Snapshot) Snapshot {
	m := Snapshot{
		Count: s.Count + o.Count,
		Sum:   s.Sum + o.Sum,
		Max:   s.Max,
	}
	if o.Max > m.Max {
		m.Max = o.Max
	}
	m.Buckets = make([]Bucket, 0, len(s.Buckets)+len(o.Buckets))
	i, j := 0, 0
	for i < len(s.Buckets) || j < len(o.Buckets) {
		switch {
		case j >= len(o.Buckets) || (i < len(s.Buckets) && s.Buckets[i].Upper < o.Buckets[j].Upper):
			m.Buckets = append(m.Buckets, s.Buckets[i])
			i++
		case i >= len(s.Buckets) || o.Buckets[j].Upper < s.Buckets[i].Upper:
			m.Buckets = append(m.Buckets, o.Buckets[j])
			j++
		default: // same bucket in both
			m.Buckets = append(m.Buckets, Bucket{Upper: s.Buckets[i].Upper, Count: s.Buckets[i].Count + o.Buckets[j].Count})
			i, j = i+1, j+1
		}
	}
	if len(m.Buckets) == 0 {
		m.Buckets = nil
	}
	return m
}

// MergeAll folds any number of snapshots into one (see Merge).
func MergeAll(ss ...Snapshot) Snapshot {
	var m Snapshot
	for _, s := range ss {
		m = m.Merge(s)
	}
	return m
}

// Quantile returns a conservative (never underestimating) estimate of
// the q-quantile, q in [0,1]: the upper bound of the bucket holding the
// ceil(q·count)-th smallest observation. Returns 0 on an empty snapshot.
func (s Snapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for _, b := range s.Buckets {
		seen += b.Count
		if seen >= rank {
			// The histogram's max is exact; never report past it.
			if b.Upper > s.Max {
				return s.Max
			}
			return b.Upper
		}
	}
	return s.Max
}

// Mean returns the exact arithmetic mean of the observations (sums are
// tracked exactly, not from buckets). 0 on an empty snapshot.
func (s Snapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Summary is the JSON-friendly digest served by /stats: counts, exact
// mean/max and conservative p50/p95/p99/p999 in the unit that was
// observed (nanoseconds for latencies, items for batch sizes). P999 is
// what the ROADMAP's overload work steers by: at high load p99 hides
// the retry-inducing tail, p999 doesn't.
type Summary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P95   int64   `json:"p95"`
	P99   int64   `json:"p99"`
	P999  int64   `json:"p999"`
	Max   int64   `json:"max"`
}

// Summary digests the snapshot.
func (s Snapshot) Summary() Summary {
	return Summary{
		Count: s.Count,
		Mean:  s.Mean(),
		P50:   s.Quantile(0.50),
		P95:   s.Quantile(0.95),
		P99:   s.Quantile(0.99),
		P999:  s.Quantile(0.999),
		Max:   s.Max,
	}
}

// Summary is shorthand for h.Snapshot().Summary().
func (h *Histogram) Summary() Summary { return h.Snapshot().Summary() }
