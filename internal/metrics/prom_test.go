package metrics

import (
	"bytes"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// exactQuantile is the reference the histogram's conservative promise is
// checked against: the q-quantile by the same ceil-rank rule, computed
// on the sorted raw observations.
func exactQuantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted)) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// TestQuantileNeverUnderestimates is the histogram's core contract as a
// property test: for random value populations (spanning the exact unit
// buckets, the log-linear octaves, and huge values), every reported
// quantile is ≥ the exact quantile and within the documented 12.5%
// relative error — and both properties survive Merge.
func TestQuantileNeverUnderestimates(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	quantiles := []float64{0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1}
	for trial := 0; trial < 50; trial++ {
		var h1, h2 Histogram
		var values []int64
		n := 1 + rng.Intn(2000)
		for i := 0; i < n; i++ {
			var v int64
			switch rng.Intn(3) {
			case 0:
				v = rng.Int63n(16) // exact unit buckets
			case 1:
				v = rng.Int63n(1_000_000) // mid octaves
			default:
				v = rng.Int63n(1 << 50) // huge
			}
			values = append(values, v)
			if rng.Intn(2) == 0 {
				h1.Observe(v)
			} else {
				h2.Observe(v)
			}
		}
		sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
		merged := h1.Snapshot().Merge(h2.Snapshot())
		if merged.Count != uint64(len(values)) {
			t.Fatalf("trial %d: merged count %d, want %d", trial, merged.Count, len(values))
		}
		for _, q := range quantiles {
			got := merged.Quantile(q)
			exact := exactQuantile(values, q)
			if got < exact {
				t.Fatalf("trial %d: q=%v underestimated: got %d, exact %d", trial, q, got, exact)
			}
			// Conservative but bounded: bucket upper bound is within
			// 12.5% above the exact value (and clamped to the true max).
			if limit := exact + exact/8 + 1; got > limit && got > merged.Max {
				t.Fatalf("trial %d: q=%v overshot: got %d, exact %d", trial, q, got, exact)
			}
		}
		if merged.Quantile(1) != values[len(values)-1] {
			t.Fatalf("trial %d: q=1 must be the exact max", trial)
		}
	}
}

// rebuildSnapshot reconstructs a Snapshot from one parsed /metrics
// histogram series: de-cumulate the le buckets, take _count and _sum,
// and the exact max from the <name>_max rider gauge.
func rebuildSnapshot(t *testing.T, fams []*PromFamily, name string, labelSel map[string]string) Snapshot {
	t.Helper()
	match := func(ls map[string]string) bool {
		for k, v := range labelSel {
			if ls[k] != v {
				return false
			}
		}
		return true
	}
	var s Snapshot
	var prev float64
	for _, f := range fams {
		switch f.Name {
		case name:
			for _, smp := range f.Samples {
				if !match(smp.Labels) {
					continue
				}
				switch smp.Name {
				case name + "_bucket":
					le := smp.Labels["le"]
					if le == "+Inf" {
						continue
					}
					upper, err := strconv.ParseInt(le, 10, 64)
					if err != nil {
						t.Fatalf("bad le %q", le)
					}
					if c := smp.Value - prev; c > 0 {
						s.Buckets = append(s.Buckets, Bucket{Upper: upper, Count: uint64(c)})
					}
					prev = smp.Value
				case name + "_count":
					s.Count = uint64(smp.Value)
				case name + "_sum":
					s.Sum = int64(smp.Value)
				}
			}
		case name + "_max":
			for _, smp := range f.Samples {
				if match(smp.Labels) {
					s.Max = int64(smp.Value)
				}
			}
		}
	}
	return s
}

// TestPromExpositionRoundTrip pins the /metrics contract: writing a
// Snapshot through PromWriter.Histogram and re-deriving a Snapshot from
// the parsed cumulative-le exposition yields the same conservative
// quantiles — a scraper loses nothing against /stats.
func TestPromExpositionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		var h Histogram
		n := 1 + rng.Intn(500)
		for i := 0; i < n; i++ {
			h.Observe(rng.Int63n(1 << uint(10+rng.Intn(30))))
		}
		orig := h.Snapshot()

		var buf bytes.Buffer
		p := NewPromWriter(&buf)
		p.Histogram("dpu_test_latency_ns", `stage="x"`, orig)
		if err := p.Err(); err != nil {
			t.Fatal(err)
		}
		fams, err := ParseProm(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: exposition does not parse: %v\n%s", trial, err, buf.String())
		}
		re := rebuildSnapshot(t, fams, "dpu_test_latency_ns", map[string]string{"stage": "x"})
		if re.Count != orig.Count || re.Sum != orig.Sum || re.Max != orig.Max {
			t.Fatalf("trial %d: count/sum/max changed: %+v vs %+v", trial, re, orig)
		}
		for _, q := range []float64{0, 0.5, 0.95, 0.99, 0.999, 1} {
			if got, want := re.Quantile(q), orig.Quantile(q); got != want {
				t.Fatalf("trial %d: q=%v: re-derived %d, original %d", trial, q, got, want)
			}
		}
	}
}

func TestPromWriterCountersAndGauges(t *testing.T) {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Counter("dpu_requests_total", 42)
	p.Gauge("dpu_queue_depth", 7)
	p.GaugeLabeled("dpu_backend_up", `backend="http://a"`, 1)
	p.GaugeLabeled("dpu_backend_up", `backend="http://b"`, 0)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseProm(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	if len(fams) != 3 {
		t.Fatalf("got %d families, want 3", len(fams))
	}
	if fams[0].Name != "dpu_requests_total" || fams[0].Kind != "counter" || fams[0].Samples[0].Value != 42 {
		t.Fatalf("counter family %+v", fams[0])
	}
	if got := len(fams[2].Samples); got != 2 {
		t.Fatalf("labeled gauge has %d samples, want 2", got)
	}
	// One TYPE line per family, even with multiple samples.
	if n := strings.Count(buf.String(), "# TYPE dpu_backend_up"); n != 1 {
		t.Fatalf("%d TYPE lines for dpu_backend_up", n)
	}
}

func TestPromWriterRejectsRetypedFamily(t *testing.T) {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Counter("dpu_thing", 1)
	p.Gauge("dpu_thing", 2)
	if p.Err() == nil {
		t.Fatal("re-typing a family must error")
	}
}

func TestParsePromRejectsIncoherentHistogram(t *testing.T) {
	bad := []string{
		// _count disagrees with +Inf.
		"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 5\n",
		// Cumulative counts decrease.
		"# TYPE h histogram\nh_bucket{le=\"1\"} 3\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"+Inf\"} 3\nh_sum 3\nh_count 3\n",
		// No +Inf bucket.
		"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		// Sample without a TYPE.
		"orphan 1\n",
	}
	for i, body := range bad {
		if _, err := ParseProm(strings.NewReader(body)); err == nil {
			t.Errorf("case %d: parsed without error:\n%s", i, body)
		}
	}
}
