package metrics

import (
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestBucketRoundTrip pins the log-linear bucketing contract: every
// value maps to a bucket whose range contains it, indexes are monotone,
// and the relative error of the upper bound is within 12.5%.
func TestBucketRoundTrip(t *testing.T) {
	vals := []int64{0, 1, 2, 15, 16, 17, 31, 32, 100, 1000, 1 << 20, 1<<40 + 12345, 1 << 62}
	prev := -1
	for _, v := range vals {
		i := bucketIndex(v)
		if i < prev {
			t.Errorf("bucketIndex not monotone at %d: %d < %d", v, i, prev)
		}
		prev = i
		up := bucketUpper(i)
		if up < v {
			t.Errorf("bucketUpper(%d) = %d < value %d", i, up, v)
		}
		if v >= 16 && float64(up-v) > 0.125*float64(v) {
			t.Errorf("value %d: upper %d overshoots by more than 12.5%%", v, up)
		}
		if v < 16 && up != v {
			t.Errorf("small value %d not exact: upper %d", v, up)
		}
	}
	// Exhaustive containment for small values, where bucketing is exact.
	for v := int64(0); v < 4096; v++ {
		i := bucketIndex(v)
		if up := bucketUpper(i); up < v {
			t.Fatalf("bucketUpper(bucketIndex(%d)) = %d < %d", v, up, v)
		}
	}
}

func TestQuantilesAgainstSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var h Histogram
	vals := make([]int64, 5000)
	for i := range vals {
		vals[i] = rng.Int63n(1_000_000)
		h.Observe(vals[i])
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	s := h.Snapshot()
	if s.Count != uint64(len(vals)) {
		t.Fatalf("count = %d, want %d", s.Count, len(vals))
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		exact := vals[int(q*float64(len(vals)-1))]
		got := s.Quantile(q)
		if got < exact {
			t.Errorf("q%.2f = %d underestimates exact %d", q, got, exact)
		}
		if float64(got-exact) > 0.13*float64(exact)+1 {
			t.Errorf("q%.2f = %d overshoots exact %d beyond bucket error", q, got, exact)
		}
	}
	if s.Max != vals[len(vals)-1] {
		t.Errorf("max = %d, want %d", s.Max, vals[len(vals)-1])
	}
	var sum int64
	for _, v := range vals {
		sum += v
	}
	if s.Mean() != float64(sum)/float64(len(vals)) {
		t.Errorf("mean = %v, want exact %v", s.Mean(), float64(sum)/float64(len(vals)))
	}
}

// TestQuantileCeilRank pins the documented rank contract: the
// q-quantile is the bucket of the ceil(q·count)-th smallest observation.
// With 13 observations, q=0.95 → rank ceil(12.35)=13, the maximum; a
// rounding rank (12) would report the small cluster instead.
func TestQuantileCeilRank(t *testing.T) {
	var h Histogram
	for i := 0; i < 12; i++ {
		h.Observe(1000)
	}
	h.Observe(10_000_000_000)
	s := h.Snapshot()
	if got := s.Quantile(0.95); got != s.Max {
		t.Errorf("p95 of 12×1µs + 1×10s = %d, want the max %d (rank must ceil)", got, s.Max)
	}
	if got := s.Quantile(0.5); got >= 10_000_000_000 {
		t.Errorf("p50 = %d, want the small cluster", got)
	}
}

func TestEmptyAndEdgeSnapshots(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Quantile(0.99) != 0 || s.Mean() != 0 || s.Summary().Count != 0 {
		t.Errorf("empty histogram not all-zero: %+v", s.Summary())
	}
	h.Observe(-5) // clamps to 0
	h.Observe(0)
	s = h.Snapshot()
	if s.Count != 2 || s.Quantile(1) != 0 || s.Sum != 0 {
		t.Errorf("negative clamp: %+v", s)
	}
	h.ObserveDuration(2 * time.Millisecond)
	if got := h.Summary().Max; got != int64(2*time.Millisecond) {
		t.Errorf("ObserveDuration max = %d", got)
	}
}

// TestConcurrentObserve hammers one histogram from many goroutines; run
// under -race it proves Observe/Snapshot need no external locking, and
// the final count/sum must be exact (atomics lose nothing).
func TestConcurrentObserve(t *testing.T) {
	const workers, per = 8, 10000
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(w*per + i))
				if i%1000 == 0 {
					_ = h.Snapshot() // concurrent reader
				}
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Errorf("count = %d, want %d", s.Count, workers*per)
	}
	n := int64(workers * per)
	if s.Sum != n*(n-1)/2 {
		t.Errorf("sum = %d, want %d", s.Sum, n*(n-1)/2)
	}
	var bucketTotal uint64
	for _, b := range s.Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != s.Count {
		t.Errorf("bucket total %d != count %d", bucketTotal, s.Count)
	}
}

// TestSnapshotMerge pins the fleet-aggregation contract: merging two
// snapshots is byte-identical to one histogram that saw every
// observation, whatever the interleaving — so a gateway's merged
// quantiles are exact, not approximations of approximations.
func TestSnapshotMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var a, b, all Histogram
	for i := 0; i < 5000; i++ {
		v := rng.Int63n(1 << uint(rng.Intn(40)))
		if i%3 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		all.Observe(v)
	}
	got := a.Snapshot().Merge(b.Snapshot())
	want := all.Snapshot()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("merged snapshot diverges from combined histogram:\n got %+v\nwant %+v", got, want)
	}
	if gs, ws := got.Summary(), want.Summary(); gs != ws {
		t.Errorf("merged summary %+v != combined summary %+v", gs, ws)
	}

	// Merge with the empty snapshot is the identity; MergeAll folds.
	if !reflect.DeepEqual(want.Merge(Snapshot{}), want) {
		t.Error("merge with empty snapshot is not the identity")
	}
	if !reflect.DeepEqual(MergeAll(a.Snapshot(), b.Snapshot()), want) {
		t.Error("MergeAll diverges from pairwise Merge")
	}
	if !reflect.DeepEqual(MergeAll(), Snapshot{}) {
		t.Error("MergeAll() is not the zero snapshot")
	}
}
