package sptrsv

import "dpuv2/internal/dag"

// WorkloadSpec names a benchmark matrix and the Table I(b) DAG statistics
// its synthetic stand-in targets.
type WorkloadSpec struct {
	Name        string
	TargetNodes int // DAG nodes after lowering
	TargetDepth int // DAG longest path
}

// Suite lists the six SpTRSV workloads of Table I(b).
func Suite() []WorkloadSpec {
	return []WorkloadSpec{
		{"bp_200", 8_000, 139},
		{"west2021", 10_000, 136},
		{"sieber", 23_000, 242},
		{"jagmesh4", 44_000, 215},
		{"rdb968", 51_000, 278},
		{"dw2048", 79_000, 929},
	}
}

// Build generates the matrix for spec at the given scale, lowers it, and
// returns the DAG together with the matrix (for reference solves). The
// Leveled generator gives direct control over the dependency depth; the
// DAG's longest path is ≈3 nodes per level (mul, add, scale-mul), so the
// level count is derived from TargetDepth/3 and the row count from the
// ≈4.4 DAG-nodes-per-row cost of two off-diagonal dependencies.
func Build(spec WorkloadSpec, scale float64) (*dag.Graph, *CSR) {
	if scale <= 0 {
		scale = 1
	}
	seed := int64(0)
	for _, c := range spec.Name {
		seed = seed*137 + int64(c)
	}
	target := int(float64(spec.TargetNodes) * scale)
	if target < 64 {
		target = 64
	}
	const deps = 2
	// Per row: 1 input + deps consts + deps muls + 1 add + 1 inv const +
	// 1 scale mul ≈ 2*deps + 4 nodes.
	n := target / (2*deps + 4)
	if n < 8 {
		n = 8
	}
	levels := spec.TargetDepth / 3
	if levels < 1 {
		levels = 1
	}
	if levels > n {
		levels = n
	}
	m := Leveled(n, levels, deps, seed)
	g, _ := Lower(m)
	g.Name = spec.Name
	return g, m
}
