// Package sptrsv provides sparse-matrix triangular-solve workloads: a
// compressed-sparse-row matrix type, synthetic sparsity-pattern
// generators standing in for the SuiteSparse matrices of Table I(b), a
// dense reference solver, and the lowering of a forward substitution into
// a {+,×}-only DAG executable by DPU-v2.
package sptrsv

import (
	"fmt"
	"math/rand"
	"sort"
)

// CSR is a square sparse matrix in compressed-sparse-row form. For
// triangular solves the matrix must be lower triangular with a nonzero
// diagonal; LowerTriangular generators guarantee that and Validate checks
// it.
type CSR struct {
	N      int
	RowPtr []int32 // length N+1
	Col    []int32 // length nnz, ascending within each row
	Val    []float64
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Col) }

// Validate checks CSR structural invariants plus lower-triangularity with
// a nonzero diagonal as the last entry of every row.
func (m *CSR) Validate() error {
	if m.N < 1 {
		return fmt.Errorf("sptrsv: empty matrix")
	}
	if len(m.RowPtr) != m.N+1 {
		return fmt.Errorf("sptrsv: RowPtr length %d, want %d", len(m.RowPtr), m.N+1)
	}
	if m.RowPtr[0] != 0 || int(m.RowPtr[m.N]) != len(m.Col) || len(m.Col) != len(m.Val) {
		return fmt.Errorf("sptrsv: inconsistent RowPtr/Col/Val")
	}
	for i := 0; i < m.N; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		if lo > hi {
			return fmt.Errorf("sptrsv: row %d has negative extent", i)
		}
		if lo == hi {
			return fmt.Errorf("sptrsv: row %d empty (zero diagonal)", i)
		}
		for k := lo; k < hi; k++ {
			c := m.Col[k]
			if c < 0 || int(c) > i {
				return fmt.Errorf("sptrsv: entry (%d,%d) above diagonal", i, c)
			}
			if k > lo && c <= m.Col[k-1] {
				return fmt.Errorf("sptrsv: row %d columns not ascending", i)
			}
		}
		if int(m.Col[hi-1]) != i {
			return fmt.Errorf("sptrsv: row %d missing diagonal", i)
		}
		if m.Val[hi-1] == 0 {
			return fmt.Errorf("sptrsv: row %d zero diagonal value", i)
		}
	}
	return nil
}

// Solve performs the reference forward substitution L·x = b and returns x.
func (m *CSR) Solve(b []float64) ([]float64, error) {
	if len(b) != m.N {
		return nil, fmt.Errorf("sptrsv: rhs length %d, want %d", len(b), m.N)
	}
	x := make([]float64, m.N)
	for i := 0; i < m.N; i++ {
		acc := b[i]
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		for k := lo; k < hi-1; k++ {
			acc -= m.Val[k] * x[m.Col[k]]
		}
		x[i] = acc / m.Val[hi-1]
	}
	return x, nil
}

// MulVec computes y = L·x, used by tests to verify Solve/DAG round trips.
func (m *CSR) MulVec(x []float64) []float64 {
	y := make([]float64, m.N)
	for i := 0; i < m.N; i++ {
		var acc float64
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			acc += m.Val[k] * x[m.Col[k]]
		}
		y[i] = acc
	}
	return y
}

// FootprintBytes returns the memory footprint of the CSR structure with
// 4-byte indices and 4-byte values, the conventional layout the paper
// compares its instruction stream against in §IV-E.
func (m *CSR) FootprintBytes() int {
	return 4*len(m.RowPtr) + 4*len(m.Col) + 4*len(m.Val)
}

type builderRow struct {
	cols []int32
	vals []float64
}

// buildCSR assembles rows (each already containing the diagonal) into CSR
// form, sorting columns ascending.
func buildCSR(rows []builderRow) *CSR {
	m := &CSR{N: len(rows), RowPtr: make([]int32, len(rows)+1)}
	for i := range rows {
		r := &rows[i]
		idx := make([]int, len(r.cols))
		for j := range idx {
			idx[j] = j
		}
		sort.Slice(idx, func(a, b int) bool { return r.cols[idx[a]] < r.cols[idx[b]] })
		for _, j := range idx {
			m.Col = append(m.Col, r.cols[j])
			m.Val = append(m.Val, r.vals[j])
		}
		m.RowPtr[i+1] = int32(len(m.Col))
	}
	return m
}

func randVal(rng *rand.Rand) float64 {
	v := 0.1 + 0.9*rng.Float64()
	if rng.Intn(2) == 0 {
		v = -v
	}
	return v
}

// Band generates an n×n lower-triangular banded matrix: each row has the
// diagonal plus up to fill off-diagonals drawn from the preceding
// bandwidth columns. Band patterns give long dependency chains, like the
// dw2048 matrix in the paper's suite.
func Band(n, bandwidth, fill int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]builderRow, n)
	for i := 0; i < n; i++ {
		seen := map[int32]bool{}
		for k := 0; k < fill && i > 0; k++ {
			lo := i - bandwidth
			if lo < 0 {
				lo = 0
			}
			c := int32(lo + rng.Intn(i-lo))
			if !seen[c] {
				seen[c] = true
				rows[i].cols = append(rows[i].cols, c)
				rows[i].vals = append(rows[i].vals, randVal(rng))
			}
		}
		// Diagonal dominant enough to keep the solve well conditioned.
		rows[i].cols = append(rows[i].cols, int32(i))
		rows[i].vals = append(rows[i].vals, 2+rng.Float64())
	}
	return buildCSR(rows)
}

// Mesh2D generates the lower factor sparsity of a 5-point finite
// difference stencil on an nx×ny grid (entries at (i,i−1) and (i,i−nx)),
// resembling the jagmesh-style matrices of the suite.
func Mesh2D(nx, ny int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	n := nx * ny
	rows := make([]builderRow, n)
	for i := 0; i < n; i++ {
		if i%nx != 0 {
			rows[i].cols = append(rows[i].cols, int32(i-1))
			rows[i].vals = append(rows[i].vals, randVal(rng))
		}
		if i >= nx {
			rows[i].cols = append(rows[i].cols, int32(i-nx))
			rows[i].vals = append(rows[i].vals, randVal(rng))
		}
		rows[i].cols = append(rows[i].cols, int32(i))
		rows[i].vals = append(rows[i].vals, 4+rng.Float64())
	}
	return buildCSR(rows)
}

// Leveled generates a lower-triangular matrix with an explicit level
// structure: rows are split into nLevels groups and each row in level k
// depends on deps random rows from earlier levels (biased to level k−1).
// This gives direct control over the dependency-chain length, which is
// how the synthetic suite matches the longest-path column of Table I(b).
func Leveled(n, nLevels, deps int, seed int64) *CSR {
	if nLevels < 1 {
		nLevels = 1
	}
	if nLevels > n {
		nLevels = n
	}
	rng := rand.New(rand.NewSource(seed))
	rows := make([]builderRow, n)
	perLevel := n / nLevels
	if perLevel < 1 {
		perLevel = 1
	}
	levelOf := func(i int) int {
		l := i / perLevel
		if l >= nLevels {
			l = nLevels - 1
		}
		return l
	}
	for i := 0; i < n; i++ {
		l := levelOf(i)
		seen := map[int32]bool{}
		if l > 0 {
			// One guaranteed dependency on the previous level keeps the
			// critical path at exactly nLevels rows.
			lo, hi := (l-1)*perLevel, l*perLevel
			c := int32(lo + rng.Intn(hi-lo))
			seen[c] = true
			rows[i].cols = append(rows[i].cols, c)
			rows[i].vals = append(rows[i].vals, randVal(rng))
			for k := 1; k < deps; k++ {
				// Real matrices are strongly banded: extra dependencies
				// come from a recent window of rows, not uniformly from
				// the whole history.
				win := 4 * perLevel
				if win > hi {
					win = hi
				}
				c := int32(hi - 1 - rng.Intn(win))
				if !seen[c] {
					seen[c] = true
					rows[i].cols = append(rows[i].cols, c)
					rows[i].vals = append(rows[i].vals, randVal(rng))
				}
			}
		}
		rows[i].cols = append(rows[i].cols, int32(i))
		rows[i].vals = append(rows[i].vals, 2+rng.Float64())
	}
	return buildCSR(rows)
}
