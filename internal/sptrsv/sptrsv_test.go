package sptrsv

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dpuv2/internal/dag"
)

func generators() map[string]*CSR {
	return map[string]*CSR{
		"band":    Band(200, 8, 3, 1),
		"mesh2d":  Mesh2D(16, 12, 2),
		"leveled": Leveled(300, 40, 2, 3),
	}
}

func TestGeneratorsValidate(t *testing.T) {
	for name, m := range generators() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestSolveInvertsMulVec(t *testing.T) {
	for name, m := range generators() {
		rng := rand.New(rand.NewSource(7))
		x := make([]float64, m.N)
		for i := range x {
			x[i] = rng.Float64()*2 - 1
		}
		b := m.MulVec(x)
		got, err := m.Solve(b)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-8*(1+math.Abs(x[i])) {
				t.Fatalf("%s: x[%d] = %v, want %v", name, i, got[i], x[i])
			}
		}
	}
}

func TestSolveRejectsBadRHS(t *testing.T) {
	m := Band(10, 2, 1, 1)
	if _, err := m.Solve(make([]float64, 9)); err == nil {
		t.Fatal("expected length error")
	}
}

func TestLowerMatchesSolve(t *testing.T) {
	for name, m := range generators() {
		g, xs := Lower(m)
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rng := rand.New(rand.NewSource(13))
		b := make([]float64, m.N)
		for i := range b {
			b[i] = rng.Float64()*4 - 2
		}
		want, err := m.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		vals, err := dag.Eval(g, b)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i, id := range xs {
			if math.Abs(vals[id]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("%s: x[%d] = %v via DAG, %v via solve", name, i, vals[id], want[i])
			}
		}
	}
}

func TestLowerAllExposesEveryComponent(t *testing.T) {
	m := Mesh2D(10, 8, 3)
	g, xs := LowerAll(m)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		if g.Fanout(x) != 0 {
			t.Fatalf("x[%d] is not observable (fanout %d)", i, g.Fanout(x))
		}
	}
	rng := rand.New(rand.NewSource(4))
	b := make([]float64, m.N)
	for i := range b {
		b[i] = rng.Float64()
	}
	want, _ := m.Solve(b)
	vals, err := dag.Eval(g, b)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		if math.Abs(vals[x]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("x[%d] = %v, want %v", i, vals[x], want[i])
		}
	}
}

func TestLowerOpsAreAddMulOnly(t *testing.T) {
	m := Mesh2D(8, 8, 5)
	g, _ := Lower(m)
	for i := 0; i < g.NumNodes(); i++ {
		switch g.Op(dag.NodeID(i)) {
		case dag.OpInput, dag.OpConst, dag.OpAdd, dag.OpMul:
		default:
			t.Fatalf("node %d has op %v", i, g.Op(dag.NodeID(i)))
		}
	}
}

func TestLeveledDepthControl(t *testing.T) {
	shallow := Leveled(1000, 10, 2, 1)
	deep := Leveled(1000, 200, 2, 1)
	gs, _ := Lower(shallow)
	gd, _ := Lower(deep)
	ss, sd := dag.ComputeStats(gs), dag.ComputeStats(gd)
	if sd.LongestPath <= ss.LongestPath {
		t.Fatalf("more levels should be deeper: %d vs %d", sd.LongestPath, ss.LongestPath)
	}
}

func TestSuiteTargets(t *testing.T) {
	for _, spec := range Suite() {
		g, m := Build(spec, 1.0)
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		st := dag.ComputeStats(g)
		lo, hi := int(0.5*float64(spec.TargetNodes)), int(1.6*float64(spec.TargetNodes))
		if st.Nodes < lo || st.Nodes > hi {
			t.Errorf("%s: nodes = %d, want within [%d,%d]", spec.Name, st.Nodes, lo, hi)
		}
		if st.LongestPath < spec.TargetDepth/2 || st.LongestPath > spec.TargetDepth*2 {
			t.Errorf("%s: depth = %d, target %d", spec.Name, st.LongestPath, spec.TargetDepth)
		}
	}
}

func TestValidateCatchesUpperTriangular(t *testing.T) {
	m := &CSR{N: 2, RowPtr: []int32{0, 2, 3}, Col: []int32{0, 1, 1}, Val: []float64{1, 1, 1}}
	if err := m.Validate(); err == nil {
		t.Fatal("expected error for above-diagonal entry")
	}
}

func TestValidateCatchesMissingDiagonal(t *testing.T) {
	m := &CSR{N: 2, RowPtr: []int32{0, 1, 2}, Col: []int32{0, 0}, Val: []float64{1, 1}}
	if err := m.Validate(); err == nil {
		t.Fatal("expected error for missing diagonal")
	}
}

func TestFootprintBytes(t *testing.T) {
	m := Band(100, 4, 2, 1)
	want := 4*(m.N+1) + 8*m.NNZ()
	if got := m.FootprintBytes(); got != want {
		t.Fatalf("FootprintBytes = %d, want %d", got, want)
	}
}

// Property: Lower∘Solve agreement holds across random leveled matrices.
func TestLowerSolveProperty(t *testing.T) {
	f := func(seed int64, n8, lv8 uint8) bool {
		n := 20 + int(n8)
		levels := 2 + int(lv8)%30
		m := Leveled(n, levels, 2, seed)
		if m.Validate() != nil {
			return false
		}
		g, xs := Lower(m)
		rng := rand.New(rand.NewSource(seed ^ 99))
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.Float64()*2 - 1
		}
		want, err := m.Solve(b)
		if err != nil {
			return false
		}
		vals, err := dag.Eval(g, b)
		if err != nil {
			return false
		}
		for i, id := range xs {
			if math.Abs(vals[id]-want[i]) > 1e-8*(1+math.Abs(want[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
