package sptrsv

import "dpuv2/internal/dag"

// Lower translates the forward substitution L·x = b into a DAG whose only
// arithmetic ops are + and ×, matching the DPU-v2 PE capabilities:
//
//	x_i = (b_i + Σ_{j<i} (−L_ij)·x_j) · (1/L_ii)
//
// The negations and reciprocal are folded into constant leaves at lowering
// time (the sparsity pattern and values are static across executions in
// the paper's use cases, so this is a compile-time transform). The right-
// hand side b enters as the DAG's OpInput leaves in row order, and the
// solution x_i is the value of the returned xs[i] node.
func Lower(m *CSR) (g *dag.Graph, xs []dag.NodeID) {
	g = dag.New("sptrsv")
	b := make([]dag.NodeID, m.N)
	for i := range b {
		b[i] = g.AddInput()
	}
	xs = make([]dag.NodeID, m.N)
	for i := 0; i < m.N; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		args := make([]dag.NodeID, 0, hi-lo)
		args = append(args, b[i])
		for k := lo; k < hi-1; k++ {
			c := g.AddConst(-m.Val[k])
			args = append(args, g.AddOp(dag.OpMul, c, xs[m.Col[k]]))
		}
		acc := args[0]
		if len(args) > 1 {
			acc = g.AddOp(dag.OpAdd, args...)
		}
		inv := g.AddConst(1 / m.Val[hi-1])
		xs[i] = g.AddOp(dag.OpMul, acc, inv)
	}
	return g, xs
}

// LowerAll is Lower with every solution component observable: x_i that
// are consumed by later rows (and therefore are not DAG sinks) get an
// extra ×1 tap node whose output is a sink, so the compiler stores the
// full solution vector to data memory. The returned xs point at the
// observable nodes.
func LowerAll(m *CSR) (g *dag.Graph, xs []dag.NodeID) {
	g, xs = Lower(m)
	var one dag.NodeID = dag.InvalidNode
	for i, x := range xs {
		if g.Fanout(x) == 0 {
			continue
		}
		if one == dag.InvalidNode {
			one = g.AddConst(1)
		}
		xs[i] = g.AddOp(dag.OpMul, x, one)
	}
	return g, xs
}
