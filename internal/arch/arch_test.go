package arch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConfigDerived(t *testing.T) {
	c := MinEDP()
	if c.Trees() != 8 {
		t.Errorf("Trees = %d, want 8", c.Trees())
	}
	if c.NumPEs() != 8*7 {
		t.Errorf("NumPEs = %d, want 56", c.NumPEs())
	}
	if c.TreeInputs() != 8 {
		t.Errorf("TreeInputs = %d, want 8", c.TreeInputs())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidateRejects(t *testing.T) {
	bad := []Config{
		{D: 0, B: 8, R: 16},
		{D: 3, B: 4, R: 16},  // B < 2^D
		{D: 2, B: 10, R: 16}, // not a multiple
		{D: 2, B: 8, R: 1},
		{D: 7, B: 256, R: 16},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%v) should fail", c)
		}
	}
}

func TestDSEGridValidates(t *testing.T) {
	// Every point of the paper's 48-combination sweep (fig. 11) that
	// satisfies B ≥ 2^D must validate.
	n := 0
	for _, d := range []int{1, 2, 3} {
		for _, b := range []int{8, 16, 32, 64} {
			for _, r := range []int{16, 32, 64, 128} {
				c := Config{D: d, B: b, R: r, Output: OutPerLayer}
				if err := c.Validate(); err != nil {
					t.Errorf("grid point %v: %v", c, err)
				}
				n++
			}
		}
	}
	if n != 48 {
		t.Fatalf("grid has %d points, want 48", n)
	}
}

func TestPEIDRoundTrip(t *testing.T) {
	for _, cfg := range []Config{MinEDP(), {D: 1, B: 8, R: 16}, {D: 2, B: 32, R: 16}} {
		for id := 0; id < cfg.NumPEs(); id++ {
			p := cfg.PECoord(id)
			if got := cfg.PEID(p); got != id {
				t.Fatalf("%v: PEID(PECoord(%d)) = %d", cfg, id, got)
			}
			if p.Layer < 1 || p.Layer > cfg.D || p.Index < 0 || p.Index >= cfg.LayerWidth(p.Layer) {
				t.Fatalf("%v: bad coord %+v", cfg, p)
			}
		}
	}
}

func TestTreeStructure(t *testing.T) {
	cfg := Config{D: 3, B: 16, R: 32, Output: OutPerLayer}.Normalize()
	root := PE{Tree: 1, Layer: 3, Index: 0}
	l, r, ok := cfg.Children(root)
	if !ok || l.Layer != 2 || r.Index != 1 {
		t.Fatalf("Children(root) = %v %v %v", l, r, ok)
	}
	if _, _, ok := cfg.Children(PE{Tree: 0, Layer: 1, Index: 0}); ok {
		t.Fatal("leaf PEs have no children")
	}
	if p, ok := cfg.Parent(l); !ok || p != root {
		t.Fatalf("Parent = %v %v", p, ok)
	}
	if _, ok := cfg.Parent(root); ok {
		t.Fatal("root has no parent")
	}
	a, b := cfg.InputPorts(PE{Tree: 1, Layer: 1, Index: 2})
	if a != 8+4 || b != 8+5 {
		t.Fatalf("InputPorts = %d,%d", a, b)
	}
	pe, side := cfg.LeafPortPE(13)
	if pe != (PE{Tree: 1, Layer: 1, Index: 2}) || side != 1 {
		t.Fatalf("LeafPortPE(13) = %v,%d", pe, side)
	}
}

func TestPerLayerTopologyInvariants(t *testing.T) {
	cfg := Config{D: 3, B: 32, R: 32, Output: OutPerLayer}.Normalize()
	for bank := 0; bank < cfg.B; bank++ {
		perLayer := make(map[int]int)
		for id := 0; id < cfg.NumPEs(); id++ {
			p := cfg.PECoord(id)
			if cfg.CanWrite(p, bank) {
				perLayer[p.Layer]++
			}
		}
		// Fig. 6(b): exactly one PE per layer per bank.
		for l := 1; l <= cfg.D; l++ {
			if perLayer[l] != 1 {
				t.Fatalf("bank %d layer %d has %d writers, want 1", bank, l, perLayer[l])
			}
		}
	}
	// Each PE of layer l reaches exactly 2^l banks, all within its tree.
	for id := 0; id < cfg.NumPEs(); id++ {
		p := cfg.PECoord(id)
		banks := cfg.WritableBanks(p)
		if len(banks) != 1<<uint(p.Layer) {
			t.Fatalf("PE %+v writes %d banks, want %d", p, len(banks), 1<<uint(p.Layer))
		}
		for _, b := range banks {
			if b/cfg.TreeInputs() != p.Tree {
				t.Fatalf("PE %+v writes bank %d outside its tree", p, b)
			}
			if !cfg.CanWrite(p, b) {
				t.Fatalf("WritableBanks inconsistent with CanWrite")
			}
		}
	}
}

func TestCrossbarTopology(t *testing.T) {
	cfg := Config{D: 2, B: 8, R: 16, Output: OutCrossbar}.Normalize()
	for id := 0; id < cfg.NumPEs(); id++ {
		if got := len(cfg.WritableBanks(cfg.PECoord(id))); got != cfg.B {
			t.Fatalf("crossbar PE %d writes %d banks", id, got)
		}
	}
}

func TestPerPETopology(t *testing.T) {
	cfg := Config{D: 2, B: 8, R: 16, Output: OutPerPE}.Normalize()
	// Every bank must have exactly one writer; the spare bank of each
	// tree group attaches to the root.
	for bank := 0; bank < cfg.B; bank++ {
		writers := 0
		for id := 0; id < cfg.NumPEs(); id++ {
			if cfg.CanWrite(cfg.PECoord(id), bank) {
				writers++
			}
		}
		if writers != 1 {
			t.Fatalf("bank %d has %d writers, want 1", bank, writers)
		}
	}
	root := PE{Tree: 0, Layer: 2, Index: 0}
	if got := len(cfg.WritableBanks(root)); got != 2 {
		t.Fatalf("root writes %d banks, want 2 (own + spare)", got)
	}
}

func TestWriteSelRoundTrip(t *testing.T) {
	for _, topo := range []OutputTopology{OutCrossbar, OutPerLayer, OutPerPE} {
		cfg := Config{D: 3, B: 16, R: 32, Output: topo}.Normalize()
		for id := 0; id < cfg.NumPEs(); id++ {
			p := cfg.PECoord(id)
			for _, bank := range cfg.WritableBanks(p) {
				sel, err := cfg.WriteSel(bank, p)
				if err != nil {
					t.Fatalf("%v: %v", topo, err)
				}
				if got := cfg.SelPE(bank, sel); got != p {
					t.Fatalf("%v: SelPE(%d,%d) = %+v, want %+v", topo, bank, sel, got, p)
				}
			}
		}
	}
}

func TestWriteSelRejectsIllegal(t *testing.T) {
	cfg := Config{D: 3, B: 16, R: 32, Output: OutPerLayer}.Normalize()
	// Leaf PE 0 of tree 0 writes banks {0,1} only; bank 5 must fail.
	if _, err := cfg.WriteSel(5, PE{Tree: 0, Layer: 1, Index: 0}); err == nil {
		t.Fatal("expected illegal-write error")
	}
}

func TestWidthsMatchPaperExample(t *testing.T) {
	// Fig. 7 gives example lengths for D=3, B=16, R=32: nop=4, load=52,
	// store=132, store_4=56, copy_4=72, exec=272. Our encoding is not
	// bit-identical but must land in the same regime and ordering.
	cfg := Config{D: 3, B: 16, R: 32, Output: OutPerLayer}.Normalize()
	w := WidthsOf(cfg)
	if w.Nop != 3 && w.Nop != 4 {
		t.Errorf("Nop width = %d", w.Nop)
	}
	if w.Exec < 200 || w.Exec > 340 {
		t.Errorf("Exec width = %d, want ≈272", w.Exec)
	}
	if w.Load < 30 || w.Load > 70 {
		t.Errorf("Load width = %d, want ≈52", w.Load)
	}
	if w.Store < 100 || w.Store > 170 {
		t.Errorf("Store width = %d, want ≈132", w.Store)
	}
	if !(w.Nop < w.Load && w.Load < w.Store && w.Store < w.Exec) {
		t.Errorf("length ordering violated: %+v", w)
	}
	if w.IL != w.Exec {
		t.Errorf("IL = %d, want exec length %d", w.IL, w.Exec)
	}
}

func TestBitWriterReaderRoundTrip(t *testing.T) {
	f := func(vals []uint16, widths []uint8) bool {
		var bw BitWriter
		n := len(vals)
		if len(widths) < n {
			n = len(widths)
		}
		type field struct {
			v uint64
			w int
		}
		var fields []field
		for i := 0; i < n; i++ {
			w := 1 + int(widths[i]%16)
			v := uint64(vals[i]) & ((1 << uint(w)) - 1)
			fields = append(fields, field{v, w})
			bw.Put(v, w)
		}
		br := NewBitReader(bw.Bytes())
		for _, f := range fields {
			if br.Take(f.w) != f.v {
				return false
			}
		}
		return !br.Overrun
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBitReaderOverrun(t *testing.T) {
	br := NewBitReader([]byte{0xFF})
	br.Take(8)
	if br.Overrun {
		t.Fatal("no overrun yet")
	}
	br.Take(1)
	if !br.Overrun {
		t.Fatal("overrun not flagged")
	}
}

func randomInstr(rng *rand.Rand, cfg Config) *Instr {
	switch rng.Intn(6) {
	case 0:
		return &Instr{Kind: KindNop}
	case 1:
		in := NewExec(cfg)
		for i := range in.PEOps {
			in.PEOps[i] = PEOp(rng.Intn(numPEOps))
		}
		for b := 0; b < cfg.B; b++ {
			in.ReadEn[b] = rng.Intn(2) == 0
			in.ReadAddr[b] = uint16(rng.Intn(cfg.R))
			in.ValidRst[b] = rng.Intn(2) == 0
			in.InputSel[b] = uint16(rng.Intn(cfg.B))
			if rng.Intn(2) == 0 {
				// Pick a legal writer for this bank.
				var cands []PE
				for id := 0; id < cfg.NumPEs(); id++ {
					if p := cfg.PECoord(id); cfg.CanWrite(p, b) {
						cands = append(cands, p)
					}
				}
				p := cands[rng.Intn(len(cands))]
				sel, _ := cfg.WriteSel(b, p)
				in.WriteEn[b] = true
				in.WriteSel[b] = sel
			}
		}
		return in
	case 2:
		in := NewLoad(cfg, rng.Intn(cfg.DataMemWords/cfg.B))
		for b := range in.Mask {
			in.Mask[b] = rng.Intn(2) == 0
		}
		return in
	case 3:
		in := NewStore(cfg, rng.Intn(cfg.DataMemWords/cfg.B))
		for b := 0; b < cfg.B; b++ {
			in.ReadEn[b] = rng.Intn(2) == 0
			in.ReadAddr[b] = uint16(rng.Intn(cfg.R))
			in.ValidRst[b] = rng.Intn(2) == 0
		}
		return in
	default:
		k := KindCopy
		memAddr := 0
		if rng.Intn(2) == 0 {
			k = KindStore4
			memAddr = rng.Intn(cfg.DataMemWords / cfg.B)
		}
		in := &Instr{Kind: k, MemAddr: memAddr}
		for i := 0; i < 1+rng.Intn(MaxMoves); i++ {
			in.Moves = append(in.Moves, Move{
				SrcBank: uint16(rng.Intn(cfg.B)),
				SrcAddr: uint16(rng.Intn(cfg.R)),
				Dst:     uint16(rng.Intn(cfg.B)),
				Rst:     rng.Intn(2) == 0,
			})
		}
		return in
	}
}

func instrEqual(a, b *Instr) bool {
	if a.Kind != b.Kind || a.MemAddr != b.MemAddr || len(a.Moves) != len(b.Moves) {
		return false
	}
	eqB := func(x, y []bool) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	eqU := func(x, y []uint16) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	for i := range a.Moves {
		if a.Moves[i] != b.Moves[i] {
			return false
		}
	}
	if len(a.PEOps) != len(b.PEOps) {
		return false
	}
	for i := range a.PEOps {
		if a.PEOps[i] != b.PEOps[i] {
			return false
		}
	}
	return eqB(a.ReadEn, b.ReadEn) && eqU(a.ReadAddr, b.ReadAddr) &&
		eqB(a.ValidRst, b.ValidRst) && eqU(a.InputSel, b.InputSel) &&
		eqB(a.WriteEn, b.WriteEn) && eqU(a.WriteSel, b.WriteSel) &&
		eqB(a.Mask, b.Mask)
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, topo := range []OutputTopology{OutCrossbar, OutPerLayer, OutPerPE} {
		cfg := Config{D: 3, B: 16, R: 32, Output: topo}.Normalize()
		rng := rand.New(rand.NewSource(42))
		p := NewProgram(cfg)
		for i := 0; i < 200; i++ {
			in := randomInstr(rng, cfg)
			if err := p.Append(in); err != nil {
				t.Fatalf("%v: append %v: %v", topo, in.Kind, err)
			}
		}
		packed := p.Pack()
		if got, want := len(packed), (p.BitSize()+7)/8; got != want {
			t.Fatalf("%v: packed %d bytes, want %d", topo, got, want)
		}
		back, err := Unpack(packed, cfg, len(p.Instrs))
		if err != nil {
			t.Fatal(err)
		}
		for i := range back {
			if !instrEqual(p.Instrs[i], back[i]) {
				t.Fatalf("%v: instruction %d (%v) did not round trip", topo, i, p.Instrs[i].Kind)
			}
		}
	}
}

func TestDecodeLengthsMatchWidths(t *testing.T) {
	cfg := MinEDP()
	w := WidthsOf(cfg)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		in := randomInstr(rng, cfg)
		var bw BitWriter
		Encode(in, cfg, w, &bw)
		if bw.Bits() != w.Len(in.Kind) {
			t.Fatalf("%v encoded to %d bits, Widths says %d", in.Kind, bw.Bits(), w.Len(in.Kind))
		}
		br := NewBitReader(bw.Bytes())
		if _, err := Decode(br, cfg, w); err != nil {
			t.Fatal(err)
		}
		if br.Pos() != w.Len(in.Kind) {
			t.Fatalf("%v decode consumed %d bits, want %d", in.Kind, br.Pos(), w.Len(in.Kind))
		}
	}
}

func TestInstrValidateCatchesErrors(t *testing.T) {
	cfg := Config{D: 2, B: 8, R: 16, Output: OutPerLayer}.Normalize()
	in := NewExec(cfg)
	in.ReadEn[0] = true
	in.ReadAddr[0] = uint16(cfg.R) // out of range
	if err := in.Validate(cfg); err == nil {
		t.Error("expected read-addr error")
	}
	in2 := NewExec(cfg)
	in2.WriteEn[0] = true
	in2.WriteSel[0] = uint16(cfg.D) // illegal layer select
	if err := in2.Validate(cfg); err == nil {
		t.Error("expected write-sel error")
	}
	in3 := &Instr{Kind: KindCopy}
	if err := in3.Validate(cfg); err == nil {
		t.Error("expected empty-moves error")
	}
	in4 := NewLoad(cfg, cfg.DataMemWords) // out of range row
	if err := in4.Validate(cfg); err == nil {
		t.Error("expected mem range error")
	}
}

func TestFixedWriteAddrBitsLarger(t *testing.T) {
	cfg := MinEDP()
	rng := rand.New(rand.NewSource(3))
	p := NewProgram(cfg)
	for i := 0; i < 300; i++ {
		p.MustAppend(randomInstr(rng, cfg))
	}
	if p.FixedWriteAddrBits() <= p.BitSize() {
		t.Fatalf("explicit write addresses should cost more: %d vs %d",
			p.FixedWriteAddrBits(), p.BitSize())
	}
}

func TestKindAndPEOpStrings(t *testing.T) {
	if KindExec.String() != "exec" || KindCopy.String() != "copy_4" {
		t.Error("kind strings wrong")
	}
	if PEAdd.String() != "add" || PEBypassR.String() != "bypr" {
		t.Error("peop strings wrong")
	}
}
