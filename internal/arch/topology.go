package arch

import "fmt"

// PE identifies a processing element by tree, layer and index. Layers
// count from 1 at the leaf layer (which reads the input ports) to D at the
// root; layer l of a tree holds 2^(D−l) PEs.
type PE struct {
	Tree  int
	Layer int
	Index int
}

// PEID flattens a PE coordinate into a dense id in [0, NumPEs): trees are
// laid out consecutively, and within a tree the leaf layer comes first.
func (c Config) PEID(p PE) int {
	perTree := (1 << uint(c.D)) - 1
	id := p.Tree * perTree
	// Offset of layer l within the tree: sum of 2^(D-k) for k<l.
	for k := 1; k < p.Layer; k++ {
		id += 1 << uint(c.D-k)
	}
	return id + p.Index
}

// PECoord is the inverse of PEID.
func (c Config) PECoord(id int) PE {
	perTree := (1 << uint(c.D)) - 1
	p := PE{Tree: id / perTree}
	rem := id % perTree
	for l := 1; l <= c.D; l++ {
		w := 1 << uint(c.D-l)
		if rem < w {
			p.Layer, p.Index = l, rem
			return p
		}
		rem -= w
	}
	panic(fmt.Sprintf("arch: PE id %d out of range", id))
}

// LayerWidth returns the number of PEs in layer l of one tree.
func (c Config) LayerWidth(l int) int { return 1 << uint(c.D-l) }

// Children returns the two PEs feeding p, or ok=false for leaf-layer PEs
// (whose operands come from the input ports).
func (c Config) Children(p PE) (left, right PE, ok bool) {
	if p.Layer <= 1 {
		return PE{}, PE{}, false
	}
	left = PE{Tree: p.Tree, Layer: p.Layer - 1, Index: 2 * p.Index}
	right = PE{Tree: p.Tree, Layer: p.Layer - 1, Index: 2*p.Index + 1}
	return left, right, true
}

// Parent returns the PE consuming p's output, or ok=false for roots.
func (c Config) Parent(p PE) (PE, bool) {
	if p.Layer >= c.D {
		return PE{}, false
	}
	return PE{Tree: p.Tree, Layer: p.Layer + 1, Index: p.Index / 2}, true
}

// InputPorts returns the two global input-port indices read by a
// leaf-layer PE. Ports are numbered 0..B−1; tree t owns ports
// [t·2^D, (t+1)·2^D).
func (c Config) InputPorts(p PE) (int, int) {
	if p.Layer != 1 {
		panic("arch: InputPorts on non-leaf PE")
	}
	base := p.Tree*c.TreeInputs() + 2*p.Index
	return base, base + 1
}

// LeafPortPE returns the leaf PE reading global input port port and
// whether the port is that PE's left (0) or right (1) operand.
func (c Config) LeafPortPE(port int) (PE, int) {
	tree := port / c.TreeInputs()
	within := port % c.TreeInputs()
	return PE{Tree: tree, Layer: 1, Index: within / 2}, within % 2
}

// CanWrite reports whether the output interconnect connects PE p to bank.
func (c Config) CanWrite(p PE, bank int) bool {
	switch c.Output {
	case OutCrossbar:
		return true
	case OutPerLayer:
		// Bank group of tree t covers banks [t·2^D,(t+1)·2^D). Within the
		// group, bank j connects to the PE of layer l whose index is
		// j >> l — exactly one PE per layer per bank, and each PE of
		// layer l reaches 2^l banks.
		if p.Layer < 1 || p.Layer > c.D || bank/c.TreeInputs() != p.Tree {
			return false
		}
		j := bank % c.TreeInputs()
		return j>>uint(p.Layer) == p.Index
	case OutPerPE, OutOneToOne:
		bp, ok := c.bankPE(bank)
		return ok && bp == p
	}
	return false
}

// WritableBanks lists the banks PE p can write, ascending.
func (c Config) WritableBanks(p PE) []int {
	var banks []int
	switch c.Output {
	case OutCrossbar:
		banks = make([]int, c.B)
		for i := range banks {
			banks[i] = i
		}
	case OutPerLayer:
		base := p.Tree * c.TreeInputs()
		for j := p.Index << uint(p.Layer); j < (p.Index+1)<<uint(p.Layer); j++ {
			banks = append(banks, base+j)
		}
	case OutPerPE, OutOneToOne:
		for b := 0; b < c.B; b++ {
			if bp, ok := c.bankPE(b); ok && bp == p {
				banks = append(banks, b)
			}
		}
	}
	return banks
}

// bankPE gives the unique PE connected to bank under the one-bank-one-PE
// topologies. A tree has 2^D banks but only 2^D−1 PEs; the spare bank
// (the last of the group) is attached to the root, matching the paper's
// note that the top PE gets two banks.
func (c Config) bankPE(bank int) (PE, bool) {
	tree := bank / c.TreeInputs()
	j := bank % c.TreeInputs()
	perTree := (1 << uint(c.D)) - 1
	if j >= perTree {
		return PE{Tree: tree, Layer: c.D, Index: 0}, true
	}
	return c.PECoord(tree*perTree + j), true
}

// LayerPE returns the PE of the given layer that can write bank under the
// per-layer topology; used to decode the exec instruction's write selects.
func (c Config) LayerPE(bank, layer int) PE {
	tree := bank / c.TreeInputs()
	j := bank % c.TreeInputs()
	return PE{Tree: tree, Layer: layer, Index: j >> uint(layer)}
}

// WriteSel encodes "PE p drives bank" as the select value stored in an
// exec instruction for this topology; see Instr.WriteSel.
func (c Config) WriteSel(bank int, p PE) (uint16, error) {
	if !c.CanWrite(p, bank) {
		return 0, fmt.Errorf("arch: PE %v cannot write bank %d under %s", p, bank, c.Output)
	}
	switch c.Output {
	case OutCrossbar:
		return uint16(c.PEID(p)), nil
	case OutPerLayer:
		return uint16(p.Layer - 1), nil
	default:
		return 0, nil
	}
}

// SelPE decodes a write select back to the driving PE.
func (c Config) SelPE(bank int, sel uint16) PE {
	switch c.Output {
	case OutCrossbar:
		return c.PECoord(int(sel))
	case OutPerLayer:
		return c.LayerPE(bank, int(sel)+1)
	default:
		p, _ := c.bankPE(bank)
		return p
	}
}
