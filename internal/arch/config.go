// Package arch defines the DPU-v2 architecture template of §III: the
// parameterized datapath of PE trees, the banked register file with
// automatic write-address generation, the input/output interconnect
// topologies of fig. 6, and the variable-length VLIW instruction set of
// fig. 7 including its dense bit-packed encoding.
//
// The template has three free parameters: tree depth D, bank count B and
// registers per bank R. The number of trees T = B/2^D follows from the
// requirement that the register file can feed every tree input each cycle.
package arch

import "fmt"

// OutputTopology selects the PE-output → register-bank interconnect of
// fig. 6. The input interconnect is a full crossbar for all supported
// designs (a)–(c); design (d) removes it and is modeled for completeness
// but rejected by the compiler, as in the paper.
type OutputTopology uint8

const (
	// OutCrossbar is fig. 6(a): every PE can write every bank.
	OutCrossbar OutputTopology = iota
	// OutPerLayer is fig. 6(b), the design DPU-v2 selects: each bank is
	// writable from exactly one PE per tree layer.
	OutPerLayer
	// OutPerPE is fig. 6(c): each bank is writable from exactly one PE
	// (the root's bank group reaches only the root).
	OutPerPE
	// OutOneToOne is fig. 6(d): additionally removes the input crossbar.
	OutOneToOne
)

func (o OutputTopology) String() string {
	switch o {
	case OutCrossbar:
		return "crossbar"
	case OutPerLayer:
		return "per-layer"
	case OutPerPE:
		return "per-pe"
	case OutOneToOne:
		return "one-to-one"
	}
	return fmt.Sprintf("topology(%d)", uint8(o))
}

// Config is one instantiation of the architecture template.
type Config struct {
	// D is the number of PE layers per tree (pipeline has D+1 stages).
	D int
	// B is the number of register banks (= datapath input ports).
	B int
	// R is the number of registers per bank.
	R int
	// Output selects the output interconnect topology; the zero value of
	// a Config is completed to OutPerLayer (the paper's choice) by
	// Normalize.
	Output OutputTopology
	// DataMemWords is the capacity of the on-chip data memory in words.
	// Zero means the 256K-word default (1 MB at 4 B/word), enough to hold
	// inputs, results and spill slots for the full-scale Table I suites.
	DataMemWords int
	// ClockMHz is the target frequency; zero means 300 MHz, the paper's
	// synthesis target.
	ClockMHz float64
}

// Normalize fills defaulted fields and returns the completed config.
func (c Config) Normalize() Config {
	if c.DataMemWords == 0 {
		c.DataMemWords = 1 << 18
	}
	if c.ClockMHz == 0 {
		c.ClockMHz = 300
	}
	return c
}

// Validate checks that the parameters describe a constructible design.
func (c Config) Validate() error {
	if c.D < 1 || c.D > 6 {
		return fmt.Errorf("arch: D=%d out of supported range [1,6]", c.D)
	}
	if c.B < 1<<c.D {
		return fmt.Errorf("arch: B=%d smaller than one tree's input count 2^D=%d", c.B, 1<<c.D)
	}
	if c.B%(1<<c.D) != 0 {
		return fmt.Errorf("arch: B=%d not a multiple of 2^D=%d", c.B, 1<<c.D)
	}
	if c.R < 2 {
		return fmt.Errorf("arch: R=%d too small", c.R)
	}
	if c.Output > OutOneToOne {
		return fmt.Errorf("arch: unknown output topology %d", c.Output)
	}
	return nil
}

// Trees returns T = B / 2^D, the number of parallel PE trees.
func (c Config) Trees() int { return c.B >> uint(c.D) }

// NumPEs returns T·(2^D − 1), the total PE count.
func (c Config) NumPEs() int { return c.Trees() * ((1 << uint(c.D)) - 1) }

// TreeInputs returns 2^D, the leaf input ports of one tree.
func (c Config) TreeInputs() int { return 1 << uint(c.D) }

// MinEDP returns the design-space point the paper's exploration selects
// (D=3, B=64, R=32, per-layer output interconnect, 300 MHz).
func MinEDP() Config {
	return Config{D: 3, B: 64, R: 32, Output: OutPerLayer}.Normalize()
}

// MinEnergy returns the paper's minimum-energy point (D=3, B=16, R=64).
func MinEnergy() Config {
	return Config{D: 3, B: 16, R: 64, Output: OutPerLayer}.Normalize()
}

// MinLatency returns the paper's minimum-latency point (D=3, B=64, R=128).
func MinLatency() Config {
	return Config{D: 3, B: 64, R: 128, Output: OutPerLayer}.Normalize()
}

// Large returns the DPU-v2 (L) configuration used for the large-PC
// comparison (§V-C2): min-EDP datapath with 256 registers per bank and a
// larger data memory (4M words) backing the multi-million-node PCs.
func Large() Config {
	return Config{D: 3, B: 64, R: 256, Output: OutPerLayer, DataMemWords: 1 << 22}.Normalize()
}

// String renders the config like the paper's "D, B, R" tuples.
func (c Config) String() string {
	return fmt.Sprintf("D=%d,B=%d,R=%d,%s", c.D, c.B, c.R, c.Output)
}
