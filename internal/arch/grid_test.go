package arch

import (
	"math/rand"
	"testing"
)

// TestCodecAcrossGrid packs and unpacks random instruction streams on
// every configuration of the paper's design-space grid (all 48 points ×
// all supported output topologies), pinning the variable-length codec to
// the whole parameter space rather than a few hand-picked designs.
func TestCodecAcrossGrid(t *testing.T) {
	for _, d := range []int{1, 2, 3} {
		for _, bk := range []int{8, 16, 32, 64} {
			for _, rg := range []int{16, 32, 64, 128} {
				for _, topo := range []OutputTopology{OutCrossbar, OutPerLayer, OutPerPE} {
					cfg := Config{D: d, B: bk, R: rg, Output: topo}.Normalize()
					if err := cfg.Validate(); err != nil {
						t.Fatal(err)
					}
					rng := rand.New(rand.NewSource(int64(d*1000 + bk*10 + rg)))
					p := NewProgram(cfg)
					for i := 0; i < 25; i++ {
						p.MustAppend(randomInstr(rng, cfg))
					}
					back, err := Unpack(p.Pack(), cfg, len(p.Instrs))
					if err != nil {
						t.Fatalf("%v: %v", cfg, err)
					}
					for i := range back {
						if !instrEqual(p.Instrs[i], back[i]) {
							t.Fatalf("%v: instruction %d (%v) did not round trip",
								cfg, i, p.Instrs[i].Kind)
						}
					}
					// The widths table must agree with the encoder for
					// every kind present in the stream.
					w := WidthsOf(cfg)
					total := 0
					for _, in := range p.Instrs {
						total += w.Len(in.Kind)
					}
					if total != p.BitSize() {
						t.Fatalf("%v: BitSize %d != summed widths %d", cfg, p.BitSize(), total)
					}
				}
			}
		}
	}
}

// TestWidthsMonotoneInParameters checks the encoding geometry scales the
// way the hardware does: wider register files need longer addresses,
// more banks need more crossbar selects, deeper trees more PE fields.
func TestWidthsMonotoneInParameters(t *testing.T) {
	base := WidthsOf(Config{D: 2, B: 16, R: 32, Output: OutPerLayer})
	moreR := WidthsOf(Config{D: 2, B: 16, R: 128, Output: OutPerLayer})
	if moreR.Exec <= base.Exec || moreR.ReadAddr <= base.ReadAddr {
		t.Error("exec length must grow with R")
	}
	moreB := WidthsOf(Config{D: 2, B: 64, R: 32, Output: OutPerLayer})
	if moreB.Exec <= base.Exec || moreB.Load <= base.Load {
		t.Error("exec/load length must grow with B")
	}
	deeper := WidthsOf(Config{D: 3, B: 16, R: 32, Output: OutPerLayer})
	if deeper.Exec <= base.Exec {
		t.Error("exec length must grow with D (more PEs)")
	}
	if base.IL != base.Exec {
		t.Error("exec must be the longest instruction")
	}
}
