package arch

import (
	"fmt"
	"strings"
)

// Disassemble renders one instruction as human-readable assembly, the
// debugging view of the packed stream. Formats:
//
//	nop
//	exec   reads[b2.0 b6.3!] xbar[p0<-b2 ...] pe[t0:mul(add,byp) ...] writes[b9<-L3 ...]
//	load   row=12 lanes[0,4,5]
//	store  row=3 reads[b0.1 b2.0!]
//	copy_4 b3.7->b5! b0.1->b9
//
// "!" marks valid_rst (last read frees the register).
func Disassemble(in *Instr, cfg Config) string {
	cfg = cfg.Normalize()
	switch in.Kind {
	case KindNop:
		return "nop"
	case KindExec:
		var b strings.Builder
		b.WriteString("exec reads[")
		first := true
		for bank := 0; bank < cfg.B; bank++ {
			if !in.ReadEn[bank] {
				continue
			}
			if !first {
				b.WriteByte(' ')
			}
			first = false
			fmt.Fprintf(&b, "b%d.%d", bank, in.ReadAddr[bank])
			if in.ValidRst[bank] {
				b.WriteByte('!')
			}
		}
		b.WriteString("] pe[")
		first = true
		for id, op := range in.PEOps {
			if op == PEIdle {
				continue
			}
			if !first {
				b.WriteByte(' ')
			}
			first = false
			p := cfg.PECoord(id)
			fmt.Fprintf(&b, "t%d.l%d.%d:%s", p.Tree, p.Layer, p.Index, op)
		}
		b.WriteString("] writes[")
		first = true
		for bank := 0; bank < cfg.B; bank++ {
			if !in.WriteEn[bank] {
				continue
			}
			if !first {
				b.WriteByte(' ')
			}
			first = false
			p := cfg.SelPE(bank, in.WriteSel[bank])
			fmt.Fprintf(&b, "b%d<-t%d.l%d.%d", bank, p.Tree, p.Layer, p.Index)
		}
		b.WriteString("]")
		return b.String()
	case KindLoad:
		var lanes []string
		for lane, en := range in.Mask {
			if en {
				lanes = append(lanes, fmt.Sprint(lane))
			}
		}
		return fmt.Sprintf("load row=%d lanes[%s]", in.MemAddr, strings.Join(lanes, ","))
	case KindStore:
		var rs []string
		for bank, en := range in.ReadEn {
			if !en {
				continue
			}
			s := fmt.Sprintf("b%d.%d", bank, in.ReadAddr[bank])
			if in.ValidRst[bank] {
				s += "!"
			}
			rs = append(rs, s)
		}
		return fmt.Sprintf("store row=%d reads[%s]", in.MemAddr, strings.Join(rs, " "))
	case KindStore4, KindCopy:
		var ms []string
		for _, m := range in.Moves {
			rst := ""
			if m.Rst {
				rst = "!"
			}
			ms = append(ms, fmt.Sprintf("b%d.%d%s->%d", m.SrcBank, m.SrcAddr, rst, m.Dst))
		}
		if in.Kind == KindStore4 {
			return fmt.Sprintf("store_4 row=%d %s", in.MemAddr, strings.Join(ms, " "))
		}
		return "copy_4 " + strings.Join(ms, " ")
	}
	return fmt.Sprintf("?kind(%d)", in.Kind)
}

// DisassembleProgram renders every instruction, one per line with its
// index and cumulative bit offset in the packed stream.
func DisassembleProgram(p *Program) string {
	var b strings.Builder
	off := 0
	for i, in := range p.Instrs {
		fmt.Fprintf(&b, "%6d @%-8d %s\n", i, off, Disassemble(in, p.Cfg))
		off += p.W.Len(in.Kind)
	}
	return b.String()
}
