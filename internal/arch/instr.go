package arch

import "fmt"

// Kind is the instruction class of fig. 7.
type Kind uint8

const (
	// KindNop advances the pipeline one cycle without side effects; the
	// compiler inserts nops for unresolvable RAW hazards (step 3).
	KindNop Kind = iota
	// KindExec configures every PE and register bank for one datapath
	// cycle: per-bank reads, input-crossbar routing, PE ops, and
	// per-bank write-backs through the output interconnect.
	KindExec
	// KindCopy moves up to 4 words between banks through the input
	// crossbar (fig. 5(c)); the compiler uses it to repair bank
	// conflicts. Destination addresses are chosen by the banks'
	// automatic write-address generators.
	KindCopy
	// KindLoad transfers one data-memory row (B words, word-enable
	// masked) into the banks; bank i receives lane i (fig. 5(b)).
	KindLoad
	// KindStore writes one full vector from the banks to a data-memory
	// row; per-bank read addresses are encoded in the instruction.
	KindStore
	// KindStore4 stores up to 4 words gathered from arbitrary banks into
	// arbitrary lanes of a memory row.
	KindStore4

	numKinds = 6
)

func (k Kind) String() string {
	switch k {
	case KindNop:
		return "nop"
	case KindExec:
		return "exec"
	case KindCopy:
		return "copy_4"
	case KindLoad:
		return "load"
	case KindStore:
		return "store"
	case KindStore4:
		return "store_4"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// PEOp configures one PE for an exec cycle.
type PEOp uint8

const (
	// PEIdle leaves the PE output undefined (nothing may consume it).
	PEIdle PEOp = iota
	// PEAdd outputs left+right.
	PEAdd
	// PEMul outputs left×right.
	PEMul
	// PEBypassL forwards the left operand.
	PEBypassL
	// PEBypassR forwards the right operand.
	PEBypassR

	numPEOps = 5
)

func (op PEOp) String() string {
	switch op {
	case PEIdle:
		return "idle"
	case PEAdd:
		return "add"
	case PEMul:
		return "mul"
	case PEBypassL:
		return "bypl"
	case PEBypassR:
		return "bypr"
	}
	return fmt.Sprintf("peop(%d)", uint8(op))
}

// Move is one lane of a copy_4 or store_4 instruction: read (SrcBank,
// SrcAddr) and deliver it to Dst — a destination bank for copies (write
// address auto-generated) or a memory lane for store_4.
type Move struct {
	SrcBank uint16
	SrcAddr uint16
	Dst     uint16
	// Rst releases the source register (valid_rst) after the read.
	Rst bool
}

// MaxMoves is the lane count of copy_4/store_4.
const MaxMoves = 4

// Instr is the decoded form of one instruction. Which fields are
// meaningful depends on Kind; Encode/Decode define the packed layout.
//
// All per-bank slices have length B and all per-PE slices length NumPEs
// when present.
type Instr struct {
	Kind Kind

	// Exec fields.
	PEOps    []PEOp   // PE configuration, indexed by PEID
	ReadEn   []bool   // bank read enables
	ReadAddr []uint16 // bank read addresses
	ValidRst []bool   // release the bank's read register after this read
	InputSel []uint16 // input-crossbar select: bank feeding each port
	WriteEn  []bool   // bank write enables
	WriteSel []uint16 // output-interconnect select per bank (see Config.WriteSel)

	// Load/Store/Store4 fields.
	MemAddr int
	Mask    []bool // load word-enable per lane

	// Store reuses ReadEn/ReadAddr/ValidRst for the vector gather.

	// Copy/Store4 lanes.
	Moves []Move
}

// NewExec allocates an exec instruction with all-idle PEs for cfg.
func NewExec(cfg Config) *Instr {
	return &Instr{
		Kind:     KindExec,
		PEOps:    make([]PEOp, cfg.NumPEs()),
		ReadEn:   make([]bool, cfg.B),
		ReadAddr: make([]uint16, cfg.B),
		ValidRst: make([]bool, cfg.B),
		InputSel: make([]uint16, cfg.B),
		WriteEn:  make([]bool, cfg.B),
		WriteSel: make([]uint16, cfg.B),
	}
}

// NewStore allocates a full-vector store instruction for cfg.
func NewStore(cfg Config, memAddr int) *Instr {
	return &Instr{
		Kind:     KindStore,
		MemAddr:  memAddr,
		ReadEn:   make([]bool, cfg.B),
		ReadAddr: make([]uint16, cfg.B),
		ValidRst: make([]bool, cfg.B),
	}
}

// NewLoad allocates a vector load instruction for cfg.
func NewLoad(cfg Config, memAddr int) *Instr {
	return &Instr{Kind: KindLoad, MemAddr: memAddr, Mask: make([]bool, cfg.B)}
}

// Validate checks the instruction against the configuration: slice
// lengths, address ranges, interconnect legality and lane limits.
func (in *Instr) Validate(cfg Config) error {
	checkLen := func(name string, got, want int) error {
		if got != want {
			return fmt.Errorf("arch: %s %s length %d, want %d", in.Kind, name, got, want)
		}
		return nil
	}
	switch in.Kind {
	case KindNop:
		return nil
	case KindExec:
		if err := checkLen("PEOps", len(in.PEOps), cfg.NumPEs()); err != nil {
			return err
		}
		for _, s := range [][2]int{{len(in.ReadEn), cfg.B}, {len(in.ReadAddr), cfg.B},
			{len(in.ValidRst), cfg.B}, {len(in.InputSel), cfg.B}, {len(in.WriteEn), cfg.B}, {len(in.WriteSel), cfg.B}} {
			if s[0] != s[1] {
				return fmt.Errorf("arch: exec per-bank slice length %d, want %d", s[0], s[1])
			}
		}
		for b := 0; b < cfg.B; b++ {
			if in.ReadEn[b] && int(in.ReadAddr[b]) >= cfg.R {
				return fmt.Errorf("arch: exec read addr %d ≥ R=%d on bank %d", in.ReadAddr[b], cfg.R, b)
			}
			if int(in.InputSel[b]) >= cfg.B {
				return fmt.Errorf("arch: exec input select %d ≥ B on port %d", in.InputSel[b], b)
			}
			if in.WriteEn[b] {
				// Bound the select before decoding it: under the crossbar a
				// decoded select can name any value its bit width admits, and
				// SelPE on an id ≥ NumPEs would address a nonexistent PE.
				if cfg.Output == OutCrossbar && int(in.WriteSel[b]) >= cfg.NumPEs() {
					return fmt.Errorf("arch: exec write select %d ≥ %d PEs on bank %d", in.WriteSel[b], cfg.NumPEs(), b)
				}
				p := cfg.SelPE(b, in.WriteSel[b])
				if !cfg.CanWrite(p, b) {
					return fmt.Errorf("arch: exec write select %d illegal for bank %d", in.WriteSel[b], b)
				}
			}
		}
		return nil
	case KindLoad:
		if err := checkLen("Mask", len(in.Mask), cfg.B); err != nil {
			return err
		}
		if in.MemAddr < 0 || in.MemAddr >= cfg.DataMemWords/cfg.B {
			return fmt.Errorf("arch: load row %d out of range", in.MemAddr)
		}
		return nil
	case KindStore:
		if err := checkLen("ReadEn", len(in.ReadEn), cfg.B); err != nil {
			return err
		}
		if in.MemAddr < 0 || in.MemAddr >= cfg.DataMemWords/cfg.B {
			return fmt.Errorf("arch: store row %d out of range", in.MemAddr)
		}
		for b := 0; b < cfg.B; b++ {
			if in.ReadEn[b] && int(in.ReadAddr[b]) >= cfg.R {
				return fmt.Errorf("arch: store read addr %d ≥ R on bank %d", in.ReadAddr[b], b)
			}
		}
		return nil
	case KindCopy, KindStore4:
		if len(in.Moves) == 0 || len(in.Moves) > MaxMoves {
			return fmt.Errorf("arch: %s with %d lanes, want 1..%d", in.Kind, len(in.Moves), MaxMoves)
		}
		if in.Kind == KindStore4 && (in.MemAddr < 0 || in.MemAddr >= cfg.DataMemWords/cfg.B) {
			return fmt.Errorf("arch: store_4 row %d out of range", in.MemAddr)
		}
		for _, m := range in.Moves {
			if int(m.SrcBank) >= cfg.B || int(m.SrcAddr) >= cfg.R || int(m.Dst) >= cfg.B {
				return fmt.Errorf("arch: %s lane out of range: %+v", in.Kind, m)
			}
		}
		return nil
	}
	return fmt.Errorf("arch: unknown kind %d", in.Kind)
}
