package arch

import (
	"fmt"
	"math/bits"
)

// bitsFor returns the bits needed to represent values in [0, n); n ≤ 1
// needs none.
func bitsFor(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// Widths holds the per-field and per-instruction bit widths implied by a
// configuration (fig. 7 shows an example set for D=3, B=16, R=32). The
// instruction memory supplies IL bits per cycle — the longest
// instruction — and a shifter aligns the densely packed stream.
type Widths struct {
	Opcode   int // instruction kind
	PEOp     int // one PE configuration
	ReadAddr int // register address within a bank
	BankSel  int // bank index (input crossbar select)
	WriteSel int // output-interconnect select per bank
	MemAddr  int // data-memory row index

	Nop, Exec, Load, Store, Store4, Copy int
	IL                                   int // max over all kinds
}

// WidthsOf computes the encoding geometry for cfg.
func WidthsOf(cfg Config) Widths {
	cfg = cfg.Normalize()
	w := Widths{
		Opcode:   bitsFor(numKinds),
		PEOp:     bitsFor(numPEOps),
		ReadAddr: bitsFor(cfg.R),
		BankSel:  bitsFor(cfg.B),
		MemAddr:  bitsFor(cfg.DataMemWords / cfg.B),
	}
	switch cfg.Output {
	case OutCrossbar:
		w.WriteSel = bitsFor(cfg.NumPEs())
	case OutPerLayer:
		w.WriteSel = bitsFor(cfg.D)
	default:
		w.WriteSel = 0
	}
	perBankRead := 1 + w.ReadAddr // enable + address
	w.Nop = w.Opcode
	w.Exec = w.Opcode +
		cfg.NumPEs()*w.PEOp + // PE configs
		cfg.B*perBankRead + // independent bank reads
		cfg.B + // valid_rst bits
		cfg.B*w.BankSel + // input crossbar selects
		cfg.B*(1+w.WriteSel) // write enable + output select
	w.Load = w.Opcode + w.MemAddr + cfg.B // row + word-enable mask
	w.Store = w.Opcode + w.MemAddr + cfg.B*perBankRead + cfg.B
	lane := 1 + w.BankSel + w.ReadAddr + w.BankSel + 1 // en + src bank + src addr + dst + rst
	w.Store4 = w.Opcode + w.MemAddr + MaxMoves*lane
	w.Copy = w.Opcode + MaxMoves*lane
	w.IL = w.Nop
	for _, l := range []int{w.Exec, w.Load, w.Store, w.Store4, w.Copy} {
		if l > w.IL {
			w.IL = l
		}
	}
	return w
}

// Len returns the packed bit length of kind k.
func (w Widths) Len(k Kind) int {
	switch k {
	case KindNop:
		return w.Nop
	case KindExec:
		return w.Exec
	case KindLoad:
		return w.Load
	case KindStore:
		return w.Store
	case KindStore4:
		return w.Store4
	case KindCopy:
		return w.Copy
	}
	return 0
}

// BitWriter packs little-endian-within-stream bit fields densely, the
// "no bubbles" packing of fig. 7(b).
type BitWriter struct {
	buf  []byte
	nbit int
}

// Put appends the low n bits of v, byte-sized chunks at a time (the
// packed streams of full-scale programs run to megabits, so the codec
// is a measurable slice of artifact decode and program emit).
func (bw *BitWriter) Put(v uint64, n int) {
	for n > 0 {
		bit := bw.nbit & 7
		if bit == 0 {
			bw.buf = append(bw.buf, 0)
		}
		take := 8 - bit
		if take > n {
			take = n
		}
		bw.buf[bw.nbit>>3] |= byte(v&(1<<take-1)) << bit
		v >>= uint(take)
		bw.nbit += take
		n -= take
	}
}

// PutBool appends one bit.
func (bw *BitWriter) PutBool(b bool) {
	v := uint64(0)
	if b {
		v = 1
	}
	bw.Put(v, 1)
}

// Bits returns the number of bits written.
func (bw *BitWriter) Bits() int { return bw.nbit }

// Bytes returns the backing store (last byte possibly partial).
func (bw *BitWriter) Bytes() []byte { return bw.buf }

// BitReader consumes a packed stream produced by BitWriter. Reading past
// the end yields zeros and sets the overrun flag, mirroring an
// instruction-memory fetch of don't-care padding.
type BitReader struct {
	buf     []byte
	pos     int
	Overrun bool
}

// NewBitReader wraps buf for reading from bit offset 0.
func NewBitReader(buf []byte) *BitReader { return &BitReader{buf: buf} }

// Seek positions the reader at an absolute bit offset.
func (br *BitReader) Seek(bit int) { br.pos = bit }

// Pos returns the current bit offset.
func (br *BitReader) Pos() int { return br.pos }

// Take reads n bits, byte-sized chunks at a time. Reading past the end
// yields zeros and sets the overrun flag (see BitReader).
func (br *BitReader) Take(n int) uint64 {
	var v uint64
	got := 0
	for got < n {
		byteIdx := br.pos >> 3
		if byteIdx >= len(br.buf) {
			br.Overrun = true
			br.pos += n - got
			break
		}
		bit := br.pos & 7
		take := 8 - bit
		if take > n-got {
			take = n - got
		}
		v |= (uint64(br.buf[byteIdx]>>bit) & (1<<take - 1)) << got
		br.pos += take
		got += take
	}
	return v
}

// TakeBool reads one bit.
func (br *BitReader) TakeBool() bool { return br.Take(1) != 0 }

// Encode appends the packed form of in to bw. The instruction must
// already Validate against cfg.
func Encode(in *Instr, cfg Config, w Widths, bw *BitWriter) {
	bw.Put(uint64(in.Kind), w.Opcode)
	switch in.Kind {
	case KindNop:
	case KindExec:
		for _, op := range in.PEOps {
			bw.Put(uint64(op), w.PEOp)
		}
		for b := 0; b < cfg.B; b++ {
			bw.PutBool(in.ReadEn[b])
			bw.Put(uint64(in.ReadAddr[b]), w.ReadAddr)
		}
		for b := 0; b < cfg.B; b++ {
			bw.PutBool(in.ValidRst[b])
		}
		for b := 0; b < cfg.B; b++ {
			bw.Put(uint64(in.InputSel[b]), w.BankSel)
		}
		for b := 0; b < cfg.B; b++ {
			bw.PutBool(in.WriteEn[b])
			bw.Put(uint64(in.WriteSel[b]), w.WriteSel)
		}
	case KindLoad:
		bw.Put(uint64(in.MemAddr), w.MemAddr)
		for b := 0; b < cfg.B; b++ {
			bw.PutBool(in.Mask[b])
		}
	case KindStore:
		bw.Put(uint64(in.MemAddr), w.MemAddr)
		for b := 0; b < cfg.B; b++ {
			bw.PutBool(in.ReadEn[b])
			bw.Put(uint64(in.ReadAddr[b]), w.ReadAddr)
		}
		for b := 0; b < cfg.B; b++ {
			bw.PutBool(in.ValidRst[b])
		}
	case KindStore4, KindCopy:
		if in.Kind == KindStore4 {
			bw.Put(uint64(in.MemAddr), w.MemAddr)
		}
		for i := 0; i < MaxMoves; i++ {
			if i < len(in.Moves) {
				m := in.Moves[i]
				bw.PutBool(true)
				bw.Put(uint64(m.SrcBank), w.BankSel)
				bw.Put(uint64(m.SrcAddr), w.ReadAddr)
				bw.Put(uint64(m.Dst), w.BankSel)
				bw.PutBool(m.Rst)
			} else {
				bw.PutBool(false)
				bw.Put(0, w.BankSel+w.ReadAddr+w.BankSel+1)
			}
		}
	}
}

// Decode reads one instruction from br. It mirrors the hardware decoder:
// the opcode determines how many further bits belong to the instruction.
func Decode(br *BitReader, cfg Config, w Widths) (*Instr, error) {
	cfg = cfg.Normalize()
	k := Kind(br.Take(w.Opcode))
	in := &Instr{Kind: k}
	switch k {
	case KindNop:
	case KindExec:
		// One backing array per element type: a full-scale program decodes
		// hundreds of thousands of exec instructions, and two allocations
		// in place of six is a measurable slice of artifact decode.
		bools := make([]bool, 3*cfg.B)
		in.ReadEn = bools[:cfg.B:cfg.B]
		in.ValidRst = bools[cfg.B : 2*cfg.B : 2*cfg.B]
		in.WriteEn = bools[2*cfg.B:]
		sels := make([]uint16, 3*cfg.B)
		in.ReadAddr = sels[:cfg.B:cfg.B]
		in.InputSel = sels[cfg.B : 2*cfg.B : 2*cfg.B]
		in.WriteSel = sels[2*cfg.B:]
		in.PEOps = make([]PEOp, cfg.NumPEs())
		for i := range in.PEOps {
			in.PEOps[i] = PEOp(br.Take(w.PEOp))
		}
		for b := 0; b < cfg.B; b++ {
			in.ReadEn[b] = br.TakeBool()
			in.ReadAddr[b] = uint16(br.Take(w.ReadAddr))
		}
		for b := 0; b < cfg.B; b++ {
			in.ValidRst[b] = br.TakeBool()
		}
		for b := 0; b < cfg.B; b++ {
			in.InputSel[b] = uint16(br.Take(w.BankSel))
		}
		for b := 0; b < cfg.B; b++ {
			in.WriteEn[b] = br.TakeBool()
			in.WriteSel[b] = uint16(br.Take(w.WriteSel))
		}
	case KindLoad:
		in.MemAddr = int(br.Take(w.MemAddr))
		in.Mask = make([]bool, cfg.B)
		for b := 0; b < cfg.B; b++ {
			in.Mask[b] = br.TakeBool()
		}
	case KindStore:
		in.MemAddr = int(br.Take(w.MemAddr))
		bools := make([]bool, 2*cfg.B)
		in.ReadEn = bools[:cfg.B:cfg.B]
		in.ValidRst = bools[cfg.B:]
		in.ReadAddr = make([]uint16, cfg.B)
		for b := 0; b < cfg.B; b++ {
			in.ReadEn[b] = br.TakeBool()
			in.ReadAddr[b] = uint16(br.Take(w.ReadAddr))
		}
		for b := 0; b < cfg.B; b++ {
			in.ValidRst[b] = br.TakeBool()
		}
	case KindStore4, KindCopy:
		if k == KindStore4 {
			in.MemAddr = int(br.Take(w.MemAddr))
		}
		for i := 0; i < MaxMoves; i++ {
			en := br.TakeBool()
			m := Move{
				SrcBank: uint16(br.Take(w.BankSel)),
				SrcAddr: uint16(br.Take(w.ReadAddr)),
				Dst:     uint16(br.Take(w.BankSel)),
				Rst:     br.TakeBool(),
			}
			if en {
				in.Moves = append(in.Moves, m)
			}
		}
	default:
		return nil, fmt.Errorf("arch: decoded unknown opcode %d", k)
	}
	if br.Overrun {
		return nil, fmt.Errorf("arch: instruction stream truncated")
	}
	return in, nil
}
