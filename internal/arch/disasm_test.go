package arch

import (
	"strings"
	"testing"
)

func TestDisassembleKinds(t *testing.T) {
	cfg := Config{D: 2, B: 8, R: 16, Output: OutPerLayer}.Normalize()
	if got := Disassemble(&Instr{Kind: KindNop}, cfg); got != "nop" {
		t.Errorf("nop = %q", got)
	}
	ld := NewLoad(cfg, 7)
	ld.Mask[1], ld.Mask[5] = true, true
	if got := Disassemble(ld, cfg); got != "load row=7 lanes[1,5]" {
		t.Errorf("load = %q", got)
	}
	cp := &Instr{Kind: KindCopy, Moves: []Move{{SrcBank: 3, SrcAddr: 7, Dst: 5, Rst: true}}}
	if got := Disassemble(cp, cfg); got != "copy_4 b3.7!->5" {
		t.Errorf("copy = %q", got)
	}
	st := NewStore(cfg, 2)
	st.ReadEn[0] = true
	st.ReadAddr[0] = 3
	st.ValidRst[0] = true
	if got := Disassemble(st, cfg); !strings.Contains(got, "b0.3!") {
		t.Errorf("store = %q", got)
	}
	ex := NewExec(cfg)
	ex.PEOps[0] = PEMul
	ex.ReadEn[2] = true
	ex.ReadAddr[2] = 9
	ex.WriteEn[0] = true
	sel, _ := cfg.WriteSel(0, PE{Tree: 0, Layer: 1, Index: 0})
	ex.WriteSel[0] = sel
	got := Disassemble(ex, cfg)
	for _, want := range []string{"exec", "b2.9", "t0.l1.0:mul", "b0<-t0.l1.0"} {
		if !strings.Contains(got, want) {
			t.Errorf("exec disasm missing %q: %q", want, got)
		}
	}
}

func TestDisassembleProgramOffsets(t *testing.T) {
	cfg := Config{D: 2, B: 8, R: 16, Output: OutPerLayer}.Normalize()
	p := NewProgram(cfg)
	p.MustAppend(&Instr{Kind: KindNop})
	ld := NewLoad(cfg, 0)
	ld.Mask[0] = true
	p.MustAppend(ld)
	out := DisassembleProgram(p)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	if !strings.Contains(lines[0], "@0") {
		t.Errorf("first instruction not at offset 0: %q", lines[0])
	}
	w := WidthsOf(cfg)
	if !strings.Contains(lines[1], "@"+itoa(w.Nop)) {
		t.Errorf("second offset should be %d: %q", w.Nop, lines[1])
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
