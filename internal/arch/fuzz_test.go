package arch

import (
	"bytes"
	"testing"
)

// fuzzSource deals deterministic bytes off the fuzz input, zero-padding
// past the end.
type fuzzSource struct {
	data []byte
	pos  int
}

func (s *fuzzSource) next() int {
	if s.pos >= len(s.data) {
		return 0
	}
	b := s.data[s.pos]
	s.pos++
	return int(b)
}

// fuzzConfig derives a valid architecture configuration from the input:
// D in 1..3, B a multiple of 2^D, small R, any compilable topology.
func fuzzConfig(s *fuzzSource) Config {
	d := 1 + s.next()%3
	trees := 1 + s.next()%3
	rChoices := []int{2, 4, 8, 32, 70} // 70 crosses the one-word bitmap boundary
	cfg := Config{
		D:      d,
		B:      trees << uint(d),
		R:      rChoices[s.next()%len(rChoices)],
		Output: OutputTopology(s.next() % 3),
	}
	return cfg.Normalize()
}

// fuzzInstr builds an arbitrary in-range instruction of any kind. All
// field values are clamped into their encodable ranges, so the packed
// form must round-trip exactly.
func fuzzInstr(s *fuzzSource, cfg Config) *Instr {
	rows := cfg.DataMemWords / cfg.B
	switch Kind(s.next() % int(numKinds)) {
	case KindNop:
		return &Instr{Kind: KindNop}
	case KindExec:
		in := NewExec(cfg)
		for i := range in.PEOps {
			in.PEOps[i] = PEOp(s.next() % int(numPEOps))
		}
		for b := 0; b < cfg.B; b++ {
			in.ReadEn[b] = s.next()%2 == 1
			in.ReadAddr[b] = uint16(s.next() % cfg.R)
			in.ValidRst[b] = s.next()%2 == 1
			in.InputSel[b] = uint16(s.next() % cfg.B)
			in.WriteEn[b] = s.next()%2 == 1
			switch cfg.Output {
			case OutCrossbar:
				in.WriteSel[b] = uint16(s.next() % cfg.NumPEs())
			case OutPerLayer:
				in.WriteSel[b] = uint16(s.next() % cfg.D)
			default:
				in.WriteSel[b] = 0
			}
		}
		return in
	case KindLoad:
		in := NewLoad(cfg, s.next()%rows)
		for b := range in.Mask {
			in.Mask[b] = s.next()%2 == 1
		}
		return in
	case KindStore:
		in := NewStore(cfg, s.next()%rows)
		for b := 0; b < cfg.B; b++ {
			in.ReadEn[b] = s.next()%2 == 1
			in.ReadAddr[b] = uint16(s.next() % cfg.R)
			in.ValidRst[b] = s.next()%2 == 1
		}
		return in
	default: // KindCopy, KindStore4
		kind := KindCopy
		var memAddr int
		if s.next()%2 == 0 {
			kind = KindStore4
			memAddr = s.next() % rows
		}
		in := &Instr{Kind: kind, MemAddr: memAddr}
		lanes := 1 + s.next()%MaxMoves
		for i := 0; i < lanes; i++ {
			in.Moves = append(in.Moves, Move{
				SrcBank: uint16(s.next() % cfg.B),
				SrcAddr: uint16(s.next() % cfg.R),
				Dst:     uint16(s.next() % cfg.B),
				Rst:     s.next()%2 == 1,
			})
		}
		return in
	}
}

// FuzzEncodeDisasmRoundTrip checks the instruction codec over arbitrary
// configurations and instructions: pack → decode → repack must be a bit
// identity, the packed length must match the advertised per-kind width,
// and both sides must disassemble to the same text.
func FuzzEncodeDisasmRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Add([]byte{0: 200, 63: 7})
	f.Add(bytes.Repeat([]byte{0xA5, 0x3C, 9}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		s := &fuzzSource{data: data}
		cfg := fuzzConfig(s)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("generator produced invalid config %s: %v", cfg, err)
		}
		w := WidthsOf(cfg)
		in := fuzzInstr(s, cfg)
		if err := in.Validate(cfg); err != nil {
			t.Fatalf("generator produced invalid instr (%s): %v", Disassemble(in, cfg), err)
		}

		var bw BitWriter
		Encode(in, cfg, w, &bw)
		if bw.Bits() != w.Len(in.Kind) {
			t.Fatalf("%s: packed %d bits, Widths advertises %d", in.Kind, bw.Bits(), w.Len(in.Kind))
		}

		out, err := Decode(NewBitReader(bw.Bytes()), cfg, w)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if out.Kind != in.Kind {
			t.Fatalf("kind changed: %v -> %v", in.Kind, out.Kind)
		}

		var bw2 BitWriter
		Encode(out, cfg, w, &bw2)
		if bw2.Bits() != bw.Bits() || !bytes.Equal(bw2.Bytes(), bw.Bytes()) {
			t.Fatalf("repack not identical for %s:\n  first  %x (%d bits)\n  second %x (%d bits)",
				in.Kind, bw.Bytes(), bw.Bits(), bw2.Bytes(), bw2.Bits())
		}

		d1, d2 := Disassemble(in, cfg), Disassemble(out, cfg)
		if d1 != d2 {
			t.Fatalf("disassembly diverges:\n  in:  %s\n  out: %s", d1, d2)
		}
		if err := out.Validate(cfg); err != nil {
			t.Fatalf("decoded instruction invalid: %v", err)
		}
	})
}
