package compiler

import "dpuv2/internal/dag"

// Partition assigns every node a coarse partition id by chunking the
// topological order into ranges of ≈size interior nodes. The paper uses
// the linear-time partitioner of GRAPHOPT [44] to split multi-million-node
// PCs into 20k-node partitions that are then decomposed into blocks
// independently (§V-B "Compilation time"); chunked topological order is
// the same contract — acyclic partition graph, bounded partition size —
// without the constrained-optimization machinery.
func Partition(g *dag.Graph, size int) []int32 {
	if size < 1 {
		size = 1
	}
	part := make([]int32, g.NumNodes())
	count, cur := 0, int32(0)
	for i := 0; i < g.NumNodes(); i++ {
		if count >= size {
			cur++
			count = 0
		}
		part[i] = cur
		if !g.Op(dag.NodeID(i)).IsLeaf() {
			count++
		}
	}
	return part
}

// partitionKeys combines partition ids with DFS order into the priority
// keys used by the block builder: earlier partitions drain completely
// before later ones begin, so each partition is decomposed independently.
func partitionKeys(g *dag.Graph, dfs []int32, size int) []int64 {
	keys := make([]int64, g.NumNodes())
	if size <= 0 {
		for i, d := range dfs {
			keys[i] = int64(d)
		}
		return keys
	}
	part := Partition(g, size)
	for i, d := range dfs {
		keys[i] = int64(part[i])<<32 | int64(d)
	}
	return keys
}
