package compiler

import (
	"fmt"
	"math/bits"
	"math/rand"

	"dpuv2/internal/arch"
	"dpuv2/internal/dag"
)

// Step 2b — register-bank mapping (§IV-B, algorithm 2).
//
// Every io value (DAG leaves, which enter through vector loads whose lane
// fixes their bank, and block outputs, whose PE fixes the banks it can
// reach) gets a home bank. The allocator keeps a compatible-bank set per
// value, always maps the value with the fewest compatible banks next
// (found in O(B) through the Mnodes bucket structure), picks uniformly
// among compatible banks (objective J: balance), and when no compatible
// bank remains falls back to the least-contended one (objective I:
// minimize conflicts). Each assignment removes the chosen bank from the
// compatible sets of values read or written simultaneously (constraints F
// and G); output values never leave their PE's writable set (constraint
// H is a hard hardware restriction).
//
// Banks are represented as bits of a uint64, which caps B at 64 — the
// largest point of the paper's design space.

type bankAlloc struct {
	bank []int8 // home bank per value, -1 while unassigned
	// conflict statistics
	fallbacks int
}

type valConstraints struct {
	compat []uint64 // remaining compatible banks per value
	groups [][]ValID
	member [][]int32 // value -> indexes into groups
}

func allocateBanks(g *dag.Graph, cfg arch.Config, blocks []*Block, opts Options) (*bankAlloc, error) {
	if cfg.B > 64 {
		return nil, fmt.Errorf("compiler: B=%d exceeds the 64-bank allocator limit", cfg.B)
	}
	nv := g.NumNodes()
	allBanks := uint64(1)<<uint(cfg.B) - 1

	vc := &valConstraints{
		compat: make([]uint64, nv),
		member: make([][]int32, nv),
	}
	isIO := make([]bool, nv)

	// Initialize compatible sets.
	for i := 0; i < nv; i++ {
		if g.Op(dag.NodeID(i)).IsLeaf() {
			vc.compat[i] = allBanks
			isIO[i] = true
		}
	}
	hard := make([]uint64, nv) // hardware-writable mask for outputs
	for i := range hard {
		hard[i] = allBanks
	}
	for _, b := range blocks {
		for _, v := range b.Outputs {
			var m uint64
			for _, bk := range cfg.WritableBanks(b.OutPE[v]) {
				m |= 1 << uint(bk)
			}
			vc.compat[v] = m
			hard[v] = m
			isIO[v] = true
		}
	}

	// Constraint groups: inputs of a block must differ pairwise (F),
	// outputs of a block must differ pairwise (G).
	addGroup := func(vals []ValID) {
		if len(vals) < 2 {
			return
		}
		gi := int32(len(vc.groups))
		vc.groups = append(vc.groups, vals)
		for _, v := range vals {
			vc.member[v] = append(vc.member[v], gi)
		}
	}
	for _, b := range blocks {
		addGroup(b.Inputs)
		addGroup(b.Outputs)
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	ba := &bankAlloc{bank: make([]int8, nv)}
	for i := range ba.bank {
		ba.bank[i] = -1
	}

	if opts.RandomBanks {
		// Fig. 10(b) baseline: uniform random placement, ignoring F/G
		// but still honouring the hardware-writable sets.
		for i := 0; i < nv; i++ {
			if !isIO[i] {
				continue
			}
			m := hard[i]
			k := rng.Intn(bits.OnesCount64(m))
			ba.bank[i] = int8(nthSetBit(m, k))
		}
		return ba, nil
	}

	// Mnodes buckets keyed by |compat|; entries are revalidated lazily.
	buckets := make([][]ValID, cfg.B+1)
	pending := 0
	for i := 0; i < nv; i++ {
		if isIO[i] {
			c := bits.OnesCount64(vc.compat[i])
			buckets[c] = append(buckets[c], ValID(i))
			pending++
		}
	}

	for pending > 0 {
		// Lowest non-empty bucket with a still-valid entry.
		var v ValID = InvalidVal
		for c := 0; c <= cfg.B && v == InvalidVal; c++ {
			for len(buckets[c]) > 0 {
				cand := buckets[c][len(buckets[c])-1]
				buckets[c] = buckets[c][:len(buckets[c])-1]
				if ba.bank[cand] >= 0 {
					continue // already assigned (stale entry)
				}
				if bits.OnesCount64(vc.compat[cand]) != c {
					continue // moved to another bucket (stale entry)
				}
				v = cand
				break
			}
		}
		if v == InvalidVal {
			return nil, fmt.Errorf("compiler: bank allocator buckets drained with %d values pending", pending)
		}
		pending--

		var chosen int
		if m := vc.compat[v]; m != 0 {
			chosen = nthSetBit(m, rng.Intn(bits.OnesCount64(m)))
		} else {
			// No conflict-free bank remains: pick the least-contended
			// hardware-legal bank, measured over this value's groups.
			ba.fallbacks++
			contention := make([]int, cfg.B)
			for _, gi := range vc.member[v] {
				for _, u := range vc.groups[gi] {
					if u != v && ba.bank[u] >= 0 {
						contention[ba.bank[u]]++
					}
				}
			}
			best, bestC := -1, 1<<30
			for bk := 0; bk < cfg.B; bk++ {
				if hard[v]&(1<<uint(bk)) == 0 {
					continue
				}
				if contention[bk] < bestC {
					best, bestC = bk, contention[bk]
				}
			}
			chosen = best
		}
		ba.bank[v] = int8(chosen)

		// Constraint propagation: remove the bank from partners' sets.
		for _, gi := range vc.member[v] {
			for _, u := range vc.groups[gi] {
				if u == v || ba.bank[u] >= 0 {
					continue
				}
				bit := uint64(1) << uint(chosen)
				if vc.compat[u]&bit == 0 {
					continue
				}
				vc.compat[u] &^= bit
				c := bits.OnesCount64(vc.compat[u])
				buckets[c] = append(buckets[c], u)
			}
		}
	}
	return ba, nil
}

// nthSetBit returns the position of the k-th (0-based) set bit of m.
func nthSetBit(m uint64, k int) int {
	for i := 0; i < k; i++ {
		m &= m - 1
	}
	return bits.TrailingZeros64(m)
}
