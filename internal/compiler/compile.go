package compiler

import (
	"fmt"
	"time"

	"dpuv2/internal/arch"
	"dpuv2/internal/dag"
)

// Normalized returns the options with defaulted fields filled in, the
// form Compile actually runs with. Cache layers key on it so that the
// zero value and an explicitly spelled-out default address the same
// compiled program.
func (o Options) Normalized() Options { return o.normalize() }

// Compile lowers a DAG to a DPU-v2 program for the given configuration,
// running the four steps of §IV. Non-binary graphs are binarized first;
// the returned Compiled carries the remapping.
func Compile(g *dag.Graph, cfg arch.Config, opts Options) (*Compiled, error) {
	start := time.Now()
	cfg = cfg.Normalize()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Output == arch.OutOneToOne {
		return nil, fmt.Errorf("compiler: topology %s has no input crossbar and is not compilable (§III-C rejects it)", cfg.Output)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	opts = opts.normalize()

	bg := g
	var remap []dag.NodeID
	if g.IsBinary() {
		remap = make([]dag.NodeID, g.NumNodes())
		for i := range remap {
			remap[i] = dag.NodeID(i)
		}
	} else {
		bg, remap = dag.Binarize(g)
	}

	stats := &Stats{}
	keys := partitionKeys(bg, dag.DFSOrder(bg), opts.PartitionSize)
	blocks, err := decompose(bg, cfg, opts, keys)
	if err != nil {
		return nil, err
	}
	stats.Blocks = len(blocks)

	exp := newExpansion(cfg, bg.NumNodes())
	for _, b := range blocks {
		if err := exp.expand(bg, b); err != nil {
			return nil, err
		}
	}

	ba, err := allocateBanks(bg, cfg, blocks, opts)
	if err != nil {
		return nil, err
	}

	ds := newDraftState(bg, cfg, ba, opts.Seed, stats)
	outWord, err := ds.buildDraft(blocks)
	if err != nil {
		return nil, err
	}

	sched := reorder(ds.ops, len(ds.vals), cfg.D, opts.Window)

	ra := newRegalloc(ds, sched, stats)
	instrs, err := ra.run(sched)
	if err != nil {
		return nil, err
	}

	prog := arch.NewProgram(cfg)
	for i, in := range instrs {
		if err := prog.Append(in); err != nil {
			return nil, fmt.Errorf("compiler: emitted invalid instruction %d: %w", i, err)
		}
	}

	// Data-memory image: every touched row, including the spill region
	// (zero-initialized), with constant leaves filled in.
	words := len(ds.rowMask) * cfg.B
	if words > cfg.DataMemWords {
		return nil, fmt.Errorf("compiler: memory image needs %d words, data memory holds %d", words, cfg.DataMemWords)
	}
	prog.InitMem = make([]float64, words)
	for i := 0; i < bg.NumNodes(); i++ {
		v := ValID(i)
		if bg.Op(dag.NodeID(i)) == dag.OpConst && ds.vals[v].word >= 0 {
			prog.InitMem[ds.vals[v].word] = bg.Node(dag.NodeID(i)).Val
		}
	}

	// Input words, in graph-input order; -1 for inputs nothing consumes.
	var inputWord []int
	for _, id := range bg.Inputs() {
		if w := ds.vals[id].word; w >= 0 {
			inputWord = append(inputWord, int(w))
		} else {
			inputWord = append(inputWord, -1)
		}
	}

	// Final stats.
	for i := 0; i < bg.NumNodes(); i++ {
		if !bg.Op(dag.NodeID(i)).IsLeaf() {
			stats.Nodes++
		}
	}
	stats.Instructions = len(prog.Instrs)
	stats.Cycles = len(prog.Instrs) + cfg.D + 1
	if stats.Execs > 0 {
		stats.MeanUtil /= float64(stats.Execs)
	}
	stats.CompileSeconds = time.Since(start).Seconds()

	return &Compiled{
		Prog:       prog,
		Graph:      bg,
		Remap:      remap,
		InputWord:  inputWord,
		OutputWord: outWord,
		Stats:      *stats,
	}, nil
}
