package compiler

import (
	"fmt"

	"dpuv2/internal/arch"
)

// Step 4 — register allocation, spilling and emission (§IV-D).
//
// The hardware writes every incoming value to the lowest free address of
// its bank (valid-bit priority encoder), so the compiler runs the exact
// same deterministic policy over the schedule: it tracks per-bank
// occupancy cycle by cycle, learns each value's address when its write
// "lands", encodes read addresses and last-read valid_rst bits, inserts
// nops for residual RAW hazards and write-port collisions, and when a
// bank would overflow spills the resident value with the furthest next
// use (Belady) via store_4, reloading it before its next consumer.
//
// Micro-timing contract (the simulator implements the identical rules):
//   - an instruction issued at cycle t performs its register reads (and
//     valid_rst frees) at t;
//   - its writes land at the end of cycle t+1 (load, copy) or t+D (exec)
//     and become readable from cycle t+2 / t+D+1;
//   - within one cycle, frees apply before landing writes allocate;
//   - at most one write may land per bank per cycle.

const useInf = int32(1 << 30)

type pendingWrite struct {
	val  ValID
	bank int
}

type regalloc struct {
	ds  *draftState
	cfg arch.Config

	out []*arch.Instr

	loc      []int16 // register address per resident value
	resident []bool
	spilled  []bool // evicted to memory; reload before the next use

	occ      [][]bool
	occCnt   []int
	inflight []int // writes scheduled but not landed, per bank

	// pipeline ring: writes landing at cycle c live in ring[c%len].
	ring     [][]pendingWrite
	ringMask []uint64 // banks written per ring slot

	uses   [][]int32 // per value: schedule positions of planned reads
	usePtr []int32

	spillHint []int // spill-region first-fit cursor per bank

	stats *Stats
}

func newRegalloc(ds *draftState, sched []*draftOp, stats *Stats) *regalloc {
	cfg := ds.cfg
	nv := len(ds.vals)
	r := &regalloc{
		ds: ds, cfg: cfg,
		loc:       make([]int16, nv),
		resident:  make([]bool, nv),
		spilled:   make([]bool, nv),
		occ:       make([][]bool, cfg.B),
		occCnt:    make([]int, cfg.B),
		inflight:  make([]int, cfg.B),
		ring:      make([][]pendingWrite, cfg.D+2),
		ringMask:  make([]uint64, cfg.D+2),
		uses:      make([][]int32, nv),
		usePtr:    make([]int32, nv),
		spillHint: make([]int, cfg.B),
		stats:     stats,
	}
	for b := range r.occ {
		r.occ[b] = make([]bool, cfg.R)
	}
	for i := range r.loc {
		r.loc[i] = -1
	}
	for j, op := range sched {
		if op == nil {
			continue
		}
		for _, v := range op.reads {
			r.uses[v] = append(r.uses[v], int32(j))
		}
	}
	return r
}

func (r *regalloc) cycle() int { return len(r.out) }

func (r *regalloc) bankOf(v ValID) int { return int(r.ds.vals[v].bank) }

func (r *regalloc) nextUse(v ValID) int32 {
	if int(r.usePtr[v]) < len(r.uses[v]) {
		return r.uses[v][r.usePtr[v]]
	}
	return useInf
}

// consume advances v's use pointer and reports whether that read was the
// last planned one (→ valid_rst).
func (r *regalloc) consume(v ValID) bool {
	r.usePtr[v]++
	return int(r.usePtr[v]) >= len(r.uses[v])
}

func (r *regalloc) scheduleWrite(v ValID, bank, land int) {
	slot := land % len(r.ring)
	r.ring[slot] = append(r.ring[slot], pendingWrite{v, bank})
	r.ringMask[slot] |= 1 << uint(bank)
	r.inflight[bank]++
}

// flushLand applies the writes landing at cycle t with lowest-free-address
// allocation, after the issuing instruction's frees (caller ordering).
func (r *regalloc) flushLand(t int) error {
	slot := t % len(r.ring)
	for _, pw := range r.ring[slot] {
		addr := -1
		for a := 0; a < r.cfg.R; a++ {
			if !r.occ[pw.bank][a] {
				addr = a
				break
			}
		}
		if addr < 0 {
			return fmt.Errorf("compiler: bank %d overflow at cycle %d (capacity planning bug)", pw.bank, t)
		}
		r.occ[pw.bank][addr] = true
		r.occCnt[pw.bank]++
		r.inflight[pw.bank]--
		r.loc[pw.val] = int16(addr)
		r.resident[pw.val] = true
	}
	r.ring[slot] = r.ring[slot][:0]
	r.ringMask[slot] = 0
	return nil
}

// emit appends instr at the current cycle: frees apply now, writes land at
// t+lat, then writes landing exactly at t are applied.
func (r *regalloc) emit(in *arch.Instr, frees []ValID, writes []pendingWrite, lat int) error {
	t := r.cycle()
	r.out = append(r.out, in)
	for _, v := range frees {
		b := r.bankOf(v)
		r.occ[b][r.loc[v]] = false
		r.occCnt[b]--
		r.resident[v] = false
		r.loc[v] = -1
	}
	for _, w := range writes {
		r.scheduleWrite(w.val, w.bank, t+lat)
	}
	return r.flushLand(t)
}

func (r *regalloc) emitNop() error {
	r.stats.Nops++
	return r.emit(&arch.Instr{Kind: arch.KindNop}, nil, nil, 1)
}

func (r *regalloc) writeConflict(mask uint64, land int) bool {
	return r.ringMask[land%len(r.ring)]&mask != 0
}

// pickVictim selects the resident, unpinned value of bank with the
// furthest next use. O(values); spills are rare at sane R.
func (r *regalloc) pickVictim(bank int, pinned map[ValID]bool, already []ValID) ValID {
	best := InvalidVal
	var bestUse int32 = -1
	for v := range r.ds.vals {
		vid := ValID(v)
		if !r.resident[vid] || r.bankOf(vid) != bank || pinned[vid] {
			continue
		}
		dup := false
		for _, u := range already {
			if u == vid {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		if nu := r.nextUse(vid); nu > bestUse {
			bestUse = nu
			best = vid
		}
	}
	return best
}

// spillWord returns (allocating if needed) the memory word backing v when
// evicted. Values with an existing word (leaves, stored sinks, previously
// spilled values) reuse it; the stored image is identical either way.
func (r *regalloc) spillWord(v ValID) int {
	if r.ds.vals[v].word >= 0 {
		return int(r.ds.vals[v].word)
	}
	bank := r.bankOf(v)
	row := r.spillHint[bank]
	if row < r.ds.rows {
		row = r.ds.rows // spill region sits above the init/output region
	}
	for {
		for row >= len(r.ds.rowMask) {
			r.ds.rowMask = append(r.ds.rowMask, 0)
		}
		if r.ds.rowMask[row]&(1<<uint(bank)) == 0 {
			r.ds.rowMask[row] |= 1 << uint(bank)
			r.spillHint[bank] = row
			w := row*r.cfg.B + bank
			r.ds.vals[v].word = int32(w)
			return w
		}
		row++
	}
}

// emitSpills flushes victims to memory via store_4 (read + valid_rst
// frees the register), batching lanes with distinct source banks sharing
// a memory row.
func (r *regalloc) emitSpills(victims []ValID) error {
	remaining := append([]ValID(nil), victims...)
	for len(remaining) > 0 {
		var batch []ValID
		var keep []ValID
		var mask uint64
		row := -1
		for _, v := range remaining {
			b := uint(r.bankOf(v))
			w := r.spillWord(v)
			vr := w / r.cfg.B
			if len(batch) < arch.MaxMoves && mask&(1<<b) == 0 && (row < 0 || vr == row) {
				batch = append(batch, v)
				mask |= 1 << b
				row = vr
			} else {
				keep = append(keep, v)
			}
		}
		remaining = keep
		in := &arch.Instr{Kind: arch.KindStore4, MemAddr: row}
		for _, v := range batch {
			in.Moves = append(in.Moves, arch.Move{
				SrcBank: uint16(r.bankOf(v)),
				SrcAddr: uint16(r.loc[v]),
				Dst:     uint16(int(r.ds.vals[v].word) % r.cfg.B),
				Rst:     true,
			})
			r.spilled[v] = true
		}
		r.stats.SpillStores += len(batch)
		if err := r.emit(in, batch, nil, 1); err != nil {
			return err
		}
	}
	return nil
}

// ensureCapacity spills until every bank in need can absorb its incoming
// writes; pinned values (operands of the op about to issue) stay.
func (r *regalloc) ensureCapacity(need map[int]int, pinned map[ValID]bool) error {
	for round := 0; ; round++ {
		var victims []ValID
		for bank, n := range need {
			over := r.occCnt[bank] + r.inflight[bank] + n - r.cfg.R
			for _, v := range victims {
				if r.bankOf(v) == bank {
					over--
				}
			}
			for ; over > 0; over-- {
				v := r.pickVictim(bank, pinned, victims)
				if v == InvalidVal {
					return fmt.Errorf("compiler: register file too small (R=%d, bank %d): working set exceeds capacity", r.cfg.R, bank)
				}
				victims = append(victims, v)
			}
		}
		if len(victims) == 0 {
			return nil
		}
		if round > r.cfg.B*r.cfg.R {
			return fmt.Errorf("compiler: spill livelock on banks %v", need)
		}
		if err := r.emitSpills(victims); err != nil {
			return err
		}
	}
}

// prepareReads reloads spilled operands and stalls until every operand is
// readable.
func (r *regalloc) prepareReads(reads []ValID, pinned map[ValID]bool) error {
	for _, v := range reads {
		if r.resident[v] || !r.spilled[v] {
			// Resident, or still in flight: waiting below resolves it.
			continue
		}
		if err := r.reload(v, pinned); err != nil {
			return err
		}
	}
	for {
		ok := true
		for _, v := range reads {
			if !r.resident[v] {
				ok = false
				break
			}
		}
		if ok {
			return nil
		}
		if err := r.emitNop(); err != nil {
			return err
		}
		if r.cycle() > 1<<26 {
			return fmt.Errorf("compiler: livelock waiting for operands")
		}
	}
}

// reload brings a spilled value back into its home bank.
func (r *regalloc) reload(v ValID, pinned map[ValID]bool) error {
	bank := r.bankOf(v)
	word := int(r.ds.vals[v].word)
	if err := r.ensureCapacity(map[int]int{bank: 1}, pinned); err != nil {
		return err
	}
	for r.writeConflict(1<<uint(bank), r.cycle()+1) {
		if err := r.emitNop(); err != nil {
			return err
		}
	}
	in := arch.NewLoad(r.cfg, word/r.cfg.B)
	in.Mask[bank] = true
	r.stats.Reloads++
	r.spilled[v] = false
	return r.emit(in, nil, []pendingWrite{{v, bank}}, 1)
}

// run processes the reordered schedule and produces the final instruction
// list.
func (r *regalloc) run(sched []*draftOp) ([]*arch.Instr, error) {
	for _, op := range sched {
		if op == nil {
			// Scheduler nop slot: only emit it if a hazard actually
			// remains; step 4 inserts its own nops on demand, so
			// scheduler slots are elided to keep the stream dense.
			continue
		}
		if err := r.emitOp(op); err != nil {
			return nil, err
		}
	}
	return r.out, nil
}

func (r *regalloc) emitOp(op *draftOp) error {
	reads := op.reads
	if op.kind == dStore || op.kind == dStore4 {
		// Values already spilled sit at their destination word (spill
		// words and store words coincide); keep only resident or
		// in-flight ones.
		reads = reads[:0:0]
		for _, v := range op.reads {
			if r.resident[v] || !r.spilled[v] {
				reads = append(reads, v)
			}
		}
	}
	pinned := make(map[ValID]bool, len(reads))
	for _, v := range reads {
		pinned[v] = true
	}
	if err := r.prepareReads(reads, pinned); err != nil {
		return err
	}
	// Capacity for this op's writes.
	need := map[int]int{}
	var writes []pendingWrite
	lat := 1
	switch op.kind {
	case dLoad:
		for _, v := range op.wrs {
			b := r.bankOf(v)
			need[b]++
			writes = append(writes, pendingWrite{v, b})
		}
	case dCopy:
		for i, m := range op.moves {
			_ = i
			need[m.dst]++
			writes = append(writes, pendingWrite{m.w, m.dst})
		}
	case dExec:
		lat = r.cfg.D
		for _, w := range op.wrs {
			b := op.outBank[w]
			need[b]++
			writes = append(writes, pendingWrite{w, b})
		}
	}
	if len(need) > 0 {
		if err := r.ensureCapacity(need, pinned); err != nil {
			return err
		}
	}
	// Write-port conflicts at the landing cycle.
	var mask uint64
	for b := range need {
		mask |= 1 << uint(b)
	}
	for mask != 0 && r.writeConflict(mask, r.cycle()+lat) {
		if err := r.emitNop(); err != nil {
			return err
		}
	}
	// Build and emit the concrete instruction.
	switch op.kind {
	case dLoad:
		in := arch.NewLoad(r.cfg, op.row)
		for _, v := range op.wrs {
			in.Mask[r.bankOf(v)] = true
		}
		return r.emit(in, nil, writes, 1)
	case dCopy:
		in := &arch.Instr{Kind: arch.KindCopy}
		var frees []ValID
		for _, m := range op.moves {
			rst := r.consume(m.src)
			if rst {
				frees = append(frees, m.src)
			}
			in.Moves = append(in.Moves, arch.Move{
				SrcBank: uint16(r.bankOf(m.src)),
				SrcAddr: uint16(r.loc[m.src]),
				Dst:     uint16(m.dst),
				Rst:     rst,
			})
		}
		return r.emit(in, frees, writes, 1)
	case dExec:
		in := arch.NewExec(r.cfg)
		copy(in.PEOps, op.block.PEOps)
		var frees []ValID
		for _, rv := range op.reads {
			b := r.bankOf(rv)
			in.ReadEn[b] = true
			in.ReadAddr[b] = uint16(r.loc[rv])
			if r.consume(rv) {
				in.ValidRst[b] = true
				frees = append(frees, rv)
			}
		}
		for port, v := range op.block.PortVal {
			if v == InvalidVal {
				continue
			}
			rv := op.alias[v]
			in.InputSel[port] = uint16(r.bankOf(rv))
		}
		for home, w := range op.outVal {
			b := op.outBank[w]
			sel, err := r.cfg.WriteSel(b, op.outPE[home])
			if err != nil {
				return err
			}
			in.WriteEn[b] = true
			in.WriteSel[b] = sel
		}
		return r.emit(in, frees, writes, r.cfg.D)
	case dStore:
		in := arch.NewStore(r.cfg, op.row)
		var frees []ValID
		for _, v := range op.reads {
			if !r.resident[v] && r.spilled[v] {
				continue // already in memory at its destination (spilled)
			}
			b := r.bankOf(v)
			in.ReadEn[b] = true
			in.ReadAddr[b] = uint16(r.loc[v])
			if r.consume(v) {
				in.ValidRst[b] = true
				frees = append(frees, v)
			}
		}
		return r.emit(in, frees, nil, 1)
	case dStore4:
		in := &arch.Instr{Kind: arch.KindStore4, MemAddr: op.row}
		var frees []ValID
		for _, m := range op.moves {
			if !r.resident[m.src] && r.spilled[m.src] {
				continue // spilled to its own destination word already
			}
			rst := r.consume(m.src)
			if rst {
				frees = append(frees, m.src)
			}
			in.Moves = append(in.Moves, arch.Move{
				SrcBank: uint16(r.bankOf(m.src)),
				SrcAddr: uint16(r.loc[m.src]),
				Dst:     uint16(m.dst),
				Rst:     rst,
			})
		}
		if len(in.Moves) == 0 {
			return nil // everything already in memory
		}
		return r.emit(in, frees, nil, 1)
	}
	return fmt.Errorf("compiler: unknown draft op kind %d", op.kind)
}
