package compiler

import (
	"fmt"

	"dpuv2/internal/arch"
	"dpuv2/internal/dag"
)

// Step 2a — spatial expansion. Each cone is unrolled onto the full binary
// subtree of its slot: the sink sits at the slot root, every node's
// in-cone arguments occupy its PE's children, in-cone fan-out is realized
// by replication (the same node placed at several PEs), and external
// values (register-file residents) enter at leaf input ports and ride
// bypass chains up to their consumer — interior PEs have no register read
// ports, only the leaf layer does (§III-A).

type expansion struct {
	cfg    arch.Config
	inCone []int32 // node -> stamp when in current block
	stamp  int32
	posBuf map[dag.NodeID][]arch.PE
}

func newExpansion(cfg arch.Config, n int) *expansion {
	return &expansion{cfg: cfg, inCone: make([]int32, n), posBuf: make(map[dag.NodeID][]arch.PE)}
}

// expand fills block.PEOps/PortVal/Inputs/Outputs/OutPE.
func (e *expansion) expand(g *dag.Graph, block *Block) error {
	e.stamp++
	for _, sg := range block.Subgraphs {
		for _, n := range sg.Nodes {
			e.inCone[n] = e.stamp
		}
	}
	block.PEOps = make([]arch.PEOp, e.cfg.NumPEs())
	block.PortVal = make([]ValID, e.cfg.B)
	for i := range block.PortVal {
		block.PortVal[i] = InvalidVal
	}
	for k := range e.posBuf {
		delete(e.posBuf, k)
	}

	var place func(n dag.NodeID, pe arch.PE) error
	var route func(v ValID, pe arch.PE) error

	// route carries an external value from a leaf port up to pe's output
	// through bypass PEs.
	route = func(v ValID, pe arch.PE) error {
		id := e.cfg.PEID(pe)
		if block.PEOps[id] != arch.PEIdle {
			return fmt.Errorf("compiler: bypass collision at PE %+v", pe)
		}
		block.PEOps[id] = arch.PEBypassL
		if pe.Layer == 1 {
			p0, _ := e.cfg.InputPorts(pe)
			block.PortVal[p0] = v
			return nil
		}
		c0, _, _ := e.cfg.Children(pe)
		return route(v, c0)
	}

	place = func(n dag.NodeID, pe arch.PE) error {
		id := e.cfg.PEID(pe)
		if block.PEOps[id] != arch.PEIdle {
			return fmt.Errorf("compiler: placement collision at PE %+v", pe)
		}
		op := peOpFor(g.Op(n))
		if op == arch.PEIdle {
			return fmt.Errorf("compiler: node %d has non-arithmetic op %v", n, g.Op(n))
		}
		block.PEOps[id] = op
		e.posBuf[n] = append(e.posBuf[n], pe)
		args := g.Args(n)
		if len(args) != 2 {
			return fmt.Errorf("compiler: node %d has %d args; graph not binarized", n, len(args))
		}
		if pe.Layer == 1 {
			p0, p1 := e.cfg.InputPorts(pe)
			ports := [2]int{p0, p1}
			for i, a := range args {
				if e.inCone[a] == e.stamp {
					return fmt.Errorf("compiler: leaf-layer node %d has in-cone arg %d", n, a)
				}
				block.PortVal[ports[i]] = ValID(a)
			}
			return nil
		}
		c0, c1, _ := e.cfg.Children(pe)
		children := [2]arch.PE{c0, c1}
		for i, a := range args {
			if e.inCone[a] == e.stamp {
				if err := place(a, children[i]); err != nil {
					return err
				}
			} else if err := route(ValID(a), children[i]); err != nil {
				return err
			}
		}
		return nil
	}

	for _, sg := range block.Subgraphs {
		if err := place(sg.Sink, sg.Root); err != nil {
			return err
		}
	}

	// Distinct inputs.
	seen := make(map[ValID]bool)
	for _, v := range block.PortVal {
		if v != InvalidVal && !seen[v] {
			seen[v] = true
			block.Inputs = append(block.Inputs, v)
		}
	}

	// Outputs: nodes with any consumer outside the block, or DAG sinks.
	block.OutPE = make(map[ValID]arch.PE)
	for _, sg := range block.Subgraphs {
		for _, n := range sg.Nodes {
			io := len(g.Succs(n)) == 0
			for _, s := range g.Succs(n) {
				if e.inCone[s] != e.stamp {
					io = true
					break
				}
			}
			if !io {
				continue
			}
			best := e.posBuf[n][0]
			for _, p := range e.posBuf[n][1:] {
				if p.Layer > best.Layer {
					best = p
				}
			}
			block.Outputs = append(block.Outputs, ValID(n))
			block.OutPE[ValID(n)] = best
		}
	}
	return nil
}
