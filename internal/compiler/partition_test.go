package compiler

import (
	"testing"

	"dpuv2/internal/arch"
	"dpuv2/internal/dag"
	"dpuv2/internal/pc"
)

func TestPartitionBoundsAndMonotonic(t *testing.T) {
	g := testGraph(21, 5000)
	part := Partition(g, 500)
	counts := map[int32]int{}
	last := int32(0)
	for i := 0; i < g.NumNodes(); i++ {
		p := part[i]
		if p < last {
			t.Fatalf("partition ids must be monotone over topological order")
		}
		last = p
		if !g.Op(dag.NodeID(i)).IsLeaf() {
			counts[p]++
		}
	}
	for p, c := range counts {
		if c > 500+1 {
			t.Fatalf("partition %d holds %d interior nodes, cap 500", p, c)
		}
	}
	if len(counts) < 5 {
		t.Fatalf("expected several partitions, got %d", len(counts))
	}
	// Acyclicity across partitions: edges never point to later partitions.
	for i := 0; i < g.NumNodes(); i++ {
		for _, a := range g.Args(dag.NodeID(i)) {
			if part[a] > part[i] {
				t.Fatalf("edge %d->%d crosses partitions backwards", a, i)
			}
		}
	}
}

func TestPartitionKeysOrdering(t *testing.T) {
	g := testGraph(23, 1000)
	dfs := dag.DFSOrder(g)
	keys := partitionKeys(g, dfs, 100)
	part := Partition(g, 100)
	for i := 1; i < g.NumNodes(); i++ {
		if part[i] > part[i-1] && keys[i] <= keys[i-1] {
			t.Fatalf("keys must order later partitions after earlier ones")
		}
	}
	// Without partitioning, keys equal DFS order.
	flat := partitionKeys(g, dfs, 0)
	for i, k := range flat {
		if k != int64(dfs[i]) {
			t.Fatalf("flat keys should equal DFS order")
		}
	}
}

func TestPartitionedCompileStillCorrect(t *testing.T) {
	// The large-PC flow: partitioned decomposition must not change
	// functional behaviour, only block locality.
	g := pc.Build(pc.LargeSuite()[0], 0.01)
	for _, size := range []int{0, 400} {
		c, err := Compile(g, arch.MinEDP(), Options{PartitionSize: size})
		if err != nil {
			t.Fatalf("size=%d: %v", size, err)
		}
		if c.Stats.Blocks == 0 {
			t.Fatalf("size=%d: no blocks", size)
		}
	}
}
