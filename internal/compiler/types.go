// Package compiler translates a DAG into a DPU-v2 program following the
// four compilation steps of §IV: block decomposition, PE and register-bank
// mapping, pipeline-aware reordering, and register spilling with concrete
// address assignment. The compiler mirrors the hardware's deterministic
// behaviour — in particular the automatic lowest-free-slot write-address
// policy — so every register address is known at compile time and bank
// conflicts are repaired with explicit copy instructions rather than
// arbitrated at run time.
package compiler

import (
	"dpuv2/internal/arch"
	"dpuv2/internal/dag"
)

// ValID identifies a value that lives in the register file or data memory:
// ids below the graph's node count are that node's output (leaf values and
// block-io results); higher ids are copy-temporaries created for conflict
// repair.
type ValID int32

// InvalidVal is the absent value.
const InvalidVal ValID = -1

// Subgraph is one schedulable cone (§IV-A): the complete set of unmapped
// ancestors of Sink, mapped onto the subtree of depth Depth rooted at
// Root. Cones are disjoint within and across blocks.
type Subgraph struct {
	Sink  dag.NodeID
	Nodes []dag.NodeID
	Depth int
	Root  arch.PE
}

// Block is a monolithic unit executed by a single exec instruction: a set
// of cones placed onto disjoint subtree slots of the datapath, plus the
// placement artifacts produced by expansion.
type Block struct {
	Subgraphs []Subgraph

	// PEOps configures every PE for this block's exec cycle (idle when
	// unused, bypass for routing register values upward).
	PEOps []arch.PEOp
	// PortVal[i] is the external value fed to datapath input port i, or
	// InvalidVal. Multiple ports may carry the same value (the input
	// crossbar broadcasts a single bank read).
	PortVal []ValID
	// Inputs is the deduplicated PortVal content.
	Inputs []ValID
	// Outputs lists the values this block must write to the register
	// file: cone nodes with consumers outside the block, and DAG sinks.
	Outputs []ValID
	// OutPE maps each output to the PE chosen to drive its write (the
	// highest-layer replica, which has the widest bank connectivity).
	OutPE map[ValID]arch.PE
}

// Options tunes compilation. The zero value is the paper's configuration.
type Options struct {
	// Seed drives the randomized tie-breaks of the bank allocator
	// (objective J spreads values by choosing uniformly among compatible
	// banks).
	Seed int64
	// RandomBanks replaces the conflict-aware allocator of step 2 with
	// uniform random placement; fig. 10(b) uses this as its baseline.
	RandomBanks bool
	// Window is the reorder search window of step 3 (default 300, the
	// paper's setting).
	Window int
	// SeedLookahead and FillLookahead bound the candidate scans of the
	// greedy block builder (step 1).
	SeedLookahead, FillLookahead int
	// PartitionSize, when positive, coarsely partitions the DAG into
	// chunks of this many interior nodes that are decomposed into blocks
	// independently, the strategy the paper uses for multi-million-node
	// PCs (§V-B). Zero disables partitioning.
	PartitionSize int
}

func (o Options) normalize() Options {
	if o.Window <= 0 {
		o.Window = 300
	}
	if o.SeedLookahead <= 0 {
		o.SeedLookahead = 16
	}
	if o.FillLookahead <= 0 {
		o.FillLookahead = 24
	}
	return o
}

// Stats reports what compilation did; the experiment harness consumes
// these for fig. 6(e), fig. 10, fig. 13 and Table I.
type Stats struct {
	Nodes          int // interior nodes executed
	Blocks         int
	Execs          int
	Copies         int // copy_4 instructions emitted
	CopiedWords    int // individual repaired words (the bank-conflict count)
	InputConflicts int // conflicts among block inputs (constraint F)
	OutputMoves    int // outputs written away from home (constraints G/H)
	Loads          int
	Stores         int
	SpillStores    int // values evicted by register pressure
	Reloads        int // values loaded back after a spill
	Nops           int
	Instructions   int
	Cycles         int     // instructions + pipeline drain
	PeakUtil       float64 // busiest exec: arithmetic PEs / total PEs
	MeanUtil       float64 // average over execs
	CompileSeconds float64
}

// Compiled is the result of Compile: the program plus the metadata needed
// to run and verify it.
type Compiled struct {
	Prog *arch.Program
	// Graph is the binarized DAG the program executes.
	Graph *dag.Graph
	// Remap maps the caller's original node ids to Graph's ids (identity
	// when the input was already binary).
	Remap []dag.NodeID
	// InputWord[i] is the data-memory word holding the i-th OpInput (in
	// Graph input order); the runner writes input values there.
	InputWord []int
	// OutputWord maps every sink of Graph to the data-memory word that
	// holds its value after the program finishes.
	OutputWord map[dag.NodeID]int
	Stats      Stats
}

func peOpFor(op dag.Op) arch.PEOp {
	switch op {
	case dag.OpAdd:
		return arch.PEAdd
	case dag.OpMul:
		return arch.PEMul
	}
	return arch.PEIdle
}
