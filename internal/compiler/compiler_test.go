package compiler

import (
	"testing"

	"dpuv2/internal/arch"
	"dpuv2/internal/dag"
	"dpuv2/internal/pc"
)

func testGraph(seed int64, n int) *dag.Graph {
	g := dag.RandomGraph(dag.RandomConfig{Inputs: 20, Interior: n, MaxArgs: 3, MulFrac: 0.5, Seed: seed})
	bg, _ := dag.Binarize(g)
	return bg
}

func decomposeFor(t *testing.T, g *dag.Graph, cfg arch.Config) []*Block {
	t.Helper()
	blocks, err := decompose(g, cfg.Normalize(), Options{}.normalize(), partitionKeys(g, dag.DFSOrder(g), 0))
	if err != nil {
		t.Fatal(err)
	}
	return blocks
}

// Step-1 invariants: every interior node in exactly one cone, cone depths
// within D, block order topological (constraint A), slots disjoint.
func TestDecomposeInvariants(t *testing.T) {
	cfg := arch.Config{D: 3, B: 16, R: 32, Output: arch.OutPerLayer}.Normalize()
	g := testGraph(5, 800)
	blocks := decomposeFor(t, g, cfg)

	covered := make(map[dag.NodeID]int)
	blockOf := make(map[dag.NodeID]int)
	for bi, b := range blocks {
		usedPE := map[int]bool{}
		for _, sg := range b.Subgraphs {
			if sg.Depth < 1 || sg.Depth > cfg.D {
				t.Fatalf("block %d: subgraph depth %d out of range", bi, sg.Depth)
			}
			if sg.Root.Layer != sg.Depth {
				t.Fatalf("block %d: slot root layer %d != depth %d", bi, sg.Root.Layer, sg.Depth)
			}
			// Subtree slots within one block must be disjoint: collect
			// the slot's PE ids.
			var walk func(p arch.PE)
			walk = func(p arch.PE) {
				id := cfg.PEID(p)
				if usedPE[id] {
					t.Fatalf("block %d: overlapping slots at PE %d", bi, id)
				}
				usedPE[id] = true
				if l, r, ok := cfg.Children(p); ok {
					walk(l)
					walk(r)
				}
			}
			walk(sg.Root)
			for _, n := range sg.Nodes {
				covered[n]++
				blockOf[n] = bi
			}
		}
	}
	interior := 0
	for i := 0; i < g.NumNodes(); i++ {
		id := dag.NodeID(i)
		if g.Op(id).IsLeaf() {
			continue
		}
		interior++
		if covered[id] != 1 {
			t.Fatalf("node %d covered %d times", id, covered[id])
		}
		// Constraint A: args must be leaves or in the same/earlier block.
		for _, a := range g.Args(id) {
			if g.Op(a).IsLeaf() {
				continue
			}
			if blockOf[a] > blockOf[id] {
				t.Fatalf("node %d (block %d) depends on node %d (block %d)", id, blockOf[id], a, blockOf[a])
			}
		}
	}
	if interior == 0 {
		t.Fatal("degenerate test graph")
	}
}

// Expansion invariants: ports feed leaf PEs consistently, every
// non-idle PE has live operands, outputs have writable PEs.
func TestExpandInvariants(t *testing.T) {
	cfg := arch.Config{D: 3, B: 16, R: 32, Output: arch.OutPerLayer}.Normalize()
	g := testGraph(7, 500)
	blocks := decomposeFor(t, g, cfg)
	exp := newExpansion(cfg, g.NumNodes())
	for bi, b := range blocks {
		if err := exp.expand(g, b); err != nil {
			t.Fatalf("block %d: %v", bi, err)
		}
		if len(b.PEOps) != cfg.NumPEs() || len(b.PortVal) != cfg.B {
			t.Fatalf("block %d: wrong artifact sizes", bi)
		}
		for v, pe := range b.OutPE {
			if b.PEOps[cfg.PEID(pe)] != arch.PEAdd && b.PEOps[cfg.PEID(pe)] != arch.PEMul {
				t.Fatalf("block %d: output %d driven by non-arithmetic PE", bi, v)
			}
		}
		// Every arithmetic leaf PE's ports are populated.
		for id, op := range b.PEOps {
			p := cfg.PECoord(id)
			if p.Layer != 1 {
				continue
			}
			l, r := cfg.InputPorts(p)
			switch op {
			case arch.PEAdd, arch.PEMul:
				if b.PortVal[l] == InvalidVal || b.PortVal[r] == InvalidVal {
					t.Fatalf("block %d: leaf PE %d missing port values", bi, id)
				}
			case arch.PEBypassL:
				if b.PortVal[l] == InvalidVal {
					t.Fatalf("block %d: bypass PE %d missing left port", bi, id)
				}
			}
		}
	}
}

// Step-2 invariants: hardware-writable constraint (H) always holds; the
// conflict-aware allocator produces far fewer violations of F/G than
// random assignment.
func TestBankAllocationRespectsHardware(t *testing.T) {
	cfg := arch.Config{D: 3, B: 16, R: 32, Output: arch.OutPerLayer}.Normalize()
	g := testGraph(9, 600)
	blocks := decomposeFor(t, g, cfg)
	exp := newExpansion(cfg, g.NumNodes())
	for _, b := range blocks {
		if err := exp.expand(g, b); err != nil {
			t.Fatal(err)
		}
	}
	ba, err := allocateBanks(g, cfg, blocks, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		for _, v := range b.Outputs {
			bank := int(ba.bank[v])
			if bank < 0 {
				t.Fatalf("output %d unassigned", v)
			}
			if !cfg.CanWrite(b.OutPE[v], bank) {
				// Constraint H is soft only through post-copies; the
				// allocator itself must stay within the writable set.
				t.Fatalf("output %d assigned bank %d outside PE reach", v, bank)
			}
		}
	}
}

func countConflicts(t *testing.T, g *dag.Graph, cfg arch.Config, random bool) int {
	t.Helper()
	c, err := Compile(g, cfg, Options{Seed: 3, RandomBanks: random})
	if err != nil {
		t.Fatal(err)
	}
	return c.Stats.CopiedWords
}

func TestConflictAwareBeatsRandom(t *testing.T) {
	// Fig. 10(b): the paper reports ~292× fewer conflicts than random
	// allocation; the exact factor depends on the workload, but ours must
	// be at least an order of magnitude.
	cfg := arch.Config{D: 3, B: 32, R: 64, Output: arch.OutPerLayer}
	g := pc.Build(pc.Suite()[0], 0.25)
	ours := countConflicts(t, g, cfg, false)
	random := countConflicts(t, g, cfg, true)
	if ours*5 > random {
		t.Fatalf("conflict-aware allocation not clearly better: ours=%d random=%d", ours, random)
	}
}

func TestCompileDeterministic(t *testing.T) {
	g := testGraph(11, 400)
	cfg := arch.Config{D: 3, B: 16, R: 32, Output: arch.OutPerLayer}
	a, err := Compile(g, cfg, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(g, cfg, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := a.Prog.Pack(), b.Prog.Pack()
	if len(pa) != len(pb) {
		t.Fatalf("program sizes differ: %d vs %d bytes", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("programs differ at byte %d", i)
		}
	}
}

func TestCompileRejectsOneToOne(t *testing.T) {
	g := testGraph(1, 50)
	_, err := Compile(g, arch.Config{D: 2, B: 8, R: 16, Output: arch.OutOneToOne}, Options{})
	if err == nil {
		t.Fatal("expected rejection of one-to-one topology")
	}
}

func TestCompileRejectsTooManyBanks(t *testing.T) {
	g := testGraph(1, 50)
	_, err := Compile(g, arch.Config{D: 3, B: 128, R: 16, Output: arch.OutPerLayer}, Options{})
	if err == nil {
		t.Fatal("expected rejection of B>64")
	}
}

func TestCompileTinyRegisterFileFails(t *testing.T) {
	// R=2 cannot hold even one block's inputs; the compiler must fail
	// with a diagnostic rather than emit a wrong program.
	g := testGraph(13, 200)
	_, err := Compile(g, arch.Config{D: 3, B: 16, R: 2, Output: arch.OutPerLayer}, Options{})
	if err == nil {
		t.Skip("R=2 compiled successfully (unusually small working set)")
	}
	t.Log(err)
}

func TestStatsAccounting(t *testing.T) {
	g := testGraph(15, 600)
	cfg := arch.Config{D: 3, B: 16, R: 32, Output: arch.OutPerLayer}
	c, err := Compile(g, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := c.Stats
	if s.Execs != s.Blocks {
		t.Errorf("execs %d != blocks %d", s.Execs, s.Blocks)
	}
	counts := c.Prog.Counts()
	if counts[arch.KindExec] != s.Execs {
		t.Errorf("program exec count %d != stats %d", counts[arch.KindExec], s.Execs)
	}
	if counts[arch.KindNop] != s.Nops {
		t.Errorf("program nop count %d != stats %d", counts[arch.KindNop], s.Nops)
	}
	if s.Instructions != len(c.Prog.Instrs) {
		t.Errorf("instruction count mismatch")
	}
	if s.Cycles != s.Instructions+cfg.D+1 {
		t.Errorf("cycles %d != instrs+D+1", s.Cycles)
	}
	if s.MeanUtil <= 0 || s.MeanUtil > 1 || s.PeakUtil < s.MeanUtil {
		t.Errorf("utilization accounting broken: mean=%v peak=%v", s.MeanUtil, s.PeakUtil)
	}
	if s.CompileSeconds <= 0 {
		t.Errorf("compile time not recorded")
	}
}

func TestReorderRespectsGaps(t *testing.T) {
	// Synthetic draft: producer exec then dependent exec; they must end
	// up ≥ D+1 slots apart.
	ops := []*draftOp{
		{kind: dExec, wrs: []ValID{0}},
		{kind: dExec, reads: []ValID{0}, wrs: []ValID{1}},
		{kind: dExec, wrs: []ValID{2}},
		{kind: dExec, wrs: []ValID{3}},
	}
	sched := reorder(ops, 4, 3, 300)
	pos := map[*draftOp]int{}
	for i, op := range sched {
		if op != nil {
			pos[op] = i
		}
	}
	if pos[ops[1]]-pos[ops[0]] < 4 {
		t.Fatalf("dependent execs %d apart, want ≥4", pos[ops[1]]-pos[ops[0]])
	}
	// Independent execs should have been hoisted into the gap.
	if pos[ops[2]] > pos[ops[1]] || pos[ops[3]] > pos[ops[1]] {
		t.Fatalf("independent work not hoisted: %v", pos)
	}
}

func TestWindowLimitsReordering(t *testing.T) {
	// With window=1 the scheduler degenerates to in-order issue with nop
	// slots; with the default window it finds the independent ops.
	var ops []*draftOp
	ops = append(ops, &draftOp{kind: dExec, wrs: []ValID{0}})
	ops = append(ops, &draftOp{kind: dExec, reads: []ValID{0}, wrs: []ValID{1}})
	for i := 2; i < 10; i++ {
		ops = append(ops, &draftOp{kind: dExec, wrs: []ValID{ValID(i)}})
	}
	narrow := reorder(ops, 10, 3, 1)
	wide := reorder(ops, 10, 3, 300)
	nNops := func(s []*draftOp) int {
		n := 0
		for _, op := range s {
			if op == nil {
				n++
			}
		}
		return n
	}
	if nNops(narrow) <= nNops(wide) {
		t.Fatalf("narrow window should need more nop slots: %d vs %d", nNops(narrow), nNops(wide))
	}
}

func TestProgramSizeReduction(t *testing.T) {
	// §III-B: automatic write addressing should save on the order of 30%
	// program size versus explicit write addresses.
	g := pc.Build(pc.Suite()[0], 0.25)
	c, err := Compile(g, arch.Config{D: 3, B: 16, R: 32, Output: arch.OutPerLayer}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	auto := c.Prog.BitSize()
	fixed := c.Prog.FixedWriteAddrBits()
	saving := 1 - float64(auto)/float64(fixed)
	if saving < 0.05 || saving > 0.6 {
		t.Fatalf("program-size saving %.1f%% outside plausible range", saving*100)
	}
}
