package compiler

import (
	"fmt"
	"math/bits"
	"math/rand"

	"dpuv2/internal/arch"
	"dpuv2/internal/dag"
)

// Step 2c — draft schedule. The blocks are turned into an abstract
// instruction list: just-in-time vector loads for leaf values, pre-copies
// repairing input bank conflicts (constraint F violations), the exec
// itself, post-copies moving outputs home when the output interconnect or
// constraint G forced them elsewhere, and final stores making every DAG
// sink observable in data memory. Concrete register addresses do not
// exist yet — they are assigned by step 4 after reordering.

type draftKind uint8

const (
	dLoad draftKind = iota
	dCopy
	dExec
	dStore  // full-vector store (lane = bank)
	dStore4 // gathered store of ≤4 words
)

type draftMove struct {
	src ValID
	dst int   // destination bank (copy) or memory lane (store4)
	w   ValID // value produced by a copy move (InvalidVal for stores)
}

type draftOp struct {
	kind  draftKind
	block *Block
	row   int         // memory row for load/store/store4
	reads []ValID     // values read at issue
	wrs   []ValID     // values written (land one/D cycles later)
	moves []draftMove // copy/store4 lanes
	// exec-only placement results
	alias   map[ValID]ValID // block input -> value actually read
	outVal  map[ValID]ValID // home output -> value the exec writes
	outPE   map[ValID]arch.PE
	outBank map[ValID]int // value written by exec -> bank
}

type valKind uint8

const (
	vLeaf valKind = iota
	vNode
	vTemp
)

type valInfo struct {
	kind valKind
	bank int8
	// word is the data-memory home: the init word for leaves, the
	// destination word for stored sinks, or the spill word once evicted.
	word int32
}

type draftState struct {
	g    *dag.Graph
	cfg  arch.Config
	rng  *rand.Rand
	vals []valInfo
	ops  []*draftOp

	// init-region memory layout: per-row lane occupancy, and a per-bank
	// cursor so first-fit stays O(1) amortized.
	rowMask []uint64
	rowHint []int
	rowVals [][]ValID // leaf values placed per row (load grouping)
	rows    int

	loaded   []bool  // leaf already covered by a draft load
	firstUse []int32 // leaf -> index of the first block consuming it

	stats *Stats
}

func newDraftState(g *dag.Graph, cfg arch.Config, ba *bankAlloc, seed int64, stats *Stats) *draftState {
	nv := g.NumNodes()
	ds := &draftState{
		g: g, cfg: cfg,
		rng:     rand.New(rand.NewSource(seed ^ 0x9e3779b9)),
		vals:    make([]valInfo, nv),
		rowHint: make([]int, cfg.B),
		loaded:  make([]bool, nv),
		stats:   stats,
	}
	for i := 0; i < nv; i++ {
		k := vNode
		if g.Op(dag.NodeID(i)).IsLeaf() {
			k = vLeaf
		}
		ds.vals[i] = valInfo{kind: k, bank: ba.bank[i], word: -1}
	}
	ds.firstUse = make([]int32, nv)
	for i := range ds.firstUse {
		ds.firstUse[i] = 1 << 30
	}
	return ds
}

func (ds *draftState) newTemp(bank int) ValID {
	ds.vals = append(ds.vals, valInfo{kind: vTemp, bank: int8(bank), word: -1})
	return ValID(len(ds.vals) - 1)
}

// placeLeafWord assigns a leaf value its init-memory word; lane equals the
// value's home bank because vector loads deliver lane i to bank i.
func (ds *draftState) placeLeafWord(v ValID) {
	if ds.vals[v].word >= 0 {
		return
	}
	bank := int(ds.vals[v].bank)
	r := ds.rowHint[bank]
	for {
		if r >= len(ds.rowMask) {
			ds.rowMask = append(ds.rowMask, 0)
		}
		if ds.rowMask[r]&(1<<uint(bank)) == 0 {
			ds.rowMask[r] |= 1 << uint(bank)
			ds.vals[v].word = int32(r*ds.cfg.B + bank)
			ds.rowHint[bank] = r
			for r >= len(ds.rowVals) {
				ds.rowVals = append(ds.rowVals, nil)
			}
			ds.rowVals[r] = append(ds.rowVals[r], v)
			if r+1 > ds.rows {
				ds.rows = r + 1
			}
			return
		}
		r++
	}
}

// placeLeaves lays every leaf out in first-use order with per-bank
// first-fit (lane must equal the home bank). Rows therefore mix lanes
// whose first uses are spread over the schedule; the lookahead filter in
// emitLoads decides which lanes ride along on each load, bounding both
// load count and register pressure.
func (ds *draftState) placeLeaves(blocks []*Block) {
	for bi, b := range blocks {
		for _, v := range b.Inputs {
			if ds.vals[v].kind != vLeaf {
				continue
			}
			if int32(bi) < ds.firstUse[v] {
				ds.firstUse[v] = int32(bi)
			}
			ds.placeLeafWord(v)
		}
	}
}

// placeAt records leaf v at (row, lane=bank).
func (ds *draftState) placeAt(v ValID, r, bank int) {
	ds.rowMask[r] |= 1 << uint(bank)
	ds.vals[v].word = int32(r*ds.cfg.B + bank)
	for r >= len(ds.rowVals) {
		ds.rowVals = append(ds.rowVals, nil)
	}
	ds.rowVals[r] = append(ds.rowVals[r], v)
	if r+1 > ds.rows {
		ds.rows = r + 1
	}
}

// loadLookahead is how many blocks ahead a vector load may prefetch:
// lanes of a touched row whose first use lies within this window ride
// along for free, amortizing the load without blowing up register
// pressure (leaves are laid out in first-use order, so row neighbours
// are temporally close).
const loadLookahead = 8

// emitLoads brings the block's leaf inputs into the register file, one
// masked vector load per touched memory row (fig. 5(b)).
func (ds *draftState) emitLoads(block *Block, bi int) {
	var rows []int
	seen := map[int]bool{}
	for _, v := range block.Inputs {
		if ds.vals[v].kind != vLeaf || ds.loaded[v] {
			continue
		}
		row := int(ds.vals[v].word) / ds.cfg.B
		if !seen[row] {
			seen[row] = true
			rows = append(rows, row)
		}
	}
	for _, row := range rows {
		op := &draftOp{kind: dLoad, row: row}
		for _, v := range ds.rowVals[row] {
			if !ds.loaded[v] && ds.firstUse[v] <= int32(bi+loadLookahead) {
				ds.loaded[v] = true
				op.wrs = append(op.wrs, v)
			}
		}
		ds.ops = append(ds.ops, op)
		ds.stats.Loads++
	}
}

// repairInputs resolves constraint-F violations: when several distinct
// inputs share a home bank, all but one are copied into free banks first;
// the exec then reads the replicas.
func (ds *draftState) repairInputs(block *Block) map[ValID]ValID {
	alias := make(map[ValID]ValID, len(block.Inputs))
	var used uint64
	var moves []draftMove
	// First value per bank stays; later arrivals are repaired, in the
	// deterministic block-input order.
	for _, v := range block.Inputs {
		b := int(ds.vals[v].bank)
		if used&(1<<uint(b)) == 0 {
			used |= 1 << uint(b)
			alias[v] = v
			continue
		}
		free := ^used & (uint64(1)<<uint(ds.cfg.B) - 1)
		if free == 0 {
			// Cannot happen: ≤B distinct inputs and a conflict implies
			// at least one unused bank.
			panic("compiler: no free bank for input repair")
		}
		dst := nthSetBit(free, ds.rng.Intn(bits.OnesCount64(free)))
		used |= 1 << uint(dst)
		tv := ds.newTemp(dst)
		alias[v] = tv
		moves = append(moves, draftMove{src: v, dst: dst, w: tv})
		ds.stats.InputConflicts++
	}
	ds.emitCopies(moves)
	return alias
}

// emitCopies batches moves into copy_4 instructions. Within one
// instruction source banks must be distinct (one read port per bank) and
// destination banks must be distinct (one write port per bank).
func (ds *draftState) emitCopies(moves []draftMove) {
	var cur *draftOp
	var srcMask, dstMask uint64
	flush := func() {
		if cur != nil {
			ds.ops = append(ds.ops, cur)
			ds.stats.Copies++
			cur, srcMask, dstMask = nil, 0, 0
		}
	}
	for _, m := range moves {
		sb := uint(ds.vals[m.src].bank)
		db := uint(m.dst)
		if cur != nil && (len(cur.moves) == arch.MaxMoves || srcMask&(1<<sb) != 0 || dstMask&(1<<db) != 0) {
			flush()
		}
		if cur == nil {
			cur = &draftOp{kind: dCopy}
		}
		cur.moves = append(cur.moves, m)
		cur.reads = append(cur.reads, m.src)
		cur.wrs = append(cur.wrs, m.w)
		srcMask |= 1 << sb
		dstMask |= 1 << db
		ds.stats.CopiedWords++
	}
	flush()
}

// matchOutputs assigns each block output a write bank within its PE's
// reach, preferring home banks and completing the assignment with
// augmenting paths (a perfect matching always exists for the supported
// topologies: the writable sets form a laminar family of dyadic
// intervals, so Hall's condition holds for distinct PEs).
func (ds *draftState) matchOutputs(block *Block) (map[ValID]int, error) {
	taken := make(map[int]ValID, len(block.Outputs))
	assign := make(map[ValID]int, len(block.Outputs))
	// First pass: home banks.
	for _, v := range block.Outputs {
		home := int(ds.vals[v].bank)
		if _, busy := taken[home]; !busy && ds.cfg.CanWrite(block.OutPE[v], home) {
			taken[home] = v
			assign[v] = home
		}
	}
	// Second pass: Kuhn augmenting for the rest.
	var augment func(v ValID, seen map[int]bool) bool
	augment = func(v ValID, seen map[int]bool) bool {
		for _, b := range ds.cfg.WritableBanks(block.OutPE[v]) {
			if seen[b] {
				continue
			}
			seen[b] = true
			holder, busy := taken[b]
			if !busy || augment(holder, seen) {
				taken[b] = v
				assign[v] = b
				return true
			}
		}
		return false
	}
	for _, v := range block.Outputs {
		if _, ok := assign[v]; ok {
			continue
		}
		if !augment(v, make(map[int]bool)) {
			return nil, fmt.Errorf("compiler: cannot match %d outputs to banks (topology %s)",
				len(block.Outputs), ds.cfg.Output)
		}
	}
	return assign, nil
}

// emitExec appends the exec op plus post-copies that move displaced
// outputs to their home banks.
func (ds *draftState) emitExec(block *Block, alias map[ValID]ValID) error {
	assign, err := ds.matchOutputs(block)
	if err != nil {
		return err
	}
	op := &draftOp{
		kind:    dExec,
		block:   block,
		alias:   alias,
		outVal:  make(map[ValID]ValID, len(block.Outputs)),
		outPE:   block.OutPE,
		outBank: make(map[ValID]int, len(block.Outputs)),
	}
	seen := make(map[ValID]bool, len(block.Inputs))
	for _, v := range block.Inputs {
		rv := alias[v]
		if !seen[rv] {
			seen[rv] = true
			op.reads = append(op.reads, rv)
		}
	}
	var post []draftMove
	for _, v := range block.Outputs {
		b := assign[v]
		if b == int(ds.vals[v].bank) {
			op.outVal[v] = v
			op.outBank[v] = b
			op.wrs = append(op.wrs, v)
			continue
		}
		// Displaced: exec writes a temp, a post-copy moves it home.
		tv := ds.newTemp(b)
		op.outVal[v] = tv
		op.outBank[tv] = b
		op.wrs = append(op.wrs, tv)
		post = append(post, draftMove{src: tv, dst: int(ds.vals[v].bank), w: v})
		ds.stats.OutputMoves++
	}
	ds.ops = append(ds.ops, op)
	ds.stats.Execs++
	// Utilization accounting: arithmetic PEs this cycle.
	busy := 0
	for _, p := range block.PEOps {
		if p == arch.PEAdd || p == arch.PEMul {
			busy++
		}
	}
	u := float64(busy) / float64(ds.cfg.NumPEs())
	if u > ds.stats.PeakUtil {
		ds.stats.PeakUtil = u
	}
	ds.stats.MeanUtil += u // normalized at the end of Compile
	ds.emitCopies(post)
	return nil
}

// emitStores writes every DAG sink to data memory. Sinks that are leaves
// already live in the init region; interior sinks get a word in the
// output region (lane = home bank) and are flushed with store or store_4.
func (ds *draftState) emitStores() map[dag.NodeID]int {
	outWord := make(map[dag.NodeID]int)
	byRow := map[int][]ValID{}
	var order []int
	for _, sink := range ds.g.Outputs() {
		v := ValID(sink)
		if ds.vals[v].kind == vLeaf {
			ds.placeLeafWord(v)
			outWord[sink] = int(ds.vals[v].word)
			continue
		}
		bank := int(ds.vals[v].bank)
		// Reuse the init-region first-fit allocator: the output region
		// interleaves with it harmlessly since words are unique.
		r := ds.rowHint[bank]
		for {
			if r >= len(ds.rowMask) {
				ds.rowMask = append(ds.rowMask, 0)
			}
			if ds.rowMask[r]&(1<<uint(bank)) == 0 {
				ds.rowMask[r] |= 1 << uint(bank)
				ds.vals[v].word = int32(r*ds.cfg.B + bank)
				ds.rowHint[bank] = r
				if r+1 > ds.rows {
					ds.rows = r + 1
				}
				break
			}
			r++
		}
		outWord[sink] = int(ds.vals[v].word)
		row := int(ds.vals[v].word) / ds.cfg.B
		if _, ok := byRow[row]; !ok {
			order = append(order, row)
		}
		byRow[row] = append(byRow[row], v)
	}
	for _, row := range order {
		vals := byRow[row]
		if len(vals) > arch.MaxMoves {
			// Full-vector store: every value sits in its lane's bank.
			ds.ops = append(ds.ops, &draftOp{kind: dStore, row: row, reads: vals})
			ds.stats.Stores++
			continue
		}
		op := &draftOp{kind: dStore4, row: row}
		for _, v := range vals {
			op.moves = append(op.moves, draftMove{src: v, dst: int(ds.vals[v].word) % ds.cfg.B, w: InvalidVal})
			op.reads = append(op.reads, v)
		}
		ds.ops = append(ds.ops, op)
		ds.stats.Stores++
	}
	return outWord
}

// buildDraft runs loads/repairs/execs/stores for every block in schedule
// order and returns the draft op list plus the sink→word map.
func (ds *draftState) buildDraft(blocks []*Block) (map[dag.NodeID]int, error) {
	ds.placeLeaves(blocks)
	for bi, b := range blocks {
		ds.emitLoads(b, bi)
		alias := ds.repairInputs(b)
		if err := ds.emitExec(b, alias); err != nil {
			return nil, err
		}
	}
	return ds.emitStores(), nil
}
