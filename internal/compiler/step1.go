package compiler

import (
	"container/heap"
	"fmt"

	"dpuv2/internal/arch"
	"dpuv2/internal/dag"
)

// Step 1 — block decomposition (§IV-A, algorithm 1).
//
// A node's cone (all of its not-yet-mapped ancestors) is schedulable on a
// depth-d subtree slot iff the longest chain of unmapped ancestors ending
// at the node is ≤ d; replication and bypass chains make any such cone fit
// (fig. 9(c)). Cone depth is tracked incrementally, capped at D+1
// ("unschedulable"), and only ever decreases as ancestors get mapped, so
// updates are cheap and monotone.
//
// Blocks are built greedily: a seed subgraph is chosen from a small
// lookahead of the DFS-ordered candidate heap preferring the deepest cone
// (objective C: utilization), then remaining subtree slots — managed as a
// buddy allocator over dyadic subtrees — are filled with DFS-adjacent
// cones (objective D: locality keeps inter-block dependencies short).

type candHeap struct {
	key   []int64 // node -> scheduling priority (partition, then DFS order)
	items []dag.NodeID
}

func (h *candHeap) Len() int           { return len(h.items) }
func (h *candHeap) Less(i, j int) bool { return h.key[h.items[i]] < h.key[h.items[j]] }
func (h *candHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *candHeap) Push(x interface{}) { h.items = append(h.items, x.(dag.NodeID)) }
func (h *candHeap) Pop() interface{} {
	n := h.items[len(h.items)-1]
	h.items = h.items[:len(h.items)-1]
	return n
}

// slotPool is a buddy allocator over subtree slots: a free slot of depth d
// is the full subtree rooted at a layer-d PE. Allocating depth d from a
// deeper slot splits it, releasing the sibling subtrees.
type slotPool struct {
	free [][]arch.PE // indexed by depth 1..D
}

func newSlotPool(cfg arch.Config) *slotPool {
	p := &slotPool{free: make([][]arch.PE, cfg.D+1)}
	for t := 0; t < cfg.Trees(); t++ {
		p.free[cfg.D] = append(p.free[cfg.D], arch.PE{Tree: t, Layer: cfg.D, Index: 0})
	}
	return p
}

func (p *slotPool) maxDepth() int {
	for d := len(p.free) - 1; d >= 1; d-- {
		if len(p.free[d]) > 0 {
			return d
		}
	}
	return 0
}

func (p *slotPool) alloc(d int) (arch.PE, bool) {
	if d < 1 || d >= len(p.free) {
		return arch.PE{}, false
	}
	// Exact fit first.
	if len(p.free[d]) > 0 {
		s := p.free[d][len(p.free[d])-1]
		p.free[d] = p.free[d][:len(p.free[d])-1]
		return s, true
	}
	// Split the shallowest deeper slot.
	for dd := d + 1; dd < len(p.free); dd++ {
		if len(p.free[dd]) == 0 {
			continue
		}
		s := p.free[dd][len(p.free[dd])-1]
		p.free[dd] = p.free[dd][:len(p.free[dd])-1]
		for l := dd; l > d; l-- {
			// Keep the left child, free the right sibling.
			p.free[l-1] = append(p.free[l-1], arch.PE{Tree: s.Tree, Layer: l - 1, Index: 2*s.Index + 1})
			s = arch.PE{Tree: s.Tree, Layer: l - 1, Index: 2 * s.Index}
		}
		return s, true
	}
	return arch.PE{}, false
}

type decomposer struct {
	g      *dag.Graph
	cfg    arch.Config
	opts   Options
	depth  []int32 // cone depth, capped at D+1; 0 for leaves/mapped
	mapped []bool
	inHeap []bool
	heap   *candHeap
	// claim stamps avoid reallocating per-block sets.
	claim      []int32
	claimStamp int32
	visit      []int32
	visitStamp int32
}

func newDecomposer(g *dag.Graph, cfg arch.Config, opts Options, keys []int64) *decomposer {
	n := g.NumNodes()
	d := &decomposer{
		g: g, cfg: cfg, opts: opts,
		depth:  make([]int32, n),
		mapped: make([]bool, n),
		inHeap: make([]bool, n),
		heap:   &candHeap{key: keys},
		claim:  make([]int32, n),
		visit:  make([]int32, n),
	}
	cap := int32(cfg.D + 1)
	for i := 0; i < n; i++ {
		id := dag.NodeID(i)
		if g.Op(id).IsLeaf() {
			continue
		}
		dep := int32(1)
		for _, a := range g.Args(id) {
			if !g.Op(a).IsLeaf() && d.depth[a]+1 > dep {
				dep = d.depth[a] + 1
			}
		}
		if dep > cap {
			dep = cap
		}
		d.depth[i] = dep
		if dep <= int32(cfg.D) {
			d.push(id)
		}
	}
	return d
}

func (d *decomposer) push(n dag.NodeID) {
	if !d.inHeap[n] && !d.mapped[n] {
		d.inHeap[n] = true
		heap.Push(d.heap, n)
	}
}

// pop returns the DFS-earliest valid candidate, or -1.
func (d *decomposer) pop() dag.NodeID {
	for d.heap.Len() > 0 {
		n := heap.Pop(d.heap).(dag.NodeID)
		d.inHeap[n] = false
		if !d.mapped[n] && d.depth[n] <= int32(d.cfg.D) {
			return n
		}
	}
	return dag.InvalidNode
}

// cone gathers all unmapped interior ancestors of sink (including sink).
// Binary fan-in and depth ≤ D bound the cone at 2^D − 1 distinct nodes.
func (d *decomposer) cone(sink dag.NodeID, out []dag.NodeID) []dag.NodeID {
	d.visitStamp++
	stack := []dag.NodeID{sink}
	d.visit[sink] = d.visitStamp
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, n)
		for _, a := range d.g.Args(n) {
			if d.g.Op(a).IsLeaf() || d.mapped[a] || d.visit[a] == d.visitStamp {
				continue
			}
			d.visit[a] = d.visitStamp
			stack = append(stack, a)
		}
	}
	return out
}

func (d *decomposer) coneClaimed(cone []dag.NodeID) bool {
	for _, n := range cone {
		if d.claim[n] == d.claimStamp {
			return true
		}
	}
	return false
}

// commit marks cone nodes mapped and propagates the monotone depth
// decrease to downstream consumers, enqueueing nodes that become
// schedulable.
func (d *decomposer) commit(block *Block) int {
	var work []dag.NodeID
	mappedCount := 0
	for _, sg := range block.Subgraphs {
		for _, n := range sg.Nodes {
			d.mapped[n] = true
			mappedCount++
		}
	}
	for _, sg := range block.Subgraphs {
		for _, n := range sg.Nodes {
			work = append(work, d.g.Succs(n)...)
		}
	}
	cap := int32(d.cfg.D + 1)
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		if d.mapped[n] || d.g.Op(n).IsLeaf() {
			continue
		}
		dep := int32(1)
		for _, a := range d.g.Args(n) {
			if d.g.Op(a).IsLeaf() || d.mapped[a] {
				continue
			}
			da := d.depth[a] + 1
			if da > dep {
				dep = da
			}
		}
		if dep > cap {
			dep = cap
		}
		if dep < d.depth[n] {
			d.depth[n] = dep
			work = append(work, d.g.Succs(n)...)
		}
		if d.depth[n] <= int32(d.cfg.D) {
			d.push(n)
		}
	}
	return mappedCount
}

// decompose runs step 1 and returns the block list in schedule order.
func decompose(g *dag.Graph, cfg arch.Config, opts Options, keys []int64) ([]*Block, error) {
	d := newDecomposer(g, cfg, opts, keys)
	total := 0
	for i := 0; i < g.NumNodes(); i++ {
		if !g.Op(dag.NodeID(i)).IsLeaf() {
			total++
		}
	}
	var blocks []*Block
	mapped := 0
	coneBuf := make([]dag.NodeID, 0, 1<<uint(cfg.D))
	for mapped < total {
		seed := d.bestSeed()
		if seed == dag.InvalidNode {
			// Safety resweep: the heap can transiently miss candidates
			// only through a bookkeeping bug; rebuild rather than hang.
			resweep := false
			for i := 0; i < g.NumNodes(); i++ {
				id := dag.NodeID(i)
				if !g.Op(id).IsLeaf() && !d.mapped[id] && d.depth[id] <= int32(cfg.D) {
					d.push(id)
					resweep = true
				}
			}
			if !resweep {
				return nil, fmt.Errorf("compiler: %d nodes unschedulable (graph depth bookkeeping broken)", total-mapped)
			}
			continue
		}
		d.claimStamp++
		block := &Block{}
		slots := newSlotPool(cfg)
		// Seed subgraph.
		coneBuf = d.cone(seed, coneBuf[:0])
		root, _ := slots.alloc(int(d.depth[seed]))
		d.addSubgraph(block, seed, coneBuf, root)
		// Fill remaining slots with DFS-adjacent cones.
		var rejected []dag.NodeID
		tries := 0
		for slots.maxDepth() >= 1 && tries < d.opts.FillLookahead {
			n := d.pop()
			if n == dag.InvalidNode {
				break
			}
			dep := int(d.depth[n])
			if dep > slots.maxDepth() {
				rejected = append(rejected, n)
				tries++
				continue
			}
			coneBuf = d.cone(n, coneBuf[:0])
			if d.coneClaimed(coneBuf) {
				rejected = append(rejected, n)
				tries++
				continue
			}
			r, ok := slots.alloc(dep)
			if !ok {
				rejected = append(rejected, n)
				tries++
				continue
			}
			d.addSubgraph(block, n, coneBuf, r)
		}
		mapped += d.commit(block)
		for _, n := range rejected {
			d.push(n)
		}
		blocks = append(blocks, block)
	}
	return blocks, nil
}

// bestSeed pops up to SeedLookahead candidates and keeps the deepest cone
// (ties broken toward the DFS-earliest, which is the pop order).
func (d *decomposer) bestSeed() dag.NodeID {
	best := dag.InvalidNode
	var bestDepth int32 = -1
	var others []dag.NodeID
	for i := 0; i < d.opts.SeedLookahead; i++ {
		n := d.pop()
		if n == dag.InvalidNode {
			break
		}
		if d.depth[n] > bestDepth {
			if best != dag.InvalidNode {
				others = append(others, best)
			}
			best, bestDepth = n, d.depth[n]
			if bestDepth == int32(d.cfg.D) {
				break // cannot do better
			}
		} else {
			others = append(others, n)
		}
	}
	for _, n := range others {
		d.push(n)
	}
	return best
}

func (d *decomposer) addSubgraph(block *Block, sink dag.NodeID, cone []dag.NodeID, root arch.PE) {
	sg := Subgraph{
		Sink:  sink,
		Nodes: append([]dag.NodeID(nil), cone...),
		Depth: int(d.depth[sink]),
		Root:  root,
	}
	for _, n := range sg.Nodes {
		d.claim[n] = d.claimStamp
	}
	block.Subgraphs = append(block.Subgraphs, sg)
}
