package compiler

// Step 3 — pipeline-aware reordering (§IV-C). The datapath has D+1
// pipeline stages, so an instruction consuming a value must issue at
// least gap(producer) cycles after its producer: D+1 for exec results,
// 2 for loads and copies (one-cycle writeback). The draft list is
// re-scheduled greedily: at each cycle the earliest ready op within a
// fixed window (300 in the paper) issues; when nothing is ready a nil
// slot (a nop) is emitted. Step 4 re-validates all gaps after it inserts
// spill traffic, so this pass is purely a latency optimization.

func gapOf(k draftKind, d int) int32 {
	switch k {
	case dExec:
		return int32(d + 1)
	case dLoad, dCopy:
		return 2
	default:
		return 1
	}
}

// reorder returns the scheduled op list where nil entries are nops.
func reorder(ops []*draftOp, nvals int, depth, window int) []*draftOp {
	prod := make([]int32, nvals)
	for i := range prod {
		prod[i] = -1
	}
	for i, op := range ops {
		for _, w := range op.wrs {
			if w != InvalidVal {
				prod[w] = int32(i)
			}
		}
	}
	posOf := make([]int32, len(ops))
	for i := range posOf {
		posOf[i] = -1
	}
	ready := func(j int, pos int32) bool {
		for _, v := range ops[j].reads {
			p := prod[v]
			if p < 0 {
				continue
			}
			if posOf[p] < 0 || posOf[p]+gapOf(ops[p].kind, depth) > pos {
				return false
			}
		}
		return true
	}
	var out []*draftOp
	scheduled := 0
	lo := 0
	pos := int32(0)
	for scheduled < len(ops) {
		issued := false
		hi := lo + window
		if hi > len(ops) {
			hi = len(ops)
		}
		for j := lo; j < hi; j++ {
			if posOf[j] >= 0 {
				continue
			}
			if !ready(j, pos) {
				continue
			}
			posOf[j] = pos
			out = append(out, ops[j])
			scheduled++
			issued = true
			for lo < len(ops) && posOf[lo] >= 0 {
				lo++
			}
			break
		}
		if !issued {
			out = append(out, nil) // nop
		}
		pos++
	}
	return out
}
