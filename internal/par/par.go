// Package par provides the indexed worker pool shared by the DSE sweep
// and the bench harness: n independent tasks distributed over a bounded
// set of goroutines, with results written at the task's own index so
// output order never depends on scheduling.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(0..n-1) on a pool of workers goroutines (<= 0: one per
// CPU) and returns once every call has finished. fn must be safe to call
// concurrently; writes it makes at its own index need no further
// synchronization because ForEach establishes a completion barrier.
func ForEach(n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
