//go:build race

package serve

// raceEnabled reports that this test binary was built with the race
// detector, whose instrumentation skews wall-time ratios; timing
// assertions skip themselves under it.
const raceEnabled = true
