package serve

import (
	"math"
	"net/http/httptest"
	"strings"
	"testing"

	"dpuv2/internal/arch"
	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
	"dpuv2/internal/engine"
	"dpuv2/internal/sim"
)

// nonFiniteGraphText reaches every non-finite class from a finite
// input: x·1e308·1e308 overflows to +Inf for x>2e-308-ish, negation
// gives −Inf, and Inf+(−Inf) is NaN; unit multiplies surface all three
// as sinks. A subnormal x (1e-310) keeps every sink finite instead.
const nonFiniteGraphText = `input
const 1e308
mul 0 1
mul 2 1
const -1
mul 3 4
add 3 5
const 1
mul 3 7
mul 5 7
mul 6 7
`

// TestNonFiniteEndToEnd is the non-finite conformance satellite's
// serving leg: the same DAG that drives NaN/±Inf through both sim
// backends (internal/sim) is submitted over HTTP, and the handler must
// itemize the non-finite vector as a per-item error (JSON cannot encode
// Inf/NaN) while finite vectors on the same request succeed — under
// both execution backends, with identical itemization.
func TestNonFiniteEndToEnd(t *testing.T) {
	g, err := dag.Read(strings.NewReader(nonFiniteGraphText), "nonfinite")
	if err != nil {
		t.Fatal(err)
	}
	cfg := arch.Config{D: 2, B: 8, R: 16}
	c, err := compiler.Compile(g, cfg, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Ground truth: the overflow vector reaches +Inf, −Inf and NaN at
	// the sinks, bitwise-identically across the reference evaluator and
	// both backends (the serving layer then refuses to encode them).
	overflow, finite := []float64{1.5}, []float64{1e-310}
	want, err := dag.Eval(c.Graph, overflow)
	if err != nil {
		t.Fatal(err)
	}
	outs := c.Graph.Outputs()
	classes := map[bool]int{} // isNaN → count; Inf counted via IsInf
	infs := 0
	for _, s := range outs {
		if math.IsNaN(want[s]) {
			classes[true]++
		}
		if math.IsInf(want[s], 0) {
			infs++
		}
	}
	if classes[true] == 0 || infs < 2 {
		t.Fatalf("fixture broke: want NaN and both infinities at sinks, got %v", want)
	}
	for _, b := range []sim.Backend{sim.BackendFunctional, sim.BackendCycleAccurate} {
		res, err := sim.RunWith(b, c, overflow)
		if err != nil {
			t.Fatalf("%v: %v", b, err)
		}
		for _, s := range outs {
			got := res.Outputs[s]
			// Bitwise identity except NaN (payload propagation is
			// implementation-defined; both sides must still be NaN).
			if math.Float64bits(got) != math.Float64bits(want[s]) &&
				!(math.IsNaN(got) && math.IsNaN(want[s])) {
				t.Errorf("%v sink %d: got %v, reference %v (bitwise)", b, s, got, want[s])
			}
		}
		if err := sim.CheckOutputs(c, overflow, res, 0); err != nil {
			t.Errorf("%v: CheckOutputs rejected identical non-finite propagation: %v", b, err)
		}
	}

	// Serving leg, per backend: vector 0 (overflow) must come back as a
	// per-item "non-finite output" error, vector 1 (subnormal input)
	// must succeed with finite outputs — a non-finite item must not
	// poison its batch.
	req := ExecuteRequest{Graph: nonFiniteGraphText, Config: cfg, Inputs: [][]float64{overflow, finite}}
	for _, b := range []sim.Backend{sim.BackendFunctional, sim.BackendCycleAccurate} {
		s := New(engine.New(engine.Options{Backend: b}), Options{})
		srv := httptest.NewServer(s.Handler())
		resp, out := postExecute(t, srv, req)
		srv.Close()
		s.Drain()
		if resp.StatusCode != 200 {
			t.Fatalf("backend %v: status %d", b, resp.StatusCode)
		}
		if len(out.Results) != 2 {
			t.Fatalf("backend %v: %d results, want 2", b, len(out.Results))
		}
		bad, good := out.Results[0], out.Results[1]
		if !strings.Contains(bad.Error, "non-finite output") {
			t.Errorf("backend %v: overflow vector error = %q, want non-finite itemization", b, bad.Error)
		}
		if len(bad.Outputs) != 0 {
			t.Errorf("backend %v: non-finite vector leaked outputs %v into JSON", b, bad.Outputs)
		}
		if good.Error != "" {
			t.Errorf("backend %v: finite vector errored: %s", b, good.Error)
		}
		if len(good.Outputs) != len(outs) {
			t.Errorf("backend %v: finite vector has %d outputs, want %d", b, len(good.Outputs), len(outs))
		}
		wantFinite, err := dag.Eval(c.Graph, finite)
		if err != nil {
			t.Fatal(err)
		}
		for j, s := range outs {
			if got := good.Outputs[j]; got != wantFinite[s] {
				t.Errorf("backend %v: finite vector output %d = %v, want %v", b, j, got, wantFinite[s])
			}
		}
	}
}
