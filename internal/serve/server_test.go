package serve

import (
	"bufio"
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"

	"dpuv2/internal/engine"
)

// TestSlowLorisConnectionClosed is the regression test for the missing
// server timeouts: a client that sends a partial header block and then
// stalls must have its connection closed by ReadHeaderTimeout, not hold
// it (and its handler slot) forever. Before NewHTTPServer, dpu-serve
// built a bare http.Server with no timeouts at all and this test hangs
// until the test binary's own deadline.
func TestSlowLorisConnectionClosed(t *testing.T) {
	srv := New(engine.New(engine.Options{}), Options{})
	defer srv.Drain()
	const readTimeout = 200 * time.Millisecond
	hs := NewHTTPServer("127.0.0.1:0", srv.Handler(), readTimeout, time.Second)
	ln, err := net.Listen("tcp", hs.Addr)
	if err != nil {
		t.Fatal(err)
	}
	go hs.Serve(ln)
	defer hs.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Headers started, never finished: the slow-loris shape.
	if _, err := fmt.Fprintf(conn, "POST /execute HTTP/1.1\r\nHost: x\r\nContent-Ty"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	conn.SetReadDeadline(start.Add(5 * time.Second))
	// The server may write a 408 before closing; what matters is that the
	// connection reaches EOF promptly instead of being held open.
	var err2 error
	for err2 == nil {
		_, err2 = conn.Read(make([]byte, 256))
	}
	if ne, ok := err2.(net.Error); ok && ne.Timeout() {
		t.Fatalf("server kept the stalled connection open past %v", time.Since(start))
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("connection closed only after %v, want ~%v", elapsed, readTimeout)
	}

	// An honest request on a fresh connection still works (the timeouts
	// bound stalls, not legitimate traffic).
	conn2, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	fmt.Fprintf(conn2, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
	resp, err := http.ReadResponse(bufio.NewReader(conn2), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d, want 200", resp.StatusCode)
	}
}

// TestNewHTTPServerDefaults pins the conservative defaults and the
// header-timeout clamp.
func TestNewHTTPServerDefaults(t *testing.T) {
	hs := NewHTTPServer(":0", nil, 0, 0)
	if hs.ReadTimeout != DefaultReadTimeout || hs.IdleTimeout != DefaultIdleTimeout || hs.ReadHeaderTimeout != DefaultReadHeaderTimeout {
		t.Errorf("defaults = read %v header %v idle %v", hs.ReadTimeout, hs.ReadHeaderTimeout, hs.IdleTimeout)
	}
	hs = NewHTTPServer(":0", nil, time.Second, time.Minute)
	if hs.ReadHeaderTimeout != time.Second {
		t.Errorf("header timeout %v not clamped to read timeout 1s", hs.ReadHeaderTimeout)
	}
}

// TestDrainWithinBoundsWedgedStep is the regression test for the
// unbounded shutdown sequence: a drain step that never returns (the
// wedged-background-tune shape — WaitTunes on a tuner stuck in a sweep)
// must not block exit past the deadline. Before DrainWithin, dpu-serve
// ran Drain→WaitTunes→Flush inline with no deadline; only the final
// listener shutdown was bounded.
func TestDrainWithinBoundsWedgedStep(t *testing.T) {
	ran := make(chan string, 3)
	wedged := make(chan struct{}) // never closed: the stuck tune
	start := time.Now()
	ok := DrainWithin(100*time.Millisecond,
		func() { ran <- "drain" },
		func() { ran <- "wait-tunes"; <-wedged },
		func() { ran <- "flush" },
	)
	if ok {
		t.Fatal("DrainWithin reported completion with a wedged step")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("DrainWithin returned after %v, want ~100ms", elapsed)
	}
	if got := []string{<-ran, <-ran}; got[0] != "drain" || got[1] != "wait-tunes" {
		t.Errorf("steps ran out of order: %v", got)
	}
	select {
	case s := <-ran:
		t.Errorf("step %q ran past its wedged predecessor", s)
	default:
	}

	// All-fast steps complete in order and report success.
	if !DrainWithin(5*time.Second, func() { ran <- "a" }, func() { ran <- "b" }) {
		t.Fatal("DrainWithin timed out on instant steps")
	}
	if got := []string{<-ran, <-ran}; got[0] != "a" || got[1] != "b" {
		t.Errorf("fast steps ran out of order: %v", got)
	}
}
