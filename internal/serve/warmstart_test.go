package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dpuv2/internal/arch"
	"dpuv2/internal/artifact"
	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
	"dpuv2/internal/engine"
	"dpuv2/internal/pc"
	"dpuv2/internal/sched"
	"dpuv2/internal/verify"
)

// warmGraph is the fig.-scale PC serving workload (the same mid-size
// circuit the engine benchmarks use), rendered to the node-list text a
// client would POST, so the warm-start path is exercised with the exact
// fingerprint a request produces.
func warmGraph(t testing.TB) (*dag.Graph, string, []float64) {
	t.Helper()
	g := pc.Build(pc.Suite()[1], 0.5)
	var buf bytes.Buffer
	if err := dag.Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	// Re-read: the graph a request carries is the parsed form of the
	// text, and its fingerprint is what the serving engine keys on.
	rg, err := dag.Read(strings.NewReader(buf.String()), "request")
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]float64, len(rg.Inputs()))
	for i := range inputs {
		inputs[i] = 0.5
	}
	return rg, buf.String(), inputs
}

// populateStore compiles the workload once and persists it — the
// offline `dpu-compile` step of the deployment story.
func populateStore(t testing.TB, st *artifact.Store, g *dag.Graph, cfg arch.Config) *compiler.Compiled {
	t.Helper()
	c, err := compiler.Compile(g, cfg, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := &artifact.Artifact{Fingerprint: g.Fingerprint(), Options: compiler.Options{}.Normalized(), Compiled: c}
	if err := st.Put(a); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestServeWarmStartNoCompileOnHotPath is the acceptance test for the
// warm-start flow: with a preloaded artifact store, the first request a
// restarted server sees is answered without a single compilation —
// engine compile count 0, pure cache hit.
func TestServeWarmStartNoCompileOnHotPath(t *testing.T) {
	g, text, inputs := warmGraph(t)
	st, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := populateStore(t, st, g, arch.MinEDP())

	// "Restart": a fresh engine + server over the artifact directory.
	eng := engine.New(engine.Options{Store: st})
	if n, err := eng.Preload(); err != nil || n != 1 {
		t.Fatalf("preload: %d artifacts, err %v", n, err)
	}
	srv := New(eng, Options{Sched: sched.Options{MaxBatch: 8, Linger: 200 * time.Microsecond}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain()

	body, _ := json.Marshal(ExecuteRequest{Graph: text, Inputs: [][]float64{inputs}})
	resp, err := http.Post(ts.URL+"/execute", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request after warm start: status %d", resp.StatusCode)
	}
	var out ExecuteResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 1 || out.Results[0].Error != "" {
		t.Fatalf("results: %+v", out.Results)
	}
	// Bit-exact against the reference evaluator on the binarized graph
	// the program executes (the k-ary request graph's sinks map through
	// Remap; evaluating the k-ary form would differ in association
	// order, i.e. in final ulps).
	want, err := dag.Eval(c.Graph, inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i, sink := range g.Outputs() {
		if got := out.Results[0].Outputs[i]; got != want[c.Remap[sink]] {
			t.Errorf("sink %d: warm-started output %v, reference %v", sink, got, want[c.Remap[sink]])
		}
	}

	s := eng.Stats()
	if s.Misses != 0 {
		t.Errorf("the hot path compiled: misses = %d, want 0", s.Misses)
	}
	if s.Hits == 0 {
		t.Error("no cache hit recorded for the warm-started program")
	}
	if s.Preloaded != 1 {
		t.Errorf("preloaded = %d, want 1", s.Preloaded)
	}
}

// TestWarmStartDecodeFasterThanCompile pins the acceptance ratio:
// rehydrating the fig.-scale PC workload from the store must be at
// least 5x faster than compiling it cold — otherwise a persistent
// store would not be pulling its weight and the PR's premise fails.
func TestWarmStartDecodeFasterThanCompile(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-time measurement")
	}
	if raceEnabled {
		t.Skip("race instrumentation skews the compile/decode ratio")
	}
	g, _, _ := warmGraph(t)
	st, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	populateStore(t, st, g, arch.MinEDP())
	key := artifact.KeyFor(g.Fingerprint(), arch.MinEDP(), compiler.Options{})

	measure := func(n int, f func()) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < n; i++ {
			start := time.Now()
			f()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	compile := measure(3, func() {
		if _, err := compiler.Compile(g, arch.MinEDP(), compiler.Options{}); err != nil {
			t.Fatal(err)
		}
	})
	decode := measure(5, func() {
		if _, err := st.Get(key); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("cold compile %v, store decode %v (%.1fx)", compile, decode, float64(compile)/float64(decode))
	if decode*5 > compile {
		t.Errorf("decode-from-store (%v) is not ≥5x faster than a cold compile (%v)", decode, compile)
	}
}

// BenchmarkServeWarmStart quantifies the artifact story on the
// fig.-scale PC workload:
//
//	first-request     — full HTTP request against a freshly warm-started
//	                    server (preload untimed); the engine never
//	                    compiles (asserted).
//	decode-from-store — store lookup + decode alone.
//	verify-decoded    — the static verifier over the decoded program:
//	                    what the engine's trust-boundary gate adds the
//	                    ONE time it verifies a store key. The engine
//	                    memoizes verification per key (verifiedKeys), so
//	                    this cost is paid once per artifact per process,
//	                    not per request — amortized it is well under the
//	                    "<10% of decode" budget, and even unamortized it
//	                    is the same order as a single decode.
//	cold-compile      — what the same miss costs without a store.
func BenchmarkServeWarmStart(b *testing.B) {
	g, text, inputs := warmGraph(b)
	dir := b.TempDir()
	st, err := artifact.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	populateStore(b, st, g, arch.MinEDP())
	key := artifact.KeyFor(g.Fingerprint(), arch.MinEDP(), compiler.Options{})
	body, _ := json.Marshal(ExecuteRequest{Graph: text, Inputs: [][]float64{inputs}})

	b.Run("first-request", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			eng := engine.New(engine.Options{Store: st})
			if n, err := eng.Preload(); err != nil || n != 1 {
				b.Fatalf("preload: %d, %v", n, err)
			}
			srv := New(eng, Options{Sched: sched.Options{MaxBatch: 8, Linger: 0}})
			b.StartTimer()

			req := httptest.NewRequest(http.MethodPost, "/execute", bytes.NewReader(body))
			rec := httptest.NewRecorder()
			srv.Handler().ServeHTTP(rec, req)

			b.StopTimer()
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d", rec.Code)
			}
			if s := eng.Stats(); s.Misses != 0 {
				b.Fatalf("first request compiled: misses = %d", s.Misses)
			}
			srv.Drain()
			b.StartTimer()
		}
	})
	b.Run("decode-from-store", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := st.Get(key); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("verify-decoded", func(b *testing.B) {
		a, err := st.Get(key)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if fs := verify.Compiled(a.Compiled); verify.HasErrors(fs) {
				b.Fatalf("store artifact fails verification: %s", verify.Summary(fs))
			}
		}
	})
	b.Run("cold-compile", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := compiler.Compile(g, arch.MinEDP(), compiler.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
