package serve

// Process-lifecycle helpers shared by cmd/dpu-serve and cmd/dpu-gateway:
// the hardened http.Server both binaries listen on, and the bounded
// drain sequence both run on SIGINT/SIGTERM. They live here (not in the
// cmds) so the two binaries cannot drift apart on connection hygiene,
// and so the slow-loris and wedged-drain regression tests run in-package.

import (
	"net/http"
	"time"
)

// Default connection timeouts for NewHTTPServer. ReadTimeout must cover
// a 64 MiB body on a slow-but-honest link; ReadHeaderTimeout only has to
// cover a handful of header lines, so it is much tighter — it is the
// slow-loris bound, met before any handler goroutine is committed.
const (
	DefaultReadTimeout       = 30 * time.Second
	DefaultReadHeaderTimeout = 10 * time.Second
	DefaultIdleTimeout       = 2 * time.Minute
)

// NewHTTPServer builds the http.Server every serving binary listens on,
// hardened against clients that hold connections without progressing: a
// connection that stalls mid-headers is closed at ReadHeaderTimeout, one
// that stalls mid-body at ReadTimeout, and an idle keep-alive connection
// is reclaimed at IdleTimeout. Without these a single slow-loris client
// pins a connection (and, under -unbatched, a handler goroutine)
// forever. Non-positive timeouts take the defaults above;
// ReadHeaderTimeout is the smaller of DefaultReadHeaderTimeout and the
// read timeout. There is deliberately no WriteTimeout: it would start
// ticking when the handler does and kill legitimately long executions of
// large batches; the drain path bounds handler lifetime instead.
func NewHTTPServer(addr string, h http.Handler, readTimeout, idleTimeout time.Duration) *http.Server {
	if readTimeout <= 0 {
		readTimeout = DefaultReadTimeout
	}
	if idleTimeout <= 0 {
		idleTimeout = DefaultIdleTimeout
	}
	headerTimeout := DefaultReadHeaderTimeout
	if readTimeout < headerTimeout {
		headerTimeout = readTimeout
	}
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadTimeout:       readTimeout,
		ReadHeaderTimeout: headerTimeout,
		IdleTimeout:       idleTimeout,
	}
}

// DrainWithin runs steps sequentially and returns true when all of them
// complete within d, false when the deadline passes first — in which
// case the remaining steps are abandoned (the goroutine running them is
// left behind; the caller is about to exit the process). This is the
// shutdown bound for the whole drain sequence: without it a single
// wedged step (a background tune that never returns, a store flush on a
// dead disk) blocks process exit forever, because only the final
// listener shutdown ever carried a deadline. The real-time timer is
// deliberate — this is a process-shutdown wall-clock bound, not
// scheduling policy; there is no request path (and no FakeClock) here.
//
//lint:allow clockuse
func DrainWithin(d time.Duration, steps ...func()) bool {
	done := make(chan struct{})
	go func() {
		for _, step := range steps {
			step()
		}
		close(done)
	}()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-done:
		return true
	case <-t.C:
		return false
	}
}
