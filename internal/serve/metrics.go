package serve

// GET /metrics: the Prometheus text exposition of the same state GET
// /stats reports as JSON. /stats carries pre-digested quantile summaries
// for humans and the gateway's fleet merge; /metrics carries the raw
// cumulative-bucket form a scraper aggregates itself. Both are built
// from the same metrics.Snapshot values, so a quantile re-derived from
// the scraped buckets matches the /stats summary (conservatively — see
// metrics.Snapshot.Quantile).

import (
	"bytes"
	"net/http"

	"dpuv2/internal/metrics"
	"dpuv2/internal/sched"
)

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	st := s.Stats()
	var buf bytes.Buffer
	p := metrics.NewPromWriter(&buf)

	// HTTP layer.
	p.Counter("dpu_http_requests_total", st.HTTP.Requests)
	p.Counter("dpu_http_errors_total", st.HTTP.Errors)
	p.Histogram("dpu_http_request_latency_ns", "", st.HTTP.LatencyHist)

	// Scheduler layer.
	p.Counter("dpu_sched_submitted_total", st.Sched.Submitted)
	p.Counter("dpu_sched_rejected_total", st.Sched.Rejected)
	p.Counter("dpu_sched_completed_total", st.Sched.Completed)
	p.Counter("dpu_sched_failed_total", st.Sched.Failed)
	p.Counter("dpu_sched_batches_total", st.Sched.Batches)
	p.Counter("dpu_sched_size_flushes_total", st.Sched.SizeFlushes)
	p.Counter("dpu_sched_linger_flushes_total", st.Sched.LingerFlushes)
	p.Counter("dpu_sched_close_flushes_total", st.Sched.CloseFlushes)
	p.Gauge("dpu_sched_queue_depth", int64(st.Sched.QueueDepth))
	p.Gauge("dpu_sched_queue_limit", int64(st.Sched.QueueLimit))
	p.Histogram("dpu_sched_batch_size", "", st.Sched.BatchSizeHist)
	p.Histogram("dpu_sched_latency_ns", "", st.Sched.LatencyHist)
	// One family, one series per stage: the decomposition is a label so
	// a scraper sums/compares stages without name gymnastics.
	p.Histogram("dpu_sched_stage_latency_ns", `stage="`+sched.StageQueueWait+`"`, st.Sched.QueueWaitHist)
	p.Histogram("dpu_sched_stage_latency_ns", `stage="`+sched.StageLinger+`"`, st.Sched.LingerHist)
	p.Histogram("dpu_sched_stage_latency_ns", `stage="`+sched.StageExecute+`"`, st.Sched.ExecuteHist)

	// Engine layer.
	p.Counter("dpu_engine_cache_hits_total", st.Engine.Hits)
	p.Counter("dpu_engine_cache_misses_total", st.Engine.Misses)
	p.Counter("dpu_engine_cache_evictions_total", st.Engine.Evictions)
	p.Gauge("dpu_engine_cached_programs", int64(st.Engine.Cached))
	p.Gauge("dpu_engine_inflight_executions", st.Engine.InFlight)
	p.Counter("dpu_engine_executions_total", st.Engine.Executions)
	p.Counter("dpu_engine_store_hits_total", st.Engine.StoreHits)
	p.Counter("dpu_engine_store_misses_total", st.Engine.StoreMisses)
	p.Counter("dpu_engine_store_errors_total", st.Engine.StoreErrors)
	p.Counter("dpu_engine_verified_total", st.Engine.Verified)
	p.Counter("dpu_engine_verify_rejects_total", st.Engine.VerifyRejects)
	p.Counter("dpu_engine_tuned_hits_total", st.Engine.TunedHits)
	p.Counter("dpu_engine_tunes_total", st.Engine.Tunes)
	p.Counter("dpu_engine_tune_errors_total", st.Engine.TuneErrors)
	p.Gauge("dpu_engine_tunes_inflight", st.Engine.TuneInFlight)
	p.Gauge("dpu_engine_decisions", int64(st.Engine.Decisions))

	if err := p.Err(); err != nil {
		http.Error(w, "metrics: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", metrics.PromContentType)
	w.Write(buf.Bytes())
}
