// Package serve is the HTTP serving layer over the engine and the
// micro-batching scheduler: cmd/dpu-serve mounts it on a listener,
// cmd/dpu-loadgen and the tests drive it in-process. Requests are
// batched by default — each input vector of a POST /execute becomes one
// scheduler submission, so concurrent clients with the same graph
// coalesce into shared engine batches — with admission control surfaced
// as HTTP status codes:
//
//	400  malformed JSON / graph / config
//	413  more input vectors than the per-request bound
//	422  graph fails compilation
//	429  scheduler queue full (shed load, retry later)
//	503  server draining (graceful shutdown in progress)
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"

	"dpuv2/internal/arch"
	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
	"dpuv2/internal/engine"
	"dpuv2/internal/metrics"
	"dpuv2/internal/sched"
	"dpuv2/internal/trace"
)

// ExecuteRequest is the POST /execute body.
type ExecuteRequest struct {
	Graph   string           `json:"graph"`
	Config  arch.Config      `json:"config"`
	Options compiler.Options `json:"options"`
	Inputs  [][]float64      `json:"inputs"`
}

// ExecuteResult is one input vector's outcome.
type ExecuteResult struct {
	Outputs []float64 `json:"outputs,omitempty"`
	Cycles  int       `json:"cycles,omitempty"`
	Error   string    `json:"error,omitempty"`
}

// ExecuteResponse is the POST /execute reply.
type ExecuteResponse struct {
	Fingerprint string          `json:"fingerprint"`
	Config      string          `json:"config"`
	Sinks       []int           `json:"sinks"`
	Compile     compiler.Stats  `json:"compile"`
	Batched     bool            `json:"batched"`
	Results     []ExecuteResult `json:"results"`
}

// HTTPStats is the serving layer's own slice of GET /stats.
type HTTPStats struct {
	Requests int64 `json:"requests"`
	// Errors counts requests answered with a non-2xx status.
	Errors int64 `json:"errors"`
	// Latency summarizes whole-request wall time in nanoseconds,
	// including scheduler queueing.
	Latency metrics.Summary `json:"latency_ns"`
	// LatencyHist is the full bucket snapshot behind Latency — the
	// mergeable form a gateway aggregates across backends
	// (metrics.Snapshot.Merge); quantiles themselves don't merge.
	LatencyHist metrics.Snapshot `json:"latency_hist"`
}

// StatsResponse is the GET /stats body: engine counters (including
// per-config machine-pool sizes), scheduler counters (queue depth,
// batch-size histogram, per-item latency quantiles), HTTP-level latency
// quantiles and the autotuning section (decision table, tuned hits,
// background tunes in flight).
type StatsResponse struct {
	Engine engine.Stats     `json:"engine"`
	Sched  sched.Stats      `json:"sched"`
	HTTP   HTTPStats        `json:"http"`
	Tune   engine.TuneStats `json:"tune"`
}

// MaxRequestBytes bounds one /execute body; graphs and input batches
// beyond it belong in multiple requests. Exported so the gateway applies
// the same bound before buffering a body for hedged forwarding.
const MaxRequestBytes = 64 << 20

// Options configure a Server; the zero value is a production-ready
// default.
type Options struct {
	// Sched configures the batching scheduler (MaxBatch, Linger,
	// QueueDepth, Clock — the latter injected by tests).
	Sched sched.Options
	// MaxInputsPerRequest rejects requests carrying more input vectors
	// with 413, so one client cannot monopolize the queue. Default 1024.
	MaxInputsPerRequest int
	// Unbatched bypasses the scheduler and executes each request on its
	// own (PR 2's serving path) — kept for A/B measurement.
	Unbatched bool
	// Trace configures request tracing (sampling, retention; see
	// trace.Options). The tracer shares the scheduler's clock unless a
	// clock is set explicitly, so traces and batching policy run on one
	// timeline. Requests carrying a traceparent header are always
	// traced; others are sampled 1-in-Trace.SampleEvery.
	Trace trace.Options
}

func (o Options) normalize() Options {
	if o.MaxInputsPerRequest <= 0 {
		o.MaxInputsPerRequest = 1024
	}
	return o
}

// Server owns the handler state: the engine, the scheduler in front of
// it, and the serving metrics. Create with New, mount Handler, stop with
// Drain.
type Server struct {
	eng  *engine.Engine
	sch  *sched.Scheduler
	opts Options
	// clock is the scheduler's clock, shared so that request latency is
	// measured on the same (possibly fake) timeline the batching policy
	// runs on.
	clock sched.Clock

	draining atomic.Bool
	// drainMu is held shared by every in-flight /execute handler and
	// exclusively (briefly) by Drain, which thereby waits for them.
	drainMu sync.RWMutex

	requests atomic.Int64
	errors   atomic.Int64
	latency  metrics.Histogram

	tracer *trace.Tracer

	mux *http.ServeMux
}

// New builds a Server around eng.
func New(eng *engine.Engine, opts Options) *Server {
	s := &Server{
		eng:   eng,
		sch:   sched.New(eng, opts.Sched),
		opts:  opts.normalize(),
		clock: opts.Sched.Clock,
	}
	if s.clock == nil {
		s.clock = sched.SystemClock
	}
	topts := opts.Trace
	if topts.Clock == nil {
		topts.Clock = s.clock
	}
	if topts.Service == "" {
		topts.Service = "serve"
	}
	s.tracer = trace.New(topts)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/traces", s.tracer.Handler())
	s.mux.HandleFunc("/execute", s.handleExecute)
	return s
}

// Tracer exposes the request tracer (tests and diagnostics).
func (s *Server) Tracer() *trace.Tracer { return s.tracer }

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Scheduler exposes the batching scheduler (tests and stats).
func (s *Server) Scheduler() *sched.Scheduler { return s.sch }

// Drain gracefully shuts the serving path down: new requests are
// answered 503, the scheduler stops admission and flushes its open
// batches (so requests blocked on a linger timer complete immediately),
// and Drain returns once every in-flight request has been answered.
// Safe to call more than once.
func (s *Server) Drain() {
	s.draining.Store(true)
	// Close the scheduler BEFORE waiting on handlers: an in-flight
	// request may be parked inside SubmitMany waiting for its batch's
	// linger timer, and Close is what flushes it.
	s.sch.Close()
	s.drainMu.Lock()
	s.drainMu.Unlock() //nolint:staticcheck // empty critical section = barrier
}

// Draining reports whether Drain has started — the readiness signal
// behind /healthz's 503. A gateway polls /healthz and removes a
// draining backend from its hash ring so the shard fails over before
// the process exits.
func (s *Server) Draining() bool { return s.draining.Load() }

// Stats snapshots all three layers.
func (s *Server) Stats() StatsResponse {
	return StatsResponse{
		Engine: s.eng.Stats(),
		Sched:  s.sch.Stats(),
		HTTP: HTTPStats{
			Requests:    s.requests.Load(),
			Errors:      s.errors.Load(),
			Latency:     s.latency.Summary(),
			LatencyHist: s.latency.Snapshot(),
		},
		Tune: s.eng.TuneStats(),
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Stats())
}

// fail answers with status and counts the error.
func (s *Server) fail(w http.ResponseWriter, msg string, status int) {
	s.errors.Add(1)
	http.Error(w, msg, status)
}

// checkConfigBounds rejects client configs whose machine state would be
// unreasonably large before anything is allocated — a hostile {R: 1e9}
// request would otherwise OOM the server. The limits live in the engine
// (engine.CheckMachineBounds), which builds the machines and applies
// the same bounds as its default autotuning DecisionGuard, so client
// requests and stored tuning decisions can never disagree about what
// fits.
func checkConfigBounds(cfg arch.Config) error {
	return engine.CheckMachineBounds(cfg)
}

func (s *Server) handleExecute(w http.ResponseWriter, r *http.Request) {
	start := s.clock.Now()
	s.requests.Add(1)
	defer func() { s.latency.ObserveDuration(s.clock.Now().Sub(start)) }()
	if r.Method != http.MethodPost {
		s.fail(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining.Load() {
		s.fail(w, "server draining", http.StatusServiceUnavailable)
		return
	}
	// A request carrying trace context is always traced (the caller —
	// a client or the gateway — asked for this exemplar); bare requests
	// are sampled. A nil tr makes every recording below a no-op.
	var tr *trace.Trace
	if id, _, ok := trace.ParseTraceparent(r.Header.Get(trace.Header)); ok {
		tr = s.tracer.Start(id, "serve", start)
	} else if s.tracer.Sample() {
		tr = s.tracer.Start(trace.ID{}, "serve", start)
	}
	defer s.tracer.Finish(tr)

	var req ExecuteRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxRequestBytes)).Decode(&req); err != nil {
		s.fail(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Inputs) > s.opts.MaxInputsPerRequest {
		s.fail(w, fmt.Sprintf("batch of %d input vectors exceeds the per-request limit %d",
			len(req.Inputs), s.opts.MaxInputsPerRequest), http.StatusRequestEntityTooLarge)
		return
	}
	g, err := dag.Read(strings.NewReader(req.Graph), "request")
	if err != nil {
		s.fail(w, "bad graph: "+err.Error(), http.StatusBadRequest)
		return
	}
	tr.Span("decode", start, s.clock.Now().Sub(start), 0,
		trace.Int("inputs", int64(len(req.Inputs))))
	cfg := req.Config
	if cfg == (arch.Config{}) {
		// Only a fully omitted config defaults to the paper's min-EDP
		// point; a partial config is the client's mistake and fails
		// validation with a precise message instead of being silently
		// replaced.
		cfg = arch.MinEDP()
	}
	if err := checkConfigBounds(cfg); err != nil {
		s.fail(w, "bad config: "+err.Error(), http.StatusBadRequest)
		return
	}
	// Autotuning: a fingerprint with a tuned decision is served on the
	// tuned configuration instead of the request's. Everything downstream
	// — the scheduler's batch key, the engine's compile-cache key and the
	// machine pool — keys on what Resolve returns, so coalescing and
	// pooling follow the switch atomically. Without AutoTune this is the
	// identity. The tuned config must pass the same machine-size bounds
	// as a client-requested one (the .dputune format admits larger
	// memories than the serving limit): an out-of-bounds decision is
	// ignored, not served — a hand-staged store file must not be able to
	// OOM the server through a config the request path would have 400ed.
	if rcfg, ropts := s.eng.Resolve(g, cfg, req.Options); checkConfigBounds(rcfg) == nil {
		cfg, req.Options = rcfg, ropts
	}
	resp := ExecuteResponse{
		Fingerprint: g.Fingerprint().String(),
		Batched:     !s.opts.Unbatched,
		Results:     make([]ExecuteResult, len(req.Inputs)),
	}
	tr.SetAttrs(0, trace.Str("fingerprint", g.Fingerprint().Short()))
	// Report sinks as ids of the graph the client submitted; for k-ary
	// graphs the compiled (binarized) graph has different ids.
	for _, sk := range g.Outputs() {
		resp.Sinks = append(resp.Sinks, int(sk))
	}
	var c *compiler.Compiled
	if s.opts.Unbatched {
		var err error
		c, err = s.eng.CompileTraced(g, cfg, req.Options, tr)
		if err != nil {
			s.fail(w, "compile: "+err.Error(), http.StatusUnprocessableEntity)
			return
		}
		exStart := s.clock.Now()
		s.executeUnbatched(c, g, &req, &resp)
		tr.Span("execute", exStart, s.clock.Now().Sub(exStart), 0,
			trace.Int("batch_size", int64(len(req.Inputs))))
	} else {
		// The scheduler's batch leader compiles (single-flight, cached);
		// the request does NOT pre-compile, so the batched path touches
		// the engine's cache lock once per batch, not once per request.
		var ok bool
		if c, ok = s.executeBatched(w, g, cfg, &req, &resp, tr); !ok {
			return // already answered with 422/429/503
		}
	}
	if c == nil {
		// No item carried the compiled program (empty input list, or
		// every vector failed in execution): compile — almost always a
		// cache hit — purely for the response metadata.
		var err error
		c, err = s.eng.CompileTraced(g, cfg, req.Options, tr)
		if err != nil {
			s.fail(w, "compile: "+err.Error(), http.StatusUnprocessableEntity)
			return
		}
	}
	resp.Config = c.Prog.Cfg.String()
	resp.Compile = c.Stats
	// JSON has no encoding for ±Inf/NaN, and a mid-body Encode failure
	// would truncate a committed 200: itemize non-finite outputs as
	// per-vector errors and encode to a buffer before writing anything.
	for i, res := range resp.Results {
		for _, v := range res.Outputs {
			if math.IsInf(v, 0) || math.IsNaN(v) {
				resp.Results[i] = ExecuteResult{Error: fmt.Sprintf("non-finite output %v (overflow?)", v)}
				break
			}
		}
	}
	encStart := s.clock.Now()
	body, err := json.Marshal(resp)
	if err != nil {
		s.fail(w, "encode: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
	tr.Span("encode", encStart, s.clock.Now().Sub(encStart), 0,
		trace.Int("bytes", int64(len(body))))
}

// executeBatched fans the request's input vectors through the scheduler,
// coalescing with concurrent requests, and returns the compiled program
// the batch ran (nil when no vector completed) for response metadata.
// It reports ok=false after answering the request itself when every
// vector was turned away before execution: full-queue and draining map
// to 429/503, a compilation failure to 422. Partial admission stays a
// 200 with per-item errors, so a burst sheds its overflow without
// losing the work already queued.
func (s *Server) executeBatched(w http.ResponseWriter, g *dag.Graph, cfg arch.Config, req *ExecuteRequest, resp *ExecuteResponse, tr *trace.Trace) (*compiler.Compiled, bool) {
	results, errs := s.sch.SubmitManyTraced(g, cfg, req.Options, req.Inputs, tr)
	var c *compiler.Compiled
	admitted, anyOK := false, false
	var compileErr *sched.CompileError
	for i, err := range errs {
		switch {
		case err == nil:
			admitted, anyOK = true, true
			if c == nil {
				c = results[i].Compiled
			}
		case !errors.Is(err, sched.ErrQueueFull) && !errors.Is(err, sched.ErrClosed):
			admitted = true
			errors.As(err, &compileErr)
		}
	}
	if !admitted && len(req.Inputs) > 0 {
		if errors.Is(errs[0], sched.ErrClosed) {
			s.fail(w, "server draining", http.StatusServiceUnavailable)
		} else {
			s.fail(w, "queue full: "+errs[0].Error(), http.StatusTooManyRequests)
		}
		return nil, false
	}
	if compileErr != nil && !anyOK {
		s.fail(w, "compile: "+compileErr.Err.Error(), http.StatusUnprocessableEntity)
		return nil, false
	}
	for i := range req.Inputs {
		if errs[i] != nil {
			resp.Results[i] = ExecuteResult{Error: errs[i].Error()}
			continue
		}
		resp.Results[i] = ExecuteResult{Outputs: results[i].Outputs, Cycles: results[i].Cycles}
	}
	return c, true
}

// executeUnbatched is PR 2's per-request path: the request's vectors fan
// out over the engine's worker pool in isolation, never coalescing with
// other requests.
func (s *Server) executeUnbatched(c *compiler.Compiled, g *dag.Graph, req *ExecuteRequest, resp *ExecuteResponse) {
	origOuts := g.Outputs()
	sinks := make([]dag.NodeID, len(origOuts))
	for j, sk := range origOuts {
		sinks[j] = c.Remap[sk]
	}
	results, errs := s.eng.ExecuteBatchItems(c, req.Inputs)
	for i, res := range results {
		if res == nil {
			msg := "execution failed"
			if errs[i] != nil {
				msg = errs[i].Error()
			}
			resp.Results[i] = ExecuteResult{Error: msg}
			continue
		}
		vals := make([]float64, len(sinks))
		for j, sk := range sinks {
			vals[j] = res.Outputs[sk]
		}
		resp.Results[i] = ExecuteResult{Outputs: vals, Cycles: res.Stats.Cycles}
	}
}
