package serve

// Tests for the serving tier's observability surface: /metrics exposes
// a parseable Prometheus text rendering of the same counters as /stats,
// and /traces serves request-scoped traces — joined to the caller's
// traceparent when one is sent, sampled otherwise.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"dpuv2/internal/metrics"
	"dpuv2/internal/trace"
)

func execRequest() ExecuteRequest {
	return ExecuteRequest{
		Graph:  "input\ninput\nadd 0 1\nconst 3\nmul 2 3\n",
		Inputs: [][]float64{{2, 5}},
	}
}

// TestServeMetricsExposition: after serving a request, /metrics parses
// as Prometheus text (histogram coherence is validated by the parser)
// and carries the request/scheduler/engine families /stats reports.
func TestServeMetricsExposition(t *testing.T) {
	_, srv := newTestServer(t, Options{})
	if resp, _ := postExecute(t, srv, execRequest()); resp.StatusCode != http.StatusOK {
		t.Fatalf("execute status = %d", resp.StatusCode)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != metrics.PromContentType {
		t.Fatalf("content type %q", ct)
	}
	fams, err := metrics.ParseProm(resp.Body)
	if err != nil {
		t.Fatalf("/metrics does not parse: %v", err)
	}
	byName := map[string]*metrics.PromFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	for _, name := range []string{
		"dpu_http_requests_total",
		"dpu_http_request_latency_ns",
		"dpu_sched_completed_total",
		"dpu_sched_stage_latency_ns",
		"dpu_engine_executions_total",
	} {
		if byName[name] == nil {
			t.Errorf("family %s missing from /metrics", name)
		}
	}
	if f := byName["dpu_http_requests_total"]; f != nil && f.Samples[0].Value < 1 {
		t.Errorf("dpu_http_requests_total = %v after a request", f.Samples[0].Value)
	}
	// The stage decomposition is one family labeled by stage.
	if f := byName["dpu_sched_stage_latency_ns"]; f != nil {
		stages := map[string]bool{}
		for _, s := range f.Samples {
			stages[s.Labels["stage"]] = true
		}
		for _, st := range []string{"queue_wait", "linger", "execute"} {
			if !stages[st] {
				t.Errorf("stage %q missing from dpu_sched_stage_latency_ns", st)
			}
		}
	}
}

// TestServeTraceJoinsTraceparent: a request carrying a traceparent is
// always traced under that exact trace ID, and the retained record
// decomposes the request into decode / stage / encode spans.
func TestServeTraceJoinsTraceparent(t *testing.T) {
	s, srv := newTestServer(t, Options{
		Trace: trace.Options{SampleEvery: -1}, // never sample bare requests
	})

	id := trace.NewID()
	body, err := json.Marshal(execRequest())
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/execute", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(trace.Header, trace.Traceparent(id, trace.NewSpanID()))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("execute status = %d", resp.StatusCode)
	}

	recs := s.Tracer().Traces(0, "")
	if len(recs) != 1 {
		t.Fatalf("got %d traces, want exactly the header-carrying request", len(recs))
	}
	rec := recs[0]
	if rec.TraceID != id.String() {
		t.Fatalf("trace ID %s, want the caller's %s", rec.TraceID, id)
	}
	if rec.Service != "serve" {
		t.Fatalf("service %q, want serve", rec.Service)
	}
	for _, stage := range []string{"decode", "queue_wait", "linger", "execute", "encode"} {
		if !hasStage(rec, stage) {
			t.Errorf("span %q missing: %+v", stage, rec.Spans)
		}
	}
	// Stage windows never exceed the end-to-end request duration.
	var sum int64
	for _, sp := range rec.Spans {
		switch sp.Stage {
		case "queue_wait", "linger":
			sum += sp.DurationNS
		case "execute":
			if sp.Attrs["batch_size"] != nil { // the engine's batch window
				sum += sp.DurationNS
			}
		}
	}
	if sum > rec.DurationNS {
		t.Fatalf("stage sum %d exceeds request duration %d", sum, rec.DurationNS)
	}

	// The mounted handler serves the same record as JSON.
	hres, err := http.Get(srv.URL + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer hres.Body.Close()
	var out trace.TracesResponse
	if err := json.NewDecoder(hres.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Count != 1 || out.Traces[0].TraceID != id.String() {
		t.Fatalf("/traces = %+v, want the joined trace", out)
	}
}

// TestServeBareRequestsRespectSampling: with sampling disabled, a
// request without a traceparent leaves no trace behind.
func TestServeBareRequestsRespectSampling(t *testing.T) {
	s, srv := newTestServer(t, Options{
		Trace: trace.Options{SampleEvery: -1},
	})
	if resp, _ := postExecute(t, srv, execRequest()); resp.StatusCode != http.StatusOK {
		t.Fatalf("execute status = %d", resp.StatusCode)
	}
	if recs := s.Tracer().Traces(0, ""); len(recs) != 0 {
		t.Fatalf("unsampled bare request left %d traces", len(recs))
	}
}

func hasStage(rec *trace.Record, stage string) bool {
	for i := range rec.Spans {
		if rec.Spans[i].Stage == stage {
			return true
		}
	}
	return false
}
