package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"dpuv2/internal/arch"
	"dpuv2/internal/artifact"
	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
	"dpuv2/internal/engine"
)

const tuneGraphText = "input\ninput\nadd 0 1\nconst 3\nmul 2 3\n"

// switchTuner flips every workload to the fixed tuned config.
type switchTuner struct {
	tuned arch.Config
	calls atomic.Int64
}

func (st *switchTuner) Tune(ctx context.Context, g *dag.Graph, def arch.Config, opts compiler.Options) (*artifact.Decision, error) {
	st.calls.Add(1)
	return &artifact.Decision{
		Fingerprint: g.Fingerprint(),
		Config:      st.tuned.Normalize(),
		Options:     opts.Normalized(),
		Score:       1,
		Provenance: artifact.Provenance{
			Metric: "latency", Default: def.Normalize(), DefaultScore: 2,
			Points: 2, GridSize: 2, TunedAtUnix: 1, Tuner: "test/1",
		},
	}, nil
}

func getStats(t *testing.T, srv *httptest.Server) StatsResponse {
	t.Helper()
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestServeAutoTuneSwitch drives the full serving loop: the first
// request runs on the submitted (default) config while a background tune
// starts; after it completes, the same graph is served on the tuned
// config — visible in the response metadata, the tune stats section and
// the per-config pool map.
func TestServeAutoTuneSwitch(t *testing.T) {
	tuned := arch.MinEnergy()
	ft := &switchTuner{tuned: tuned}
	eng := engine.New(engine.Options{Tuner: ft})
	s := New(eng, Options{})
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	t.Cleanup(s.Drain)

	req := ExecuteRequest{Graph: tuneGraphText, Inputs: [][]float64{{2, 5}}}
	resp, out := postExecute(t, srv, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	def := arch.MinEDP()
	if out.Config != def.String() {
		t.Fatalf("first request served on %q, want default %q", out.Config, def)
	}
	if out.Results[0].Outputs[0] != 21 {
		t.Fatalf("wrong result: %+v", out.Results[0])
	}

	eng.WaitTunes()
	resp, out = postExecute(t, srv, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if out.Config != tuned.String() {
		t.Fatalf("post-tune request served on %q, want tuned %q", out.Config, tuned)
	}
	if out.Results[0].Outputs[0] != 21 {
		t.Fatalf("tuned config changed the answer: %+v", out.Results[0])
	}

	st := getStats(t, srv)
	if !st.Tune.Enabled || st.Tune.Tunes != 1 || st.Tune.TunedHits < 1 || st.Tune.InFlight != 0 {
		t.Fatalf("tune stats: %+v", st.Tune)
	}
	if len(st.Tune.Workloads) != 1 || st.Tune.Workloads[0].Config != tuned.String() {
		t.Fatalf("tune workloads: %+v", st.Tune.Workloads)
	}
	// Machine pools for both configs are observable per config string.
	if st.Engine.Pools[def.String()] < 1 || st.Engine.Pools[tuned.String()] < 1 {
		t.Fatalf("per-config pools not exposed: %+v", st.Engine.Pools)
	}
}

// TestServeAutoTuneWarmRestart is the acceptance criterion end to end: a
// server restarted over a store holding a decision and its pre-compiled
// artifact answers its *first* request on the tuned config, with zero
// in-process tunes and zero compilations.
func TestServeAutoTuneWarmRestart(t *testing.T) {
	dir := t.TempDir()
	store1, err := artifact.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tuned := arch.MinEnergy()

	// "Offline tune": first server instance tunes and persists.
	ft := &switchTuner{tuned: tuned}
	eng1 := engine.New(engine.Options{Tuner: ft, Store: store1})
	s1 := New(eng1, Options{})
	srv1 := httptest.NewServer(s1.Handler())
	req := ExecuteRequest{Graph: tuneGraphText, Inputs: [][]float64{{2, 5}}}
	if resp, _ := postExecute(t, srv1, req); resp.StatusCode != http.StatusOK {
		t.Fatal("seed request failed")
	}
	eng1.WaitTunes()
	eng1.Flush()
	s1.Drain()
	srv1.Close()

	// Restart: fresh store handle, fresh engine, no tuner — decisions
	// come exclusively from disk.
	store2, err := artifact.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng2 := engine.New(engine.Options{AutoTune: true, Store: store2})
	if _, err := eng2.Preload(); err != nil {
		t.Fatal(err)
	}
	s2 := New(eng2, Options{})
	srv2 := httptest.NewServer(s2.Handler())
	t.Cleanup(srv2.Close)
	t.Cleanup(s2.Drain)

	resp, out := postExecute(t, srv2, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if out.Config != tuned.String() {
		t.Fatalf("restarted server's first request served on %q, want tuned %q", out.Config, tuned)
	}
	if out.Results[0].Outputs[0] != 21 {
		t.Fatalf("wrong result after restart: %+v", out.Results[0])
	}
	st := getStats(t, srv2)
	if st.Tune.Tunes != 0 || st.Tune.InFlight != 0 {
		t.Fatalf("restart tuned in-process: %+v", st.Tune)
	}
	if st.Tune.StoreTuned != 1 || st.Tune.TunedHits < 1 {
		t.Fatalf("restart did not serve from the stored decision: %+v", st.Tune)
	}
	if st.Engine.Misses != 0 {
		t.Fatalf("restarted server compiled on the hot path: %+v", st.Engine)
	}
}

// TestServeAutoTuneOutOfBoundsDecisionIgnored: the .dputune format
// admits data memories larger than the serving limit; a stored decision
// carrying one must not be served (it would let a hand-staged store
// file build machines the request path would have rejected with 400).
// Two layers defend this: production wiring installs CheckConfigBounds
// as the engine's DecisionGuard, which pins the decision at install
// time (no false tuned hits); and even on an unguarded engine, the
// handler itself refuses the resolved config and falls back to the
// client's.
func TestServeAutoTuneOutOfBoundsDecisionIgnored(t *testing.T) {
	g, err := dag.Read(strings.NewReader(tuneGraphText), "g")
	if err != nil {
		t.Fatal(err)
	}
	huge := arch.Config{D: 3, B: 64, R: 32, Output: arch.OutPerLayer, DataMemWords: 1 << 25, ClockMHz: 300}
	d := &artifact.Decision{
		Fingerprint: g.Fingerprint(),
		Config:      huge,
		Options:     compiler.Options{}.Normalized(),
		Score:       1,
		Provenance: artifact.Provenance{
			Metric: "latency", Default: arch.MinEDP(), DefaultScore: 2,
			Points: 1, GridSize: 1, TunedAtUnix: 1, Tuner: "test/1",
		},
	}
	for _, tc := range []struct {
		name  string
		guard func(arch.Config) error
	}{
		// nil = the engine's default guard (CheckMachineBounds): the
		// decision pins at install time. The permissive guard disables
		// it, leaving the handler's own bounds check as the last line.
		{"guarded engine", nil},
		{"handler fallback", func(arch.Config) error { return nil }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			st, err := artifact.Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if err := st.PutDecision(d); err != nil {
				t.Fatal(err)
			}
			eng := engine.New(engine.Options{AutoTune: true, Store: st, DecisionGuard: tc.guard})
			s := New(eng, Options{})
			srv := httptest.NewServer(s.Handler())
			t.Cleanup(srv.Close)
			t.Cleanup(s.Drain)

			resp, out := postExecute(t, srv, ExecuteRequest{Graph: tuneGraphText, Inputs: [][]float64{{2, 5}}})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status = %d", resp.StatusCode)
			}
			if out.Config != arch.MinEDP().String() {
				t.Fatalf("served on %q, want the client's config %q (oversized decision must be ignored)", out.Config, arch.MinEDP())
			}
			if out.Results[0].Outputs[0] != 21 {
				t.Fatalf("wrong result: %+v", out.Results[0])
			}
			if tc.guard == nil {
				// The default guard pins at install time: no tuned hit
				// is claimed for traffic actually served on the default.
				ts := getStats(t, srv)
				if ts.Tune.TunedHits != 0 {
					t.Fatalf("guarded engine counted %d tuned hits for default-served traffic", ts.Tune.TunedHits)
				}
				if ts.Tune.Decisions != 1 {
					t.Fatalf("rejected decision not pinned: %+v", ts.Tune)
				}
			}
		})
	}
}

// TestServeAutoTuneBatchKeyFollowsDecision: once a decision lands,
// concurrent requests for the graph coalesce under the *tuned* batch key
// — the scheduler must see one key, not a default/tuned split.
func TestServeAutoTuneBatchKeyFollowsDecision(t *testing.T) {
	tuned := arch.MinEnergy()
	ft := &switchTuner{tuned: tuned}
	eng := engine.New(engine.Options{Tuner: ft})
	s := New(eng, Options{})
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	t.Cleanup(s.Drain)

	req := ExecuteRequest{Graph: tuneGraphText, Inputs: [][]float64{{2, 5}, {1, 1}, {4, 4}, {0, 7}}}
	if resp, _ := postExecute(t, srv, req); resp.StatusCode != http.StatusOK {
		t.Fatal("seed request failed")
	}
	eng.WaitTunes()
	if resp, out := postExecute(t, srv, req); resp.StatusCode != http.StatusOK || out.Config != tuned.String() {
		t.Fatalf("tuned batch: status %d config %q", resp.StatusCode, out.Config)
	}
	// All four post-tune vectors ran as one batch on the tuned config:
	// its pool exists and the default config saw no new executions.
	st := getStats(t, srv)
	if st.Engine.Pools[tuned.String()] < 1 {
		t.Fatalf("tuned pool missing: %+v", st.Engine.Pools)
	}
	if ft.calls.Load() != 1 {
		t.Fatalf("tuner ran %d times", ft.calls.Load())
	}
}
