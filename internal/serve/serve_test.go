package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"dpuv2/internal/engine"
	"dpuv2/internal/sched"
)

func postExecute(t *testing.T, srv *httptest.Server, req ExecuteRequest) (*http.Response, ExecuteResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/execute", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out ExecuteResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

// waitSched polls the scheduler's stats until cond holds — used only to
// wait for concurrent requests to reach their blocking point.
func waitSched(t *testing.T, s *Server, cond func(sched.Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond(s.Scheduler().Stats()) {
		if time.Now().After(deadline) {
			t.Fatalf("timed out; sched stats = %+v", s.Scheduler().Stats())
		}
		time.Sleep(50 * time.Microsecond)
	}
}

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(engine.New(engine.Options{}), opts)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	t.Cleanup(s.Drain)
	return s, srv
}

func TestServeExecuteEndToEnd(t *testing.T) {
	for _, unbatched := range []bool{false, true} {
		name := "batched"
		if unbatched {
			name = "unbatched"
		}
		t.Run(name, func(t *testing.T) {
			s, srv := newTestServer(t, Options{Unbatched: unbatched})

			// (x0 + x1) * 3 over two input vectors, plus one malformed vector.
			req := ExecuteRequest{
				Graph:  "input\ninput\nadd 0 1\nconst 3\nmul 2 3\n",
				Inputs: [][]float64{{2, 5}, {1, 1}, {7}},
			}
			resp, out := postExecute(t, srv, req)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status = %d", resp.StatusCode)
			}
			if out.Fingerprint == "" {
				t.Error("missing fingerprint")
			}
			if out.Batched == unbatched {
				t.Errorf("batched = %v in %s mode", out.Batched, name)
			}
			if len(out.Results) != 3 {
				t.Fatalf("got %d results, want 3", len(out.Results))
			}
			for i, want := range []float64{21, 6} {
				r := out.Results[i]
				if r.Error != "" {
					t.Fatalf("result %d errored: %s", i, r.Error)
				}
				if len(r.Outputs) != 1 || r.Outputs[0] != want {
					t.Errorf("result %d = %v, want [%v]", i, r.Outputs, want)
				}
				if r.Cycles <= 0 {
					t.Errorf("result %d missing cycle count", i)
				}
			}
			if out.Results[2].Error == "" {
				t.Error("malformed input vector did not surface an error")
			}

			// Same graph again: the engine must report a cache hit.
			if resp, _ := postExecute(t, srv, req); resp.StatusCode != http.StatusOK {
				t.Fatalf("second request status = %d", resp.StatusCode)
			}
			st := s.Stats()
			if st.Engine.Misses != 1 || st.Engine.Hits < 1 {
				t.Errorf("engine stats = %+v, want one miss and at least one hit", st.Engine)
			}
			if !unbatched {
				if st.Sched.Completed != 4 || st.Sched.Failed != 2 {
					t.Errorf("sched stats = %+v, want 4 completed / 2 failed", st.Sched)
				}
			}
		})
	}
}

// TestServeKAryGraphSinkIDs pins the sink-id contract: the response
// reports sinks as ids of the graph the client submitted, even when
// binarization renumbers nodes internally.
func TestServeKAryGraphSinkIDs(t *testing.T) {
	_, srv := newTestServer(t, Options{})

	// 3-ary add: node 3 in the client's graph, renumbered by Binarize.
	req := ExecuteRequest{
		Graph:  "input\ninput\ninput\nadd 0 1 2\n",
		Inputs: [][]float64{{1, 2, 4}},
	}
	resp, out := postExecute(t, srv, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(out.Sinks) != 1 || out.Sinks[0] != 3 {
		t.Errorf("sinks = %v, want [3] (ids of the submitted graph)", out.Sinks)
	}
	if len(out.Results) != 1 || out.Results[0].Error != "" {
		t.Fatalf("results = %+v", out.Results)
	}
	if got := out.Results[0].Outputs; len(got) != 1 || got[0] != 7 {
		t.Errorf("outputs = %v, want [7]", got)
	}
}

func TestServeBadRequests(t *testing.T) {
	_, srv := newTestServer(t, Options{})

	resp, err := http.Post(srv.URL+"/execute", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status = %d, want 400", resp.StatusCode)
	}

	// Truncated body: valid prefix of a JSON object, then EOF.
	resp, err = http.Post(srv.URL+"/execute", "application/json", bytes.NewReader([]byte(`{"graph": "input`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("truncated JSON: status = %d, want 400", resp.StatusCode)
	}

	if resp, _ := postExecute(t, srv, ExecuteRequest{Graph: "bogus op\n"}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed graph: status = %d, want 400", resp.StatusCode)
	}

	// A graph that fails compilation (B < 2^D) — with input vectors the
	// failure surfaces through the scheduler batch (sched.CompileError),
	// without them through the metadata fallback; both must 422.
	badCfg := ExecuteRequest{Graph: "input\ninput\nadd 0 1\n"}
	badCfg.Config.D = 5
	badCfg.Config.B = 2
	badCfg.Config.R = 8
	if resp, _ := postExecute(t, srv, badCfg); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("bad config, no inputs: status = %d, want 422", resp.StatusCode)
	}
	badCfg.Inputs = [][]float64{{1, 2}, {3, 4}}
	if resp, _ := postExecute(t, srv, badCfg); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("bad config, batched inputs: status = %d, want 422", resp.StatusCode)
	}

	// A constructible but absurdly sized config must be rejected before
	// any machine is allocated.
	huge := ExecuteRequest{Graph: "input\ninput\nadd 0 1\n", Inputs: [][]float64{{1, 2}}}
	huge.Config.D = 1
	huge.Config.B = 2
	huge.Config.R = 1 << 30
	if resp, _ := postExecute(t, srv, huge); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized config: status = %d, want 400", resp.StatusCode)
	}

	getResp, err := http.Get(srv.URL + "/execute")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /execute: status = %d, want 405", getResp.StatusCode)
	}

	hResp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hResp.Body.Close()
	if hResp.StatusCode != http.StatusOK {
		t.Errorf("healthz: status = %d", hResp.StatusCode)
	}
}

// TestServeNonFiniteOutputsItemized: JSON cannot represent ±Inf/NaN, so
// an overflowing execution must come back as that vector's error — not
// as a truncated 200 killed by the response encoder.
func TestServeNonFiniteOutputsItemized(t *testing.T) {
	for _, unbatched := range []bool{false, true} {
		_, srv := newTestServer(t, Options{Unbatched: unbatched})
		req := ExecuteRequest{
			Graph:  "const 1e308\nconst 1e308\nmul 0 1\n",
			Inputs: [][]float64{{}},
		}
		resp, out := postExecute(t, srv, req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("unbatched=%v: status = %d, want 200", unbatched, resp.StatusCode)
		}
		if len(out.Results) != 1 || out.Results[0].Error == "" {
			t.Errorf("unbatched=%v: overflow not itemized: %+v", unbatched, out.Results)
		}
	}
}

// TestServeOversizedBatch413 pins the per-request batch bound.
func TestServeOversizedBatch413(t *testing.T) {
	_, srv := newTestServer(t, Options{MaxInputsPerRequest: 2})
	req := ExecuteRequest{
		Graph:  "input\ninput\nadd 0 1\n",
		Inputs: [][]float64{{1, 2}, {3, 4}, {5, 6}},
	}
	resp, _ := postExecute(t, srv, req)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("status = %d, want 413", resp.StatusCode)
	}
	// At the bound is fine.
	req.Inputs = req.Inputs[:2]
	if resp, _ := postExecute(t, srv, req); resp.StatusCode != http.StatusOK {
		t.Errorf("status at bound = %d, want 200", resp.StatusCode)
	}
}

// TestServeQueueFull429 fills the scheduler's queue with a request
// parked on a never-firing fake-clock linger, then checks that the next
// request is shed with 429 and that draining completes the parked one.
func TestServeQueueFull429(t *testing.T) {
	clk := sched.NewFakeClock(time.Unix(0, 0))
	s, srv := newTestServer(t, Options{
		Sched: sched.Options{MaxBatch: 100, Linger: time.Hour, QueueDepth: 1, Clock: clk},
	})
	req := ExecuteRequest{Graph: "input\ninput\nadd 0 1\n", Inputs: [][]float64{{1, 2}}}

	type reply struct {
		status int
		out    ExecuteResponse
	}
	parked := make(chan reply, 1)
	go func() {
		resp, out := postExecute(t, srv, req)
		parked <- reply{resp.StatusCode, out}
	}()
	waitSched(t, s, func(st sched.Stats) bool { return st.QueueDepth == 1 })

	// Queue is full: the whole next request is turned away.
	resp, _ := postExecute(t, srv, req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("status = %d, want 429", resp.StatusCode)
	}
	if st := s.Scheduler().Stats(); st.Rejected == 0 {
		t.Error("scheduler recorded no rejection")
	}

	// Drain flushes the parked batch; the in-flight request completes.
	s.Drain()
	got := <-parked
	if got.status != http.StatusOK {
		t.Fatalf("parked request status = %d, want 200", got.status)
	}
	if len(got.out.Results) != 1 || got.out.Results[0].Outputs[0] != 3 {
		t.Errorf("parked result = %+v, want [3]", got.out.Results)
	}
}

// TestServePartialAdmission: a request straddling the queue bound keeps
// its admitted vectors and itemizes ErrQueueFull on the overflow.
func TestServePartialAdmission(t *testing.T) {
	clk := sched.NewFakeClock(time.Unix(0, 0))
	s, srv := newTestServer(t, Options{
		Sched: sched.Options{MaxBatch: 100, Linger: time.Hour, QueueDepth: 2, Clock: clk},
	})
	req := ExecuteRequest{
		Graph:  "input\ninput\nadd 0 1\n",
		Inputs: [][]float64{{1, 2}, {3, 4}, {5, 6}},
	}
	done := make(chan ExecuteResponse, 1)
	go func() {
		resp, out := postExecute(t, srv, req)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("status = %d, want 200 (partial admission)", resp.StatusCode)
		}
		done <- out
	}()
	waitSched(t, s, func(st sched.Stats) bool { return st.QueueDepth == 2 && st.Rejected == 1 })
	clk.Advance(time.Hour)
	out := <-done
	if len(out.Results) != 3 {
		t.Fatalf("got %d results", len(out.Results))
	}
	for i, want := range []float64{3, 7} {
		if out.Results[i].Error != "" || out.Results[i].Outputs[0] != want {
			t.Errorf("result %d = %+v, want [%v]", i, out.Results[i], want)
		}
	}
	if out.Results[2].Error == "" {
		t.Error("overflow item did not itemize its rejection")
	}
}

// TestServeStatsSchemaRoundTrip locks the /stats wire format: the body
// must decode into StatsResponse with no unknown fields, carry the
// queue-depth / batch-size / latency extensions, and re-encode to the
// same JSON.
func TestServeStatsSchemaRoundTrip(t *testing.T) {
	_, srv := newTestServer(t, Options{})
	req := ExecuteRequest{Graph: "input\ninput\nadd 0 1\n", Inputs: [][]float64{{1, 2}, {3, 4}}}
	if resp, _ := postExecute(t, srv, req); resp.StatusCode != http.StatusOK {
		t.Fatalf("execute status = %d", resp.StatusCode)
	}
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	var st StatsResponse
	dec := json.NewDecoder(io.TeeReader(resp.Body, &buf))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&st); err != nil {
		t.Fatalf("stats schema drifted from StatsResponse: %v", err)
	}
	// Round trip: re-encoding must reproduce the served JSON.
	reenc, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var a, b any
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(reenc, &b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("stats JSON does not round-trip:\nserved:   %s\nre-coded: %s", buf.Bytes(), reenc)
	}
	// The extensions the scheduler PR added must be live.
	if st.Sched.Completed != 2 {
		t.Errorf("sched.completed = %d, want 2", st.Sched.Completed)
	}
	if st.Sched.BatchSize.Count == 0 || st.Sched.BatchSize.Max == 0 {
		t.Errorf("batch-size histogram empty: %+v", st.Sched.BatchSize)
	}
	if st.HTTP.Requests != 1 {
		t.Errorf("http.requests = %d, want 1", st.HTTP.Requests)
	}
	l := st.HTTP.Latency
	if l.Count != 1 || l.P50 <= 0 || l.P50 > l.P95 || l.P95 > l.P99 || l.P99 > l.Max {
		t.Errorf("latency quantiles inconsistent: %+v", l)
	}
	if st.Sched.QueueDepth != 0 || st.Sched.QueueLimit <= 0 {
		t.Errorf("queue depth/limit = %d/%d", st.Sched.QueueDepth, st.Sched.QueueLimit)
	}
	// The verifier-gate counters must be on the wire (zero here — this
	// server has no store, so nothing crossed a verify boundary).
	if !bytes.Contains(buf.Bytes(), []byte(`"Verified"`)) ||
		!bytes.Contains(buf.Bytes(), []byte(`"VerifyRejects"`)) {
		t.Errorf("engine stats missing verifier counters: %s", buf.Bytes())
	}
}

// TestServeGracefulDrain: requests in flight when the drain starts
// complete successfully; requests arriving after it are answered 503,
// and /healthz flips to 503 so load balancers stop routing here.
func TestServeGracefulDrain(t *testing.T) {
	clk := sched.NewFakeClock(time.Unix(0, 0))
	s, srv := newTestServer(t, Options{
		Sched: sched.Options{MaxBatch: 100, Linger: time.Hour, Clock: clk},
	})
	req := ExecuteRequest{Graph: "input\ninput\nmul 0 1\n", Inputs: [][]float64{{6, 7}}}

	inflight := make(chan reply2, 1)
	go func() {
		resp, out := postExecute(t, srv, req)
		inflight <- reply2{resp.StatusCode, out}
	}()
	waitSched(t, s, func(st sched.Stats) bool { return st.QueueDepth == 1 })

	s.Drain()

	// The in-flight request was flushed by the drain and completed.
	got := <-inflight
	if got.status != http.StatusOK {
		t.Fatalf("in-flight request during drain: status = %d, want 200", got.status)
	}
	if got.out.Results[0].Outputs[0] != 42 {
		t.Errorf("in-flight result = %+v, want [42]", got.out.Results[0])
	}

	// New work is rejected.
	if resp, _ := postExecute(t, srv, req); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain execute: status = %d, want 503", resp.StatusCode)
	}
	hResp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hResp.Body.Close()
	if hResp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain healthz: status = %d, want 503", hResp.StatusCode)
	}
}

type reply2 struct {
	status int
	out    ExecuteResponse
}
