package serve

// Opt-in pprof debug listener shared by cmd/dpu-serve and
// cmd/dpu-gateway. The profiling surface is deliberately a SEPARATE
// listener on a separate mux: the serving mux never exposes
// /debug/pprof, so an operator can bind the debug address to loopback
// (or not at all — the default) while the serving port faces traffic,
// and a profiling request can never be confused with, rate-limit, or
// drain-block a serving request. The handlers are registered explicitly
// rather than through net/http/pprof's DefaultServeMux side effect, so
// nothing leaks onto any other mux in the process.

import (
	"net/http"
	nhpprof "net/http/pprof"
)

// NewDebugServer builds the pprof server for addr. The caller starts it
// (ListenAndServe) and owns its lifetime; it is independent of the
// serving listener and is simply abandoned at process exit — profiling
// has no drain semantics.
func NewDebugServer(addr string) *http.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", nhpprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", nhpprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", nhpprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", nhpprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", nhpprof.Trace)
	return &http.Server{Addr: addr, Handler: mux}
}
