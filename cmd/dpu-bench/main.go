// Command dpu-bench regenerates the tables and figures of the paper's
// evaluation section. Run every experiment, or select one with -exp.
//
//	dpu-bench -scale 1.0 -exp fig14a
//	dpu-bench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dpuv2/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment name or 'all'")
	scale := flag.Float64("scale", 1.0, "workload scale vs Table I sizes")
	largeScale := flag.Float64("large-scale", 0.05, "large-PC suite scale")
	seed := flag.Int64("seed", 0, "compiler randomization seed")
	workers := flag.Int("workers", 0, "evaluation worker count (0: one per CPU)")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(bench.Experiments(), "\n"))
		return
	}
	r := bench.NewRunner(bench.Config{Scale: *scale, LargeScale: *largeScale, Seed: *seed, Workers: *workers})
	names := bench.Experiments()
	if *exp != "all" {
		names = strings.Split(*exp, ",")
	}
	failed := false
	for _, n := range names {
		out, err := r.Run(strings.TrimSpace(n))
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", n, err)
			failed = true
			continue
		}
		fmt.Println(out)
	}
	if failed {
		os.Exit(1)
	}
}
