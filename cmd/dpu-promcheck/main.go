// Command dpu-promcheck validates a Prometheus text exposition read from
// stdin — the CI teeth behind GET /metrics. It parses the 0.0.4 text
// format with the same in-repo parser the round-trip tests use
// (metrics.ParseProm), checks every histogram family's invariants
// (cumulative non-decreasing buckets, +Inf present and equal to _count,
// _sum present), and exits non-zero on any violation, printing what it
// found either way:
//
//	curl -s localhost:8080/metrics | dpu-promcheck
package main

import (
	"fmt"
	"log"
	"os"

	"dpuv2/internal/metrics"
)

func main() {
	fams, err := metrics.ParseProm(os.Stdin)
	if err != nil {
		log.Fatalf("dpu-promcheck: %v", err)
	}
	samples := 0
	for _, f := range fams {
		samples += len(f.Samples)
	}
	fmt.Printf("dpu-promcheck: ok — %d families, %d samples\n", len(fams), samples)
}
