// Command dpu-gateway is the sharded serving front: it consistent-hashes
// each request graph's fingerprint across N dpu-serve backends, so every
// backend's compile cache, tuned-decision table and executor pools stay
// hot for its own shard — horizontal scale that preserves the
// compile-once/execute-many economics instead of multiplying cold
// compiles by the fleet size.
//
//	POST /execute   routed to the fingerprint's shard owner; hedged to
//	                the next ring owner past the p99-derived delay, and
//	                failed over on connect errors / draining backends
//	GET  /stats     fleet view: per-backend engine/sched/http sections
//	                merged (histograms merged bucket-wise, never averaged
//	                quantiles) plus the per-backend breakdown and the
//	                gateway's own routing counters
//	GET  /healthz   200 while at least one backend is live
//
// Backends are polled at /healthz every -health-interval: a draining
// backend (503, what dpu-serve answers during graceful shutdown) leaves
// the ring and only its shard ranges remap to their ring successors.
// Point the whole fleet at one shared -artifact-dir so any backend —
// including a failover target — warm-starts a shard's programs from the
// store instead of recompiling them:
//
//	dpu-serve -addr :9001 -artifact-dir /var/lib/dpu/store &
//	dpu-serve -addr :9002 -artifact-dir /var/lib/dpu/store &
//	dpu-gateway -addr :8080 \
//	    -backends http://localhost:9001,http://localhost:9002
//
// SIGINT/SIGTERM drain gracefully under -drain-timeout (a second signal
// forces exit), mirroring dpu-serve.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dpuv2/internal/gateway"
	"dpuv2/internal/serve"
	"dpuv2/internal/trace"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	backends := flag.String("backends", "", "comma-separated dpu-serve base URLs (required)")
	vnodes := flag.Int("vnodes", gateway.DefaultVNodes, "virtual nodes per backend on the hash ring")
	healthInterval := flag.Duration("health-interval", time.Second, "backend /healthz polling period")
	requestTimeout := flag.Duration("request-timeout", 30*time.Second, "bound on one proxied attempt to one backend")
	hedgeMin := flag.Duration("hedge-min", 2*time.Millisecond, "lower clamp on the p99-derived hedge delay")
	hedgeMax := flag.Duration("hedge-max", 500*time.Millisecond, "upper clamp on the p99-derived hedge delay (used until enough samples)")
	noHedge := flag.Bool("no-hedge", false, "disable hedged retries (failover on hard errors remains)")
	readTimeout := flag.Duration("read-timeout", serve.DefaultReadTimeout, "close a client connection that has not finished sending its request by then")
	idleTimeout := flag.Duration("idle-timeout", serve.DefaultIdleTimeout, "reclaim idle keep-alive client connections after this long")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "bound on the whole shutdown sequence")
	traceSample := flag.Int("trace-sample", trace.DefaultSampleEvery, "trace 1 in N requests arriving without a traceparent header (0: never; requests carrying the header are always traced)")
	traceSlow := flag.Duration("trace-slow", trace.DefaultSlowThreshold, "retain traces at least this slow in the slow-trace reservoir (GET /traces)")
	debugAddr := flag.String("debug-addr", "", "pprof listen address (e.g. localhost:6061); empty disables. Always a separate listener — the serving port never exposes /debug/pprof")
	flag.Parse()

	var addrs []string
	for _, a := range strings.Split(*backends, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		log.Fatal("dpu-gateway: -backends is required (comma-separated dpu-serve URLs)")
	}
	sampleEvery := *traceSample
	if sampleEvery <= 0 {
		sampleEvery = -1 // 0 on the flag means "never sample", not "default"
	}
	gw, err := gateway.New(gateway.Options{
		Backends:       addrs,
		VNodes:         *vnodes,
		HealthInterval: *healthInterval,
		RequestTimeout: *requestTimeout,
		HedgeMin:       *hedgeMin,
		HedgeMax:       *hedgeMax,
		DisableHedge:   *noHedge,
		Trace: trace.Options{
			SampleEvery:   sampleEvery,
			SlowThreshold: *traceSlow,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	hs := serve.NewHTTPServer(*addr, gw.Handler(), *readTimeout, *idleTimeout)
	if *debugAddr != "" {
		ds := serve.NewDebugServer(*debugAddr)
		go func() {
			if err := ds.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("dpu-gateway: debug listener: %v", err)
			}
		}()
		log.Printf("dpu-gateway: pprof debug listener on %s (separate from the serving port)", *debugAddr)
	}

	done := make(chan struct{})
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		log.Printf("dpu-gateway: %v, draining (bounded by %v; second signal forces exit)", sig, *drainTimeout)
		go func() {
			sig := <-sigc
			log.Printf("dpu-gateway: second %v, forcing immediate exit", sig)
			os.Exit(1)
		}()
		deadline := time.Now().Add(*drainTimeout)
		ok := serve.DrainWithin(*drainTimeout,
			gw.Drain, // healthz flips 503, new requests rejected
			gw.Close, // health checker stops
		)
		if !ok {
			log.Printf("dpu-gateway: drain did not complete within %v, exiting anyway", *drainTimeout)
			hs.Close()
			close(done)
			return
		}
		ctx, cancel := context.WithDeadline(context.Background(), deadline)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("dpu-gateway: shutdown: %v", err)
			hs.Close()
		}
		close(done)
	}()

	log.Printf("dpu-gateway listening on %s over %d backends (vnodes=%d health-interval=%v hedge=[%v,%v] hedging=%v)",
		*addr, len(addrs), *vnodes, *healthInterval, *hedgeMin, *hedgeMax, !*noHedge)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	<-done
}
