package main

// The routing/hedging/failover test matrix lives in internal/gateway;
// this file only smoke-tests the wiring the binary performs: a gateway
// built the way main builds it routes a request to a real backend
// through the hardened server and answers it end to end.

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"dpuv2/internal/engine"
	"dpuv2/internal/gateway"
	"dpuv2/internal/serve"
)

func TestDefaultWiringProxiesEndToEnd(t *testing.T) {
	eng := engine.New(engine.Options{})
	backend := serve.New(eng, serve.Options{})
	ts := httptest.NewServer(backend.Handler())
	defer ts.Close()
	defer backend.Drain()

	gw, err := gateway.New(gateway.Options{
		Backends:       []string{ts.URL},
		HealthInterval: time.Second,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	hs := serve.NewHTTPServer("127.0.0.1:0", gw.Handler(), 0, 0)
	ln, err := net.Listen("tcp", hs.Addr)
	if err != nil {
		t.Fatal(err)
	}
	go hs.Serve(ln)
	defer hs.Close()
	front := "http://" + ln.Addr().String()

	body, _ := json.Marshal(serve.ExecuteRequest{
		Graph:  "input\ninput\nadd 0 1\nconst 3\nmul 2 3\n",
		Inputs: [][]float64{{2, 5}},
	})
	resp, err := http.Post(front+"/execute", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out serve.ExecuteResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 1 || out.Results[0].Outputs[0] != 21 {
		t.Fatalf("results = %+v, want [[21]]", out.Results)
	}

	st, err := http.Get(front + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Body.Close()
	var fleet gateway.FleetStatsResponse
	if err := json.NewDecoder(st.Body).Decode(&fleet); err != nil {
		t.Fatal(err)
	}
	if fleet.Gateway.Proxied != 1 || fleet.Gateway.Healthy != 1 || fleet.Fleet == nil {
		t.Errorf("fleet stats %+v, want proxied=1 healthy=1 with a merged view", fleet.Gateway)
	}
}
