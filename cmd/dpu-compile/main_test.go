package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dpuv2/internal/artifact"
	"dpuv2/internal/dag"
	"dpuv2/internal/sim"
)

const testDAG = "# tiny request graph\ninput\ninput\nadd 0 1\nconst 3\nmul 2 3\n"

func writeDAG(t *testing.T) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "g.dag")
	if err := os.WriteFile(p, []byte(testDAG), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestEmitArtifactRoundTrip: -o *.dpuprog writes an artifact that
// decodes, matches the source graph's fingerprint, and executes
// bit-exactly against the reference evaluator — the emit→load round
// trip through a temp dir.
func TestEmitArtifactRoundTrip(t *testing.T) {
	dagPath := writeDAG(t)
	out := filepath.Join(t.TempDir(), "g.dpuprog")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-in", dagPath, "-d", "2", "-b", "8", "-r", "16", "-o", out}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "wrote "+out) {
		t.Errorf("stdout does not report the emitted file:\n%s", stdout.String())
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	a, err := artifact.DecodeBytes(b)
	if err != nil {
		t.Fatalf("emitted artifact does not decode: %v", err)
	}
	g, err := dag.Read(strings.NewReader(testDAG), "g")
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint != g.Fingerprint() {
		t.Error("artifact fingerprint differs from the source graph's")
	}
	if res, err := sim.Verify(a.Compiled, []float64{2, 5}, 0); err != nil {
		t.Errorf("emitted program fails verification: %v", err)
	} else {
		for _, v := range res.Outputs {
			if v != 21 {
				t.Errorf("(2+5)*3 = %v, want 21", v)
			}
		}
	}
}

// TestEmitRawBinary: any other -o extension keeps the legacy behavior —
// the raw packed instruction stream, not an artifact.
func TestEmitRawBinary(t *testing.T) {
	out := filepath.Join(t.TempDir(), "g.bin")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-in", writeDAG(t), "-d", "2", "-b", "8", "-r", "16", "-o", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := artifact.DecodeBytes(b); err == nil {
		t.Error("raw -o output unexpectedly decodes as an artifact")
	}
	if len(b) == 0 {
		t.Error("raw binary is empty")
	}
}

// TestNamedWorkload compiles a Table I benchmark by name at a small
// scale, no output file.
func TestNamedWorkload(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-workload", "tretail", "-scale", "0.01", "-d", "2", "-b", "8", "-r", "16"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	for _, want := range []string{"workload:", "instructions:", "fingerprint:"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("report lacks %q:\n%s", want, stdout.String())
		}
	}
}

// TestBadInputsExitNonZero: every operator mistake is a non-zero exit
// with a message on stderr, not a panic or a silent success.
func TestBadInputsExitNonZero(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "nope.dag")
	malformed := filepath.Join(t.TempDir(), "bad.dag")
	if err := os.WriteFile(malformed, []byte("frobnicate 1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-definitely-not-a-flag"}},
		{"unparseable flag value", []string{"-scale", "tiny"}},
		{"unknown workload", []string{"-workload", "not-in-table-1"}},
		{"missing input file", []string{"-in", missing}},
		{"malformed DAG file", []string{"-in", malformed}},
		{"invalid config", []string{"-workload", "tretail", "-scale", "0.01", "-d", "9"}},
		{"unwritable output", []string{"-workload", "tretail", "-scale", "0.01", "-d", "2", "-b", "8", "-r", "16", "-o", filepath.Join(t.TempDir(), "no", "such", "dir", "x.dpuprog")}},
	}
	for _, tc := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(tc.args, &stdout, &stderr); code == 0 {
			t.Errorf("%s: exit 0, want non-zero", tc.name)
		} else if stderr.Len() == 0 {
			t.Errorf("%s: nothing on stderr", tc.name)
		}
	}
}

// TestHelpExitsZero: -h is a successful usage request (scripts probe
// tools with it), not a flag-parse failure.
func TestHelpExitsZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-h"}, &stdout, &stderr); code != 0 {
		t.Errorf("-h exited %d, want 0", code)
	}
	if !strings.Contains(stderr.String(), "-workload") {
		t.Error("-h did not print usage")
	}
}
