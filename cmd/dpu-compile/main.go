// Command dpu-compile compiles a benchmark workload for a DPU-v2
// configuration and reports the compilation statistics, instruction mix
// and packed binary size; optionally the result is written to a file.
//
//	dpu-compile -workload mnist -scale 0.5 -d 3 -b 64 -r 32 -o mnist.bin
//
// The -o extension selects the output form:
//
//   - *.dpuprog — a versioned, self-describing artifact (see
//     internal/artifact): config + options header, source-graph
//     fingerprint, binarized graph, data-memory maps and the packed
//     instruction stream, checksummed. Drop such files in a directory
//     and `dpu-serve -artifact-dir <dir>` warm-starts from them without
//     ever compiling; `dpu-sim -artifact <file>` executes one directly.
//   - anything else — the raw packed instruction stream (fig. 7(b)),
//     the form the paper's footprint comparisons use.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"dpuv2/internal/arch"
	"dpuv2/internal/artifact"
	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
	"dpuv2/internal/suite"
	"dpuv2/internal/verify"
)

// run is the testable body of the command: parse args, compile, report,
// emit. It returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dpu-compile", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workload := fs.String("workload", "tretail", "benchmark name from Table I")
	in := fs.String("in", "", "compile a DAG file (see internal/dag format) instead of a named benchmark")
	disasm := fs.Bool("disasm", false, "print the disassembled program")
	scale := fs.Float64("scale", 1.0, "workload scale")
	d := fs.Int("d", 3, "tree depth D")
	b := fs.Int("b", 64, "register banks B")
	r := fs.Int("r", 32, "registers per bank R")
	out := fs.String("o", "", "write the program to this file (*.dpuprog: versioned artifact; otherwise raw packed binary)")
	seed := fs.Int64("seed", 0, "compiler randomization seed")
	part := fs.Int("partition", 0, "coarse partition size (0 = off)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0 // -h is a successful usage request, not a mistake
		}
		return 2
	}

	var g *dag.Graph
	var err error
	if *in != "" {
		f, ferr := os.Open(*in)
		if ferr != nil {
			fmt.Fprintln(stderr, ferr)
			return 1
		}
		g, err = dag.Read(f, *in)
		f.Close()
	} else {
		g, err = suite.Build(*workload, *scale)
	}
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	cfg := arch.Config{D: *d, B: *b, R: *r, Output: arch.OutPerLayer}
	opts := compiler.Options{Seed: *seed, PartitionSize: *part}
	c, err := compiler.Compile(g, cfg, opts)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	// Static verification before anything is reported or emitted — the
	// same everything-we-emit-must-verify assertion the engine's
	// VerifyCompiles option enforces, at the offline entry point that
	// feeds shared artifact stores.
	if fs := verify.Compiled(c); verify.HasErrors(fs) {
		fmt.Fprintf(stderr, "dpu-compile: compiled program fails static verification (%s):\n", verify.Summary(fs))
		for _, f := range fs {
			fmt.Fprintf(stderr, "  %s\n", f)
		}
		return 1
	}
	st := c.Stats
	fmt.Fprintf(stdout, "workload:      %s (%d arithmetic nodes)\n", g.Name, st.Nodes)
	fmt.Fprintf(stdout, "configuration: %v\n", cfg.Normalize())
	fmt.Fprintf(stdout, "fingerprint:   %s\n", g.Fingerprint().Short())
	fmt.Fprintf(stdout, "blocks:        %d (mean PE utilization %.2f, peak %.2f)\n", st.Blocks, st.MeanUtil, st.PeakUtil)
	fmt.Fprintf(stdout, "instructions:  %d (exec %d, load %d, copy %d, store %d, nop %d)\n",
		st.Instructions, st.Execs, st.Loads, st.Copies, st.Stores+st.SpillStores, st.Nops)
	fmt.Fprintf(stdout, "conflicts:     %d repaired words (%d input, %d output moves)\n",
		st.CopiedWords, st.InputConflicts, st.OutputMoves)
	fmt.Fprintf(stdout, "spills:        %d stores, %d reloads\n", st.SpillStores, st.Reloads)
	fmt.Fprintf(stdout, "binary:        %d bytes packed (%d bits), data image %d words\n",
		(c.Prog.BitSize()+7)/8, c.Prog.BitSize(), len(c.Prog.InitMem))
	fmt.Fprintf(stdout, "compile time:  %.3fs\n", st.CompileSeconds)
	if *disasm {
		fmt.Fprint(stdout, arch.DisassembleProgram(c.Prog))
	}
	if *out != "" {
		var data []byte
		if strings.HasSuffix(*out, artifact.Ext) {
			a := &artifact.Artifact{Fingerprint: g.Fingerprint(), Options: opts.Normalized(), Compiled: c}
			data, err = artifact.EncodeBytes(a)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
		} else {
			data = c.Prog.Pack()
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s (%d bytes)\n", *out, len(data))
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
