// Command dpu-compile compiles a benchmark workload for a DPU-v2
// configuration and reports the compilation statistics, instruction mix
// and packed binary size; optionally the binary is written to a file.
//
//	dpu-compile -workload mnist -scale 0.5 -d 3 -b 64 -r 32 -o mnist.bin
package main

import (
	"flag"
	"fmt"
	"os"

	"dpuv2/internal/arch"
	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
	"dpuv2/internal/pc"
	"dpuv2/internal/sptrsv"
)

func buildWorkload(name string, scale float64) (*dag.Graph, error) {
	for _, s := range pc.Suite() {
		if s.Name == name {
			return pc.Build(s, scale), nil
		}
	}
	for _, s := range pc.LargeSuite() {
		if s.Name == name {
			return pc.Build(s, scale), nil
		}
	}
	for _, s := range sptrsv.Suite() {
		if s.Name == name {
			g, _ := sptrsv.Build(s, scale)
			return g, nil
		}
	}
	return nil, fmt.Errorf("unknown workload %q (see Table I of the paper)", name)
}

func main() {
	workload := flag.String("workload", "tretail", "benchmark name from Table I")
	in := flag.String("in", "", "compile a DAG file (see internal/dag format) instead of a named benchmark")
	disasm := flag.Bool("disasm", false, "print the disassembled program")
	scale := flag.Float64("scale", 1.0, "workload scale")
	d := flag.Int("d", 3, "tree depth D")
	b := flag.Int("b", 64, "register banks B")
	r := flag.Int("r", 32, "registers per bank R")
	out := flag.String("o", "", "write packed binary to this file")
	seed := flag.Int64("seed", 0, "compiler randomization seed")
	part := flag.Int("partition", 0, "coarse partition size (0 = off)")
	flag.Parse()

	var g *dag.Graph
	var err error
	if *in != "" {
		f, ferr := os.Open(*in)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, ferr)
			os.Exit(1)
		}
		g, err = dag.Read(f, *in)
		f.Close()
	} else {
		g, err = buildWorkload(*workload, *scale)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg := arch.Config{D: *d, B: *b, R: *r, Output: arch.OutPerLayer}
	c, err := compiler.Compile(g, cfg, compiler.Options{Seed: *seed, PartitionSize: *part})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	st := c.Stats
	fmt.Printf("workload:      %s (%d arithmetic nodes)\n", g.Name, st.Nodes)
	fmt.Printf("configuration: %v\n", cfg.Normalize())
	fmt.Printf("blocks:        %d (mean PE utilization %.2f, peak %.2f)\n", st.Blocks, st.MeanUtil, st.PeakUtil)
	fmt.Printf("instructions:  %d (exec %d, load %d, copy %d, store %d, nop %d)\n",
		st.Instructions, st.Execs, st.Loads, st.Copies, st.Stores+st.SpillStores, st.Nops)
	fmt.Printf("conflicts:     %d repaired words (%d input, %d output moves)\n",
		st.CopiedWords, st.InputConflicts, st.OutputMoves)
	fmt.Printf("spills:        %d stores, %d reloads\n", st.SpillStores, st.Reloads)
	fmt.Printf("binary:        %d bytes packed (%d bits), data image %d words\n",
		(c.Prog.BitSize()+7)/8, c.Prog.BitSize(), len(c.Prog.InitMem))
	fmt.Printf("compile time:  %.3fs\n", st.CompileSeconds)
	if *disasm {
		fmt.Print(arch.DisassembleProgram(c.Prog))
	}
	if *out != "" {
		if err := os.WriteFile(*out, c.Prog.Pack(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}
