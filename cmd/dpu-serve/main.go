// Command dpu-serve exposes the compile-once/execute-many serving engine
// over HTTP — the deployment shape of the ROADMAP's "heavy traffic"
// north star: many clients submit the same few graphs with different
// inputs, the engine compiles each graph once, and the micro-batching
// scheduler (internal/sched) coalesces concurrent executions of the same
// graph into shared batches on pooled simulator machines.
//
// API (see internal/serve for the handler):
//
//	POST /execute
//	    {"graph": "<node-list text>",          // dag.Read format
//	     "config": {"D":3,"B":64,"R":32},      // omitted/zero → min-EDP
//	     "options": {"Seed":1},                // compiler options, optional
//	     "inputs": [[...], [...], ...]}        // one vector per execution
//	  → {"fingerprint": "...", "sinks": [...], "compile": {...},
//	     "batched": true,
//	     "results": [{"outputs":[...], "cycles": n} | {"error": "..."}]}
//
//	GET /stats    → engine + scheduler + HTTP counters (queue depth,
//	                batch-size histogram, p50/p95/p99 latency)
//	GET /healthz  → 200 ok (503 while draining)
//
// Batching is on by default; -unbatched restores PR 2's per-request
// path for A/B comparison. SIGINT/SIGTERM drain gracefully: in-flight
// requests complete, new ones are answered 503 until the listener
// closes. The whole drain sequence (including background tunes and
// store flushes) runs under the single -drain-timeout deadline, and a
// second signal forces immediate exit. Connections are hardened against
// stalled clients: -read-timeout bounds how long a request may take to
// arrive, -idle-timeout reclaims idle keep-alives.
//
// -artifact-dir makes compilation a true offline step: the directory is
// opened as a content-addressed store of .dpuprog artifacts
// (internal/artifact), every artifact in it is preloaded into the
// compile cache at boot — so a restarted server's first request never
// compiles — and every compilation the server does perform is persisted
// back, off the request path. Populate the directory ahead of time with
// `dpu-compile -o <dir>/name.dpuprog`, or simply let a previous run of
// the server fill it. /stats reports store hits/misses/preloads under
// "engine".
//
// -autotune closes the loop from the paper's design-space exploration to
// the serving path: each graph fingerprint is served on the hardware
// configuration the DSE says is best for it. Decisions come from
// `.dputune` records in -artifact-dir (produced offline by `dpu-tune
// -store <dir>` and preloaded at boot) or, for fingerprints with no
// stored decision, from an in-process background tune bounded by
// -tune-budget: the first requests run on the submitted config while the
// sweep runs off the request path, then traffic atomically switches to
// the winner (which is also persisted, with its pre-compiled program,
// for the next restart). A tuned config must beat the config it was
// tuned against (the one submitted at first sight) by ≥1% on
// -tune-metric or the decision pins that default — relative to it,
// autotuning never makes the workload slower. A decision is per graph
// fingerprint and overrides the config of every later request for that
// graph; clients that need their exact config honored should be served
// without -autotune. /stats reports the decision table,
// tuned hits and in-flight tunes under "tune", and per-config machine
// pools under "engine". -tune-search anneal makes background tunes run
// simulated annealing over the enlarged config space (RNG seeded by
// -tune-seed, deterministic at any worker count) instead of the fixed
// grid; either way the decision's provenance records the search that
// produced it.
//
// Example:
//
//	dpu-serve -addr :8080 -cache 256 -max-batch 32 -linger 500us \
//	          -artifact-dir /var/lib/dpu/artifacts &
//	curl -s localhost:8080/execute -d '{
//	  "graph": "input\ninput\nadd 0 1\nconst 3\nmul 2 3",
//	  "inputs": [[2,5],[1,1]]}'
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dpuv2/internal/artifact"
	"dpuv2/internal/dse"
	"dpuv2/internal/engine"
	"dpuv2/internal/sched"
	"dpuv2/internal/serve"
	"dpuv2/internal/sim"
	"dpuv2/internal/trace"
	"dpuv2/internal/tune"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cache := flag.Int("cache", 128, "compile-cache capacity (programs)")
	workers := flag.Int("workers", 0, "batch worker pool size (0: one per CPU)")
	pool := flag.Int("pool", 0, "idle machines retained per config (0: 2 per CPU)")
	maxBatch := flag.Int("max-batch", 32, "dispatch a batch at this many coalesced executions")
	linger := flag.Duration("linger", 500*time.Microsecond, "max wait for a batch to fill (negative: no coalescing)")
	queueDepth := flag.Int("queue-depth", 4096, "admitted-but-unfinished executions before 429s")
	maxInputs := flag.Int("max-inputs", 1024, "input vectors allowed per request before 413s")
	unbatched := flag.Bool("unbatched", false, "bypass the batching scheduler (PR 2 behavior)")
	backendName := flag.String("backend", "functional", "execution backend: functional (fast path, the default) or cycle (cycle-accurate simulation)")
	artifactDir := flag.String("artifact-dir", "", "persistent compiled-program store: preload .dpuprog artifacts and .dputune decisions at boot, persist new ones")
	autotune := flag.Bool("autotune", false, "serve each graph fingerprint on its tuned config (stored .dputune decisions; unseen fingerprints tune in the background)")
	tuneBudget := flag.Duration("tune-budget", 30*time.Second, "wall-clock budget per background tune (with -autotune)")
	tuneMetric := flag.String("tune-metric", "latency", "background-tune optimization target: latency, energy or edp")
	tuneSearch := flag.String("tune-search", "grid", "background-tune candidate search: grid (the 48-point sweep) or anneal (annealing over the enlarged space)")
	tuneSeed := flag.Int64("tune-seed", 0, "anneal RNG seed for -tune-search anneal (recorded in decision provenance)")
	readTimeout := flag.Duration("read-timeout", serve.DefaultReadTimeout, "close a connection that has not finished sending its request by then (slow-loris bound)")
	idleTimeout := flag.Duration("idle-timeout", serve.DefaultIdleTimeout, "reclaim idle keep-alive connections after this long")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "bound on the whole shutdown sequence (drain, background tunes, store flush, listener close)")
	traceSample := flag.Int("trace-sample", trace.DefaultSampleEvery, "trace 1 in N requests arriving without a traceparent header (0: never; requests carrying the header are always traced)")
	traceSlow := flag.Duration("trace-slow", trace.DefaultSlowThreshold, "retain traces at least this slow in the slow-trace reservoir (GET /traces)")
	debugAddr := flag.String("debug-addr", "", "pprof listen address (e.g. localhost:6060); empty disables. Always a separate listener — the serving port never exposes /debug/pprof")
	flag.Parse()

	backend, err := sim.ParseBackend(*backendName)
	if err != nil {
		log.Fatal(err)
	}
	var store *artifact.Store
	if *artifactDir != "" {
		var err error
		if store, err = artifact.Open(*artifactDir); err != nil {
			log.Fatal(err)
		}
	}
	var tuner engine.Tuner
	if *autotune {
		var metric dse.Metric
		if err := metric.ParseMetric(*tuneMetric); err != nil {
			log.Fatal(err)
		}
		var search tune.SearchKind
		if err := search.Parse(*tuneSearch); err != nil {
			log.Fatal(err)
		}
		tuner = tune.New(tune.Options{Metric: metric, Budget: *tuneBudget,
			Search: search, Anneal: dse.AnnealOptions{Seed: *tuneSeed}})
	}
	eng := engine.New(engine.Options{CacheSize: *cache, Workers: *workers, PoolSize: *pool,
		Store: store, AutoTune: *autotune, Tuner: tuner, Backend: backend})
	if store != nil {
		n, err := eng.Preload()
		if err != nil {
			log.Fatalf("dpu-serve: warm-start: %v", err)
		}
		s := eng.Stats()
		if s.StoreErrors > 0 {
			log.Printf("dpu-serve: warm-start skipped %d undecodable artifacts in %s", s.StoreErrors, *artifactDir)
		}
		if s.VerifyRejects > 0 {
			log.Printf("dpu-serve: warm-start purged %d artifacts that failed static verification in %s (run dpu-vet for details)", s.VerifyRejects, *artifactDir)
		}
		log.Printf("dpu-serve: warm-started %d compiled programs and %d tuning decisions from %s", n, s.StoreTuned, *artifactDir)
	}
	sampleEvery := *traceSample
	if sampleEvery <= 0 {
		sampleEvery = -1 // 0 on the flag means "never sample", not "default"
	}
	srv := serve.New(eng, serve.Options{
		Sched: sched.Options{
			MaxBatch:   *maxBatch,
			Linger:     *linger,
			QueueDepth: *queueDepth,
		},
		MaxInputsPerRequest: *maxInputs,
		Unbatched:           *unbatched,
		Trace: trace.Options{
			SampleEvery:   sampleEvery,
			SlowThreshold: *traceSlow,
		},
	})
	hs := serve.NewHTTPServer(*addr, srv.Handler(), *readTimeout, *idleTimeout)
	if *debugAddr != "" {
		ds := serve.NewDebugServer(*debugAddr)
		go func() {
			if err := ds.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("dpu-serve: debug listener: %v", err)
			}
		}()
		log.Printf("dpu-serve: pprof debug listener on %s (separate from the serving port)", *debugAddr)
	}

	done := make(chan struct{})
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		log.Printf("dpu-serve: %v, draining (bounded by %v; second signal forces exit)", sig, *drainTimeout)
		// A second signal must not wait on a wedged drain: force exit.
		go func() {
			sig := <-sigc
			log.Printf("dpu-serve: second %v, forcing immediate exit", sig)
			os.Exit(1)
		}()
		// The WHOLE sequence shares one deadline — a wedged background
		// tune or a store flush on a dead disk must not block exit.
		deadline := time.Now().Add(*drainTimeout)
		ok := serve.DrainWithin(*drainTimeout,
			srv.Drain,     // in-flight requests finish; new ones get 503
			eng.WaitTunes, // background tunes publish (and persist) their decisions
			eng.Flush,     // async artifact persists land before exit
		)
		if !ok {
			log.Printf("dpu-serve: drain did not complete within %v, exiting anyway", *drainTimeout)
			hs.Close()
			close(done)
			return
		}
		ctx, cancel := context.WithDeadline(context.Background(), deadline)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("dpu-serve: shutdown: %v", err)
			hs.Close()
		}
		close(done)
	}()

	log.Printf("dpu-serve listening on %s (backend=%s cache=%d max-batch=%d linger=%v queue-depth=%d batched=%v)",
		*addr, backend, *cache, *maxBatch, *linger, *queueDepth, !*unbatched)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	<-done
}
