// Command dpu-serve exposes the compile-once/execute-many serving engine
// over HTTP — the deployment shape of the ROADMAP's "heavy traffic"
// north star: many clients submit the same few graphs with different
// inputs, the engine compiles each graph once and executes requests on
// pooled simulator machines.
//
// API:
//
//	POST /execute
//	    {"graph": "<node-list text>",          // dag.Read format
//	     "config": {"D":3,"B":64,"R":32},      // omitted/zero → min-EDP
//	     "options": {"Seed":1},                // compiler options, optional
//	     "inputs": [[...], [...], ...]}        // one vector per execution
//	  → {"fingerprint": "...", "sinks": [...], "compile": {...},
//	     "results": [{"outputs":[...], "cycles": n} | {"error": "..."}]}
//
//	GET /stats    → engine counters (hits, misses, evictions, ...)
//	GET /healthz  → 200 ok
//
// Example:
//
//	dpu-serve -addr :8080 -cache 256 &
//	curl -s localhost:8080/execute -d '{
//	  "graph": "input\ninput\nadd 0 1\nconst 3\nmul 2 3",
//	  "inputs": [[2,5],[1,1]]}'
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"

	"dpuv2/internal/arch"
	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
	"dpuv2/internal/engine"
)

type executeRequest struct {
	Graph   string           `json:"graph"`
	Config  arch.Config      `json:"config"`
	Options compiler.Options `json:"options"`
	Inputs  [][]float64      `json:"inputs"`
}

type executeResult struct {
	Outputs []float64 `json:"outputs,omitempty"`
	Cycles  int       `json:"cycles,omitempty"`
	Error   string    `json:"error,omitempty"`
}

type executeResponse struct {
	Fingerprint string          `json:"fingerprint"`
	Config      string          `json:"config"`
	Sinks       []int           `json:"sinks"`
	Compile     compiler.Stats  `json:"compile"`
	Results     []executeResult `json:"results"`
}

// maxRequestBytes bounds one /execute body; graphs and input batches
// beyond it belong in multiple requests.
const maxRequestBytes = 64 << 20

// checkConfigBounds rejects client configs whose machine state would be
// unreasonably large before anything is allocated. arch.Config.Validate
// checks constructibility, not size: B·R float64 registers (plus valid
// bits) and DataMemWords words are allocated per pooled machine, so a
// hostile {R: 1e9} request would otherwise OOM the server. The caps
// comfortably cover every configuration of the paper (DPU-v2 (L) is
// B=64, R=256, 4M-word memory).
func checkConfigBounds(cfg arch.Config) error {
	cfg = cfg.Normalize()
	const (
		maxB        = 1 << 10
		maxR        = 1 << 12
		maxMemWords = 1 << 24 // 128 MB of float64
	)
	if cfg.B > maxB || cfg.R > maxR {
		return fmt.Errorf("register file %dx%d exceeds the serving limit %dx%d", cfg.B, cfg.R, maxB, maxR)
	}
	if cfg.DataMemWords > maxMemWords {
		return fmt.Errorf("data memory %d words exceeds the serving limit %d", cfg.DataMemWords, maxMemWords)
	}
	return nil
}

// newServer builds the HTTP handler; split from main so tests can drive
// it through httptest.
func newServer(eng *engine.Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(eng.Stats())
	})
	mux.HandleFunc("/execute", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req executeRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes)).Decode(&req); err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		g, err := dag.Read(strings.NewReader(req.Graph), "request")
		if err != nil {
			http.Error(w, "bad graph: "+err.Error(), http.StatusBadRequest)
			return
		}
		cfg := req.Config
		if cfg == (arch.Config{}) {
			// Only a fully omitted config defaults to the paper's min-EDP
			// point; a partial config is the client's mistake and fails
			// validation with a precise message instead of being silently
			// replaced.
			cfg = arch.MinEDP()
		}
		if err := checkConfigBounds(cfg); err != nil {
			http.Error(w, "bad config: "+err.Error(), http.StatusBadRequest)
			return
		}
		c, err := eng.Compile(g, cfg, req.Options)
		if err != nil {
			http.Error(w, "compile: "+err.Error(), http.StatusUnprocessableEntity)
			return
		}
		resp := executeResponse{
			Fingerprint: g.Fingerprint().String(),
			Config:      c.Prog.Cfg.String(),
			Compile:     c.Stats,
			Results:     make([]executeResult, len(req.Inputs)),
		}
		// Report sinks as ids of the graph the client submitted; for k-ary
		// graphs the compiled (binarized) graph has different ids, and
		// Remap translates.
		origOuts := g.Outputs()
		sinks := make([]dag.NodeID, len(origOuts))
		for j, s := range origOuts {
			resp.Sinks = append(resp.Sinks, int(s))
			sinks[j] = c.Remap[s]
		}
		results, errs := eng.ExecuteBatchItems(c, req.Inputs)
		for i, res := range results {
			if res == nil {
				msg := "execution failed"
				if errs[i] != nil {
					msg = errs[i].Error()
				}
				resp.Results[i] = executeResult{Error: msg}
				continue
			}
			vals := make([]float64, len(sinks))
			for j, s := range sinks {
				vals[j] = res.Outputs[s]
			}
			resp.Results[i] = executeResult{Outputs: vals, Cycles: res.Stats.Cycles}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
	})
	return mux
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cache := flag.Int("cache", 128, "compile-cache capacity (programs)")
	workers := flag.Int("workers", 0, "batch worker pool size (0: one per CPU)")
	pool := flag.Int("pool", 0, "idle machines retained per config (0: 2 per CPU)")
	flag.Parse()

	eng := engine.New(engine.Options{CacheSize: *cache, Workers: *workers, PoolSize: *pool})
	log.Printf("dpu-serve listening on %s (cache=%d)", *addr, *cache)
	log.Fatal(http.ListenAndServe(*addr, newServer(eng)))
}
