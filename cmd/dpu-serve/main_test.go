package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"dpuv2/internal/engine"
)

func postExecute(t *testing.T, srv *httptest.Server, req executeRequest) (*http.Response, executeResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/execute", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out executeResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

func TestServeExecuteEndToEnd(t *testing.T) {
	eng := engine.New(engine.Options{})
	srv := httptest.NewServer(newServer(eng))
	defer srv.Close()

	// (x0 + x1) * 3 over two input vectors, plus one malformed vector.
	req := executeRequest{
		Graph:  "input\ninput\nadd 0 1\nconst 3\nmul 2 3\n",
		Inputs: [][]float64{{2, 5}, {1, 1}, {7}},
	}
	resp, out := postExecute(t, srv, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if out.Fingerprint == "" {
		t.Error("missing fingerprint")
	}
	if len(out.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(out.Results))
	}
	for i, want := range []float64{21, 6} {
		r := out.Results[i]
		if r.Error != "" {
			t.Fatalf("result %d errored: %s", i, r.Error)
		}
		if len(r.Outputs) != 1 || r.Outputs[0] != want {
			t.Errorf("result %d = %v, want [%v]", i, r.Outputs, want)
		}
		if r.Cycles <= 0 {
			t.Errorf("result %d missing cycle count", i)
		}
	}
	if out.Results[2].Error == "" {
		t.Error("malformed input vector did not surface an error")
	}

	// Same graph again: the engine must report a cache hit via /stats.
	if resp, _ := postExecute(t, srv, req); resp.StatusCode != http.StatusOK {
		t.Fatalf("second request status = %d", resp.StatusCode)
	}
	statsResp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var st engine.Stats
	if err := json.NewDecoder(statsResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Misses != 1 || st.Hits < 1 {
		t.Errorf("stats = %+v, want one miss and at least one hit", st)
	}
}

// TestServeKAryGraphSinkIDs pins the sink-id contract: the response
// reports sinks as ids of the graph the client submitted, even when
// binarization renumbers nodes internally.
func TestServeKAryGraphSinkIDs(t *testing.T) {
	srv := httptest.NewServer(newServer(engine.New(engine.Options{})))
	defer srv.Close()

	// 3-ary add: node 3 in the client's graph, renumbered by Binarize.
	req := executeRequest{
		Graph:  "input\ninput\ninput\nadd 0 1 2\n",
		Inputs: [][]float64{{1, 2, 4}},
	}
	resp, out := postExecute(t, srv, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(out.Sinks) != 1 || out.Sinks[0] != 3 {
		t.Errorf("sinks = %v, want [3] (ids of the submitted graph)", out.Sinks)
	}
	if len(out.Results) != 1 || out.Results[0].Error != "" {
		t.Fatalf("results = %+v", out.Results)
	}
	if got := out.Results[0].Outputs; len(got) != 1 || got[0] != 7 {
		t.Errorf("outputs = %v, want [7]", got)
	}
}

func TestServeBadRequests(t *testing.T) {
	srv := httptest.NewServer(newServer(engine.New(engine.Options{})))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/execute", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status = %d, want 400", resp.StatusCode)
	}

	if resp, _ := postExecute(t, srv, executeRequest{Graph: "bogus op\n"}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed graph: status = %d, want 400", resp.StatusCode)
	}

	// A graph that fails compilation (unknown topology value).
	badCfg := executeRequest{Graph: "input\ninput\nadd 0 1\n"}
	badCfg.Config.D = 5
	badCfg.Config.B = 2 // B < 2^D
	badCfg.Config.R = 8
	if resp, _ := postExecute(t, srv, badCfg); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("bad config: status = %d, want 422", resp.StatusCode)
	}

	// A constructible but absurdly sized config must be rejected before
	// any machine is allocated.
	huge := executeRequest{Graph: "input\ninput\nadd 0 1\n", Inputs: [][]float64{{1, 2}}}
	huge.Config.D = 1
	huge.Config.B = 2
	huge.Config.R = 1 << 30
	if resp, _ := postExecute(t, srv, huge); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized config: status = %d, want 400", resp.StatusCode)
	}

	getResp, err := http.Get(srv.URL + "/execute")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /execute: status = %d, want 405", getResp.StatusCode)
	}

	hResp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hResp.Body.Close()
	if hResp.StatusCode != http.StatusOK {
		t.Errorf("healthz: status = %d", hResp.StatusCode)
	}
}
