package main

// The HTTP handler, its batching scheduler and the full request-path
// test matrix live in internal/serve (so cmd/dpu-loadgen can drive the
// server in-process); this file only smoke-tests the wiring the binary
// performs: default flag values produce a server that executes a request
// end to end through the batched path.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"dpuv2/internal/engine"
	"dpuv2/internal/sched"
	"dpuv2/internal/serve"
)

func TestDefaultWiringServesBatched(t *testing.T) {
	eng := engine.New(engine.Options{CacheSize: 128})
	srv := serve.New(eng, serve.Options{
		Sched: sched.Options{MaxBatch: 32, Linger: 500 * time.Microsecond, QueueDepth: 4096},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain()

	body, _ := json.Marshal(serve.ExecuteRequest{
		Graph:  "input\ninput\nadd 0 1\nconst 3\nmul 2 3\n",
		Inputs: [][]float64{{2, 5}},
	})
	resp, err := http.Post(ts.URL+"/execute", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out serve.ExecuteResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.Batched {
		t.Error("default wiring is not batched")
	}
	if len(out.Results) != 1 || out.Results[0].Outputs[0] != 21 {
		t.Errorf("results = %+v, want [[21]]", out.Results)
	}
}
