package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dpuv2/internal/dse"
)

// smallArgs keeps CLI sweeps fast: tiny workloads, every grid point.
var smallArgs = []string{"-scale", "0.01"}

func TestDSEGridSweepReportsWinners(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(smallArgs, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"sweeping 48 configurations", "min latency:", "min energy:", "min EDP:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "anneal") {
		t.Error("grid sweep mentioned anneal")
	}
}

// TestDSEAnnealSearch runs -search anneal end to end and pins CLI-level
// determinism: two same-seed runs write byte-identical traces.
func TestDSEAnnealSearch(t *testing.T) {
	runOnce := func(trace string) string {
		var stdout, stderr bytes.Buffer
		args := append(append([]string{}, smallArgs...),
			"-search", "anneal", "-metric", "edp", "-seed", "5",
			"-chains", "2", "-steps", "5", "-trace", trace)
		if code := run(args, &stdout, &stderr); code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, stderr.String())
		}
		return stdout.String()
	}

	dir := t.TempDir()
	t1 := filepath.Join(dir, "t1.json")
	t2 := filepath.Join(dir, "t2.json")
	out := runOnce(t1)
	runOnce(t2)

	if !strings.Contains(out, "anneal:") || !strings.Contains(out, "anneal best:") {
		t.Fatalf("anneal report missing:\n%s", out)
	}
	b1, err := os.ReadFile(t1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(t2)
	if err != nil {
		t.Fatal(err)
	}
	if len(b1) == 0 || !bytes.Equal(b1, b2) {
		t.Fatalf("same-seed traces not byte-identical (%d vs %d bytes)", len(b1), len(b2))
	}
	var tr dse.Trace
	if err := json.Unmarshal(b1, &tr); err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	if tr.Seed != 5 || tr.Chains != 2 || tr.Steps != 5 || tr.Metric != "edp" {
		t.Fatalf("trace does not record the search shape: %+v", tr)
	}
	if tr.Accepted+tr.Rejected != tr.Chains*tr.Steps {
		t.Fatalf("trace accounting: %d+%d != %d", tr.Accepted, tr.Rejected, tr.Chains*tr.Steps)
	}
}

func TestDSEBadInputs(t *testing.T) {
	for name, args := range map[string][]string{
		"unknown search":       {"-search", "genetic"},
		"unknown metric":       {"-search", "anneal", "-metric", "throughput"},
		"negative chains":      {"-search", "anneal", "-chains", "-1"},
		"negative steps":       {"-search", "anneal", "-steps", "-3"},
		"trace without anneal": {"-trace", "/tmp/t.json"},
		"unparseable flags":    {"-scale", "x"},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("%s: exit %d, want 2", name, code)
		}
	}
}

func TestDSEHelpIsNotAnError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-h"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-h exited %d", code)
	}
	if !strings.Contains(stderr.String(), "-search") {
		t.Error("usage text does not document -search")
	}
}
