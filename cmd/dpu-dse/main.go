// Command dpu-dse runs the full design-space exploration of §V over the
// benchmark suites and reports the min-latency, min-energy and min-EDP
// configurations (fig. 11/12). -timeout bounds the sweep's wall time:
// points the budget did not reach are reported as skipped, and the
// min-* winners are chosen over what was evaluated (the same partial-
// result contract the autotuner uses).
//
//	dpu-dse -scale 0.25 [-timeout 2m]
//
// -search anneal continues past the grid: simulated annealing seeded
// from the best grid point on -metric explores the enlarged config
// space (deeper trees, wider bank/register ladders, alternate output
// topologies, data-memory sizing) and reports whether it beat the grid.
// -seed doubles as the anneal RNG seed; the search is deterministic at
// any -workers value, and -trace writes the accepted-move record as
// JSON for byte-for-byte comparison across runs:
//
//	dpu-dse -scale 0.05 -search anneal -metric edp -seed 7 -trace t.json
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
	"dpuv2/internal/dse"
	"dpuv2/internal/pc"
	"dpuv2/internal/sptrsv"
	"dpuv2/internal/tune"
)

// run is the testable body of the command; it returns the process exit
// code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dpu-dse", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scale := fs.Float64("scale", 0.25, "workload scale vs Table I sizes")
	seed := fs.Int64("seed", 0, "compiler randomization seed; with -search anneal, also the search RNG seed")
	workers := fs.Int("workers", 0, "sweep worker count (0: one per CPU)")
	timeout := fs.Duration("timeout", 0, "wall-clock sweep budget (0: none); unreached points are skipped")
	searchName := fs.String("search", "grid", "candidate search: grid (the 48-point sweep) or anneal (annealing past the grid)")
	metricName := fs.String("metric", "edp", "anneal optimization target: latency, energy or edp")
	chains := fs.Int("chains", 0, "anneal: independent chain count (0: default 4)")
	steps := fs.Int("steps", 0, "anneal: mutation steps per chain (0: default 48)")
	tracePath := fs.String("trace", "", "with -search anneal: write the accepted-move search trace as JSON to this file")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	var search tune.SearchKind
	if err := search.Parse(*searchName); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	var metric dse.Metric
	if err := metric.ParseMetric(*metricName); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *chains < 0 || *steps < 0 {
		fmt.Fprintf(stderr, "dpu-dse: -chains %d / -steps %d must be non-negative\n", *chains, *steps)
		return 2
	}
	if *tracePath != "" && search != tune.SearchAnneal {
		fmt.Fprintln(stderr, "dpu-dse: -trace requires -search anneal")
		return 2
	}

	var suite []*dag.Graph
	for _, s := range pc.Suite() {
		suite = append(suite, pc.Build(s, *scale))
	}
	for _, s := range sptrsv.Suite() {
		g, _ := sptrsv.Build(s, *scale)
		suite = append(suite, g)
	}
	nw := *workers
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(stdout, "sweeping %d configurations over %d workloads (scale %.2f, %d workers)\n",
		len(dse.Grid()), len(suite), *scale, nw)
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	points := dse.SweepContext(ctx, suite, dse.Grid(), compiler.Options{Seed: *seed}, nw)
	fmt.Fprintf(stdout, "%-24s %10s %10s %12s %9s\n", "config", "lat(ns)", "E(pJ)", "EDP(pJ*ns)", "area(mm2)")
	skipped := 0
	for _, p := range points {
		switch {
		case p.Feasible:
			fmt.Fprintf(stdout, "%-24s %10.3f %10.2f %12.2f %9.2f\n",
				p.Cfg.String(), p.LatencyPerOp, p.EnergyPerOp, p.EDP, p.AreaMM2)
		case errors.Is(p.Err, context.DeadlineExceeded) || errors.Is(p.Err, context.Canceled):
			skipped++
		default:
			fmt.Fprintf(stdout, "%-24s infeasible: %v\n", p.Cfg.String(), p.Err)
		}
	}
	if skipped > 0 {
		fmt.Fprintf(stdout, "%d of %d points skipped: sweep budget %v expired\n", skipped, len(points), *timeout)
	}
	report := func(name string, m dse.Metric, paper string) {
		if p, ok := dse.Best(points, m); ok {
			fmt.Fprintf(stdout, "%-12s %-24s (paper: %s)\n", name, p.Cfg.String(), paper)
		} else {
			fmt.Fprintf(stderr, "%s: no feasible point\n", name)
		}
	}
	report("min latency:", dse.MinLatency, "D=3,B=64,R=128")
	report("min energy:", dse.MinEnergy, "D=3,B=16,R=64")
	report("min EDP:", dse.MinEDP, "D=3,B=64,R=32")

	if search != tune.SearchAnneal {
		return 0
	}

	// Anneal continues from the sweep just run: the evaluated grid is the
	// pre-scored start set, so the chains seed from the winner above
	// without re-sweeping.
	all, tr := dse.SearchAnneal(ctx, suite, compiler.Options{Seed: *seed}, dse.AnnealOptions{
		Seed:        *seed,
		Chains:      *chains,
		Steps:       *steps,
		Metric:      metric,
		StartPoints: points,
		Workers:     nw,
	})
	fmt.Fprintf(stdout, "anneal:      seed %d, %d chains × %d steps on %s: %d evaluated, %d accepted, %d rejected\n",
		tr.Seed, tr.Chains, tr.Steps, tr.Metric, tr.Evaluated, tr.Accepted, tr.Rejected)
	gridBest, gok := dse.Best(points, metric)
	annealBest, aok := dse.Best(all, metric)
	switch {
	case !aok:
		fmt.Fprintf(stderr, "anneal: no feasible point\n")
	case !gok || metric.Value(annealBest) < metric.Value(gridBest):
		win := 0.0
		if gok {
			win = 100 * (1 - metric.Value(annealBest)/metric.Value(gridBest))
		}
		fmt.Fprintf(stdout, "anneal best: %-24s %s %.4f (%.1f%% better than the grid)\n",
			annealBest.Cfg.String(), tr.Metric, metric.Value(annealBest), win)
	default:
		fmt.Fprintf(stdout, "anneal best: %-24s %s %.4f (the grid point stands)\n",
			annealBest.Cfg.String(), tr.Metric, metric.Value(annealBest))
	}
	if tr.Canceled {
		fmt.Fprintf(stdout, "anneal: budget expired before the schedule completed (trace covers the truncated run)\n")
	}

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tr); err != nil {
			f.Close()
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
