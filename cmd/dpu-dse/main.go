// Command dpu-dse runs the full design-space exploration of §V over the
// benchmark suites and reports the min-latency, min-energy and min-EDP
// configurations (fig. 11/12). -timeout bounds the sweep's wall time:
// points the budget did not reach are reported as skipped, and the
// min-* winners are chosen over what was evaluated (the same partial-
// result contract the autotuner uses).
//
//	dpu-dse -scale 0.25 [-timeout 2m]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"

	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
	"dpuv2/internal/dse"
	"dpuv2/internal/pc"
	"dpuv2/internal/sptrsv"
)

func main() {
	scale := flag.Float64("scale", 0.25, "workload scale vs Table I sizes")
	seed := flag.Int64("seed", 0, "compiler randomization seed")
	workers := flag.Int("workers", 0, "sweep worker count (0: one per CPU)")
	timeout := flag.Duration("timeout", 0, "wall-clock sweep budget (0: none); unreached points are skipped")
	flag.Parse()

	var suite []*dag.Graph
	for _, s := range pc.Suite() {
		suite = append(suite, pc.Build(s, *scale))
	}
	for _, s := range sptrsv.Suite() {
		g, _ := sptrsv.Build(s, *scale)
		suite = append(suite, g)
	}
	nw := *workers
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("sweeping %d configurations over %d workloads (scale %.2f, %d workers)\n",
		len(dse.Grid()), len(suite), *scale, nw)
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	points := dse.SweepContext(ctx, suite, dse.Grid(), compiler.Options{Seed: *seed}, nw)
	fmt.Printf("%-24s %10s %10s %12s %9s\n", "config", "lat(ns)", "E(pJ)", "EDP(pJ*ns)", "area(mm2)")
	skipped := 0
	for _, p := range points {
		switch {
		case p.Feasible:
			fmt.Printf("%-24s %10.3f %10.2f %12.2f %9.2f\n",
				p.Cfg.String(), p.LatencyPerOp, p.EnergyPerOp, p.EDP, p.AreaMM2)
		case errors.Is(p.Err, context.DeadlineExceeded) || errors.Is(p.Err, context.Canceled):
			skipped++
		default:
			fmt.Printf("%-24s infeasible: %v\n", p.Cfg.String(), p.Err)
		}
	}
	if skipped > 0 {
		fmt.Printf("%d of %d points skipped: sweep budget %v expired\n", skipped, len(points), *timeout)
	}
	report := func(name string, m dse.Metric, paper string) {
		if p, ok := dse.Best(points, m); ok {
			fmt.Printf("%-12s %-24s (paper: %s)\n", name, p.Cfg.String(), paper)
		} else {
			fmt.Fprintf(os.Stderr, "%s: no feasible point\n", name)
		}
	}
	report("min latency:", dse.MinLatency, "D=3,B=64,R=128")
	report("min energy:", dse.MinEnergy, "D=3,B=16,R=64")
	report("min EDP:", dse.MinEDP, "D=3,B=64,R=32")
}
