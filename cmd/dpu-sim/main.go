// Command dpu-sim executes a workload on the cycle-accurate simulator
// with pseudo-random inputs, verifies every output against the
// reference evaluator, and reports throughput, power and energy
// estimates. The program either comes from an in-process compilation of
// a named benchmark, or — with -artifact — from a compiled .dpuprog
// artifact (see internal/artifact and dpu-compile -o), in which case
// nothing is compiled at all: the deployment shape where compilation is
// an offline step.
//
// -backend functional swaps the cycle-accurate machine for the
// functional fast path (internal/sim.FuncEvaluator): bit-identical
// outputs and the exact (static) cycle count, but no register/memory
// traffic, so the power/energy report is omitted.
//
//	dpu-sim -workload jagmesh4 -scale 0.5
//	dpu-sim -artifact mnist.dpuprog
//	dpu-sim -workload mnist -backend functional
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"dpuv2/internal/arch"
	"dpuv2/internal/artifact"
	"dpuv2/internal/compiler"
	"dpuv2/internal/energy"
	"dpuv2/internal/sim"
	"dpuv2/internal/suite"
	"dpuv2/internal/verify"
)

// run is the testable body of the command; it returns the exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dpu-sim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workload := fs.String("workload", "tretail", "benchmark name from Table I")
	artifactPath := fs.String("artifact", "", "execute a compiled .dpuprog artifact instead of compiling a workload")
	scale := fs.Float64("scale", 1.0, "workload scale")
	d := fs.Int("d", 3, "tree depth D")
	b := fs.Int("b", 64, "register banks B")
	r := fs.Int("r", 32, "registers per bank R")
	seed := fs.Int64("seed", 0, "input/compiler seed")
	backendName := fs.String("backend", "cycle", "execution backend: cycle (cycle-accurate, full stats) or functional (fast path, outputs and cycle count only)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0 // -h is a successful usage request, not a mistake
		}
		return 2
	}

	var c *compiler.Compiled
	var cfg arch.Config
	if *artifactPath != "" {
		// An artifact fixes the workload and configuration; accepting
		// -workload/-d/-b/-r alongside it would silently report numbers
		// for a configuration the user did not ask for.
		conflict := ""
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "workload", "scale", "d", "b", "r":
				conflict = f.Name
			}
		})
		if conflict != "" {
			fmt.Fprintf(stderr, "dpu-sim: -%s conflicts with -artifact (the artifact carries its own workload and configuration)\n", conflict)
			return 2
		}
		f, err := os.Open(*artifactPath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		a, err := artifact.Decode(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		// A CRC-clean artifact can still be illegal for the machine model;
		// naming the hazards beats a mid-run simulator fault.
		if fs := verify.Compiled(a.Compiled); verify.HasErrors(fs) {
			fmt.Fprintf(stderr, "dpu-sim: %s fails static verification (%s):\n", *artifactPath, verify.Summary(fs))
			for _, f := range fs {
				fmt.Fprintf(stderr, "  %s\n", f)
			}
			return 1
		}
		c = a.Compiled
		cfg = c.Prog.Cfg
		fmt.Fprintf(stdout, "artifact:    %s (fingerprint %s, format v%d)\n",
			*artifactPath, a.Fingerprint.Short(), artifact.Version)
	} else {
		g, err := suite.Build(*workload, *scale)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		cfg = arch.Config{D: *d, B: *b, R: *r, Output: arch.OutPerLayer}
		c, err = compiler.Compile(g, cfg, compiler.Options{Seed: *seed})
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	backend, err := sim.ParseBackend(*backendName)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	rng := rand.New(rand.NewSource(*seed ^ 0x51b))
	inputs := make([]float64, len(c.Graph.Inputs()))
	for i := range inputs {
		inputs[i] = 0.25 + 0.75*rng.Float64()
	}
	if backend == sim.BackendFunctional {
		// The functional backend produces outputs and the (static) cycle
		// count but no register/memory traffic, so the power and energy
		// models have nothing to work from — report the reduced set.
		res, err := sim.RunWith(backend, c, inputs)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := sim.CheckOutputs(c, inputs, res, 0); err != nil {
			fmt.Fprintln(stderr, "verification FAILED:", err)
			return 1
		}
		fmt.Fprintf(stdout, "workload:    %s, %d ops on %v\n", c.Graph.Name, c.Stats.Nodes, cfg.Normalize())
		fmt.Fprintf(stdout, "backend:     functional (no power/energy model; use -backend cycle)\n")
		fmt.Fprintf(stdout, "verified:    %d outputs match the reference evaluator exactly\n", len(res.Outputs))
		fmt.Fprintf(stdout, "cycles:      %d (%d instructions + pipeline drain)\n", res.Stats.Cycles, c.Stats.Instructions)
		return 0
	}
	res, err := sim.Verify(c, inputs, 0)
	if err != nil {
		fmt.Fprintln(stderr, "verification FAILED:", err)
		return 1
	}
	est := energy.EstimateRun(cfg, c.Stats.Nodes, res.Stats, c.Prog)
	fmt.Fprintf(stdout, "workload:    %s, %d ops on %v\n", c.Graph.Name, c.Stats.Nodes, cfg.Normalize())
	fmt.Fprintf(stdout, "verified:    %d outputs match the reference evaluator exactly\n", len(res.Outputs))
	fmt.Fprintf(stdout, "cycles:      %d (%d instructions + pipeline drain)\n", res.Stats.Cycles, c.Stats.Instructions)
	fmt.Fprintf(stdout, "throughput:  %.3f GOPS at %.0f MHz\n", est.ThroughputGOP, cfg.Normalize().ClockMHz)
	fmt.Fprintf(stdout, "power:       %.1f mW (modeled, 28nm)\n", est.PowerMW)
	fmt.Fprintf(stdout, "energy/op:   %.2f pJ, EDP %.2f pJ*ns\n", est.EnergyPerOp, est.EDP)
	fmt.Fprintf(stdout, "reg traffic: %d reads, %d writes; memory %d reads, %d writes\n",
		res.Stats.RegReads, res.Stats.RegWrites, res.Stats.MemReads, res.Stats.MemWrites)
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
