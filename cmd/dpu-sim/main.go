// Command dpu-sim compiles a benchmark workload, executes it on the
// cycle-accurate simulator with pseudo-random inputs, verifies every
// output against the reference evaluator, and reports throughput, power
// and energy estimates.
//
//	dpu-sim -workload jagmesh4 -scale 0.5
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"dpuv2/internal/arch"
	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
	"dpuv2/internal/energy"
	"dpuv2/internal/pc"
	"dpuv2/internal/sim"
	"dpuv2/internal/sptrsv"
)

func buildWorkload(name string, scale float64) (*dag.Graph, error) {
	for _, s := range pc.Suite() {
		if s.Name == name {
			return pc.Build(s, scale), nil
		}
	}
	for _, s := range sptrsv.Suite() {
		if s.Name == name {
			g, _ := sptrsv.Build(s, scale)
			return g, nil
		}
	}
	return nil, fmt.Errorf("unknown workload %q", name)
}

func main() {
	workload := flag.String("workload", "tretail", "benchmark name from Table I")
	scale := flag.Float64("scale", 1.0, "workload scale")
	d := flag.Int("d", 3, "tree depth D")
	b := flag.Int("b", 64, "register banks B")
	r := flag.Int("r", 32, "registers per bank R")
	seed := flag.Int64("seed", 0, "input/compiler seed")
	flag.Parse()

	g, err := buildWorkload(*workload, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg := arch.Config{D: *d, B: *b, R: *r, Output: arch.OutPerLayer}
	c, err := compiler.Compile(g, cfg, compiler.Options{Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rng := rand.New(rand.NewSource(*seed ^ 0x51b))
	inputs := make([]float64, len(c.Graph.Inputs()))
	for i := range inputs {
		inputs[i] = 0.25 + 0.75*rng.Float64()
	}
	res, err := sim.Verify(c, inputs, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "verification FAILED:", err)
		os.Exit(1)
	}
	est := energy.EstimateRun(cfg, c.Stats.Nodes, res.Stats, c.Prog)
	fmt.Printf("workload:    %s, %d ops on %v\n", g.Name, c.Stats.Nodes, cfg.Normalize())
	fmt.Printf("verified:    %d outputs match the reference evaluator exactly\n", len(res.Outputs))
	fmt.Printf("cycles:      %d (%d instructions + pipeline drain)\n", res.Stats.Cycles, c.Stats.Instructions)
	fmt.Printf("throughput:  %.3f GOPS at %.0f MHz\n", est.ThroughputGOP, cfg.Normalize().ClockMHz)
	fmt.Printf("power:       %.1f mW (modeled, 28nm)\n", est.PowerMW)
	fmt.Printf("energy/op:   %.2f pJ, EDP %.2f pJ*ns\n", est.EnergyPerOp, est.EDP)
	fmt.Printf("reg traffic: %d reads, %d writes; memory %d reads, %d writes\n",
		res.Stats.RegReads, res.Stats.RegWrites, res.Stats.MemReads, res.Stats.MemWrites)
}
